type t = {
  index : (string, int) Hashtbl.t;
  mutable table : string array;
  mutable count : int;
}

let create ?(initial = 64) () =
  {
    index = Hashtbl.create initial;
    table = Array.make (max 1 initial) "";
    count = 0;
  }

let size t = t.count

let find t s = Hashtbl.find_opt t.index s

let intern t s =
  match Hashtbl.find_opt t.index s with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.table then begin
        let bigger = Array.make (2 * Array.length t.table) "" in
        Array.blit t.table 0 bigger 0 id;
        t.table <- bigger
      end;
      t.table.(id) <- s;
      t.count <- id + 1;
      Hashtbl.add t.index s id;
      id

let to_string t id =
  if id < 0 || id >= t.count then invalid_arg "Interner.to_string";
  t.table.(id)

let canonical t s =
  match Hashtbl.find_opt t.index s with
  | Some id -> t.table.(id)
  | None -> t.table.(intern t s)

let iter t f =
  for id = 0 to t.count - 1 do
    f id t.table.(id)
  done

module Tx_pool = struct
  type nonrec t = {
    by_id : (string, Tx.t) Hashtbl.t;
    mutable hits : int;
  }

  let create ?(initial = 1024) () = { by_id = Hashtbl.create initial; hits = 0 }

  (* First decoded instance wins; every later decode of the same tx
     collapses onto it. The id is the SHA-256 of the full encoding and
     [Tx.decode] recomputes it from the bytes, so two instances with
     equal ids are field-for-field equal — substituting one for the
     other is unobservable. *)
  let canonical t (tx : Tx.t) =
    match Hashtbl.find_opt t.by_id tx.Tx.id with
    | Some c ->
        t.hits <- t.hits + 1;
        c
    | None ->
        Hashtbl.add t.by_id tx.Tx.id tx;
        tx

  let unique t = Hashtbl.length t.by_id
  let hits t = t.hits
end
