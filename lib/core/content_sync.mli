(** Transaction-content exchange (Stage II of Alg. 1).

    Owns the table of committed-but-uncontented short ids (the
    [missing] set), answers [want] lists, serves and ingests
    {!Messages.Tx_batch}es, and centralises the "commit fresh ids and
    mark their content missing" step that every reconciliation path
    performs (Alg. 1 line 22). *)

type t

val create :
  ?canonical:(Tx.t -> Tx.t) ->
  mempool:Mempool.t ->
  adversary:Adversary.t ->
  unit ->
  t
(** [canonical] (default identity) maps every transaction entering the
    mempool to its per-world canonical instance (see
    {!Interner.Tx_pool}); it must return a field-for-field equal value,
    which makes the substitution unobservable. *)

val missing_count : t -> int
(** Committed ids whose content has not arrived yet. *)

val want_list : t -> Node_env.t -> int list
(** Up to [max_delta] missing ids to request from a peer. *)

val mark_missing : t -> Node_env.t -> int list -> unit
(** Note that the given committed ids lack content (no-op for ids
    already in the mempool). *)

val commit_fresh :
  t ->
  Node_env.t ->
  dedup:bool ->
  known:(int -> bool) ->
  source:string ->
  int list ->
  int list
(** Filter [ids] down to those not [known], optionally sort/dedup them,
    commit the survivors as one bundle attributed to [source] and mark
    their content missing. Returns the committed ids ([[]] when none
    were fresh). The [known] predicate is caller-supplied because the
    paths differ: requests test the (possibly forked) log shown to the
    peer, responses test the primary log. *)

val serve : t -> int list -> Tx.t list
(** The requested transactions we can actually supply. *)

val store_content : t -> Node_env.t -> Tx.t -> from_peer:string option -> unit
(** Admit content to the mempool, clear it from the missing set and
    fire [on_tx_content] (first arrival only). *)

val ingest_batch : t -> Node_env.t -> from:int -> Tx.t list -> unit
(** Handle a {!Messages.Tx_batch}: prevalidate, apply Stage-II
    censorship, commit previously unseen ids and store content — one
    commitment bundle per transaction (the DES path; golden traces pin
    this granularity). *)

val ingest_batch_bulk : t -> Node_env.t -> from:int -> Tx.t list -> unit
(** The batched admission path ({!Mempool.ingest_batch}): signatures
    verified in one batch, fresh ids committed as ONE bundle with a
    single digest update. Mempool contents and the committed id set
    match {!ingest_batch}; only the bundle granularity (digest seq)
    differs. Used by the live backend. *)
