module Rng = Lo_net.Rng

type peer_state = {
  digests : (int, Commitment.digest) Hashtbl.t;
  bundles : (int, int list) Hashtbl.t;
  mutable latest : Commitment.digest option;
}

type t = {
  peers : (string, peer_state) Hashtbl.t;
  recent : Commitment.digest option array; (* relay ring buffer *)
  mutable recent_pos : int;
}

let create () =
  { peers = Hashtbl.create 32; recent = Array.make 32 None; recent_pos = 0 }

let peer_state t owner =
  match Hashtbl.find_opt t.peers owner with
  | Some st -> st
  | None ->
      let st =
        { digests = Hashtbl.create 8; bundles = Hashtbl.create 8; latest = None }
      in
      Hashtbl.add t.peers owner st;
      st

let latest t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | None -> None
  | Some st -> st.latest

let stored_digest t ~owner ~seq =
  match Hashtbl.find_opt t.peers owner with
  | None -> None
  | Some st -> Hashtbl.find_opt st.digests seq

let digest_pair t ~owner ~seq =
  match Hashtbl.find_opt t.peers owner with
  | None -> None
  | Some st -> begin
      match
        (Hashtbl.find_opt st.digests (seq - 1), Hashtbl.find_opt st.digests seq)
      with
      | Some older, Some newer
        when Commitment.is_full older && Commitment.is_full newer ->
          Some (older, newer)
      | _ -> None
    end

let snapshots t =
  Hashtbl.fold
    (fun owner st acc ->
      Hashtbl.fold (fun seq d acc -> (owner, seq, d) :: acc) st.digests acc)
    t.peers []
  |> List.sort (fun (o1, s1, _) (o2, s2, _) ->
         match String.compare o1 o2 with 0 -> Int.compare s1 s2 | c -> c)

let bundle_of_seq t ~owner ~seq =
  match Hashtbl.find_opt t.peers owner with
  | None -> None
  | Some st -> Hashtbl.find_opt st.bundles seq

let note_appended t ~owner ~seq appended =
  if appended <> [] && seq >= 1 then begin
    let st = peer_state t owner in
    if not (Hashtbl.mem st.bundles seq) then
      Hashtbl.replace st.bundles seq appended
  end

(* Recompute bundles adjacent to a freshly upgraded full digest. *)
let derive_bundles (env : Node_env.t) st digest =
  let open Commitment in
  (match Hashtbl.find_opt st.digests (digest.seq - 1) with
  | Some b when Commitment.is_full b && Commitment.is_full digest -> begin
      env.hooks.on_sketch_decode ();
      match check_extension ~older:b ~newer:digest () with
      | Consistent ids -> Hashtbl.replace st.bundles digest.seq ids
      | Inconsistent ->
          env.expose ~accused:digest.owner
            (Evidence.Conflicting_digests { older = b; newer = digest })
      | Plausible | Inconclusive -> ()
    end
  | _ -> ());
  match Hashtbl.find_opt st.digests (digest.seq + 1) with
  | Some a when Commitment.is_full a && Commitment.is_full digest -> begin
      env.hooks.on_sketch_decode ();
      match check_extension ~older:digest ~newer:a () with
      | Consistent ids -> Hashtbl.replace st.bundles a.seq ids
      | Inconsistent ->
          env.expose ~accused:digest.owner
            (Evidence.Conflicting_digests { older = digest; newer = a })
      | Plausible | Inconclusive -> ()
    end
  | _ -> ()

(* Digest bookkeeping & equivocation detection (Fig. 4). *)
let note_digest t (env : Node_env.t) digest =
  let open Commitment in
  if String.equal digest.owner env.my_id then ()
  else if not (Commitment.verify env.config.scheme digest) then ()
  else begin
    let st = peer_state t digest.owner in
    match Hashtbl.find_opt st.digests digest.seq with
    | Some existing ->
        if not (Commitment.equal_content existing digest) then
          env.expose ~accused:digest.owner
            (Evidence.Conflicting_digests { older = existing; newer = digest })
        else if Commitment.is_full digest && not (Commitment.is_full existing)
        then begin
          (* Upgrade a light snapshot to the full form. *)
          Hashtbl.replace st.digests digest.seq digest;
          (match st.latest with
          | Some l when l.seq = digest.seq -> st.latest <- Some digest
          | _ -> ());
          derive_bundles env st digest;
          env.retry_inspections ~owner:digest.owner
        end
    | None ->
        let below = ref None and above = ref None in
        Hashtbl.iter
          (fun seq d ->
            if seq < digest.seq then
              match !below with
              | Some (s, _) when s >= seq -> ()
              | _ -> below := Some (seq, d)
            else
              match !above with
              | Some (s, _) when s <= seq -> ()
              | _ -> above := Some (seq, d))
          st.digests;
        let consistent = ref true in
        let check ~older ~newer ~bundle_seq_if_adjacent ~adjacent =
          (* Adjacent pairs are always set-audited (they also yield the
             bundle contents); distant pairs get a sampled audit — the
             cheap counter/clock checks still run on every message, and
             with many nodes sampling independently an equivocator is
             still caught quickly. *)
          let audit =
            adjacent || Rng.int env.rng 8 = 0 || not (Commitment.is_full older)
            || not (Commitment.is_full newer)
          in
          let max_decode = if audit then 256 else 0 in
          (if audit && Commitment.is_full older && Commitment.is_full newer
           then env.hooks.on_sketch_decode ());
          match check_extension ~max_decode ~older ~newer () with
          | Inconsistent ->
              consistent := false;
              env.expose ~accused:digest.owner
                (Evidence.Conflicting_digests { older; newer })
          | Consistent ids ->
              if adjacent then Hashtbl.replace st.bundles bundle_seq_if_adjacent ids
          | Plausible | Inconclusive -> ()
        in
        (match !below with
        | None -> ()
        | Some (seq_b, b) ->
            check ~older:b ~newer:digest ~bundle_seq_if_adjacent:digest.seq
              ~adjacent:(seq_b = digest.seq - 1));
        (match !above with
        | None -> ()
        | Some (seq_a, a) ->
            check ~older:digest ~newer:a ~bundle_seq_if_adjacent:seq_a
              ~adjacent:(seq_a = digest.seq + 1));
        if !consistent then begin
          Hashtbl.replace st.digests digest.seq digest;
          (* Retention bound: evict the oldest snapshot (seq 0 is kept —
             it anchors first-bundle evidence). *)
          if Hashtbl.length st.digests > env.config.max_digests_per_peer
          then begin
            let oldest =
              Hashtbl.fold
                (fun seq _ acc -> if seq > 0 && seq < acc then seq else acc)
                st.digests max_int
            in
            if oldest < max_int then Hashtbl.remove st.digests oldest
          end;
          t.recent.(t.recent_pos) <- Some digest;
          t.recent_pos <- (t.recent_pos + 1) mod Array.length t.recent;
          (match st.latest with
          | Some l when l.seq >= digest.seq -> ()
          | _ -> st.latest <- Some digest);
          env.retry_inspections ~owner:digest.owner
        end
  end

let handle_digest_request t (env : Node_env.t) ~from ~owner ~seq =
  let reply ds =
    if ds <> [] then env.send ~dst:from (Messages.Digest_reply ds)
  in
  if String.equal owner env.my_id then
    reply
      (List.filter_map
         (fun s -> Commitment.Log.digest_at env.primary_log ~seq:s)
         [ seq; seq - 1 ])
  else begin
    let st = peer_state t owner in
    reply
      (List.filter_map
         (fun s -> Hashtbl.find_opt st.digests s)
         [ seq; seq - 1 ])
  end

let recent_digests t ~exclude_owner =
  Array.to_list t.recent
  |> List.filter_map (fun d ->
         match d with
         | Some d when not (String.equal d.Commitment.owner exclude_owner) ->
             Some d
         | _ -> None)

let storage_bytes t =
  Hashtbl.fold
    (fun _ st acc ->
      Hashtbl.fold (fun _ d a -> a + Commitment.encoded_size d) st.digests acc)
    t.peers 0
