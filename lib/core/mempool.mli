(** Node-local transaction store.

    Holds the content of every valid transaction a node has ever seen
    (LØ's "Inclusion of All Transactions" policy makes the store
    append-only), indexed by short id, together with reception
    metadata. *)

type entry = {
  tx : Tx.t;
  short_id : int;
  received_at : float;
  from_peer : string option;  (** None when submitted directly (Stage I) *)
}

type t

val create : ?initial_capacity:int -> unit -> t
(** [initial_capacity] pre-sizes the internal tables (default 512).
    Pass the expected transaction count when it is known up front —
    sustained ingest at six-figure tx/s otherwise spends a measurable
    slice of its budget rehashing through the doubling ladder. *)

val size : t -> int

val add :
  t -> tx:Tx.t -> received_at:float -> from_peer:string option ->
  [ `Added of entry | `Duplicate ]
(** [`Duplicate] covers both a repeated transaction and the (negligible
    but handled) short-id collision with a different transaction. *)

type batch_result = {
  accepted : entry list;  (** newly stored, in batch order *)
  invalid : (int * string) list;  (** input index and reason, ascending *)
  duplicates : int;  (** valid but already stored *)
  committed : int list;
      (** the fresh short ids handed to [commit], in batch order *)
}

val ingest_batch :
  ?canonical:(Tx.t -> Tx.t) ->
  ?keep:(Tx.t -> bool) ->
  scheme:Lo_crypto.Signer.scheme ->
  known:(int -> bool) ->
  commit:(int list -> unit) ->
  received_at:float ->
  from_peer:string option ->
  t ->
  Tx.t list ->
  batch_result
(** Batched admission (the throughput tier): bounds-check every
    transaction, verify all surviving signatures in one
    {!Lo_crypto.Signer.verify_many} call, store the valid ones, and
    call [commit] ONCE with every short id that is neither [known]
    (already committed) nor repeated in the batch — one commitment
    bundle, one digest update, per batch.

    [canonical] collapses each decoded transaction onto its pooled
    instance (pass {!Interner.Tx_pool.canonical}); [keep] is the
    censorship filter applied after validation (default: keep all).
    Per-transaction outcomes — which transactions are stored, rejected
    or duplicate, and which ids reach the commitment log — match the
    iterated single-transaction path exactly; qcheck pins the
    equivalence including the final mempool state and digest. *)

val mem_short : t -> int -> bool
val find_short : t -> int -> entry option
val find_id : t -> string -> entry option
val entries_in_arrival_order : t -> entry list
val total_payload_bytes : t -> int
(** Cumulative stored transaction bytes (storage-overhead metric). *)
