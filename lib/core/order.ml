let bundle_key ~seed ~bundle_seq id =
  let w = Lo_codec.Writer.create ~initial_size:16 () in
  Lo_codec.Writer.varint w bundle_seq;
  Lo_codec.Writer.u32 w id;
  Lo_crypto.Hmac.sha256 ~key:seed (Lo_codec.Writer.contents w)

(* First 7 key bytes packed big-endian into an int: comparing the
   prefixes as plain ints agrees with [String.compare] on those bytes,
   and all keys are equal-length HMAC outputs, so almost every
   comparison resolves on one int compare instead of a byte-by-byte
   string walk. *)
let key_prefix k =
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code (String.unsafe_get k i)
  done;
  !v

let sort_bundle ~seed ~bundle_seq ids =
  match ids with
  | [] | [ _ ] -> ids
  | _ ->
      let keyed =
        Array.of_list
          (List.map
             (fun id ->
               let k = bundle_key ~seed ~bundle_seq id in
               (key_prefix k, k, id))
             ids)
      in
      let compare (pa, ka, ia) (pb, kb, ib) =
        if pa <> pb then Int.compare pa pb
        else
          match String.compare ka kb with 0 -> Int.compare ia ib | c -> c
      in
      Array.sort compare keyed;
      Array.fold_right (fun (_, _, id) acc -> id :: acc) keyed []

let canonical ~seed ~bundles =
  bundles
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.concat_map (fun (bundle_seq, ids) ->
         sort_bundle ~seed ~bundle_seq ids)
