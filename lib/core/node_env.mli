(** Shared node environment: configuration, instrumentation hooks, and
    the service closures the protocol submodules ({!Reconciler},
    {!Content_sync}, {!Peer_tracker}, {!Block_pipeline}) use to talk to
    the network and to each other without depending on the {!Node}
    record. [Node] constructs one {!t} per node and threads it through
    every submodule call. *)

type config = {
  scheme : Lo_crypto.Signer.scheme;
  reconcile_period : float;  (** seconds between NeighborsSync rounds *)
  reconcile_fanout : int;  (** neighbours contacted per round (paper: 3) *)
  request_timeout : float;  (** seconds before the first retry (paper: 1 s) *)
  max_retries : int;  (** retries before suspicion (paper: 3) *)
  retry_backoff : float;
      (** multiplier applied to the timeout on each successive retry
          (exponential backoff; 1.0 restores the paper's fixed 1 s) *)
  retry_jitter : float;
      (** seeded uniform perturbation of each retry delay, as a
          fraction of the backed-off delay (desynchronises probes after
          a partition heals) *)
  demote_after : int;
      (** unresponsiveness score at which a flapping peer stops being
          picked by routine round sampling (it is still probed
          occasionally and can redeem itself — demotion, not blame) *)
  sketch_capacity : int;
  clock_cells : int;
  fee_threshold : int;
  max_block_txs : int;
  max_delta : int;  (** cap on explicit ids per commit request *)
  digest_share_period : float;  (** latest-commitment gossip period *)
  always_full_digests : bool;
      (** ablation knob: ship the full sketch in every reconciliation
          message instead of the light digest (default false) *)
  reject_exposed_blocks : bool;
      (** enforcement (Sec. 5.4): refuse blocks whose creator this node
          has exposed. Off by default — the paper keeps inspection
          separate from block validation (Sec. 4.3). *)
  max_digests_per_peer : int;
      (** retention bound on stored peer commitment snapshots; the
          paper retains everything, which is fine for its runs but not
          for unbounded deployments. Oldest snapshots (except seq 0) are
          evicted beyond the cap (default 1024 ≈ 0.25–1.2 MB/peer). *)
  digest_history : int;
      (** how many of our own newest commitment snapshots keep their
          full sketch (the capacity-sized copy each costs); older ones
          are demoted to the light form. Default [max_int] — retain
          everything, the paper's behaviour — because historical full
          digests are served on the wire; scale harnesses opt into a
          small window. *)
}

val default_config : Lo_crypto.Signer.scheme -> config

(** Instrumentation callbacks. Fired synchronously from the protocol
    code path; a consumer that needs the event's time reads the
    deployment clock itself (e.g. [Lo_net.Network.now], or
    {!Lo_transport.t.now}) — the transport clock replaced the explicit
    [now:float] threading these callbacks used to carry, and reading it
    never consumes RNG state, so instrumentation cannot perturb a
    seeded run. *)
type hooks = {
  mutable on_tx_content : Tx.t -> unit;
      (** content entered the mempool (Fig. 7 latency) *)
  mutable on_block_accepted : Block.t -> unit;
  mutable on_exposure : accused:string -> unit;
  mutable on_suspicion : suspect:string -> unit;
  mutable on_suspicion_cleared : suspect:string -> unit;
  mutable on_violation : Inspector.violation -> block:Block.t -> unit;
  mutable on_sketch_decode : unit -> unit;
      (** one sketch set-reconciliation attempt *)
  mutable on_reconcile : unit -> unit;
      (** one active reconciliation round opened with a neighbour
          (Fig. 10) *)
  mutable on_reconcile_complete : unit -> unit;
      (** a previously outstanding commit request was answered
          (reconciliation success-rate metric in the chaos runs) *)
}

val no_hooks : unit -> hooks

type t = {
  config : config;
  hooks : hooks;
  trace : Lo_obs.Trace.t option;
      (** observability sink (shared with the network engine); [None]
          keeps every emission site on its cheap disabled path *)
  my_id : string;
  my_index : int;
  signer : Lo_crypto.Signer.t;
  rng : Lo_net.Rng.t;  (** the node's single deterministic stream *)
  acc : Accountability.t;
  primary_log : Commitment.Log.t;
  now : unit -> float;
  send : dst:int -> Messages.t -> unit;
  broadcast : Messages.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  id_of : int -> string;
  index_of : string -> int option;
  population : unit -> int;  (** directory size (audit sampling) *)
  neighbors : unit -> int list;  (** current overlay neighbours *)
  log_for : peer_index:int -> Commitment.Log.t;
      (** the log this node shows to a given peer (equivocators fork) *)
  wire_digest : peer_index:int -> Commitment.digest;
      (** digest used in routine reconciliation messages: light unless
          the ablation knob forces the full form *)
  commit : source:string option -> ids:int list -> unit;
      (** append a learned bundle to the node's commitment log(s) *)
  expose : accused:string -> Evidence.t -> unit;
      (** record + gossip an exposure (deduplicated by the node) *)
  retry_inspections : owner:string -> unit;
      (** re-run inspections parked on missing digests of [owner] *)
  record_deviation : kind:string -> height:int option -> unit;
      (** ground-truth ledger of the node's {e own} adversarial
          deviations (see {!Node.deviations}); honest code paths never
          call it. [height] ties block-stage deviations to the tampered
          block so oracles can match them to honest acceptances. *)
}
