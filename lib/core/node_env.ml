type config = {
  scheme : Lo_crypto.Signer.scheme;
  reconcile_period : float;
  reconcile_fanout : int;
  request_timeout : float;
  max_retries : int;
  retry_backoff : float;
  retry_jitter : float;
  demote_after : int;
  sketch_capacity : int;
  clock_cells : int;
  fee_threshold : int;
  max_block_txs : int;
  max_delta : int;
  digest_share_period : float;
  always_full_digests : bool;
  reject_exposed_blocks : bool;
  max_digests_per_peer : int;
  digest_history : int;
}

let default_config scheme =
  {
    scheme;
    reconcile_period = 1.0;
    reconcile_fanout = 3;
    request_timeout = 1.0;
    max_retries = 3;
    retry_backoff = 2.0;
    retry_jitter = 0.2;
    demote_after = 2;
    sketch_capacity = Commitment.default_sketch_capacity;
    clock_cells = Commitment.default_clock_cells;
    fee_threshold = 0;
    max_block_txs = 2000;
    max_delta = 100;
    digest_share_period = 2.0;
    always_full_digests = false;
    reject_exposed_blocks = false;
    max_digests_per_peer = 1024;
    digest_history = max_int;
  }

type hooks = {
  mutable on_tx_content : Tx.t -> unit;
  mutable on_block_accepted : Block.t -> unit;
  mutable on_exposure : accused:string -> unit;
  mutable on_suspicion : suspect:string -> unit;
  mutable on_suspicion_cleared : suspect:string -> unit;
  mutable on_violation : Inspector.violation -> block:Block.t -> unit;
  mutable on_sketch_decode : unit -> unit;
  mutable on_reconcile : unit -> unit;
  mutable on_reconcile_complete : unit -> unit;
}

let no_hooks () =
  {
    on_tx_content = (fun _ -> ());
    on_block_accepted = (fun _ -> ());
    on_exposure = (fun ~accused:_ -> ());
    on_suspicion = (fun ~suspect:_ -> ());
    on_suspicion_cleared = (fun ~suspect:_ -> ());
    on_violation = (fun _ ~block:_ -> ());
    on_sketch_decode = (fun () -> ());
    on_reconcile = (fun () -> ());
    on_reconcile_complete = (fun () -> ());
  }

type t = {
  config : config;
  hooks : hooks;
  trace : Lo_obs.Trace.t option;
  my_id : string;
  my_index : int;
  signer : Lo_crypto.Signer.t;
  rng : Lo_net.Rng.t;
  acc : Accountability.t;
  primary_log : Commitment.Log.t;
  now : unit -> float;
  send : dst:int -> Messages.t -> unit;
  broadcast : Messages.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  id_of : int -> string;
  index_of : string -> int option;
  population : unit -> int;
  neighbors : unit -> int list;
  log_for : peer_index:int -> Commitment.Log.t;
  wire_digest : peer_index:int -> Commitment.digest;
  commit : source:string option -> ids:int list -> unit;
  expose : accused:string -> Evidence.t -> unit;
  retry_inspections : owner:string -> unit;
  record_deviation : kind:string -> height:int option -> unit;
}
