module Rng = Lo_net.Rng
module Sketch = Lo_sketch.Sketch

type pending = {
  mutable waiting : bool;
  mutable retries : int;
  mutable gen : int;
  mutable unresponsive : int;
      (* consecutive timeout escalations; a score >= demote_after keeps
         the peer out of routine round sampling (demotion, not blame) *)
}

type t = {
  content : Content_sync.t;
  tracker : Peer_tracker.t;
  pending : (string, pending) Hashtbl.t;
  seen_suspicions : (string * string, unit) Hashtbl.t;
}

let create ~content ~tracker =
  {
    content;
    tracker;
    pending = Hashtbl.create 32;
    seen_suspicions = Hashtbl.create 16;
  }

let pending_for t peer_id =
  match Hashtbl.find_opt t.pending peer_id with
  | Some p -> p
  | None ->
      let p = { waiting = false; retries = 0; gen = 0; unresponsive = 0 } in
      Hashtbl.add t.pending peer_id p;
      p

let unresponsive_score t peer_id =
  match Hashtbl.find_opt t.pending peer_id with
  | Some p -> p.unresponsive
  | None -> 0

(* Exponential backoff with seeded jitter: timeout * backoff^retries,
   perturbed by +/- retry_jitter so probes desynchronise after a
   partition heals instead of stampeding in lockstep. *)
let retry_delay (env : Node_env.t) ~retries =
  let base =
    env.config.request_timeout
    *. (env.config.retry_backoff ** float_of_int retries)
  in
  let jitter =
    if env.config.retry_jitter <= 0. then 0.
    else base *. env.config.retry_jitter *. (Rng.float env.rng 2.0 -. 1.0)
  in
  Float.max 0.05 (base +. jitter)

let cap n xs = List.filteri (fun i _ -> i < n) xs

(* --- trace emission (no-ops without a sink) --- *)

let span_key peer_index = "recon:" ^ string_of_int peer_index

let emit_span_begin (env : Node_env.t) ~peer_index =
  match env.trace with
  | Some tr ->
      Lo_obs.Trace.emit tr ~at:(env.now ())
        (Lo_obs.Event.Span_begin
           { node = env.my_index; key = span_key peer_index })
  | None -> ()

let emit_span_end (env : Node_env.t) ~peer_index ~ok =
  match env.trace with
  | Some tr ->
      Lo_obs.Trace.emit tr ~at:(env.now ())
        (Lo_obs.Event.Span_end
           { node = env.my_index; key = span_key peer_index; ok })
  | None -> ()

let peer_of (env : Node_env.t) peer_id =
  Option.value (env.index_of peer_id) ~default:(-1)

let emit_suspect (env : Node_env.t) peer_id =
  match env.trace with
  | Some tr ->
      Lo_obs.Trace.emit tr ~at:(env.now ())
        (Lo_obs.Event.Suspect { node = env.my_index; peer = peer_of env peer_id })
  | None -> ()

let emit_clear (env : Node_env.t) peer_id =
  match env.trace with
  | Some tr ->
      Lo_obs.Trace.emit tr ~at:(env.now ())
        (Lo_obs.Event.Clear { node = env.my_index; peer = peer_of env peer_id })
  | None -> ()

(* What the peer is (probably) missing from us, and — when the stored
   digest carries a sketch — what we are missing from it. The common
   path is the Bloom-clock comparison of Sec. 4.2: we offer the ids in
   cells where our clock exceeds the peer's; the responder drops
   duplicates. A full stored sketch enables the exact set difference
   (skipped for very large gaps, where explicit clock-guided offers
   converge faster than an expensive decode). *)
let clock_delta (env : Node_env.t) ~log my_digest peer_digest =
  let surplus =
    Lo_bloom.Bloom_clock.diff_cells my_digest.Commitment.clock
      peer_digest.Commitment.clock
    |> List.filter (fun cell ->
           Lo_bloom.Bloom_clock.get my_digest.Commitment.clock cell
           > Lo_bloom.Bloom_clock.get peer_digest.Commitment.clock cell)
  in
  let candidates = Commitment.Log.ids_in_cells log surplus in
  (* Most recent first: those are the likeliest gaps. *)
  (cap env.config.max_delta (List.rev candidates), [])

let delta_for (env : Node_env.t) ~log peer_latest =
  let my_digest = Commitment.Log.current_digest log in
  match peer_latest with
  | None -> (cap env.config.max_delta (Commitment.Log.all_ids log), [])
  | Some peer_digest -> begin
      try
      match (my_digest.Commitment.sketch, peer_digest.Commitment.sketch) with
      | Some mine_sketch, Some peer_sketch -> begin
          env.hooks.on_sketch_decode ();
          let merged = Sketch.merge mine_sketch peer_sketch in
          let estimate =
            Lo_bloom.Bloom_clock.estimate_difference
              my_digest.Commitment.clock peer_digest.Commitment.clock
          in
          if estimate > 128 then raise Exit;
          let small = min (Sketch.capacity merged) (estimate + 8) in
          let decoded =
            match Sketch.decode (Sketch.truncate merged ~capacity:small) with
            | Ok diff -> Ok diff
            | Error `Decode_failure when small < Sketch.capacity merged ->
                Sketch.decode merged
            | Error `Decode_failure -> Error `Decode_failure
          in
          match decoded with
          | Ok diff ->
              let mine, theirs =
                List.partition (Commitment.Log.contains log) diff
              in
              (cap env.config.max_delta mine, theirs)
          | Error `Decode_failure ->
              (* Degrade to offering the most recent ids; later rounds
                 converge (the paper splits the sketch instead). *)
              let recent =
                List.rev (Commitment.Log.all_ids log)
                |> cap env.config.max_delta
              in
              (recent, [])
        end
      | _ -> clock_delta env ~log my_digest peer_digest
      with Exit -> clock_delta env ~log my_digest peer_digest
    end

let rec reconcile_with ?(force = false) t (env : Node_env.t) ~peer_index =
  if peer_index <> env.my_index then begin
    let peer_id = env.id_of peer_index in
    if not (Accountability.is_exposed env.acc peer_id) then begin
      let p = pending_for t peer_id in
      if not p.waiting then begin
        let log = env.log_for ~peer_index in
        let delta, learned =
          delta_for env ~log (Peer_tracker.latest t.tracker ~peer:peer_id)
        in
        (* Commit to the ids the peer committed to and we lack
           (processing them after everything we know, Alg. 1 line 22). *)
        let fresh =
          Content_sync.commit_fresh t.content env ~dedup:false
            ~known:(Commitment.Log.contains env.primary_log)
            ~source:peer_id learned
        in
        let my_digest = env.wire_digest ~peer_index in
        let want = Content_sync.want_list t.content env in
        if force || delta <> [] || want <> []
           || Peer_tracker.latest t.tracker ~peer:peer_id = None
        then begin
          env.hooks.on_reconcile ();
          emit_span_begin env ~peer_index;
          p.waiting <- true;
          p.gen <- p.gen + 1;
          let gen = p.gen in
          env.send ~dst:peer_index
            (Messages.Commit_request
               { digest = my_digest; delta; want; appended = fresh });
          env.schedule
            ~delay:(retry_delay env ~retries:p.retries)
            (fun () -> request_timeout t env ~peer_index ~peer:peer_id ~gen)
        end
      end
    end
  end

and request_timeout t (env : Node_env.t) ~peer_index ~peer:peer_id ~gen =
  let p = pending_for t peer_id in
  if p.waiting && p.gen = gen then begin
    p.waiting <- false;
    p.retries <- p.retries + 1;
    emit_span_end env ~peer_index ~ok:false;
    if p.retries <= env.config.max_retries then
      reconcile_with ~force:true t env ~peer_index
    else begin
      p.retries <- 0;
      p.unresponsive <- p.unresponsive + 1;
      if not (Accountability.is_suspected env.acc peer_id) then begin
        Accountability.suspect env.acc ~peer:peer_id ~now:(env.now ())
          ~reason:"request timeout";
        env.hooks.on_suspicion ~suspect:peer_id;
        emit_suspect env peer_id;
        let last_digest = Peer_tracker.latest t.tracker ~peer:peer_id in
        env.broadcast
          (Messages.Suspicion_note
             {
               suspect = peer_id;
               reporter = env.my_id;
               last_digest;
               reason = "request timeout";
             })
      end
    end
  end

let resolve_pending t (env : Node_env.t) ~peer:peer_id =
  let p = pending_for t peer_id in
  let was_waiting = p.waiting in
  p.waiting <- false;
  p.retries <- 0;
  p.unresponsive <- 0;
  if was_waiting then begin
    env.hooks.on_reconcile_complete ();
    match env.index_of peer_id with
    | Some peer_index -> emit_span_end env ~peer_index ~ok:true
    | None -> ()
  end;
  if Accountability.is_suspected env.acc peer_id then begin
    Accountability.clear_suspicion env.acc ~peer:peer_id;
    env.hooks.on_suspicion_cleared ~suspect:peer_id;
    emit_clear env peer_id;
    (* The suspect answered us: retract our blame so the rest of the
       network does not keep an unresolvable suspicion on an honest
       node (temporal accuracy, Sec. 3.2). *)
    env.broadcast
      (Messages.Suspicion_withdraw { suspect = peer_id; reporter = env.my_id })
  end

let handle_withdrawal t (env : Node_env.t) ~suspect ~reporter:_ =
  if not (String.equal suspect env.my_id) then begin
    let p = pending_for t suspect in
    p.unresponsive <- 0;
    if Accountability.is_suspected env.acc suspect then begin
      Accountability.clear_suspicion env.acc ~peer:suspect;
      env.hooks.on_suspicion_cleared ~suspect;
      emit_clear env suspect;
      (* [seen_suspicions] is deliberately NOT purged here: stale
         suspicion notes for this incident may still be in flight, and
         re-accepting them would re-raise the suspicion and chase the
         withdrawal around the network forever. The per-(suspect,
         reporter) dedup stays; independent observation (each peer's
         own timeout escalation) still spreads any genuine new blame. *)
      (* Relay only on a state change, so the gossip terminates. *)
      env.broadcast
        (Messages.Suspicion_withdraw { suspect; reporter = env.my_id })
    end
  end

let handle_commit_request t (env : Node_env.t) ~from ~digest ~delta ~want
    ~appended =
  Peer_tracker.note_digest t.tracker env digest;
  Peer_tracker.note_appended t.tracker ~owner:digest.Commitment.owner
    ~seq:digest.Commitment.seq appended;
  let from_id = digest.Commitment.owner in
  (* Requests are judged against the log we show this peer (equivocators
     fork), so the fork stays internally consistent. *)
  let log = env.log_for ~peer_index:from in
  let unknown =
    Content_sync.commit_fresh t.content env ~dedup:true
      ~known:(Commitment.Log.contains log) ~source:from_id delta
  in
  let log = env.log_for ~peer_index:from in
  let my_digest = env.wire_digest ~peer_index:from in
  let my_want = Content_sync.want_list t.content env in
  (* The reverse direction: what the requester is missing from us,
     judged against the digest it just sent. *)
  let reverse_delta, _ = delta_for env ~log (Some digest) in
  env.send ~dst:from
    (Messages.Commit_response
       {
         digest = my_digest;
         want = my_want;
         delta = reverse_delta;
         appended = unknown;
       });
  (* Content the requester asked for and we can serve. *)
  let have = Content_sync.serve t.content want in
  if have <> [] then env.send ~dst:from (Messages.Tx_batch have)

let handle_commit_response t (env : Node_env.t) ~from ~digest ~want ~delta
    ~appended =
  resolve_pending t env ~peer:digest.Commitment.owner;
  Peer_tracker.note_digest t.tracker env digest;
  Peer_tracker.note_appended t.tracker ~owner:digest.Commitment.owner
    ~seq:digest.Commitment.seq appended;
  let have = Content_sync.serve t.content want in
  if have <> [] then env.send ~dst:from (Messages.Tx_batch have);
  (* Commit to the ids the responder says we are missing, then fetch
     their content right away. *)
  let fresh =
    Content_sync.commit_fresh t.content env ~dedup:true
      ~known:(Commitment.Log.contains env.primary_log)
      ~source:digest.Commitment.owner delta
  in
  if fresh <> [] then begin
    let my_digest = env.wire_digest ~peer_index:from in
    env.send ~dst:from
      (Messages.Commit_request
         { digest = my_digest; delta = []; want = fresh; appended = fresh })
  end

let handle_suspicion t (env : Node_env.t) ~from note =
  let { Messages.suspect; reporter; last_digest; reason = _ } = note in
  if String.equal suspect env.my_id then begin
    (* Publicly answer: share our current (full) commitment with both
       parties. *)
    let d = Commitment.Log.current_digest env.primary_log in
    (match env.index_of reporter with
    | Some r -> env.send ~dst:r (Messages.Digest_share d)
    | None -> ());
    env.send ~dst:from (Messages.Digest_share d)
  end
  else if not (Hashtbl.mem t.seen_suspicions (suspect, reporter)) then begin
    Hashtbl.add t.seen_suspicions (suspect, reporter) ();
    Option.iter (Peer_tracker.note_digest t.tracker env) last_digest;
    (* If we know a newer commitment, give it to the reporter (Fig. 4). *)
    (match
       ( Peer_tracker.latest t.tracker ~peer:suspect,
         last_digest,
         env.index_of reporter )
     with
    | Some mine, Some theirs, Some r
      when mine.Commitment.seq > theirs.Commitment.seq ->
        env.send ~dst:r (Messages.Digest_reply [ mine ])
    | _ -> ());
    if not (Accountability.is_suspected env.acc suspect) then begin
      Accountability.suspect env.acc ~peer:suspect ~now:(env.now ())
        ~reason:"gossiped suspicion";
      env.hooks.on_suspicion ~suspect;
      emit_suspect env suspect
    end;
    env.broadcast (Messages.Suspicion_note note);
    (* Probe the suspect ourselves so a correct node can clear itself. *)
    match env.index_of suspect with
    | Some s -> reconcile_with ~force:true t env ~peer_index:s
    | None -> ()
  end

let rec round t (env : Node_env.t) =
  let candidates =
    List.filter
      (fun i -> not (Accountability.is_exposed env.acc (env.id_of i)))
      (env.neighbors ())
  in
  (* Flapping peers (repeated timeout escalations) are demoted out of
     routine sampling — they waste the round's fanout budget — but are
     still probed occasionally so they can redeem themselves. *)
  let responsive, flapping =
    List.partition
      (fun i -> unresponsive_score t (env.id_of i) < env.config.demote_after)
      candidates
  in
  let pool = if responsive = [] then flapping else responsive in
  let chosen =
    Rng.sample_without_replacement env.rng env.config.reconcile_fanout pool
  in
  List.iter (fun i -> reconcile_with t env ~peer_index:i) chosen;
  (match flapping with
  | [] -> ()
  | _ when responsive = [] -> ()
  | _ ->
      if Rng.int env.rng 4 = 0 then
        reconcile_with ~force:true t env
          ~peer_index:(Rng.pick_list env.rng flapping));
  (* Keep probing one suspected peer per round so that a recovered node
     is eventually cleared (temporal accuracy, Sec. 3.2). *)
  (match Accountability.suspected_peers env.acc with
  | [] -> ()
  | suspected -> begin
      let peer, _ = Rng.pick_list env.rng suspected in
      match env.index_of peer with
      | Some i -> reconcile_with ~force:true t env ~peer_index:i
      | None -> ()
    end);
  env.schedule ~delay:env.config.reconcile_period (fun () -> round t env)

(* Crash recovery: every in-flight request state is stale (replies were
   lost while down), so invalidate the armed timers and start over; then
   force a fresh exchange with every peer we still suspect, so stale
   suspicions raised just before the crash get re-examined. *)
let on_restart t (env : Node_env.t) =
  Hashtbl.iter
    (fun peer_id p ->
      if p.waiting then begin
        (* Close the span the crash orphaned, or the next round's
           Span_begin for the same key would read as a double-begin. *)
        match env.index_of peer_id with
        | Some peer_index -> emit_span_end env ~peer_index ~ok:false
        | None -> ()
      end;
      p.waiting <- false;
      p.retries <- 0;
      p.gen <- p.gen + 1)
    t.pending;
  List.iter
    (fun (peer, _) ->
      match env.index_of peer with
      | Some i -> reconcile_with ~force:true t env ~peer_index:i
      | None -> ())
    (Accountability.suspected_peers env.acc)
