type t = {
  mempool : Mempool.t;
  missing : (int, float) Hashtbl.t; (* committed ids lacking content *)
  adversary : Adversary.t;
  canonical : Tx.t -> Tx.t;
      (* per-world tx interning: every path into the mempool funnels
         through [store_content], so substituting the canonical
         (field-for-field equal) instance here collapses the per-node
         decoded copies a broadcast fans out. Default: identity. *)
}

let create ?(canonical = fun tx -> tx) ~mempool ~adversary () =
  { mempool; missing = Hashtbl.create 64; adversary; canonical }

let missing_count t = Hashtbl.length t.missing

let want_list t (env : Node_env.t) =
  let acc = ref [] and count = ref 0 in
  (try
     Hashtbl.iter
       (fun id _ ->
         if !count >= env.config.max_delta then raise Exit;
         acc := id :: !acc;
         incr count)
       t.missing
   with Exit -> ());
  !acc

let mark_missing t (env : Node_env.t) ids =
  List.iter
    (fun id ->
      if not (Mempool.mem_short t.mempool id) then
        Hashtbl.replace t.missing id (env.now ()))
    ids

let commit_fresh t (env : Node_env.t) ~dedup ~known ~source ids =
  let fresh = List.filter (fun id -> not (known id)) ids in
  let fresh = if dedup then List.sort_uniq Int.compare fresh else fresh in
  if fresh <> [] then begin
    env.commit ~source:(Some source) ~ids:fresh;
    mark_missing t env fresh
  end;
  fresh

let serve t ids =
  List.filter_map
    (fun id ->
      Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool id))
    ids

let store_content t (env : Node_env.t) tx ~from_peer =
  let tx = t.canonical tx in
  let short = Tx.short_id tx in
  if not (Mempool.mem_short t.mempool short) then begin
    match Mempool.add t.mempool ~tx ~received_at:(env.now ()) ~from_peer with
    | `Duplicate -> ()
    | `Added _ ->
        Hashtbl.remove t.missing short;
        env.hooks.on_tx_content tx
  end

(* Batched Stage II admission: one shared signature-verification pass
   and ONE commitment bundle (one signed digest) per batch, instead of
   one per transaction. Which transactions land in the mempool and
   which ids reach the commitment log match [ingest_batch] exactly;
   only the bundle granularity — and hence the digest's seq — differs,
   which is why the DES keeps the per-tx path (its golden traces pin
   per-tx bundles) while the live backend ingests through this one. *)
let ingest_batch_bulk t (env : Node_env.t) ~from txs =
  let from_id = env.id_of from in
  let keep tx =
    if Adversary.censors_tx t.adversary tx then begin
      env.record_deviation ~kind:"censor-content" ~height:None;
      false
    end
    else true
  in
  let result =
    Mempool.ingest_batch ~canonical:t.canonical ~keep ~scheme:env.config.scheme
      ~known:(fun short -> Commitment.Log.contains env.primary_log short)
      ~commit:(fun ids -> env.commit ~source:(Some from_id) ~ids)
      ~received_at:(env.now ()) ~from_peer:(Some from_id) t.mempool txs
  in
  List.iter
    (fun e ->
      Hashtbl.remove t.missing e.Mempool.short_id;
      env.hooks.on_tx_content e.Mempool.tx)
    result.Mempool.accepted

let ingest_batch t (env : Node_env.t) ~from txs =
  let from_id = env.id_of from in
  List.iter
    (fun tx ->
      match Tx.prevalidate env.config.scheme tx with
      | Error _ -> ()
      | Ok () ->
          if Adversary.censors_tx t.adversary tx then
            env.record_deviation ~kind:"censor-content" ~height:None
          else begin
            let short = Tx.short_id tx in
            if not (Commitment.Log.contains env.primary_log short) then
              env.commit ~source:(Some from_id) ~ids:[ short ];
            store_content t env tx ~from_peer:(Some from_id)
          end)
    txs
