type t =
  | Honest
  | Silent_censor
  | Tx_censor of (Tx.t -> bool)
  | Block_injector
  | Block_reorderer
  | Blockspace_censor of (Tx.t -> bool)
  | Equivocator

let kind_label = function
  | Honest -> "honest"
  | Silent_censor -> "silent-censor"
  | Tx_censor _ -> "tx-censor"
  | Block_injector -> "block-injector"
  | Block_reorderer -> "block-reorderer"
  | Blockspace_censor _ -> "blockspace-censor"
  | Equivocator -> "equivocator"

let drops_all_messages = function Silent_censor -> true | _ -> false
let censors_tx t tx = match t with Tx_censor pred -> pred tx | _ -> false
let forks_log = function Equivocator -> true | _ -> false

let shows_fork_to t ~peer_index =
  match t with Equivocator -> peer_index mod 2 = 1 | _ -> false

type block_ctx = {
  find_txid : string -> Tx.t option;
  forge_tx : unit -> Tx.t;
}

let cap n xs = List.filteri (fun i _ -> i < n) xs

let bundles_of_sizes txids sizes =
  (* Regroup a flat txid list by bundle sizes. *)
  let rec go ids sizes acc =
    match sizes with
    | [] -> (List.rev acc, ids)
    | s :: rest ->
        let bundle = cap s ids in
        let remaining = List.filteri (fun i _ -> i >= s) ids in
        go remaining rest (bundle :: acc)
  in
  go txids sizes []

let tamper_block t ctx (out : Policy.build_output) =
  match t with
  | Block_injector -> begin
      (* Forge a fresh high-fee transaction and smuggle it into the
         front of the first non-empty bundle. *)
      let tx = ctx.forge_tx () in
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let injected = ref false in
      let bundles =
        List.map
          (fun b ->
            if (not !injected) && b <> [] then begin
              injected := true;
              tx.Tx.id :: b
            end
            else b)
          bundles
      in
      if !injected then
        {
          out with
          txids = List.concat bundles @ appendix;
          bundle_sizes = List.map List.length bundles;
        }
      else out
    end
  | Block_reorderer -> begin
      (* Order inside bundles by fee, defeating the canonical shuffle. *)
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let fee_of txid =
        match ctx.find_txid txid with Some tx -> tx.Tx.fee | None -> 0
      in
      let bundles =
        List.map
          (fun b ->
            List.sort
              (fun a b ->
                match Int.compare (fee_of b) (fee_of a) with
                | 0 -> String.compare a b
                | c -> c)
              b)
          bundles
      in
      { out with txids = List.concat bundles @ appendix }
    end
  | Blockspace_censor pred -> begin
      let bundles, appendix = bundles_of_sizes out.txids out.bundle_sizes in
      let keep txid =
        match ctx.find_txid txid with Some tx -> not (pred tx) | None -> true
      in
      let bundles = List.map (List.filter keep) bundles in
      {
        out with
        txids = List.concat bundles @ appendix;
        bundle_sizes = List.map List.length bundles;
      }
    end
  | Honest | Silent_censor | Tx_censor _ | Equivocator -> out
