(* Open-addressing hash set of positive ints on a Bigarray: one
   unboxed word per slot, zero GC-scanned pointers, ~16 bytes per
   member at the 50% worst-case load — versus the 4–5 scanned words a
   [(int, unit) Hashtbl.t] binding costs. 0 is the empty-slot sentinel
   (short ids are always >= 1). *)

type table =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable slots : table;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let make_table cap : table =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
  Bigarray.Array1.fill a 0;
  a

let create ?(initial_capacity = 256) () =
  let cap = ref 16 in
  while !cap < initial_capacity do
    cap := !cap * 2
  done;
  { slots = make_table !cap; mask = !cap - 1; count = 0 }

(* Knuth multiplicative hashing spreads consecutive short ids. *)
let slot_of t key = (key * 2654435761) land max_int land t.mask

let rec probe slots mask key i =
  let v = Bigarray.Array1.unsafe_get slots i in
  if v = key then `Found
  else if v = 0 then `Empty i
  else probe slots mask key ((i + 1) land mask)

let mem t key =
  match probe t.slots t.mask key (slot_of t key) with
  | `Found -> true
  | `Empty _ -> false

let grow t =
  let old = t.slots in
  let old_cap = t.mask + 1 in
  let cap = old_cap * 2 in
  t.slots <- make_table cap;
  t.mask <- cap - 1;
  for i = 0 to old_cap - 1 do
    let v = Bigarray.Array1.unsafe_get old i in
    if v <> 0 then begin
      match probe t.slots t.mask v (slot_of t v) with
      | `Empty j -> Bigarray.Array1.unsafe_set t.slots j v
      | `Found -> ()
    end
  done

let add t key =
  if key <= 0 then invalid_arg "Dedup_set.add: key must be positive";
  match probe t.slots t.mask key (slot_of t key) with
  | `Found -> false
  | `Empty i ->
      Bigarray.Array1.unsafe_set t.slots i key;
      t.count <- t.count + 1;
      (* Grow at 50% load: probes stay short, slots stay cheap. *)
      if 2 * t.count > t.mask then grow t;
      true

let cardinal t = t.count
let capacity t = t.mask + 1

let iter t f =
  for i = 0 to t.mask do
    let v = Bigarray.Array1.unsafe_get t.slots i in
    if v <> 0 then f v
  done
