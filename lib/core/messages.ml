module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer

type suspicion_note = {
  suspect : string;
  reporter : string;
  last_digest : Commitment.digest option;
  reason : string;
}

type t =
  | Submit of Tx.t
  | Submit_ack of { txid : string; ack_signature : string }
  | Commit_request of {
      digest : Commitment.digest;
      delta : int list;
      want : int list;
      appended : int list;
    }
  | Commit_response of {
      digest : Commitment.digest;
      want : int list;
      delta : int list;
      appended : int list;
    }
  | Tx_batch of Tx.t list
  | Digest_share of Commitment.digest
  | Digest_request of { owner : string; seq : int }
  | Digest_reply of Commitment.digest list
  | Suspicion_note of suspicion_note
  | Suspicion_withdraw of { suspect : string; reporter : string }
  | Exposure_note of Evidence.t
  | Block_announce of Block.t

let tag = function
  | Submit _ -> "lo:submit"
  | Submit_ack _ -> "lo:submit-ack"
  | Commit_request _ -> "lo:commit-req"
  | Commit_response _ -> "lo:commit-resp"
  | Tx_batch _ -> "lo:txs"
  | Digest_share _ -> "lo:digest"
  | Digest_request _ -> "lo:digest-req"
  | Digest_reply _ -> "lo:digest-reply"
  | Suspicion_note _ -> "lo:suspicion"
  | Suspicion_withdraw _ -> "lo:withdraw"
  | Exposure_note _ -> "lo:exposure"
  | Block_announce _ -> "lo:block"

let encode_into w msg =
  Writer.reset w;
  (match msg with
  | Submit tx ->
      Writer.u8 w 0;
      Tx.encode w tx
  | Submit_ack { txid; ack_signature } ->
      Writer.u8 w 10;
      Writer.fixed w txid;
      Writer.fixed w ack_signature
  | Commit_request { digest; delta; want; appended } ->
      Writer.u8 w 1;
      Commitment.encode w digest;
      Writer.list w (Writer.u32 w) delta;
      Writer.list w (Writer.u32 w) want;
      Writer.list w (Writer.u32 w) appended
  | Commit_response { digest; want; delta; appended } ->
      Writer.u8 w 2;
      Commitment.encode w digest;
      Writer.list w (Writer.u32 w) want;
      Writer.list w (Writer.u32 w) delta;
      Writer.list w (Writer.u32 w) appended
  | Tx_batch txs ->
      Writer.u8 w 3;
      Writer.list w (Tx.encode w) txs
  | Digest_share digest ->
      Writer.u8 w 4;
      Commitment.encode w digest
  | Digest_request { owner; seq } ->
      Writer.u8 w 5;
      Writer.fixed w owner;
      Writer.varint w seq
  | Digest_reply digests ->
      Writer.u8 w 6;
      Writer.list w (Commitment.encode w) digests
  | Suspicion_note { suspect; reporter; last_digest; reason } ->
      Writer.u8 w 7;
      Writer.fixed w suspect;
      Writer.fixed w reporter;
      (match last_digest with
      | None -> Writer.u8 w 0
      | Some d ->
          Writer.u8 w 1;
          Commitment.encode w d);
      Writer.bytes w reason
  | Suspicion_withdraw { suspect; reporter } ->
      Writer.u8 w 11;
      Writer.fixed w suspect;
      Writer.fixed w reporter
  | Exposure_note evidence ->
      Writer.u8 w 8;
      Evidence.encode w evidence
  | Block_announce block ->
      Writer.u8 w 9;
      Block.encode w block);
  Writer.contents w

let encode msg = encode_into (Writer.create ~initial_size:128 ()) msg

let decode_reader r =
  let msg =
    match Reader.u8 r with
    | 0 -> Submit (Tx.decode r)
    | 1 ->
        let digest = Commitment.decode r in
        let delta = Reader.list r Reader.u32 in
        let want = Reader.list r Reader.u32 in
        let appended = Reader.list r Reader.u32 in
        Commit_request { digest; delta; want; appended }
    | 2 ->
        let digest = Commitment.decode r in
        let want = Reader.list r Reader.u32 in
        let delta = Reader.list r Reader.u32 in
        let appended = Reader.list r Reader.u32 in
        Commit_response { digest; want; delta; appended }
    | 3 -> Tx_batch (Reader.list r Tx.decode)
    | 4 -> Digest_share (Commitment.decode r)
    | 5 ->
        let owner = Reader.fixed r Signer.id_size in
        let seq = Reader.varint r in
        Digest_request { owner; seq }
    | 6 -> Digest_reply (Reader.list r Commitment.decode)
    | 7 ->
        let suspect = Reader.fixed r Signer.id_size in
        let reporter = Reader.fixed r Signer.id_size in
        let last_digest =
          match Reader.u8 r with
          | 0 -> None
          | 1 -> Some (Commitment.decode r)
          | _ -> raise (Reader.Malformed "suspicion digest flag")
        in
        let reason = Reader.bytes r in
        Suspicion_note { suspect; reporter; last_digest; reason }
    | 8 -> Exposure_note (Evidence.decode r)
    | 9 -> Block_announce (Block.decode r)
    | 10 ->
        let txid = Reader.fixed r 32 in
        let ack_signature = Reader.fixed r Signer.signature_size in
        Submit_ack { txid; ack_signature }
    | 11 ->
        let suspect = Reader.fixed r Signer.id_size in
        let reporter = Reader.fixed r Signer.id_size in
        Suspicion_withdraw { suspect; reporter }
    | _ -> raise (Reader.Malformed "message kind")
  in
  Reader.expect_end r;
  msg

let decode s = decode_reader (Reader.of_string s)

let size msg = String.length (encode msg)
