(** Pairwise commitment reconciliation (Alg. 1) as a state machine.

    Owns the per-peer request state ([waiting]/retry counters), computes
    set deltas (sketch decode with Bloom-clock fallback, Sec. 4.2),
    drives the periodic NeighborsSync rounds, and implements the
    timeout → retry → suspicion escalation plus the suspicion gossip of
    Sec. 5.1. Content movement is delegated to {!Content_sync}; peer
    digests come from {!Peer_tracker}. *)

type t

val create : content:Content_sync.t -> tracker:Peer_tracker.t -> t

val reconcile_with : ?force:bool -> t -> Node_env.t -> peer_index:int -> unit
(** Open one reconciliation exchange with a neighbour (Alg. 1
    lines 10–22): compute the delta against its last known digest,
    commit anything we learned, send a {!Messages.Commit_request} and
    arm the retry timer. Skipped while a request to the same peer is in
    flight, and for exposed peers. [force] sends even when there is
    nothing to exchange (used for probing suspects). *)

val request_timeout : t -> Node_env.t -> peer_index:int -> peer:string -> gen:int -> unit
(** Retry-timer expiry for generation [gen]: retry up to [max_retries],
    then raise a suspicion and broadcast a {!Messages.Suspicion_note}
    (Sec. 5.1). Exposed for tests; normally fired by the timer armed in
    {!reconcile_with}. *)

val resolve_pending : t -> Node_env.t -> peer:string -> unit
(** A response from [peer] arrived: clear the in-flight state, the
    unresponsiveness score and any standing suspicion — and broadcast a
    {!Messages.Suspicion_withdraw} retraction if one was standing
    (temporal accuracy, Sec. 3.2). *)

val handle_withdrawal : t -> Node_env.t -> suspect:string -> reporter:string -> unit
(** Gossiped retraction: clear the matching suspicion and relay, but
    only on a state change so the gossip terminates. *)

val unresponsive_score : t -> string -> int
(** Consecutive timeout escalations against this peer since it last
    answered (drives round-sampling demotion). *)

val on_restart : t -> Node_env.t -> unit
(** Crash-recovery hook: invalidate all in-flight request state (armed
    timers become stale generations) and force a fresh exchange with
    every still-suspected peer. *)

val handle_commit_request :
  t ->
  Node_env.t ->
  from:int ->
  digest:Commitment.digest ->
  delta:int list ->
  want:int list ->
  appended:int list ->
  unit

val handle_commit_response :
  t ->
  Node_env.t ->
  from:int ->
  digest:Commitment.digest ->
  want:int list ->
  delta:int list ->
  appended:int list ->
  unit

val handle_suspicion :
  t -> Node_env.t -> from:int -> Messages.suspicion_note -> unit
(** Gossip-relay a suspicion, answer it when we are the suspect, and
    probe the suspect ourselves so a correct node is eventually
    cleared. *)

val round : t -> Node_env.t -> unit
(** One NeighborsSync round: reconcile with [reconcile_fanout] random
    non-exposed neighbours, probe one suspected peer, and re-arm the
    periodic timer. *)
