module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer

type t = {
  id : string;
  origin : string;
  fee : int;
  created_at : float;
  payload : string;
  signature : string;
}

let max_payload_size = 16 * 1024

let micros_of_time ts = int_of_float (Float.round (ts *. 1e6))
let time_of_micros us = float_of_int us /. 1e6

let encode_unsigned w ~origin ~fee ~created_at ~payload =
  Writer.fixed w origin;
  Writer.varint w fee;
  Writer.u64 w (micros_of_time created_at);
  Writer.bytes w payload

let encode w t =
  encode_unsigned w ~origin:t.origin ~fee:t.fee ~created_at:t.created_at
    ~payload:t.payload;
  Writer.fixed w t.signature

let signing_bytes ~origin ~fee ~created_at ~payload =
  let w = Writer.create () in
  encode_unsigned w ~origin ~fee ~created_at ~payload;
  Writer.contents w

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let create ~signer ~fee ~created_at ~payload =
  if fee < 0 then invalid_arg "Tx.create: negative fee";
  if String.length payload > max_payload_size then
    invalid_arg "Tx.create: payload too large";
  let origin = Signer.id signer in
  let unsigned = signing_bytes ~origin ~fee ~created_at ~payload in
  let signature = Signer.sign signer unsigned in
  let id = Lo_crypto.Sha256.digest_list [ unsigned; signature ] in
  { id; origin; fee; created_at; payload; signature }

let short_id t = Short_id.of_txid t.id

let decode r =
  let start = Reader.pos r in
  let origin = Reader.fixed r Signer.id_size in
  let fee = Reader.varint r in
  let fee_end = Reader.pos r in
  let us = Reader.u64 r in
  let created_at = time_of_micros us in
  let payload = Reader.bytes r in
  if String.length payload > max_payload_size then
    raise (Reader.Malformed "tx payload too large");
  let unsigned_end = Reader.pos r in
  let signature = Reader.fixed r Signer.signature_size in
  (* The id covers the canonical unsigned encoding. On canonical input
     — minimal varints, round-trippable timestamp — that encoding IS
     the wire span just decoded, so it can be sliced out instead of
     re-encoded through a fresh Writer. Non-minimal (but parseable)
     input falls back to re-encoding, preserving the semantics that the
     id is always computed over the canonical form. *)
  let unsigned =
    if
      fee_end - start - Signer.id_size = varint_size fee
      && unsigned_end - fee_end - 8 - String.length payload
         = varint_size (String.length payload)
      && micros_of_time created_at = us
    then Reader.slice r ~from:start ~until:unsigned_end
    else signing_bytes ~origin ~fee ~created_at ~payload
  in
  let id = Lo_crypto.Sha256.digest_list [ unsigned; signature ] in
  { id; origin; fee; created_at; payload; signature }

let to_string t =
  let w = Writer.create () in
  encode w t;
  Writer.contents w

let of_string s =
  let r = Reader.of_string s in
  let t = decode r in
  Reader.expect_end r;
  t

(* Wire-layout arithmetic, not a re-encode: fixed origin, fee varint,
   8-byte timestamp, length-prefixed payload, fixed signature. *)
let encoded_size t =
  String.length t.origin + varint_size t.fee + 8
  + varint_size (String.length t.payload)
  + String.length t.payload + String.length t.signature

let unsigned_bytes t =
  signing_bytes ~origin:t.origin ~fee:t.fee ~created_at:t.created_at
    ~payload:t.payload

let prevalidate scheme t =
  if t.fee < 0 then Error "negative fee"
  else if String.length t.payload > max_payload_size then Error "oversized payload"
  else if
    Signer.verify scheme ~id:t.origin ~msg:(unsigned_bytes t)
      ~signature:t.signature
  then Ok ()
  else Error "invalid signature"

let equal a b = String.equal a.id b.id

let pp fmt t =
  Format.fprintf fmt "tx[%s fee=%d size=%dB]"
    (Lo_crypto.Hex.encode (String.sub t.id 0 6))
    t.fee (String.length t.payload)
