(** A full LØ node over any {!Lo_transport} backend.

    A thin façade: identity, commitment log(s), message dispatch and
    timers live here, while the protocol logic is layered into
    {!Reconciler} (Alg. 1 mempool reconciliation with pairwise
    commitments), {!Content_sync} (Stage II content exchange),
    {!Peer_tracker} (commitment snapshots and equivocation detection,
    Sec. 5), {!Block_pipeline} (verifiable block building of Sec. 4.3)
    and {!Adversary} (the faulty behaviours used in the evaluation,
    selected per node via {!behavior}). The types below re-export the
    submodule definitions, so existing callers are unaffected. *)

type behavior = Adversary.t =
  | Honest
  | Silent_censor
      (** never answers protocol requests (Fig. 6's censoring faulty
          miner) *)
  | Tx_censor of (Tx.t -> bool)
      (** drops matching transactions at submission and content
          reception (Stage I/II censorship) *)
  | Block_injector
      (** smuggles its own uncommitted transactions into the middle of
          committed bundles *)
  | Block_reorderer
      (** orders transactions inside bundles by fee instead of the
          canonical shuffle *)
  | Blockspace_censor of (Tx.t -> bool)
      (** silently omits matching transactions from its blocks *)
  | Equivocator
      (** maintains a forked commitment log and shows different forks to
          different peers *)

type config = Node_env.config = {
  scheme : Lo_crypto.Signer.scheme;
  reconcile_period : float;  (** seconds between NeighborsSync rounds *)
  reconcile_fanout : int;  (** neighbours contacted per round (paper: 3) *)
  request_timeout : float;  (** seconds before the first retry (paper: 1 s) *)
  max_retries : int;  (** retries before suspicion (paper: 3) *)
  retry_backoff : float;
      (** per-retry timeout multiplier (exponential backoff; 1.0
          restores the paper's fixed interval) *)
  retry_jitter : float;
      (** seeded uniform perturbation of each retry delay (fraction) *)
  demote_after : int;
      (** unresponsiveness score at which a flapping peer is demoted out
          of routine round sampling (not blamed) *)
  sketch_capacity : int;
  clock_cells : int;
  fee_threshold : int;
  max_block_txs : int;
  max_delta : int;  (** cap on explicit ids per commit request *)
  digest_share_period : float;  (** latest-commitment gossip period *)
  always_full_digests : bool;
      (** ablation knob: ship the full sketch in every reconciliation
          message instead of the light digest (default false) *)
  reject_exposed_blocks : bool;
      (** enforcement (Sec. 5.4): refuse blocks whose creator this node
          has exposed. Off by default — the paper keeps inspection
          separate from block validation (Sec. 4.3). *)
  max_digests_per_peer : int;
      (** retention bound on stored peer commitment snapshots; the
          paper retains everything, which is fine for its runs but not
          for unbounded deployments. Oldest snapshots (except seq 0) are
          evicted beyond the cap (default 1024 ≈ 0.25–1.2 MB/peer). *)
  digest_history : int;
      (** how many of our own newest commitment snapshots keep their
          full sketch (the capacity-sized copy each costs); older ones
          are demoted to the light form. Default [max_int] — retain
          everything, the paper's behaviour — because historical full
          digests are served on the wire; scale harnesses opt into a
          small window. *)
}

val default_config : Lo_crypto.Signer.scheme -> config

type hooks = Node_env.hooks = {
  mutable on_tx_content : Tx.t -> unit;
      (** content entered the mempool (Fig. 7 latency) *)
  mutable on_block_accepted : Block.t -> unit;
  mutable on_exposure : accused:string -> unit;
  mutable on_suspicion : suspect:string -> unit;
  mutable on_suspicion_cleared : suspect:string -> unit;
  mutable on_violation : Inspector.violation -> block:Block.t -> unit;
  mutable on_sketch_decode : unit -> unit;
      (** one sketch set-reconciliation attempt *)
  mutable on_reconcile : unit -> unit;
      (** one active reconciliation round opened with a neighbour
          (Fig. 10) *)
  mutable on_reconcile_complete : unit -> unit;
      (** an outstanding commit request was answered (chaos metric).
          Hooks no longer carry an explicit [now] — consumers needing
          the event time read the deployment clock (see
          {!Node_env.hooks}). *)
}

type t

val create :
  ?tx_pool:Interner.Tx_pool.t ->
  config ->
  transport:Lo_transport.t ->
  rng:Lo_net.Rng.t ->
  directory:Directory.t ->
  signer:Lo_crypto.Signer.t ->
  neighbors:int list ->
  behavior:behavior ->
  t
(** The node's index is [transport.self]. [rng] is the node's single
    deterministic stream; under the DES backend pass a
    [Rng.split] of the engine's root generator so seeded runs stay
    reproducible, under the live backend any per-node seed works.
    [tx_pool] — a per-world canonical-transaction pool shared by all
    nodes of a deployment, so ten thousand mempools retain one decoded
    instance per tx instead of one each; omit it (live nodes do) to
    keep instances private. *)

val start : t -> unit
(** Register handlers (including the network restart handler driving
    the crash-recovery path) and schedule the periodic reconciliation
    and digest-share timers (staggered by a random offset). *)

val handle_message_view : t -> from:int -> tag:string -> Lo_codec.Reader.t -> unit
(** Handle one wire message decoded straight out of a reader view over
    the transport's receive buffer (no intermediate payload string).
    Behaviour matches the subscription handler {!start} registers,
    except [Tx_batch] is admitted through the batched pipeline
    ({!Content_sync.ingest_batch_bulk}): one signature batch, one
    commitment bundle per frame. Used by the live TCP backend; the view
    must not be retained past the call. Malformed input is contained
    (the message is dropped). *)

val handle_restart : t -> unit
(** The recovery path, run via the transport's restart handler (the DES
    backend wires it to {!Lo_net.Network.restart}):
    re-announce the commitment head, request missed peer snapshots, and
    restart reconciliation from the persisted log position. Exposed for
    tests and manual fault scripts. *)

val index : t -> int
val node_id : t -> string
val behavior : t -> behavior
val hooks : t -> hooks
val mempool : t -> Mempool.t
val commitment_log : t -> Commitment.Log.t
val accountability : t -> Accountability.t
val neighbors : t -> int list
val set_neighbors : t -> int list -> unit

val submit_tx : t -> Tx.t -> unit
(** Local client submission (Stage I). *)

val build_block : t -> policy:Policy.t -> Block.t option
(** Build (and locally accept + announce) a block on the current head
    with the given policy; [None] if the mempool yields no transactions
    and no block was produced. Behaviour modifiers apply here. *)

val head_hash : t -> string
val chain_height : t -> int
val find_block : t -> height:int -> Block.t option

val known_digest : t -> peer:string -> Commitment.digest option
(** Latest stored commitment digest of a peer. *)

val digest_snapshots : t -> (string * int * Commitment.digest) list
(** Every peer commitment snapshot this node retains, as
    [(owner id, seq, digest)] sorted by owner then seq — the raw
    material for the cross-node prefix-agreement oracle of [Lo_check]. *)

val commitment_storage_bytes : t -> int
(** Bytes of peer commitment digests currently retained (Sec. 6.5
    memory metric; own log excluded). *)

val missing_content_count : t -> int

val deviations : t -> (float * string * int option) list
(** Ground-truth log of this node's own adversarial deviations, sorted
    by time: [(first time, kind, block height)]. Kinds: ["silent-drop"]
    (ignored a commit request), ["censor-tx"] / ["censor-content"]
    (Stage I/II censorship), ["equivocate"] (the fork diverged),
    ["block-inject"] / ["block-reorder"] / ["block-censor"] (the block
    at [height] was tampered with). Deduplicated by (kind, height);
    always empty for honest nodes. Feeds the detection-completeness
    oracle of [Lo_check] — every entry is a deviation the protocol
    should eventually suspect or expose. *)

val ack_signing_bytes : txid:string -> string
(** Bytes a miner signs when acknowledging a submission (Stage I); used
    by {!Client} to verify receipts. *)
