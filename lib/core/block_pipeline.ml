module Rng = Lo_net.Rng

type t = {
  adversary : Adversary.t;
  tracker : Peer_tracker.t;
  content : Content_sync.t;
  mempool : Mempool.t;
  blocks_by_height : (int, Block.t) Hashtbl.t;
  mutable head : Block.t option;
  seen_blocks : (string, unit) Hashtbl.t;
  settled : (int, int) Hashtbl.t; (* short id -> block height *)
  pending_inspections : (string, Block.t list ref) Hashtbl.t; (* by creator *)
  inspection_retries : (string, int) Hashtbl.t; (* by block hash *)
  requested_digests : (string * int, unit) Hashtbl.t; (* (owner, seq) *)
}

let create ~adversary ~tracker ~content ~mempool =
  {
    adversary;
    tracker;
    content;
    mempool;
    blocks_by_height = Hashtbl.create 16;
    head = None;
    seen_blocks = Hashtbl.create 16;
    settled = Hashtbl.create 256;
    pending_inspections = Hashtbl.create 4;
    inspection_retries = Hashtbl.create 8;
    requested_digests = Hashtbl.create 32;
  }

let head_hash t =
  match t.head with None -> Block.genesis_hash | Some b -> Block.hash b

let chain_height t = match t.head with None -> 0 | Some b -> b.Block.height
let find_block t ~height = Hashtbl.find_opt t.blocks_by_height height

(* Adopt a block into the local chain view and settle its ids. *)
let admit t (env : Node_env.t) (block : Block.t) =
  if not (Hashtbl.mem t.blocks_by_height block.height) then begin
    Hashtbl.add t.blocks_by_height block.height block;
    (match t.head with
    | Some head when head.Block.height >= block.height -> ()
    | _ -> t.head <- Some block);
    List.iter
      (fun txid ->
        let id = Short_id.of_txid txid in
        if not (Hashtbl.mem t.settled id) then
          Hashtbl.add t.settled id block.height)
      block.txids;
    (match env.trace with
    | Some tr ->
        Lo_obs.Trace.emit tr ~at:(env.now ())
          (Lo_obs.Event.Block_accept
             {
               node = env.my_index;
               creator =
                 Option.value (env.index_of block.creator) ~default:(-1);
               height = block.height;
               bundles =
                 List.map
                   (fun (seq, txids) ->
                     (seq, List.map Short_id.of_txid txids))
                   (Block.bundle_txids block);
               omitted = List.map fst block.omissions;
               appendix = block.appendix;
             })
    | None -> ());
    env.hooks.on_block_accepted block
  end

(* --- inspection --- *)

let knowledge_for t creator =
  {
    Inspector.bundle_of_seq =
      (fun seq -> Peer_tracker.bundle_of_seq t.tracker ~owner:creator ~seq);
    find_tx =
      (fun short_id ->
        Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool short_id));
    settled_height = (fun short_id -> Hashtbl.find_opt t.settled short_id);
  }

let evidence_for t (block : Block.t) violation =
  let pair seq = Peer_tracker.digest_pair t.tracker ~owner:block.creator ~seq in
  match violation with
  | Inspector.Reordering { bundle_seq } | Inspector.Injection { bundle_seq = Some bundle_seq; _ } ->
      Option.map
        (fun (older, newer) ->
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = None })
        (pair bundle_seq)
  | Inspector.Blockspace_censorship { bundle_seq; short_id }
  | Inspector.False_omission_claim { bundle_seq; short_id } -> begin
      match (pair bundle_seq, Mempool.find_short t.mempool short_id) with
      | Some (older, newer), Some entry ->
          Some
            (Evidence.Block_bundle_violation
               { block; older; newer; omitted_tx = Some entry.Mempool.tx })
      | _ -> None
    end
  | Inspector.Injection { bundle_seq = None; _ } | Inspector.Bad_structure _ ->
      None

let rec inspect_block t (env : Node_env.t) (block : Block.t) ~from =
  if String.equal block.creator env.my_id then ()
  else begin
    let report = Inspector.inspect block (knowledge_for t block.creator) in
    let need_digests = ref [] in
    let violation_kind = function
      | Inspector.Bad_structure _ -> "bad-structure"
      | Inspector.Injection _ -> "injection"
      | Inspector.Reordering _ -> "reordering"
      | Inspector.Blockspace_censorship _ -> "blockspace-censorship"
      | Inspector.False_omission_claim _ -> "false-omission"
    in
    List.iter
      (fun violation ->
        env.hooks.on_violation violation ~block;
        (match env.trace with
        | Some tr ->
            Lo_obs.Trace.emit tr ~at:(env.now ())
              (Lo_obs.Event.Violation
                 {
                   node = env.my_index;
                   peer =
                     Option.value (env.index_of block.creator) ~default:(-1);
                   kind = violation_kind violation;
                 })
        | None -> ());
        match evidence_for t block violation with
        | Some evidence ->
            if Evidence.verify env.config.scheme evidence then
              env.expose ~accused:block.creator evidence
        | None -> begin
            match violation with
            | Inspector.Reordering { bundle_seq }
            | Inspector.Injection { bundle_seq = Some bundle_seq; _ }
            | Inspector.Blockspace_censorship { bundle_seq; _ }
            | Inspector.False_omission_claim { bundle_seq; _ } ->
                need_digests := bundle_seq :: !need_digests
            | Inspector.Injection { bundle_seq = None; _ }
            | Inspector.Bad_structure _ -> ()
          end)
      report.violations;
    (* Unverified bundles are audited by a random sample of inspectors
       (expected ~8 network-wide) rather than by everyone — the audit
       fetches the digest pair and a detected violation is gossiped to
       the rest. Violations always fetch (they need evidence). *)
    let audit_probability =
      Float.min 1.0 (8.0 /. float_of_int (env.population ()))
    in
    let sampled =
      List.filter
        (fun _ -> Rng.float env.rng 1.0 < audit_probability)
        report.unverified_bundles
    in
    match List.sort_uniq Int.compare (sampled @ !need_digests) with
    | [] -> ()
    | seqs ->
        (* Remember the block, then fetch the digest pairs we lack. *)
        let cell =
          match Hashtbl.find_opt t.pending_inspections block.creator with
          | Some cell -> cell
          | None ->
              let cell = ref [] in
              Hashtbl.add t.pending_inspections block.creator cell;
              cell
        in
        if not (List.exists (fun b -> Block.hash b = Block.hash block) !cell)
        then cell := block :: !cell;
        let targets =
          from
          :: (match env.index_of block.creator with Some i -> [ i ] | None -> [])
        in
        List.iter
          (fun seq ->
            List.iter
              (fun seq ->
                if not (Hashtbl.mem t.requested_digests (block.creator, seq))
                then begin
                  Hashtbl.add t.requested_digests (block.creator, seq) ();
                  List.iter
                    (fun dst ->
                      env.send ~dst
                        (Messages.Digest_request { owner = block.creator; seq }))
                    targets
                end)
              [ seq; seq - 1 ])
          seqs
  end

and retry_inspections t (env : Node_env.t) ~owner =
  match Hashtbl.find_opt t.pending_inspections owner with
  | None -> ()
  | Some cell ->
      let blocks = !cell in
      cell := [];
      Hashtbl.remove t.pending_inspections owner;
      List.iter
        (fun b ->
          let h = Block.hash b in
          let tries =
            Option.value (Hashtbl.find_opt t.inspection_retries h) ~default:0
          in
          if tries < 5 then begin
            Hashtbl.replace t.inspection_retries h (tries + 1);
            inspect_block t env b ~from:env.my_index
          end)
        blocks

(* --- acceptance --- *)

let accept_block t (env : Node_env.t) (block : Block.t) ~from =
  let h = Block.hash block in
  if not (Hashtbl.mem t.seen_blocks h) then begin
    Hashtbl.add t.seen_blocks h ();
    if
      Block.verify_signature env.config.scheme block
      && Block.structure_ok block
      && not
           (env.config.reject_exposed_blocks
           && Accountability.is_exposed env.acc block.creator)
    then begin
      admit t env block;
      env.broadcast (Messages.Block_announce block);
      inspect_block t env block ~from
    end
  end

(* --- building --- *)

let build_block t (env : Node_env.t) ~policy =
  let bundles =
    List.map
      (fun b -> (b.Commitment.Log.seq, b.Commitment.Log.ids))
      (Commitment.Log.bundles env.primary_log)
  in
  let input =
    {
      Policy.bundles;
      find_tx =
        (fun id ->
          Option.map (fun e -> e.Mempool.tx) (Mempool.find_short t.mempool id));
      is_settled = (fun id -> Hashtbl.mem t.settled id);
      fee_threshold = env.config.fee_threshold;
      max_txs = env.config.max_block_txs;
      seed = head_hash t;
    }
  in
  let out = Policy.build policy input in
  let ctx =
    {
      Adversary.find_txid =
        (fun txid ->
          Option.map (fun e -> e.Mempool.tx) (Mempool.find_id t.mempool txid));
      forge_tx =
        (fun () ->
          let tx =
            Tx.create ~signer:env.signer ~fee:1_000_000 ~created_at:(env.now ())
              ~payload:
                (Lo_crypto.Sha256.digest
                   ("inject" ^ string_of_int (Rng.int env.rng max_int)))
          in
          Content_sync.store_content t.content env tx ~from_peer:None;
          tx);
    }
  in
  let honest_out = out in
  let out = Adversary.tamper_block t.adversary ctx out in
  (* Ground truth for the conformance oracles: a block-stage deviation
     happened iff tampering actually changed the honest output. *)
  (if
     out.Policy.txids <> honest_out.Policy.txids
     || out.Policy.bundle_sizes <> honest_out.Policy.bundle_sizes
   then
     let kind =
       match t.adversary with
       | Adversary.Block_injector -> Some "block-inject"
       | Adversary.Block_reorderer -> Some "block-reorder"
       | Adversary.Blockspace_censor _ -> Some "block-censor"
       | _ -> None
     in
     match kind with
     | Some kind ->
         env.record_deviation ~kind ~height:(Some (chain_height t + 1))
     | None -> ());
  if out.Policy.txids = [] then None
  else begin
    let start_seq, commit_seq, bundle_sizes, appendix =
      match policy with
      | Policy.Lo_fifo ->
          ( out.Policy.start_seq,
            out.Policy.covered_seq,
            out.Policy.bundle_sizes,
            List.length out.Policy.txids
            - List.fold_left ( + ) 0 out.Policy.bundle_sizes )
      | Policy.Highest_fee -> (0, 0, [], List.length out.Policy.txids)
    in
    let block =
      Block.create ~signer:env.signer ~height:(chain_height t + 1)
        ~prev_hash:(head_hash t) ~start_seq ~commit_seq
        ~fee_threshold:env.config.fee_threshold
        ~txids:out.Policy.txids ~bundle_sizes ~appendix
        ~omissions:out.Policy.omissions ~timestamp:(env.now ())
    in
    (* Accept locally, then announce. *)
    let h = Block.hash block in
    Hashtbl.add t.seen_blocks h ();
    admit t env block;
    env.broadcast (Messages.Block_announce block);
    Some block
  end
