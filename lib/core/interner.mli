(** Per-world interning: one canonical instance per id, shared by every
    node of a deployment.

    At 10,000 nodes the same 32-byte tx ids and 33-byte signer ids are
    decoded from the wire over and over, each decode a fresh string —
    the dominant share of minor-heap churn in a sweep. An {!t} maps
    strings to dense insertion-ordered ints and back, handing out the
    single retained copy; {!Tx_pool} does the same for whole decoded
    transactions, keyed by their content-addressed id.

    Interning only substitutes an equal value for an equal value, so it
    cannot change a trace byte; [test/test_scale.ml] pins the
    equivalence (insert/lookup/iteration order against a naive
    reference) under random workloads. *)

type t

val create : ?initial:int -> unit -> t
val intern : t -> string -> int
(** Dense id of [s], assigned in first-seen order starting at 0. *)

val find : t -> string -> int option
val to_string : t -> int -> string
(** @raise Invalid_argument on an id never handed out. *)

val canonical : t -> string -> string
(** The retained copy equal to [s] (interning it first if new) —
    subsequent [String.equal] against other canonical copies hits the
    pointer-equality fast path. *)

val size : t -> int
val iter : t -> (int -> string -> unit) -> unit
(** In insertion order. *)

(** Canonical decoded transactions, keyed by content-addressed id. *)
module Tx_pool : sig
  type t

  val create : ?initial:int -> unit -> t

  val canonical : t -> Tx.t -> Tx.t
  (** The first instance seen with this id (registering [tx] if new).
      Ids are SHA-256 of the full encoding and recomputed on decode, so
      equal id implies equal fields. *)

  val unique : t -> int
  val hits : t -> int
end
