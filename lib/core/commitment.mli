(** Mempool commitments — the heart of LØ (paper Sec. 4.2).

    A miner's commitment is an append-only record of every (short)
    transaction id it has accepted, in bundle order. On the wire a
    commitment travels as a compact signed {!digest}: the owner's
    identity, a bundle sequence number, the total id count, a Bloom
    clock and a PinSketch of the full id set. Consecutive digests from
    the same owner must be consistent extensions of one another; any
    signed pair violating that is cryptographic proof of equivocation or
    withholding.

    The {!Log} sub-module is the owner side: it appends bundles, keeps
    the committed-id index, and signs fresh digests. *)

type digest = {
  owner : string;  (** 33-byte signer identity *)
  seq : int;  (** number of bundles committed so far *)
  counter : int;  (** number of short ids committed so far *)
  clock : Lo_bloom.Bloom_clock.t;
  sketch_hash : string;  (** SHA-256 of the serialized sketch *)
  sketch : Lo_sketch.Sketch.t option;
      (** [None] in the "light" form used by routine reconciliation —
          the Bloom clock drives the common path, as in Sec. 4.2; the
          full sketch travels periodically and on demand. The signature
          covers the sketch through [sketch_hash], so light and full
          forms of the same commitment verify identically. *)
  signature : string;
}

val default_sketch_capacity : int
(** 250 syndromes — 1,000 bytes of sketch, the paper's parameter
    ("sufficient to reconcile a set difference of up to 100
    transactions" leaves headroom; we expose the capacity directly). *)

val default_clock_cells : int
(** 32 cells, the paper's Bloom-clock size. *)

val encode : Lo_codec.Writer.t -> digest -> unit
val decode : Lo_codec.Reader.t -> digest
val encoded_size : digest -> int

val signing_bytes : digest -> string
(** The bytes covered by the signature (everything but the signature). *)

val verify : Lo_crypto.Signer.scheme -> digest -> bool
(** Checks the signature, and — for a full digest — that the carried
    sketch matches [sketch_hash]. *)

val strip_sketch : digest -> digest
(** The light form (drops the sketch; hash and signature unchanged). *)

val is_full : digest -> bool

val equal_content : digest -> digest -> bool
(** Same owner, seq, counter, clock and sketch hash (signature and
    light/full form excluded). *)

type consistency =
  | Consistent of int list
      (** [newer] extends [older]; the list holds the short ids added in
          between (decoded from the sketches), unordered. *)
  | Plausible
      (** Cheap checks (counter growth, clock dominance) passed, but at
          least one digest is light so the sets were not compared. *)
  | Inconsistent
      (** Signed proof of misbehaviour when both digests verify. *)
  | Inconclusive
      (** The sketch difference exceeded capacity; fetch the explicit
          delta before judging. *)

val check_extension :
  ?max_decode:int -> older:digest -> newer:digest -> unit -> consistency
(** Precondition: same owner; [older.seq <= newer.seq]. The Bloom clock
    is compared first (cheap, works on light digests), then — when both
    sketches are present — the sketch difference is decoded and its
    cardinality checked against the counters, as described in Sec. 4.2
    ("Implementation Details"). The clock's difference estimate guides a
    truncated (cheap) decode first; when the estimate exceeds
    [max_decode] the set comparison is skipped and the cheap verdict
    [Plausible] is returned (full audits of distant snapshots are
    sampled by the caller instead of paid on every message). *)

(** Owner-side commitment log. *)
module Log : sig
  type t

  type bundle = {
    seq : int;  (** 1-based bundle number *)
    source : string option;  (** peer the bundle was learned from *)
    ids : int list;  (** short ids in arrival order *)
  }

  val create :
    ?sketch_capacity:int ->
    ?clock_cells:int ->
    ?digest_history:int ->
    signer:Lo_crypto.Signer.t ->
    unit ->
    t
  (** [digest_history] bounds how many of the newest snapshots keep
      their full sketch (a capacity-sized copy each — the dominant
      per-snapshot memory at 10k nodes); older ones are demoted to the
      light form, which still signature-verifies identically. Defaults
      to [max_int] (every sketch retained — full historical digests are
      served on the wire, so bounding is an explicit opt-in of scale
      harnesses). Must be [>= 1]. *)

  val owner : t -> string
  val contains : t -> int -> bool
  val counter : t -> int
  val seq : t -> int

  val append : t -> source:string option -> ids:int list -> digest option
  (** Commit a bundle of previously unknown short ids, in the given
      order (duplicates and already-known ids are dropped). Returns the
      fresh signed digest, or [None] if nothing new remained. *)

  val current_digest : t -> digest
  (** Full form (sketch included). *)

  val current_digest_light : t -> digest

  val digest_at : t -> seq:int -> digest option
  (** Historical snapshot (all digests are retained, Sec. 5.2; beyond
      [digest_history] only in light form). *)

  val ids_in_cells : t -> int list -> int list
  (** Committed ids that map to the given Bloom-clock cells, in
      commitment order — the clock-guided delta selection of Sec. 4.2:
      cells where our clock exceeds the peer's point at the ids the peer
      is probably missing. *)

  val bundles : t -> bundle list
  (** In commitment order. *)

  val all_ids : t -> int list
  (** Every committed short id, in commitment order. *)
end
