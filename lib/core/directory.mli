(** Identity directory for simulations: maps between dense simulator
    node indices and 33-byte signer identities. Plays the role of the
    paper's bootstrap nodes' membership knowledge. *)

type t

val create : ids:string array -> t
val id_of : t -> int -> string
val index_of : t -> string -> int option
val size : t -> int

val canonical : t -> string -> string
(** The single retained copy equal to [id] — decoded digest owners are
    routed through this so every node of a world shares one instance of
    each identity string (and [String.equal] on them hits the
    pointer-equality fast path). Unknown ids pass through unchanged
    (interning them would let hostile bytes grow the table). *)
