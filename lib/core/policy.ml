type t = Lo_fifo | Highest_fee

let to_string = function Lo_fifo -> "fifo" | Highest_fee -> "highest-fee"

type build_input = {
  bundles : (int * int list) list;
  find_tx : int -> Tx.t option;
  is_settled : int -> bool;
  fee_threshold : int;
  max_txs : int;
  seed : string;
}

type build_output = {
  txids : string list;
  bundle_sizes : int list;
  omissions : (int * Block.omission_reason) list;
  start_seq : int;
  covered_seq : int;
}

let build_fifo input =
  let bundles =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) input.bundles
  in
  (* Skip the fully settled bundle prefix: those transactions are
     already in the chain, and re-listing them every block would bloat
     blocks forever. *)
  let rec split_prefix start = function
    | (seq, ids) :: rest
      when seq = start + 1 && List.for_all input.is_settled ids ->
        split_prefix seq rest
    | rest -> (start, rest)
  in
  let start_seq, bundles = split_prefix 0 bundles in
  (* All three output lists are accumulated in reverse and flipped once
     at the end: appending with [@] per bundle made the build quadratic
     in the bundle count (the fig8 build-fifo outlier). *)
  let txids_rev = ref [] and sizes_rev = ref [] and omissions_rev = ref [] in
  let total = ref 0 and covered = ref start_seq in
  (* Bundles are taken whole, in order, until blockspace runs out: a
     partially included bundle would be indistinguishable from
     censorship. *)
  (try
     List.iter
       (fun (seq, ids) ->
         let included = ref [] in
         let bundle_omissions = ref [] in
         List.iter
           (fun id ->
             if input.is_settled id then
               bundle_omissions := (id, Block.Settled) :: !bundle_omissions
             else
               match input.find_tx id with
               | None -> bundle_omissions := (id, Block.Missing_content) :: !bundle_omissions
               | Some tx ->
                   if tx.Tx.fee < input.fee_threshold then
                     bundle_omissions := (id, Block.Low_fee) :: !bundle_omissions
                   else included := tx.Tx.id :: !included)
           ids;
         let ordered =
           Order.sort_bundle ~seed:input.seed ~bundle_seq:seq
             (List.map Short_id.of_txid !included)
         in
         let len = List.length ordered in
         if !total + len > input.max_txs then raise Exit;
         (* Map the ordered short ids back to full txids. *)
         let by_short = Hashtbl.create 16 in
         List.iter
           (fun txid -> Hashtbl.replace by_short (Short_id.of_txid txid) txid)
           !included;
         List.iter
           (fun id -> txids_rev := Hashtbl.find by_short id :: !txids_rev)
           ordered;
         sizes_rev := len :: !sizes_rev;
         (* [bundle_omissions] is already reversed, so prepending it
            keeps the accumulator in overall reverse order. *)
         omissions_rev := !bundle_omissions @ !omissions_rev;
         total := !total + len;
         covered := seq)
       bundles
   with Exit -> ());
  {
    txids = List.rev !txids_rev;
    bundle_sizes = List.rev !sizes_rev;
    omissions = List.rev !omissions_rev;
    start_seq;
    covered_seq = !covered;
  }

let build_highest_fee input =
  let all =
    List.concat_map (fun (_, ids) -> ids) input.bundles
    |> List.filter (fun id -> not (input.is_settled id))
    |> List.filter_map input.find_tx
    |> List.filter (fun tx -> tx.Tx.fee >= input.fee_threshold)
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare b.Tx.fee a.Tx.fee with
        | 0 -> String.compare a.Tx.id b.Tx.id
        | c -> c)
      all
  in
  let chosen = List.filteri (fun i _ -> i < input.max_txs) sorted in
  {
    txids = List.map (fun tx -> tx.Tx.id) chosen;
    bundle_sizes = [];
    omissions = [];
    start_seq = 0;
    covered_seq = 0;
  }

let build policy input =
  match policy with
  | Lo_fifo -> build_fifo input
  | Highest_fee -> build_highest_fee input
