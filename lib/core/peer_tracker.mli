(** Per-peer commitment bookkeeping and equivocation detection
    (Sec. 5.2, Fig. 4).

    Stores every verified digest snapshot a peer has shown us, derives
    bundle contents from adjacent full digests, cross-checks each new
    snapshot against its neighbours ([check_extension]) and hands
    conflicting pairs to the exposure machinery. Also keeps the ring
    buffer of recently seen third-party digests used for transitive
    commitment gossip. *)

type t

val create : unit -> t

val latest : t -> peer:string -> Commitment.digest option
(** The newest stored digest of [peer], if any. *)

val stored_digest : t -> owner:string -> seq:int -> Commitment.digest option

val digest_pair :
  t -> owner:string -> seq:int -> (Commitment.digest * Commitment.digest) option
(** The full-form [(seq-1, seq)] snapshot pair — the evidence base for
    bundle violations. *)

val bundle_of_seq : t -> owner:string -> seq:int -> int list option
(** The owner's committed bundle at [seq], as reconstructed from its
    signed digests (or self-declared, pending verification). *)

val note_digest : t -> Node_env.t -> Commitment.digest -> unit
(** Verify, store and cross-check a digest snapshot; exposes the owner
    on conflict, triggers [retry_inspections] on progress. *)

val note_appended : t -> owner:string -> seq:int -> int list -> unit
(** Record a peer's self-declared newest bundle. The declaration is
    only used to steer inspection; any exposure still requires signed
    digest evidence, so a lying peer can at worst waste an audit. *)

val handle_digest_request :
  t -> Node_env.t -> from:int -> owner:string -> seq:int -> unit
(** Serve a {!Messages.Digest_request} from our own log or the stored
    snapshots of a third party. *)

val snapshots : t -> (string * int * Commitment.digest) list
(** Every stored digest snapshot, as [(owner, seq, digest)] sorted by
    owner then seq — the raw material for the cross-node
    commitment-prefix-agreement oracle: two correct nodes may never hold
    content-different snapshots of the same honest owner and seq. *)

val recent_digests : t -> exclude_owner:string -> Commitment.digest list
(** Recently received third-party digests (for transitive gossip),
    excluding those owned by the target peer. *)

val storage_bytes : t -> int
(** Bytes of peer commitment digests currently retained (Sec. 6.5
    memory metric; own log excluded). *)
