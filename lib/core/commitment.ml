module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader
module Signer = Lo_crypto.Signer
module Bloom_clock = Lo_bloom.Bloom_clock
module Sketch = Lo_sketch.Sketch

type digest = {
  owner : string;
  seq : int;
  counter : int;
  clock : Bloom_clock.t;
  sketch_hash : string;
  sketch : Sketch.t option;
  signature : string;
}

let default_sketch_capacity = 250
let default_clock_cells = 32

let sketch_bytes sketch =
  let w = Writer.create ~initial_size:64 () in
  Sketch.encode w sketch;
  Writer.contents w

let hash_sketch sketch = Lo_crypto.Sha256.digest (sketch_bytes sketch)

let encode_unsigned w d =
  Writer.fixed w d.owner;
  Writer.varint w d.seq;
  Writer.varint w d.counter;
  Bloom_clock.encode w d.clock;
  Writer.fixed w d.sketch_hash

let encode w d =
  encode_unsigned w d;
  (match d.sketch with
  | None -> Writer.u8 w 0
  | Some sketch ->
      Writer.u8 w 1;
      Sketch.encode w sketch);
  Writer.fixed w d.signature

let decode r =
  let owner = Reader.fixed r Signer.id_size in
  let seq = Reader.varint r in
  let counter = Reader.varint r in
  let clock = Bloom_clock.decode r in
  let sketch_hash = Reader.fixed r 32 in
  let sketch =
    match Reader.u8 r with
    | 0 -> None
    | 1 -> Some (Sketch.decode_wire r)
    | _ -> raise (Reader.Malformed "digest sketch flag")
  in
  let signature = Reader.fixed r Signer.signature_size in
  { owner; seq; counter; clock; sketch_hash; sketch; signature }

let encoded_size d =
  let w = Writer.create () in
  encode w d;
  Writer.length w

let signing_bytes d =
  let w = Writer.create () in
  encode_unsigned w d;
  Writer.contents w

let verify scheme d =
  Signer.verify scheme ~id:d.owner ~msg:(signing_bytes d)
    ~signature:d.signature
  &&
  match d.sketch with
  | None -> true
  | Some sketch -> String.equal (hash_sketch sketch) d.sketch_hash

let strip_sketch d = { d with sketch = None }
let is_full d = d.sketch <> None

let equal_content a b = String.equal (signing_bytes a) (signing_bytes b)

type consistency =
  | Consistent of int list
  | Plausible
  | Inconsistent
  | Inconclusive

let check_extension ?(max_decode = max_int) ~older ~newer () =
  if not (String.equal older.owner newer.owner) then
    invalid_arg "Commitment.check_extension: different owners";
  if older.seq > newer.seq then
    invalid_arg "Commitment.check_extension: wrong digest order";
  if older.seq = newer.seq then
    if equal_content older newer then Consistent [] else Inconsistent
  else if newer.counter <= older.counter then Inconsistent
  else if not (Bloom_clock.dominates newer.clock older.clock) then Inconsistent
  else begin
    try
    match (older.sketch, newer.sketch) with
    | Some so, Some sn -> begin
        (* The Bloom clock bounds the difference (exactly, for an honest
           extension), so a truncated — much cheaper — sketch prefix is
           tried first, escalating to the full capacity on failure. *)
        let merged = Sketch.merge so sn in
        let estimate = Bloom_clock.estimate_difference older.clock newer.clock in
        if estimate > max_decode then raise Exit;
        let small = min (Sketch.capacity merged) (estimate + 8) in
        let attempt capacity = Sketch.decode (Sketch.truncate merged ~capacity) in
        let result =
          match attempt small with
          | Ok diff -> Ok diff
          | Error `Decode_failure when small < Sketch.capacity merged ->
              Sketch.decode merged
          | Error `Decode_failure -> Error `Decode_failure
        in
        match result with
        | Error `Decode_failure -> Inconclusive
        | Ok diff ->
            if List.length diff <> newer.counter - older.counter then
              Inconsistent
            else Consistent diff
      end
    | _ -> Plausible
    with Exit -> Plausible
  end

module Log = struct
  type bundle = { seq : int; source : string option; ids : int list }

  type t = {
    signer : Signer.t;
    sketch_capacity : int;
    clock_cells : int;
    digest_history : int;
        (* digests older than [seq - digest_history] keep only their
           light form — the capacity-sized sketch copy (the dominant
           per-snapshot cost) is dropped once nothing can still ask for
           it. [max_int] = retain every sketch (the default; historical
           full digests are served on the wire, so bounding them is an
           explicit opt-in of scale harnesses). *)
    mutable bundles_rev : bundle list;
    mutable current : digest; (* snapshot after the latest bundle *)
    mutable counter : int;
    mutable seq : int;
    clock : Bloom_clock.t;
    sketch : Sketch.t;
    known : Dedup_set.t;
    cells : int list array; (* ids per Bloom-clock cell, reverse order *)
    sketch_buf : Bytes.t;
        (* the sketch's wire encoding, refreshed in place on every
           snapshot — hashing feeds these bytes directly instead of
           re-serializing through a fresh Writer each time *)
    digest_index : (int, digest) Hashtbl.t; (* digests keyed by seq *)
  }

  let owner t = Signer.id t.signer
  let contains t id = Dedup_set.mem t.known id
  let counter t = t.counter
  let seq t = t.seq

  let sign_snapshot t =
    Sketch.encode_into t.sketch t.sketch_buf ~pos:0;
    let ctx = Lo_crypto.Sha256.init () in
    Lo_crypto.Sha256.feed_bytes ctx t.sketch_buf 0 (Bytes.length t.sketch_buf);
    let unsigned =
      {
        owner = owner t;
        seq = t.seq;
        counter = t.counter;
        clock = Bloom_clock.copy t.clock;
        sketch_hash = Lo_crypto.Sha256.finalize ctx;
        sketch = Some (Sketch.copy t.sketch);
        signature = String.make Signer.signature_size '\000';
      }
    in
    let signature = Signer.sign t.signer (signing_bytes unsigned) in
    { unsigned with signature }

  let record_digest t d =
    t.current <- d;
    Hashtbl.replace t.digest_index d.seq d;
    (* One strip per append keeps the full-sketch window complete. *)
    if t.digest_history < max_int then begin
      let old_seq = d.seq - t.digest_history in
      if old_seq >= 0 then
        match Hashtbl.find_opt t.digest_index old_seq with
        | Some od when is_full od ->
            Hashtbl.replace t.digest_index old_seq (strip_sketch od)
        | _ -> ()
    end

  let create ?(sketch_capacity = default_sketch_capacity)
      ?(clock_cells = default_clock_cells) ?(digest_history = max_int) ~signer
      () =
    if digest_history < 1 then
      invalid_arg "Commitment.Log.create: digest_history must be >= 1";
    let sketch = Sketch.create ~capacity:sketch_capacity () in
    let t =
      {
        signer;
        sketch_capacity;
        clock_cells;
        digest_history;
        bundles_rev = [];
        current =
          (* placeholder, replaced by the seq-0 snapshot below *)
          {
            owner = Signer.id signer;
            seq = 0;
            counter = 0;
            clock = Bloom_clock.create ~cells:clock_cells ();
            sketch_hash = "";
            sketch = None;
            signature = "";
          };
        counter = 0;
        seq = 0;
        clock = Bloom_clock.create ~cells:clock_cells ();
        sketch;
        known = Dedup_set.create ~initial_capacity:256 ();
        cells = Array.make clock_cells [];
        sketch_buf = Bytes.create (Sketch.serialized_size sketch);
        digest_index = Hashtbl.create 256;
      }
    in
    (* The signed empty (seq 0) snapshot anchors evidence about the very
       first bundle. *)
    record_digest t (sign_snapshot t);
    t

  let current_digest t = t.current
  let current_digest_light t = strip_sketch (current_digest t)

  let append t ~source ~ids =
    let fresh =
      List.filter
        (fun id ->
          if id <= 0 || id > Short_id.max_value then false
          else Dedup_set.add t.known id)
        ids
    in
    match fresh with
    | [] -> None
    | _ ->
        List.iter
          (fun id ->
            Bloom_clock.add_int t.clock id;
            let cell = Bloom_clock.cell_of_int ~cells:t.clock_cells id in
            t.cells.(cell) <- id :: t.cells.(cell))
          fresh;
        (* Syndrome accumulation is xor-commutative, so the whole
           bundle goes through the paired sketch kernel at once. *)
        Sketch.add_all t.sketch fresh;
        t.counter <- t.counter + List.length fresh;
        t.seq <- t.seq + 1;
        t.bundles_rev <- { seq = t.seq; source; ids = fresh } :: t.bundles_rev;
        let d = sign_snapshot t in
        record_digest t d;
        Some d

  let digest_at t ~seq = Hashtbl.find_opt t.digest_index seq

  let ids_in_cells t cells =
    List.concat_map
      (fun cell ->
        if cell >= 0 && cell < Array.length t.cells then
          List.rev t.cells.(cell)
        else [])
      cells

  let bundles t = List.rev t.bundles_rev
  let all_ids t = List.concat_map (fun b -> b.ids) (bundles t)
end
