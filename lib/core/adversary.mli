(** Faulty-miner strategies (paper Sec. 2.2 and Fig. 6) as a
    first-class module, so new attack scenarios plug in without editing
    the protocol core. Each variant answers a small set of predicates
    the honest-path code consults, plus {!tamper_block} for the
    block-building stage. *)

type t =
  | Honest
  | Silent_censor
      (** never answers protocol requests (Fig. 6's censoring faulty
          miner) *)
  | Tx_censor of (Tx.t -> bool)
      (** drops matching transactions at submission and content
          reception (Stage I/II censorship) *)
  | Block_injector
      (** smuggles its own uncommitted transactions into the middle of
          committed bundles *)
  | Block_reorderer
      (** orders transactions inside bundles by fee instead of the
          canonical shuffle *)
  | Blockspace_censor of (Tx.t -> bool)
      (** silently omits matching transactions from its blocks *)
  | Equivocator
      (** maintains a forked commitment log and shows different forks to
          different peers *)

val kind_label : t -> string
(** Stable lowercase label per strategy (predicates elided). *)

val drops_all_messages : t -> bool
(** The silent censor neither handles messages nor runs timers. *)

val censors_tx : t -> Tx.t -> bool
(** Stage I/II censorship predicate. *)

val forks_log : t -> bool
(** Whether the node keeps an alternative commitment log. *)

val shows_fork_to : t -> peer_index:int -> bool
(** Which peers see the equivocation fork instead of the primary log. *)

(** Services {!tamper_block} needs from the node: content lookup and a
    way to mint (and locally store) a forged transaction. *)
type block_ctx = {
  find_txid : string -> Tx.t option;  (** mempool lookup by full txid *)
  forge_tx : unit -> Tx.t;
      (** create a fresh high-fee transaction and admit it to the local
          mempool (used by [Block_injector]) *)
}

val tamper_block : t -> block_ctx -> Policy.build_output -> Policy.build_output
(** Apply the strategy's block-stage deviation to an honestly built
    output (identity for honest/off-stage behaviours). *)

val bundles_of_sizes : string list -> int list -> string list list * string list
(** Regroup a flat txid list by bundle sizes; returns the bundles and
    the leftover appendix. *)
