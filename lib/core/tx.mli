(** Transactions.

    A transaction carries its creator's identity and signature, a fee,
    and an opaque payload. The id is the SHA-256 digest of the full
    encoding; prevalidation (Stage I/II of the paper's pipeline) checks
    the signature, fee and size bounds. *)

type t = private {
  id : string;  (** 32-byte digest of the encoding *)
  origin : string;  (** creator identity (33 bytes) *)
  fee : int;
  created_at : float;  (** client-side creation time, seconds *)
  payload : string;
  signature : string;  (** 64 bytes over the unsigned encoding *)
}

val create :
  signer:Lo_crypto.Signer.t ->
  fee:int ->
  created_at:float ->
  payload:string ->
  t

val short_id : t -> int
val encode : Lo_codec.Writer.t -> t -> unit
val decode : Lo_codec.Reader.t -> t
(** @raise Lo_codec.Reader.Malformed on bad input. The id is recomputed
    from the bytes, never trusted. *)

val to_string : t -> string
val of_string : string -> t
val encoded_size : t -> int

val max_payload_size : int
(** Prevalidation bound (16 KiB). *)

val unsigned_bytes : t -> string
(** The canonical unsigned encoding — the bytes the origin signed (and
    the prefix of the full encoding the id digests). The batched
    admission path feeds these to {!Lo_crypto.Signer.verify_many}. *)

val prevalidate : Lo_crypto.Signer.scheme -> t -> (unit, string) result
(** Signature, fee >= 0, payload size; the checks of paper Stage I
    step 2. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
