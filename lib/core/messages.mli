(** Wire messages of the LØ protocol.

    Each variant has a distinct tag under the ["lo"] protocol prefix so
    the bandwidth accounting can attribute every byte to a message
    class — the breakdown behind Fig. 9. *)

type suspicion_note = {
  suspect : string;
  reporter : string;
  last_digest : Commitment.digest option;
  reason : string;
}

type t =
  | Submit of Tx.t  (** client submission (Stage I) *)
  | Submit_ack of { txid : string; ack_signature : string }
      (** miner's signed receipt that the transaction entered its
          mempool (Stage I, step 3 — the optional acknowledgement) *)
  | Commit_request of {
      digest : Commitment.digest;
      delta : int list;  (** ids the receiver is missing (Alg. 1 line 16) *)
      want : int list;  (** ids whose content the sender still needs *)
      appended : int list;
          (** the sender's newest bundle (the ids it just committed),
              letting the receiver track the sender's bundle structure
              for block inspection *)
    }
  | Commit_response of {
      digest : Commitment.digest;
      want : int list;  (** content the responder still needs *)
      delta : int list;
          (** ids the responder believes the requester is missing
              (the reverse direction of Alg. 1's exchange) *)
      appended : int list;  (** the responder's newest bundle *)
    }
  | Tx_batch of Tx.t list  (** requested transaction content *)
  | Digest_share of Commitment.digest
      (** periodic/most-recent commitment dissemination (Sec. 5.2) *)
  | Digest_request of { owner : string; seq : int }
      (** fetch a historical digest of [owner] at [seq] (and [seq - 1]) *)
  | Digest_reply of Commitment.digest list
  | Suspicion_note of suspicion_note
  | Suspicion_withdraw of { suspect : string; reporter : string }
      (** retraction gossip: [reporter] saw the suspect answer again, so
          receivers clear the matching suspicion (temporal accuracy,
          Sec. 3.2 — benign faults must resolve, not accumulate) *)
  | Exposure_note of Evidence.t
  | Block_announce of Block.t

val tag : t -> string
(** e.g. ["lo:commit-req"]; all tags share the ["lo"] proto prefix. *)

val encode : t -> string

val encode_into : Lo_codec.Writer.t -> t -> string
(** [encode] through a caller-owned (pooled) writer: resets it, writes
    the same bytes [encode] would produce, returns them. Reusing one
    writer across sends keeps the encoder's scratch storage out of the
    per-message allocation bill. *)

val decode : string -> t
(** @raise Lo_codec.Reader.Malformed on invalid input. *)

val decode_reader : Lo_codec.Reader.t -> t
(** [decode] straight out of a reader view — the zero-copy wire path
    hands in a {!Lo_codec.Reader.sub_view} over the receive buffer, so
    the payload is never copied into an intermediate string. Consumes
    the view to its end ([Malformed] on trailing bytes). *)

val size : t -> int
