(** Flat dedup/seen set of positive ints, Bigarray-backed.

    The commitment log keeps one "already committed?" entry per short
    id per node; at 10,000 nodes that set dominates per-node heap. This
    is an open-addressing table on a [Bigarray.int] array — one unboxed
    word per slot, outside the OCaml heap, so the GC never scans it —
    replacing the [(int, unit) Hashtbl.t] it shadows. Membership is the
    only observable (no iteration order leaks into the protocol), so
    the swap cannot move a trace byte; [test/test_scale.ml] pins the
    Hashtbl equivalence under random workloads anyway. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Rounded up to a power of two; default 256 slots. *)

val add : t -> int -> bool
(** [add t k] inserts [k] (which must be [>= 1]; raises
    [Invalid_argument] otherwise) and returns whether it was new. *)

val mem : t -> int -> bool
val cardinal : t -> int

val capacity : t -> int
(** Current slot count (load stays under 50%). *)

val iter : t -> (int -> unit) -> unit
(** Members in table order — unspecified; for accounting only. *)
