(* The node façade: wires the protocol submodules together.

   The actual protocol logic lives in the layered submodules —
   {!Reconciler} (Alg. 1 pairwise reconciliation), {!Content_sync}
   (Stage II content exchange), {!Peer_tracker} (commitment snapshots +
   equivocation detection), {!Block_pipeline} (build/accept/inspect) and
   {!Adversary} (faulty behaviours). This module owns identity, the
   commitment log(s), the message dispatch and the periodic timers, and
   hands every submodule a {!Node_env.t} of service closures. *)

module Rng = Lo_net.Rng
module Transport = Lo_transport
module Signer = Lo_crypto.Signer

type behavior = Adversary.t =
  | Honest
  | Silent_censor
  | Tx_censor of (Tx.t -> bool)
  | Block_injector
  | Block_reorderer
  | Blockspace_censor of (Tx.t -> bool)
  | Equivocator

type config = Node_env.config = {
  scheme : Signer.scheme;
  reconcile_period : float;
  reconcile_fanout : int;
  request_timeout : float;
  max_retries : int;
  retry_backoff : float;
  retry_jitter : float;
  demote_after : int;
  sketch_capacity : int;
  clock_cells : int;
  fee_threshold : int;
  max_block_txs : int;
  max_delta : int;
  digest_share_period : float;
  always_full_digests : bool;
  reject_exposed_blocks : bool;
  max_digests_per_peer : int;
  digest_history : int;
}

let default_config = Node_env.default_config

type hooks = Node_env.hooks = {
  mutable on_tx_content : Tx.t -> unit;
  mutable on_block_accepted : Block.t -> unit;
  mutable on_exposure : accused:string -> unit;
  mutable on_suspicion : suspect:string -> unit;
  mutable on_suspicion_cleared : suspect:string -> unit;
  mutable on_violation : Inspector.violation -> block:Block.t -> unit;
  mutable on_sketch_decode : unit -> unit;
  mutable on_reconcile : unit -> unit;
  mutable on_reconcile_complete : unit -> unit;
}

type t = {
  config : config;
  transport : Transport.t;
  index : int;
  directory : Directory.t;
  signer : Signer.t;
  my_id : string;
  mutable neighbors : int list;
  behavior : behavior;
  rng : Rng.t;
  mempool : Mempool.t;
  log : Commitment.Log.t;
  alt_log : Commitment.Log.t option; (* equivocation fork *)
  acc : Accountability.t;
  hooks : hooks;
  content : Content_sync.t;
  tracker : Peer_tracker.t;
  reconciler : Reconciler.t;
  pipeline : Block_pipeline.t;
  seen_exposures : (string, unit) Hashtbl.t;
  deviations : (string * int option, float) Hashtbl.t;
      (* ground truth for the conformance oracles: (kind, block height)
         -> first simulated time this node deviated that way *)
  encode_buf : Lo_codec.Writer.t;
      (* pooled wire encoder, reused across every send/broadcast *)
  mutable env : Node_env.t option; (* set once in [create] *)
}

let index t = t.index
let node_id t = t.my_id
let behavior t = t.behavior
let hooks t = t.hooks
let mempool t = t.mempool
let commitment_log t = t.log
let accountability t = t.acc
let neighbors t = t.neighbors
let set_neighbors t ns = t.neighbors <- ns
let now t = t.transport.Transport.now ()

(* Deduplicated by (kind, height): the oracles only need the first time
   each distinct deviation happened, and a silent censor would otherwise
   log every dropped message. *)
let record_deviation t ~kind ~height =
  if not (Hashtbl.mem t.deviations (kind, height)) then
    Hashtbl.add t.deviations (kind, height) (now t)

let deviations t =
  Hashtbl.fold (fun (kind, height) at acc -> (at, kind, height) :: acc)
    t.deviations []
  |> List.sort compare

let send_msg t ~dst msg =
  t.transport.Transport.send ~dst ~tag:(Messages.tag msg)
    (Messages.encode_into t.encode_buf msg)

(* One wire encoding per broadcast, shared across every neighbor —
   [Messages.encode] on a digest-bearing message is the expensive part
   of the fan-out. *)
let broadcast t msg =
  t.transport.Transport.send_many ~dsts:t.neighbors ~tag:(Messages.tag msg)
    (Messages.encode_into t.encode_buf msg)

let log_for t ~peer_index =
  match t.alt_log with
  | Some alt when Adversary.shows_fork_to t.behavior ~peer_index -> alt
  | _ -> t.log

let wire_digest t ~peer_index =
  let log = log_for t ~peer_index in
  if t.config.always_full_digests then Commitment.Log.current_digest log
  else Commitment.Log.current_digest_light log

(* Primary-log appends funnel through here so the trace sees every
   committed bundle. The fresh-id precomputation mirrors the log's own
   filter (range check + known-id dedup, order preserved) because
   [Log.append] does not report which ids survived. *)
let append_primary t ~source ~ids =
  match t.transport.Transport.trace with
  | None -> ignore (Commitment.Log.append t.log ~source ~ids)
  | Some tr -> begin
      let seen = Hashtbl.create 8 in
      let fresh =
        List.filter
          (fun id ->
            if
              id <= 0 || id > Short_id.max_value
              || Commitment.Log.contains t.log id
              || Hashtbl.mem seen id
            then false
            else begin
              Hashtbl.add seen id ();
              true
            end)
          ids
      in
      match Commitment.Log.append t.log ~source ~ids with
      | Some d ->
          Lo_obs.Trace.emit tr ~at:(now t)
            (Lo_obs.Event.Commit_append
               {
                 node = t.index;
                 seq = d.Commitment.seq;
                 count = d.Commitment.counter;
                 ids = fresh;
               })
      | None -> ()
    end

let commit_bundle t ~source ~ids =
  append_primary t ~source ~ids;
  match t.alt_log with
  | Some alt -> ignore (Commitment.Log.append alt ~source ~ids)
  | None -> ()

let expose t ~accused evidence =
  if not (String.equal accused t.my_id) then begin
    if Accountability.expose t.acc ~peer:accused evidence then begin
      t.hooks.on_exposure ~accused;
      (match t.transport.Transport.trace with
      | Some tr ->
          Lo_obs.Trace.emit tr ~at:(now t)
            (Lo_obs.Event.Expose
               {
                 node = t.index;
                 peer =
                   Option.value
                     (Directory.index_of t.directory accused)
                     ~default:(-1);
               })
      | None -> ());
      Hashtbl.replace t.seen_exposures accused ();
      broadcast t (Messages.Exposure_note evidence)
    end
  end

let env t =
  match t.env with Some e -> e | None -> invalid_arg "Node: env unset"

let make_env t =
  {
    Node_env.config = t.config;
    hooks = t.hooks;
    trace = t.transport.Transport.trace;
    my_id = t.my_id;
    my_index = t.index;
    signer = t.signer;
    rng = t.rng;
    acc = t.acc;
    primary_log = t.log;
    now = (fun () -> now t);
    send = (fun ~dst msg -> send_msg t ~dst msg);
    broadcast = (fun msg -> broadcast t msg);
    schedule = (fun ~delay fn -> t.transport.Transport.schedule ~delay fn);
    id_of = (fun i -> Directory.id_of t.directory i);
    index_of = (fun id -> Directory.index_of t.directory id);
    population = (fun () -> Directory.size t.directory);
    neighbors = (fun () -> t.neighbors);
    log_for = (fun ~peer_index -> log_for t ~peer_index);
    wire_digest = (fun ~peer_index -> wire_digest t ~peer_index);
    commit = (fun ~source ~ids -> commit_bundle t ~source ~ids);
    expose = (fun ~accused evidence -> expose t ~accused evidence);
    retry_inspections =
      (fun ~owner -> Block_pipeline.retry_inspections t.pipeline (env t) ~owner);
    record_deviation = (fun ~kind ~height -> record_deviation t ~kind ~height);
  }

let create ?tx_pool config ~transport ~rng ~directory ~signer ~neighbors
    ~behavior =
  let my_id = Signer.id signer in
  let mk_log () =
    Commitment.Log.create ~sketch_capacity:config.sketch_capacity
      ~clock_cells:config.clock_cells ~digest_history:config.digest_history
      ~signer ()
  in
  let mempool = Mempool.create () in
  let canonical =
    match tx_pool with
    | None -> None
    | Some pool -> Some (Interner.Tx_pool.canonical pool)
  in
  let content = Content_sync.create ?canonical ~mempool ~adversary:behavior () in
  let tracker = Peer_tracker.create () in
  let t =
    {
      config;
      transport;
      index = transport.Transport.self;
      directory;
      signer;
      my_id;
      neighbors;
      behavior;
      rng;
      mempool;
      log = mk_log ();
      alt_log = (if Adversary.forks_log behavior then Some (mk_log ()) else None);
      acc = Accountability.create ();
      hooks = Node_env.no_hooks ();
      content;
      tracker;
      reconciler = Reconciler.create ~content ~tracker;
      pipeline =
        Block_pipeline.create ~adversary:behavior ~tracker ~content ~mempool;
      seen_exposures = Hashtbl.create 16;
      deviations = Hashtbl.create 4;
      encode_buf = Lo_codec.Writer.create ~initial_size:256 ();
      env = None;
    }
  in
  t.env <- Some (make_env t);
  t

let head_hash t = Block_pipeline.head_hash t.pipeline
let chain_height t = Block_pipeline.chain_height t.pipeline
let find_block t ~height = Block_pipeline.find_block t.pipeline ~height
let known_digest t ~peer = Peer_tracker.latest t.tracker ~peer
let digest_snapshots t = Peer_tracker.snapshots t.tracker
let commitment_storage_bytes t = Peer_tracker.storage_bytes t.tracker
let missing_content_count t = Content_sync.missing_count t.content

(* --- transaction intake --- *)

let ack_signing_bytes ~txid = "lo-ack" ^ txid

(* Make the equivocation fork diverge: the alternative log gets a
   self-made substitute transaction instead of the real one. *)
let equivocator_alt_tx t tx =
  Tx.create ~signer:t.signer ~fee:tx.Tx.fee ~created_at:tx.Tx.created_at
    ~payload:(Lo_crypto.Sha256.digest ("fork" ^ tx.Tx.id))

let submit_tx t tx =
  match Tx.prevalidate t.config.scheme tx with
  | Error _ -> ()
  | Ok () ->
      if Adversary.censors_tx t.behavior tx then
        record_deviation t ~kind:"censor-tx" ~height:None
      else begin
        let short = Tx.short_id tx in
        if not (Commitment.Log.contains t.log short) then begin
          append_primary t ~source:None ~ids:[ short ];
          (match t.alt_log with
          | Some alt ->
              record_deviation t ~kind:"equivocate" ~height:None;
              let alt_tx = equivocator_alt_tx t tx in
              ignore
                (Commitment.Log.append alt ~source:None
                   ~ids:[ Tx.short_id alt_tx ]);
              Content_sync.store_content t.content (env t) alt_tx
                ~from_peer:None
          | None -> ());
          Content_sync.store_content t.content (env t) tx ~from_peer:None
        end
      end

let handle_exposure t evidence =
  let accused = Evidence.accused evidence in
  if
    (not (String.equal accused t.my_id))
    && (not (Hashtbl.mem t.seen_exposures accused))
    && Evidence.verify t.config.scheme evidence
  then expose t ~accused evidence

(* --- message dispatch --- *)

(* Decoded digests arrive with a fresh copy of their owner id; collapse
   it onto the directory's canonical instance so stored snapshots share
   one string per identity (and owner comparisons hit the
   pointer-equality fast path). Same bytes, so nothing observable. *)
let canon_digest t (d : Commitment.digest) =
  let owner = Directory.canonical t.directory d.Commitment.owner in
  if owner == d.Commitment.owner then d else { d with Commitment.owner = owner }

(* Drops everything: the Fig. 6 faulty miner. Ground truth only counts
   ignored commit requests — those are the drops the requester's retry
   escalation is guaranteed to notice. *)
let note_dropped_message t ~tag =
  if String.equal tag "lo:commit-req" then
    record_deviation t ~kind:"silent-drop" ~height:None

let dispatch_message t ~from msg =
  begin
    match msg with
    | Messages.Submit tx ->
        submit_tx t tx;
        (* Acknowledge the client (Stage I step 3). A censoring miner
           sends the "fake acknowledgement" of the paper's attacker
           model: it acks but has dropped the transaction. *)
        let ack = Signer.sign t.signer (ack_signing_bytes ~txid:tx.Tx.id) in
        send_msg t ~dst:from
          (Messages.Submit_ack { txid = tx.Tx.id; ack_signature = ack })
    | Messages.Submit_ack _ -> () (* miners ignore stray acks *)
    | Messages.Commit_request { digest; delta; want; appended } ->
        Reconciler.handle_commit_request t.reconciler (env t) ~from
          ~digest:(canon_digest t digest) ~delta ~want ~appended
    | Messages.Commit_response { digest; want; delta; appended } ->
        Reconciler.handle_commit_response t.reconciler (env t) ~from
          ~digest:(canon_digest t digest) ~want ~delta ~appended
    | Messages.Tx_batch txs -> Content_sync.ingest_batch t.content (env t) ~from txs
    | Messages.Digest_share digest ->
        Peer_tracker.note_digest t.tracker (env t) (canon_digest t digest)
    | Messages.Digest_request { owner; seq } ->
        Peer_tracker.handle_digest_request t.tracker (env t) ~from
          ~owner:(Directory.canonical t.directory owner) ~seq
    | Messages.Digest_reply digests ->
        List.iter
          (fun d -> Peer_tracker.note_digest t.tracker (env t) (canon_digest t d))
          digests
    | Messages.Suspicion_note note ->
        Reconciler.handle_suspicion t.reconciler (env t) ~from note
    | Messages.Suspicion_withdraw { suspect; reporter } ->
        Reconciler.handle_withdrawal t.reconciler (env t) ~suspect ~reporter
    | Messages.Exposure_note evidence -> handle_exposure t evidence
    | Messages.Block_announce block ->
        Block_pipeline.accept_block t.pipeline (env t) block ~from
  end

let handle_message t ~from ~tag payload =
  if Adversary.drops_all_messages t.behavior then note_dropped_message t ~tag
  else
    match Messages.decode payload with
    | exception Lo_codec.Reader.Malformed _ -> ()
    | msg -> dispatch_message t ~from msg

(* The zero-copy wire path: decode straight out of a frame view over
   the receive buffer. Same containment as [handle_message], but
   [Tx_batch] takes the batched admission pipeline — one signature
   batch, one commitment bundle — instead of the per-tx DES path. *)
let handle_message_view t ~from ~tag r =
  if Adversary.drops_all_messages t.behavior then note_dropped_message t ~tag
  else
    match Messages.decode_reader r with
    | exception Lo_codec.Reader.Malformed _ -> ()
    | Messages.Tx_batch txs ->
        Content_sync.ingest_batch_bulk t.content (env t) ~from txs
    | msg -> dispatch_message t ~from msg

(* --- periodic timers --- *)

let rec digest_share_round t =
  (match t.neighbors with
  | [] -> ()
  | ns ->
      let target = Rng.pick_list t.rng ns in
      let target_id = Directory.id_of t.directory target in
      send_msg t ~dst:target
        (Messages.Digest_share
           (Commitment.Log.current_digest (log_for t ~peer_index:target)));
      (* Transitive commitment gossip: relay recently received
         third-party digests — this is what lets equivocation forks meet
         at a correct node. Forks re-converge as sets once both sides'
         transactions spread, so only snapshots from the divergence
         window are conflicting evidence; relaying digests while they
         are hot maximises the chance that both forks' window snapshots
         collide somewhere. *)
      (match Peer_tracker.recent_digests t.tracker ~exclude_owner:target_id with
      | [] -> ()
      | pool ->
          List.iter
            (fun d -> send_msg t ~dst:target (Messages.Digest_share d))
            (Rng.sample_without_replacement t.rng 2 pool)));
  t.transport.Transport.schedule ~delay:t.config.digest_share_period (fun () ->
      digest_share_round t)

(* Crash recovery (the restart path): re-announce our commitment head to
   every neighbour, ask each for the snapshots we may have missed while
   down (via the stored head's successor), invalidate stale in-flight
   reconciliation state and force a fresh exchange — so the node resumes
   from its persisted log position instead of desyncing forever. *)
let handle_restart t =
  Reconciler.on_restart t.reconciler (env t);
  List.iter
    (fun peer ->
      send_msg t ~dst:peer
        (Messages.Digest_share
           (Commitment.Log.current_digest (log_for t ~peer_index:peer)));
      let peer_id = Directory.id_of t.directory peer in
      let next_seq =
        match Peer_tracker.latest t.tracker ~peer:peer_id with
        | Some d -> d.Commitment.seq + 1
        | None -> 1
      in
      send_msg t ~dst:peer
        (Messages.Digest_request { owner = peer_id; seq = next_seq });
      Reconciler.reconcile_with ~force:true t.reconciler (env t)
        ~peer_index:peer)
    t.neighbors

let start t =
  (* Subscribe by protocol prefix so other protocols (the peer sampler)
     can share the node's transport endpoint. *)
  t.transport.Transport.subscribe ~proto:"lo" (fun ~from ~tag payload ->
      handle_message t ~from ~tag payload);
  if not (Adversary.drops_all_messages t.behavior) then begin
    t.transport.Transport.set_restart_handler (fun () -> handle_restart t);
    t.transport.Transport.schedule
      ~delay:(Rng.float t.rng t.config.reconcile_period)
      (fun () -> Reconciler.round t.reconciler (env t));
    t.transport.Transport.schedule
      ~delay:(Rng.float t.rng t.config.digest_share_period)
      (fun () -> digest_share_round t)
  end

let build_block t ~policy = Block_pipeline.build_block t.pipeline (env t) ~policy
