(** Block building, acceptance and inspection (paper Sec. 4.3 and 5.2).

    Owns the local chain view (blocks by height, head, settled ids),
    builds blocks through {!Policy} with the node's {!Adversary}
    deviation applied, accepts announced blocks, and dispatches the
    inspection that replays the deterministic building rules against the
    creator's commitments — parking inspections that lack digest
    snapshots and retrying them as snapshots arrive. *)

type t

val create :
  adversary:Adversary.t ->
  tracker:Peer_tracker.t ->
  content:Content_sync.t ->
  mempool:Mempool.t ->
  t

val head_hash : t -> string
val chain_height : t -> int
val find_block : t -> height:int -> Block.t option

val build_block : t -> Node_env.t -> policy:Policy.t -> Block.t option
(** Build (and locally accept + announce) a block on the current head
    with the given policy; [None] if the mempool yields no transactions
    and no block was produced. Behaviour modifiers apply here. *)

val accept_block : t -> Node_env.t -> Block.t -> from:int -> unit
(** Handle a {!Messages.Block_announce}: verify, adopt, re-announce and
    inspect. *)

val inspect_block : t -> Node_env.t -> Block.t -> from:int -> unit
(** Replay the building rules against our view of the creator's
    commitments; expose on provable violations, otherwise fetch the
    digest pairs needed (sampled audit for unverified bundles). *)

val retry_inspections : t -> Node_env.t -> owner:string -> unit
(** Re-run inspections parked on missing digests of [owner] (bounded
    retries per block). *)
