type entry = {
  tx : Tx.t;
  short_id : int;
  received_at : float;
  from_peer : string option;
}

type t = {
  by_short : (int, entry) Hashtbl.t;
  by_id : (string, entry) Hashtbl.t;
  mutable arrival_rev : entry list;
  mutable payload_bytes : int;
}

let create ?(initial_capacity = 512) () =
  {
    by_short = Hashtbl.create initial_capacity;
    by_id = Hashtbl.create initial_capacity;
    arrival_rev = [];
    payload_bytes = 0;
  }

let size t = Hashtbl.length t.by_short

let add t ~tx ~received_at ~from_peer =
  let short_id = Tx.short_id tx in
  if Hashtbl.mem t.by_short short_id then `Duplicate
  else begin
    let entry = { tx; short_id; received_at; from_peer } in
    Hashtbl.add t.by_short short_id entry;
    Hashtbl.add t.by_id tx.Tx.id entry;
    t.arrival_rev <- entry :: t.arrival_rev;
    t.payload_bytes <- t.payload_bytes + Tx.encoded_size tx;
    `Added entry
  end

type batch_result = {
  accepted : entry list;
  invalid : (int * string) list;
  duplicates : int;
  committed : int list;
}

let ingest_batch ?(canonical = fun tx -> tx) ?(keep = fun _ -> true) ~scheme
    ~known ~commit ~received_at ~from_peer t txs =
  let txs = Array.of_list (List.rev (List.rev_map canonical txs)) in
  let n = Array.length txs in
  (* Stage I bounds checks first; survivors go through one batched
     signature verification (amortized point operations for Schnorr,
     one registry probe per origin for the simulation scheme). *)
  let reasons = Array.make n None in
  let pending_rev = ref [] in
  Array.iteri
    (fun i tx ->
      if tx.Tx.fee < 0 then reasons.(i) <- Some "negative fee"
      else if String.length tx.Tx.payload > Tx.max_payload_size then
        reasons.(i) <- Some "oversized payload"
      else pending_rev := i :: !pending_rev)
    txs;
  let pending = Array.of_list (List.rev !pending_rev) in
  let triples =
    Array.map
      (fun i ->
        let tx = txs.(i) in
        (tx.Tx.origin, Tx.unsigned_bytes tx, tx.Tx.signature))
      pending
  in
  List.iter
    (fun j -> reasons.(pending.(j)) <- Some "invalid signature")
    (Lo_crypto.Signer.verify_many scheme triples);
  (* Admission in batch order; the fresh short ids are committed as ONE
     bundle, so the commitment log signs a single digest per batch. *)
  let accepted_rev = ref [] and invalid_rev = ref [] in
  let duplicates = ref 0 in
  let fresh_rev = ref [] in
  let in_batch = Hashtbl.create (2 * max 1 n) in
  Array.iteri
    (fun i tx ->
      match reasons.(i) with
      | Some r -> invalid_rev := (i, r) :: !invalid_rev
      | None ->
          if keep tx then begin
            let short = Tx.short_id tx in
            if (not (known short)) && not (Hashtbl.mem in_batch short) then begin
              Hashtbl.add in_batch short ();
              fresh_rev := short :: !fresh_rev
            end;
            match add t ~tx ~received_at ~from_peer with
            | `Added e -> accepted_rev := e :: !accepted_rev
            | `Duplicate -> incr duplicates
          end)
    txs;
  let committed = List.rev !fresh_rev in
  if committed <> [] then commit committed;
  {
    accepted = List.rev !accepted_rev;
    invalid = List.rev !invalid_rev;
    duplicates = !duplicates;
    committed;
  }

let mem_short t short_id = Hashtbl.mem t.by_short short_id
let find_short t short_id = Hashtbl.find_opt t.by_short short_id
let find_id t id = Hashtbl.find_opt t.by_id id
let entries_in_arrival_order t = List.rev t.arrival_rev
let total_payload_bytes t = t.payload_bytes
