(* The directory IS the per-world id interner: dense node index <->
   canonical 33-byte identity, first-seen order. Handing decoded owner
   strings through [canonical] collapses them onto the single retained
   copy. *)
type t = Interner.t

let create ~ids =
  let t = Interner.create ~initial:(Array.length ids) () in
  Array.iter (fun id -> ignore (Interner.intern t id)) ids;
  t

let id_of = Interner.to_string
let index_of = Interner.find
let size = Interner.size

(* Unknown ids pass through untouched: interning them would let a
   malformed or hostile owner field grow the table without bound. *)
let canonical t s =
  match Interner.find t s with
  | Some id -> Interner.to_string t id
  | None -> s
