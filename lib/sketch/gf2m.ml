type t = {
  m : int;
  full : int;
  mask : int;
  mod_shifts : int array; (* set-bit positions of the low modulus terms *)
  scratch_key : int array Domain.DLS.key;
      (* 256-entry window table for the generic multiplier, per-domain so
         concurrent simulation domains never race on it *)
  log_tbl : int array; (* size 2^m; log_tbl.(0) = -1; [||] when untabled *)
  exp_tbl : int array; (* size 2*(2^m-1); doubled to skip the mod *)
}

(* Fields up to this size get full log/antilog tables (2^16 entries is
   ~1.5 MiB for both tables together); larger fields fall back to the
   windowed carryless multiplier. *)
let table_max_m = 16

let bits f = f.m
let mask f = f.mask
let order_minus_one f = f.mask
let add a b = a lxor b
let tabled f = Array.length f.log_tbl <> 0

(* Reduce a carryless product (degree <= 2m-2 <= 62, so it fits a native
   int) modulo x^m + modulus: fold the high part down through the sparse
   low terms until everything is below degree m. *)
let reduce f p =
  let shifts = f.mod_shifts in
  let ns = Array.length shifts in
  let p = ref p in
  while !p lsr f.m <> 0 do
    let hi = !p lsr f.m in
    let folded = ref (!p land f.mask) in
    for i = 0 to ns - 1 do
      folded := !folded lxor (hi lsl Array.unsafe_get shifts i)
    done;
    p := !folded
  done;
  !p

(* Carryless multiplication with a 4-bit window, then reduction. With
   a, b < 2^32 the raw product has degree <= 62 and fits a 63-bit int.
   This is the reference path: it never consults the log/antilog
   tables, so the table-based [mul] can be checked against it. *)
let mul_generic f a b =
  if a = 0 || b = 0 then 0
  else begin
    let tab = Domain.DLS.get f.scratch_key in
    tab.(1) <- a;
    tab.(2) <- a lsl 1;
    tab.(3) <- tab.(2) lxor a;
    tab.(4) <- a lsl 2;
    tab.(5) <- tab.(4) lxor a;
    tab.(6) <- tab.(4) lxor tab.(2);
    tab.(7) <- tab.(6) lxor a;
    tab.(8) <- a lsl 3;
    tab.(9) <- tab.(8) lxor a;
    tab.(10) <- tab.(8) lxor tab.(2);
    tab.(11) <- tab.(10) lxor a;
    tab.(12) <- tab.(8) lxor tab.(4);
    tab.(13) <- tab.(12) lxor a;
    tab.(14) <- tab.(12) lxor tab.(2);
    tab.(15) <- tab.(14) lxor a;
    (* Top nibble of [b] is handled unshifted so no intermediate exceeds
       degree 62. *)
    let p = ref tab.((b lsr 28) land 0xF) in
    for i = 6 downto 0 do
      p := (!p lsl 4) lxor tab.((b lsr (4 * i)) land 0xF)
    done;
    reduce f !p
  end

let mul f a b =
  if Array.length f.log_tbl = 0 then mul_generic f a b
  else if a = 0 || b = 0 then 0
  else
    Array.unsafe_get f.exp_tbl
      (Array.unsafe_get f.log_tbl a + Array.unsafe_get f.log_tbl b)

(* A multiplier with one operand fixed: used where the same factor is
   applied across a whole loop (syndrome accumulation multiplies by e^2
   capacity times). For untabled fields the full 256-entry window table
   of the fixed operand is built once and amortised across every call;
   per call that leaves four table lookups plus the reduction. *)
let mul_by f b =
  if b = 0 then fun _ -> 0
  else if Array.length f.log_tbl <> 0 then begin
    let log_b = f.log_tbl.(b) in
    let exp_tbl = f.exp_tbl and log_tbl = f.log_tbl in
    fun a ->
      if a = 0 then 0
      else Array.unsafe_get exp_tbl (Array.unsafe_get log_tbl a + log_b)
  end
  else begin
    let tab = Array.make 256 0 in
    tab.(1) <- b;
    for i = 1 to 127 do
      let d = tab.(i) lsl 1 in
      tab.(2 * i) <- d;
      tab.((2 * i) + 1) <- d lxor b
    done;
    fun a ->
      if a = 0 then 0
      else begin
        (* a < 2^m <= 2^32: four byte-wide windows. Degrees stay within
           a 63-bit int: b contributes <= 31, the window <= 7, and the
           three 8-bit shifts another 24, for a top degree of 62. *)
        let p = ref (Array.unsafe_get tab ((a lsr 24) land 0xFF)) in
        p := (!p lsl 8) lxor Array.unsafe_get tab ((a lsr 16) land 0xFF);
        p := (!p lsl 8) lxor Array.unsafe_get tab ((a lsr 8) land 0xFF);
        p := (!p lsl 8) lxor Array.unsafe_get tab (a land 0xFF);
        reduce f !p
      end
  end

(* The syndrome-accumulation kernel: s.(i) <- s.(i) xor base * step^i
   for i in [0, n). This is [mul_by] fused into the Horner walk — the
   window table, the reduction, and the running power all live in one
   loop body, so there is no closure call per multiplication. On the
   ingest hot path this runs once per transaction with n = sketch
   capacity, which makes the per-multiplication constant the single
   largest term in commit-append cost. *)
let accum_powers f ~base ~step s ~n =
  if n > Array.length s then invalid_arg "Gf2m.accum_powers: n";
  if n > 0 && base <> 0 then begin
    if step = 0 then s.(0) <- s.(0) lxor base
    else if Array.length f.log_tbl <> 0 then begin
      let log_tbl = f.log_tbl and exp_tbl = f.exp_tbl in
      let log_step = Array.unsafe_get log_tbl step in
      let p = ref base in
      for i = 0 to n - 1 do
        Array.unsafe_set s i (Array.unsafe_get s i lxor !p);
        if i < n - 1 then
          p :=
            Array.unsafe_get exp_tbl (Array.unsafe_get log_tbl !p + log_step)
      done
    end
    else if n < 16 then begin
      (* Too short to amortise the window table; plain multiplies. *)
      let p = ref base in
      for i = 0 to n - 1 do
        Array.unsafe_set s i (Array.unsafe_get s i lxor !p);
        if i < n - 1 then p := mul_generic f !p step
      done
    end
    else begin
      let tab = Array.make 256 0 in
      tab.(1) <- step;
      for i = 1 to 127 do
        let d = tab.(i) lsl 1 in
        tab.(2 * i) <- d;
        tab.((2 * i) + 1) <- d lxor step
      done;
      let m = f.m and msk = f.mask in
      let shifts = f.mod_shifts in
      let ns = Array.length shifts in
      let max_shift = Array.fold_left max 0 shifts in
      let fold q =
        let hi = q lsr m in
        let folded = ref (q land msk) in
        for j = 0 to ns - 1 do
          folded := !folded lxor (hi lsl Array.unsafe_get shifts j)
        done;
        !folded
      in
      if (2 * max_shift) - 2 < m then begin
        (* Sparse low-degree modulus (every built-in field qualifies):
           the first fold leaves a high part of degree <= max_shift - 2,
           so a second fold always lands below degree m. Two unrolled
           folds replace the reduction loop's per-round test. *)
        let p = ref base in
        for i = 0 to n - 1 do
          Array.unsafe_set s i (Array.unsafe_get s i lxor !p);
          if i < n - 1 then begin
            (* base <> 0 and step <> 0, so every power is nonzero: no
               zero-operand branch needed. Same degree argument as
               [mul_by]: the raw product stays within 63 bits. *)
            let a = !p in
            let q = ref (Array.unsafe_get tab ((a lsr 24) land 0xFF)) in
            q := (!q lsl 8) lxor Array.unsafe_get tab ((a lsr 16) land 0xFF);
            q := (!q lsl 8) lxor Array.unsafe_get tab ((a lsr 8) land 0xFF);
            q := (!q lsl 8) lxor Array.unsafe_get tab (a land 0xFF);
            let q1 = fold !q in
            p := if q1 lsr m = 0 then q1 else fold q1
          end
        done
      end
      else begin
        let p = ref base in
        for i = 0 to n - 1 do
          Array.unsafe_set s i (Array.unsafe_get s i lxor !p);
          if i < n - 1 then begin
            let a = !p in
            let q = ref (Array.unsafe_get tab ((a lsr 24) land 0xFF)) in
            q := (!q lsl 8) lxor Array.unsafe_get tab ((a lsr 16) land 0xFF);
            q := (!q lsl 8) lxor Array.unsafe_get tab ((a lsr 8) land 0xFF);
            q := (!q lsl 8) lxor Array.unsafe_get tab (a land 0xFF);
            while !q lsr m <> 0 do
              q := fold !q
            done;
            p := !q
          end
        done
      end
    end
  end

(* Two accumulations in one pass: s.(i) <- s.(i) xor b1*s1^i xor
   b2*s2^i. The two Horner chains are data-independent, so an
   out-of-order core overlaps their multiply latencies, and the
   syndrome array is traversed once instead of twice. Only the untabled
   large-field case is specialised — it is the one the tx-id sketches
   (GF(2^32), capacity 250) sit on; everything else falls back to two
   single walks. *)
let accum_powers2 f ~base1 ~step1 ~base2 ~step2 s ~n =
  if
    n >= 16 && base1 <> 0 && base2 <> 0 && step1 <> 0 && step2 <> 0
    && Array.length f.log_tbl = 0
    && (2 * Array.fold_left max 0 f.mod_shifts) - 2 < f.m
  then begin
    if n > Array.length s then invalid_arg "Gf2m.accum_powers2: n";
    let tab1 = Array.make 256 0 and tab2 = Array.make 256 0 in
    tab1.(1) <- step1;
    tab2.(1) <- step2;
    for i = 1 to 127 do
      let d1 = tab1.(i) lsl 1 in
      tab1.(2 * i) <- d1;
      tab1.((2 * i) + 1) <- d1 lxor step1;
      let d2 = tab2.(i) lsl 1 in
      tab2.(2 * i) <- d2;
      tab2.((2 * i) + 1) <- d2 lxor step2
    done;
    let m = f.m and msk = f.mask in
    let shifts = f.mod_shifts in
    let ns = Array.length shifts in
    let fold q =
      let hi = q lsr m in
      let folded = ref (q land msk) in
      for j = 0 to ns - 1 do
        folded := !folded lxor (hi lsl Array.unsafe_get shifts j)
      done;
      !folded
    in
    let p1 = ref base1 and p2 = ref base2 in
    for i = 0 to n - 1 do
      Array.unsafe_set s i (Array.unsafe_get s i lxor !p1 lxor !p2);
      if i < n - 1 then begin
        let a1 = !p1 and a2 = !p2 in
        let q1 = ref (Array.unsafe_get tab1 ((a1 lsr 24) land 0xFF))
        and q2 = ref (Array.unsafe_get tab2 ((a2 lsr 24) land 0xFF)) in
        q1 := (!q1 lsl 8) lxor Array.unsafe_get tab1 ((a1 lsr 16) land 0xFF);
        q2 := (!q2 lsl 8) lxor Array.unsafe_get tab2 ((a2 lsr 16) land 0xFF);
        q1 := (!q1 lsl 8) lxor Array.unsafe_get tab1 ((a1 lsr 8) land 0xFF);
        q2 := (!q2 lsl 8) lxor Array.unsafe_get tab2 ((a2 lsr 8) land 0xFF);
        q1 := (!q1 lsl 8) lxor Array.unsafe_get tab1 (a1 land 0xFF);
        q2 := (!q2 lsl 8) lxor Array.unsafe_get tab2 (a2 land 0xFF);
        let r1 = fold !q1 and r2 = fold !q2 in
        p1 := (if r1 lsr m = 0 then r1 else fold r1);
        p2 := (if r2 lsr m = 0 then r2 else fold r2)
      end
    done
  end
  else begin
    accum_powers f ~base:base1 ~step:step1 s ~n;
    accum_powers f ~base:base2 ~step:step2 s ~n
  end

(* Squaring = spreading each bit to the even positions; an 8-bit spread
   table does it in four lookups. *)
let spread8 =
  Array.init 256 (fun b ->
      let v = ref 0 in
      for i = 0 to 7 do
        if b lsr i land 1 = 1 then v := !v lor (1 lsl (2 * i))
      done;
      !v)

let sq_generic f a =
  let p =
    spread8.(a land 0xFF)
    lor (spread8.((a lsr 8) land 0xFF) lsl 16)
    lor (spread8.((a lsr 16) land 0xFF) lsl 32)
  in
  let hi = (a lsr 24) land 0xFF in
  if hi = 0 then reduce f p
  else begin
    (* Bits 48..62 of the square come from bits 24..31 of [a]; bit 31
       would land on position 62, still inside a native int. *)
    let p_hi = spread8.(hi) in
    reduce f (p lor (p_hi lsl 48))
  end

let sq f a =
  if Array.length f.log_tbl = 0 then sq_generic f a
  else if a = 0 then 0
  else Array.unsafe_get f.exp_tbl (2 * Array.unsafe_get f.log_tbl a)

let pow f a k =
  if k < 0 then invalid_arg "Gf2m.pow: negative exponent";
  let r = ref 1 and base = ref a and k = ref k in
  while !k <> 0 do
    if !k land 1 = 1 then r := mul f !r !base;
    base := sq f !base;
    k := !k lsr 1
  done;
  !r

let inv f a =
  if a = 0 then raise Division_by_zero;
  if Array.length f.log_tbl = 0 then pow f a (f.mask - 1)
  else f.exp_tbl.(f.mask - f.log_tbl.(a))

let div f a b =
  if Array.length f.log_tbl = 0 then mul f a (inv f b)
  else if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else f.exp_tbl.((f.log_tbl.(a) - f.log_tbl.(b)) + f.mask)

let trace f a =
  let acc = ref 0 and cur = ref a in
  for _ = 1 to f.m do
    acc := !acc lxor !cur;
    cur := sq f !cur
  done;
  !acc

(* Irreducibility check for x^m + modulus over GF(2): f is irreducible
   iff x^(2^m) = x (mod f) and gcd(x^(2^(m/p)) - x, f) = 1 for every
   prime p dividing m. We work in the quotient ring via this very field
   representation, which is sound for the Frobenius computations even
   before irreducibility is established. *)
let frobenius_iterate f times =
  (* x^(2^times) in the quotient ring, starting from the element x = 2. *)
  let cur = ref 2 in
  for _ = 1 to times do
    cur := sq_generic f !cur
  done;
  !cur

let prime_divisors m =
  let rec go m p acc =
    if p * p > m then if m > 1 then m :: acc else acc
    else if m mod p = 0 then
      let rec strip m = if m mod p = 0 then strip (m / p) else m in
      go (strip m) (p + 1) (p :: acc)
    else go m (p + 1) acc
  in
  go m 2 []

(* gcd(poly represented by [a] (an element = low-degree poly), f) where f
   is the reduction polynomial of full degree m. Polynomial gcd over
   GF(2) on plain ints. *)
let gcd_with_modulus f a =
  let deg v =
    let rec go d = if v lsr d = 0 then d - 1 else go (d + 1) in
    if v = 0 then -1 else go 1
  in
  let rec gcd a b =
    if b = 0 then a
    else begin
      (* a mod b by long division over GF(2) *)
      let db = deg b in
      let a = ref a in
      while deg !a >= db do
        a := !a lxor (b lsl (deg !a - db))
      done;
      gcd b !a
    end
  in
  gcd f.full a

let is_irreducible f =
  frobenius_iterate f f.m = 2
  && List.for_all
       (fun p ->
         let x_frob = frobenius_iterate f (f.m / p) in
         gcd_with_modulus f (x_frob lxor 2) = 1)
       (prime_divisors f.m)

(* Log/antilog tables: find a multiplicative generator (the group is
   cyclic of order 2^m - 1 once irreducibility holds, so any element of
   full order works; small candidates almost always do) and record its
   discrete logs. The antilog table is doubled so [mul] needs no
   modular reduction on the summed logs. *)
let build_tables f =
  let order = f.mask in
  let log_tbl = Array.make (f.mask + 1) (-1) in
  let exp_tbl = Array.make (2 * order) 1 in
  let rec try_generator g =
    if g > f.mask then failwith "Gf2m: no generator found (unreachable)"
    else begin
      Array.fill log_tbl 0 (Array.length log_tbl) (-1);
      let e = ref 1 in
      let ok = ref true in
      (let i = ref 0 in
       while !ok && !i < order do
         if log_tbl.(!e) >= 0 then ok := false (* short cycle: not primitive *)
         else begin
           log_tbl.(!e) <- !i;
           exp_tbl.(!i) <- !e;
           e := mul_generic f !e g;
           incr i
         end
       done);
      if !ok && !e = 1 then ()
      else try_generator (g + 1)
    end
  in
  try_generator 2;
  (* Double the antilog table: indices up to 2*(order-1) come from mul,
     and [div] can reach index 2*order - 1. *)
  for i = 0 to order - 1 do
    exp_tbl.(order + i) <- exp_tbl.(i)
  done;
  (log_tbl, exp_tbl)

let make ~m ~modulus =
  if m < 2 || m > 32 then invalid_arg "Gf2m.make: m out of [2,32]";
  if modulus land 1 = 0 then invalid_arg "Gf2m.make: modulus must have constant term";
  if modulus lsr m <> 0 then invalid_arg "Gf2m.make: modulus degree too high";
  let mod_shifts =
    List.filter (fun s -> modulus lsr s land 1 = 1) (List.init m Fun.id)
    |> Array.of_list
  in
  let f =
    {
      m;
      full = (1 lsl m) lor modulus;
      mask = (1 lsl m) - 1;
      mod_shifts;
      scratch_key = Domain.DLS.new_key (fun () -> Array.make 256 0);
      log_tbl = [||];
      exp_tbl = [||];
    }
  in
  if not (is_irreducible f) then invalid_arg "Gf2m.make: reducible polynomial";
  if m <= table_max_m then begin
    let log_tbl, exp_tbl = build_tables f in
    { f with log_tbl; exp_tbl }
  end
  else f

let gf8 = make ~m:8 ~modulus:0x1B
let gf16 = make ~m:16 ~modulus:0x2B
let gf32 = make ~m:32 ~modulus:0x8D
