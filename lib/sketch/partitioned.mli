(** Hash-partitioned set reconciliation — the optimisation of paper
    Sec. 6.5.

    Monolithic PinSketch decoding costs grow quadratically with the set
    difference; the paper reports ~10 s for a 1,000-element difference.
    LØ instead splits the id space into partitions when a decode fails
    and reconciles each partition with a fresh small sketch, completing
    the same difference "in under 100 ms". This module implements that
    strategy and accounts for the work performed, which drives Fig. 10
    (reconciliations per minute) and the Sec. 6.5 CPU comparison. *)

type stats = {
  sketches_built : int;  (** total sketches computed on either side *)
  reconciliations : int;  (** sketch exchange round-trips *)
  decode_failures : int;  (** failed decodes that forced a split *)
  bytes_exchanged : int;  (** serialized sketch bytes in both directions *)
  max_depth : int;  (** deepest partition split reached *)
}

val reconcile :
  ?field:Gf2m.t ->
  ?fast:bool ->
  capacity:int ->
  local:int list ->
  remote:int list ->
  unit ->
  stats * int list
(** Compute the symmetric difference of the two id sets the way two LØ
    nodes would: sketch both sides per partition, merge, decode; on
    decode failure split the partition by the next id bit and retry.
    Returns the recovered difference (unordered) together with the work
    statistics. Elements must be nonzero field elements.

    [fast] (default true) decodes through the kernel path — shared
    decoder scratch across partitions plus candidate-driven root search
    seeded with each partition's own ids ({!Sketch.decode_with}).
    Outcome-equivalent to the reference path on every input
    (qcheck-pinned); [fast:false] keeps the reference measurable. *)

val reconcile_monolithic :
  ?field:Gf2m.t ->
  ?fast:bool ->
  capacity:int ->
  local:int list ->
  remote:int list ->
  unit ->
  stats * int list option
(** Single large-sketch baseline (no partitioning): the capacity must
    cover the whole difference or decoding fails ([None]). Used by the
    Sec. 6.5 CPU-cost comparison. *)
