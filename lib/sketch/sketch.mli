(** PinSketch set sketches (the data structure behind Minisketch).

    A sketch of capacity [c] over GF(2^m) stores the [c] odd power sums
    (syndromes) s_1, s_3, ..., s_(2c-1) of the set elements. Sketches of
    two sets XOR together into a sketch of their symmetric difference,
    which decodes exactly when the difference has at most [c] elements —
    that is the reconciliation primitive of the paper's commitments
    (Sec. 4.2). Elements are nonzero field elements; the LØ layer maps
    32-byte transaction ids onto nonzero 32-bit short ids. *)

type t

val create : ?field:Gf2m.t -> capacity:int -> unit -> t
(** Empty sketch; default field GF(2^32). @raise Invalid_argument if
    [capacity <= 0]. *)

val field : t -> Gf2m.t
val capacity : t -> int
val copy : t -> t

val add : t -> int -> unit
(** Toggle an element's membership (adding twice removes it — sketches
    are symmetric-difference accumulators).
    @raise Invalid_argument if the element is 0 or out of field range. *)

val add_all : t -> int list -> unit

val of_list : ?field:Gf2m.t -> capacity:int -> int list -> t

val merge : t -> t -> t
(** XOR of syndromes = sketch of the symmetric difference.
    @raise Invalid_argument on mismatched field or capacity. *)

val truncate : t -> capacity:int -> t
(** A PinSketch of capacity [c] contains every smaller sketch as a
    syndrome prefix; [truncate] takes that prefix. Decoding a truncated
    sketch is much cheaper when an external estimate (LØ uses the Bloom
    clock) bounds the difference well below the full capacity.
    Capacities above the sketch's own are clamped. *)

val is_empty : t -> bool
(** True iff all syndromes are zero (difference empty, or — with
    negligible probability for honest inputs — a decode-resistant
    collision). *)

val decode : t -> (int list, [ `Decode_failure ]) result
(** Recover the elements of the (symmetric-difference) set, unordered.
    Fails when the difference exceeds the capacity. A successful decode
    is verified by re-encoding, so a wrong set is never returned. *)

(** Reusable decoder working state (syndrome expansion buffer and
    Berlekamp–Massey arrays). One scratch serves any number of
    sequential {!decode_with} calls; never share one across domains. *)
module Scratch : sig
  type t

  val create : unit -> t
end

val decode_with :
  ?scratch:Scratch.t ->
  ?candidates:int array ->
  t ->
  (int list, [ `Decode_failure ]) result
(** {!decode} with the kernel knobs exposed; outcome-identical to
    {!decode} on every input (qcheck-pinned, up to element order).

    [scratch] reuses the syndrome/Berlekamp–Massey buffers across
    calls — the partitioned reconciler decodes once per partition and
    pays the allocations once.

    [candidates] is a superset of the expected difference (in
    reconciliation: local union remote). The decoder then finds the
    locator roots by evaluating its reversal over the candidates
    instead of factoring by trace splitting; if the candidates do not
    cover all roots it falls back to the full search, so the result is
    unchanged even when the hint is wrong. *)

val serialized_size : t -> int
(** Bytes on the wire: 4 bytes per syndrome for GF(2^32) plus a small
    header. *)

val encode : Lo_codec.Writer.t -> t -> unit

val encode_into : t -> bytes -> pos:int -> unit
(** Write exactly [serialized_size t] bytes — byte-identical to
    {!encode}'s output — into [buf] at [pos], with no intermediate
    allocation. The commitment log uses this to maintain its serialized
    sketch in place across appends. @raise Invalid_argument if the
    target range does not fit. *)

val decode_wire : ?field:Gf2m.t -> Lo_codec.Reader.t -> t
(** Read a sketch; the field must match the expected deployment field
    ([Gf2m.gf32] by default). @raise Lo_codec.Reader.Malformed on bad
    input. *)
