(** Berlekamp–Massey over GF(2^m).

    Finds the shortest linear-feedback shift register generating a
    syndrome sequence; its connection polynomial is the PinSketch
    locator whose roots are the inverses of the set-difference
    elements. *)

val run : Gf2m.t -> int array -> Poly.t * int
(** [run f s] returns [(c, l)] where [c] is the connection polynomial
    (with [c(0) = 1]) of the minimal LFSR of length [l] generating the
    sequence [s] (read as s.(0), s.(1), ...). *)

type scratch
(** Reusable working arrays for {!run_scratch}; grown on demand, never
    shared across domains. *)

val create_scratch : unit -> scratch

val run_scratch : scratch -> Gf2m.t -> int array -> off:int -> len:int -> Poly.t * int
(** [run_scratch scratch f s ~off ~len] is
    [run f (Array.sub s off len)] (qcheck-pinned) with all intermediate
    polynomial updates done in place in [scratch] — the allocation-free
    kernel behind batched partitioned-sketch decoding. *)
