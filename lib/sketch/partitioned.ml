type stats = {
  sketches_built : int;
  reconciliations : int;
  decode_failures : int;
  bytes_exchanged : int;
  max_depth : int;
}

let empty_stats =
  {
    sketches_built = 0;
    reconciliations = 0;
    decode_failures = 0;
    bytes_exchanged = 0;
    max_depth = 0;
  }

let sketch_pair field capacity local remote =
  let sl = Sketch.of_list ~field ~capacity local in
  let sr = Sketch.of_list ~field ~capacity remote in
  let merged = Sketch.merge sl sr in
  (merged, 2 * Sketch.serialized_size sl)

let reconcile ?(field = Gf2m.gf32) ?(fast = true) ~capacity ~local ~remote () =
  let stats = ref empty_stats in
  let diff = ref [] in
  (* The kernel path shares one decoder scratch across every partition
     and hands each decode its candidate set (the partition's own
     local/remote ids — the difference is a subset by construction).
     Results are identical either way; [fast:false] keeps the reference
     path alive for equivalence tests and benchmarks. *)
  let scratch = if fast then Some (Sketch.Scratch.create ()) else None in
  (* Partition (depth, value): ids whose low [depth] bits equal [value]. *)
  let queue = Queue.create () in
  Queue.add (0, 0, local, remote) queue;
  while not (Queue.is_empty queue) do
    let depth, value, l, r = Queue.pop queue in
    let merged, bytes = sketch_pair field capacity l r in
    stats :=
      {
        !stats with
        sketches_built = !stats.sketches_built + 2;
        reconciliations = !stats.reconciliations + 1;
        bytes_exchanged = !stats.bytes_exchanged + bytes;
        max_depth = max !stats.max_depth depth;
      };
    let decoded =
      if fast then
        Sketch.decode_with ?scratch
          ~candidates:(Array.of_list (List.rev_append l r))
          merged
      else Sketch.decode merged
    in
    match decoded with
    | Ok elements -> diff := List.rev_append elements !diff
    | Error `Decode_failure ->
        stats := { !stats with decode_failures = !stats.decode_failures + 1 };
        if depth >= Gf2m.bits field then
          (* Cannot split further; give up on this partition (ids are
             uniform hashes, so in practice this is unreachable). *)
          ()
        else begin
          let bit = 1 lsl depth in
          let part p xs = List.filter (fun e -> e land bit = if p then bit else 0) xs in
          Queue.add (depth + 1, value, part false l, part false r) queue;
          Queue.add (depth + 1, value lor bit, part true l, part true r) queue
        end
  done;
  (!stats, !diff)

let reconcile_monolithic ?(field = Gf2m.gf32) ?(fast = true) ~capacity ~local
    ~remote () =
  let merged, bytes = sketch_pair field capacity local remote in
  let stats =
    {
      empty_stats with
      sketches_built = 2;
      reconciliations = 1;
      bytes_exchanged = bytes;
    }
  in
  let decoded =
    if fast then
      Sketch.decode_with
        ~candidates:(Array.of_list (List.rev_append local remote))
        merged
    else Sketch.decode merged
  in
  match decoded with
  | Ok elements -> (stats, Some elements)
  | Error `Decode_failure -> ({ stats with decode_failures = 1 }, None)
