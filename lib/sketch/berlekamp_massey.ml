let shift_mul f c poly k =
  (* c * x^k * poly *)
  if c = 0 || Poly.is_zero poly then Poly.zero
  else begin
    let d = Poly.degree poly in
    let out = Array.make (d + k + 1) 0 in
    for i = 0 to d do
      out.(i + k) <- Gf2m.mul f c (Poly.coeff poly i)
    done;
    Poly.of_coeffs (Array.to_list out)
  end

(* --- Scratch-based variant: the reference [run] above allocates two
   fresh polynomials per discrepancy step ([Poly.add] + [shift_mul]);
   decoding a partitioned sketch runs Berlekamp–Massey once per
   partition, so the arrays are hoisted into a reusable scratch and
   every update happens in place. [run_scratch] is qcheck-pinned to
   return exactly [run]'s connection polynomial and length. --- *)

type scratch = {
  mutable c : int array;
  mutable b : int array;
  mutable t : int array;
}

let create_scratch () =
  { c = Array.make 64 0; b = Array.make 64 0; t = Array.make 64 0 }

let ensure scratch size =
  if Array.length scratch.c < size then begin
    scratch.c <- Array.make size 0;
    scratch.b <- Array.make size 0;
    scratch.t <- Array.make size 0
  end

let run_scratch scratch f s ~off ~len =
  let size = len + 2 in
  ensure scratch size;
  let c = scratch.c and b = scratch.b and t = scratch.t in
  Array.fill c 0 size 0;
  Array.fill b 0 size 0;
  c.(0) <- 1;
  b.(0) <- 1;
  (* [dc]/[db] bound the degrees of [c]/[b] so blits and update loops
     stay proportional to the live prefix, as the Poly version's
     normalisation did. *)
  let dc = ref 0 and db = ref 0 in
  let l = ref 0 and m = ref 1 and bd = ref 1 in
  for i = 0 to len - 1 do
    let delta = ref s.(off + i) in
    for j = 1 to !l do
      if c.(j) <> 0 then
        delta := !delta lxor Gf2m.mul f c.(j) s.(off + i - j)
    done;
    if !delta = 0 then incr m
    else begin
      let coef = Gf2m.div f !delta !bd in
      if 2 * !l <= i then begin
        let dt = !dc in
        Array.blit c 0 t 0 (dt + 1);
        for j = 0 to !db do
          if b.(j) <> 0 then
            c.(j + !m) <- c.(j + !m) lxor Gf2m.mul f coef b.(j)
        done;
        dc := max !dc (!db + !m);
        l := i + 1 - !l;
        Array.blit t 0 b 0 (dt + 1);
        if !db > dt then Array.fill b (dt + 1) (!db - dt) 0;
        db := dt;
        bd := !delta;
        m := 1
      end
      else begin
        for j = 0 to !db do
          if b.(j) <> 0 then
            c.(j + !m) <- c.(j + !m) lxor Gf2m.mul f coef b.(j)
        done;
        dc := max !dc (!db + !m);
        incr m
      end
    end
  done;
  let d = ref (min !dc (size - 1)) in
  while !d > 0 && c.(!d) = 0 do
    decr d
  done;
  (Poly.of_coeffs (Array.to_list (Array.sub c 0 (!d + 1))), !l)

let run f s =
  let n = Array.length s in
  let c = ref Poly.one and b = ref Poly.one in
  let l = ref 0 and m = ref 1 and bd = ref 1 in
  for i = 0 to n - 1 do
    (* discrepancy: s_i + sum_{j=1..L} c_j s_{i-j} (char 2: + is xor) *)
    let delta = ref s.(i) in
    for j = 1 to !l do
      delta := !delta lxor Gf2m.mul f (Poly.coeff !c j) s.(i - j)
    done;
    if !delta = 0 then incr m
    else if 2 * !l <= i then begin
      let t = !c in
      let coef = Gf2m.div f !delta !bd in
      c := Poly.add !c (shift_mul f coef !b !m);
      l := i + 1 - !l;
      b := t;
      bd := !delta;
      m := 1
    end
    else begin
      let coef = Gf2m.div f !delta !bd in
      c := Poly.add !c (shift_mul f coef !b !m);
      incr m
    end
  done;
  (!c, !l)
