(** Dense univariate polynomials over GF(2^m).

    Coefficient arrays are little-endian ([coeffs.(i)] multiplies x^i)
    and normalised (no trailing zero coefficients, so the zero
    polynomial is the empty array). These carry the decoder side of
    PinSketch: locator polynomials, modular Frobenius powers, and the
    trace polynomials used for root splitting. *)

type t = int array

val zero : t
val one : t
val constant : int -> t
val of_coeffs : int list -> t
val degree : t -> int
(** Degree; -1 for the zero polynomial. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val coeff : t -> int -> int
val add : t -> t -> t
(** Coefficient-wise XOR. *)

val scale : Gf2m.t -> int -> t -> t
val mul : Gf2m.t -> t -> t -> t
val divmod : Gf2m.t -> t -> t -> t * t
(** Euclidean division. @raise Division_by_zero on a zero divisor. *)

val rem : Gf2m.t -> t -> t -> t
val gcd : Gf2m.t -> t -> t -> t
(** Monic greatest common divisor. *)

val monic : Gf2m.t -> t -> t
val eval : Gf2m.t -> t -> int -> int

val eval_by : Gf2m.t -> t -> int -> int
(** [eval_by f a x] = [eval f a x], with the fixed Horner multiplier
    [x] hoisted into a {!Gf2m.mul_by} window table — faster for the
    repeated-evaluation shape of candidate root searches on untabled
    fields. *)

val reverse : t -> t
(** Coefficient reversal x^d * a(1/x): the roots of [reverse a] are the
    inverses of the nonzero roots of [a]. *)

val square_mod : Gf2m.t -> t -> modulus:t -> t
(** Frobenius squaring mod a polynomial: in characteristic 2,
    (sum a_i x^i)^2 = sum a_i^2 x^(2i), then reduced. *)

val mul_mod : Gf2m.t -> t -> t -> modulus:t -> t

val frobenius_fixed : Gf2m.t -> t -> bool
(** [frobenius_fixed f p] checks x^(2^m) = x (mod p): true iff [p] is a
    product of distinct linear factors over GF(2^m), i.e. fully
    decodable. *)

val trace_mod : Gf2m.t -> beta:int -> modulus:t -> t
(** Tr(beta * x) reduced mod the given polynomial — the splitting
    polynomial for root isolation. *)

val roots : Gf2m.t -> t -> int list option
(** All roots of a squarefree, fully-split polynomial, found by
    recursive trace splitting. Returns [None] when the polynomial is not
    a product of distinct linear factors (decode failure). The zero
    polynomial and constants yield [Some \[\]] / [None] as appropriate:
    constants have no roots, zero is rejected. *)
