module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t = { field : Gf2m.t; capacity : int; syndromes : int array }

let create ?(field = Gf2m.gf32) ~capacity () =
  if capacity <= 0 then invalid_arg "Sketch.create: capacity";
  { field; capacity; syndromes = Array.make capacity 0 }

let field t = t.field
let capacity t = t.capacity
let copy t = { t with syndromes = Array.copy t.syndromes }

let add t e =
  if e <= 0 || e > Gf2m.mask t.field then invalid_arg "Sketch.add: element";
  (* Accumulate odd powers e^1, e^3, e^5, ... — the multiplier e^2 is
     fixed across the loop, so its window precomputation is hoisted out
     via [Gf2m.mul_by] when the capacity is large enough to amortise
     it. *)
  let e2 = Gf2m.sq t.field e in
  let syndromes = t.syndromes in
  let n = t.capacity in
  if n >= 16 || Gf2m.tabled t.field then begin
    let mul_e2 = Gf2m.mul_by t.field e2 in
    let p = ref e in
    for i = 0 to n - 1 do
      Array.unsafe_set syndromes i (Array.unsafe_get syndromes i lxor !p);
      if i < n - 1 then p := mul_e2 !p
    done
  end
  else begin
    let p = ref e in
    for i = 0 to n - 1 do
      Array.unsafe_set syndromes i (Array.unsafe_get syndromes i lxor !p);
      if i < n - 1 then p := Gf2m.mul t.field !p e2
    done
  end

let add_all t es = List.iter (add t) es

let of_list ?field ~capacity es =
  let t = create ?field ~capacity () in
  add_all t es;
  t

let merge a b =
  if Gf2m.bits a.field <> Gf2m.bits b.field || a.capacity <> b.capacity then
    invalid_arg "Sketch.merge: incompatible sketches";
  {
    a with
    syndromes = Array.init a.capacity (fun i -> a.syndromes.(i) lxor b.syndromes.(i));
  }

let truncate t ~capacity =
  if capacity <= 0 then invalid_arg "Sketch.truncate: capacity";
  if capacity >= t.capacity then t
  else { t with capacity; syndromes = Array.sub t.syndromes 0 capacity }

let is_empty t = Array.for_all (fun s -> s = 0) t.syndromes

let decode t =
  if is_empty t then Ok []
  else begin
    let f = t.field in
    let c = t.capacity in
    (* Full syndrome sequence s_1..s_2c; even entries from Frobenius:
       s_2k = s_k^2. [ss] is 1-indexed. *)
    let ss = Array.make ((2 * c) + 1) 0 in
    for k = 1 to 2 * c do
      ss.(k) <-
        (if k land 1 = 1 then t.syndromes.((k - 1) / 2)
         else Gf2m.sq f ss.(k / 2))
    done;
    let locator, l = Berlekamp_massey.run f (Array.sub ss 1 (2 * c)) in
    if l = 0 || Poly.degree locator <> l then Error `Decode_failure
    else
      match Poly.roots f locator with
      | None -> Error `Decode_failure
      | Some roots when List.length roots <> l -> Error `Decode_failure
      | Some roots when List.mem 0 roots -> Error `Decode_failure
      | Some roots ->
          let elements = List.map (Gf2m.inv f) roots in
          (* Re-encode to rule out spurious decodes beyond capacity. *)
          let check = create ~field:f ~capacity:c () in
          add_all check elements;
          if Array.for_all2 ( = ) check.syndromes t.syndromes then Ok elements
          else Error `Decode_failure
  end

let syndrome_bytes field = (Gf2m.bits field + 7) / 8
let serialized_size t = 1 + 2 + (t.capacity * syndrome_bytes t.field)

let encode w t =
  Writer.u8 w (Gf2m.bits t.field);
  Writer.u16 w t.capacity;
  let nb = syndrome_bytes t.field in
  Array.iter
    (fun s ->
      for i = nb - 1 downto 0 do
        Writer.u8 w ((s lsr (8 * i)) land 0xFF)
      done)
    t.syndromes

let encode_into t buf ~pos =
  let nb = syndrome_bytes t.field in
  let len = serialized_size t in
  if pos < 0 || pos + len > Bytes.length buf then
    invalid_arg "Sketch.encode_into";
  Bytes.unsafe_set buf pos (Char.unsafe_chr (Gf2m.bits t.field));
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr ((t.capacity lsr 8) land 0xFF));
  Bytes.unsafe_set buf (pos + 2) (Char.unsafe_chr (t.capacity land 0xFF));
  let off = ref (pos + 3) in
  for i = 0 to t.capacity - 1 do
    let s = Array.unsafe_get t.syndromes i in
    for b = nb - 1 downto 0 do
      Bytes.unsafe_set buf !off (Char.unsafe_chr ((s lsr (8 * b)) land 0xFF));
      incr off
    done
  done

let decode_wire ?(field = Gf2m.gf32) r =
  let m = Reader.u8 r in
  if m <> Gf2m.bits field then raise (Reader.Malformed "sketch field size");
  let capacity = Reader.u16 r in
  if capacity = 0 then raise (Reader.Malformed "sketch capacity");
  let nb = syndrome_bytes field in
  let syndromes =
    Array.init capacity (fun _ ->
        let v = ref 0 in
        for _ = 1 to nb do
          v := (!v lsl 8) lor Reader.u8 r
        done;
        if !v > Gf2m.mask field then raise (Reader.Malformed "sketch syndrome");
        !v)
  in
  { field; capacity; syndromes }
