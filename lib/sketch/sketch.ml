module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

type t = { field : Gf2m.t; capacity : int; syndromes : int array }

let create ?(field = Gf2m.gf32) ~capacity () =
  if capacity <= 0 then invalid_arg "Sketch.create: capacity";
  { field; capacity; syndromes = Array.make capacity 0 }

let field t = t.field
let capacity t = t.capacity
let copy t = { t with syndromes = Array.copy t.syndromes }

let add t e =
  if e <= 0 || e > Gf2m.mask t.field then invalid_arg "Sketch.add: element";
  (* Accumulate odd powers e^1, e^3, e^5, ... — the multiplier e^2 is
     fixed across the loop, so the whole walk runs as one fused kernel
     with the window table, reduction, and running power inlined. *)
  Gf2m.accum_powers t.field ~base:e ~step:(Gf2m.sq t.field e) t.syndromes
    ~n:t.capacity

(* Pairs of elements share one syndrome pass (see
   [Gf2m.accum_powers2]); element order is irrelevant since syndrome
   accumulation is xor. *)
let add_all t es =
  let mask = Gf2m.mask t.field in
  let rec go = function
    | [] -> ()
    | [ e ] -> add t e
    | e1 :: e2 :: rest ->
        if e1 <= 0 || e1 > mask || e2 <= 0 || e2 > mask then
          invalid_arg "Sketch.add: element";
        Gf2m.accum_powers2 t.field ~base1:e1
          ~step1:(Gf2m.sq t.field e1)
          ~base2:e2
          ~step2:(Gf2m.sq t.field e2)
          t.syndromes ~n:t.capacity;
        go rest
  in
  go es

let of_list ?field ~capacity es =
  let t = create ?field ~capacity () in
  add_all t es;
  t

let merge a b =
  if Gf2m.bits a.field <> Gf2m.bits b.field || a.capacity <> b.capacity then
    invalid_arg "Sketch.merge: incompatible sketches";
  {
    a with
    syndromes = Array.init a.capacity (fun i -> a.syndromes.(i) lxor b.syndromes.(i));
  }

let truncate t ~capacity =
  if capacity <= 0 then invalid_arg "Sketch.truncate: capacity";
  if capacity >= t.capacity then t
  else { t with capacity; syndromes = Array.sub t.syndromes 0 capacity }

let is_empty t = Array.for_all (fun s -> s = 0) t.syndromes

module Scratch = struct
  type t = { bm : Berlekamp_massey.scratch; mutable ss : int array }

  let create () = { bm = Berlekamp_massey.create_scratch (); ss = [||] }
end

(* Re-encode to rule out spurious decodes beyond capacity. *)
let reencode_check t elements =
  let check = create ~field:t.field ~capacity:t.capacity () in
  add_all check elements;
  if Array.for_all2 ( = ) check.syndromes t.syndromes then Ok elements
  else Error `Decode_failure

(* Candidate-driven root search: in set reconciliation the decoded
   difference is a subset of [local union remote], so instead of
   factoring the locator by trace splitting we evaluate its reversal at
   each candidate element (the reversal's roots are the elements
   themselves, no inversions needed). If the locator has degree l and l
   distinct candidates are roots, those are all its roots and the
   polynomial provably splits completely — exactly the cases where
   [Poly.roots] succeeds. Fewer hits means candidates did not cover the
   root set; the caller falls back to the full search, keeping the
   outcome identical to {!decode} on every input. *)
let candidate_roots f locator l candidates =
  let rev = Poly.reverse locator in
  let found = Hashtbl.create (2 * l) in
  let n_found = ref 0 in
  let mask = Gf2m.mask f in
  (try
     Array.iter
       (fun e ->
         if
           e > 0 && e <= mask
           && (not (Hashtbl.mem found e))
           && Poly.eval_by f rev e = 0
         then begin
           Hashtbl.add found e ();
           incr n_found;
           if !n_found = l then raise Exit
         end)
       candidates
   with Exit -> ());
  if !n_found = l then Some (Hashtbl.fold (fun e () acc -> e :: acc) found [])
  else None

let decode_with ?scratch ?candidates t =
  if is_empty t then Ok []
  else begin
    let f = t.field in
    let c = t.capacity in
    (* Full syndrome sequence s_1..s_2c; even entries from Frobenius:
       s_2k = s_k^2. [ss] is 1-indexed. *)
    let ss =
      match scratch with
      | None -> Array.make ((2 * c) + 1) 0
      | Some s ->
          if Array.length s.Scratch.ss < (2 * c) + 1 then
            s.Scratch.ss <- Array.make ((2 * c) + 1) 0;
          s.Scratch.ss
    in
    for k = 1 to 2 * c do
      ss.(k) <-
        (if k land 1 = 1 then t.syndromes.((k - 1) / 2)
         else Gf2m.sq f ss.(k / 2))
    done;
    let locator, l =
      match scratch with
      | None -> Berlekamp_massey.run f (Array.sub ss 1 (2 * c))
      | Some s -> Berlekamp_massey.run_scratch s.Scratch.bm f ss ~off:1 ~len:(2 * c)
    in
    if l = 0 || Poly.degree locator <> l then Error `Decode_failure
    else begin
      let from_candidates =
        match candidates with
        | None -> None
        | Some cand -> candidate_roots f locator l cand
      in
      match from_candidates with
      | Some elements -> reencode_check t elements
      | None -> (
          match Poly.roots f locator with
          | None -> Error `Decode_failure
          | Some roots when List.length roots <> l -> Error `Decode_failure
          | Some roots when List.mem 0 roots -> Error `Decode_failure
          | Some roots -> reencode_check t (List.map (Gf2m.inv f) roots))
    end
  end

let decode t = decode_with t

let syndrome_bytes field = (Gf2m.bits field + 7) / 8
let serialized_size t = 1 + 2 + (t.capacity * syndrome_bytes t.field)

let encode w t =
  Writer.u8 w (Gf2m.bits t.field);
  Writer.u16 w t.capacity;
  let nb = syndrome_bytes t.field in
  Array.iter
    (fun s ->
      for i = nb - 1 downto 0 do
        Writer.u8 w ((s lsr (8 * i)) land 0xFF)
      done)
    t.syndromes

let encode_into t buf ~pos =
  let nb = syndrome_bytes t.field in
  let len = serialized_size t in
  if pos < 0 || pos + len > Bytes.length buf then
    invalid_arg "Sketch.encode_into";
  Bytes.unsafe_set buf pos (Char.unsafe_chr (Gf2m.bits t.field));
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr ((t.capacity lsr 8) land 0xFF));
  Bytes.unsafe_set buf (pos + 2) (Char.unsafe_chr (t.capacity land 0xFF));
  let off = ref (pos + 3) in
  for i = 0 to t.capacity - 1 do
    let s = Array.unsafe_get t.syndromes i in
    for b = nb - 1 downto 0 do
      Bytes.unsafe_set buf !off (Char.unsafe_chr ((s lsr (8 * b)) land 0xFF));
      incr off
    done
  done

let decode_wire ?(field = Gf2m.gf32) r =
  let m = Reader.u8 r in
  if m <> Gf2m.bits field then raise (Reader.Malformed "sketch field size");
  let capacity = Reader.u16 r in
  if capacity = 0 then raise (Reader.Malformed "sketch capacity");
  let nb = syndrome_bytes field in
  let syndromes =
    Array.init capacity (fun _ ->
        let v = ref 0 in
        for _ = 1 to nb do
          v := (!v lsl 8) lor Reader.u8 r
        done;
        if !v > Gf2m.mask field then raise (Reader.Malformed "sketch syndrome");
        !v)
  in
  { field; capacity; syndromes }
