type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let normalize a =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let d = top (n - 1) in
  if d = n - 1 then a else Array.sub a 0 (d + 1)

let constant c = if c = 0 then zero else [| c |]
let of_coeffs cs = normalize (Array.of_list cs)
let degree a = Array.length a - 1
let is_zero a = Array.length a = 0
let equal (a : t) (b : t) = a = b
let coeff a i = if i < Array.length a then a.(i) else 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  normalize (Array.init (max la lb) (fun i -> coeff a i lxor coeff b i))

let scale f c a =
  if c = 0 then zero else normalize (Array.map (fun x -> Gf2m.mul f c x) a)

let mul f a b =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (degree a + degree b + 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri
            (fun j bj -> out.(i + j) <- out.(i + j) lxor Gf2m.mul f ai bj)
            b)
      a;
    normalize out
  end

let divmod f a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let lead_inv = Gf2m.inv f b.(db) in
  let r = Array.copy a in
  let da = degree a in
  if da < db then (zero, normalize r)
  else begin
    let q = Array.make (da - db + 1) 0 in
    for i = da downto db do
      if r.(i) <> 0 then begin
        let factor = Gf2m.mul f r.(i) lead_inv in
        q.(i - db) <- factor;
        for j = 0 to db do
          r.(i - db + j) <- r.(i - db + j) lxor Gf2m.mul f factor b.(j)
        done
      end
    done;
    (normalize q, normalize r)
  end

let rem f a b = snd (divmod f a b)

let monic f a =
  if is_zero a then a
  else
    let lead = a.(degree a) in
    if lead = 1 then a else scale f (Gf2m.inv f lead) a

let rec gcd f a b = if is_zero b then monic f a else gcd f b (rem f a b)

let eval f a x =
  (* Horner's rule. *)
  let acc = ref 0 in
  for i = degree a downto 0 do
    acc := Gf2m.mul f !acc x lxor a.(i)
  done;
  !acc

let eval_by f a x =
  (* Horner with the fixed multiplier [x] hoisted into a window table
     via [Gf2m.mul_by] — the per-candidate step of the Chien-style root
     search over candidate sets. Identical to [eval] on every input. *)
  let d = degree a in
  if d < 8 then eval f a x
  else begin
    let mul_x = Gf2m.mul_by f x in
    let acc = ref 0 in
    for i = d downto 0 do
      acc := mul_x !acc lxor Array.unsafe_get a i
    done;
    !acc
  end

let reverse a =
  let d = degree a in
  if d < 0 then zero
  else normalize (Array.init (d + 1) (fun i -> a.(d - i)))

let square_mod f a ~modulus =
  if is_zero a then zero
  else begin
    let out = Array.make ((2 * degree a) + 1) 0 in
    Array.iteri (fun i ai -> out.(2 * i) <- Gf2m.sq f ai) a;
    rem f (normalize out) modulus
  end

let mul_mod f a b ~modulus = rem f (mul f a b) modulus

let frobenius_fixed f p =
  if degree p < 1 then false
  else begin
    (* x^(2^m) mod p via m modular squarings of x. *)
    let x = rem f [| 0; 1 |] p in
    let cur = ref x in
    for _ = 1 to Gf2m.bits f do
      cur := square_mod f !cur ~modulus:p
    done;
    equal !cur x
  end

let trace_mod f ~beta ~modulus =
  let bx = rem f [| 0; beta |] modulus in
  let acc = ref bx and cur = ref bx in
  for _ = 2 to Gf2m.bits f do
    cur := square_mod f !cur ~modulus;
    acc := add !acc !cur
  done;
  !acc

let roots f p =
  if is_zero p then None
  else begin
    let exception Split_failure in
    (* [find p betas acc] accumulates the roots of monic squarefree [p]. *)
    let rec find p next_beta acc =
      match degree p with
      | 0 -> acc
      | 1 ->
          (* monic: x + c, root c *)
          p.(0) :: acc
      | _ ->
          let rec split beta tries =
            if tries > Gf2m.bits f + 64 then raise Split_failure
            else begin
              let t = trace_mod f ~beta ~modulus:p in
              let g = gcd f p t in
              let dg = degree g in
              if dg > 0 && dg < degree p then g
              else
                (* also try Tr(beta x) + 1 via gcd with t+1 *)
                let g' = gcd f p (add t one) in
                let dg' = degree g' in
                if dg' > 0 && dg' < degree p then g'
                else split (Gf2m.mul f beta 2 lxor 1) (tries + 1)
            end
          in
          let g = split next_beta 0 in
          let h, r = divmod f p g in
          assert (is_zero r);
          let acc = find (monic f g) (Gf2m.mul f next_beta 3 lxor 5) acc in
          find (monic f h) (Gf2m.mul f next_beta 3 lxor 7) acc
    in
    let p = monic f p in
    if not (frobenius_fixed f p) then
      if degree p = 0 then Some [] else None
    else
      match find p 1 [] with
      | roots -> Some roots
      | exception Split_failure -> None
  end
