(** Binary finite fields GF(2^m) for 2 <= m <= 32.

    Elements are OCaml ints in [\[0, 2^m)] interpreted as polynomials
    over GF(2); arithmetic is modulo a fixed irreducible polynomial.
    These fields carry the PinSketch syndromes: the paper maps each
    transaction id to its 32-bit representation, i.e. an element of
    GF(2^32). *)

type t
(** A field descriptor (size and reduction polynomial). *)

val make : m:int -> modulus:int -> t
(** [make ~m ~modulus] builds GF(2^m) reduced by x^m + [modulus] where
    [modulus] encodes the low-order terms. The polynomial is checked for
    irreducibility. @raise Invalid_argument if out of range or
    reducible. *)

val gf8 : t
(** GF(2^8), x^8 + x^4 + x^3 + x + 1 (the AES field). *)

val gf16 : t
(** GF(2^16), x^16 + x^5 + x^3 + x + 1. *)

val gf32 : t
(** GF(2^32), x^32 + x^7 + x^3 + x^2 + 1 — the field used for
    transaction-id sketches, as in libminisketch. *)

val bits : t -> int
val order_minus_one : t -> int
(** 2^m - 1, the multiplicative group order. *)

val mask : t -> int
(** 2^m - 1 as a bit mask; also the largest element. *)

val add : int -> int -> int
(** Addition = XOR (characteristic 2); provided for symmetry. *)

val mul : t -> int -> int -> int
(** Field multiplication. For m <= 16 this is two log lookups and one
    antilog lookup in per-field tables built at {!make} time; larger
    fields use {!mul_generic}. *)

val mul_generic : t -> int -> int -> int
(** The windowed carryless multiplier (4-bit window + reduction),
    independent of the log/antilog tables. Semantically identical to
    {!mul} on every field — kept as the reference implementation for
    equivalence tests and benchmarks, and as the fallback for m > 16.
    Safe to call concurrently from multiple domains (its window scratch
    is domain-local). *)

val mul_by : t -> int -> int -> int
(** [mul_by f b] returns a function computing [fun a -> mul f a b] with
    the [b]-dependent precomputation hoisted out: for untabled fields an
    8-bit window table of [b] is built once and shared across every
    application. Use when one factor is fixed across a loop (e.g.
    syndrome accumulation). The returned closure is pure and
    domain-safe. *)

val tabled : t -> bool
(** Whether this field carries log/antilog tables (m <= 16). *)

val accum_powers : t -> base:int -> step:int -> int array -> n:int -> unit
(** [accum_powers f ~base ~step s ~n] xors [base * step^i] into [s.(i)]
    for [i] in [\[0, n)] — i.e. [s.(i) <- add s.(i) (mul f base
    (step^i))]. This is the syndrome-accumulation inner loop of
    [Sketch.add] as one fused kernel: the window table of [step], the
    modular reduction, and the running power are all inlined, removing
    the per-multiplication closure call that a {!mul_by} loop pays.
    Semantically identical to the naive loop for every field and any
    [base]/[step] (including zero). @raise Invalid_argument if [n]
    exceeds [Array.length s]. *)

val accum_powers2 :
  t ->
  base1:int ->
  step1:int ->
  base2:int ->
  step2:int ->
  int array ->
  n:int ->
  unit
(** Two {!accum_powers} accumulations fused into one pass over [s]. The
    two Horner chains are independent, so their multiply latencies
    overlap and the array is traversed once. Semantically identical to
    two sequential {!accum_powers} calls for any inputs. *)

val sq : t -> int -> int
val pow : t -> int -> int -> int
(** [pow f a k] for [k >= 0]; [pow f a 0 = 1]. *)

val inv : t -> int -> int
(** @raise Division_by_zero on 0. *)

val div : t -> int -> int -> int

val trace : t -> int -> int
(** Absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)), in {0,1}. *)
