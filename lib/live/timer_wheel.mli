(** Wall-clock timer wheel for the live event loop.

    A thin wrapper over the deterministic binary-heap queue
    ({!Lo_net.Event_queue}): insertion order breaks ties, so two timers
    due at the same instant fire in the order they were scheduled —
    the same guarantee the DES gives protocol code. *)

type t

val create : unit -> t
val schedule : t -> at:float -> (unit -> unit) -> unit

val next_due : t -> float option
(** Earliest deadline still queued. *)

val run_due : t -> now:float -> int
(** Pop and run every callback with deadline [<= now], in deadline
    (then insertion) order; returns how many ran. Callbacks may
    schedule further timers; those run too if already due. *)

val pending : t -> int
