module Q = Lo_net.Event_queue

type t = { q : (unit -> unit) Q.t }

let create () = { q = Q.create () }
let schedule t ~at fn = Q.add t.q ~time:at fn
let next_due t = Q.peek_time t.q
let pending t = Q.size t.q

let run_due t ~now =
  let ran = ref 0 in
  let continue = ref true in
  while !continue do
    match Q.peek_time t.q with
    | Some time when time <= now -> begin
        match Q.pop t.q with
        | Some (_, fn) ->
            incr ran;
            fn ()
        | None -> continue := false
      end
    | Some _ | None -> continue := false
  done;
  !ran
