let rec read fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf off len

let rec write fd buf off len =
  try Unix.write fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write fd buf off len

let select r w e timeout =
  try Unix.select r w e timeout
  with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])

let rec accept fd =
  try Unix.accept fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> accept fd

let rec waitpid flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid flags pid

let sleep = Clock.sleep
