(** Length-prefixed wire framing for the live TCP backend.

    Layout (all integers through {!Lo_codec}, big-endian):

    {v
    u32   body length (bytes that follow; <= max_body)
    u8    protocol version (currently 1)
    varint  sender's dense node index
    bytes   tag   (varint length prefix + bytes)
    bytes   payload (varint length prefix + bytes)
    v}

    The version byte is part of the body so a frame from a newer peer
    still parses structurally: the dispatcher surfaces it as an
    unknown-tag delivery instead of desynchronising the stream. The
    incremental {!Decoder} tolerates arbitrary chunking — partial
    headers, split bodies, many frames per read — which is what TCP
    provides. *)

val version : int
(** Wire version this implementation speaks (1). *)

val max_body : int
(** Upper bound on the body length (16 MiB); a larger prefix marks a
    corrupt or hostile stream. *)

type frame = { version : int; src : int; tag : string; payload : string }

val encode : src:int -> tag:string -> string -> string
(** Whole frame, ready to write. *)

val decode_body : string -> frame
(** Parse one frame body (everything after the length prefix).
    @raise Lo_codec.Reader.Malformed on structural garbage. *)

(** Incremental decoder over a byte stream. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> string -> unit
  (** Append a received chunk (or a slice of it). *)

  val next : t -> frame option
  (** The next complete frame, if buffered.
      @raise Lo_codec.Reader.Malformed on a corrupt stream (oversized
      length prefix or unparseable body) — and only that exception,
      whatever bytes arrive. After an unparseable body the bad frame
      has been consumed, so feeding may continue; after an oversized
      prefix the stream position itself is lost and the caller should
      {!reset} (or drop the connection). *)

  val buffered : t -> int
  (** Bytes held waiting for a complete frame. *)

  val reset : t -> unit
  (** Discard all buffered bytes, returning the decoder to its freshly
      created state — the resync point after {!next} raised. *)
end
