(** Length-prefixed wire framing for the live TCP backend.

    Layout (all integers through {!Lo_codec}, big-endian):

    {v
    u32   body length (bytes that follow; <= max_body)
    u8    protocol version (currently 1)
    varint  sender's dense node index
    bytes   tag   (varint length prefix + bytes)
    bytes   payload (varint length prefix + bytes)
    v}

    The version byte is part of the body so a frame from a newer peer
    still parses structurally: the dispatcher surfaces it as an
    unknown-tag delivery instead of desynchronising the stream. The
    incremental {!Decoder} tolerates arbitrary chunking — partial
    headers, split bodies, many frames per read — which is what TCP
    provides. *)

val version : int
(** Wire version this implementation speaks (1). *)

val max_body : int
(** Upper bound on the body length (16 MiB); a larger prefix marks a
    corrupt or hostile stream. *)

type frame = { version : int; src : int; tag : string; payload : string }

val encode : src:int -> tag:string -> string -> string
(** Whole frame, ready to write. *)

val encode_into : Lo_codec.Writer.t -> src:int -> tag:string -> string -> unit
(** Append one complete frame (length prefix included) to a
    caller-owned writer {e without} resetting it — the pipelined send
    path gathers a burst of frames into one writer and hands the socket
    a single contiguous write. *)

val decode_body : string -> frame
(** Parse one frame body (everything after the length prefix).
    @raise Lo_codec.Reader.Malformed on structural garbage. *)

(** Incremental decoder over a byte stream. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> string -> unit
  (** Append a received chunk (or a slice of it). *)

  val feed_bytes : t -> Bytes.t -> int -> int -> unit
  (** [feed_bytes t chunk off len]: append straight from the read
      scratch buffer, skipping the [Bytes.sub_string] a string-typed
      feed would force on every [read]. *)

  val next : t -> frame option
  (** The next complete frame, if buffered.
      @raise Lo_codec.Reader.Malformed on a corrupt stream (oversized
      length prefix or unparseable body) — and only that exception,
      whatever bytes arrive. After an unparseable body the bad frame
      has been consumed, so feeding may continue; after an oversized
      prefix the stream position itself is lost and the caller should
      {!reset} (or drop the connection). *)

  type view = {
    v_version : int;
    v_src : int;
    v_tag : string;
    v_payload : Lo_codec.Reader.t;
  }
  (** A decoded frame whose payload is a reader view {e into the
      decoder's receive buffer} — no body copy. The view (and any
      sub-views derived from it) is only valid until the decoder is
      next touched: any [feed]/[feed_bytes]/[next]/[next_view]/[reset]
      may move the underlying storage. Consume it fully before
      advancing. *)

  val next_view : t -> view option
  (** Zero-copy variant of {!next}: same resync semantics (a malformed
      body is consumed before the exception escapes), but the payload
      stays in place. The tag and header fields are still materialised
      (they are tiny); only the payload — the dominant bytes — is
      borrowed. *)

  val buffered : t -> int
  (** Bytes held waiting for a complete frame. *)

  val reset : t -> unit
  (** Discard all buffered bytes, returning the decoder to its freshly
      created state — the resync point after {!next} raised. *)
end
