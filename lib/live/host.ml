module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer
open Lo_core

type config = {
  id : int;
  n : int;
  base_port : int;
  seed : int;
  tps : float;
  duration : float;
  drain : float;
  epoch : float;
  trace_capacity : int;
}

let default_drain = 3.0
let default_trace_capacity = 1 lsl 20
let default_base_port = 7350

let config ~id ~n ?(base_port = default_base_port) ?(seed = 1) ?(tps = 20.)
    ?(duration = 10.) ?(drain = default_drain)
    ?(trace_capacity = default_trace_capacity) ~epoch () =
  if n <= 0 then invalid_arg "Host.config: n";
  if id < 0 || id >= n then invalid_arg "Host.config: id";
  { id; n; base_port; seed; tps; duration; drain; epoch; trace_capacity }

type stats = {
  submitted : int;
  frames_out : int;
  frames_in : int;
  unknown : int;
  trace_events : int;
}

(* How long the post-quiesce loop must stay silent (no frame in or out)
   before the node may exit early; bounded above by [drain]. *)
let quiet_exit = 1.0

let loopback = Unix.inet_addr_loopback

(* The same deployment derivation as [Lo_sim.Scenario.build_lo]: every
   process reconstructs all n identities (which also populates the
   simulation scheme's verification registry) and the seed-determined
   overlay, so the cluster agrees on directory and topology without any
   coordination traffic. *)
let derive_deployment ~n ~seed =
  let scheme = Signer.simulation () in
  let signers =
    Array.init n (fun i ->
        Signer.make scheme ~seed:(Printf.sprintf "lo-node-%d-%d" seed i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let topo_rng = Rng.create ((seed * 31) + 7) in
  let out_degree = min 8 (max 1 (n - 1)) in
  let topology = Lo_net.Topology.build topo_rng ~n ~out_degree ~max_in:125 in
  let client = Signer.make scheme ~seed:(Printf.sprintf "client-%d" seed) in
  (scheme, signers, directory, topology, client)

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd bytes !off (len - !off) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ?trace_path cfg =
  let { id; n; base_port; seed; tps; duration; drain; epoch; trace_capacity } =
    cfg
  in
  let scheme, signers, directory, topology, client =
    derive_deployment ~n ~seed
  in
  let trace = Lo_obs.Trace.create ~capacity:trace_capacity () in
  let now_rel () = Clock.now_s () -. epoch in
  let emit ev = Lo_obs.Trace.emit trace ~at:(now_rel ()) ev in

  (* --- sockets --- *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (loopback, base_port + id));
  Unix.listen listener (2 * n);
  let conns = Array.make n None in
  let connect_peer j =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (loopback, base_port + j)) with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        conns.(j) <- Some fd
    | exception Unix.Unix_error _ -> close_quietly fd
  in
  (* Everyone listens before anyone must be reachable, so just retry
     until the epoch (plus slack for stragglers under load). *)
  let connect_deadline = epoch +. 2.0 in
  let rec connect_all () =
    for j = 0 to n - 1 do
      if j <> id && conns.(j) = None then connect_peer j
    done;
    if Array.exists2 (fun j c -> j <> id && c = None)
         (Array.init n Fun.id) conns
    then
      if Clock.now_s () > connect_deadline then
        failwith
          (Printf.sprintf "lo serve %d: peers unreachable after %.1fs" id
             (Clock.now_s () -. (epoch -. 2.0)))
      else begin
        Clock.sleep 0.05;
        connect_all ()
      end
  in

  (* --- transport state --- *)
  let timers = Timer_wheel.create () in
  let subs : (string, Lo_transport.handler) Hashtbl.t = Hashtbl.create 4 in
  let restart_handler = ref (fun () -> ()) in
  let local : (string * string) Queue.t = Queue.create () in
  let submitted = ref 0 in
  let frames_out = ref 0 in
  let frames_in = ref 0 in
  let unknown = ref 0 in
  let last_activity = ref 0. in

  let send_to ~dst ~tag payload =
    let bytes = String.length payload in
    if dst = id then begin
      emit (Lo_obs.Event.Send { src = id; dst; tag; bytes });
      Queue.add (tag, payload) local
    end
    else
      match conns.(dst) with
      | None ->
          (* Never connected (or already torn down): refused at send
             time, outside bandwidth conservation — like the DES. *)
          emit
            (Lo_obs.Event.Drop
               { src = id; dst; tag; bytes; reason = Lo_obs.Event.Blocked })
      | Some fd -> (
          emit (Lo_obs.Event.Send { src = id; dst; tag; bytes });
          incr frames_out;
          last_activity := now_rel ();
          try write_all fd (Frame.encode ~src:id ~tag payload)
          with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            close_quietly fd;
            conns.(dst) <- None;
            emit
              (Lo_obs.Event.Drop
                 { src = id; dst; tag; bytes; reason = Lo_obs.Event.Down }))
  in
  let transport =
    {
      Lo_transport.self = id;
      now = now_rel;
      send = (fun ~dst ~tag payload -> send_to ~dst ~tag payload);
      send_many =
        (fun ~dsts ~tag payload ->
          List.iter (fun dst -> send_to ~dst ~tag payload) dsts);
      schedule =
        (fun ~delay fn -> Timer_wheel.schedule timers ~at:(now_rel () +. delay) fn);
      subscribe = (fun ~proto handler -> Hashtbl.replace subs proto handler);
      set_restart_handler = (fun fn -> restart_handler := fn);
      trace = Some trace;
    }
  in

  let node =
    Node.create
      (Node.default_config scheme)
      ~transport
      ~rng:(Rng.create (((seed * 1_000_003) + id) lxor 0x5bd1e995))
      ~directory ~signer:signers.(id)
      ~neighbors:(Lo_net.Topology.neighbors topology id)
      ~behavior:Node.Honest
  in

  let dispatch ~from ~tag payload =
    emit
      (Lo_obs.Event.Deliver
         { src = from; dst = id; tag; bytes = String.length payload });
    match Hashtbl.find_opt subs (Lo_net.Mux.proto_of_tag tag) with
    | Some handler -> handler ~from ~tag payload
    | None ->
        incr unknown;
        emit (Lo_obs.Event.Unknown_tag { node = id; src = from; tag })
  in
  let handle_frame (f : Frame.frame) =
    incr frames_in;
    last_activity := now_rel ();
    if f.version <> Frame.version then begin
      (* A peer speaking a newer framing: account the delivery, then
         surface the skew instead of losing the message silently. *)
      emit
        (Lo_obs.Event.Deliver
           {
             src = f.src;
             dst = id;
             tag = f.tag;
             bytes = String.length f.payload;
           });
      incr unknown;
      emit
        (Lo_obs.Event.Unknown_tag
           { node = id; src = f.src; tag = Printf.sprintf "v%d:%s" f.version f.tag })
    end
    else dispatch ~from:f.src ~tag:f.tag f.payload
  in

  (* --- workload: the simulator's generator, filtered to this node --- *)
  let wl_rng = Rng.create ((seed * 97) + 13) in
  let wl_config =
    { Lo_workload.Tx_gen.default_config with rate = tps; duration }
  in
  let specs = Lo_workload.Tx_gen.generate wl_rng wl_config ~num_nodes:n in
  List.iter
    (fun spec ->
      if spec.Lo_workload.Tx_gen.origin mod n = id then begin
        let tx =
          Tx.create ~signer:client ~fee:spec.Lo_workload.Tx_gen.fee
            ~created_at:spec.Lo_workload.Tx_gen.created_at
            ~payload:(Lo_workload.Tx_gen.payload spec)
        in
        Timer_wheel.schedule timers ~at:spec.Lo_workload.Tx_gen.created_at
          (fun () ->
            incr submitted;
            Node.submit_tx node tx)
      end)
    specs;

  (* --- startup barrier --- *)
  connect_all ();
  let wait = epoch -. Clock.now_s () in
  if wait > 0. then Clock.sleep wait;
  Node.start node;
  last_activity := now_rel ();

  (* --- event loop --- *)
  let read_buf = Bytes.create 65536 in
  let decoders : (Unix.file_descr, Frame.Decoder.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let incoming = ref [] in
  let drop_incoming fd =
    close_quietly fd;
    Hashtbl.remove decoders fd;
    incoming := List.filter (fun f -> f != fd) !incoming
  in
  let running = ref true in
  while !running do
    let now = now_rel () in
    if now >= duration +. drain then running := false
    else if
      now >= duration
      && now -. !last_activity >= quiet_exit
      && Queue.is_empty local
    then running := false
    else begin
      (* Quiesce at [duration]: frozen timers stop new rounds, retries
         and submissions; the cascade of in-flight replies drains. *)
      if now < duration then ignore (Timer_wheel.run_due timers ~now);
      while not (Queue.is_empty local) do
        let tag, payload = Queue.pop local in
        last_activity := now_rel ();
        dispatch ~from:id ~tag payload
      done;
      let timeout =
        let cap = 0.05 in
        if now >= duration then cap
        else
          match Timer_wheel.next_due timers with
          | Some t -> Float.max 0.001 (Float.min cap (t -. now_rel ()))
          | None -> cap
      in
      match Unix.select (listener :: !incoming) [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd == listener then begin
                let c, _ = Unix.accept listener in
                (try Unix.setsockopt c Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                Hashtbl.replace decoders c (Frame.Decoder.create ());
                incoming := c :: !incoming
              end
              else
                match Unix.read fd read_buf 0 (Bytes.length read_buf) with
                | 0 -> drop_incoming fd
                | k -> (
                    let dec = Hashtbl.find decoders fd in
                    Frame.Decoder.feed dec (Bytes.sub_string read_buf 0 k);
                    try
                      let continue = ref true in
                      while !continue do
                        match Frame.Decoder.next dec with
                        | Some f -> handle_frame f
                        | None -> continue := false
                      done
                    with Lo_codec.Reader.Malformed _ -> drop_incoming fd)
                | exception
                    Unix.Unix_error
                      ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                    drop_incoming fd)
            readable
    end
  done;

  (* --- shutdown --- *)
  List.iter close_quietly !incoming;
  Array.iter (function Some fd -> close_quietly fd | None -> ()) conns;
  close_quietly listener;
  (match trace_path with
  | Some path ->
      let oc = open_out path in
      Lo_obs.Jsonl.output oc trace;
      close_out oc
  | None -> ());
  {
    submitted = !submitted;
    frames_out = !frames_out;
    frames_in = !frames_in;
    unknown = !unknown;
    trace_events = Lo_obs.Trace.total trace;
  }
