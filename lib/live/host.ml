module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer
open Lo_core

type config = {
  id : int;
  n : int;
  base_port : int;
  seed : int;
  tps : float;
  duration : float;
  drain : float;
  epoch : float;
  trace_capacity : int;
  incarnation : int;
  resume_from : string list;
  faults : Faulty_link.spec;
}

let default_drain = 3.0
let default_trace_capacity = 1 lsl 20
let default_base_port = 7350

let config ~id ~n ?(base_port = default_base_port) ?(seed = 1) ?(tps = 20.)
    ?(duration = 10.) ?(drain = default_drain)
    ?(trace_capacity = default_trace_capacity) ?(incarnation = 0)
    ?(resume_from = []) ?(faults = Faulty_link.none) ~epoch () =
  if n <= 0 then invalid_arg "Host.config: n";
  if id < 0 || id >= n then invalid_arg "Host.config: id";
  if incarnation < 0 then invalid_arg "Host.config: incarnation";
  if incarnation > 0 && resume_from = [] then
    invalid_arg "Host.config: incarnation > 0 needs resume_from";
  Faulty_link.validate faults;
  {
    id;
    n;
    base_port;
    seed;
    tps;
    duration;
    drain;
    epoch;
    trace_capacity;
    incarnation;
    resume_from;
    faults;
  }

type stats = {
  submitted : int;
  frames_out : int;
  frames_in : int;
  unknown : int;
  trace_events : int;
  reconnects : int;
}

(* How long the post-quiesce loop must stay silent (no frame in or out)
   before the node may exit early; bounded above by [drain]. *)
let quiet_exit = 1.0

(* Per-peer cap on queued unwritten wire bytes; beyond it new frames
   are refused with an accounted drop (tail drop). *)
let max_queue_bytes = 1 lsl 18

(* An established connection with queued bytes but no write progress
   for this long is declared half-open and torn down. *)
let stall_timeout = 4.0

(* A connect attempt (SYN sent, not yet established) older than this is
   abandoned; localhost either answers or refuses almost instantly. *)
let connect_timeout = 1.0

let loopback = Unix.inet_addr_loopback

(* The same deployment derivation as [Lo_sim.Scenario.build_lo]: every
   process reconstructs all n identities (which also populates the
   simulation scheme's verification registry) and the seed-determined
   overlay, so the cluster agrees on directory and topology without any
   coordination traffic — and a respawned incarnation re-derives the
   exact identity its predecessor held. *)
let derive_deployment ~n ~seed =
  let scheme = Signer.simulation () in
  let signers =
    Array.init n (fun i ->
        Signer.make scheme ~seed:(Printf.sprintf "lo-node-%d-%d" seed i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let topo_rng = Rng.create ((seed * 31) + 7) in
  let out_degree = min 8 (max 1 (n - 1)) in
  let topology = Lo_net.Topology.build topo_rng ~n ~out_degree ~max_in:125 in
  let client = Signer.make scheme ~seed:(Printf.sprintf "client-%d" seed) in
  (scheme, signers, directory, topology, client)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* --- per-peer outgoing link -------------------------------------- *)

(* One queued wire write. [pbytes] is the payload size the trace
   charges (frame overhead is not accounted, matching the DES).
   [accounted] entries already carried their Drop event when they were
   created (fault-injected truncation prefixes), so losing them later
   must not charge bandwidth again. *)
type wire_entry = {
  bytes : string;
  tag : string;
  pbytes : int;
  accounted : bool;
  mutable off : int;
}

type wire_item =
  | Data of wire_entry
  | Cut  (** close the connection here (fault-injected truncation) *)

(* Outgoing connection state machine per peer:
   fd = None                 -> Down (reconnect clock armed)
   fd = Some _, up = false   -> Connecting (await writability)
   fd = Some _, up = true    -> Up (drain queue as select allows) *)
type link = {
  peer : int;
  addr : Unix.sockaddr;
  mutable fd : Unix.file_descr option;
  mutable up : bool;
  queue : wire_item Queue.t;
  mutable queued_bytes : int;  (** unwritten bytes across the queue *)
  backoff : Reconnect.t;
  mutable ever_up : bool;
  mutable last_progress : float;
      (** rel time of the last write progress (or connect start) *)
}

let run ?trace_path cfg =
  let {
    id;
    n;
    base_port;
    seed;
    tps;
    duration;
    drain;
    epoch;
    trace_capacity;
    incarnation;
    resume_from;
    faults;
  } =
    cfg
  in
  let scheme, signers, directory, topology, client =
    derive_deployment ~n ~seed
  in
  let trace = Lo_obs.Trace.create ~capacity:trace_capacity () in
  let now_rel () = Clock.now_s () -. epoch in
  let emit ev = Lo_obs.Trace.emit trace ~at:(now_rel ()) ev in

  (* --- write-ahead trace ---
     Every event is appended to [wal] the moment it is emitted (the
     trace observer sees the node's own emissions too) and flushed to
     disk once per loop iteration, *before* any socket write of that
     iteration. The ordering is the crash-safety contract: a frame can
     only reach a peer after the Send that charged it is durable, so a
     SIGKILL leaves per-tag deficits that are strictly positive (sent
     >= delivered + dropped) and the supervisor can close them with
     synthetic crash drops — and a respawned incarnation can rebuild
     its commitment log from its own durable prefix without ever
     signing a conflicting history. *)
  let wal = Buffer.create 65536 in
  let wal_oc =
    match trace_path with
    | Some path ->
        let oc = open_out path in
        Lo_obs.Trace.set_observer trace
          (Some
             (fun e ->
               Buffer.add_string wal (Lo_obs.Jsonl.line e);
               Buffer.add_char wal '\n'));
        Some oc
    | None -> None
  in
  let wal_flush () =
    match wal_oc with
    | Some oc when Buffer.length wal > 0 ->
        Buffer.output_buffer oc wal;
        Buffer.clear wal;
        flush oc
    | _ -> ()
  in

  (* --- sockets --- *)
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (loopback, base_port + id));
  Unix.listen listener (2 * n);
  Unix.set_nonblock listener;

  (* Link-layer randomness (backoff jitter, fault draws) is seeded per
     (cluster seed, node, incarnation): deterministic given the chaos
     plan, decorrelated across nodes and across lives of one node. *)
  let link_rng =
    Rng.create
      ((((seed * 1_000_003) + id) lxor 0x7f4a7c15) + (incarnation * 7919))
  in
  let reconnects = ref 0 in
  let links =
    Array.init n (fun j ->
        {
          peer = j;
          addr = Unix.ADDR_INET (loopback, base_port + j);
          fd = None;
          up = false;
          queue = Queue.create ();
          queued_bytes = 0;
          backoff = Reconnect.create ~rng:link_rng ();
          ever_up = false;
          last_progress = 0.;
        })
  in
  let link_fd_up l = match l.fd with Some fd when l.up -> Some fd | _ -> None in

  (* Tear down [l]'s connection (established or in progress). The
     partially written head frame, if any, can never be completed on a
     future connection — the peer's decoder will discard the partial
     tail at EOF — so it is dropped and charged here. *)
  let link_down l ~reason =
    match l.fd with
    | None -> ()
    | Some fd ->
        close_quietly fd;
        l.fd <- None;
        let was_up = l.up in
        l.up <- false;
        (match Queue.peek_opt l.queue with
        | Some (Data e) when e.off > 0 ->
            ignore (Queue.pop l.queue);
            l.queued_bytes <- l.queued_bytes - (String.length e.bytes - e.off);
            if not e.accounted then
              emit
                (Lo_obs.Event.Drop
                   {
                     src = id;
                     dst = l.peer;
                     tag = e.tag;
                     bytes = e.pbytes;
                     reason = Lo_obs.Event.Down;
                   })
        | _ -> ());
        if was_up then begin
          emit (Lo_obs.Event.Conn_down { node = id; peer = l.peer; reason });
          Reconnect.lost l.backoff ~now:(now_rel ())
        end
        else Reconnect.failed l.backoff ~now:(now_rel ())
  in
  let link_established l =
    (match l.fd with
    | Some fd -> (
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
    | None -> ());
    l.up <- true;
    l.last_progress <- now_rel ();
    emit
      (Lo_obs.Event.Conn_up
         { node = id; peer = l.peer; attempts = Reconnect.attempts l.backoff + 1 });
    if l.ever_up then incr reconnects;
    l.ever_up <- true;
    Reconnect.opened l.backoff
  in
  (* A connecting socket turned writable: either established or failed;
     SO_ERROR tells which. *)
  let link_finish_connect l =
    match l.fd with
    | None -> ()
    | Some fd -> (
        match Unix.getsockopt_error fd with
        | None -> link_established l
        | Some _ -> link_down l ~reason:"refused")
  in
  let link_start_connect l =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    l.last_progress <- now_rel ();
    match Unix.connect fd l.addr with
    | () ->
        l.fd <- Some fd;
        link_established l
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EINTR), _, _) ->
        (* EINTR: POSIX continues the connect asynchronously. *)
        l.fd <- Some fd
    | exception Unix.Unix_error _ ->
        close_quietly fd;
        Reconnect.failed l.backoff ~now:(now_rel ())
  in

  (* --- transport state --- *)
  let timers = Timer_wheel.create () in
  let subs : (string, Lo_transport.handler) Hashtbl.t = Hashtbl.create 4 in
  let restart_handler = ref (fun () -> ()) in
  let local : (string * string) Queue.t = Queue.create () in
  let submitted = ref 0 in
  let frames_out = ref 0 in
  let frames_in = ref 0 in
  let unknown = ref 0 in
  let last_activity = ref 0. in

  (* Queue one encoded frame on [l]; the Send was already charged.
     Tail drop when the peer's buffer is full: the frame is refused and
     charged as a Down drop (the buffer only backs up when the peer is
     down or stalled), keeping conservation exact. *)
  let enqueue_frame l ~tag ~pbytes ~accounted frame =
    let blen = String.length frame in
    if l.queued_bytes + blen > max_queue_bytes then begin
      if not accounted then
        emit
          (Lo_obs.Event.Drop
             {
               src = id;
               dst = l.peer;
               tag;
               bytes = pbytes;
               reason = Lo_obs.Event.Down;
             })
    end
    else begin
      Queue.add (Data { bytes = frame; tag; pbytes; accounted; off = 0 }) l.queue;
      l.queued_bytes <- l.queued_bytes + blen
    end
  in
  let charge_and_enqueue ~dst ~tag ~pbytes frame =
    emit (Lo_obs.Event.Send { src = id; dst; tag; bytes = pbytes });
    enqueue_frame links.(dst) ~tag ~pbytes ~accounted:false frame
  in
  (* Remote send with the encoded frame passed lazily: a fan-out
     ([send_many]) shares one encoding across all destinations — the
     first destination pays the encode, the rest reuse the string. *)
  let send_remote ~dst ~tag ~pbytes payload frame =
    let frame = Lazy.force frame in
    match Faulty_link.decide faults link_rng ~frame_len:(String.length frame)
    with
    | Faulty_link.Pass -> charge_and_enqueue ~dst ~tag ~pbytes frame
    | Faulty_link.Drop ->
        (* The wire ate it whole: charged and immediately lost. *)
        emit (Lo_obs.Event.Send { src = id; dst; tag; bytes = pbytes });
        emit
          (Lo_obs.Event.Drop
             { src = id; dst; tag; bytes = pbytes; reason = Lo_obs.Event.Loss })
    | Faulty_link.Duplicate ->
        charge_and_enqueue ~dst ~tag ~pbytes frame;
        charge_and_enqueue ~dst ~tag ~pbytes frame
    | Faulty_link.Delay d ->
        (* Charged when it actually enters the queue; timers freeze at
           quiesce, so a delay past the horizon is never charged. *)
        Timer_wheel.schedule timers
          ~at:(now_rel () +. d)
          (fun () -> charge_and_enqueue ~dst ~tag ~pbytes frame)
    | Faulty_link.Truncate keep ->
        (* The peer sees a prefix then EOF: its decoder discards the
           partial tail. Charged as a loss up front; the prefix entry
           is marked accounted so no later drop double-charges it. *)
        emit (Lo_obs.Event.Send { src = id; dst; tag; bytes = pbytes });
        emit
          (Lo_obs.Event.Drop
             { src = id; dst; tag; bytes = pbytes; reason = Lo_obs.Event.Loss });
        let l = links.(dst) in
        enqueue_frame l ~tag ~pbytes ~accounted:true (String.sub frame 0 keep);
        Queue.add Cut l.queue
    | Faulty_link.Garble ->
        (* Same payload under an alien tag: parses as a valid frame,
           exercises the receiver's unknown-tag path. Charged under
           the replacement tag so per-tag conservation still holds. *)
        let gtag = Faulty_link.garble_tag in
        charge_and_enqueue ~dst ~tag:gtag ~pbytes
          (Frame.encode ~src:id ~tag:gtag payload)
  in
  let send_local ~tag payload =
    emit
      (Lo_obs.Event.Send
         { src = id; dst = id; tag; bytes = String.length payload });
    Queue.add (tag, payload) local
  in
  let send_to ~dst ~tag payload =
    if dst = id then send_local ~tag payload
    else
      send_remote ~dst ~tag ~pbytes:(String.length payload) payload
        (lazy (Frame.encode ~src:id ~tag payload))
  in
  let transport =
    {
      Lo_transport.self = id;
      now = now_rel;
      send = (fun ~dst ~tag payload -> send_to ~dst ~tag payload);
      send_many =
        (fun ~dsts ~tag payload ->
          let pbytes = String.length payload in
          let frame = lazy (Frame.encode ~src:id ~tag payload) in
          List.iter
            (fun dst ->
              if dst = id then send_local ~tag payload
              else send_remote ~dst ~tag ~pbytes payload frame)
            dsts);
      schedule =
        (fun ~delay fn ->
          Timer_wheel.schedule timers ~at:(now_rel () +. delay) fn);
      subscribe = (fun ~proto handler -> Hashtbl.replace subs proto handler);
      set_restart_handler = (fun fn -> restart_handler := fn);
      trace = Some trace;
    }
  in

  let node =
    Node.create
      (Node.default_config scheme)
      ~transport
      ~rng:(Rng.create (((seed * 1_000_003) + id) lxor 0x5bd1e995))
      ~directory ~signer:signers.(id)
      ~neighbors:(Lo_net.Topology.neighbors topology id)
      ~behavior:Node.Honest
  in

  (* --- restart restoration ---
     Before any traffic: rebuild the commitment log from this node's
     own durable trace (crash amnesia would otherwise make the fresh
     log's digests conflict with the pre-crash history still held by
     peers — indistinguishable from equivocation), close the spans the
     previous incarnation left open, and re-arm its standing suspicions
     so the reconciler's restart path re-probes and withdraws them. *)
  if incarnation > 0 then begin
    match Resume.scan ~node:id resume_from with
    | Error msg ->
        failwith (Printf.sprintf "lo serve %d: resume failed: %s" id msg)
    | Ok r ->
        let log = Node.commitment_log node in
        List.iter
          (fun ids ->
            match Commitment.Log.append log ~source:None ~ids with
            | Some _ -> ()
            | None ->
                failwith
                  (Printf.sprintf "lo serve %d: resume lost a bundle" id))
          r.Resume.bundles;
        if Commitment.Log.seq log <> r.Resume.last_seq then
          failwith
            (Printf.sprintf "lo serve %d: resume seq mismatch (%d <> %d)" id
               (Commitment.Log.seq log) r.Resume.last_seq);
        List.iter
          (fun key ->
            emit (Lo_obs.Event.Span_end { node = id; key; ok = false }))
          r.Resume.open_spans;
        let acc = Node.accountability node in
        List.iter
          (fun peer ->
            if peer >= 0 && peer < n && peer <> id then
              Accountability.suspect acc
                ~peer:(Directory.id_of directory peer)
                ~now:(now_rel ()) ~reason:"restored after restart")
          r.Resume.suspects
  end;

  (* Set once the loop first observes relative time >= 0 and the node's
     protocol has been started (handlers registered). Until then "lo"
     frames take the generic subscriber path and surface as unknown. *)
  let started = ref false in
  let dispatch ~from ~tag payload =
    emit
      (Lo_obs.Event.Deliver
         { src = from; dst = id; tag; bytes = String.length payload });
    match Hashtbl.find_opt subs (Lo_net.Mux.proto_of_tag tag) with
    | Some handler -> handler ~from ~tag payload
    | None ->
        incr unknown;
        emit (Lo_obs.Event.Unknown_tag { node = id; src = from; tag })
  in
  (* Wire ingress, zero-copy: the payload stays a reader view into the
     connection's receive buffer. The protocol fast path hands the view
     straight to the node ([Node.handle_message_view] — for [Tx_batch]
     that is the batched admission pipeline); only foreign-protocol
     subscribers, which expect a string payload, force a copy. The view
     dies with this call, well before the decoder is touched again. *)
  let handle_view (v : Frame.Decoder.view) =
    incr frames_in;
    last_activity := now_rel ();
    let pbytes = Lo_codec.Reader.remaining v.Frame.Decoder.v_payload in
    emit
      (Lo_obs.Event.Deliver
         { src = v.Frame.Decoder.v_src; dst = id; tag = v.Frame.Decoder.v_tag;
           bytes = pbytes });
    if v.Frame.Decoder.v_version <> Frame.version then begin
      (* A peer speaking a newer framing: account the delivery, then
         surface the skew instead of losing the message silently. *)
      incr unknown;
      emit
        (Lo_obs.Event.Unknown_tag
           {
             node = id;
             src = v.Frame.Decoder.v_src;
             tag =
               Printf.sprintf "v%d:%s" v.Frame.Decoder.v_version
                 v.Frame.Decoder.v_tag;
           })
    end
    else begin
      let tag = v.Frame.Decoder.v_tag in
      let from = v.Frame.Decoder.v_src in
      if !started && String.equal (Lo_net.Mux.proto_of_tag tag) "lo" then
        Node.handle_message_view node ~from ~tag v.Frame.Decoder.v_payload
      else
        match Hashtbl.find_opt subs (Lo_net.Mux.proto_of_tag tag) with
        | Some handler ->
            handler ~from ~tag
              (Lo_codec.Reader.fixed v.Frame.Decoder.v_payload pbytes)
        | None ->
            incr unknown;
            emit (Lo_obs.Event.Unknown_tag { node = id; src = from; tag })
    end
  in

  (* --- workload: the simulator's generator, filtered to this node ---
     A respawned incarnation re-derives the same spec list and skips
     everything scheduled before its rebirth: those submissions are
     simply lost with the crash, as they should be. *)
  let wl_rng = Rng.create ((seed * 97) + 13) in
  let wl_config =
    { Lo_workload.Tx_gen.default_config with rate = tps; duration }
  in
  let specs = Lo_workload.Tx_gen.generate wl_rng wl_config ~num_nodes:n in
  let workload_from = if incarnation = 0 then Float.neg_infinity else now_rel () in
  List.iter
    (fun spec ->
      if
        spec.Lo_workload.Tx_gen.origin mod n = id
        && spec.Lo_workload.Tx_gen.created_at >= workload_from
      then begin
        let tx =
          Tx.create ~signer:client ~fee:spec.Lo_workload.Tx_gen.fee
            ~created_at:spec.Lo_workload.Tx_gen.created_at
            ~payload:(Lo_workload.Tx_gen.payload spec)
        in
        Timer_wheel.schedule timers ~at:spec.Lo_workload.Tx_gen.created_at
          (fun () ->
            incr submitted;
            Node.submit_tx node tx)
      end)
    specs;

  (* --- event loop ---
     One unified loop from process birth: connections are attempted
     and accepted before the epoch (no blocking barrier — a respawned
     node joins a cluster that is already past it), the protocol starts
     the first time the loop observes relative time >= 0, and quiesce/
     drain behave as before. Within an iteration the order is
       timers -> local deliveries -> link upkeep -> WAL flush ->
       select -> writes -> reads
     so every byte that leaves the process was preceded by a durable
     trace record of its Send (flush before writes), and frames queued
     by this iteration's reads drain no earlier than the next
     iteration's writes — after their events are flushed too. *)
  let read_buf = Bytes.create 65536 in
  (* Scratch for coalesced writes: a burst of small frames to one peer
     goes to the kernel as ONE write(2) instead of one syscall per
     frame — the difference between ~3 and ~300 syscalls per pipelined
     reconciliation burst. *)
  let write_scratch = Bytes.create 65536 in
  let decoders : (Unix.file_descr, Frame.Decoder.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let incoming = ref [] in
  let drop_incoming fd =
    close_quietly fd;
    Hashtbl.remove decoders fd;
    incoming := List.filter (fun f -> f != fd) !incoming
  in
  let running = ref true in
  let queues_empty () =
    Array.for_all (fun l -> Queue.is_empty l.queue) links
  in
  while !running do
    let now = now_rel () in
    if (not !started) && now >= 0. then begin
      started := true;
      Node.start node;
      if incarnation > 0 then begin
        emit (Lo_obs.Event.Restart { node = id });
        !restart_handler ()
      end;
      last_activity := now_rel ()
    end;
    if now >= duration +. drain then running := false
    else if
      now >= duration
      && now -. !last_activity >= quiet_exit
      && Queue.is_empty local && queues_empty ()
    then running := false
    else begin
      (* Quiesce at [duration]: frozen timers stop new rounds, retries
         and submissions; the cascade of in-flight replies drains. *)
      if now < duration then ignore (Timer_wheel.run_due timers ~now);
      while not (Queue.is_empty local) do
        let tag, payload = Queue.pop local in
        last_activity := now_rel ();
        dispatch ~from:id ~tag payload
      done;
      (* Link upkeep: abandon stuck connects, tear down half-open
         connections (progress stalled with bytes queued), start
         reconnects whose backoff clock has expired. *)
      Array.iter
        (fun l ->
          if l.peer <> id then begin
            (match l.fd with
            | Some _ when (not l.up) && now -. l.last_progress > connect_timeout
              ->
                link_down l ~reason:"connect-timeout"
            | Some _
              when l.up
                   && (not (Queue.is_empty l.queue))
                   && now -. l.last_progress > stall_timeout ->
                link_down l ~reason:"stalled"
            | _ -> ());
            if l.fd = None && Reconnect.ready l.backoff ~now then
              link_start_connect l
          end)
        links;
      wal_flush ();
      let reads =
        listener :: !incoming
        @ Array.fold_left
            (fun acc l ->
              match link_fd_up l with Some fd -> fd :: acc | None -> acc)
            [] links
      in
      let writes =
        Array.fold_left
          (fun acc l ->
            match l.fd with
            | Some fd when (not l.up) || not (Queue.is_empty l.queue) ->
                fd :: acc
            | _ -> acc)
          [] links
      in
      let timeout =
        let cap = 0.05 in
        if now >= duration then cap
        else
          match Timer_wheel.next_due timers with
          | Some t -> Float.max 0.001 (Float.min cap (t -. now_rel ()))
          | None -> cap
      in
      let readable, writable, _ = Retry.select reads writes [] timeout in
      (* Writes first: everything written here was charged in a
         previous iteration and is already durable. *)
      List.iter
        (fun fd ->
          match
            Array.find_opt (fun l -> l.fd = Some fd && l.peer <> id) links
          with
          | None -> ()
          | Some l ->
              if not l.up then link_finish_connect l;
              if l.up then begin
                let continue = ref true in
                while !continue && not (Queue.is_empty l.queue) do
                  match Queue.peek l.queue with
                  | Cut ->
                      ignore (Queue.pop l.queue);
                      (* Graceful FIN: frames written before the cut are
                         delivered; the peer sees EOF mid-frame and
                         discards the partial tail. *)
                      link_down l ~reason:"cut";
                      continue := false
                  | Data e
                    when Queue.length l.queue > 1
                         && String.length e.bytes - e.off
                            < Bytes.length write_scratch -> (
                      (* Gather the run of Data entries at the head of
                         the queue (stopping at a Cut or a full scratch)
                         and hand the kernel one write. Partial-write
                         bookkeeping then replays the frame boundaries
                         over the accepted byte count. *)
                      let total = ref 0 in
                      (try
                         Queue.iter
                           (function
                             | Cut -> raise Exit
                             | Data d ->
                                 let len = String.length d.bytes - d.off in
                                 if !total + len > Bytes.length write_scratch
                                 then raise Exit;
                                 Bytes.blit_string d.bytes d.off write_scratch
                                   !total len;
                                 total := !total + len)
                           l.queue
                       with Exit -> ());
                      match Retry.write fd write_scratch 0 !total with
                      | 0 ->
                          link_down l ~reason:"eof";
                          continue := false
                      | k ->
                          l.queued_bytes <- l.queued_bytes - k;
                          l.last_progress <- now_rel ();
                          let rem = ref k in
                          while !rem > 0 do
                            match Queue.peek l.queue with
                            | Data d ->
                                let len = String.length d.bytes - d.off in
                                if !rem >= len then begin
                                  ignore (Queue.pop l.queue);
                                  rem := !rem - len;
                                  if not d.accounted then incr frames_out;
                                  last_activity := now_rel ()
                                end
                                else begin
                                  d.off <- d.off + !rem;
                                  rem := 0
                                end
                            | Cut ->
                                (* unreachable: [total] counted only the
                                   Data run before any Cut, and k <= total *)
                                assert false
                          done;
                          if k < !total then continue := false
                      | exception
                          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                        ->
                          continue := false
                      | exception Unix.Unix_error _ ->
                          link_down l ~reason:"reset";
                          continue := false)
                  | Data e -> (
                      let len = String.length e.bytes in
                      match
                        Retry.write fd
                          (Bytes.unsafe_of_string e.bytes)
                          e.off (len - e.off)
                      with
                      | 0 ->
                          link_down l ~reason:"eof";
                          continue := false
                      | k ->
                          e.off <- e.off + k;
                          l.queued_bytes <- l.queued_bytes - k;
                          l.last_progress <- now_rel ();
                          if e.off = len then begin
                            ignore (Queue.pop l.queue);
                            if not e.accounted then incr frames_out;
                            last_activity := now_rel ()
                          end
                          else continue := false
                      | exception
                          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                        ->
                          continue := false
                      | exception Unix.Unix_error _ ->
                          link_down l ~reason:"reset";
                          continue := false)
                done
              end)
        writable;
      List.iter
        (fun fd ->
          if fd == listener then begin
            let continue = ref true in
            while !continue do
              match Retry.accept listener with
              | c, _ ->
                  (try Unix.setsockopt c Unix.TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  Hashtbl.replace decoders c (Frame.Decoder.create ());
                  incoming := c :: !incoming
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  continue := false
              | exception Unix.Unix_error _ -> continue := false
            done
          end
          else if Hashtbl.mem decoders fd then begin
            match Retry.read fd read_buf 0 (Bytes.length read_buf) with
            | 0 -> drop_incoming fd
            | k -> (
                let dec = Hashtbl.find decoders fd in
                Frame.Decoder.feed_bytes dec read_buf 0 k;
                try
                  let continue = ref true in
                  while !continue do
                    match Frame.Decoder.next_view dec with
                    | Some v -> handle_view v
                    | None -> continue := false
                  done
                with Lo_codec.Reader.Malformed _ -> drop_incoming fd)
            | exception
                Unix.Unix_error
                  ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                drop_incoming fd
          end
          else begin
            (* Readability on an outgoing connection: the peer never
               sends data on it, so this is either EOF (peer died or
               cut us — half-open detection) or junk to discard. *)
            match
              Array.find_opt (fun l -> link_fd_up l = Some fd) links
            with
            | None -> ()
            | Some l -> (
                match Retry.read fd read_buf 0 1024 with
                | 0 -> link_down l ~reason:"eof"
                | _ -> ()
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    ()
                | exception Unix.Unix_error _ -> link_down l ~reason:"reset")
          end)
        readable
    end
  done;

  (* --- shutdown --- *)
  Array.iter
    (fun l ->
      if l.peer <> id then begin
        Queue.iter
          (function
            | Data e when not e.accounted ->
                emit
                  (Lo_obs.Event.Drop
                     {
                       src = id;
                       dst = l.peer;
                       tag = e.tag;
                       bytes = e.pbytes;
                       reason =
                         (if e.off > 0 then Lo_obs.Event.Down
                          else Lo_obs.Event.In_flight);
                     })
            | Data _ | Cut -> ())
          l.queue;
        match l.fd with Some fd -> close_quietly fd | None -> ()
      end)
    links;
  List.iter close_quietly !incoming;
  close_quietly listener;
  wal_flush ();
  (match wal_oc with Some oc -> close_out oc | None -> ());
  {
    submitted = !submitted;
    frames_out = !frames_out;
    frames_in = !frames_in;
    unknown = !unknown;
    trace_events = Lo_obs.Trace.total trace;
    reconnects = !reconnects;
  }
