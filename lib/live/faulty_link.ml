module Rng = Lo_net.Rng

type spec = {
  drop : float;
  dup : float;
  delay : float;
  delay_max : float;
  truncate : float;
  garble : float;
}

type action =
  | Pass
  | Drop
  | Duplicate
  | Delay of float
  | Truncate of int
  | Garble

let none =
  { drop = 0.; dup = 0.; delay = 0.; delay_max = 0.; truncate = 0.; garble = 0. }

let garble_tag = "zz:chaos"

let is_none s =
  s.drop = 0. && s.dup = 0. && s.delay = 0. && s.truncate = 0. && s.garble = 0.

let validate s =
  let rate name r =
    if r < 0. || r > 1. || Float.is_nan r then
      invalid_arg (Printf.sprintf "Faulty_link: %s rate %g outside [0,1]" name r)
  in
  rate "drop" s.drop;
  rate "dup" s.dup;
  rate "delay" s.delay;
  rate "truncate" s.truncate;
  rate "garble" s.garble;
  if s.drop +. s.dup +. s.delay +. s.truncate +. s.garble > 1. then
    invalid_arg "Faulty_link: rates sum above 1";
  if s.delay > 0. && s.delay_max <= 0. then
    invalid_arg "Faulty_link: delay_max must be positive when delay > 0"

let decide s rng ~frame_len =
  if is_none s then Pass
  else begin
    let u = Rng.float rng 1.0 in
    (* Stacked thresholds: one uniform draw picks the branch, so the
       per-frame cost of a quiet spec is a single rng step. *)
    let t1 = s.drop in
    let t2 = t1 +. s.dup in
    let t3 = t2 +. s.delay in
    let t4 = t3 +. s.truncate in
    let t5 = t4 +. s.garble in
    if u < t1 then Drop
    else if u < t2 then Duplicate
    else if u < t3 then Delay (Float.max 1e-3 (Rng.float rng s.delay_max))
    else if u < t4 then
      if frame_len < 2 then Pass
      else Truncate (1 + Rng.int rng (frame_len - 1))
    else if u < t5 then Garble
    else Pass
  end
