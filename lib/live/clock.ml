let now_s () = Unix.gettimeofday ()

(* Restarted on EINTR with the remaining duration: supervisor signals
   (e.g. SIGCHLD from chaos respawns) must not cut a sleep short. *)
let sleep s =
  if s > 0. then begin
    let deadline = now_s () +. s in
    let rec go left =
      if left > 0. then begin
        (try Unix.sleepf left with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go (deadline -. now_s ())
      end
    in
    go s
  end
