let now_s () = Unix.gettimeofday ()
let sleep s = if s > 0. then Unix.sleepf s
