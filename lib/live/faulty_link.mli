(** Seeded fault injection at the wire-frame layer.

    A [spec] gives independent per-frame probabilities for each fault
    kind; {!decide} consumes one uniform draw from the caller's rng and
    maps it to at most one [action] per frame (the probabilities are
    stacked, so their sum must stay <= 1). The host applies the action
    to the fully encoded frame just before it enters a peer's write
    queue, which is the closest a single process can get to a lossy
    kernel: drops and truncations exercise the receiver's incremental
    decoder against real partial data, duplicates exercise protocol
    idempotency, delays reorder frames across the stream, and garbling
    rewrites the frame under an alien tag to exercise the mux
    unknown-tag path without desynchronising the stream.

    Trace accounting is the caller's job; the contract is in
    {!Host.run}: every action keeps per-tag bandwidth conservation
    exact (a dropped or truncated frame charges a [Send] and a
    [Drop]~[Loss]; a duplicate charges two [Send]s; a delayed frame
    charges its [Send] when it actually enters the queue; a garbled
    frame is charged under its replacement tag). *)

type spec = {
  drop : float;  (** frame vanishes entirely *)
  dup : float;  (** frame is sent twice back-to-back *)
  delay : float;  (** frame is held for a random time before queueing *)
  delay_max : float;  (** upper bound on that hold, seconds *)
  truncate : float;
      (** only a proper prefix is written, then the connection is cut *)
  garble : float;
      (** payload re-framed under an unknown tag (["zz:chaos"]) *)
}

type action =
  | Pass
  | Drop
  | Duplicate
  | Delay of float  (** seconds to hold the frame *)
  | Truncate of int  (** wire bytes of the encoded frame to keep *)
  | Garble

val none : spec
(** All rates zero: {!decide} always returns [Pass]. *)

val garble_tag : string
(** The replacement tag for garbled frames; uses a protocol prefix no
    real subscriber claims, so receivers surface it as [Unknown_tag]. *)

val is_none : spec -> bool

val validate : spec -> unit
(** @raise Invalid_argument if any rate is outside [0,1], the rates sum
    above 1, or [delay_max] is not positive while [delay > 0]. *)

val decide : spec -> Lo_net.Rng.t -> frame_len:int -> action
(** One decision for a frame of [frame_len] encoded bytes. Consumes one
    rng draw for the branch plus at most one more for the action's
    parameter, so the decision stream is a deterministic function of
    the rng state. Frames too short to truncate pass instead. *)
