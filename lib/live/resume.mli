(** Rebuilding a host's protocol state from its own prior trace files.

    The live host streams every trace event to disk as a write-ahead
    log *before* the bytes that caused it can leave the process (see
    {!Host.run}), so after a SIGKILL the node's durable trace is a
    faithful prefix of what the rest of the cluster observed from it.
    That makes restart safe for accountability: a respawned node that
    re-appended transactions to a fresh commitment log would sign a
    second, conflicting digest history for the same sequence numbers —
    crash amnesia would be indistinguishable from equivocation and the
    honest node would be exposed. Instead the new incarnation replays
    its own [Commit_append] events to rebuild the exact log, closes the
    spans its previous life left open, and re-arms its standing
    suspicions so the reconciler's restart path can resolve them. *)

type t = {
  bundles : int list list;
      (** short-id bundles in append order; replaying them through
          [Commitment.Log.append] reproduces the pre-crash log *)
  last_seq : int;  (** head bundle seq after replay; 0 if none *)
  open_spans : string list;
      (** span keys begun but never ended, sorted; the new incarnation
          must emit [Span_end ~ok:false] for each *)
  suspects : int list;
      (** peers this node suspected and never cleared or exposed,
          sorted *)
  events : int;  (** total events scanned across all files *)
  truncated_lines : int;
      (** partial trailing lines discarded (at most one per file — the
          line the SIGKILL interrupted) *)
}

val parse_lenient :
  path:string -> (Lo_obs.Trace.entry list * int, string) result
(** Parse a JSONL trace file, tolerating one partial trailing line
    (returned count), which is exactly what a kill mid-append leaves.
    A parse failure anywhere else is real corruption and an [Error]. *)

val scan : node:int -> string list -> (t, string) result
(** Fold the trace files of [node]'s prior incarnations, in
    chronological order, into the restoration state. Fails if a file is
    unreadable, corrupt beyond its trailing line, or the commit
    sequence has a gap (a WAL that lost a bundle must not be resumed —
    re-appending would equivocate). *)
