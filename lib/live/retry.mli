(** EINTR-safe wrappers for the Unix syscalls the live backend uses.

    The cluster supervisor signals its children (chaos SIGKILLs go to
    siblings, but SIGCHLD and tty signals reach everyone), so any
    blocking syscall in a host or in the supervisor itself can fail
    spuriously with [Unix_error (EINTR, _, _)]. Each wrapper simply
    restarts the call; none of them swallows any other error. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
val write : Unix.file_descr -> bytes -> int -> int -> int

val select :
  Unix.file_descr list ->
  Unix.file_descr list ->
  Unix.file_descr list ->
  float ->
  Unix.file_descr list * Unix.file_descr list * Unix.file_descr list
(** On EINTR returns [([], [], [])] instead of restarting: the caller's
    loop recomputes its timeout from the clock anyway, and restarting
    with the original timeout could over-sleep past a deadline. *)

val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
val waitpid : Unix.wait_flag list -> int -> int * Unix.process_status

val sleep : float -> unit
(** {!Clock.sleep}: restarted until the full duration has elapsed. *)
