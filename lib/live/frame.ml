module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

let version = 1
let max_body = 16 * 1024 * 1024

type frame = { version : int; src : int; tag : string; payload : string }

let varint_len v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let encode_into w ~src ~tag payload =
  (* The body length is computable up front, so one frame is a single
     straight-line append — callers gather many frames into one writer
     and hand the transport a single contiguous write. *)
  let body =
    1 + varint_len src
    + varint_len (String.length tag)
    + String.length tag
    + varint_len (String.length payload)
    + String.length payload
  in
  Writer.u32 w body;
  Writer.u8 w version;
  Writer.varint w src;
  Writer.bytes w tag;
  Writer.bytes w payload

let encode ~src ~tag payload =
  let w = Writer.create ~initial_size:(String.length payload + 64) () in
  encode_into w ~src ~tag payload;
  Writer.contents w

let decode_body body =
  let r = Reader.of_string body in
  let version = Reader.u8 r in
  let src = Reader.varint r in
  let tag = Reader.bytes r in
  let payload = Reader.bytes r in
  Reader.expect_end r;
  { version; src; tag; payload }

module Decoder = struct
  (* A flat byte accumulator with a consumed prefix. Flat storage (vs a
     Buffer) lets [next_view] hand out reader views directly over the
     receive bytes — no per-frame body copy on the hot path. The dead
     prefix is reclaimed lazily: whenever an incoming chunk would force
     a grow, we first slide the live suffix down, so long sessions stay
     O(live bytes) without per-frame blits. *)
  type t = { mutable data : Bytes.t; mutable len : int; mutable pos : int }

  let create () = { data = Bytes.create 4096; len = 0; pos = 0 }
  let buffered t = t.len - t.pos

  let compact t =
    if t.pos > 0 then begin
      let live = t.len - t.pos in
      Bytes.blit t.data t.pos t.data 0 live;
      t.len <- live;
      t.pos <- 0
    end

  let ensure t extra =
    if t.len + extra > Bytes.length t.data then begin
      compact t;
      if t.len + extra > Bytes.length t.data then begin
        let cap = ref (max 4096 (2 * Bytes.length t.data)) in
        while t.len + extra > !cap do
          cap := !cap * 2
        done;
        let fresh = Bytes.create !cap in
        Bytes.blit t.data 0 fresh 0 t.len;
        t.data <- fresh
      end
    end

  let feed_bytes t chunk off len =
    if off < 0 || len < 0 || off + len > Bytes.length chunk then
      invalid_arg "Frame.Decoder.feed_bytes";
    ensure t len;
    Bytes.blit chunk off t.data t.len len;
    t.len <- t.len + len

  let feed t ?(off = 0) ?len chunk =
    let len = match len with Some l -> l | None -> String.length chunk - off in
    if off < 0 || len < 0 || off + len > String.length chunk then
      invalid_arg "Frame.Decoder.feed";
    ensure t len;
    Bytes.blit_string chunk off t.data t.len len;
    t.len <- t.len + len

  let reset t =
    t.len <- 0;
    t.pos <- 0

  (* Body length of the frame at [pos]; [None] while incomplete. *)
  let header t =
    if buffered t < 4 then None
    else begin
      let b i = Char.code (Bytes.get t.data (t.pos + i)) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max_body then
        raise
          (Reader.Malformed (Printf.sprintf "frame body length %d > max" len));
      if buffered t < 4 + len then None else Some len
    end

  let next t =
    match header t with
    | None -> None
    | Some len -> (
        let body = Bytes.sub_string t.data (t.pos + 4) len in
        t.pos <- t.pos + 4 + len;
        (* Contain decode failures: whatever a hostile body makes the
           codec raise, the caller sees the one documented exception and
           the decoder has already consumed the bad frame, so a [reset]
           (or even plain continued feeding) can resynchronise. *)
        match decode_body body with
        | f -> Some f
        | exception (Reader.Malformed _ as e) -> raise e
        | exception _ -> raise (Reader.Malformed "frame body failed to decode"))

  type view = {
    v_version : int;
    v_src : int;
    v_tag : string;
    v_payload : Reader.t;
  }

  let next_view t =
    match header t with
    | None -> None
    | Some len -> (
        let start = t.pos + 4 in
        t.pos <- t.pos + 4 + len;
        (* [unsafe_to_string] is sound here: readers never mutate, and
           the view's documented lifetime ends before the decoder next
           touches [data] (feed/next/next_view/reset all invalidate). *)
        match
          let r =
            Reader.of_substring (Bytes.unsafe_to_string t.data) ~pos:start ~len
          in
          let v_version = Reader.u8 r in
          let v_src = Reader.varint r in
          let v_tag = Reader.bytes r in
          let plen = Reader.varint r in
          let v_payload = Reader.sub_view r plen in
          Reader.expect_end r;
          { v_version; v_src; v_tag; v_payload }
        with
        | v -> Some v
        | exception (Reader.Malformed _ as e) -> raise e
        | exception _ -> raise (Reader.Malformed "frame body failed to decode"))
end
