module Writer = Lo_codec.Writer
module Reader = Lo_codec.Reader

let version = 1
let max_body = 16 * 1024 * 1024

type frame = { version : int; src : int; tag : string; payload : string }

let encode ~src ~tag payload =
  let w = Writer.create ~initial_size:(String.length payload + 64) () in
  Writer.u8 w version;
  Writer.varint w src;
  Writer.bytes w tag;
  Writer.bytes w payload;
  let body = Writer.contents w in
  let h = Writer.create ~initial_size:4 () in
  Writer.u32 h (String.length body);
  Writer.contents h ^ body

let decode_body body =
  let r = Reader.of_string body in
  let version = Reader.u8 r in
  let src = Reader.varint r in
  let tag = Reader.bytes r in
  let payload = Reader.bytes r in
  Reader.expect_end r;
  { version; src; tag; payload }

module Decoder = struct
  (* A growing byte accumulator with a consumed prefix; compacted when
     the dead prefix dominates so long sessions stay O(live bytes). *)
  type t = { mutable buf : Buffer.t; mutable pos : int }

  let create () = { buf = Buffer.create 4096; pos = 0 }

  let feed t ?(off = 0) ?len chunk =
    let len = match len with Some l -> l | None -> String.length chunk - off in
    Buffer.add_substring t.buf chunk off len

  let buffered t = Buffer.length t.buf - t.pos

  let compact t =
    if t.pos > 65536 && t.pos > Buffer.length t.buf / 2 then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      let fresh = Buffer.create (String.length rest + 4096) in
      Buffer.add_string fresh rest;
      t.buf <- fresh;
      t.pos <- 0
    end

  let reset t =
    t.buf <- Buffer.create 4096;
    t.pos <- 0

  let next t =
    if buffered t < 4 then None
    else begin
      let b i = Char.code (Buffer.nth t.buf (t.pos + i)) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max_body then
        raise
          (Reader.Malformed (Printf.sprintf "frame body length %d > max" len));
      if buffered t < 4 + len then None
      else begin
        let body = Buffer.sub t.buf (t.pos + 4) len in
        t.pos <- t.pos + 4 + len;
        compact t;
        (* Contain decode failures: whatever a hostile body makes the
           codec raise, the caller sees the one documented exception and
           the decoder has already consumed the bad frame, so a [reset]
           (or even plain continued feeding) can resynchronise. *)
        match decode_body body with
        | f -> Some f
        | exception (Reader.Malformed _ as e) -> raise e
        | exception _ ->
            raise (Reader.Malformed "frame body failed to decode")
      end
    end
end
