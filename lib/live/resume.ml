module Event = Lo_obs.Event

type t = {
  bundles : int list list;
  last_seq : int;
  open_spans : string list;
  suspects : int list;
  events : int;
  truncated_lines : int;
}

let parse_lenient ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
      let lines = String.split_on_char '\n' text in
      let blank l = String.equal (String.trim l) "" in
      let rec go acc lineno = function
        | [] -> Ok (List.rev acc, 0)
        | l :: rest ->
            if blank l then go acc (lineno + 1) rest
            else begin
              match Lo_obs.Jsonl.parse_line l with
              | Ok e -> go (e :: acc) (lineno + 1) rest
              | Error msg ->
                  if List.for_all blank rest then Ok (List.rev acc, 1)
                  else Error (Printf.sprintf "%s: line %d: %s" path lineno msg)
            end
      in
      go [] 1 lines

let scan ~node paths =
  let bundles = ref [] in
  let last_seq = ref 0 in
  let spans : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let suspects : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let events = ref 0 in
  let truncated = ref 0 in
  let step (e : Lo_obs.Trace.entry) =
    incr events;
    match e.ev with
    | Event.Commit_append { node = n; seq; ids; _ } when n = node ->
        if seq <> !last_seq + 1 then
          failwith
            (Printf.sprintf "commit gap: bundle %d after head %d" seq !last_seq);
        bundles := ids :: !bundles;
        last_seq := seq
    | Event.Span_begin { node = n; key } when n = node ->
        Hashtbl.replace spans key ()
    | Event.Span_end { node = n; key; _ } when n = node ->
        Hashtbl.remove spans key
    | Event.Suspect { node = n; peer } when n = node && peer >= 0 ->
        Hashtbl.replace suspects peer ()
    | Event.Clear { node = n; peer } when n = node -> Hashtbl.remove suspects peer
    | Event.Expose { node = n; peer } when n = node ->
        Hashtbl.remove suspects peer
    | _ -> ()
  in
  try
    List.iter
      (fun path ->
        match parse_lenient ~path with
        | Error msg -> failwith msg
        | Ok (entries, cut) ->
            truncated := !truncated + cut;
            List.iter step entries)
      paths;
    Ok
      {
        bundles = List.rev !bundles;
        last_seq = !last_seq;
        open_spans =
          Hashtbl.fold (fun k () acc -> k :: acc) spans []
          |> List.sort String.compare;
        suspects =
          Hashtbl.fold (fun p () acc -> p :: acc) suspects []
          |> List.sort Int.compare;
        events = !events;
        truncated_lines = !truncated;
      }
  with Failure msg -> Error msg
