type report = {
  n : int;
  seed : int;
  duration : float;
  out_dir : string;
  submitted : int;
  achieved_tps : float;
  frames : int;
  unknown : int;
  events : int;
  exposures : int;
  failed_nodes : int list;
  audit : Lo_obs.Audit.report;
}

let trace_path dir i = Filename.concat dir (Printf.sprintf "node-%d.jsonl" i)
let stats_path dir i = Filename.concat dir (Printf.sprintf "node-%d.stats" i)

let mkdir_p dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let default_out_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "lo-cluster-%d" (Unix.getpid ()))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let child ~cfg ~dir i =
  let code =
    try
      let stats = Host.run ~trace_path:(trace_path dir i) cfg in
      Out_channel.with_open_text (stats_path dir i) (fun oc ->
          Printf.fprintf oc "%d %d %d %d %d\n" stats.Host.submitted
            stats.Host.frames_out stats.Host.frames_in stats.Host.unknown
            stats.Host.trace_events);
      0
    with e ->
      Printf.eprintf "lo cluster: node %d failed: %s\n%!" i
        (Printexc.to_string e);
      1
  in
  Stdlib.exit code

let run ?out_dir ?(base_port = Host.default_base_port)
    ?(drain = Host.default_drain) ~n ~tps ~duration ~seed () =
  if n <= 0 then invalid_arg "Cluster.run: n";
  let dir = match out_dir with Some d -> d | None -> default_out_dir () in
  mkdir_p dir;
  (* Give every process time to build its deployment, bind and connect
     before protocol time zero; scale mildly with cluster size. *)
  let epoch = Clock.now_s () +. 1.0 +. (0.05 *. float_of_int n) in
  let pids =
    List.init n (fun i ->
        let cfg =
          Host.config ~id:i ~n ~base_port ~seed ~tps ~duration ~drain ~epoch ()
        in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 -> child ~cfg ~dir i
        | pid -> (i, pid))
  in
  let failed_nodes =
    List.filter_map
      (fun (i, pid) ->
        let _, status = Unix.waitpid [] pid in
        match status with Unix.WEXITED 0 -> None | _ -> Some i)
      pids
  in
  let entries =
    List.concat_map
      (fun i ->
        if List.mem i failed_nodes then []
        else
          match Lo_obs.Jsonl.parse (read_file (trace_path dir i)) with
          | Ok es -> es
          | Error msg ->
              failwith (Printf.sprintf "node %d trace unreadable: %s" i msg))
      (List.init n Fun.id)
  in
  (* Stable by timestamp: same-instant events keep node order, which is
     all the auditor's non-decreasing-time requirement needs. *)
  let entries =
    List.stable_sort
      (fun (a : Lo_obs.Trace.entry) b -> Float.compare a.at b.at)
      entries
  in
  Out_channel.with_open_text (Filename.concat dir "merged.jsonl") (fun oc ->
      List.iter
        (fun e -> output_string oc (Lo_obs.Jsonl.line e ^ "\n"))
        entries);
  let audit = Lo_obs.Audit.check entries in
  let exposures =
    List.length
      (List.filter
         (fun (e : Lo_obs.Trace.entry) ->
           match e.ev with Lo_obs.Event.Expose _ -> true | _ -> false)
         entries)
  in
  let submitted = ref 0 and frames = ref 0 and unknown = ref 0 in
  List.iter
    (fun i ->
      if not (List.mem i failed_nodes) then
        Scanf.sscanf (read_file (stats_path dir i)) " %d %d %d %d %d"
          (fun s _out f_in u _ev ->
            submitted := !submitted + s;
            frames := !frames + f_in;
            unknown := !unknown + u))
    (List.init n Fun.id);
  {
    n;
    seed;
    duration;
    out_dir = dir;
    submitted = !submitted;
    achieved_tps = float_of_int !submitted /. duration;
    frames = !frames;
    unknown = !unknown;
    events = List.length entries;
    exposures;
    failed_nodes;
    audit;
  }

let ok r = r.failed_nodes = [] && Lo_obs.Audit.ok r.audit && r.exposures = 0

let summary r =
  let b = Buffer.create 256 in
  Printf.bprintf b "cluster: n=%d seed=%d duration=%.1fs out=%s\n" r.n r.seed
    r.duration r.out_dir;
  Printf.bprintf b "workload: %d txs submitted (%.1f tx/s), %d frames, %d unknown-tag\n"
    r.submitted r.achieved_tps r.frames r.unknown;
  Printf.bprintf b "audit: %s\n" (Lo_obs.Audit.summary r.audit);
  List.iter
    (fun v ->
      Printf.bprintf b "  %s\n" (Lo_obs.Audit.violation_to_string v))
    r.audit.Lo_obs.Audit.violations;
  Printf.bprintf b "exposures: %d%s\n" r.exposures
    (if r.exposures = 0 then "" else " (HONEST NODE EXPOSED)");
  (match r.failed_nodes with
  | [] -> ()
  | l ->
      Printf.bprintf b "failed nodes: %s\n"
        (String.concat "," (List.map string_of_int l)));
  Printf.bprintf b "result: %s" (if ok r then "PASS" else "FAIL");
  Buffer.contents b
