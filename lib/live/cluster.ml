module Rng = Lo_net.Rng
module Fault_plan = Lo_net.Fault_plan

type chaos = {
  kills : int;
  rate : float option;
  mean_down : float;
  link : Faulty_link.spec;
}

let default_link_faults =
  {
    Faulty_link.drop = 0.01;
    dup = 0.01;
    delay = 0.02;
    delay_max = 0.08;
    truncate = 0.004;
    garble = 0.004;
  }

let default_chaos =
  { kills = 3; rate = None; mean_down = 1.5; link = default_link_faults }

let chaos_of_string s =
  let parse_field c kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "chaos: expected key=value, got %S" kv)
    | Some i -> (
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let flt () =
          match float_of_string_opt v with
          | Some f when f >= 0. -> Ok f
          | _ -> Error (Printf.sprintf "chaos: bad value for %s: %S" key v)
        in
        let num f = Result.map f (flt ()) in
        match key with
        | "kills" -> num (fun f -> { c with kills = int_of_float f })
        | "rate" -> num (fun f -> { c with rate = Some f })
        | "down" -> num (fun f -> { c with mean_down = f })
        | "drop" -> num (fun f -> { c with link = { c.link with drop = f } })
        | "dup" -> num (fun f -> { c with link = { c.link with dup = f } })
        | "delay" -> num (fun f -> { c with link = { c.link with delay = f } })
        | "dmax" ->
            num (fun f -> { c with link = { c.link with delay_max = f } })
        | "trunc" ->
            num (fun f -> { c with link = { c.link with truncate = f } })
        | "garble" ->
            num (fun f -> { c with link = { c.link with garble = f } })
        | _ -> Error (Printf.sprintf "chaos: unknown key %S" key))
  in
  let parts =
    List.filter
      (fun p -> not (String.equal p ""))
      (List.map String.trim (String.split_on_char ',' s))
  in
  let rec go c = function
    | [] -> (
        match Faulty_link.validate c.link with
        | () -> Ok c
        | exception Invalid_argument m -> Error m)
    | kv :: rest -> ( match parse_field c kv with Ok c -> go c rest | Error _ as e -> e)
  in
  go default_chaos parts

(* The process-level chaos schedule, expressed in the DES's own fault
   vocabulary: a list of [Crash {node; down_for = Some d}] events. With
   [rate] set the schedule is the simulator's Poisson churn generator
   verbatim; otherwise exactly [kills] distinct victims at seeded times.
   Kill times land in the first two thirds of the run and down windows
   are clamped so every respawn happens by 0.85 x duration: a restart
   must have live traffic left to reconnect into, re-announce against,
   and get its suspicions withdrawn during. *)
let plan_of_chaos ~n ~duration ~seed c =
  let rng = Rng.create ((seed * 48271) lxor 0x9e3779b9) in
  let clamp_down ~at d =
    Float.max 0.3 (Float.min d ((0.85 *. duration) -. at))
  in
  match c.rate with
  | Some rate ->
      Fault_plan.churn ~rng ~n ~rate ~mean_down:c.mean_down
        ~until:(0.6 *. duration)
      |> List.map (fun (e : Fault_plan.event) ->
             match e.fault with
             | Fault_plan.Crash { node; down_for = Some d } ->
                 {
                   e with
                   Fault_plan.fault =
                     Fault_plan.Crash
                       { node; down_for = Some (clamp_down ~at:e.at d) };
                 }
             | _ -> e)
  | None ->
      let kills = min c.kills n in
      if kills <= 0 then []
      else begin
        let victims =
          Rng.sample_without_replacement rng kills (List.init n Fun.id)
        in
        let lo = 0.15 *. duration and hi = 0.6 *. duration in
        List.map
          (fun node ->
            let at = lo +. Rng.float rng (hi -. lo) in
            let down =
              clamp_down ~at (c.mean_down *. (0.6 +. Rng.float rng 0.8))
            in
            { Fault_plan.at; fault = Fault_plan.Crash { node; down_for = Some down } })
          victims
        |> List.sort (fun (a : Fault_plan.event) b -> Float.compare a.at b.at)
      end

type report = {
  n : int;
  seed : int;
  duration : float;
  out_dir : string;
  submitted : int;
  achieved_tps : float;
  frames : int;
  unknown : int;
  events : int;
  exposures : int;
  failed_nodes : int list;
  induced_kills : (float * int) list;
  restarts : int;
  reconnects : int;
  watchdog_killed : int list;
  synthesized_drops : int;
  truncated_lines : int;
  audit : Lo_obs.Audit.report;
}

let trace_path dir i inc =
  Filename.concat dir (Printf.sprintf "node-%d.%d.jsonl" i inc)

let stats_path dir i inc =
  Filename.concat dir (Printf.sprintf "node-%d.%d.stats" i inc)

let mkdir_p dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let default_out_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "lo-cluster-%d" (Unix.getpid ()))

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* A child must never return into the caller's world (under the test
   runner, [Stdlib.exit] would run the parent's at_exit hooks); flush
   what is ours and leave through [Unix._exit]. *)
let child ~cfg ~tp ~sp i =
  let code =
    try
      let stats = Host.run ~trace_path:tp cfg in
      Out_channel.with_open_text sp (fun oc ->
          Printf.fprintf oc "%d %d %d %d %d %d\n" stats.Host.submitted
            stats.Host.frames_out stats.Host.frames_in stats.Host.unknown
            stats.Host.trace_events stats.Host.reconnects);
      0
    with e ->
      Printf.eprintf "lo cluster: node %d failed: %s\n%!" i
        (Printexc.to_string e);
      1
  in
  flush stdout;
  flush stderr;
  Unix._exit code

(* How far past the horizon (epoch + duration + drain) a child may live
   before the watchdog SIGKILLs it: a deadlocked host must never hang
   the run. *)
let watchdog_grace = 5.0

let sigkill pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let run ?out_dir ?(base_port = Host.default_base_port)
    ?(drain = Host.default_drain) ?chaos ~n ~tps ~duration ~seed () =
  if n <= 0 then invalid_arg "Cluster.run: n";
  let dir = match out_dir with Some d -> d | None -> default_out_dir () in
  mkdir_p dir;
  let plan =
    match chaos with
    | None -> []
    | Some c -> plan_of_chaos ~n ~duration ~seed c
  in
  let faults =
    match chaos with None -> Faulty_link.none | Some c -> c.link
  in
  (* Give every process time to build its deployment, bind and connect
     before protocol time zero; scale mildly with cluster size. *)
  let epoch = Clock.now_s () +. 1.0 +. (0.05 *. float_of_int n) in

  (* --- supervision state --- *)
  let children : (int, int) Hashtbl.t = Hashtbl.create 32 in
  (* pid -> node *)
  let killed_pids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let live_pid = Array.make n None in
  let incarnation = Array.make n 0 in
  let paths = Array.make n [] in
  (* newest-first trace paths per node *)
  let unreaped = ref 0 in
  let failed = ref [] in
  let watchdog_killed = ref [] in
  let induced = ref [] in
  (* (rel kill time, node), newest first *)
  let spawn node =
    let inc = incarnation.(node) in
    let tp = trace_path dir node inc in
    let resume_from = List.rev paths.(node) in
    paths.(node) <- tp :: paths.(node);
    let cfg =
      Host.config ~id:node ~n ~base_port ~seed ~tps ~duration ~drain
        ~incarnation:inc ~resume_from ~faults ~epoch ()
    in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> child ~cfg ~tp ~sp:(stats_path dir node inc) node
    | pid ->
        Hashtbl.replace children pid node;
        live_pid.(node) <- Some pid;
        incr unreaped
  in
  for i = 0 to n - 1 do
    spawn i
  done;

  (* Kill times from the plan are absolute; respawns follow the plan's
     down window from the moment the kill actually landed. *)
  let kills =
    ref
      (List.filter_map
         (fun (e : Fault_plan.event) ->
           match e.fault with
           | Fault_plan.Crash { node; down_for = Some d } when node < n ->
               Some (epoch +. e.at, node, d)
           | _ -> None)
         plan)
  in
  let respawns = ref [] in
  let deadline = epoch +. duration +. drain +. watchdog_grace in
  let rec reap () =
    match Retry.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status ->
        (match Hashtbl.find_opt children pid with
        | None -> ()
        | Some node ->
            decr unreaped;
            if live_pid.(node) = Some pid then live_pid.(node) <- None;
            let expected_kill =
              Hashtbl.mem killed_pids pid || List.mem node !watchdog_killed
            in
            (match status with
            | Unix.WEXITED 0 -> ()
            | Unix.WSIGNALED s when expected_kill && s = Sys.sigkill -> ()
            | _ -> if not (List.mem node !failed) then failed := node :: !failed));
        reap ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  while !unreaped > 0 || !respawns <> [] do
    reap ();
    let now = Clock.now_s () in
    let due, rest = List.partition (fun (at, _, _) -> at <= now) !kills in
    kills := rest;
    List.iter
      (fun (_, node, down) ->
        match live_pid.(node) with
        | Some pid ->
            (* Mark before the signal lands so the reap loop can never
               misread an induced kill as a genuine failure. *)
            Hashtbl.replace killed_pids pid ();
            induced := (Clock.now_s () -. epoch, node) :: !induced;
            sigkill pid;
            respawns := (now +. down, node) :: !respawns
        | None -> ()
        (* already dead (genuine failure): nothing to kill, no respawn *))
      due;
    let due, rest = List.partition (fun (at, _) -> at <= now) !respawns in
    respawns := rest;
    List.iter
      (fun (_, node) ->
        incarnation.(node) <- incarnation.(node) + 1;
        spawn node)
      due;
    if now > deadline then begin
      kills := [];
      respawns := [];
      Array.iteri
        (fun node pid_opt ->
          match pid_opt with
          | Some pid ->
              if not (List.mem node !watchdog_killed) then
                watchdog_killed := node :: !watchdog_killed;
              sigkill pid
          | None -> ())
        live_pid
    end;
    if !unreaped > 0 || !respawns <> [] then Clock.sleep 0.02
  done;
  reap ();

  (* --- merge --- *)
  let truncated = ref 0 in
  let entries =
    List.concat_map
      (fun node ->
        List.concat_map
          (fun path ->
            match Resume.parse_lenient ~path with
            | Ok (es, cut) ->
                truncated := !truncated + cut;
                es
            | Error msg ->
                Printf.eprintf "lo cluster: node %d trace unreadable: %s\n%!"
                  node msg;
                if not (List.mem node !failed) then failed := node :: !failed;
                [])
          (List.rev paths.(node)))
      (List.init n Fun.id)
  in
  (* The supervisor is the only witness of the kills themselves; insert
     the Crash events the victims could not write. Their Restarts are
     emitted by the respawned incarnations. *)
  let entries =
    entries
    @ List.rev_map
        (fun (at, node) -> { Lo_obs.Trace.at; ev = Lo_obs.Event.Crash { node } })
        !induced
  in
  (* Stable by timestamp: same-instant events keep node order, which is
     all the auditor's non-decreasing-time requirement needs. *)
  let entries =
    List.stable_sort
      (fun (a : Lo_obs.Trace.entry) b -> Float.compare a.at b.at)
      entries
  in
  (* --- close kill-induced bandwidth deficits ---
     A SIGKILLed host can neither deliver what was in flight to it nor
     drop what sat in its own queues; its write-ahead trace guarantees
     every such frame still has a durable Send, so with induced kills
     the per-tag deficits are non-negative and attributable to the
     crashes. Balance them with synthetic crash drops, exactly like the
     DES engine's omniscient accounting of messages to a dead node.
     Without induced kills nothing is synthesized: a deficit then is a
     real accounting bug and must fail the audit. *)
  let synthesized = ref [] in
  if !induced <> [] then begin
    let horizon =
      List.fold_left
        (fun acc (e : Lo_obs.Trace.entry) -> Float.max acc e.at)
        0. entries
    in
    let deficits : (string, (int * int) ref) Hashtbl.t = Hashtbl.create 16 in
    let touch tag dm db =
      let r =
        match Hashtbl.find_opt deficits tag with
        | Some r -> r
        | None ->
            let r = ref (0, 0) in
            Hashtbl.add deficits tag r;
            r
      in
      let m, b = !r in
      r := (m + dm, b + db)
    in
    List.iter
      (fun (e : Lo_obs.Trace.entry) ->
        match e.ev with
        | Lo_obs.Event.Send { tag; bytes; _ } -> touch tag 1 bytes
        | Lo_obs.Event.Deliver { tag; bytes; _ } -> touch tag (-1) (-bytes)
        | Lo_obs.Event.Drop { reason = Lo_obs.Event.Blocked; _ } -> ()
        | Lo_obs.Event.Drop { tag; bytes; _ } -> touch tag (-1) (-bytes)
        | _ -> ())
      entries;
    Hashtbl.iter
      (fun tag r ->
        let m, b = !r in
        if m > 0 && b >= 0 then begin
          let per = b / m in
          for k = 0 to m - 1 do
            let bytes = if k = 0 then b - (per * (m - 1)) else per in
            synthesized :=
              {
                Lo_obs.Trace.at = horizon;
                ev =
                  Lo_obs.Event.Drop
                    {
                      src = -1;
                      dst = -1;
                      tag;
                      bytes;
                      reason = Lo_obs.Event.Down;
                    };
              }
              :: !synthesized
          done
        end)
      deficits
  end;
  let entries = entries @ List.rev !synthesized in
  Out_channel.with_open_text (Filename.concat dir "merged.jsonl") (fun oc ->
      List.iter
        (fun e -> output_string oc (Lo_obs.Jsonl.line e ^ "\n"))
        entries);
  let audit = Lo_obs.Audit.check entries in
  let exposures = ref 0 and restarts = ref 0 in
  List.iter
    (fun (e : Lo_obs.Trace.entry) ->
      match e.ev with
      | Lo_obs.Event.Expose _ -> incr exposures
      | Lo_obs.Event.Restart _ -> incr restarts
      | _ -> ())
    entries;
  let submitted = ref 0
  and frames = ref 0
  and unknown = ref 0
  and reconnects = ref 0 in
  List.iter
    (fun node ->
      List.iteri
        (fun rev_inc _ ->
          let inc = List.length paths.(node) - 1 - rev_inc in
          let sp = stats_path dir node inc in
          if Sys.file_exists sp then
            try
              Scanf.sscanf (read_file sp) " %d %d %d %d %d %d"
                (fun s _out f_in u _ev rc ->
                  submitted := !submitted + s;
                  frames := !frames + f_in;
                  unknown := !unknown + u;
                  reconnects := !reconnects + rc)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
        paths.(node))
    (List.init n Fun.id);
  {
    n;
    seed;
    duration;
    out_dir = dir;
    submitted = !submitted;
    achieved_tps = float_of_int !submitted /. duration;
    frames = !frames;
    unknown = !unknown;
    events = List.length entries;
    exposures = !exposures;
    failed_nodes = List.sort Int.compare !failed;
    induced_kills = List.rev !induced;
    restarts = !restarts;
    reconnects = !reconnects;
    watchdog_killed = List.sort Int.compare !watchdog_killed;
    synthesized_drops = List.length !synthesized;
    truncated_lines = !truncated;
    audit;
  }

let ok r =
  r.failed_nodes = [] && r.watchdog_killed = []
  && Lo_obs.Audit.ok r.audit
  && r.exposures = 0
  && r.restarts >= List.length r.induced_kills
  && (r.n <= 1 || r.frames > 0)

let summary r =
  let b = Buffer.create 256 in
  Printf.bprintf b "cluster: n=%d seed=%d duration=%.1fs out=%s\n" r.n r.seed
    r.duration r.out_dir;
  Printf.bprintf b
    "workload: %d txs submitted (%.1f tx/s), %d frames, %d unknown-tag\n"
    r.submitted r.achieved_tps r.frames r.unknown;
  if r.induced_kills <> [] || r.restarts > 0 || r.reconnects > 0 then
    Printf.bprintf b
      "chaos: %d induced kill(s)%s, %d restart(s), %d reconnect(s), %d \
       synthesized crash drop(s), %d truncated trace line(s)\n"
      (List.length r.induced_kills)
      (match r.induced_kills with
      | [] -> ""
      | ks ->
          Printf.sprintf " [%s]"
            (String.concat ","
               (List.map
                  (fun (at, node) -> Printf.sprintf "%d@%.1fs" node at)
                  ks)))
      r.restarts r.reconnects r.synthesized_drops r.truncated_lines;
  Printf.bprintf b "audit: %s\n" (Lo_obs.Audit.summary r.audit);
  List.iter
    (fun v -> Printf.bprintf b "  %s\n" (Lo_obs.Audit.violation_to_string v))
    r.audit.Lo_obs.Audit.violations;
  Printf.bprintf b "exposures: %d%s\n" r.exposures
    (if r.exposures = 0 then "" else " (HONEST NODE EXPOSED)");
  (match r.failed_nodes with
  | [] -> ()
  | l ->
      Printf.bprintf b "failed nodes: %s\n"
        (String.concat "," (List.map string_of_int l)));
  (match r.watchdog_killed with
  | [] -> ()
  | l ->
      Printf.bprintf b "watchdog killed: %s\n"
        (String.concat "," (List.map string_of_int l)));
  Printf.bprintf b "result: %s" (if ok r then "PASS" else "FAIL");
  Buffer.contents b
