module Rng = Lo_net.Rng

type policy = { base : float; factor : float; cap : float; jitter : float }

let default_policy = { base = 0.05; factor = 1.7; cap = 1.5; jitter = 0.25 }

let delay p ~rng ~attempts =
  let raw = p.base *. (p.factor ** float_of_int attempts) in
  let capped = Float.min p.cap raw in
  let jittered =
    if p.jitter <= 0. then capped
    else capped *. (1. +. (p.jitter *. ((Rng.float rng 2.0) -. 1.0)))
  in
  Float.max 1e-4 jittered

type t = {
  policy : policy;
  rng : Rng.t;
  mutable attempts : int;
  mutable next_at : float;
}

let create ?(policy = default_policy) ~rng () =
  { policy; rng; attempts = 0; next_at = Float.neg_infinity }

let ready t ~now = now >= t.next_at
let next_at t = t.next_at
let attempts t = t.attempts

let failed t ~now =
  t.next_at <- now +. delay t.policy ~rng:t.rng ~attempts:t.attempts;
  t.attempts <- t.attempts + 1

let opened t =
  t.attempts <- 0;
  t.next_at <- Float.neg_infinity

let lost t ~now =
  t.attempts <- 0;
  t.next_at <- now +. delay t.policy ~rng:t.rng ~attempts:0
