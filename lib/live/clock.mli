(** Wall-clock access for the live runtime.

    The single place in the tree allowed to read the host clock: the
    determinism lint ([test/cli/determinism.t]) bans [Unix.] and
    wall-clock reads everywhere outside [lib/live], so simulation code
    that needs wall time for self-profiling (never for protocol
    decisions) must route through here. *)

val now_s : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val sleep : float -> unit
(** Sleep at least the given number of seconds. *)
