(** A full localhost cluster: fork one {!Host} process per node,
    supervise it (optionally killing and respawning nodes per a seeded
    chaos schedule), merge the per-incarnation traces into a single
    chronological stream, and audit it.

    The parent never exchanges protocol traffic with the children; it
    only picks a shared epoch, delivers SIGKILLs on schedule, collects
    exit statuses with a non-blocking reap loop, and reads the JSONL
    trace plus a tiny stats file each incarnation leaves in [out_dir]
    ([node-<i>.<incarnation>.jsonl] / [.stats]). The merged stream is
    written to [merged.jsonl] and fed to {!Lo_obs.Audit.check}.

    {b Chaos.} With [chaos] set, the supervisor compiles the schedule
    to process-level {!Lo_net.Fault_plan.Crash} events: at each kill
    time the victim is SIGKILLed (no flush, no goodbye — the real crash
    model) and after its down window it is respawned with
    [incarnation + 1] and the trace files of its prior lives, which is
    all {!Host} needs to rebuild its commitment log, close orphaned
    spans, re-arm suspicions and rejoin ({!Resume}). The supervisor
    distinguishes its own kills from genuine failures when reaping, and
    inserts the [Crash] events the victims could not write into the
    merged stream. Because the host's trace is a write-ahead log
    flushed before socket writes, a kill leaves only non-negative
    per-tag bandwidth deficits; the supervisor closes them with
    synthetic crash drops at the horizon ([synthesized_drops]) — only
    when kills were actually induced, so a deficit in a clean run still
    fails the audit. A watchdog SIGKILLs any child that outlives the
    horizon by a grace period and fails the run. *)

type chaos = {
  kills : int;  (** distinct victims to kill exactly once (when [rate = None]) *)
  rate : float option;
      (** Poisson kills/s via {!Lo_net.Fault_plan.churn} instead *)
  mean_down : float;  (** mean seconds between a kill and its respawn *)
  link : Faulty_link.spec;
      (** socket-level fault rates applied inside every host *)
}

val default_chaos : chaos
(** 3 kills, mean 1.5 s down, mild link faults (~4% of frames
    perturbed). *)

val chaos_of_string : string -> (chaos, string) result
(** Parse a ["key=value,..."] spec over {!default_chaos}: [kills],
    [rate], [down], [drop], [dup], [delay], [dmax], [trunc], [garble].
    The empty string means {!default_chaos}. *)

val plan_of_chaos :
  n:int -> duration:float -> seed:int -> chaos -> Lo_net.Fault_plan.t
(** The seeded process-level kill schedule: [Crash {node; down_for}]
    events with kill times in the first 60% of the run and down windows
    clamped so every respawn lands by 85% of [duration] — a restart
    needs live traffic left to rejoin. *)

type report = {
  n : int;
  seed : int;
  duration : float;
  out_dir : string;
  submitted : int;  (** transactions injected across the cluster *)
  achieved_tps : float;  (** [submitted / duration] *)
  frames : int;  (** TCP frames received across the cluster *)
  unknown : int;  (** deliveries with no subscribed protocol *)
  events : int;  (** merged trace entries audited *)
  exposures : int;  (** [Expose] events — must be 0 in an honest run *)
  failed_nodes : int list;
      (** children that exited non-zero, died to a signal the
          supervisor did not send, or left an unreadable trace *)
  induced_kills : (float * int) list;
      (** (seconds after epoch, node) for each SIGKILL delivered *)
  restarts : int;  (** [Restart] events in the merged trace *)
  reconnects : int;  (** links re-established after having been up *)
  watchdog_killed : int list;  (** children killed past the deadline *)
  synthesized_drops : int;
      (** crash drops added to close kill-induced bandwidth deficits *)
  truncated_lines : int;
      (** partial trailing trace lines discarded across all files *)
  audit : Lo_obs.Audit.report;
}

val run :
  ?out_dir:string ->
  ?base_port:int ->
  ?drain:float ->
  ?chaos:chaos ->
  n:int ->
  tps:float ->
  duration:float ->
  seed:int ->
  unit ->
  report
(** Blocks for roughly [duration + drain] plus startup (plus the
    watchdog grace if a child hangs). [out_dir] defaults to a fresh
    directory under the system temp dir; existing files in it are
    overwritten. Without [chaos] no kills are induced and no drops are
    synthesized. *)

val ok : report -> bool
(** All children exited cleanly (induced kills excepted), the watchdog
    stayed idle, the audit passed, no honest node was exposed, and
    every induced kill produced a restart. *)

val summary : report -> string
(** Multi-line human-readable report. *)
