(** A full localhost cluster: fork one {!Host} process per node, wait,
    merge the per-node traces into a single chronological stream, and
    audit it.

    The parent never exchanges protocol traffic with the children; it
    only picks a shared epoch, collects exit statuses, and reads the
    JSONL trace plus a tiny stats file each child leaves in [out_dir]
    ([node-<i>.jsonl] / [node-<i>.stats]). The merged stream is written
    to [merged.jsonl] and fed to {!Lo_obs.Audit.check}. *)

type report = {
  n : int;
  seed : int;
  duration : float;
  out_dir : string;
  submitted : int;  (** transactions injected across the cluster *)
  achieved_tps : float;  (** [submitted / duration] *)
  frames : int;  (** TCP frames received across the cluster *)
  unknown : int;  (** deliveries with no subscribed protocol *)
  events : int;  (** merged trace entries audited *)
  exposures : int;  (** [Expose] events — must be 0 in an honest run *)
  failed_nodes : int list;  (** children that exited non-zero *)
  audit : Lo_obs.Audit.report;
}

val run :
  ?out_dir:string ->
  ?base_port:int ->
  ?drain:float ->
  n:int ->
  tps:float ->
  duration:float ->
  seed:int ->
  unit ->
  report
(** Blocks for roughly [duration + drain] plus startup. [out_dir]
    defaults to a fresh directory under the system temp dir; existing
    files in it are overwritten. *)

val ok : report -> bool
(** All children exited cleanly, the audit passed, and no honest node
    was exposed. *)

val summary : report -> string
(** Multi-line human-readable report. *)
