(** Per-peer reconnect scheduling: exponential backoff with seeded
    jitter.

    Mirrors the reconciler's retry policy (base delay grown by a
    constant factor per consecutive failure, perturbed by a symmetric
    jitter fraction, capped) at the transport layer: when a peer's TCP
    connection drops, the host keeps its select loop running and only
    attempts a new connect when {!ready} says so. All randomness comes
    from the caller's {!Lo_net.Rng.t}, so a cluster seed fully
    determines the schedule each incarnation would follow. *)

type policy = {
  base : float;  (** delay before the first retry, seconds *)
  factor : float;  (** multiplicative growth per consecutive failure *)
  cap : float;  (** upper bound on the un-jittered delay *)
  jitter : float;
      (** symmetric perturbation as a fraction of the delay, in [0,1) *)
}

val default_policy : policy
(** [{ base = 0.05; factor = 1.7; cap = 1.5; jitter = 0.25 }] — tuned so
    a peer that is down for a typical chaos window (0.5–3 s) is
    re-reached within a small multiple of its respawn time, while a
    long-dead peer costs at most ~one probe per [cap] seconds. *)

val delay : policy -> rng:Lo_net.Rng.t -> attempts:int -> float
(** The jittered delay after [attempts] consecutive failures
    ([attempts = 0] is the first retry). Always positive. *)

(** Mutable per-peer state driving one connection's retry clock. *)
type t

val create : ?policy:policy -> rng:Lo_net.Rng.t -> unit -> t
(** Fresh state: {!ready} is immediately true (first connect is free). *)

val ready : t -> now:float -> bool
(** May a connect attempt start now? *)

val next_at : t -> float
(** When {!ready} next turns true ([neg_infinity] if it already is). *)

val attempts : t -> int
(** Consecutive failures since the last established connection. *)

val failed : t -> now:float -> unit
(** A connect attempt failed: grow the backoff and re-arm the clock. *)

val opened : t -> unit
(** A connection was established: reset the backoff entirely. *)

val lost : t -> now:float -> unit
(** An established connection dropped: start a fresh backoff cycle at
    [base] (the peer was just up — probe again soon, but not in a
    busy-loop). *)
