(** One live LØ node: the {!Lo_transport} backend over localhost TCP.

    The host owns a listening socket on [base_port + id], one outgoing
    connection per peer (messages from [i] to [j] always travel on the
    connection [i] opened to [j]; the frame carries the sender index),
    a wall-clock {!Timer_wheel}, and a {!Lo_obs.Trace} sink, and runs
    an unmodified {!Lo_core.Node} over them with a select loop.

    Protocol time is wall-clock seconds since the shared [epoch], so
    the traces of independently started processes merge into one
    audit-ready stream. Phases of a run:

    + from process birth: bind + listen, and keep per-peer outgoing
      connections alive from one unified select loop — non-blocking
      connects, exponential-backoff reconnects with seeded jitter
      ({!Reconnect}), bounded per-peer write queues, half-open
      detection. There is no startup barrier: a respawned node joins a
      cluster that is already past its epoch;
    + the first time the loop sees relative time >= 0: start the node,
      schedule the workload (the same deterministic generator as the
      simulator — every process derives the full spec list from [seed]
      and submits the subset whose origin maps to it). An incarnation
      > 0 first restores its pre-crash state (below), emits [Restart]
      and fires the transport restart handler so [Node.handle_restart]
      re-announces its head and re-requests its peers';
    + until [duration]: full protocol — timers fire, messages flow,
      and when [faults] is non-trivial every outgoing frame passes
      through {!Faulty_link.decide};
    + from [duration] (quiesce): timers freeze, so no new rounds or
      submissions start, but the loop keeps reading, writing and
      responding until the message cascade settles ([quiet_exit] of
      silence with empty write queues) or [duration + drain] hard-caps
      the run.

    {b Crash safety (the write-ahead trace).} With a [trace_path], the
    host streams every trace event to the file the loop iteration it is
    emitted, and always flushes *before* draining socket write queues.
    So when a chaos supervisor SIGKILLs the process mid-run: (a) any
    frame that reached a peer has its [Send] on disk — per-tag
    bandwidth deficits of a killed node are strictly positive and the
    supervisor can close them with synthetic crash drops; and (b) the
    durable trace is a faithful prefix of the node's observable
    history, which is what makes restart safe for accountability. A
    respawned incarnation replays its own [Commit_append] events to
    rebuild the exact commitment log ({!Resume}) — never re-signing a
    conflicting digest history — closes its orphaned spans, and re-arms
    its standing suspicions for the reconciler to resolve. *)

type config = {
  id : int;
  n : int;
  base_port : int;
  seed : int;
  tps : float;  (** cluster-wide submission rate, txs per second *)
  duration : float;  (** seconds of workload after the epoch *)
  drain : float;  (** hard cap on the settle period after quiesce *)
  epoch : float;  (** absolute wall-clock zero shared by the cluster *)
  trace_capacity : int;
  incarnation : int;
      (** 0 for a first life; > 0 for a respawn after a crash *)
  resume_from : string list;
      (** trace files of this node's prior incarnations, in order;
          required when [incarnation > 0] *)
  faults : Faulty_link.spec;  (** {!Faulty_link.none} for a clean wire *)
}

val default_drain : float
val default_trace_capacity : int

val config :
  id:int ->
  n:int ->
  ?base_port:int ->
  ?seed:int ->
  ?tps:float ->
  ?duration:float ->
  ?drain:float ->
  ?trace_capacity:int ->
  ?incarnation:int ->
  ?resume_from:string list ->
  ?faults:Faulty_link.spec ->
  epoch:float ->
  unit ->
  config

val default_base_port : int

type stats = {
  submitted : int;  (** transactions injected at this node *)
  frames_out : int;  (** frames fully written to peers *)
  frames_in : int;  (** frames read and dispatched *)
  unknown : int;  (** deliveries with no subscribed proto (counted, traced) *)
  trace_events : int;
  reconnects : int;
      (** connections re-established after having been up once *)
}

val run : ?trace_path:string -> config -> stats
(** Run one node to completion. Writes the node's event trace as
    streaming JSONL to [trace_path] when given (flushed ahead of socket
    writes — see the crash-safety contract above). Raises [Failure] if
    resuming from an unreadable or gapped prior trace. *)
