(** One live LØ node: the {!Lo_transport} backend over localhost TCP.

    The host owns a listening socket on [base_port + id], one outgoing
    connection per peer (messages from [i] to [j] always travel on the
    connection [i] opened to [j]; the frame carries the sender index),
    a wall-clock {!Timer_wheel}, and a {!Lo_obs.Trace} sink, and runs
    an unmodified {!Lo_core.Node} over them with a select loop.

    Protocol time is wall-clock seconds since the shared [epoch], so
    the traces of independently started processes merge into one
    audit-ready stream. Phases of a run:

    + bind + listen, then connect to every peer (retrying until
      [epoch]; peers are still starting up);
    + at [epoch]: start the node, schedule the workload (the same
      deterministic generator as the simulator — every process derives
      the full spec list from [seed] and submits the subset whose
      origin maps to it);
    + until [duration]: full protocol — timers fire, messages flow;
    + from [duration] (quiesce): timers freeze, so no new rounds or
      submissions start, but the loop keeps reading and responding
      until the message cascade settles ([quiet_exit] of silence) or
      [duration + drain] hard-caps the run. This lets in-flight sends
      reach their Deliver events so the merged trace satisfies the
      auditor's bandwidth-conservation invariant. *)

type config = {
  id : int;
  n : int;
  base_port : int;
  seed : int;
  tps : float;  (** cluster-wide submission rate, txs per second *)
  duration : float;  (** seconds of workload after the epoch *)
  drain : float;  (** hard cap on the settle period after quiesce *)
  epoch : float;  (** absolute wall-clock zero shared by the cluster *)
  trace_capacity : int;
}

val default_drain : float
val default_trace_capacity : int

val config :
  id:int ->
  n:int ->
  ?base_port:int ->
  ?seed:int ->
  ?tps:float ->
  ?duration:float ->
  ?drain:float ->
  ?trace_capacity:int ->
  epoch:float ->
  unit ->
  config

val default_base_port : int

type stats = {
  submitted : int;  (** transactions injected at this node *)
  frames_out : int;  (** frames written to peers *)
  frames_in : int;  (** frames read and dispatched *)
  unknown : int;  (** deliveries with no subscribed proto (counted, traced) *)
  trace_events : int;
}

val run : ?trace_path:string -> config -> stats
(** Run one node to completion. Writes the node's full event trace as
    JSONL to [trace_path] when given. Raises [Failure] if a peer stays
    unreachable past the epoch. *)
