(** The transport interface the protocol core runs over.

    Everything a node needs from its deployment substrate — message
    I/O, timers, the protocol clock, lifecycle and the observability
    sink — gathered into one record of closures, so the same [lo_core]
    protocol logic runs unchanged over the discrete-event simulator
    ({!Lo_net.Sim_transport}) and over real localhost sockets
    ({!Lo_live.Host}). The inversion mirrors {!Lo_core.Node_env}: plain
    closures, no functors, no first-class modules.

    {b Determinism contract.} A backend must guarantee that (a) [now]
    never consumes randomness and never mutates transport state, (b)
    [send]/[send_many]/[schedule] effects depend only on their
    arguments and the backend's own state, and (c) callbacks (message
    handlers, timers, the restart handler) are never re-entered — they
    run one at a time from the backend's event loop. Under the DES
    backend this makes a run a pure function of the seed; under the
    live backend the same code runs against wall clocks and sockets,
    and only the trace (not the schedule) is reproducible. *)

type handler = from:int -> tag:string -> string -> unit
(** A message delivery: sender's dense index, wire tag, payload. *)

type t = {
  self : int;  (** this node's dense index in the deployment *)
  now : unit -> float;
      (** protocol clock in seconds. DES: simulated time; live:
          wall-clock seconds since the cluster epoch. Reading it never
          consumes RNG state. *)
  send : dst:int -> tag:string -> string -> unit;
      (** queue one payload for delivery; never blocks protocol logic *)
  send_many : dsts:int list -> tag:string -> string -> unit;
      (** fan one encoded payload out to several destinations (encode
          once, the backend shares the bytes) *)
  schedule : delay:float -> (unit -> unit) -> unit;
      (** run a callback [delay] seconds from [now ()] *)
  subscribe : proto:string -> handler -> unit;
      (** register the handler for every tag whose prefix (before the
          [':']) equals [proto]; replaces any previous handler for the
          same proto. Deliveries with no subscribed proto are counted
          and surfaced by the backend, never dropped silently. *)
  set_restart_handler : (unit -> unit) -> unit;
      (** called after the backend brings this node back up (the
          down-up lifecycle; a no-op on backends without crash
          injection) *)
  trace : Lo_obs.Trace.t option;
      (** the deployment's observability sink, snapshotted at node
          creation; [None] keeps emission sites on their cheap path *)
}
