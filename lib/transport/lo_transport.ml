type handler = from:int -> tag:string -> string -> unit

type t = {
  self : int;
  now : unit -> float;
  send : dst:int -> tag:string -> string -> unit;
  send_many : dsts:int list -> tag:string -> string -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  subscribe : proto:string -> handler -> unit;
  set_restart_handler : (unit -> unit) -> unit;
  trace : Lo_obs.Trace.t option;
}
