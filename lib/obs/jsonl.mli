(** JSONL export/import of trace entries.

    One JSON object per line, fixed field order per event kind, floats
    printed with six decimals — so two traces are byte-identical exactly
    when their event streams are. Strings (tags, span keys, violation
    kinds) are sanitised on emission to a conservative character set
    (alphanumerics and [:_\-./ ]); the parser relies on that, which
    keeps it dependency-free.

    Wall-clock phase notes are intentionally absent from the export:
    they are host-machine measurements and would break determinism. *)

val line : Trace.entry -> string
(** Without the trailing newline. *)

val to_string : Trace.t -> string
(** Every retained entry, one per line, each newline-terminated. *)

val output : out_channel -> Trace.t -> unit

val parse_line : string -> (Trace.entry, string) result

val parse : string -> (Trace.entry list, string) result
(** Whole-document parse; blank lines are skipped. On failure the error
    names the offending line number. *)
