(** Read-only accessors over a chronological event stream.

    The conformance oracles ([Lo_check]) ask a handful of recurring
    questions of a trace — "who exposed whom", "was this peer ever
    suspected", "did an honest node accept that block" — that {!Audit}'s
    invariant machines do not answer directly. These helpers keep those
    queries out of the oracle logic and next to the event definitions,
    so a new {!Event} constructor has one obvious place to be routed.

    All functions take the [entries] of a {!Trace} (oldest first, as
    {!Trace.events} returns them) and never mutate anything. *)

val exposures : Trace.entry list -> (float * int * int) list
(** Every [Expose] event as [(at, exposer, accused)], in stream order. *)

val first_detection : Trace.entry list -> peer:int -> (float * string) option
(** Earliest event in which some {e other} node held [peer] to account:
    a [Suspect], [Expose] or [Violation] naming it. Returns the time and
    the detecting event's kind label. *)

val first_send_to :
  Trace.entry list -> dst:int -> tag:string -> float option
(** Time of the first charged [Send] of a [tag]-tagged message to
    [dst] — e.g. the first commit request a silent censor was shown
    (the moment its unresponsiveness became observable). *)

val accepts_of_creator :
  Trace.entry list -> creator:int -> (float * int * int) list
(** Every [Block_accept] of a block by [creator], as
    [(at, accepting node, height)] in stream order — acceptance by a
    node other than the creator is what makes a block-stage deviation
    observable. *)

val suspects_of : Trace.entry list -> peer:int -> (float * int) list
(** Every [Suspect] naming [peer], as [(at, observer)]. *)
