type entry = { at : float; ev : Event.t }

type flow = {
  sent_msgs : int;
  sent_bytes : int;
  delivered_msgs : int;
  delivered_bytes : int;
  dropped_msgs : int;
  dropped_bytes : int;
  blocked_msgs : int;
  blocked_bytes : int;
}

type node_io = {
  out_msgs : int;
  out_bytes : int;
  in_msgs : int;
  in_bytes : int;
}

type mutable_flow = {
  mutable f_sent_msgs : int;
  mutable f_sent_bytes : int;
  mutable f_delivered_msgs : int;
  mutable f_delivered_bytes : int;
  mutable f_dropped_msgs : int;
  mutable f_dropped_bytes : int;
  mutable f_blocked_msgs : int;
  mutable f_blocked_bytes : int;
}

type mutable_io = {
  mutable n_out_msgs : int;
  mutable n_out_bytes : int;
  mutable n_in_msgs : int;
  mutable n_in_bytes : int;
}

type t = {
  cap : int;
  buf : entry array;
  mutable start : int;
  mutable len : int;
  mutable evicted : int;
  mutable last_at : float;
  kinds : (string, int ref) Hashtbl.t;
  tags : (string, mutable_flow) Hashtbl.t;
  nodes : (int, mutable_io) Hashtbl.t;
  spans : (int * string, int) Hashtbl.t;  (* open-count per (node, key) *)
  mutable open_count : int;
  mutable span_errors : int;
  mutable phases_rev : (string * float) list;
  mutable observer : (entry -> unit) option;
}

let dummy = { at = 0.; ev = Event.Crash { node = -1 } }

let create ?(capacity = 1_048_576) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  {
    cap = capacity;
    buf = Array.make capacity dummy;
    start = 0;
    len = 0;
    evicted = 0;
    last_at = 0.;
    kinds = Hashtbl.create 16;
    tags = Hashtbl.create 16;
    nodes = Hashtbl.create 64;
    spans = Hashtbl.create 64;
    open_count = 0;
    span_errors = 0;
    phases_rev = [];
    observer = None;
  }

let set_observer t obs = t.observer <- obs

let capacity t = t.cap
let length t = t.len
let evicted t = t.evicted
let total t = t.len + t.evicted
let last_at t = t.last_at
let open_spans t = t.open_count
let span_errors t = t.span_errors

let flow_for t tag =
  match Hashtbl.find_opt t.tags tag with
  | Some f -> f
  | None ->
      let f =
        {
          f_sent_msgs = 0;
          f_sent_bytes = 0;
          f_delivered_msgs = 0;
          f_delivered_bytes = 0;
          f_dropped_msgs = 0;
          f_dropped_bytes = 0;
          f_blocked_msgs = 0;
          f_blocked_bytes = 0;
        }
      in
      Hashtbl.add t.tags tag f;
      f

let io_for t node =
  match Hashtbl.find_opt t.nodes node with
  | Some io -> io
  | None ->
      let io =
        { n_out_msgs = 0; n_out_bytes = 0; n_in_msgs = 0; n_in_bytes = 0 }
      in
      Hashtbl.add t.nodes node io;
      io

let account t (ev : Event.t) =
  let kind = Event.kind ev in
  (match Hashtbl.find_opt t.kinds kind with
  | Some r -> incr r
  | None -> Hashtbl.add t.kinds kind (ref 1));
  match ev with
  | Event.Send { src; tag; bytes; _ } ->
      let f = flow_for t tag in
      f.f_sent_msgs <- f.f_sent_msgs + 1;
      f.f_sent_bytes <- f.f_sent_bytes + bytes;
      let io = io_for t src in
      io.n_out_msgs <- io.n_out_msgs + 1;
      io.n_out_bytes <- io.n_out_bytes + bytes
  | Event.Deliver { dst; tag; bytes; _ } ->
      let f = flow_for t tag in
      f.f_delivered_msgs <- f.f_delivered_msgs + 1;
      f.f_delivered_bytes <- f.f_delivered_bytes + bytes;
      let io = io_for t dst in
      io.n_in_msgs <- io.n_in_msgs + 1;
      io.n_in_bytes <- io.n_in_bytes + bytes
  | Event.Drop { tag; bytes; reason; _ } ->
      let f = flow_for t tag in
      if reason = Event.Blocked then begin
        f.f_blocked_msgs <- f.f_blocked_msgs + 1;
        f.f_blocked_bytes <- f.f_blocked_bytes + bytes
      end
      else begin
        f.f_dropped_msgs <- f.f_dropped_msgs + 1;
        f.f_dropped_bytes <- f.f_dropped_bytes + bytes
      end
  | Event.Span_begin { node; key } ->
      let k = (node, key) in
      let open_now =
        match Hashtbl.find_opt t.spans k with Some n -> n | None -> 0
      in
      Hashtbl.replace t.spans k (open_now + 1);
      t.open_count <- t.open_count + 1
  | Event.Span_end { node; key; _ } -> begin
      let k = (node, key) in
      match Hashtbl.find_opt t.spans k with
      | Some n when n > 0 ->
          Hashtbl.replace t.spans k (n - 1);
          t.open_count <- t.open_count - 1
      | _ -> t.span_errors <- t.span_errors + 1
    end
  | Event.Commit_append _ | Event.Suspect _ | Event.Clear _ | Event.Expose _
  | Event.Violation _ | Event.Block_accept _ | Event.Crash _
  | Event.Restart _ | Event.Conn_down _ | Event.Conn_up _
  | Event.Unknown_tag _ ->
      ()

let emit t ~at ev =
  account t ev;
  let entry = { at; ev } in
  let slot = (t.start + t.len) mod t.cap in
  t.buf.(slot) <- entry;
  if t.len < t.cap then t.len <- t.len + 1
  else begin
    t.start <- (t.start + 1) mod t.cap;
    t.evicted <- t.evicted + 1
  end;
  if at > t.last_at then t.last_at <- at;
  match t.observer with Some f -> f entry | None -> ()

let events t =
  List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))

let count t kind =
  match Hashtbl.find_opt t.kinds kind with Some r -> !r | None -> 0

let kind_counts t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.kinds []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let tag_flows t =
  Hashtbl.fold
    (fun tag f acc ->
      ( tag,
        {
          sent_msgs = f.f_sent_msgs;
          sent_bytes = f.f_sent_bytes;
          delivered_msgs = f.f_delivered_msgs;
          delivered_bytes = f.f_delivered_bytes;
          dropped_msgs = f.f_dropped_msgs;
          dropped_bytes = f.f_dropped_bytes;
          blocked_msgs = f.f_blocked_msgs;
          blocked_bytes = f.f_blocked_bytes;
        } )
      :: acc)
    t.tags []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let node_flows t =
  Hashtbl.fold
    (fun node io acc ->
      ( node,
        {
          out_msgs = io.n_out_msgs;
          out_bytes = io.n_out_bytes;
          in_msgs = io.n_in_msgs;
          in_bytes = io.n_in_bytes;
        } )
      :: acc)
    t.nodes []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let note_phase t name seconds =
  match List.assoc_opt name t.phases_rev with
  | Some _ ->
      t.phases_rev <-
        List.map
          (fun (n, v) -> if String.equal n name then (n, v +. seconds) else (n, v))
          t.phases_rev
  | None -> t.phases_rev <- (name, seconds) :: t.phases_rev

let phases t = List.rev t.phases_rev
