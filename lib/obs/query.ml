let exposures entries =
  List.filter_map
    (fun { Trace.at; ev } ->
      match ev with
      | Event.Expose { node; peer } -> Some (at, node, peer)
      | _ -> None)
    entries

let first_detection entries ~peer =
  List.find_map
    (fun { Trace.at; ev } ->
      match ev with
      | Event.Suspect { node; peer = p } when p = peer && node <> peer ->
          Some (at, "suspect")
      | Event.Expose { node; peer = p } when p = peer && node <> peer ->
          Some (at, "expose")
      | Event.Violation { node; peer = p; _ } when p = peer && node <> peer ->
          Some (at, "violation")
      | _ -> None)
    entries

let first_send_to entries ~dst ~tag =
  List.find_map
    (fun { Trace.at; ev } ->
      match ev with
      | Event.Send { dst = d; tag = t; _ } when d = dst && String.equal t tag
        ->
          Some at
      | _ -> None)
    entries

let accepts_of_creator entries ~creator =
  List.filter_map
    (fun { Trace.at; ev } ->
      match ev with
      | Event.Block_accept { node; creator = c; height; _ }
        when c = creator && node <> creator ->
          Some (at, node, height)
      | _ -> None)
    entries

let suspects_of entries ~peer =
  List.filter_map
    (fun { Trace.at; ev } ->
      match ev with
      | Event.Suspect { node; peer = p } when p = peer -> Some (at, node)
      | _ -> None)
    entries
