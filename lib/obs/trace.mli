(** The trace sink: a bounded ring of timestamped events plus running
    aggregate counters.

    Emission is deterministic and side-effect free with respect to the
    simulation: it never consumes randomness and never branches protocol
    logic, so a run behaves identically with tracing on or off. The ring
    keeps the newest [capacity] events (oldest are evicted first); the
    aggregate counters cover {e every} event ever emitted, including
    evicted ones.

    Wall-clock phase notes ({!note_phase}) are deliberately kept out of
    the event stream: they measure the host machine, not the simulation,
    and would break byte-identical trace comparison across runs. *)

type entry = { at : float; ev : Event.t }

(** Per-message-tag byte/message flow, split by outcome. [dropped_*]
    covers {!Event.Loss}, {!Event.Down} and {!Event.In_flight};
    [blocked_*] counts refusals that were never charged as sent. *)
type flow = {
  sent_msgs : int;
  sent_bytes : int;
  delivered_msgs : int;
  delivered_bytes : int;
  dropped_msgs : int;
  dropped_bytes : int;
  blocked_msgs : int;
  blocked_bytes : int;
}

type node_io = {
  out_msgs : int;
  out_bytes : int;
  in_msgs : int;
  in_bytes : int;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to [1_048_576] entries.
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int

val emit : t -> at:float -> Event.t -> unit

val set_observer : t -> (entry -> unit) option -> unit
(** Install (or clear) a callback invoked synchronously from {!emit}
    with every entry, after it is accounted and stored. This is how the
    live backend streams a durable write-ahead trace: the ring alone
    can evict under pressure, while the observer sees every event
    exactly once in emission order. The observer must not emit into the
    same trace. *)

val length : t -> int
(** Entries currently retained. *)

val evicted : t -> int
val total : t -> int
(** Events ever emitted ([length + evicted]). *)

val events : t -> entry list
(** Retained entries, oldest first. *)

val last_at : t -> float
(** Timestamp of the newest event (0 when empty). *)

(** {1 Aggregates (survive eviction)} *)

val count : t -> string -> int
(** Events emitted with the given {!Event.kind} label. *)

val kind_counts : t -> (string * int) list
(** Sorted by label. *)

val tag_flows : t -> (string * flow) list
(** Per-tag wire flow, sorted by tag. *)

val node_flows : t -> (int * node_io) list
(** Per-node sent/received traffic (charged sends and deliveries),
    sorted by node. *)

val open_spans : t -> int
(** Spans begun and not yet ended (never negative). *)

val span_errors : t -> int
(** [Span_end] events that had no matching open span. *)

(** {1 Wall-clock self-profiling (not part of the event stream)} *)

val note_phase : t -> string -> float -> unit
(** Record that a named harness phase took the given wall-clock
    seconds. Repeated notes for one name accumulate. *)

val phases : t -> (string * float) list
(** In first-note order. *)
