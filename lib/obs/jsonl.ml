exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* Conservative charset so quoting/escaping is never needed: the parser
   below depends on values containing no quotes, commas or brackets. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | ':' | '_' | '-' | '.' | '/'
      | ' ' ->
          c
      | _ -> '_')
    s

let line { Trace.at; ev } =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%.6f,\"ev\":\"%s\"" at (Event.kind ev));
  let int k v = Buffer.add_string b (Printf.sprintf ",\"%s\":%d" k v) in
  let str k v = Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" k (sanitize v)) in
  let bool k v = Buffer.add_string b (Printf.sprintf ",\"%s\":%b" k v) in
  let ints k vs =
    Buffer.add_string b (Printf.sprintf ",\"%s\":[" k);
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (string_of_int v))
      vs;
    Buffer.add_char b ']'
  in
  let wire src dst tag bytes =
    int "src" src;
    int "dst" dst;
    str "tag" tag;
    int "bytes" bytes
  in
  (match ev with
  | Event.Send { src; dst; tag; bytes } -> wire src dst tag bytes
  | Event.Deliver { src; dst; tag; bytes } -> wire src dst tag bytes
  | Event.Drop { src; dst; tag; bytes; reason } ->
      wire src dst tag bytes;
      str "reason" (Event.drop_reason_label reason)
  | Event.Span_begin { node; key } ->
      int "node" node;
      str "key" key
  | Event.Span_end { node; key; ok } ->
      int "node" node;
      str "key" key;
      bool "ok" ok
  | Event.Commit_append { node; seq; count; ids } ->
      int "node" node;
      int "seq" seq;
      int "count" count;
      ints "ids" ids
  | Event.Suspect { node; peer } | Event.Clear { node; peer }
  | Event.Expose { node; peer } ->
      int "node" node;
      int "peer" peer
  | Event.Violation { node; peer; kind } ->
      int "node" node;
      int "peer" peer;
      str "kind" kind
  | Event.Block_accept { node; creator; height; bundles; omitted; appendix } ->
      int "node" node;
      int "creator" creator;
      int "height" height;
      Buffer.add_string b ",\"bundles\":[";
      List.iteri
        (fun i (seq, ids) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          Buffer.add_string b (string_of_int seq);
          List.iter
            (fun id -> Buffer.add_string b ("," ^ string_of_int id))
            ids;
          Buffer.add_char b ']')
        bundles;
      Buffer.add_char b ']';
      ints "omitted" omitted;
      int "appendix" appendix
  | Event.Crash { node } | Event.Restart { node } -> int "node" node
  | Event.Conn_down { node; peer; reason } ->
      int "node" node;
      int "peer" peer;
      str "reason" reason
  | Event.Conn_up { node; peer; attempts } ->
      int "node" node;
      int "peer" peer;
      int "attempts" attempts
  | Event.Unknown_tag { node; src; tag } ->
      int "node" node;
      int "src" src;
      str "tag" tag);
  Buffer.add_char b '}';
  Buffer.contents b

let to_string trace =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (line e);
      Buffer.add_char b '\n')
    (Trace.events trace);
  Buffer.contents b

let output oc trace =
  List.iter
    (fun e ->
      output_string oc (line e);
      output_char oc '\n')
    (Trace.events trace)

(* --- parsing --- *)

(* Top-level field split: commas at bracket depth 0. Values never
   contain quotes or commas (see [sanitize]), so no escape handling. *)
let split_fields s =
  let n = String.length s in
  if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then fail "not an object";
  let body = String.sub s 1 (n - 2) in
  let parts = ref [] in
  let start = ref 0 in
  let depth = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '[' -> incr depth
      | ']' -> decr depth
      | ',' when !depth = 0 ->
          parts := String.sub body !start (i - !start) :: !parts;
          start := i + 1
      | _ -> ())
    body;
  if String.length body > !start then
    parts := String.sub body !start (String.length body - !start) :: !parts
  else if String.length body > 0 then fail "trailing comma";
  List.rev_map
    (fun part ->
      match String.index_opt part ':' with
      | None -> fail "field without colon: %s" part
      | Some _ ->
          let part = String.trim part in
          if String.length part < 4 || part.[0] <> '"' then
            fail "bad field key: %s" part;
          let close =
            match String.index_from_opt part 1 '"' with
            | Some i -> i
            | None -> fail "unterminated key: %s" part
          in
          let key = String.sub part 1 (close - 1) in
          if close + 1 >= String.length part || part.[close + 1] <> ':' then
            fail "missing colon after key %s" key;
          (key, String.sub part (close + 2) (String.length part - close - 2)))
    !parts
  |> List.rev

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> fail "missing field %s" k

let as_int v = try int_of_string v with _ -> fail "bad int: %s" v
let as_float v = try float_of_string v with _ -> fail "bad float: %s" v

let as_bool = function
  | "true" -> true
  | "false" -> false
  | v -> fail "bad bool: %s" v

let as_string v =
  let n = String.length v in
  if n < 2 || v.[0] <> '"' || v.[n - 1] <> '"' then fail "bad string: %s" v
  else String.sub v 1 (n - 2)

let strip_brackets v =
  let n = String.length v in
  if n < 2 || v.[0] <> '[' || v.[n - 1] <> ']' then fail "bad array: %s" v
  else String.sub v 1 (n - 2)

let as_int_list v =
  let body = strip_brackets v in
  if String.equal body "" then []
  else List.map (fun p -> as_int (String.trim p)) (String.split_on_char ',' body)

let as_bundles v =
  let body = strip_brackets v in
  if String.equal body "" then []
  else begin
    (* split on depth-0 commas within the outer array *)
    let parts = ref [] in
    let start = ref 0 in
    let depth = ref 0 in
    String.iteri
      (fun i c ->
        match c with
        | '[' -> incr depth
        | ']' -> decr depth
        | ',' when !depth = 0 ->
            parts := String.sub body !start (i - !start) :: !parts;
            start := i + 1
        | _ -> ())
      body;
    parts := String.sub body !start (String.length body - !start) :: !parts;
    List.rev_map
      (fun p ->
        match as_int_list (String.trim p) with
        | seq :: ids -> (seq, ids)
        | [] -> fail "empty bundle")
      !parts
  end

let parse_line s =
  try
    let fields = split_fields (String.trim s) in
    let at = as_float (field fields "t") in
    let int k = as_int (field fields k) in
    let str k = as_string (field fields k) in
    let wire () = (int "src", int "dst", str "tag", int "bytes") in
    let ev =
      match as_string (field fields "ev") with
      | "send" ->
          let src, dst, tag, bytes = wire () in
          Event.Send { src; dst; tag; bytes }
      | "deliver" ->
          let src, dst, tag, bytes = wire () in
          Event.Deliver { src; dst; tag; bytes }
      | "drop" ->
          let src, dst, tag, bytes = wire () in
          let reason =
            match Event.drop_reason_of_label (str "reason") with
            | Some r -> r
            | None -> fail "bad drop reason"
          in
          Event.Drop { src; dst; tag; bytes; reason }
      | "span_begin" -> Event.Span_begin { node = int "node"; key = str "key" }
      | "span_end" ->
          Event.Span_end
            { node = int "node"; key = str "key"; ok = as_bool (field fields "ok") }
      | "commit" ->
          Event.Commit_append
            {
              node = int "node";
              seq = int "seq";
              count = int "count";
              ids = as_int_list (field fields "ids");
            }
      | "suspect" -> Event.Suspect { node = int "node"; peer = int "peer" }
      | "clear" -> Event.Clear { node = int "node"; peer = int "peer" }
      | "expose" -> Event.Expose { node = int "node"; peer = int "peer" }
      | "violation" ->
          Event.Violation
            { node = int "node"; peer = int "peer"; kind = str "kind" }
      | "block" ->
          Event.Block_accept
            {
              node = int "node";
              creator = int "creator";
              height = int "height";
              bundles = as_bundles (field fields "bundles");
              omitted = as_int_list (field fields "omitted");
              appendix = int "appendix";
            }
      | "crash" -> Event.Crash { node = int "node" }
      | "restart" -> Event.Restart { node = int "node" }
      | "conn_down" ->
          Event.Conn_down
            { node = int "node"; peer = int "peer"; reason = str "reason" }
      | "conn_up" ->
          Event.Conn_up
            { node = int "node"; peer = int "peer"; attempts = int "attempts" }
      | "unknown_tag" ->
          Event.Unknown_tag
            { node = int "node"; src = int "src"; tag = str "tag" }
      | k -> fail "unknown event kind %s" k
    in
    Ok { Trace.at; ev }
  with Fail msg -> Error msg

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        if String.equal (String.trim l) "" then go acc (lineno + 1) rest
        else begin
          match parse_line l with
          | Ok e -> go (e :: acc) (lineno + 1) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  go [] 1 lines
