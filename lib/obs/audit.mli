(** Replay-driven invariant checking over a trace.

    [check] replays a chronological event stream through small state
    machines, one per accountability invariant of the protocol:

    - {b commit-monotonic} — a node's commitment log only ever extends:
      bundle sequence numbers advance by exactly one, the id counter
      grows by exactly the bundle size, and no short id is committed
      twice. A regressing or forking head shows up here.
    - {b canonical-order} — every block bundle must replay the creator's
      committed bundle of the same sequence number: ids not committed at
      that seq are injections; committed ids neither included nor
      explicitly declared omitted are silent censorship. The check is
      suppressed for creators exposed anywhere in the trace — the
      protocol caught them, which is the desired outcome.
    - {b suspicion-liveness} — a suspicion of a node that is up must
      eventually be resolved (cleared, withdrawn, or turned into an
      exposure). Standing suspicions are judged at the horizon: if both
      observer and suspect are up and more than [grace] seconds have
      passed since the suspicion was raised (or since the suspect's last
      restart, whichever is later), the {e suspect} is named guilty —
      an up node that stays suspected is exactly an unaccountable one.
    - {b bandwidth-conservation} — per message tag, charged sends must
      equal deliveries plus faults: [sent = delivered + dropped(loss |
      down | in_flight)], in both messages and bytes. Refusals
      ({!Event.Blocked}) are never charged and are excluded.
    - {b span-balance} — a [Span_end] without a matching open span, or
      a second [Span_begin] for an already-open (node, key), is a
      malformed trace. Spans still open at the end of the stream are
      tolerated (the horizon can cut an exchange) and only counted.

    Events must be in non-decreasing time order (they are, when they
    come from a {!Trace} filled by the simulator). *)

type violation = {
  at : float;
  node : int;  (** the guilty party (or [-1] for stream-level faults) *)
  invariant : string;
      (** ["commit-monotonic"], ["canonical-order"],
          ["suspicion-liveness"], ["bandwidth-conservation"] or
          ["span-balance"] *)
  detail : string;
}

type report = {
  violations : violation list;  (** in detection order *)
  events_checked : int;
  unclosed_spans : int;  (** open at end of stream — tolerated *)
  standing_suspicions : int;
      (** suspicions unresolved at the horizon but excused (an endpoint
          down, or within the grace window) *)
}

val check : ?grace:float -> ?horizon:float -> Trace.entry list -> report
(** [grace] defaults to 12 s (comfortably above the worst-case clear
    path: one reconciliation round, a full retry escalation and a
    withdrawal broadcast). [horizon] defaults to the last event's
    timestamp; pass the run's actual horizon when in-flight flush events
    extend past it. *)

val check_trace : ?grace:float -> ?horizon:float -> Trace.t -> report
(** [check] on the retained events. Adds a stream-level violation when
    the trace evicted events (the replay would be unsound). *)

val ok : report -> bool
val violation_to_string : violation -> string
val summary : report -> string
(** One line: pass/fail, counts. *)
