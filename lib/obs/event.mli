(** Typed trace events.

    Every event names nodes by their dense network index (the simulator
    id); [-1] marks an identity the emitter could not resolve. Events
    carry only plain data — no closures, no mutable state — so a trace
    can be exported, parsed back and replayed by {!Audit} without loss.

    The wire-level events ([Send]/[Deliver]/[Drop]) mirror the
    accounting of [Lo_net.Network]: a [Send] is emitted exactly when the
    engine charges bytes for a message, and every such message is later
    matched by exactly one [Deliver] or one [Drop] — the bandwidth
    conservation invariant {!Audit} checks. Messages refused before any
    accounting (delivery filter, down endpoint, partition) appear as
    [Drop] with reason {!Blocked} and no matching [Send]. *)

type drop_reason =
  | Blocked  (** refused at send time: filter, down endpoint, partition *)
  | Loss  (** random loss (global or per-link rate) *)
  | Down  (** destination was down when the message arrived *)
  | In_flight  (** still queued when the run's horizon cut delivery *)

type t =
  | Send of { src : int; dst : int; tag : string; bytes : int }
  | Deliver of { src : int; dst : int; tag : string; bytes : int }
  | Drop of {
      src : int;
      dst : int;
      tag : string;
      bytes : int;
      reason : drop_reason;
    }
  | Span_begin of { node : int; key : string }
      (** an operation with duration opened (e.g. one reconciliation
          exchange; key ["recon:<peer>"]) *)
  | Span_end of { node : int; key : string; ok : bool }
  | Commit_append of { node : int; seq : int; count : int; ids : int list }
      (** [node] appended bundle [seq] to its primary commitment log;
          [count] is the log's id counter after the append and [ids] the
          short ids of the bundle *)
  | Suspect of { node : int; peer : int }
  | Clear of { node : int; peer : int }  (** suspicion resolved/withdrawn *)
  | Expose of { node : int; peer : int }  (** [node] exposed [peer] *)
  | Violation of { node : int; peer : int; kind : string }
      (** [node]'s inspector flagged a block by creator [peer] *)
  | Block_accept of {
      node : int;
      creator : int;
      height : int;
      bundles : (int * int list) list;
          (** (creator bundle seq, short ids in block order) *)
      omitted : int list;  (** short ids explicitly declared omitted *)
      appendix : int;
    }
  | Crash of { node : int }
  | Restart of { node : int }
  | Conn_down of { node : int; peer : int; reason : string }
      (** a live transport lost its established connection to [peer]
          ([reason] e.g. ["eof"], ["reset"], ["stalled"], ["cut"]);
          informational — bandwidth accounting happens via [Drop] *)
  | Conn_up of { node : int; peer : int; attempts : int }
      (** a live transport (re)established its connection to [peer]
          after [attempts] connect attempts *)
  | Unknown_tag of { node : int; src : int; tag : string }
      (** [node] received a message whose tag belongs to no subscribed
          protocol (e.g. a peer speaking a newer protocol version);
          the message was counted and discarded, not silently lost *)

val kind : t -> string
(** Stable lowercase label per constructor (the JSONL ["ev"] field). *)

val drop_reason_label : drop_reason -> string
val drop_reason_of_label : string -> drop_reason option
