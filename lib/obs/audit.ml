type violation = {
  at : float;
  node : int;
  invariant : string;
  detail : string;
}

type report = {
  violations : violation list;
  events_checked : int;
  unclosed_spans : int;
  standing_suspicions : int;
}

type tag_acc = {
  mutable sent_m : int;
  mutable sent_b : int;
  mutable out_m : int;  (* delivered + dropped *)
  mutable out_b : int;
}

let check ?(grace = 12.0) ?horizon entries =
  let violations = ref [] in
  let add at node invariant detail =
    violations := { at; node; invariant; detail } :: !violations
  in
  (* Exposures anywhere in the trace suppress the canonical-order check
     for that creator: a caught violator is the protocol working. *)
  let ever_exposed = Hashtbl.create 8 in
  List.iter
    (fun { Trace.ev; _ } ->
      match ev with
      | Event.Expose { peer; _ } when peer >= 0 ->
          Hashtbl.replace ever_exposed peer ()
      | _ -> ())
    entries;
  (* commit-monotonic *)
  let heads = Hashtbl.create 64 in (* node -> (seq, count) *)
  let committed = Hashtbl.create 4096 in (* (node, id) -> () *)
  let bundle_of = Hashtbl.create 1024 in (* (node, seq) -> ids *)
  (* canonical-order *)
  let judged = Hashtbl.create 256 in (* (creator, height, seq) -> () *)
  (* suspicion-liveness *)
  let exposed_so_far = Hashtbl.create 8 in
  let standing = Hashtbl.create 64 in (* (observer, suspect) -> raised_at *)
  let down = Hashtbl.create 16 in
  let last_restart = Hashtbl.create 16 in
  (* bandwidth-conservation *)
  let tags = Hashtbl.create 16 in
  let tag_acc tag =
    match Hashtbl.find_opt tags tag with
    | Some a -> a
    | None ->
        let a = { sent_m = 0; sent_b = 0; out_m = 0; out_b = 0 } in
        Hashtbl.add tags tag a;
        a
  in
  (* span-balance *)
  let open_spans = Hashtbl.create 64 in
  let last_at = ref 0. in
  List.iter
    (fun { Trace.at; ev } ->
      if at > !last_at then last_at := at;
      match ev with
      | Event.Send { tag; bytes; _ } ->
          let a = tag_acc tag in
          a.sent_m <- a.sent_m + 1;
          a.sent_b <- a.sent_b + bytes
      | Event.Deliver { tag; bytes; _ } ->
          let a = tag_acc tag in
          a.out_m <- a.out_m + 1;
          a.out_b <- a.out_b + bytes
      | Event.Drop { reason = Event.Blocked; _ } -> ()
      | Event.Drop { tag; bytes; _ } ->
          let a = tag_acc tag in
          a.out_m <- a.out_m + 1;
          a.out_b <- a.out_b + bytes
      | Event.Commit_append { node; seq; count; ids } -> begin
          let n_ids = List.length ids in
          (match Hashtbl.find_opt heads node with
          | Some (prev_seq, prev_count) ->
              if seq <> prev_seq + 1 then
                add at node "commit-monotonic"
                  (Printf.sprintf "bundle seq %d after head %d" seq prev_seq);
              if count <> prev_count + n_ids then
                add at node "commit-monotonic"
                  (Printf.sprintf
                     "counter %d after %d ids on top of %d (expected %d)"
                     count n_ids prev_count (prev_count + n_ids));
              Hashtbl.replace heads node (seq, count)
          | None ->
              (* First sighting: a trace attached at birth sees seq 1;
                 judge it. A mid-stream attach is adopted as baseline. *)
              if seq = 1 && count <> n_ids then
                add at node "commit-monotonic"
                  (Printf.sprintf "first bundle: counter %d for %d ids" count
                     n_ids);
              Hashtbl.replace heads node (seq, count));
          List.iter
            (fun id ->
              if Hashtbl.mem committed (node, id) then
                add at node "commit-monotonic"
                  (Printf.sprintf "short id %d committed twice" id)
              else Hashtbl.add committed (node, id) ())
            ids;
          Hashtbl.replace bundle_of (node, seq) ids
        end
      | Event.Block_accept { creator; height; bundles; omitted; _ } ->
          if creator >= 0 && not (Hashtbl.mem ever_exposed creator) then
            List.iter
              (fun (seq, block_ids) ->
                if not (Hashtbl.mem judged (creator, height, seq)) then begin
                  Hashtbl.add judged (creator, height, seq) ();
                  match Hashtbl.find_opt bundle_of (creator, seq) with
                  | None -> () (* creator's commit not in view; can't judge *)
                  | Some committed_ids ->
                      List.iter
                        (fun id ->
                          if not (List.mem id committed_ids) then
                            add at creator "canonical-order"
                              (Printf.sprintf
                                 "block h=%d bundle %d includes uncommitted id \
                                  %d without exposure"
                                 height seq id))
                        block_ids;
                      List.iter
                        (fun id ->
                          if
                            (not (List.mem id block_ids))
                            && not (List.mem id omitted)
                          then
                            add at creator "canonical-order"
                              (Printf.sprintf
                                 "block h=%d bundle %d silently drops \
                                  committed id %d"
                                 height seq id))
                        committed_ids
                end)
              bundles
      | Event.Suspect { node; peer } ->
          if peer >= 0 && not (Hashtbl.mem exposed_so_far peer) then begin
            if not (Hashtbl.mem standing (node, peer)) then
              Hashtbl.add standing (node, peer) at
          end
      | Event.Clear { node; peer } -> Hashtbl.remove standing (node, peer)
      | Event.Expose { peer; _ } ->
          if peer >= 0 then begin
            Hashtbl.replace exposed_so_far peer ();
            let stale =
              Hashtbl.fold
                (fun ((_, s) as k) _ acc -> if s = peer then k :: acc else acc)
                standing []
            in
            List.iter (Hashtbl.remove standing) stale
          end
      | Event.Crash { node } -> Hashtbl.replace down node ()
      | Event.Restart { node } ->
          Hashtbl.remove down node;
          Hashtbl.replace last_restart node at
      | Event.Span_begin { node; key } ->
          if Hashtbl.mem open_spans (node, key) then
            add at node "span-balance"
              (Printf.sprintf "span %s begun while already open" key)
          else Hashtbl.add open_spans (node, key) ()
      | Event.Span_end { node; key; _ } ->
          if Hashtbl.mem open_spans (node, key) then
            Hashtbl.remove open_spans (node, key)
          else
            add at node "span-balance"
              (Printf.sprintf "span %s ended without begin" key)
      | Event.Violation _ | Event.Unknown_tag _ | Event.Conn_down _
      | Event.Conn_up _ ->
          ())
    entries;
  let h = match horizon with Some h -> h | None -> !last_at in
  (* Judge standing suspicions at the horizon. *)
  let standing_list =
    Hashtbl.fold (fun (o, s) at acc -> (o, s, at) :: acc) standing []
    |> List.sort compare
  in
  let excused = ref 0 in
  List.iter
    (fun (observer, suspect, raised_at) ->
      if Hashtbl.mem down suspect || Hashtbl.mem down observer then
        incr excused
      else begin
        let since =
          match Hashtbl.find_opt last_restart suspect with
          | Some r when r > raised_at -> r
          | _ -> raised_at
        in
        if h -. since > grace then
          add h suspect "suspicion-liveness"
            (Printf.sprintf
               "node %d still suspects %d at horizon (standing %.1fs > \
                grace %.1fs)"
               observer suspect (h -. since) grace)
        else incr excused
      end)
    standing_list;
  (* Bandwidth conservation per tag. *)
  Hashtbl.fold (fun tag a acc -> (tag, a) :: acc) tags []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)
  |> List.iter (fun (tag, a) ->
         if a.sent_m <> a.out_m || a.sent_b <> a.out_b then
           add h (-1) "bandwidth-conservation"
             (Printf.sprintf
                "tag %s: %d msgs/%d B sent vs %d msgs/%d B delivered+dropped"
                tag a.sent_m a.sent_b a.out_m a.out_b));
  {
    violations = List.rev !violations;
    events_checked = List.length entries;
    unclosed_spans = Hashtbl.length open_spans;
    standing_suspicions = !excused;
  }

let check_trace ?grace ?horizon trace =
  let report = check ?grace ?horizon (Trace.events trace) in
  if Trace.evicted trace > 0 then
    {
      report with
      violations =
        {
          at = 0.;
          node = -1;
          invariant = "truncated-trace";
          detail =
            Printf.sprintf
              "%d events evicted from the ring; replay is unsound — raise \
               the capacity"
              (Trace.evicted trace);
        }
        :: report.violations;
    }
  else report

let ok r = r.violations = []

let violation_to_string v =
  Printf.sprintf "[%9.3f] %-22s node %d: %s" v.at v.invariant v.node v.detail

let summary r =
  Printf.sprintf
    "audit: %s — %d violation(s) over %d events (%d unclosed span(s), %d \
     standing suspicion(s) excused)"
    (if ok r then "PASS" else "FAIL")
    (List.length r.violations) r.events_checked r.unclosed_spans
    r.standing_suspicions
