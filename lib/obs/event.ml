type drop_reason = Blocked | Loss | Down | In_flight

type t =
  | Send of { src : int; dst : int; tag : string; bytes : int }
  | Deliver of { src : int; dst : int; tag : string; bytes : int }
  | Drop of {
      src : int;
      dst : int;
      tag : string;
      bytes : int;
      reason : drop_reason;
    }
  | Span_begin of { node : int; key : string }
  | Span_end of { node : int; key : string; ok : bool }
  | Commit_append of { node : int; seq : int; count : int; ids : int list }
  | Suspect of { node : int; peer : int }
  | Clear of { node : int; peer : int }
  | Expose of { node : int; peer : int }
  | Violation of { node : int; peer : int; kind : string }
  | Block_accept of {
      node : int;
      creator : int;
      height : int;
      bundles : (int * int list) list;
      omitted : int list;
      appendix : int;
    }
  | Crash of { node : int }
  | Restart of { node : int }
  | Conn_down of { node : int; peer : int; reason : string }
  | Conn_up of { node : int; peer : int; attempts : int }
  | Unknown_tag of { node : int; src : int; tag : string }

let kind = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Commit_append _ -> "commit"
  | Suspect _ -> "suspect"
  | Clear _ -> "clear"
  | Expose _ -> "expose"
  | Violation _ -> "violation"
  | Block_accept _ -> "block"
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Conn_down _ -> "conn_down"
  | Conn_up _ -> "conn_up"
  | Unknown_tag _ -> "unknown_tag"

let drop_reason_label = function
  | Blocked -> "blocked"
  | Loss -> "loss"
  | Down -> "down"
  | In_flight -> "inflight"

let drop_reason_of_label = function
  | "blocked" -> Some Blocked
  | "loss" -> Some Loss
  | "down" -> Some Down
  | "inflight" -> Some In_flight
  | _ -> None
