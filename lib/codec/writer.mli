(** Append-only binary encoder.

    Every protocol message in the reproduction is rendered through this
    module, which makes the bandwidth figures exact: the simulator
    charges each message its encoded size in bytes. *)

type t

val create : ?initial_size:int -> unit -> t
val length : t -> int

val u8 : t -> int -> unit
(** One byte; the value must be in [\[0, 255\]]. *)

val u16 : t -> int -> unit
(** Two bytes, big-endian. *)

val u32 : t -> int -> unit
(** Four bytes, big-endian; value in [\[0, 2^32)]. *)

val u64 : t -> int -> unit
(** Eight bytes, big-endian; OCaml ints are 63-bit so the top bit is
    always zero. *)

val varint : t -> int -> unit
(** LEB128-style variable-length unsigned integer (1 byte for values
    below 128; protocol counters are usually tiny). *)

val bool : t -> bool -> unit

val fixed : t -> string -> unit
(** Raw bytes, no length prefix (for fixed-size fields like hashes). *)

val bytes : t -> string -> unit
(** Varint length prefix followed by the bytes. *)

val list : t -> ('a -> unit) -> 'a list -> unit
(** Varint count followed by each element encoded by the callback. *)

val contents : t -> string

val reset : t -> unit
(** Drop the contents, keep the allocated storage — the pooled-buffer
    encode path reuses one writer across messages. *)
