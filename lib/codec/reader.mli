(** Binary decoder matching {!Writer}.

    All decoding raises {!Malformed} on truncated or invalid input; the
    protocol layer treats such input as evidence of a faulty sender.

    A reader is a {e view}: an underlying string plus a cursor and an
    exclusive bound. {!of_substring} and {!sub_view} narrow the view
    without copying the bytes, which is what the batched wire-decode
    path uses to parse many frames/transactions out of one receive
    buffer. *)

exception Malformed of string

type t

val of_string : string -> t

val of_substring : string -> pos:int -> len:int -> t
(** A view of [len] bytes of [data] starting at [pos] — no copy.
    @raise Invalid_argument on an out-of-range window. *)

val remaining : t -> int
val at_end : t -> bool

val pos : t -> int
(** Current absolute offset into the underlying string. Useful with
    {!slice} to recover the exact wire bytes of a decoded span. *)

val slice : t -> from:int -> until:int -> string
(** The underlying bytes of [\[from, until)] (absolute offsets, as
    returned by {!pos}); [until] may not exceed the view's bound.
    @raise Invalid_argument on an out-of-range span. *)

val sub_view : t -> int -> t
(** [sub_view t n] consumes the next [n] bytes of [t] and returns a
    reader over exactly those bytes, sharing the underlying string.
    @raise Malformed if fewer than [n] bytes remain. *)

val clone : t -> t
(** An independent cursor over the same view (shared bytes). *)

val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val u64 : t -> int
val varint : t -> int
val bool : t -> bool
val fixed : t -> int -> string
val bytes : t -> string
val list : t -> (t -> 'a) -> 'a list

val expect_end : t -> unit
(** @raise Malformed if bytes remain before the view's bound. *)
