type t = Buffer.t

let create ?(initial_size = 64) () = Buffer.create initial_size
let length = Buffer.length

let u8 t v =
  if v < 0 || v > 0xFF then invalid_arg "Writer.u8: out of range";
  Buffer.add_char t (Char.chr v)

let u16 t v =
  if v < 0 || v > 0xFFFF then invalid_arg "Writer.u16: out of range";
  Buffer.add_char t (Char.chr (v lsr 8));
  Buffer.add_char t (Char.chr (v land 0xFF))

let u32 t v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Writer.u32: out of range";
  Buffer.add_char t (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char t (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char t (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char t (Char.chr (v land 0xFF))

let u64 t v =
  if v < 0 then invalid_arg "Writer.u64: negative";
  for i = 7 downto 0 do
    Buffer.add_char t (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let rec varint t v =
  if v < 0 then invalid_arg "Writer.varint: negative"
  else if v < 0x80 then Buffer.add_char t (Char.chr v)
  else begin
    Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
    varint t (v lsr 7)
  end

let bool t b = u8 t (if b then 1 else 0)
let fixed t s = Buffer.add_string t s

let bytes t s =
  varint t (String.length s);
  Buffer.add_string t s

let list t encode items =
  varint t (List.length items);
  List.iter encode items

let contents = Buffer.contents
let reset = Buffer.clear
