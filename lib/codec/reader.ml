exception Malformed of string

(* [pos] and [limit] are absolute offsets into [data]; a reader over a
   whole string has [limit = String.length data], a sub-view narrows
   both without copying. *)
type t = { data : string; mutable pos : int; limit : int }

let of_string data = { data; pos = 0; limit = String.length data }

let of_substring data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Reader.of_substring";
  { data; pos; limit = pos + len }

let remaining t = t.limit - t.pos
let at_end t = remaining t = 0
let pos t = t.pos

let need t n what =
  if remaining t < n then raise (Malformed ("truncated " ^ what))

let slice t ~from ~until =
  if from < 0 || until < from || until > t.limit then
    invalid_arg "Reader.slice";
  String.sub t.data from (until - from)

let sub_view t n =
  need t n "sub-view";
  let v = { data = t.data; pos = t.pos; limit = t.pos + n } in
  t.pos <- t.pos + n;
  v

let clone t = { data = t.data; pos = t.pos; limit = t.limit }

let u8 t =
  need t 1 "u8";
  let v = Char.code t.data.[t.pos] in
  t.pos <- t.pos + 1;
  v

let u16 t =
  need t 2 "u16";
  let v = (Char.code t.data.[t.pos] lsl 8) lor Char.code t.data.[t.pos + 1] in
  t.pos <- t.pos + 2;
  v

let u32 t =
  need t 4 "u32";
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code t.data.[t.pos + i]
  done;
  t.pos <- t.pos + 4;
  !v

let u64 t =
  need t 8 "u64";
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code t.data.[t.pos + i]
  done;
  if !v < 0 then raise (Malformed "u64 overflows OCaml int");
  t.pos <- t.pos + 8;
  !v

let varint t =
  let rec go shift acc =
    if shift > 56 then raise (Malformed "varint too long");
    need t 1 "varint";
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let bool t =
  match u8 t with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Malformed "bool")

let fixed t n =
  need t n "fixed bytes";
  let s = String.sub t.data t.pos n in
  t.pos <- t.pos + n;
  s

let bytes t =
  let n = varint t in
  fixed t n

let list t decode =
  let n = varint t in
  if n > remaining t then raise (Malformed "list count exceeds input");
  List.init n (fun _ -> decode t)

let expect_end t = if not (at_end t) then raise (Malformed "trailing bytes")
