module Trace = Lo_obs.Trace
module Event = Lo_obs.Event
module Audit = Lo_obs.Audit
module Query = Lo_obs.Query
module Runner = Lo_sim.Runner
module Sim = Lo_sim.Scenario
open Lo_core

type failure = { oracle : string; detail : string }
type detection = { adversary : int; via : string; at : float }

type verdict = {
  failures : failure list;
  detections : detection list;
  events_checked : int;
  required_detections : int;
}

let block_kinds = [ "block-inject"; "block-reorder"; "block-censor" ]

(* A deviation carries a protocol obligation only when the network had
   a chance to see it with [slack] seconds to spare: a silently dropped
   commit request (recorded at receipt, so the requester is already
   waiting), or a tampered block some honest node accepted. Stage-I/II
   censorship and an unshown equivocation fork are invisible by
   construction — tracked, never required. *)
let observable ~slack ~horizon ~is_adv ~entries ~idx (at, dkind, height) =
  if String.equal dkind "silent-drop" then at <= horizon -. slack
  else if List.mem dkind block_kinds then
    List.exists
      (fun (t0, node, h) ->
        (not (is_adv node)) && Some h = height && t0 <= horizon -. slack)
      (Query.accepts_of_creator entries ~creator:idx)
  else false

let observable_deviations ?(slack = 15.) ~horizon ~is_adv ~entries ~node ~idx
    () =
  List.filter
    (observable ~slack ~horizon ~is_adv ~entries ~idx)
    (Node.deviations node)

let judge ~adversaries ~horizon ?(slack = 15.) ~run ~trace () =
  let d = run.Runner.deployment in
  let dir = d.Sim.directory in
  let nodes = d.Sim.nodes in
  let n = Array.length nodes in
  let is_adv i = List.mem_assoc i adversaries in
  let index_of id = Directory.index_of dir id in
  let entries = Trace.events trace in
  let failures = ref [] in
  let detections = ref [] in
  let fail oracle detail = failures := { oracle; detail } :: !failures in
  let detect adversary via at = detections := { adversary; via; at } :: !detections in

  (* Layer 1: the replay audit. A violation naming a configured
     adversary is the protocol catching it — reclassify as detection;
     anything blaming an honest node (or the stream itself) fails. *)
  let report = Audit.check_trace ~horizon trace in
  List.iter
    (fun (v : Audit.violation) ->
      if v.node >= 0 && is_adv v.node then
        detect v.node ("audit:" ^ v.invariant) v.at
      else fail "audit" (Audit.violation_to_string v))
    report.violations;

  (* Layer 2: no-honest-exposure — both the exposure events in the
     trace and every node's final accountability state. *)
  let seen_exposure = Hashtbl.create 16 in
  let honest_exposure ~accuser ~accused ~where =
    if not (Hashtbl.mem seen_exposure (accuser, accused)) then begin
      Hashtbl.add seen_exposure (accuser, accused) ();
      fail "no-honest-exposure"
        (Printf.sprintf "node %d exposed honest node %d (%s)" accuser accused
           where)
    end
  in
  List.iter
    (fun (at, accuser, accused) ->
      if is_adv accused then detect accused "expose" at
      else honest_exposure ~accuser ~accused ~where:"trace")
    (Query.exposures entries);
  for i = 0 to n - 1 do
    List.iter
      (fun (peer_id, _ev) ->
        match index_of peer_id with
        | Some p when not (is_adv p) ->
            honest_exposure ~accuser:i ~accused:p ~where:"final state"
        | _ -> ())
      (Accountability.exposed_peers (Node.accountability nodes.(i)))
  done;

  (* Layer 3: evidence-transferability — every filed exposure must
     verify standalone and accuse the peer it is filed under. *)
  for i = 0 to n - 1 do
    List.iter
      (fun (peer_id, ev) ->
        if not (Evidence.verify d.Sim.scheme ev) then
          fail "evidence-transferability"
            (Printf.sprintf "node %d holds unverifiable evidence against %s"
               i (Evidence.describe ev))
        else if not (String.equal (Evidence.accused ev) peer_id) then
          fail "evidence-transferability"
            (Printf.sprintf
               "node %d filed evidence under the wrong peer (%s)" i
               (Evidence.describe ev)))
      (Accountability.exposed_peers (Node.accountability nodes.(i)))
  done;

  (* Layer 4: detection-completeness against each adversary's own
     ground-truth deviation log. *)
  let detection_of idx =
    List.find_map
      (fun { Trace.at; ev } ->
        let hit node via =
          if node <> idx && not (is_adv node) then Some (at, via) else None
        in
        match ev with
        | Event.Suspect { node; peer } when peer = idx -> hit node "suspect"
        | Event.Expose { node; peer } when peer = idx -> hit node "expose"
        | Event.Violation { node; peer; _ } when peer = idx ->
            hit node "violation"
        | _ -> None)
      entries
  in
  let audit_detected idx =
    List.exists (fun (v : Audit.violation) -> v.node = idx) report.violations
  in
  let required = ref 0 in
  List.iter
    (fun (idx, _kind) ->
      let caught = detection_of idx in
      (match caught with
      | Some (at, via) -> detect idx via at
      | None -> ());
      List.iter
        (fun (at, dkind, height) ->
          incr required;
          if caught = None && not (audit_detected idx) then
            fail "detection-completeness"
              (Printf.sprintf
                 "adversary %d deviated (%s%s at %.2f) but was never \
                  suspected or exposed"
                 idx dkind
                 (match height with
                 | Some h -> Printf.sprintf " h=%d" h
                 | None -> "")
                 at))
        (observable_deviations ~slack ~horizon ~is_adv ~entries
           ~node:nodes.(idx) ~idx ()))
    adversaries;

  (* Layer 5: cross-node prefix agreement on honest owners' snapshots. *)
  let snapshots = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    if not (is_adv i) then
      List.iter
        (fun (owner, seq, dg) ->
          match index_of owner with
          | Some o when not (is_adv o) -> (
              match Hashtbl.find_opt snapshots (owner, seq) with
              | None -> Hashtbl.add snapshots (owner, seq) (dg, i)
              | Some (dg0, holder0) ->
                  if not (Commitment.equal_content dg0 dg) then
                    fail "prefix-agreement"
                      (Printf.sprintf
                         "nodes %d and %d hold different snapshots of \
                          honest node %d at seq %d"
                         holder0 i o seq))
          | _ -> ())
        (Node.digest_snapshots nodes.(i))
  done;

  (* Deterministic order: failures by (oracle, detail); detections by
     (adversary, time), earliest per adversary first. *)
  let failures =
    List.sort_uniq
      (fun a b ->
        match String.compare a.oracle b.oracle with
        | 0 -> String.compare a.detail b.detail
        | c -> c)
      !failures
  in
  let detections =
    List.sort
      (fun a b ->
        match compare a.adversary b.adversary with
        | 0 -> compare a.at b.at
        | c -> c)
      !detections
  in
  {
    failures;
    detections;
    events_checked = report.events_checked;
    required_detections = !required;
  }

let failures_to_string failures =
  String.concat "\n"
    (List.map (fun f -> Printf.sprintf "[%s] %s" f.oracle f.detail) failures)
