(** The oracle stack: everything a finished run is judged against.

    Layered on top of the five replay invariants of {!Lo_obs.Audit} are
    four protocol-level oracles that need {e ground truth} — the list of
    nodes that were configured to misbehave — which the audit alone
    cannot have:

    - {b no-honest-exposure} (accuracy): no exposure, in the trace or in
      any node's final accountability state, may accuse a node that was
      not a configured adversary.
    - {b detection-completeness}: every {e observable} adversary
      deviation (from {!Lo_core.Node.deviations}, the adversary's own
      ground-truth log) must eventually be suspected, exposed or flagged
      by the audit. Observable means the network had a chance to see it
      with [slack] seconds left before the horizon: a silently dropped
      commit request, or a tampered block an honest node accepted.
      Stage-I/II censorship and a not-yet-shown equivocation fork leave
      no protocol obligation, so they are tracked but never required.
    - {b evidence-transferability}: every exposure held by any node must
      carry evidence that {!Lo_core.Evidence.verify} accepts standalone
      and that accuses the peer it is filed under.
    - {b prefix-agreement}: two honest nodes may never retain
      content-different commitment snapshots of the same honest owner
      and sequence number.

    Audit violations that {e name a configured adversary} are the
    protocol working, not a failure — they are reclassified as
    detections. Everything else fails the run. *)

type failure = { oracle : string; detail : string }

type detection = { adversary : int; via : string; at : float }
(** A configured adversary was caught: [via] says how (["suspect"],
    ["expose"], ["violation"] or ["audit:<invariant>"]). *)

type verdict = {
  failures : failure list;  (** empty = the run passed every oracle *)
  detections : detection list;  (** earliest per adversary first *)
  events_checked : int;
  required_detections : int;
      (** observable deviations the completeness oracle demanded *)
}

val judge :
  adversaries:(int * string) list ->
  horizon:float ->
  ?slack:float ->
  run:Lo_sim.Runner.run ->
  trace:Lo_obs.Trace.t ->
  unit ->
  verdict
(** [adversaries] is the ground truth as [(node index, kind label)] —
    crucially {e excluding} any hidden mutation (see
    {!Harness.mutations}), which is exactly how a mutated rule becomes
    an oracle failure. [slack] (default 15 s) is how much time before
    [horizon] a deviation must leave for detection to be demanded. *)

val failures_to_string : failure list -> string
(** One line per failure, deterministic order. *)

val observable_deviations :
  ?slack:float ->
  horizon:float ->
  is_adv:(int -> bool) ->
  entries:Lo_obs.Trace.entry list ->
  node:Lo_core.Node.t ->
  idx:int ->
  unit ->
  (float * string * int option) list
(** The subset of [node]'s ground-truth deviations that the
    completeness oracle would demand a detection for. Exposed so the
    mutation harness can tell a caught mutant from a vacuous run (the
    mutant never observably deviated). *)
