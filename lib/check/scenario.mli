(** Fuzz scenarios: plain, serialisable descriptions of one simulated
    deployment plus everything that can go wrong in it.

    A scenario is pure data — topology size, workload mix, fault-plan
    knobs, adversary assignment and schedule-perturbation knobs — and
    the run it describes is a deterministic function of that data (every
    random draw inside the run comes from [seed]). That gives the
    harness the two properties FoundationDB-style simulation testing
    rests on: any failure is replayable byte-for-byte from its JSON
    repro file, and any failing scenario can be {e shrunk} by proposing
    syntactically smaller scenarios and re-running them.

    All float fields are quantised to 3 decimals at generation time so
    the JSON round-trip ([of_json_string (to_json_string s) = Ok s]) is
    exact. *)

type adversary = { node : int; kind : string }
(** [kind] is an {!Lo_core.Adversary.kind_label} value (the predicate
    strategies use fixed, documented predicates — see {!Harness}). *)

type t = {
  seed : int;  (** root seed of the run; everything derives from it *)
  nodes : int;
  rate : float;  (** Poisson workload, tx/s *)
  duration : float;  (** workload window, seconds *)
  drain : float;  (** settle time after the workload, seconds *)
  loss : float;  (** base random loss rate *)
  block_interval : float;  (** block production period; 0 disables *)
  rotate_period : float;  (** neighbour-rotation period; 0 disables *)
  timeout : float;  (** request timeout (perturbation knob) *)
  retries : int;
  backoff : float;
  jitter : float;
  reconcile_period : float;
  digest_period : float;
  adversaries : adversary list;  (** ground-truth faulty miners *)
  churn : float;  (** crash rate /s; 0 disables *)
  partition : float;  (** partition window length; 0 disables *)
  burst : float;  (** loss-burst intensity; 0 disables *)
  spikes : bool;  (** background latency spikes *)
  degrades : bool;  (** background asymmetric link degradation *)
  mutation : string;
      (** oracle-sensitivity mode: a deviation hidden from the ground
          truth ([""] = none; see {!Harness.mutations}) that the oracle
          stack must nonetheless catch *)
}

val generate : seed:int -> index:int -> t
(** The [index]-th scenario of campaign [seed]: node count, workload,
    perturbation knobs, fault dimensions and adversary assignment all
    drawn from a generator seeded by [(seed, index)] alone. *)

val horizon : t -> float
(** [duration +. drain] — when the run ends. *)

val describe : t -> string
(** One line: the knobs that are actually on. *)

val to_json_string : t -> string
(** Single-line JSON object with fixed field order (the repro-file
    format of [lo fuzz --replay]). *)

val of_json_string : string -> (t, string) result

val shrink_candidates : t -> t list
(** Strictly simpler variants, in the order the shrinker should try
    them: drop fault dimensions first, then adversaries, then node
    count and duration, then workload coarseness (rate, blocks,
    rotation). The [mutation] field is never dropped — it is the defect
    under investigation. *)
