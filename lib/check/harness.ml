module Rng = Lo_net.Rng
module Fault_plan = Lo_net.Fault_plan
module Trace = Lo_obs.Trace
module Runner = Lo_sim.Runner
open Lo_core

type outcome = {
  scenario : Scenario.t;
  verdict : Oracle.verdict;
  events : int;
  mutant : int option;
  mutant_observable : int;
}

let failed o = o.verdict.Oracle.failures <> []

let behavior_of_kind kind =
  match kind with
  | "silent-censor" -> Adversary.Silent_censor
  | "tx-censor" -> Adversary.Tx_censor (fun tx -> tx.Tx.fee mod 2 = 0)
  | "block-injector" -> Adversary.Block_injector
  | "block-reorderer" -> Adversary.Block_reorderer
  | "blockspace-censor" ->
      Adversary.Blockspace_censor (fun tx -> tx.Tx.fee mod 2 = 0)
  | "equivocator" -> Adversary.Equivocator
  | k -> invalid_arg ("unknown adversary kind: " ^ k)

let mutations =
  [
    ("shuffle-skip", "skip the canonical intra-bundle shuffle (fee order)");
    ("inject", "smuggle uncommitted transactions into block bundles");
    ("omit", "silently censor matching transactions from blocks");
    ("silent", "stop answering protocol requests");
  ]

let mutation_behavior = function
  | "shuffle-skip" -> Adversary.Block_reorderer
  | "inject" -> Adversary.Block_injector
  | "omit" -> Adversary.Blockspace_censor (fun tx -> tx.Tx.fee mod 2 = 0)
  | "silent" -> Adversary.Silent_censor
  | m -> invalid_arg ("unknown mutation: " ^ m)

let mutation_needs_blocks = function
  | "shuffle-skip" | "inject" | "omit" -> true
  | _ -> false

let with_mutation (s : Scenario.t) name =
  ignore (mutation_behavior name);
  let block_interval =
    if mutation_needs_blocks name && s.Scenario.block_interval = 0. then 4.0
    else s.Scenario.block_interval
  in
  { s with Scenario.mutation = name; block_interval }

(* The hidden mutant runs on the highest-index node that is not already
   a configured adversary — deterministic, and topology-safe because it
   is still counted malicious when edges are laid. *)
let mutant_node (s : Scenario.t) =
  if s.Scenario.mutation = "" then None
  else
    let taken = List.map (fun a -> a.Scenario.node) s.Scenario.adversaries in
    let rec pick i = if List.mem i taken then pick (i - 1) else i in
    Some (pick (s.Scenario.nodes - 1))

let execute (s : Scenario.t) =
  let open Scenario in
  let n = s.nodes in
  let mutant = mutant_node s in
  let assigned = Array.make n Adversary.Honest in
  List.iter
    (fun a -> assigned.(a.node) <- behavior_of_kind a.kind)
    s.adversaries;
  (match mutant with
  | Some m -> assigned.(m) <- mutation_behavior s.mutation
  | None -> ());
  let malicious = Array.map (fun b -> b <> Adversary.Honest) assigned in
  let trace = Trace.create () in
  let config c =
    {
      c with
      Node.request_timeout = s.timeout;
      max_retries = s.retries;
      retry_backoff = s.backoff;
      retry_jitter = s.jitter;
      reconcile_period = s.reconcile_period;
      digest_share_period = s.digest_period;
    }
  in
  let plan =
    let rng = Rng.create ((s.seed * 7919) + 101) in
    Fault_plan.merge
      [
        (if s.churn > 0. then
           Fault_plan.churn ~rng ~n ~rate:s.churn ~mean_down:1.5
             ~until:s.duration
         else []);
        (if s.partition > 0. then
           Fault_plan.partitions ~rng ~n ~period:2.5 ~duration:s.partition
             ~until:s.duration
         else []);
        (if s.burst > 0. then
           Fault_plan.loss_bursts ~rng ~rate:s.burst ~period:3.0 ~duration:1.0
             ~until:s.duration
         else []);
        (if s.spikes then
           Fault_plan.latency_spikes ~rng ~n ~k:(max 1 (n / 8)) ~extra:0.25
             ~period:4.0 ~duration:2.0 ~until:s.duration
         else []);
        (if s.degrades then
           Fault_plan.link_degrades ~rng ~n ~loss:0.5 ~extra_delay:0.2
             ~period:3.0 ~duration:2.0 ~until:s.duration
         else []);
      ]
  in
  let scale =
    {
      Runner.nodes = n;
      reps = 1;
      rate = s.rate;
      duration = s.duration;
      seed = s.seed;
    }
  in
  (* Uniform leader election rarely hands a specific miner a slot while
     the mempool is still live, so block-stage deviations would fire in
     only a sliver of scenarios. Real chains give every miner a turn
     eventually; we compress that into the window by scheduling each
     block-stage actor (configured or mutant) one guaranteed
     mid-workload leadership slot. Deterministic, hence replay-safe. *)
  let forced_leads =
    if s.block_interval > 0. then
      List.filter_map
        (fun a ->
          match behavior_of_kind a.kind with
          | Adversary.Block_injector | Adversary.Block_reorderer
          | Adversary.Blockspace_censor _ ->
              Some a.node
          | _ -> None)
        s.adversaries
      @
      match mutant with
      | Some m when mutation_needs_blocks s.mutation -> [ m ]
      | _ -> []
    else []
  in
  let after_inject (run : Runner.run) =
    let d = run.Runner.deployment in
    List.iteri
      (fun i idx ->
        let at = (0.4 +. (0.15 *. float_of_int i)) *. s.duration in
        Lo_net.Network.schedule_at d.Lo_sim.Scenario.net ~at (fun _ ->
            ignore
              (Node.build_block d.Lo_sim.Scenario.nodes.(idx)
                 ~policy:Policy.Lo_fifo)))
      forced_leads
  in
  let run =
    Runner.run_lo ~config ~after_inject
      ~behaviors:(fun i -> assigned.(i))
      ~malicious
      ?loss_rate:(if s.loss > 0. then Some s.loss else None)
      ?faults:(if plan = [] then None else Some plan)
      ?rotate_period:(if s.rotate_period > 0. then Some s.rotate_period else None)
      ?blocks:
        (if s.block_interval > 0. then Some (Policy.Lo_fifo, s.block_interval)
         else None)
      ~blocks_only_honest:false ~drain:s.drain ~trace ~scale ~seed:s.seed ()
  in
  let adversaries =
    List.map (fun a -> (a.node, a.kind)) s.adversaries
  in
  let verdict =
    Oracle.judge ~adversaries ~horizon:run.Runner.horizon ~run ~trace ()
  in
  let mutant_observable =
    match mutant with
    | None -> 0
    | Some m ->
        let is_adv i = List.mem_assoc i adversaries in
        List.length
          (Oracle.observable_deviations ~horizon:run.Runner.horizon ~is_adv
             ~entries:(Trace.events trace)
             ~node:run.Runner.deployment.Lo_sim.Scenario.nodes.(m)
             ~idx:m ())
  in
  {
    scenario = s;
    verdict;
    events = Trace.total trace;
    mutant;
    mutant_observable;
  }

let shrink ?(budget = 40) s0 =
  let runs = ref 0 in
  let fails s =
    if !runs >= budget then false
    else begin
      incr runs;
      failed (execute s)
    end
  in
  let rec go s =
    if !runs >= budget then s
    else
      match List.find_opt fails (Scenario.shrink_candidates s) with
      | Some s' -> go s'
      | None -> s
  in
  let minimal = go s0 in
  (minimal, !runs)

type case = { index : int; outcome : outcome }

let fuzz ~n ~seed ?mutation ?jobs () =
  let arm =
    match mutation with
    | None -> Fun.id
    | Some m -> fun s -> with_mutation s m
  in
  Lo_sim.Parallel.map ?jobs
    (fun index ->
      { index; outcome = execute (arm (Scenario.generate ~seed ~index)) })
    (List.init n Fun.id)

let write_repro ~path s =
  let oc = open_out path in
  output_string oc (Scenario.to_json_string s);
  output_char oc '\n';
  close_out oc

let read_repro ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> Scenario.of_json_string (String.trim contents)
