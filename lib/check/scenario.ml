module Rng = Lo_net.Rng

type adversary = { node : int; kind : string }

type t = {
  seed : int;
  nodes : int;
  rate : float;
  duration : float;
  drain : float;
  loss : float;
  block_interval : float;
  rotate_period : float;
  timeout : float;
  retries : int;
  backoff : float;
  jitter : float;
  reconcile_period : float;
  digest_period : float;
  adversaries : adversary list;
  churn : float;
  partition : float;
  burst : float;
  spikes : bool;
  degrades : bool;
  mutation : string;
}

let horizon t = t.duration +. t.drain

(* Quantise to 3 decimals so printing with %.3f and re-parsing is the
   identity on every float the generator (or the shrinker) produces. *)
let q3 x = Float.of_int (Float.to_int ((x *. 1000.) +. 0.5)) /. 1000.

let adversary_kinds =
  [|
    "silent-censor";
    "tx-censor";
    "block-injector";
    "block-reorderer";
    "blockspace-censor";
    "equivocator";
  |]

let generate ~seed ~index =
  let rng = Rng.create ((seed * 1_000_003) + (index * 7919) + 17) in
  let nodes = 8 + Rng.int rng 13 in
  let rate = q3 (2. +. Rng.float rng 4.) in
  let duration = q3 (5. +. Rng.float rng 4.) in
  let loss = q3 (Rng.float rng 0.03) in
  let block_interval =
    if Rng.int rng 4 = 0 then 0. else q3 (3. +. Rng.float rng 2.)
  in
  let rotate_period =
    if Rng.int rng 10 < 7 then 0. else q3 (4. +. Rng.float rng 4.)
  in
  let timeout = q3 (0.4 +. Rng.float rng 0.4) in
  let backoff = q3 (1.5 +. Rng.float rng 0.5) in
  let jitter = q3 (Rng.float rng 0.3) in
  let reconcile_period = q3 (0.8 +. Rng.float rng 0.4) in
  let digest_period = q3 (1.5 +. Rng.float rng 1.0) in
  let n_adv =
    match Rng.int rng 100 with x when x < 35 -> 0 | x when x < 75 -> 1 | _ -> 2
  in
  let victims =
    Rng.sample_without_replacement rng n_adv (List.init nodes Fun.id)
    |> List.sort compare
  in
  let adversaries =
    List.map
      (fun node -> { node; kind = Rng.pick rng adversary_kinds })
      victims
  in
  let churn = if Rng.bool rng then 0. else q3 (0.05 +. Rng.float rng 0.15) in
  let partition = if Rng.bool rng then 0. else q3 (1.0 +. Rng.float rng 1.0) in
  let burst = if Rng.bool rng then 0. else q3 (0.1 +. Rng.float rng 0.2) in
  let spikes = Rng.int rng 3 = 0 in
  let degrades = Rng.int rng 3 = 0 in
  {
    seed = (seed * 9176) + index + 1;
    nodes;
    rate;
    duration;
    drain = 28.;
    loss;
    block_interval;
    rotate_period;
    timeout;
    retries = 2;
    backoff;
    jitter;
    reconcile_period;
    digest_period;
    adversaries;
    churn;
    partition;
    burst;
    spikes;
    degrades;
    mutation = "";
  }

let describe t =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "n=%d rate=%.1f dur=%.1f loss=%.3f" t.nodes t.rate
       t.duration t.loss);
  if t.block_interval > 0. then
    Buffer.add_string b (Printf.sprintf " blocks=%.1fs" t.block_interval);
  if t.rotate_period > 0. then
    Buffer.add_string b (Printf.sprintf " rotate=%.1fs" t.rotate_period);
  List.iter
    (fun a -> Buffer.add_string b (Printf.sprintf " adv[%d]=%s" a.node a.kind))
    t.adversaries;
  if t.churn > 0. then Buffer.add_string b (Printf.sprintf " churn=%.2f" t.churn);
  if t.partition > 0. then
    Buffer.add_string b (Printf.sprintf " partition=%.1fs" t.partition);
  if t.burst > 0. then Buffer.add_string b (Printf.sprintf " burst=%.2f" t.burst);
  if t.spikes then Buffer.add_string b " spikes";
  if t.degrades then Buffer.add_string b " degrades";
  if t.mutation <> "" then
    Buffer.add_string b (Printf.sprintf " MUTATION=%s" t.mutation);
  Buffer.contents b

(* {2 JSON repro format}

   Flat object, fixed key order, floats as %.3f — deterministic output
   and an exact round-trip. Hand-rolled like {!Lo_obs.Jsonl}: the repo
   carries no JSON dependency. *)

let to_json_string t =
  let b = Buffer.create 256 in
  let fld name f = Buffer.add_string b (Printf.sprintf ",\"%s\":%s" name f) in
  Buffer.add_string b "{\"v\":1";
  fld "seed" (string_of_int t.seed);
  fld "nodes" (string_of_int t.nodes);
  fld "rate" (Printf.sprintf "%.3f" t.rate);
  fld "duration" (Printf.sprintf "%.3f" t.duration);
  fld "drain" (Printf.sprintf "%.3f" t.drain);
  fld "loss" (Printf.sprintf "%.3f" t.loss);
  fld "block_interval" (Printf.sprintf "%.3f" t.block_interval);
  fld "rotate_period" (Printf.sprintf "%.3f" t.rotate_period);
  fld "timeout" (Printf.sprintf "%.3f" t.timeout);
  fld "retries" (string_of_int t.retries);
  fld "backoff" (Printf.sprintf "%.3f" t.backoff);
  fld "jitter" (Printf.sprintf "%.3f" t.jitter);
  fld "reconcile_period" (Printf.sprintf "%.3f" t.reconcile_period);
  fld "digest_period" (Printf.sprintf "%.3f" t.digest_period);
  fld "adversaries"
    ("["
    ^ String.concat ","
        (List.map
           (fun a -> Printf.sprintf "\"%d:%s\"" a.node a.kind)
           t.adversaries)
    ^ "]");
  fld "churn" (Printf.sprintf "%.3f" t.churn);
  fld "partition" (Printf.sprintf "%.3f" t.partition);
  fld "burst" (Printf.sprintf "%.3f" t.burst);
  fld "spikes" (string_of_bool t.spikes);
  fld "degrades" (string_of_bool t.degrades);
  fld "mutation" (Printf.sprintf "%S" t.mutation);
  Buffer.add_char b '}';
  Buffer.contents b

(* Minimal parser for the flat format above: top-level "key":value
   pairs where a value is a number, a bool, a quoted string (no escapes
   beyond what %S emits for our charset) or an array of quoted
   strings. *)
let parse_fields s =
  let n = String.length s in
  let fail msg = raise (Failure msg) in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || s.[!pos] <> c then
      fail (Printf.sprintf "expected '%c' at %d" c !pos);
    incr pos
  in
  let quoted () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
            Buffer.add_char b s.[!pos + 1];
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let scalar () =
    skip_ws ();
    if !pos < n && s.[!pos] = '"' then `Str (quoted ())
    else if !pos < n && s.[!pos] = '[' then begin
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = ']' then begin
        incr pos;
        `Arr []
      end
      else begin
        let items = ref [ quoted () ] in
        skip_ws ();
        while !pos < n && s.[!pos] = ',' do
          incr pos;
          items := quoted () :: !items;
          skip_ws ()
        done;
        expect ']';
        `Arr (List.rev !items)
      end
    end
    else begin
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 't' | 'r' | 'u' | 'f'
        | 'a' | 'l' | 's' ->
            true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail (Printf.sprintf "empty value at %d" start);
      match String.sub s start (!pos - start) with
      | "true" -> `Bool true
      | "false" -> `Bool false
      | lit -> `Num lit
    end
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && s.[!pos] = '}' then incr pos
  else begin
    let rec pair () =
      let key = quoted () in
      expect ':';
      fields := (key, scalar ()) :: !fields;
      skip_ws ();
      if !pos < n && s.[!pos] = ',' then begin
        incr pos;
        skip_ws ();
        pair ()
      end
      else expect '}'
    in
    pair ()
  end;
  List.rev !fields

let of_json_string s =
  match parse_fields s with
  | exception Failure msg -> Error ("bad repro JSON: " ^ msg)
  | fields -> (
      let find name = List.assoc_opt name fields in
      let int name =
        match find name with
        | Some (`Num lit) -> int_of_string lit
        | _ -> raise (Failure (name ^ ": expected int"))
      in
      let flt name =
        match find name with
        | Some (`Num lit) -> float_of_string lit
        | _ -> raise (Failure (name ^ ": expected float"))
      in
      let boolean name =
        match find name with
        | Some (`Bool v) -> v
        | _ -> raise (Failure (name ^ ": expected bool"))
      in
      let str name =
        match find name with
        | Some (`Str v) -> v
        | _ -> raise (Failure (name ^ ": expected string"))
      in
      try
        if int "v" <> 1 then Error "unsupported repro version"
        else begin
          let adversaries =
            match find "adversaries" with
            | Some (`Arr items) ->
                List.map
                  (fun item ->
                    match String.index_opt item ':' with
                    | Some i ->
                        {
                          node = int_of_string (String.sub item 0 i);
                          kind =
                            String.sub item (i + 1)
                              (String.length item - i - 1);
                        }
                    | None -> raise (Failure "adversary: expected idx:kind"))
                  items
            | _ -> raise (Failure "adversaries: expected array")
          in
          Ok
            {
              seed = int "seed";
              nodes = int "nodes";
              rate = flt "rate";
              duration = flt "duration";
              drain = flt "drain";
              loss = flt "loss";
              block_interval = flt "block_interval";
              rotate_period = flt "rotate_period";
              timeout = flt "timeout";
              retries = int "retries";
              backoff = flt "backoff";
              jitter = flt "jitter";
              reconcile_period = flt "reconcile_period";
              digest_period = flt "digest_period";
              adversaries;
              churn = flt "churn";
              partition = flt "partition";
              burst = flt "burst";
              spikes = boolean "spikes";
              degrades = boolean "degrades";
              mutation = str "mutation";
            }
        end
      with
      | Failure msg -> Error ("bad repro JSON: " ^ msg)
      | _ -> Error "bad repro JSON")

(* Shrinking: strictly simpler scenarios in the order we want the
   greedy search to try them (ISSUE order — faults, adversaries, size,
   workload coarseness). Each candidate changes exactly one thing. *)
let shrink_candidates t =
  let faults =
    List.concat
      [
        (if t.churn > 0. then [ { t with churn = 0. } ] else []);
        (if t.partition > 0. then [ { t with partition = 0. } ] else []);
        (if t.burst > 0. then [ { t with burst = 0. } ] else []);
        (if t.spikes then [ { t with spikes = false } ] else []);
        (if t.degrades then [ { t with degrades = false } ] else []);
        (if t.loss > 0. then [ { t with loss = 0. } ] else []);
      ]
  in
  let adversaries =
    List.mapi
      (fun i _ ->
        { t with adversaries = List.filteri (fun j _ -> j <> i) t.adversaries })
      t.adversaries
  in
  let size =
    let smaller_n =
      let n' = max 6 (t.nodes / 2) in
      if n' < t.nodes then
        [
          {
            t with
            nodes = n';
            adversaries = List.filter (fun a -> a.node < n') t.adversaries;
          };
        ]
      else []
    in
    let shorter =
      let d' = q3 (Float.max 3. (t.duration /. 2.)) in
      if d' < t.duration then [ { t with duration = d' } ] else []
    in
    smaller_n @ shorter
  in
  let workload =
    List.concat
      [
        (let r' = q3 (Float.max 1. (t.rate /. 2.)) in
         if r' < t.rate then [ { t with rate = r' } ] else []);
        (if t.rotate_period > 0. then [ { t with rotate_period = 0. } ]
         else []);
        (* Only drop block production when no block-stage actor needs
           it: shrinking must preserve the scenario's ability to
           express the failure, and block adversaries/mutations cannot
           deviate without blocks. *)
        (if
           t.block_interval > 0.
           && (not
                 (List.exists
                    (fun a ->
                      List.mem a.kind
                        [
                          "block-injector";
                          "block-reorderer";
                          "blockspace-censor";
                        ])
                    t.adversaries))
           && t.mutation = ""
         then [ { t with block_interval = 0. } ]
         else []);
      ]
  in
  faults @ adversaries @ size @ workload
