(** The conformance harness: compile a {!Scenario} onto
    {!Lo_sim.Runner}, judge it with {!Oracle}, shrink failures, and fan
    campaigns across the domain pool.

    Everything here is deterministic in the scenario alone: executing
    the same scenario twice — in the same process, another process, or
    from a repro file written weeks earlier — produces the same trace,
    the same verdict and the same failure strings. *)

type outcome = {
  scenario : Scenario.t;  (** as executed (mutation normalised) *)
  verdict : Oracle.verdict;
  events : int;  (** trace events emitted by the run *)
  mutant : int option;  (** node running the hidden mutation, if any *)
  mutant_observable : int;
      (** observable deviations by the mutant — [0] means the mutation
          never fired and the case is vacuous for sensitivity testing *)
}

val failed : outcome -> bool
(** At least one oracle failure. *)

val mutations : (string * string) list
(** Supported [--mutate] modes as [(name, description)]: each silently
    re-enables a known adversarial deviation on one hidden node —
    ["shuffle-skip"] (skip the canonical intra-bundle shuffle, order by
    fee), ["inject"] (smuggle uncommitted transactions into blocks),
    ["omit"] (silently censor blockspace), ["silent"] (stop answering
    protocol requests). The harness must catch the run red-handed even
    though the ground truth claims everyone is honest. *)

val with_mutation : Scenario.t -> string -> Scenario.t
(** Arm the scenario with a hidden mutation (normalising knobs the
    mutation needs, e.g. block production for block-stage mutations).
    @raise Invalid_argument on an unknown mutation name. *)

val execute : Scenario.t -> outcome
(** One full run: build the deployment (tracing on), apply behaviours,
    faults, workload, blocks and perturbations from the scenario, drive
    to the horizon, judge. *)

val shrink : ?budget:int -> Scenario.t -> Scenario.t * int
(** Greedy minimisation of a failing scenario: repeatedly move to the
    first {!Scenario.shrink_candidates} that still fails, until none
    does or [budget] (default 40) re-runs are spent. Returns the
    minimal failing scenario and the number of runs used. The input
    should itself fail ({!execute} + {!failed}); if it does not, it is
    returned unchanged. *)

type case = { index : int; outcome : outcome }

val fuzz :
  n:int ->
  seed:int ->
  ?mutation:string ->
  ?jobs:int ->
  unit ->
  case list
(** The campaign: generate scenarios [0..n-1] from [seed], arm each
    with [mutation] (if given), execute across the
    {!Lo_sim.Parallel} domain pool, return in index order. *)

val write_repro : path:string -> Scenario.t -> unit
(** One-line JSON file ({!Scenario.to_json_string} + newline). *)

val read_repro : path:string -> (Scenario.t, string) result
