(** The secp256k1 elliptic curve, y^2 = x^3 + 7 over F_p, implemented
    from scratch on {!Uint256}.

    Points are carried in Jacobian coordinates internally; the affine
    view is exposed for encoding and equality checks. This is a
    correctness-oriented implementation for the reproduction — it is
    deliberately not constant-time and must not be used to protect real
    funds. *)

val p : Uint256.t
(** Base field prime, 2^256 - 2^32 - 977. *)

val n : Uint256.t
(** Order of the generator (prime). *)

type point

val infinity : point
val is_infinity : point -> bool

val g : point
(** The standard generator. *)

val of_affine : x:Uint256.t -> y:Uint256.t -> point
(** @raise Invalid_argument if (x, y) is not on the curve. *)

val to_affine : point -> (Uint256.t * Uint256.t) option
(** [None] for the point at infinity. *)

val is_on_curve : x:Uint256.t -> y:Uint256.t -> bool
val neg : point -> point
val add : point -> point -> point
val double : point -> point

val mul : Uint256.t -> point -> point
(** Scalar multiplication (double-and-add). The reference ladder: every
    fast path below is qcheck-pinned against it. *)

val mul_g : Uint256.t -> point
(** [mul_g k] is [mul k g] through a per-domain fixed-base window table
    (~43 mixed additions, no doublings). The table is built lazily on
    first use in each domain and normalised to affine with one batched
    inversion. *)

type precomp
(** Precomputed odd multiples of a point for width-5 wNAF
    multiplication; build once per point, reuse across scalars. *)

val precompute : point -> precomp
(** @raise Invalid_argument on the point at infinity. *)

val mul_add : g_scalar:Uint256.t -> Uint256.t -> point -> point
(** [mul_add ~g_scalar:a b p] is [a*G + b*p], combining the fixed-base
    table for [G] with a wNAF ladder for [p] — the Schnorr verification
    shape [s*G + (n-e)*P]. *)

val mul_add_precomp : g_scalar:Uint256.t -> Uint256.t -> precomp -> point
(** [mul_add] against an existing {!precompute} table, for verifying
    many signatures under the same public key. *)

val to_affine_batch : point array -> (Uint256.t * Uint256.t) option array
(** Normalise a whole array of points with a single field inversion
    (Montgomery's trick); element-wise equal to {!to_affine}. *)

val equal : point -> point -> bool

val encode_compressed : point -> string
(** 33-byte SEC1 compressed encoding (02/03 prefix). Infinity encodes as
    a single zero byte followed by 32 zero bytes. *)

val decode_compressed : string -> point option
(** Inverse of {!encode_compressed}; [None] on malformed input or points
    off the curve. *)

(**/**)

val field_mul : Uint256.t -> Uint256.t -> Uint256.t
val field_sqrt : Uint256.t -> Uint256.t option
(** Square root mod p when it exists (p = 3 mod 4). Exposed for tests. *)
