type t = { id : string; sign : string -> string }

type scheme = {
  name : string;
  make : seed:string -> t;
  verify : id:string -> msg:string -> signature:string -> bool;
  verify_many : (string * string * string) array -> int list;
}

let id t = t.id
let sign t msg = t.sign msg
let make scheme ~seed = scheme.make ~seed
let verify scheme ~id ~msg ~signature = scheme.verify ~id ~msg ~signature
let verify_many scheme sigs = scheme.verify_many sigs
let scheme_name scheme = scheme.name
let id_size = 33
let signature_size = 64

let schnorr =
  let verify ~id ~msg ~signature =
    match Schnorr.public_key_of_bytes id with
    | None -> false
    | Some pk -> Schnorr.verify pk ~msg ~signature
  in
  let verify_many sigs =
    (* Undecodable ids are invalid outright; the rest go through the
       batch kernel, with indices mapped back to the caller's. *)
    let bad_ids = ref [] in
    let decoded = ref [] in
    Array.iteri
      (fun i (id, msg, signature) ->
        match Schnorr.public_key_of_bytes id with
        | None -> bad_ids := i :: !bad_ids
        | Some pk -> decoded := (i, (pk, msg, signature)) :: !decoded)
      sigs;
    let decoded = Array.of_list (List.rev !decoded) in
    let bad =
      match Schnorr.batch_verify (Array.map snd decoded) with
      | `All_valid -> []
      | `Invalid l -> List.map (fun j -> fst decoded.(j)) l
    in
    List.sort_uniq compare (List.rev_append !bad_ids bad)
  in
  {
    name = "schnorr";
    make =
      (fun ~seed ->
        let sk, pk = Schnorr.keypair_of_seed seed in
        { id = Schnorr.public_key_bytes pk; sign = Schnorr.sign sk });
    verify;
    verify_many;
  }

(* A valid simulation signature is tag ^ 32 zero bytes; checking in
   place avoids reassembling that 64-byte string per verification. *)
let sim_signature_matches ~tag signature =
  let ok = ref (String.length signature = 64) in
  if !ok then begin
    for i = 0 to 31 do
      if signature.[i] <> tag.[i] then ok := false
    done;
    for i = 32 to 63 do
      if signature.[i] <> '\000' then ok := false
    done
  end;
  !ok

let simulation () =
  (* id -> keyed-HMAC registry, local to this scheme instance. The
     midstate cache is built once per signer, so each verification
     costs two SHA-256 compressions instead of four. *)
  let registry : (string, Hmac.Keyed.t) Hashtbl.t = Hashtbl.create 64 in
  let make ~seed =
    let key = Sha256.digest_list [ "sim-signer-key"; seed ] in
    let id = "\x01" ^ Sha256.digest_list [ "sim-signer-id"; seed ] in
    let keyed = Hmac.Keyed.create ~key in
    Hashtbl.replace registry id keyed;
    let sign msg =
      let tag = Hmac.Keyed.sha256 keyed msg in
      tag ^ String.make 32 '\000'
    in
    { id; sign }
  in
  let verify ~id ~msg ~signature =
    String.length signature = 64
    &&
    match Hashtbl.find_opt registry id with
    | None -> false
    | Some keyed ->
        sim_signature_matches ~tag:(Hmac.Keyed.sha256 keyed msg) signature
  in
  let verify_many sigs =
    let bad = ref [] in
    for i = Array.length sigs - 1 downto 0 do
      let id, msg, signature = sigs.(i) in
      if not (verify ~id ~msg ~signature) then bad := i :: !bad
    done;
    !bad
  in
  { name = "simulation"; make; verify; verify_many }
