(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val sha256_list : key:string -> string list -> string
(** Tag of the concatenation of the given message parts. *)

(** Midstate-cached HMAC for a fixed key: the two pad-block compressions
    are precomputed at {!Keyed.create}, halving the per-message cost for
    short messages. [Keyed.sha256 (Keyed.create ~key) msg] is
    byte-identical to [sha256 ~key msg] (qcheck-pinned). *)
module Keyed : sig
  type t

  val create : key:string -> t
  val sha256 : t -> string -> string
  val sha256_list : t -> string list -> string
end
