let p =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let n =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

let gx =
  Uint256.of_hex
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

let gy =
  Uint256.of_hex
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"

(* --- Field arithmetic with fast reduction: p = 2^256 - c, c = 2^32+977.
   For any t, t = hi*2^256 + lo = hi*c + lo (mod p); folding at most
   three times brings t below 2^256 + small, then conditional subtracts
   finish the job. --- *)

let c_limbs = [| 0x03D1; 0x0000; 0x0001 |] (* 2^32 + 977 in 16-bit limbs *)
let p_limbs = Uint256.to_limbs p

let reduce_p limbs_in =
  let t = ref limbs_in in
  let split () =
    let l = Array.length !t in
    if l <= 16 then None
    else
      let hi = Array.sub !t 16 (l - 16) in
      if Limbs.is_zero hi then None else Some (Array.sub !t 0 16, hi)
  in
  let continue = ref true in
  while !continue do
    match split () with
    | None -> continue := false
    | Some (lo, hi) -> t := Limbs.add (Limbs.mul hi c_limbs) lo
  done;
  let t = ref (Limbs.resize !t 16) in
  while Limbs.compare !t p_limbs >= 0 do
    t := Limbs.resize (Limbs.sub !t p_limbs) 16
  done;
  Uint256.of_limbs !t

let field_mul a b = reduce_p (Limbs.mul (Uint256.to_limbs a) (Uint256.to_limbs b))
let field_sq a = field_mul a a
let field_add a b = Uint256.mod_add ~modulus:p a b
let field_sub a b = Uint256.mod_sub ~modulus:p a b

let field_pow b e =
  let result = ref Uint256.one and acc = ref b in
  for i = 0 to Uint256.num_bits e - 1 do
    if Uint256.bit e i then result := field_mul !result !acc;
    acc := field_sq !acc
  done;
  !result

let field_inv a =
  if Uint256.is_zero a then invalid_arg "Secp256k1.field_inv: zero";
  field_pow a (Uint256.mod_sub ~modulus:p Uint256.zero (Uint256.of_int 2))

(* p = 3 (mod 4): the candidate square root of [a] is a^((p+1)/4). The
   exponent is derived from [p] rather than hardcoded. *)
let sqrt_exp =
  let p_plus_1 = Limbs.add p_limbs [| 1 |] in
  let q, r = Limbs.divmod p_plus_1 [| 4 |] in
  assert (Limbs.is_zero r);
  Uint256.of_limbs q

let field_sqrt a =
  let r = field_pow a sqrt_exp in
  if Uint256.equal (field_sq r) a then Some r else None

let seven = Uint256.of_int 7

let is_on_curve ~x ~y =
  Uint256.compare x p < 0
  && Uint256.compare y p < 0
  && Uint256.equal (field_sq y) (field_add (field_mul (field_sq x) x) seven)

(* --- Jacobian points: (X, Y, Z) represents (X/Z^2, Y/Z^3); Z = 0 is the
   point at infinity. --- *)

type point = { x : Uint256.t; y : Uint256.t; z : Uint256.t }

let infinity = { x = Uint256.one; y = Uint256.one; z = Uint256.zero }
let is_infinity pt = Uint256.is_zero pt.z

let of_affine ~x ~y =
  if not (is_on_curve ~x ~y) then
    invalid_arg "Secp256k1.of_affine: point not on curve";
  { x; y; z = Uint256.one }

let to_affine pt =
  if is_infinity pt then None
  else if Uint256.equal pt.z Uint256.one then Some (pt.x, pt.y)
  else
    let zi = field_inv pt.z in
    let zi2 = field_sq zi in
    Some (field_mul pt.x zi2, field_mul pt.y (field_mul zi2 zi))

(* Montgomery's trick: normalise a whole array of points with a single
   field inversion. [prefix.(i)] holds the product of the non-infinity
   z's strictly before [i]; walking backwards with the inverse of the
   full product peels off one z^-1 per step at the cost of two
   multiplications. *)
let to_affine_batch pts =
  let len = Array.length pts in
  let prefix = Array.make len Uint256.one in
  let acc = ref Uint256.one in
  Array.iteri
    (fun i pt ->
      prefix.(i) <- !acc;
      if not (is_infinity pt) then acc := field_mul !acc pt.z)
    pts;
  let inv = ref (if Uint256.equal !acc Uint256.one then Uint256.one else field_inv !acc) in
  let out = Array.make len None in
  for i = len - 1 downto 0 do
    let pt = pts.(i) in
    if not (is_infinity pt) then begin
      let zi = field_mul !inv prefix.(i) in
      inv := field_mul !inv pt.z;
      let zi2 = field_sq zi in
      out.(i) <- Some (field_mul pt.x zi2, field_mul pt.y (field_mul zi2 zi))
    end
  done;
  out

let neg pt = if is_infinity pt then pt else { pt with y = field_sub Uint256.zero pt.y }

let double pt =
  if is_infinity pt || Uint256.is_zero pt.y then infinity
  else begin
    let y2 = field_sq pt.y in
    let s = field_mul (Uint256.of_int 4) (field_mul pt.x y2) in
    let m = field_mul (Uint256.of_int 3) (field_sq pt.x) in
    let x3 = field_sub (field_sq m) (field_add s s) in
    let y3 =
      field_sub (field_mul m (field_sub s x3))
        (field_mul (Uint256.of_int 8) (field_sq y2))
    in
    let z3 = field_mul (field_add pt.y pt.y) pt.z in
    { x = x3; y = y3; z = z3 }
  end

let add pt1 pt2 =
  if is_infinity pt1 then pt2
  else if is_infinity pt2 then pt1
  else begin
    let z1z1 = field_sq pt1.z and z2z2 = field_sq pt2.z in
    let u1 = field_mul pt1.x z2z2 and u2 = field_mul pt2.x z1z1 in
    let s1 = field_mul pt1.y (field_mul z2z2 pt2.z) in
    let s2 = field_mul pt2.y (field_mul z1z1 pt1.z) in
    if Uint256.equal u1 u2 then
      if Uint256.equal s1 s2 then double pt1 else infinity
    else begin
      let h = field_sub u2 u1 in
      let r = field_sub s2 s1 in
      let h2 = field_sq h in
      let h3 = field_mul h2 h in
      let u1h2 = field_mul u1 h2 in
      let x3 = field_sub (field_sub (field_sq r) h3) (field_add u1h2 u1h2) in
      let y3 = field_sub (field_mul r (field_sub u1h2 x3)) (field_mul s1 h3) in
      let z3 = field_mul h (field_mul pt1.z pt2.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

let mul scalar pt =
  let acc = ref infinity in
  for i = Uint256.num_bits scalar - 1 downto 0 do
    acc := double !acc;
    if Uint256.bit scalar i then acc := add !acc pt
  done;
  !acc

let g = of_affine ~x:gx ~y:gy

(* Mixed addition: the second operand is affine (z = 1), which saves a
   square and three multiplications over the general Jacobian add. Table
   entries are stored affine precisely so the hot loops land here. *)
let add_affine pt (x2, y2) =
  if is_infinity pt then { x = x2; y = y2; z = Uint256.one }
  else begin
    let z1z1 = field_sq pt.z in
    let u2 = field_mul x2 z1z1 in
    let s2 = field_mul y2 (field_mul z1z1 pt.z) in
    if Uint256.equal pt.x u2 then
      if Uint256.equal pt.y s2 then double pt else infinity
    else begin
      let h = field_sub u2 pt.x in
      let r = field_sub s2 pt.y in
      let h2 = field_sq h in
      let h3 = field_mul h2 h in
      let u1h2 = field_mul pt.x h2 in
      let x3 = field_sub (field_sub (field_sq r) h3) (field_add u1h2 u1h2) in
      let y3 = field_sub (field_mul r (field_sub u1h2 x3)) (field_mul pt.y h3) in
      let z3 = field_mul h pt.z in
      { x = x3; y = y3; z = z3 }
    end
  end

(* --- Fixed-base multiplication by G.

   The scalar is cut into [window_w]-bit digits; digit [d] of window [w]
   contributes d * 2^(window_w * w) * G, read from a table of affine
   points. A full mul_g is then ~43 mixed additions and no doublings,
   against 256 doublings + ~128 additions for the generic ladder. The
   table (43 windows x 63 non-zero digits, ~2700 points) is built once
   per domain on first use, normalised to affine with a single batched
   inversion, and lives in domain-local storage so concurrent domains
   never share mutable state. --- *)

let window_w = 6
let g_windows = (256 + window_w - 1) / window_w
let g_digits = (1 lsl window_w) - 1

let build_g_table () =
  let jac = Array.make (g_windows * g_digits) infinity in
  let base = ref g in
  for win = 0 to g_windows - 1 do
    let row = win * g_digits in
    jac.(row) <- !base;
    for j = 1 to g_digits - 1 do
      jac.(row + j) <- add jac.(row + j - 1) !base
    done;
    for _ = 1 to window_w do
      base := double !base
    done
  done;
  (* No j * 2^(6w) with 1 <= j <= 63 is a multiple of the (odd, ~2^256)
     group order, so no table entry is the point at infinity. *)
  Array.map
    (function Some xy -> xy | None -> assert false)
    (to_affine_batch jac)

let g_table_key = Domain.DLS.new_key build_g_table

let window_digit scalar win =
  let base = win * window_w in
  let d = ref 0 in
  for b = window_w - 1 downto 0 do
    let i = base + b in
    d := (!d lsl 1) lor (if i < 256 && Uint256.bit scalar i then 1 else 0)
  done;
  !d

let mul_g scalar =
  let tbl = Domain.DLS.get g_table_key in
  let acc = ref infinity in
  for win = 0 to g_windows - 1 do
    let d = window_digit scalar win in
    if d <> 0 then acc := add_affine !acc tbl.((win * g_digits) + d - 1)
  done;
  !acc

(* --- Width-5 wNAF for arbitrary points: signed digits in
   {0, ±1, ±3, ..., ±15}, at most one non-zero per 5 consecutive
   positions, so a 256-bit multiplication costs 256 doublings plus ~43
   mixed additions against a table of 8 precomputed odd multiples. --- *)

let wnaf_w = 5

let wnaf_digits scalar =
  (* Mutable little-endian 16-bit limbs; one extra limb absorbs the
     temporary overflow when a negative digit is added back. *)
  let limbs = Array.append (Uint256.to_limbs scalar) [| 0 |] in
  let nlimbs = Array.length limbs in
  let is_zero () =
    let z = ref true in
    for i = 0 to nlimbs - 1 do
      if limbs.(i) <> 0 then z := false
    done;
    !z
  in
  let shr1 () =
    for i = 0 to nlimbs - 1 do
      let next = if i + 1 < nlimbs then limbs.(i + 1) else 0 in
      limbs.(i) <- (limbs.(i) lsr 1) lor ((next land 1) lsl 15)
    done
  in
  let sub_small d =
    let borrow = ref d and i = ref 0 in
    while !borrow <> 0 do
      let v = limbs.(!i) - !borrow in
      if v >= 0 then begin
        limbs.(!i) <- v;
        borrow := 0
      end
      else begin
        limbs.(!i) <- v + 0x10000;
        borrow := 1
      end;
      incr i
    done
  in
  let add_small d =
    let carry = ref d and i = ref 0 in
    while !carry <> 0 do
      let v = limbs.(!i) + !carry in
      limbs.(!i) <- v land 0xFFFF;
      carry := v lsr 16;
      incr i
    done
  in
  let half = 1 lsl (wnaf_w - 1) and full = 1 lsl wnaf_w in
  let digits = Array.make 258 0 in
  let len = ref 0 in
  while not (is_zero ()) do
    if limbs.(0) land 1 = 1 then begin
      let d = limbs.(0) land (full - 1) in
      let d = if d >= half then d - full else d in
      digits.(!len) <- d;
      if d > 0 then sub_small d else add_small (-d)
    end;
    shr1 ();
    incr len
  done;
  (digits, !len)

type precomp = (Uint256.t * Uint256.t) array

let precompute pt =
  if is_infinity pt then invalid_arg "Secp256k1.precompute: infinity";
  let jac = Array.make 8 pt in
  let twop = double pt in
  for i = 1 to 7 do
    jac.(i) <- add jac.(i - 1) twop
  done;
  (* Odd multiples of a point of prime order ~2^256 are never infinity. *)
  Array.map
    (function Some xy -> xy | None -> assert false)
    (to_affine_batch jac)

let mul_precomp scalar tbl =
  let digits, len = wnaf_digits scalar in
  let acc = ref infinity in
  for i = len - 1 downto 0 do
    acc := double !acc;
    let d = digits.(i) in
    if d > 0 then acc := add_affine !acc tbl.((d - 1) / 2)
    else if d < 0 then begin
      let x, y = tbl.(((-d) - 1) / 2) in
      acc := add_affine !acc (x, field_sub Uint256.zero y)
    end
  done;
  !acc

let mul_add_precomp ~g_scalar scalar tbl =
  if Uint256.is_zero scalar then mul_g g_scalar
  else add (mul_g g_scalar) (mul_precomp scalar tbl)

let mul_add ~g_scalar scalar pt =
  if is_infinity pt || Uint256.is_zero scalar then mul_g g_scalar
  else mul_add_precomp ~g_scalar scalar (precompute pt)

let equal pt1 pt2 =
  match (to_affine pt1, to_affine pt2) with
  | None, None -> true
  | Some (x1, y1), Some (x2, y2) -> Uint256.equal x1 x2 && Uint256.equal y1 y2
  | _ -> false

let encode_compressed pt =
  match to_affine pt with
  | None -> String.make 33 '\000'
  | Some (x, y) ->
      let parity = if Uint256.bit y 0 then '\x03' else '\x02' in
      String.make 1 parity ^ Uint256.to_bytes_be x

let decode_compressed s =
  if String.length s <> 33 then None
  else if s = String.make 33 '\000' then Some infinity
  else
    match s.[0] with
    | '\x02' | '\x03' -> begin
        let x = Uint256.of_bytes_be (String.sub s 1 32) in
        if Uint256.compare x p >= 0 then None
        else
          let rhs = field_add (field_mul (field_sq x) x) seven in
          match field_sqrt rhs with
          | None -> None
          | Some y ->
              let want_odd = s.[0] = '\x03' in
              let y = if Uint256.bit y 0 = want_odd then y else field_sub Uint256.zero y in
              Some { x; y; z = Uint256.one }
      end
    | _ -> None
