(** Pluggable signing backends.

    All protocol code signs and verifies through this interface, so the
    same node logic can run with real Schnorr signatures (tests,
    examples) or with a fast HMAC-based simulation signer (large-scale
    experiments). Both backends produce 33-byte identities and 64-byte
    signatures so that bandwidth accounting is identical. *)

type t
(** A signing identity: a public id plus the ability to sign. *)

type scheme
(** A signature scheme: creates signers and verifies signatures. *)

val id : t -> string
(** The 33-byte public identity (public key bytes). *)

val sign : t -> string -> string
(** 64-byte signature over a message. *)

val make : scheme -> seed:string -> t
(** Deterministically derive a signer from seed bytes. *)

val verify : scheme -> id:string -> msg:string -> signature:string -> bool

val verify_many : scheme -> (string * string * string) array -> int list
(** [verify_many scheme sigs] checks an array of [(id, msg, signature)]
    triples and returns the indices that fail (sorted; [[]] means all
    valid). Outcome-equivalent to calling {!verify} per triple, but
    batched: Schnorr goes through {!Schnorr.batch_verify} (amortised
    point arithmetic, bisection accountability), the simulation scheme
    through its per-signer HMAC midstate cache. *)

val scheme_name : scheme -> string

val schnorr : scheme
(** Real Schnorr over secp256k1; anyone can verify from the id alone. *)

val simulation : unit -> scheme
(** Fast HMAC-SHA256 backend for simulations. Verification consults a
    process-local registry populated at signer creation, so it only
    works inside one simulation run — never across processes and never
    for adversarial settings outside controlled experiments. *)

val id_size : int
(** 33 bytes, both schemes. *)

val signature_size : int
(** 64 bytes, both schemes. *)
