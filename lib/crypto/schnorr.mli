(** Schnorr signatures over secp256k1 (BIP340-flavoured, simplified).

    Deterministic nonces are derived from the secret key and message, so
    signing needs no entropy source. Signatures are 64 bytes
    (R.x || s); public keys are 33-byte compressed points. *)

type secret_key
type public_key

val keypair_of_seed : string -> secret_key * public_key
(** Derive a keypair deterministically from arbitrary seed bytes (the
    seed is hashed onto the scalar field; a zero result is rejected by
    re-hashing). *)

val public_key : secret_key -> public_key
val public_key_bytes : public_key -> string
(** 33-byte compressed encoding; doubles as the node identity. *)

val public_key_of_bytes : string -> public_key option
val secret_key_bytes : secret_key -> string

val sign : secret_key -> string -> string
(** [sign sk msg] is a 64-byte signature over [msg]. *)

val verify : public_key -> msg:string -> signature:string -> bool
(** The reference verifier (generic double-and-add, one signature at a
    time). {!batch_verify} is qcheck-pinned against it. *)

val batch_verify :
  ?run_chunks:((unit -> bool) list -> bool list) ->
  (public_key * string * string) array ->
  [ `All_valid | `Invalid of int list ]
(** [batch_verify sigs] checks an array of [(pk, msg, signature)]
    triples and either declares them all valid or names the invalid
    indices (sorted). Outcome-equivalent to calling {!verify} on each
    triple, but amortised: a per-domain fixed-base table for [s*G], one
    wNAF precomputation per distinct public key, and one Montgomery
    inversion per chunk of {!batch_chunk} signatures.

    Accountability survives batching through bisection: the fast kernel
    only narrows dirty chunks, and an index is blamed only after the
    reference {!verify} confirms it, so a fast-path bug can never frame
    an honest signer.

    [run_chunks] runs the independent per-chunk checks — pass
    [Lo_sim.Parallel.map]-backed fan-out to spread chunks across
    domains (each chunk builds its own scratch); the default runs them
    sequentially. It must preserve list order and length. *)

val batch_chunk : int
(** Signatures per kernel chunk (the bisection granularity). *)
