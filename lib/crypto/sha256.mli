(** SHA-256 (FIPS 180-4), implemented from scratch on native integers.

    Digests are returned as raw 32-byte strings; use {!Hex.encode} for a
    printable form. The incremental interface hashes arbitrarily long
    inputs fed in chunks. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx
(** Fresh context for an empty message. *)

val copy : ctx -> ctx
(** Independent snapshot of a context: feeding or finalizing the copy
    leaves the original untouched. The basis of HMAC midstate caching
    ({!Hmac.Keyed}). *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all bytes of [s]. *)

val feed_bytes : ctx -> bytes -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] from [off]. *)

val finalize : ctx -> string
(** Pads and returns the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot digest of a string. *)

val digest_list : string list -> string
(** Digest of the concatenation of the given strings (no extra copies of
    the whole message are made). *)

val hash_to_int : string -> int
(** First 62 bits of [digest s] as a non-negative OCaml [int]; a cheap,
    stable content fingerprint used for hash-partitioning. *)
