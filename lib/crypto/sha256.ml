(* SHA-256 over native ints. Word values are kept in the low 32 bits of an
   OCaml int; [mask] truncates after additions. *)

let mask = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
}

(* The 64-entry message schedule is pure per-block scratch: it carries no
   state between blocks, so one array per domain serves every context.
   Keeping it out of [ctx] makes [init]/[copy] cheap — the ingest hot
   path creates short-lived contexts (tx ids, HMAC midstate copies) at a
   rate where a 64-word allocation per context shows up in GC time. *)
let w_key = Domain.DLS.new_key (fun () -> Array.make 64 0)

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
  }

let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
  }

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress h (w : int array) block off =
  (* Bounds are established once by the callers ([feed_bytes] validates
     the whole range), so the schedule expansion and state walk use
     unchecked accesses; the block itself is loaded eight bytes at a
     time ([get_int64_be] keeps its own cheap bounds check). *)
  for i = 0 to 7 do
    let v = Bytes.get_int64_be block (off + (8 * i)) in
    (* A logical shift before [to_int] — the straight 64-to-63-bit
       truncation would drop bit 63, the top bit of the first byte. *)
    Array.unsafe_set w (2 * i) (Int64.to_int (Int64.shift_right_logical v 32));
    Array.unsafe_set w ((2 * i) + 1) (Int64.to_int v land mask)
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  (* Eight rounds per iteration, written out with the working variables
     rebound through shifted positions — straight-line SSA the compiler
     keeps in registers, with no per-round a..h shuffle. The refs are
     only touched at the 8-round seams and never escape into a closure,
     so they stay unboxed. *)
  let ra = ref h.(0)
  and rb = ref h.(1)
  and rc = ref h.(2)
  and rd = ref h.(3)
  and re = ref h.(4)
  and rf = ref h.(5)
  and rg = ref h.(6)
  and rh = ref h.(7) in
  for i = 0 to 7 do
    let base = 8 * i in
    let a = !ra and b = !rb and c = !rc and d = !rd in
    let e = !re and f = !rf and g = !rg and hv = !rh in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k base + Array.unsafe_get w base)
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 1)
      + Array.unsafe_get w (base + 1))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 2)
      + Array.unsafe_get w (base + 2))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 3)
      + Array.unsafe_get w (base + 3))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 4)
      + Array.unsafe_get w (base + 4))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 5)
      + Array.unsafe_get w (base + 5))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 6)
      + Array.unsafe_get w (base + 6))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    let hv = g and g = f and f = e and e = (d + t1) land mask in
    let d = c and c = b and b = a and a = (t1 + t2) land mask in
    let t1 =
      (hv
      + (rotr e 6 lxor rotr e 11 lxor rotr e 25)
      + (e land f lxor (lnot e land g))
      + Array.unsafe_get k (base + 7)
      + Array.unsafe_get w (base + 7))
      land mask
    in
    let t2 =
      ((rotr a 2 lxor rotr a 13 lxor rotr a 22)
      + (a land b lxor (a land c) lxor (b land c)))
      land mask
    in
    ra := (t1 + t2) land mask;
    rb := a;
    rc := b;
    rd := c;
    re := (d + t1) land mask;
    rf := e;
    rg := f;
    rh := g
  done;
  h.(0) <- (h.(0) + !ra) land mask;
  h.(1) <- (h.(1) + !rb) land mask;
  h.(2) <- (h.(2) + !rc) land mask;
  h.(3) <- (h.(3) + !rd) land mask;
  h.(4) <- (h.(4) + !re) land mask;
  h.(5) <- (h.(5) + !rf) land mask;
  h.(6) <- (h.(6) + !rg) land mask;
  h.(7) <- (h.(7) + !rh) land mask

let feed_bytes ctx b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  let w = Domain.DLS.get w_key in
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled block buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx.h w ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx.h w b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (pad_len + i)
      (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  (* Bypass [total] accounting: feed the padding directly. *)
  let saved = ctx.total in
  feed_bytes ctx tail 0 (Bytes.length tail);
  ctx.total <- saved;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_list parts =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finalize ctx

let hash_to_int s =
  let d = digest s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int
