type secret_key = Uint256.t
type public_key = Secp256k1.point

let n = Secp256k1.n

(* Hash arbitrary bytes onto the scalar field, rejecting 0. *)
let hash_to_scalar parts =
  let rec go parts =
    let h = Uint256.of_bytes_be (Sha256.digest_list parts) in
    let s = Uint256.mod_reduce ~modulus:n h in
    if Uint256.is_zero s then go (parts @ [ "retry" ]) else s
  in
  go parts

let keypair_of_seed seed =
  let sk = hash_to_scalar [ "lo-keygen"; seed ] in
  (sk, Secp256k1.mul_g sk)

let public_key sk = Secp256k1.mul_g sk
let public_key_bytes = Secp256k1.encode_compressed

let public_key_of_bytes s =
  match Secp256k1.decode_compressed s with
  | Some pt when not (Secp256k1.is_infinity pt) -> Some pt
  | Some _ | None -> None

let secret_key_bytes = Uint256.to_bytes_be

let affine_x pt =
  match Secp256k1.to_affine pt with
  | Some (x, _) -> x
  | None -> invalid_arg "Schnorr: unexpected point at infinity"

let challenge ~rx ~pk_bytes msg =
  hash_to_scalar [ "lo-schnorr"; Uint256.to_bytes_be rx; pk_bytes; msg ]

let sign sk msg =
  let pk = public_key sk in
  let k = hash_to_scalar [ "lo-nonce"; Uint256.to_bytes_be sk; msg ] in
  let r = Secp256k1.mul_g k in
  let rx = affine_x r in
  let e = challenge ~rx ~pk_bytes:(public_key_bytes pk) msg in
  let s =
    Uint256.mod_add ~modulus:n k (Uint256.mod_mul ~modulus:n e sk)
  in
  Uint256.to_bytes_be rx ^ Uint256.to_bytes_be s

(* The reference verifier: the generic double-and-add ladder, one
   signature at a time. [batch_verify] must agree with this on every
   index (qcheck-pinned), and its bisection path re-checks every blamed
   index here before naming a signer. *)
let verify pk ~msg ~signature =
  String.length signature = 64
  &&
  let rx = Uint256.of_bytes_be (String.sub signature 0 32) in
  let s = Uint256.of_bytes_be (String.sub signature 32 32) in
  Uint256.compare s n < 0
  && (not (Secp256k1.is_infinity pk))
  &&
  let e = challenge ~rx ~pk_bytes:(public_key_bytes pk) msg in
  (* R' = s*G - e*P should equal the R whose x-coordinate was signed. *)
  let r' =
    Secp256k1.add (Secp256k1.mul s Secp256k1.g)
      (Secp256k1.neg (Secp256k1.mul e pk))
  in
  (not (Secp256k1.is_infinity r')) && Uint256.equal (affine_x r') rx

(* --- Batch verification.

   There is no sound random-linear-combination aggregate here: [verify]
   accepts either y-parity of R (only R.x is signed), so the R_i cannot
   be reconstituted as group elements to sum. The batch path instead
   amortises the expensive parts per signature — fixed-base table for
   s*G, one wNAF precomp per distinct public key (signers repeat within
   a batch), and a single Montgomery inversion to normalise every R'
   in a chunk — and reports only "chunk clean" / "chunk dirty". A dirty
   chunk is bisected with the same kernel, and a signer is blamed only
   after the reference [verify] confirms the leaf, so accountability
   never rests on the fast path. --- *)

(* Per-chunk scratch: wNAF tables and encodings keyed by public key.
   Chunks fan out across domains, and each chunk builds its own cache,
   so nothing here is shared mutable state. *)
type pk_cache = (string, Secp256k1.precomp) Hashtbl.t

let kernel_one ~(cache : pk_cache) ~pk_bytes pk msg signature =
  (* Returns the candidate R' (Jacobian) when the signature is
     well-formed, or None when it is malformed / trivially invalid.
     The x-comparison happens after batch normalisation. *)
  if String.length signature <> 64 || Secp256k1.is_infinity pk then None
  else
    let s = Uint256.of_bytes_be (String.sub signature 32 32) in
    if Uint256.compare s n >= 0 then None
    else begin
      let rx = Uint256.of_bytes_be (String.sub signature 0 32) in
      let e = challenge ~rx ~pk_bytes msg in
      let tbl =
        match Hashtbl.find_opt cache pk_bytes with
        | Some tbl -> tbl
        | None ->
            let tbl = Secp256k1.precompute pk in
            Hashtbl.add cache pk_bytes tbl;
            tbl
      in
      (* s*G - e*P = s*G + (n - e)*P on the prime-order group. *)
      let e' = Uint256.mod_sub ~modulus:n Uint256.zero e in
      let r' = Secp256k1.mul_add_precomp ~g_scalar:s e' tbl in
      if Secp256k1.is_infinity r' then None else Some (r', rx)
    end

(* True iff every signature in [lo, hi) passes the fast kernel. *)
let kernel_range sigs pk_bytes lo hi =
  let cache : pk_cache = Hashtbl.create 16 in
  let len = hi - lo in
  let points = Array.make len Secp256k1.infinity in
  let expected = Array.make len Uint256.zero in
  let ok = ref true in
  for i = lo to hi - 1 do
    let pk, msg, signature = sigs.(i) in
    match pk_bytes.(i) with
    | None -> ok := false
    | Some pkb -> (
        match kernel_one ~cache ~pk_bytes:pkb pk msg signature with
        | None -> ok := false
        | Some (r', rx) ->
            points.(i - lo) <- r';
            expected.(i - lo) <- rx)
  done;
  (* One shared inversion normalises the whole chunk's R' points. *)
  if !ok then begin
    let affine = Secp256k1.to_affine_batch points in
    Array.iteri
      (fun j xy ->
        match xy with
        | Some (x, _) -> if not (Uint256.equal x expected.(j)) then ok := false
        | None -> ok := false)
      affine
  end;
  !ok

let reference_invalid sigs lo hi =
  let bad = ref [] in
  for i = hi - 1 downto lo do
    let pk, msg, signature = sigs.(i) in
    if not (verify pk ~msg ~signature) then bad := i :: !bad
  done;
  !bad

(* [lo, hi) failed the kernel: narrow with the kernel, blame with the
   reference verifier. If the halves disagree with the parent (a fast
   path bug rather than a bad signature), fall back to scanning the
   range with [verify] so the outcome is still the reference one. *)
let rec bisect sigs pk_bytes lo hi =
  if hi - lo <= 1 then reference_invalid sigs lo hi
  else begin
    let mid = (lo + hi) / 2 in
    let left_ok = kernel_range sigs pk_bytes lo mid in
    let right_ok = kernel_range sigs pk_bytes mid hi in
    if left_ok && right_ok then reference_invalid sigs lo hi
    else
      (if left_ok then [] else bisect sigs pk_bytes lo mid)
      @ if right_ok then [] else bisect sigs pk_bytes mid hi
  end

let batch_chunk = 32

let batch_verify ?run_chunks sigs =
  let count = Array.length sigs in
  if count = 0 then `All_valid
  else begin
    (* Normalise and encode every distinct public key once up front;
       the encodings key the per-chunk wNAF caches and feed the
       challenge hash. *)
    let pk_affine =
      Secp256k1.to_affine_batch (Array.map (fun (pk, _, _) -> pk) sigs)
    in
    let pk_bytes =
      Array.map
        (function
          | None -> None
          | Some (x, y) ->
              let parity = if Uint256.bit y 0 then "\x03" else "\x02" in
              Some (parity ^ Uint256.to_bytes_be x))
        pk_affine
    in
    let ranges =
      let r = ref [] in
      let lo = ref 0 in
      while !lo < count do
        let hi = min count (!lo + batch_chunk) in
        r := (!lo, hi) :: !r;
        lo := hi
      done;
      List.rev !r
    in
    let thunks =
      List.map (fun (lo, hi) -> fun () -> kernel_range sigs pk_bytes lo hi) ranges
    in
    let results =
      match run_chunks with
      | None -> List.map (fun f -> f ()) thunks
      | Some run -> run thunks
    in
    let bad =
      List.concat
        (List.map2
           (fun (lo, hi) ok -> if ok then [] else bisect sigs pk_bytes lo hi)
           ranges results)
    in
    match List.sort_uniq compare bad with
    | [] -> `All_valid
    | bad -> `Invalid bad
  end
