let block_size = 64

let derive_pads key =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  let ipad = Bytes.make block_size '\x36' in
  let opad = Bytes.make block_size '\x5c' in
  for i = 0 to String.length key - 1 do
    let c = Char.code key.[i] in
    Bytes.set ipad i (Char.chr (c lxor 0x36));
    Bytes.set opad i (Char.chr (c lxor 0x5c))
  done;
  (Bytes.unsafe_to_string ipad, Bytes.unsafe_to_string opad)

let sha256_list ~key parts =
  let ipad, opad = derive_pads key in
  let inner = Sha256.digest_list (ipad :: parts) in
  Sha256.digest_list [ opad; inner ]

let sha256 ~key msg = sha256_list ~key [ msg ]

(* Midstate caching: both pads are exactly one SHA-256 block, so their
   compressions depend only on the key. Precomputing the two contexts
   once per key halves the compression count for short messages (4 to
   2), which is where the simulation signer lives. *)
module Keyed = struct
  type t = { inner : Sha256.ctx; outer : Sha256.ctx }

  let create ~key =
    let ipad, opad = derive_pads key in
    let inner = Sha256.init () in
    Sha256.feed inner ipad;
    let outer = Sha256.init () in
    Sha256.feed outer opad;
    { inner; outer }

  let sha256_list t parts =
    let ctx = Sha256.copy t.inner in
    List.iter (Sha256.feed ctx) parts;
    let tag = Sha256.finalize ctx in
    let ctx = Sha256.copy t.outer in
    Sha256.feed ctx tag;
    Sha256.finalize ctx

  let sha256 t msg =
    let ctx = Sha256.copy t.inner in
    Sha256.feed ctx msg;
    let tag = Sha256.finalize ctx in
    let ctx = Sha256.copy t.outer in
    Sha256.feed ctx tag;
    Sha256.finalize ctx
end
