(** Domain pool for independent experiment repetitions.

    The experiment sweeps (Sec. 6 of the paper) repeat the same
    simulation under different seeds and parameters; every rep is a
    closed world — its own network, event queue and RNG — so they fan
    out across OCaml 5 domains freely. Results come back in submission
    order, making [map f items] observably identical to [List.map f
    items]: same values, same order, and (because tasks share no
    mutable state) byte-identical downstream figures and traces
    whatever the pool size. *)

val jobs : unit -> int
(** Pool size: the [LO_JOBS] environment variable when set ([1] forces
    the plain sequential path), otherwise the session default from
    {!set_default_jobs}, otherwise [Domain.recommended_domain_count].
    @raise Invalid_argument if [LO_JOBS] is not a positive integer. *)

val set_default_jobs : int -> unit
(** Process-wide default used when [LO_JOBS] is unset (e.g. a CLI
    [--jobs] flag). @raise Invalid_argument on [n < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items] applies [f] to every item on a pool of [jobs] domains
    (default {!jobs} [()]) and returns the results in submission order.
    With [jobs <= 1] (or fewer than two items) no domain is spawned and
    this is exactly [List.map f items]. If any task raises, the
    remaining tasks still run and the exception of the lowest-index
    failed task is re-raised after the pool drains. *)
