(** Statistics collectors for experiments. *)

module Stats : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.5] is the median (nearest-rank on the collected
      samples). 0 when empty. *)

  val values : t -> float list

  val absorb : t -> t -> unit
  (** [absorb t src] re-adds every sample of [src] into [t] in [src]'s
      insertion order — the same floating-point operation sequence as
      adding them to [t] directly, so merging per-rep collectors in rep
      order reproduces the sequential run's statistics exactly. *)
end

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  (** Out-of-range samples clamp into the edge bins. *)

  val total : t -> int

  val absorb : t -> t -> unit
  (** Add [src]'s bin counts into [t]. @raise Invalid_argument unless
      both histograms share range and bin count. *)

  val bin_edges : t -> (float * float) array
  val counts : t -> int array
  val density : t -> float array
  (** Normalised so the bins sum to 1 (zeros when empty). *)
end

(** Latency bookkeeping: start times by key, durations out. *)
module Timing : sig
  type t

  val create : unit -> t

  val started : t -> key:string -> at:float -> unit
  (** Arm (or re-arm) the start time for [key]. A later [started]
      replaces a pending start; it does NOT reset a key that already
      finished — each key measures its first completed interval only. *)

  val finish : t -> key:string -> at:float -> float option
  (** Duration since [started], recorded once per key {e ever}: the
      first finish of an armed key returns [Some]; every later finish
      of that key returns [None] even if [started] was called again in
      between (re-starting after a finish does not re-arm). Finishing a
      key that was never started returns [None]. This is what makes the
      first-arrival latency probes idempotent under duplicate delivery. *)

  val start_time : t -> key:string -> float option
  val pending : t -> int
end
