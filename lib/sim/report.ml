let pr fmt = Printf.printf fmt

let rule width = pr "%s\n" (String.make width '-')

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         row)
  in
  let width = String.length (render header) in
  pr "\n== %s ==\n" title;
  pr "%s\n" (render header);
  rule width;
  List.iter (fun row -> pr "%s\n" (render row)) rows

(* Non-finite values (a metric that never reached its target reports
   [infinity]) render as an empty bar rather than crashing
   [String.make]; [vmax] is computed over finite entries only. *)
let bar width v vmax =
  if vmax <= 0. || not (Float.is_finite v) then ""
  else
    String.make
      (max 0 (int_of_float (Float.round (width *. Float.min v vmax /. vmax))))
      '#'

let finite_max =
  List.fold_left (fun m v -> if Float.is_finite v then Float.max m v else m) 0.

let bar_chart ~title entries =
  pr "\n== %s ==\n" title;
  let vmax = finite_max (List.map snd entries) in
  let label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      pr "%-*s  %12.3f  %s\n" label_w label v (bar 40. v vmax))
    entries

let series ~title ~x_label ~y_label points =
  pr "\n== %s ==\n" title;
  pr "%14s  %14s\n" x_label y_label;
  let vmax = finite_max (List.map snd points) in
  List.iter
    (fun (x, y) -> pr "%14.3f  %14.3f  %s\n" x y (bar 40. y vmax))
    points

let histogram ~title ~edges ~density =
  pr "\n== %s ==\n" title;
  let vmax = Array.fold_left Float.max 0. density in
  Array.iteri
    (fun i (lo, hi) ->
      pr "[%6.2f, %6.2f)  %6.4f  %s\n" lo hi density.(i)
        (bar 40. density.(i) vmax))
    edges

let seconds v = Printf.sprintf "%.3f s" v

let bytes n =
  let f = float_of_int n in
  if f >= 1048576. then Printf.sprintf "%.2f MB" (f /. 1048576.)
  else if f >= 1024. then Printf.sprintf "%.2f KB" (f /. 1024.)
  else Printf.sprintf "%d B" n
