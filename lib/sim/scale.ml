module Rng = Lo_net.Rng
open Lo_core

(* Paper-scale sweeps: a 10,000-node fig6-style run decomposed into
   independent shard worlds fanned across {!Parallel} domains.

   Each shard is a closed deployment — its own network, event queue,
   RNG, directory/interner, tx pool and trace — seeded from (seed,
   shard index) only, so the result is a pure function of the inputs:
   whatever LO_JOBS says, shard reports and the merged JSONL (shard
   order, submission order within a shard) are byte-identical. *)

type shard_report = {
  shard : int;
  seed : int;
  nodes : int;
  adversaries : int;
  events : int;  (* total trace events (detects ring eviction) *)
  evicted : int;
  txs : int;
  delivered : int;  (* workload txs whose content reached some node *)
  honest_exposures : int;
  detections : int;  (* audit violations naming a configured adversary *)
  failures : string list;  (* violations blaming honest nodes / stream *)
  jsonl : string option;  (* only when a merged export was requested *)
}

type report = {
  n : int;
  shards : shard_report list;
  events : int;
  txs : int;
  delivered : int;
  honest_exposures : int;
  detections : int;
  failures : string list;
  wall_s : float;
  peak_rss_mb : float option;  (* Linux VmHWM; None elsewhere *)
}

let ok r = r.failures = [] && r.honest_exposures = 0

(* Peak resident set of this process, from /proc/self/status (kB).
   Covers every domain of the sweep — exactly the laptop-RAM number the
   bench rows defend. *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6))
                " %d kB" (fun kb -> Some (float_of_int kb /. 1024.))
            else scan ()
      in
      let r = (try scan () with Scanf.Scan_failure _ | Failure _ -> None) in
      close_in ic;
      r

let default_shard_nodes = 625

(* Same marking scheme as the fig6 sweep: a seeded rng picks
   [fraction * nodes] distinct silent censors. *)
let mark_malicious ~rng ~n ~fraction =
  let malicious = Array.make n false in
  let num_bad =
    if fraction <= 0. then 0
    else Stdlib.max 1 (int_of_float (fraction *. float_of_int n))
  in
  let rec mark remaining =
    if remaining > 0 then begin
      let i = Rng.int rng n in
      if malicious.(i) then mark remaining
      else begin
        malicious.(i) <- true;
        mark (remaining - 1)
      end
    end
  in
  mark num_bad;
  (malicious, num_bad)

let run_shard ~shard ~seed ~nodes ~fraction ~rate ~duration ~drain
    ~digest_history ~trace_capacity ~export () =
  let shard_seed = seed + (shard * 1000) in
  let pick_rng = Rng.create (shard_seed + 5) in
  let malicious, num_bad = mark_malicious ~rng:pick_rng ~n:nodes ~fraction in
  let trace = Lo_obs.Trace.create ~capacity:trace_capacity () in
  let delivered = ref 0 in
  let scale =
    { Runner.nodes; reps = 1; rate; duration; seed = shard_seed }
  in
  let run =
    Runner.run_lo ~scale ~seed:shard_seed ~n:nodes ~malicious
      ~behaviors:(fun i ->
        if malicious.(i) then Node.Silent_censor else Node.Honest)
      ~config:(fun c -> { c with Node.digest_history })
      ~rotate_period:5.0 ~drain ~trace
      ~blocks:(Policy.Lo_fifo, 4.0)
      ~wire:(fun r ->
        (* First content arrival per workload tx, anywhere. *)
        let seen = Hashtbl.create 1024 in
        Array.iter
          (fun node ->
            (Node.hooks node).Node.on_tx_content <-
              (fun tx ->
                if
                  Hashtbl.mem r.Runner.created tx.Tx.id
                  && not (Hashtbl.mem seen tx.Tx.id)
                then begin
                  Hashtbl.add seen tx.Tx.id ();
                  incr delivered
                end))
          r.Runner.deployment.Scenario.nodes)
      ()
  in
  let audit = Lo_obs.Audit.check_trace ~horizon:run.Runner.horizon trace in
  let is_adv i = i >= 0 && i < nodes && malicious.(i) in
  let detections, failures =
    List.partition
      (fun (v : Lo_obs.Audit.violation) -> is_adv v.node)
      audit.Lo_obs.Audit.violations
  in
  let honest_exposures =
    List.length
      (List.filter
         (fun (_, _, accused) -> not (is_adv accused))
         (Lo_obs.Query.exposures (Lo_obs.Trace.events trace)))
  in
  {
    shard;
    seed = shard_seed;
    nodes;
    adversaries = num_bad;
    events = Lo_obs.Trace.total trace;
    evicted = Lo_obs.Trace.evicted trace;
    txs = List.length run.Runner.txs;
    delivered = !delivered;
    honest_exposures;
    detections = List.length detections;
    failures =
      List.map Lo_obs.Audit.violation_to_string failures
      @
      (if Lo_obs.Trace.evicted trace > 0 then
         [
           Printf.sprintf "shard %d evicted %d events (ring too small)" shard
             (Lo_obs.Trace.evicted trace);
         ]
       else []);
    jsonl = (if export then Some (Lo_obs.Jsonl.to_string trace) else None);
  }

let shard_sizes ~n ~shards =
  let base = n / shards and extra = n mod shards in
  List.init shards (fun i -> base + if i < extra then 1 else 0)

let sweep ?shards ?(malicious_fraction = 0.1) ?(rate = 10.) ?(duration = 5.)
    ?(drain = 30.) ?(digest_history = 16) ?trace_capacity ?out
    ?(jobs : int option) ~n ~seed () =
  let shards =
    match shards with
    | Some s when s >= 1 -> s
    | Some _ -> invalid_arg "Scale.sweep: shards must be >= 1"
    | None -> Stdlib.max 1 ((n + default_shard_nodes - 1) / default_shard_nodes)
  in
  if n < shards then invalid_arg "Scale.sweep: need at least one node per shard";
  let sizes = shard_sizes ~n ~shards in
  let trace_capacity =
    match trace_capacity with
    | Some c -> c
    | None ->
        (* Suspicion traffic grows ~ (shard nodes)^2 * fraction: a
           625-node shard at 10% censors and 30 s drain logs ~2,650
           events/node. 4,500/node leaves ~1.7x headroom; eviction is
           reported as a failure rather than silently tolerated. *)
        Stdlib.max 1_000_000 (4500 * ((n / shards) + 1))
  in
  let t0 = Lo_live.Clock.now_s () in
  let reports =
    Parallel.map ?jobs
      (fun (shard, nodes) ->
        run_shard ~shard ~seed ~nodes ~fraction:malicious_fraction ~rate
          ~duration ~drain ~digest_history ~trace_capacity
          ~export:(out <> None) ())
      (List.mapi (fun i nodes -> (i, nodes)) sizes)
  in
  let wall_s = Lo_live.Clock.now_s () -. t0 in
  (* Merged export in shard submission order: a pure function of (seed,
     shard count), whatever the domain pool size. *)
  (match out with
  | None -> ()
  | Some oc ->
      List.iter
        (fun (r : shard_report) ->
          match r.jsonl with Some s -> output_string oc s | None -> ())
        reports);
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    n;
    shards = reports;
    events = sum (fun (r : shard_report) -> r.events);
    txs = sum (fun (r : shard_report) -> r.txs);
    delivered = sum (fun (r : shard_report) -> r.delivered);
    honest_exposures = sum (fun (r : shard_report) -> r.honest_exposures);
    detections = sum (fun (r : shard_report) -> r.detections);
    failures = List.concat_map (fun (r : shard_report) -> r.failures) reports;
    wall_s;
    peak_rss_mb = peak_rss_mb ();
  }
