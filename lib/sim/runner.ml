module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer
open Lo_core

type scale = {
  nodes : int;
  reps : int;
  rate : float;
  duration : float;
  seed : int;
}

let default_scale = { nodes = 120; reps = 3; rate = 20.; duration = 20.; seed = 42 }

type workload =
  [ `Poisson | `Trace of Lo_workload.Trace.record list | `None ]

type run = {
  deployment : Scenario.lo_deployment;
  mutable txs : Tx.t list;
  created : (string, float) Hashtbl.t;
  fees : (string, int) Hashtbl.t;
  horizon : float;
  mutable fault_stats : Lo_net.Fault_plan.stats option;
}

let run_lo ?(config = fun c -> c) ?behaviors ?malicious ?loss_rate ?faults ?n
    ?rate ?duration ?(workload = `Poisson) ?workload_seed ?rotate_period
    ?blocks ?(blocks_only_honest = true) ?(drain = 20.)
    ?(wire = fun _ -> ()) ?(after_inject = fun _ -> ()) ?trace ~scale ~seed
    () =
  (* Wall-clock self-profiling: phase timings live beside the trace but
     outside the deterministic event stream (excluded from JSONL), so
     they never threaten byte-identical replays. *)
  let phase_clock = ref (Lo_live.Clock.now_s ()) in
  let note_phase name =
    match trace with
    | Some tr ->
        let now = Lo_live.Clock.now_s () in
        Lo_obs.Trace.note_phase tr name (now -. !phase_clock);
        phase_clock := now
    | None -> ()
  in
  let n = Option.value n ~default:scale.nodes in
  let rate = Option.value rate ~default:scale.rate in
  let workload_seed = Option.value workload_seed ~default:seed in
  let d =
    Scenario.build_lo ~config ?behaviors ?malicious ?loss_rate ?trace ~n ~seed
      ()
  in
  note_phase "build";
  let specs, wl_duration =
    match workload with
    | `Poisson ->
        let dur = Option.value duration ~default:scale.duration in
        (Scenario.standard_workload ~rate ~duration:dur ~seed:workload_seed ~n,
         dur)
    | `Trace trace ->
        let rng = Rng.create (workload_seed + 3) in
        let dur =
          match Lo_workload.Trace.stats trace with
          | Some (_, dur, _, _) -> dur
          | None -> 0.
        in
        (Lo_workload.Trace.to_specs rng trace ~num_nodes:n, dur)
    | `None -> ([], Option.value duration ~default:scale.duration)
  in
  let run =
    {
      deployment = d;
      txs = [];
      created = Hashtbl.create 1024;
      fees = Hashtbl.create 1024;
      horizon = wl_duration +. drain;
      fault_stats = None;
    }
  in
  wire run;
  note_phase "wire";
  let txs = Scenario.inject_workload d specs in
  run.txs <- txs;
  List.iter
    (fun tx ->
      Hashtbl.replace run.created tx.Tx.id tx.Tx.created_at;
      Hashtbl.replace run.fees tx.Tx.id tx.Tx.fee)
    txs;
  after_inject run;
  (match faults with
  | Some plan -> run.fault_stats <- Some (Scenario.apply_fault_plan d plan)
  | None -> ());
  (match rotate_period with
  | Some period -> Scenario.rotate_neighbors d ~period ~until:run.horizon
  | None -> ());
  (match blocks with
  | Some (policy, interval) ->
      Scenario.schedule_blocks d ~policy ~interval ~until:run.horizon
        ~only_honest:blocks_only_honest ()
  | None -> ());
  note_phase "inject";
  Network.run_until d.net run.horizon;
  note_phase "run";
  (* Close the bandwidth-conservation books on whatever the horizon cut
     off; only meaningful (and only a queue walk) when tracing. *)
  if trace <> None then Network.flush_in_flight d.net;
  run

let content_latency_probe run =
  let stats = Metrics.Stats.create () in
  let net = run.deployment.Scenario.net in
  Array.iter
    (fun node ->
      (Node.hooks node).Node.on_tx_content <-
        (fun tx ->
          let now = Network.now net in
          match Hashtbl.find_opt run.created tx.Tx.id with
          | Some t0 when now > t0 -> Metrics.Stats.add stats (now -. t0)
          | _ -> ()))
    run.deployment.Scenario.nodes;
  stats

let lo_content_tags = [ "lo:txs"; "lo:submit"; "lo:block" ]

let overhead_of net ~content_tags =
  List.fold_left
    (fun acc (tag, bytes) ->
      if List.mem tag content_tags then acc else acc + bytes)
    0
    (Network.bytes_by_tag net)

let protocol_overhead ?(content_tags = lo_content_tags) run =
  overhead_of run.deployment.Scenario.net ~content_tags

type baseline_node = {
  submit : Tx.t -> unit;
  on_content : (Tx.t -> now:float -> unit) -> unit;
}

let run_baseline ~make ~content_tags ?(drain = 15.) ~scale ~seed () =
  let n = scale.nodes in
  let scheme = Signer.simulation () in
  let net = Network.create ~num_nodes:n ~seed () in
  let rng = Rng.create ((seed * 31) + 7) in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:8 ~max_in:125 in
  let created = Hashtbl.create 1024 in
  let stats = Metrics.Stats.create () in
  let instances = make net scheme topo in
  List.iter
    (fun inst ->
      inst.on_content (fun (tx : Tx.t) ~now ->
          match Hashtbl.find_opt created tx.Tx.id with
          | Some t0 when now > t0 -> Metrics.Stats.add stats (now -. t0)
          | _ -> ()))
    instances;
  let client = Signer.make scheme ~seed:"baseline-client" in
  let specs =
    Scenario.standard_workload ~rate:scale.rate ~duration:scale.duration ~seed
      ~n
  in
  List.iter
    (fun spec ->
      let tx =
        Tx.create ~signer:client ~fee:spec.Lo_workload.Tx_gen.fee
          ~created_at:spec.created_at
          ~payload:(Lo_workload.Tx_gen.payload spec)
      in
      Hashtbl.replace created tx.Tx.id spec.created_at;
      let origin = spec.origin mod n in
      Network.schedule_at net ~at:spec.created_at (fun _ ->
          (List.nth instances origin).submit tx))
    specs;
  Network.run_until net (scale.duration +. drain);
  let overhead = overhead_of net ~content_tags in
  (overhead, stats)
