module Stats = struct
  type t = {
    (* samples in insertion order, in an unboxed float array — a cons
       cell per sample was the sweep hot loop's dominant allocation *)
    mutable buf : float array;
    mutable count : int;
    mutable mean_v : float;
    mutable m2 : float;  (* sum of squared deviations from the running mean *)
    mutable min_v : float;
    mutable max_v : float;
    mutable sorted : float array option;
  }

  let create () =
    {
      buf = [||];
      count = 0;
      mean_v = 0.;
      m2 = 0.;
      min_v = infinity;
      max_v = neg_infinity;
      sorted = None;
    }

  (* Welford's online update: the naive sum_sq/n - mean^2 form loses all
     precision when stddev << mean (catastrophic cancellation). *)
  let add t v =
    if t.count = Array.length t.buf then begin
      let bigger = Array.make (Stdlib.max 16 (2 * t.count)) 0. in
      Array.blit t.buf 0 bigger 0 t.count;
      t.buf <- bigger
    end;
    t.buf.(t.count) <- v;
    t.count <- t.count + 1;
    let delta = v -. t.mean_v in
    t.mean_v <- t.mean_v +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (v -. t.mean_v));
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    t.sorted <- None

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean_v

  let stddev t =
    if t.count < 2 then 0.
    else sqrt (Float.max 0. (t.m2 /. float_of_int t.count))

  let min t = if t.count = 0 then 0. else t.min_v
  let max t = if t.count = 0 then 0. else t.max_v

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.sub t.buf 0 t.count in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then 0.
    else begin
      let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      a.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
    end

  let values t = Array.to_list (Array.sub t.buf 0 t.count)

  (* Replays [src]'s samples through [add] in their insertion order, so
     folding per-rep collectors into one (the parallel experiment join)
     performs bit-for-bit the same float operations as feeding one
     shared collector sequentially — and allocates nothing beyond the
     destination's own growth (no intermediate list). *)
  let absorb t src =
    for i = 0 to src.count - 1 do
      add t src.buf.(i)
    done
end

module Histogram = struct
  (* Fixed bin array, preallocated at creation — [add] and [absorb]
     allocate nothing (the expression below must keep its exact
     operation order: bin edges are float-rounding-sensitive). *)
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t v =
    let bins = Array.length t.counts in
    let idx =
      int_of_float (float_of_int bins *. (v -. t.lo) /. (t.hi -. t.lo))
    in
    let idx = Stdlib.max 0 (Stdlib.min (bins - 1) idx) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let total t = t.total

  let absorb t src =
    if
      Array.length t.counts <> Array.length src.counts
      || t.lo <> src.lo || t.hi <> src.hi
    then invalid_arg "Histogram.absorb: incompatible histograms";
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) src.counts;
    t.total <- t.total + src.total

  let bin_edges t =
    let bins = Array.length t.counts in
    let w = (t.hi -. t.lo) /. float_of_int bins in
    Array.init bins (fun i ->
        (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w)))

  let counts t = Array.copy t.counts

  let density t =
    if t.total = 0 then Array.make (Array.length t.counts) 0.
    else
      Array.map (fun c -> float_of_int c /. float_of_int t.total) t.counts
end

module Timing = struct
  type t = {
    starts : (string, float) Hashtbl.t;
    finished : (string, unit) Hashtbl.t;
  }

  let create () = { starts = Hashtbl.create 256; finished = Hashtbl.create 256 }
  let started t ~key ~at = Hashtbl.replace t.starts key at

  let finish t ~key ~at =
    if Hashtbl.mem t.finished key then None
    else
      match Hashtbl.find_opt t.starts key with
      | None -> None
      | Some start ->
          Hashtbl.add t.finished key ();
          Some (at -. start)

  let start_time t ~key = Hashtbl.find_opt t.starts key
  let pending t = Hashtbl.length t.starts - Hashtbl.length t.finished
end
