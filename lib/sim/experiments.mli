(** The paper's evaluation, experiment by experiment (Sec. 6).

    Every function runs self-contained simulations at a configurable
    (laptop) scale, prints a paper-style table/series via {!Report}, and
    returns the measured numbers so tests and benches can assert on the
    shapes. Absolute values differ from the paper's 10,000-node cluster;
    EXPERIMENTS.md records both. *)

type scale = Runner.scale = {
  nodes : int;
  reps : int;  (** independent repetitions averaged *)
  rate : float;  (** workload, transactions per second *)
  duration : float;  (** workload length, seconds *)
  seed : int;
}

val default_scale : scale
val scaled : ?factor:float -> scale -> scale
(** Multiply node count by [factor] (for quick/full switching). *)

(** {1 Fig. 6 — resilience to malicious miners} *)

type fig6_point = {
  fraction : float;
  suspicion_time : float;  (** avg time for correct nodes to suspect all faulty *)
  suspicion_complete : float;  (** fraction of (correct, faulty) pairs suspected *)
  exposure_spread : float;
      (** time from first exposure to all correct nodes exposing *)
  exposure_complete : float;
}

val fig6 : ?scale:scale -> ?fractions:float list -> unit -> fig6_point list

(** {1 Fig. 7 — mempool inclusion latency} *)

type fig7_result = {
  mean_latency : float;
  p50 : float;
  p95 : float;
  density_edges : (float * float) array;
  density : float array;
  samples : int;
  mean_interactions : float;
      (** average number of reconciliation rounds a node opened between
          a transaction's creation and its arrival — the paper's
          "convergence after interacting with 5 to 6 nodes" *)
}

val fig7 : ?scale:scale -> unit -> fig7_result

(** {1 Fig. 8 — block inclusion latency} *)

type fig8_policy_result = {
  policy : string;
  mean : float;
  stddev : float;
  p50_b : float;
  p95_b : float;
  included : int;
  low_fee_mean : float;  (** mean latency of the cheapest-quartile txs *)
  high_fee_mean : float;  (** mean latency of the priciest-quartile txs *)
}

val fig8_left : ?scale:scale -> unit -> fig8_policy_result list
(** FIFO (LØ) vs Highest-Fee, 12 s blocks. *)

val fig8_right : ?scale:scale -> ?sizes:int list -> unit -> (int * float) list
(** (system size, mean inclusion latency) for the FIFO policy. *)

(** {1 Fig. 9 — bandwidth overhead} *)

type fig9_row = {
  protocol : string;
  overhead_bytes : int;
  overhead_per_node_s : float;
  content_latency : float;  (** mean content-arrival latency, seconds *)
}

val fig9 : ?scale:scale -> unit -> fig9_row list

(** {1 Fig. 10 — reconciliations per minute vs workload} *)

val fig10 : ?scale:scale -> ?rates:float list -> unit -> (float * float) list
(** (tx/s, average sketch reconciliations per node per minute). *)

(** {1 Sec. 6.5 — memory and CPU overhead} *)

type decode_cost = {
  diff : int;
  monolithic_ms : float;
  partitioned_ms : float;
  partition_reconciliations : int;
}

type memcpu_result = {
  decode_costs : decode_cost list;
  commitment_sizes : (float * int) list;  (** (tx/min, digest bytes) *)
  memory_10k_nodes : int;  (** bytes to retain one digest per 10k peers *)
  storage_per_node : int;  (** measured commitment-log bytes after a run *)
}

val memcpu : ?scale:scale -> ?diffs:int list -> unit -> memcpu_result

(** {1 Ablations — the design choices DESIGN.md calls out} *)

type ablation_result = {
  light_overhead : int;  (** LØ overhead bytes with light digests (default) *)
  full_overhead : int;  (** same run shipping the full sketch every message *)
  light_latency : float;
  full_latency : float;
  share_period_exposure : (float * float) list;
      (** digest-share period (s) -> mean time to first network-wide
          exposure of an equivocator *)
}

val ablation : ?scale:scale -> unit -> ablation_result
(** (a) Light vs full digests: how much of Fig. 9's advantage comes from
    the clock-first wire format. (b) Digest-share period vs equivocation
    exposure latency: the cost/latency dial of commitment gossip. *)

(** {1 Trace replay} *)

type replay_result = {
  trace_txs : int;
  trace_duration : float;
  replay_mean_latency : float;
  replay_p95 : float;
  delivered : int;  (** content deliveries (txs x nodes) *)
  audit_violations : int;
      (** {!Lo_obs.Audit} violations over the run's event trace (0 when
          auditing was off) *)
}

val replay :
  ?scale:scale ->
  ?audit:bool ->
  trace:Lo_workload.Trace.record list ->
  unit ->
  replay_result
(** Run the Fig. 7 dissemination measurement on an externally supplied
    transaction trace (the paper replays an Ethereum trace; [lo replay
    --trace FILE] feeds a CSV through this). [audit] additionally traces
    the run and replays the trace through the invariant checker. *)

(** {1 Chaos — fault injection (robustness)} *)

type chaos_cell = {
  churn_rate : float;  (** crashes per second, network-wide *)
  partition_duration : float;  (** seconds each partition window lasts *)
  burst_loss : float;  (** loss rate during loss bursts *)
  crashes : int;  (** crash faults that fired (summed over reps) *)
  restarts : int;
  fault_kinds : int;  (** distinct fault kinds injected (max over reps) *)
  mean_tx_latency : float;
  p95_tx_latency : float;
  reconcile_attempts : int;
  reconcile_completes : int;
  reconcile_success : float;  (** completes / attempts *)
  suspicions : int;  (** suspicion events raised across all nodes *)
  withdrawn : int;  (** suspicion-cleared events (incl. withdrawals) *)
  resolution_rate : float;
      (** fraction of raised suspicions no longer standing at the
          horizon (1.0 when none were raised) *)
  honest_exposures : int;
      (** exposures of honest nodes — the acceptance property demands 0:
          benign faults may be suspected but never blamed (Sec. 4) *)
  audit_violations : int;
      (** {!Lo_obs.Audit} violations summed over the cell's reps (0 when
          auditing was off) *)
}

val chaos :
  ?scale:scale ->
  ?churn_rates:float list ->
  ?partition_durations:float list ->
  ?burst_losses:float list ->
  ?audit:bool ->
  unit ->
  chaos_cell list
(** Sweep churn rate x partition duration x loss-burst intensity (with
    background latency spikes and asymmetric link degradation in every
    cell), all nodes honest, and report latency, reconciliation success,
    and the suspicion/withdrawal/exposure ledger per cell. A value of 0
    disables that fault dimension for the cell. [audit] traces every rep
    and replays it through {!Lo_obs.Audit} (tracing never perturbs the
    simulation, so cells are identical with auditing on or off). *)

(** {1 Trace — full-run observability} *)

type trace_kind =
  [ `Baseline  (** healthy network with FIFO block production *)
  | `Chaos  (** one mid-intensity fault-injection cell, all honest *)
  | `Adversary
    (** node 0 is a {!Lo_core.Node.Silent_censor}: the audit must fail,
        naming node 0 (suspicions of it can never resolve) *) ]

type trace_run_result = {
  trace : Lo_obs.Trace.t;
  horizon : float;  (** simulated time the run ended at *)
  audit : Lo_obs.Audit.report;
}

val trace_run :
  ?scale:scale -> ?capacity:int -> kind:trace_kind -> unit -> trace_run_result
(** Run one fully traced scenario, print event/flow/phase summaries and
    the audit verdict, and hand back the trace for export ([lo trace]
    writes it as JSONL). [capacity] bounds the event ring (default
    {!Lo_obs.Trace.create}'s). *)
