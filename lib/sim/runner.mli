(** The shared experiment harness.

    Every figure follows the same life cycle: build a deployment
    ({!Scenario.build_lo}), wire measurement hooks, generate and inject
    a workload, optionally rotate neighbours / schedule blocks, drive
    the network to a horizon (workload duration + drain), and read the
    metrics back. {!run_lo} owns that cycle; experiments only supply the
    knobs and hooks that differ. {!run_baseline} is the equivalent cycle
    for the non-LØ protocols of Fig. 9. *)

type scale = {
  nodes : int;
  reps : int;  (** independent repetitions averaged *)
  rate : float;  (** workload, transactions per second *)
  duration : float;  (** workload length, seconds *)
  seed : int;
}

val default_scale : scale

type workload =
  [ `Poisson  (** {!Scenario.standard_workload} at [rate] for [duration] *)
  | `Trace of Lo_workload.Trace.record list
      (** replay an external trace; duration comes from the trace *)
  | `None ]

type run = {
  deployment : Scenario.lo_deployment;
  mutable txs : Lo_core.Tx.t list;  (** injected workload transactions *)
  created : (string, float) Hashtbl.t;  (** txid -> creation time *)
  fees : (string, int) Hashtbl.t;  (** txid -> fee *)
  horizon : float;  (** simulated time the run ends at *)
  mutable fault_stats : Lo_net.Fault_plan.stats option;
      (** per-kind counts of faults that actually fired (set when a
          fault plan was given; final once the run returns) *)
}

val run_lo :
  ?config:(Lo_core.Node.config -> Lo_core.Node.config) ->
  ?behaviors:(int -> Lo_core.Node.behavior) ->
  ?malicious:bool array ->
  ?loss_rate:float ->
  ?faults:Lo_net.Fault_plan.t ->
  ?n:int ->
  ?rate:float ->
  ?duration:float ->
  ?workload:workload ->
  ?workload_seed:int ->
  ?rotate_period:float ->
  ?blocks:Lo_core.Policy.t * float ->
  ?blocks_only_honest:bool ->
  ?drain:float ->
  ?wire:(run -> unit) ->
  ?after_inject:(run -> unit) ->
  ?trace:Lo_obs.Trace.t ->
  scale:scale ->
  seed:int ->
  unit ->
  run
(** One complete LØ run. Stages, in order: build (seeded [seed];
    [n]/[rate]/[duration] default to the scale's), [wire] hooks
    (called before any event executes; [run.created] is still empty but
    the tables are live at event time), inject the workload (filling
    [txs]/[created]/[fees]), [after_inject] (schedule extra events),
    install the fault plan [faults] (if given; stats land in
    [fault_stats]), neighbour rotation every [rotate_period] (if
    given), block production with ([policy], [interval]) (if given;
    [blocks_only_honest] — default [true], matching the paper's
    leader-election model — excludes faulty miners from leadership;
    the conformance fuzzer passes [false] so block-stage adversaries
    actually get to deviate), then [Network.run_until (workload
    duration + drain)] (drain default 20 s).

    [trace] attaches an observability sink for the whole life cycle:
    protocol events stream into it during the run, in-flight messages
    are flushed as [In_flight] drops at the horizon (closing the
    bandwidth-conservation books for {!Lo_obs.Audit}), and per-stage
    wall-clock timings are recorded via {!Lo_obs.Trace.note_phase}
    (kept outside the deterministic event stream). *)

val content_latency_probe : run -> Metrics.Stats.t
(** Install the standard Fig. 7/9 measurement on every node: record
    [now - created] for each first content arrival of a workload
    transaction (overwrites [on_tx_content]). Call from [wire]. *)

val lo_content_tags : string list
(** Message tags carrying transaction payloads in the LØ protocol;
    everything else is accountable-mempool overhead (Fig. 9). *)

val protocol_overhead : ?content_tags:string list -> run -> int
(** Bytes on the wire minus content-bearing tags (default
    {!lo_content_tags}). *)

(** A protocol instance in a baseline run: how to hand it a client
    transaction, and how to subscribe to first content arrival. *)
type baseline_node = {
  submit : Lo_core.Tx.t -> unit;
  on_content : (Lo_core.Tx.t -> now:float -> unit) -> unit;
}

val run_baseline :
  make:
    (Lo_net.Network.t ->
    Lo_crypto.Signer.scheme ->
    Lo_net.Topology.t ->
    baseline_node list) ->
  content_tags:string list ->
  ?drain:float ->
  scale:scale ->
  seed:int ->
  unit ->
  int * Metrics.Stats.t
(** Fig. 9 baseline cycle: paper topology (8 out / 125 in), the same
    Poisson workload as {!run_lo}, content-latency stats on every
    instance, and the non-content overhead after [duration + drain]
    (drain default 15 s). Returns (overhead bytes, latency stats). *)
