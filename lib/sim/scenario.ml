module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Topology = Lo_net.Topology
module Signer = Lo_crypto.Signer
open Lo_core

type lo_deployment = {
  net : Network.t;
  mux : Lo_net.Mux.t;
  nodes : Node.t array;
  directory : Directory.t;
  scheme : Signer.scheme;
  topology : Topology.t;
  client : Signer.t;
}

let build_lo ?(config = Fun.id) ?(behaviors = fun _ -> Node.Honest) ?malicious
    ?(loss_rate = 0.) ?trace ~n ~seed () =
  let scheme = Signer.simulation () in
  let net = Network.create ~loss_rate ~num_nodes:n ~seed () in
  (* Before Mux/node creation: node environments snapshot the sink. *)
  Network.set_trace net trace;
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i ->
        Signer.make scheme ~seed:(Printf.sprintf "lo-node-%d-%d" seed i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let topo_rng = Rng.create (seed * 31 + 7) in
  let topology =
    match malicious with
    | None -> Topology.build topo_rng ~n ~out_degree:8 ~max_in:125
    | Some malicious ->
        Topology.build_with_correct_core topo_rng ~malicious ~out_degree:8
          ~max_in:125
  in
  let node_config = config (Node.default_config scheme) in
  (* One canonical decoded instance per tx for the whole world: every
     node's mempool shares it instead of retaining its own copy. *)
  let tx_pool = Interner.Tx_pool.create () in
  let nodes =
    Array.init n (fun i ->
        let transport = Lo_net.Sim_transport.make ~net ~mux ~node:i in
        Node.create ~tx_pool node_config ~transport
          ~rng:(Rng.split (Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Topology.neighbors topology i)
          ~behavior:(behaviors i))
  in
  Array.iter Node.start nodes;
  let client = Signer.make scheme ~seed:(Printf.sprintf "client-%d" seed) in
  { net; mux; nodes; directory; scheme; topology; client }

let inject_workload d specs =
  List.map
    (fun spec ->
      let tx =
        Tx.create ~signer:d.client ~fee:spec.Lo_workload.Tx_gen.fee
          ~created_at:spec.created_at
          ~payload:(Lo_workload.Tx_gen.payload spec)
      in
      let origin = spec.origin mod Array.length d.nodes in
      Network.schedule_at d.net ~at:spec.created_at (fun _ ->
          Node.submit_tx d.nodes.(origin) tx);
      tx)
    specs

let schedule_blocks d ~policy ~interval ~until ?(only_honest = true) () =
  let rng = Rng.split (Network.rng d.net) in
  let honest =
    Array.to_list d.nodes
    |> List.filter_map (fun node ->
           match Node.behavior node with
           | Node.Honest -> Some (Node.index node)
           | _ -> if only_honest then None else Some (Node.index node))
  in
  let rec schedule at =
    if at <= until && honest <> [] then begin
      Network.schedule_at d.net ~at (fun _ ->
          let leader = Rng.pick_list rng honest in
          ignore (Node.build_block d.nodes.(leader) ~policy));
      schedule (at +. interval)
    end
  in
  schedule interval

let rotate_neighbors d ~period ~until =
  let rng = Rng.split (Network.rng d.net) in
  let n = Array.length d.nodes in
  let rec rotate at =
    if at <= until then begin
      Network.schedule_at d.net ~at (fun _ ->
          Array.iter
            (fun node ->
              let i = Node.index node in
              let exposed j =
                Accountability.is_exposed (Node.accountability node)
                  (Directory.id_of d.directory j)
              in
              let fresh =
                Lo_net.Peer_sampler.uniform_sample rng ~n ~k:8
                  ~exclude:(fun j -> j = i || exposed j)
              in
              if fresh <> [] then Node.set_neighbors node fresh)
            d.nodes);
      rotate (at +. period)
    end
  in
  rotate period

let attach_gossip_sampler d ?(period = 5.0) ~until () =
  let sampler =
    Lo_net.Peer_sampler.create d.mux d.net
      ~bootstrap:(fun i -> Topology.neighbors d.topology i)
  in
  Lo_net.Peer_sampler.start sampler;
  let rec refresh at =
    if at <= until then begin
      Network.schedule_at d.net ~at (fun _ ->
          Array.iter
            (fun node ->
              let i = Node.index node in
              let candidates =
                Lo_net.Peer_sampler.samples sampler i
                @ Lo_net.Peer_sampler.current_view sampler i
              in
              let exposed j =
                Accountability.is_exposed (Node.accountability node)
                  (Directory.id_of d.directory j)
              in
              let fresh =
                List.sort_uniq compare candidates
                |> List.filter (fun j -> j <> i && not (exposed j))
                |> List.filteri (fun k _ -> k < 8)
              in
              if List.length fresh >= 3 then Node.set_neighbors node fresh)
            d.nodes);
      refresh (at +. period)
    end
  in
  refresh period;
  sampler

let standard_workload ~rate ~duration ~seed ~n =
  let rng = Rng.create (seed * 97 + 13) in
  let config =
    { Lo_workload.Tx_gen.default_config with rate; duration }
  in
  Lo_workload.Tx_gen.generate rng config ~num_nodes:n

(* --- fault injection (chaos experiments, scripted churn) --- *)

let apply_fault_plan d plan = Lo_net.Fault_plan.install d.net plan
let crash_node d i = Network.crash d.net i
let restart_node d i = Network.restart d.net i
