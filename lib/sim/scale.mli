(** Paper-scale sweeps: fig6-style runs at thousands of nodes, sharded
    into independent worlds and fanned across {!Parallel} domains.

    The paper evaluated LØ on 10,000 emulated nodes; one flat DES world
    at that size is dominated by event-queue pressure and per-node
    state. This harness splits [n] nodes into [shards] closed worlds
    (own network, event queue, RNG, directory, tx pool, trace — shard
    worlds share nothing mutable), runs each with a seeded fraction of
    silent-censor adversaries under neighbour rotation and block
    production, audits every shard trace with the five replay
    invariants, and reclassifies violations that name a configured
    adversary as {e detections} (the protocol catching them — the fig6
    point); anything blaming an honest node, plus any honest exposure,
    is a {e failure}.

    Determinism: every shard is seeded from [(seed, shard)] only, and
    results merge in shard submission order, so reports and the merged
    JSONL export are byte-identical whatever [LO_JOBS] says — the
    golden-trace cram test pins exactly that. *)

type shard_report = {
  shard : int;
  seed : int;  (** the shard's derived seed *)
  nodes : int;
  adversaries : int;
  events : int;  (** total trace events, pre-eviction *)
  evicted : int;  (** > 0 means the ring was undersized — a failure *)
  txs : int;
  delivered : int;  (** workload txs whose content reached some node *)
  honest_exposures : int;
  detections : int;
  failures : string list;
  jsonl : string option;  (** set only when an export sink was given *)
}

type report = {
  n : int;
  shards : shard_report list;
  events : int;
  txs : int;
  delivered : int;
  honest_exposures : int;
  detections : int;
  failures : string list;
  wall_s : float;  (** host wall clock, whole sweep *)
  peak_rss_mb : float option;
      (** process-wide peak resident set (Linux [VmHWM]); [None] where
          /proc is unavailable *)
}

val ok : report -> bool
(** No failures and no honest exposures (detections are expected). *)

val peak_rss_mb : unit -> float option
(** This process's peak RSS in MB, covering every domain so far. *)

val default_shard_nodes : int
(** 625 — 10k nodes default to 16 shards. Suspicion traffic grows
    roughly with [(shard nodes)^2 * fraction], so smaller shards cost
    superlinearly less CPU and ring space per node; 16 shards still
    saturate a typical 8-core laptop. *)

val sweep :
  ?shards:int ->
  ?malicious_fraction:float ->
  ?rate:float ->
  ?duration:float ->
  ?drain:float ->
  ?digest_history:int ->
  ?trace_capacity:int ->
  ?out:out_channel ->
  ?jobs:int ->
  n:int ->
  seed:int ->
  unit ->
  report
(** Defaults: shards sized to {!default_shard_nodes}; 10% silent
    censors; 10 tx/s workload per shard for 5 s; 30 s drain (enough for
    retry escalation to raise suspicions and age them past the audit
    grace window); [digest_history] 16 (the memory-lean window — scale
    runs opt in, protocol behaviour at these horizons never reaches
    back further); trace ring sized ~1.7x the expected shard event count
    (eviction is reported as a failure, never ignored). [out] streams
    the merged JSONL (shard order); expect hundreds of MB at 10k nodes.
    [jobs] overrides the {!Parallel} pool size ([LO_JOBS] otherwise). *)
