(* Domain pool for embarrassingly parallel experiment sweeps.

   Tasks are drawn from a shared [Atomic] counter (work stealing by
   index), run on [jobs] domains, and joined in submission order — the
   caller sees exactly the list [List.map f items] would produce, with
   the first raised exception (by submission index) re-raised. Tasks
   must therefore be independent: each experiment rep builds its own
   network, RNG and protocol state from its seed, which is what keeps
   parallel output byte-identical to the sequential path. *)

let default_jobs = ref None

let jobs () =
  match Sys.getenv_opt "LO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> invalid_arg "LO_JOBS must be a positive integer")
  | None -> (
      match !default_jobs with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_default_jobs n =
  if n < 1 then invalid_arg "Parallel.set_default_jobs";
  default_jobs := Some n

type 'b slot = Pending | Done of 'b | Failed of exn

let map ?jobs:j f items =
  let jobs = match j with Some n -> n | None -> jobs () in
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          (* Failures are captured per-slot so one bad task neither
             kills its domain nor hides the results of the others. *)
          results.(i) <-
            (match f tasks.(i) with
            | v -> Done v
            | exception e -> Failed e)
      done
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed e -> raise e
           | Pending -> assert false)
         results)
  end
