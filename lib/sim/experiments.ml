module Network = Lo_net.Network
module Rng = Lo_net.Rng
module Signer = Lo_crypto.Signer
open Lo_core

(* Every experiment below is a thin parameterization of the shared
   {!Runner} life cycle (build -> wire hooks -> inject -> drive ->
   measure); only the knobs and measurement hooks differ per figure. *)

type scale = Runner.scale = {
  nodes : int;
  reps : int;
  rate : float;
  duration : float;
  seed : int;
}

let default_scale = Runner.default_scale

let scaled ?(factor = 1.0) scale =
  { scale with nodes = max 10 (int_of_float (float_of_int scale.nodes *. factor)) }

let avg xs =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Split a flat parallel-sweep result list back into the per-point
   groups it was submitted as ([Parallel.map] preserves submission
   order, so consecutive [n]-element slices are one sweep point's
   repetitions). *)
let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: tl ->
              let h, rest = take (k - 1) tl in
              (x :: h, rest)
      in
      let h, rest = take n l in
      h :: chunks n rest

(* ----------------------------------------------------------------- *)
(* Fig. 6                                                             *)
(* ----------------------------------------------------------------- *)

type fig6_point = {
  fraction : float;
  suspicion_time : float;
  suspicion_complete : float;
  exposure_spread : float;
  exposure_complete : float;
}

let fig6_run ~scale ~fraction ~rep =
  let n = scale.nodes in
  let num_bad = max 1 (int_of_float (fraction *. float_of_int n)) in
  let seed = scale.seed + (rep * 1000) + int_of_float (fraction *. 100.) in
  let pick_rng = Rng.create (seed + 5) in
  let malicious = Array.make n false in
  let rec mark remaining =
    if remaining > 0 then begin
      let i = Rng.int pick_rng n in
      if malicious.(i) then mark remaining
      else begin
        malicious.(i) <- true;
        mark (remaining - 1)
      end
    end
  in
  mark num_bad;
  let bad_set_of (d : Scenario.lo_deployment) =
    Array.to_list d.nodes
    |> List.filter_map (fun node ->
           if malicious.(Node.index node) then Some (Node.node_id node) else None)
    |> List.fold_left
         (fun s id ->
           Hashtbl.replace s id ();
           s)
         (Hashtbl.create 16)
  in
  (* --- Suspicion: silent censors --- *)
  let all_suspected_at = Array.make n infinity in
  ignore
    (Runner.run_lo ~scale ~seed ~n ~malicious
       ~behaviors:(fun i ->
         if malicious.(i) then Node.Silent_censor else Node.Honest)
       (* The paper's overlay shuffles continuously (Sec. 5.1). *)
       ~rotate_period:5.0 ~drain:30.
       ~wire:(fun r ->
         let d = r.Runner.deployment in
         let bad_set = bad_set_of d in
         Array.iter
           (fun node ->
             let i = Node.index node in
             if not malicious.(i) then begin
               let count = ref 0 in
               (Node.hooks node).Node.on_suspicion <-
                 (fun ~suspect ->
                   if Hashtbl.mem bad_set suspect then begin
                     incr count;
                     if !count = num_bad then
                       all_suspected_at.(i) <- Network.now d.Scenario.net
                   end);
               (Node.hooks node).Node.on_suspicion_cleared <-
                 (fun ~suspect ->
                   if Hashtbl.mem bad_set suspect then begin
                     decr count;
                     all_suspected_at.(i) <- infinity
                   end)
             end)
           d.nodes)
       ());
  let suspicion_times = ref [] and complete = ref 0 and correct_count = ref 0 in
  Array.iteri
    (fun i t ->
      if not malicious.(i) then begin
        incr correct_count;
        if t < infinity then begin
          incr complete;
          suspicion_times := t :: !suspicion_times
        end
      end)
    all_suspected_at;
  let suspicion_time = avg !suspicion_times in
  let suspicion_complete =
    float_of_int !complete /. float_of_int (max 1 !correct_count)
  in
  (* --- Exposure: equivocators --- *)
  (* Paper metric: once the first correct node detects a miner, how
     long until every correct node has learned that exposure. *)
  let first_at : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let last_at : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let pair_count : (string, int) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (Runner.run_lo ~scale ~seed ~n ~malicious
       ~behaviors:(fun i ->
         if malicious.(i) then Node.Equivocator else Node.Honest)
       ~workload_seed:(seed + 1) ~rotate_period:5.0 ~drain:90.
       ~wire:(fun r ->
         let d = r.Runner.deployment in
         let bad_set = bad_set_of d in
         Array.iter
           (fun node ->
             let i = Node.index node in
             if not malicious.(i) then
               (Node.hooks node).Node.on_exposure <-
                 (fun ~accused ->
                   if Hashtbl.mem bad_set accused then begin
                     let now = Network.now d.Scenario.net in
                     if not (Hashtbl.mem first_at accused) then
                       Hashtbl.add first_at accused now;
                     Hashtbl.replace last_at accused now;
                     Hashtbl.replace pair_count accused
                       (1
                       + Option.value
                           (Hashtbl.find_opt pair_count accused)
                           ~default:0)
                   end))
           d.nodes)
       ~after_inject:(fun r ->
         (* Make sure every equivocator actually equivocates: submit one
            transaction directly to each so its forks diverge. *)
         let d = r.Runner.deployment in
         Array.iteri
           (fun i node ->
             if malicious.(i) then begin
               let tx =
                 Tx.create ~signer:d.Scenario.client ~fee:10 ~created_at:0.5
                   ~payload:(Printf.sprintf "fork-%d" i)
               in
               Network.schedule_at d.Scenario.net ~at:0.5 (fun _ ->
                   Node.submit_tx node tx)
             end)
           d.Scenario.nodes)
       ());
  (* Spread of each fully propagated exposure; completeness over all
     (correct node, malicious node) pairs. *)
  let spreads = ref [] and covered_pairs = ref 0 in
  Hashtbl.iter
    (fun accused t_first ->
      let count = Option.value (Hashtbl.find_opt pair_count accused) ~default:0 in
      covered_pairs := !covered_pairs + count;
      if count = !correct_count then
        match Hashtbl.find_opt last_at accused with
        | Some t_last -> spreads := (t_last -. t_first) :: !spreads
        | None -> ())
    first_at;
  {
    fraction;
    suspicion_time;
    suspicion_complete;
    exposure_spread = avg !spreads;
    exposure_complete =
      float_of_int !covered_pairs
      /. float_of_int (max 1 (!correct_count * num_bad));
  }

let fig6 ?(scale = default_scale) ?(fractions = [ 0.1; 0.2; 0.3 ]) () =
  (* Every (fraction, rep) cell is a closed world keyed by its seed, so
     the whole grid fans out across the domain pool at once. *)
  let grid =
    List.concat_map
      (fun fraction -> List.init scale.reps (fun rep -> (fraction, rep)))
      fractions
  in
  let runs =
    Parallel.map (fun (fraction, rep) -> fig6_run ~scale ~fraction ~rep) grid
  in
  let points =
    List.map2
      (fun fraction runs ->
        {
          fraction;
          suspicion_time = avg (List.map (fun p -> p.suspicion_time) runs);
          suspicion_complete =
            avg (List.map (fun p -> p.suspicion_complete) runs);
          exposure_spread = avg (List.map (fun p -> p.exposure_spread) runs);
          exposure_complete =
            avg (List.map (fun p -> p.exposure_complete) runs);
        })
      fractions (chunks scale.reps runs)
  in
  Report.table ~title:"Fig. 6 — time to suspect/expose malicious miners"
    ~header:
      [ "malicious"; "suspicion (s)"; "susp. compl."; "exposure spread (s)";
        "expo. compl." ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%.0f%%" (100. *. p.fraction);
           Printf.sprintf "%.2f" p.suspicion_time;
           Printf.sprintf "%.2f" p.suspicion_complete;
           Printf.sprintf "%.2f" p.exposure_spread;
           Printf.sprintf "%.2f" p.exposure_complete;
         ])
       points);
  points

(* ----------------------------------------------------------------- *)
(* Fig. 7                                                             *)
(* ----------------------------------------------------------------- *)

type fig7_result = {
  mean_latency : float;
  p50 : float;
  p95 : float;
  density_edges : (float * float) array;
  density : float array;
  samples : int;
  mean_interactions : float;
}

let fig7_rep ~scale ~rep =
  let stats = Metrics.Stats.create () in
  let interactions = Metrics.Stats.create () in
  let hist = Metrics.Histogram.create ~lo:0. ~hi:5. ~bins:25 in
  let seed = scale.seed + (rep * 773) in
  (* Per-node count of reconciliation rounds opened, and per-tx
     snapshots of those counters at creation time — their difference
     at arrival is "how many peers this node interacted with before
     learning the transaction". *)
  let rounds = Array.make scale.nodes 0 in
  let snapshot_at_creation : (string, int array) Hashtbl.t =
    Hashtbl.create 1024
  in
  ignore
    (Runner.run_lo ~scale ~seed ~drain:20.
       ~wire:(fun r ->
         Array.iter
           (fun node ->
             let i = Node.index node in
             (Node.hooks node).Node.on_reconcile <-
               (fun () -> rounds.(i) <- rounds.(i) + 1);
             (Node.hooks node).Node.on_tx_content <-
               (fun tx ->
                 let now = Network.now r.Runner.deployment.Scenario.net in
                 match Hashtbl.find_opt r.Runner.created tx.Tx.id with
                 | Some t0 when now > t0 ->
                     let dt = now -. t0 in
                     Metrics.Stats.add stats dt;
                     Metrics.Histogram.add hist dt;
                     (match Hashtbl.find_opt snapshot_at_creation tx.Tx.id with
                     | Some snap ->
                         Metrics.Stats.add interactions
                           (float_of_int (rounds.(i) - snap.(i)))
                     | None -> ())
                 | _ -> ()))
           r.Runner.deployment.Scenario.nodes)
       ~after_inject:(fun r ->
         List.iter
           (fun tx ->
             Network.schedule_at r.Runner.deployment.Scenario.net
               ~at:tx.Tx.created_at (fun _ ->
                 Hashtbl.replace snapshot_at_creation tx.Tx.id
                   (Array.copy rounds)))
           r.Runner.txs)
       ());
  (stats, interactions, hist)

let fig7 ?(scale = default_scale) () =
  let stats = Metrics.Stats.create () in
  let interactions = Metrics.Stats.create () in
  let hist = Metrics.Histogram.create ~lo:0. ~hi:5. ~bins:25 in
  (* Reps collect into their own collectors in parallel; absorbing them
     back in rep order replays the exact sample sequence the old
     sequential loop fed the shared collectors. *)
  let per_rep =
    Parallel.map (fun rep -> fig7_rep ~scale ~rep)
      (List.init scale.reps Fun.id)
  in
  List.iter
    (fun (s, i, h) ->
      Metrics.Stats.absorb stats s;
      Metrics.Stats.absorb interactions i;
      Metrics.Histogram.absorb hist h)
    per_rep;
  let result =
    {
      mean_latency = Metrics.Stats.mean stats;
      p50 = Metrics.Stats.percentile stats 0.5;
      p95 = Metrics.Stats.percentile stats 0.95;
      density_edges = Metrics.Histogram.bin_edges hist;
      density = Metrics.Histogram.density hist;
      samples = Metrics.Stats.count stats;
      mean_interactions = Metrics.Stats.mean interactions;
    }
  in
  Report.histogram ~title:"Fig. 7 — mempool inclusion latency density"
    ~edges:result.density_edges ~density:result.density;
  Report.table ~title:"Fig. 7 — summary"
    ~header:[ "mean (s)"; "p50 (s)"; "p95 (s)"; "interactions"; "samples" ]
    [
      [
        Printf.sprintf "%.3f" result.mean_latency;
        Printf.sprintf "%.3f" result.p50;
        Printf.sprintf "%.3f" result.p95;
        Printf.sprintf "%.1f" result.mean_interactions;
        string_of_int result.samples;
      ];
    ];
  result

(* ----------------------------------------------------------------- *)
(* Fig. 8                                                             *)
(* ----------------------------------------------------------------- *)

type fig8_policy_result = {
  policy : string;
  mean : float;
  stddev : float;
  p50_b : float;
  p95_b : float;
  included : int;
  low_fee_mean : float;  (** mean latency of the cheapest-quartile txs *)
  high_fee_mean : float;  (** mean latency of the priciest-quartile txs *)
}

let block_latency_run ?(cap_factor = 0.6) ~scale ~policy ~n ~seed () =
  let block_interval = 12.0 in
  (* With [cap_factor] < 1 the blockspace sits below the arrival rate, a
     backlog forms and the selection policy matters (Fig. 8 left); with
     a generous factor latency is propagation- and block-interval-bound
     (Fig. 8 right, latency vs system size). *)
  let backlogged_cap =
    max 5 (int_of_float (cap_factor *. scale.rate *. block_interval))
  in
  let stats = Metrics.Stats.create () in
  let low_stats = Metrics.Stats.create () in
  let high_stats = Metrics.Stats.create () in
  let low_cut = Lo_workload.Fee_model.quantile Lo_workload.Fee_model.default 0.25 in
  let high_cut = Lo_workload.Fee_model.quantile Lo_workload.Fee_model.default 0.75 in
  ignore
    (Runner.run_lo ~scale ~seed ~n
       ~config:(fun c -> { c with Node.max_block_txs = backlogged_cap })
       ~blocks:(policy, block_interval) ~drain:60.
       ~wire:(fun r ->
         let recorded = Hashtbl.create 1024 in
         Array.iter
           (fun node ->
             (Node.hooks node).Node.on_block_accepted <-
               (fun block ->
                 let now = Network.now r.Runner.deployment.Scenario.net in
                 (* Record at the block creator (earliest acceptance). *)
                 if String.equal (Node.node_id node) block.Block.creator then
                   List.iter
                     (fun txid ->
                       if not (Hashtbl.mem recorded txid) then begin
                         Hashtbl.add recorded txid ();
                         match Hashtbl.find_opt r.Runner.created txid with
                         | Some t0 ->
                             let dt = now -. t0 in
                             Metrics.Stats.add stats dt;
                             (match Hashtbl.find_opt r.Runner.fees txid with
                             | Some fee when fee <= low_cut ->
                                 Metrics.Stats.add low_stats dt
                             | Some fee when fee >= high_cut ->
                                 Metrics.Stats.add high_stats dt
                             | Some _ | None -> ())
                         | None -> ()
                       end)
                     block.Block.txids))
           r.Runner.deployment.Scenario.nodes)
       ());
  (stats, low_stats, high_stats)

let fig8_left ?(scale = default_scale) () =
  let results =
    Parallel.map
      (fun policy ->
        let stats, low_stats, high_stats =
          block_latency_run ~scale ~policy ~n:scale.nodes
            ~seed:(scale.seed + 17) ()
        in
        {
          policy = Policy.to_string policy;
          mean = Metrics.Stats.mean stats;
          stddev = Metrics.Stats.stddev stats;
          p50_b = Metrics.Stats.percentile stats 0.5;
          p95_b = Metrics.Stats.percentile stats 0.95;
          included = Metrics.Stats.count stats;
          low_fee_mean = Metrics.Stats.mean low_stats;
          high_fee_mean = Metrics.Stats.mean high_stats;
        })
      [ Policy.Lo_fifo; Policy.Highest_fee ]
  in
  Report.table ~title:"Fig. 8 (left) — time until a tx is included in a block"
    ~header:
      [ "policy"; "mean (s)"; "stddev"; "p50"; "p95"; "low-fee mean";
        "high-fee mean"; "txs" ]
    (List.map
       (fun r ->
         [
           r.policy;
           Printf.sprintf "%.2f" r.mean;
           Printf.sprintf "%.2f" r.stddev;
           Printf.sprintf "%.2f" r.p50_b;
           Printf.sprintf "%.2f" r.p95_b;
           Printf.sprintf "%.2f" r.low_fee_mean;
           Printf.sprintf "%.2f" r.high_fee_mean;
           string_of_int r.included;
         ])
       results);
  results

let fig8_right ?(scale = default_scale) ?(sizes = [ 40; 80; 160 ]) () =
  let points =
    Parallel.map
      (fun n ->
        let stats, _, _ =
          block_latency_run ~cap_factor:2.0 ~scale ~policy:Policy.Lo_fifo ~n
            ~seed:(scale.seed + n) ()
        in
        (n, Metrics.Stats.mean stats))
      sizes
  in
  Report.series ~title:"Fig. 8 (right) — block inclusion latency vs system size"
    ~x_label:"nodes" ~y_label:"mean latency (s)"
    (List.map (fun (n, v) -> (float_of_int n, v)) points);
  points

(* ----------------------------------------------------------------- *)
(* Fig. 9                                                             *)
(* ----------------------------------------------------------------- *)

type fig9_row = {
  protocol : string;
  overhead_bytes : int;
  overhead_per_node_s : float;
  content_latency : float;
}

let fig9_lo ~scale ~seed =
  let stats = ref (Metrics.Stats.create ()) in
  let run =
    Runner.run_lo ~scale ~seed ~drain:15.
      ~wire:(fun r -> stats := Runner.content_latency_probe r)
      ()
  in
  ( Runner.protocol_overhead run,
    Metrics.Stats.mean !stats,
    Network.bytes_by_tag run.Runner.deployment.Scenario.net )

let fig9 ?(scale = default_scale) () =
  let seed = scale.seed + 99 in
  let duration = scale.duration in
  (* The four protocols share nothing (each builds its own network from
     the seed), so they run as one parallel batch. *)
  let run_flood () =
    Runner.run_baseline ~scale ~seed ~content_tags:[ "flood:tx" ]
      ~make:(fun net scheme topo ->
        let config = Lo_baselines.Flood.default_config scheme in
        List.init scale.nodes (fun i ->
            let f =
              Lo_baselines.Flood.create config ~net ~index:i
                ~neighbors:(Lo_net.Topology.neighbors topo i)
            in
            Lo_baselines.Flood.start f;
            {
              Runner.submit = (fun tx -> Lo_baselines.Flood.submit_tx f tx);
              on_content = (fun cb -> Lo_baselines.Flood.on_tx_content f cb);
            }))
      ()
  in
  (* PeerReview *)
  let run_pr () =
    Runner.run_baseline ~scale ~seed ~content_tags:[ "pr:tx" ]
      ~make:(fun net scheme topo ->
        let config = Lo_baselines.Peer_review.default_config scheme in
        let n = scale.nodes in
        let wrng = Rng.create (seed + 3) in
        (* audited(w) = nodes w witnesses for *)
        let audited = Array.make n [] in
        for node = 0 to n - 1 do
          let ws =
            Rng.sample_without_replacement wrng config.num_witnesses
              (List.filter (fun i -> i <> node) (List.init n Fun.id))
          in
          List.iter (fun w -> audited.(w) <- node :: audited.(w)) ws
        done;
        List.init n (fun i ->
            let signer =
              Signer.make scheme ~seed:(Printf.sprintf "pr-%d-%d" seed i)
            in
            let p =
              Lo_baselines.Peer_review.create config ~net ~index:i
                ~neighbors:(Lo_net.Topology.neighbors topo i)
                ~witnesses:audited.(i) ~signer
            in
            Lo_baselines.Peer_review.start p;
            {
              Runner.submit = (fun tx -> Lo_baselines.Peer_review.submit_tx p tx);
              on_content = (fun cb -> Lo_baselines.Peer_review.on_tx_content p cb);
            }))
      ()
  in
  (* Narwhal *)
  let run_nw () =
    Runner.run_baseline ~scale ~seed ~content_tags:[ "nw:batch" ]
      ~make:(fun net scheme _topo ->
        let config = Lo_baselines.Narwhal.default_config scheme in
        let n = scale.nodes in
        List.init n (fun i ->
            let signer =
              Signer.make scheme ~seed:(Printf.sprintf "nw-%d-%d" seed i)
            in
            let nw =
              Lo_baselines.Narwhal.create config ~net ~index:i ~num_nodes:n
                ~signer
            in
            Lo_baselines.Narwhal.start nw;
            {
              Runner.submit = (fun tx -> Lo_baselines.Narwhal.submit_tx nw tx);
              on_content = (fun cb -> Lo_baselines.Narwhal.on_tx_content nw cb);
            }))
      ()
  in
  let results =
    Parallel.map
      (fun f -> f ())
      [
        (fun () -> `Lo (fig9_lo ~scale ~seed));
        (fun () -> `Base (run_flood ()));
        (fun () -> `Base (run_pr ()));
        (fun () -> `Base (run_nw ()));
      ]
  in
  let lo_overhead, lo_latency, lo_by_tag =
    match List.nth results 0 with `Lo r -> r | _ -> assert false
  in
  let flood_overhead, flood_stats =
    match List.nth results 1 with `Base r -> r | _ -> assert false
  in
  let pr_overhead, pr_stats =
    match List.nth results 2 with `Base r -> r | _ -> assert false
  in
  let nw_overhead, nw_stats =
    match List.nth results 3 with `Base r -> r | _ -> assert false
  in
  let per_node_s bytes =
    float_of_int bytes /. float_of_int scale.nodes /. (duration +. 15.)
  in
  let rows =
    [
      { protocol = "LO"; overhead_bytes = lo_overhead;
        overhead_per_node_s = per_node_s lo_overhead;
        content_latency = lo_latency };
      { protocol = "Flood"; overhead_bytes = flood_overhead;
        overhead_per_node_s = per_node_s flood_overhead;
        content_latency = Metrics.Stats.mean flood_stats };
      { protocol = "PeerReview"; overhead_bytes = pr_overhead;
        overhead_per_node_s = per_node_s pr_overhead;
        content_latency = Metrics.Stats.mean pr_stats };
      { protocol = "Narwhal"; overhead_bytes = nw_overhead;
        overhead_per_node_s = per_node_s nw_overhead;
        content_latency = Metrics.Stats.mean nw_stats };
    ]
  in
  Report.table ~title:"Fig. 9 — bandwidth overhead by protocol"
    ~header:
      [ "protocol"; "overhead"; "bytes/node/s"; "vs LO"; "latency (s)" ]
    (List.map
       (fun r ->
         [
           r.protocol;
           Report.bytes r.overhead_bytes;
           Printf.sprintf "%.0f" r.overhead_per_node_s;
           Printf.sprintf "%.1fx"
             (float_of_int r.overhead_bytes /. float_of_int (max 1 lo_overhead));
           Printf.sprintf "%.2f" r.content_latency;
         ])
       rows);
  (* Where LØ's bytes actually go, split by message kind: content tags
     carry transaction payloads; the rest is the accountability tax the
     headline overhead number aggregates. *)
  let lo_total = List.fold_left (fun acc (_, b) -> acc + b) 0 lo_by_tag in
  Report.table ~title:"Fig. 9 — LO bandwidth by message kind"
    ~header:[ "tag"; "bytes"; "share"; "class" ]
    (List.map
       (fun (tag, bytes) ->
         [
           tag;
           Report.bytes bytes;
           Printf.sprintf "%.1f%%"
             (100. *. float_of_int bytes /. float_of_int (max 1 lo_total));
           (if List.mem tag Runner.lo_content_tags then "content"
            else "overhead");
         ])
       lo_by_tag);
  rows

(* ----------------------------------------------------------------- *)
(* Fig. 10                                                            *)
(* ----------------------------------------------------------------- *)

let fig10 ?(scale = default_scale) ?(rates = [ 2.; 5.; 10.; 20.; 40. ]) () =
  let points =
    Parallel.map
      (fun rate ->
        let decodes = ref 0 in
        ignore
          (Runner.run_lo ~scale ~seed:(scale.seed + int_of_float rate) ~rate
             ~workload_seed:(scale.seed + 7) ~drain:0.
             ~wire:(fun r ->
               Array.iter
                 (fun node ->
                   (Node.hooks node).Node.on_reconcile <-
                     (fun () -> incr decodes))
                 r.Runner.deployment.Scenario.nodes)
             ());
        let per_node_min =
          float_of_int !decodes /. float_of_int scale.nodes
          /. (scale.duration /. 60.)
        in
        (rate, per_node_min))
      rates
  in
  Report.series ~title:"Fig. 10 — sketch reconciliations per node per minute"
    ~x_label:"workload (tx/s)" ~y_label:"reconciliations/min" points;
  points

(* ----------------------------------------------------------------- *)
(* Sec. 6.5 — memory and CPU                                           *)
(* ----------------------------------------------------------------- *)

type decode_cost = {
  diff : int;
  monolithic_ms : float;
  partitioned_ms : float;
  partition_reconciliations : int;
}

type memcpu_result = {
  decode_costs : decode_cost list;
  commitment_sizes : (float * int) list;
  memory_10k_nodes : int;
  storage_per_node : int;
}

(* ----------------------------------------------------------------- *)
(* Trace replay                                                        *)
(* ----------------------------------------------------------------- *)

type replay_result = {
  trace_txs : int;
  trace_duration : float;
  replay_mean_latency : float;
  replay_p95 : float;
  delivered : int;
  audit_violations : int;
}

let replay ?(scale = default_scale) ?(audit = false) ~trace () =
  let stats = ref (Metrics.Stats.create ()) in
  let obs = if audit then Some (Lo_obs.Trace.create ()) else None in
  let run =
    Runner.run_lo ~scale ~seed:scale.seed ~workload:(`Trace trace) ~drain:20.
      ?trace:obs
      ~wire:(fun r -> stats := Runner.content_latency_probe r)
      ()
  in
  let duration =
    match Lo_workload.Trace.stats trace with Some (_, dur, _, _) -> dur | None -> 0.
  in
  let audit_violations =
    match obs with
    | Some tr ->
        let report =
          Lo_obs.Audit.check_trace ~horizon:run.Runner.horizon tr
        in
        List.iter
          (fun v ->
            Printf.printf "  audit: %s\n" (Lo_obs.Audit.violation_to_string v))
          report.Lo_obs.Audit.violations;
        List.length report.Lo_obs.Audit.violations
    | None -> 0
  in
  let result =
    {
      trace_txs = List.length trace;
      trace_duration = duration;
      replay_mean_latency = Metrics.Stats.mean !stats;
      replay_p95 = Metrics.Stats.percentile !stats 0.95;
      delivered = Metrics.Stats.count !stats;
      audit_violations;
    }
  in
  Report.table ~title:"Trace replay — mempool inclusion latency"
    ~header:
      [
        "trace txs"; "trace span (s)"; "mean (s)"; "p95 (s)"; "deliveries";
        "audit";
      ]
    [
      [
        string_of_int result.trace_txs;
        Printf.sprintf "%.1f" result.trace_duration;
        Printf.sprintf "%.3f" result.replay_mean_latency;
        Printf.sprintf "%.3f" result.replay_p95;
        string_of_int result.delivered;
        (if audit then string_of_int result.audit_violations else "off");
      ];
    ];
  result

(* ----------------------------------------------------------------- *)
(* Ablations                                                           *)
(* ----------------------------------------------------------------- *)

type ablation_result = {
  light_overhead : int;
  full_overhead : int;
  light_latency : float;
  full_latency : float;
  share_period_exposure : (float * float) list;
}

let lo_overhead_run ~scale ~seed ~always_full =
  let stats = ref (Metrics.Stats.create ()) in
  let run =
    Runner.run_lo ~scale ~seed ~drain:15.
      ~config:(fun c -> { c with Node.always_full_digests = always_full })
      ~wire:(fun r -> stats := Runner.content_latency_probe r)
      ()
  in
  (Runner.protocol_overhead run, Metrics.Stats.mean !stats)

let exposure_latency_one ~scale ~seed ~share_period =
  (* One repetition: per-equivocator times until 90% of correct nodes
     hold the exposure ([infinity] for a fork that evades the finite
     window). *)
  let n = scale.nodes in
  let num_bad = max 1 (n / 10) in
  let exposed_90_at = Hashtbl.create 8 in
  ignore
    (Runner.run_lo ~scale ~seed ~drain:60.
       ~config:(fun c -> { c with Node.digest_share_period = share_period })
       ~behaviors:(fun i -> if i < num_bad then Node.Equivocator else Node.Honest)
       ~wire:(fun r ->
         let d = r.Runner.deployment in
         let bad_ids =
           Array.init num_bad (fun i -> Node.node_id d.Scenario.nodes.(i))
         in
         let counts = Hashtbl.create 8 in
         let threshold = (9 * (n - num_bad)) / 10 in
         Array.iteri
           (fun i node ->
             if i >= num_bad then
               (Node.hooks node).Node.on_exposure <-
                 (fun ~accused ->
                   if Array.exists (String.equal accused) bad_ids then begin
                     let c =
                       1
                       + Option.value (Hashtbl.find_opt counts accused)
                           ~default:0
                     in
                     Hashtbl.replace counts accused c;
                     if c = threshold then
                       Hashtbl.replace exposed_90_at accused
                         (Network.now d.Scenario.net)
                   end))
           d.Scenario.nodes)
       ~after_inject:(fun r ->
         let d = r.Runner.deployment in
         Array.iteri
           (fun i node ->
             if i < num_bad then begin
               let fork_tx =
                 Tx.create ~signer:d.Scenario.client ~fee:7 ~created_at:0.5
                   ~payload:(Printf.sprintf "ablate-fork-%d" i)
               in
               Network.schedule_at d.Scenario.net ~at:0.5 (fun _ ->
                   Node.submit_tx node fork_tx)
             end)
           d.Scenario.nodes)
       ());
  let found = Hashtbl.fold (fun _ at acc -> at :: acc) exposed_90_at [] in
  let missing = num_bad - List.length found in
  found @ List.init (max 0 missing) (fun _ -> infinity)

(* A single repetition's median is over only [n/10] equivocators and is
   very noisy at test scales; pool the per-equivocator times across
   [scale.reps] independently seeded repetitions and take the median of
   the pool. *)
let pooled_median pooled =
  match List.sort compare (List.concat pooled) with
  | [] -> infinity
  | times -> List.nth times (List.length times / 2)

let ablation ?(scale = default_scale) () =
  let seed = scale.seed + 4242 in
  let overheads =
    Parallel.map
      (fun always_full -> lo_overhead_run ~scale ~seed ~always_full)
      [ false; true ]
  in
  let light_overhead, light_latency = List.nth overheads 0 in
  let full_overhead, full_latency = List.nth overheads 1 in
  let periods = [ 1.0; 2.0; 4.0; 8.0 ] in
  let reps = max 1 scale.reps in
  let grid =
    List.concat_map
      (fun period -> List.init reps (fun rep -> (period, rep)))
      periods
  in
  let per_cell =
    Parallel.map
      (fun (period, rep) ->
        exposure_latency_one ~scale ~seed:(seed + (rep * 7717))
          ~share_period:period)
      grid
  in
  let share_period_exposure =
    List.map2
      (fun period pooled -> (period, pooled_median pooled))
      periods (chunks reps per_cell)
  in
  let result =
    {
      light_overhead;
      full_overhead;
      light_latency;
      full_latency;
      share_period_exposure;
    }
  in
  Report.table ~title:"Ablation — light vs full commitment digests"
    ~header:[ "wire format"; "overhead"; "content latency (s)" ]
    [
      [ "light (default)"; Report.bytes light_overhead;
        Printf.sprintf "%.2f" light_latency ];
      [ "full sketch every message"; Report.bytes full_overhead;
        Printf.sprintf "%.2f" full_latency ];
      [ "ratio"; Printf.sprintf "%.1fx"
          (float_of_int full_overhead /. float_of_int (max 1 light_overhead));
        "" ];
    ];
  Report.series
    ~title:"Ablation — digest-share period vs equivocator exposure"
    ~x_label:"share period (s)" ~y_label:"median 90%-exposed time (s)"
    (List.map
       (fun (p, v) -> (p, if Float.is_finite v then v else -1.))
       result.share_period_exposure);
  result

let time_ms f =
  let t0 = Lo_live.Clock.now_s () in
  let r = f () in
  (r, 1000. *. (Lo_live.Clock.now_s () -. t0))

let decode_cost_for diff ~seed =
  let rng = Rng.create seed in
  let field = Lo_sketch.Gf2m.gf32 in
  let fresh () = 1 + Rng.int rng (Lo_sketch.Gf2m.mask field - 1) in
  let shared = List.init 500 (fun _ -> fresh ()) in
  let local = shared @ List.init (diff / 2) (fun _ -> fresh ()) in
  let remote = shared @ List.init (diff - (diff / 2)) (fun _ -> fresh ()) in
  (* [fast:false] on both sides: this experiment reproduces the paper's
     Sec. 6.5 comparison of the two decode *algorithms* (trace-splitting
     root search, with and without partitioning). The candidate-driven
     kernel — the deployment path — would make even the monolithic
     decode cheap and erase the effect being measured; it is benchmarked
     separately in the sec6.5 rows of BENCH_results.json. *)
  let (_, mono), mono_ms =
    time_ms (fun () ->
        Lo_sketch.Partitioned.reconcile_monolithic ~field ~fast:false
          ~capacity:diff ~local ~remote ())
  in
  assert (mono <> None);
  let (stats, recovered), part_ms =
    time_ms (fun () ->
        Lo_sketch.Partitioned.reconcile ~field ~fast:false ~capacity:64 ~local
          ~remote ())
  in
  assert (List.length recovered = diff);
  {
    diff;
    monolithic_ms = mono_ms;
    partitioned_ms = part_ms;
    partition_reconciliations = stats.Lo_sketch.Partitioned.reconciliations;
  }

let commitment_size_for_rate ~scheme rate_per_min =
  (* Size the sketch capacity for the workload: enough to absorb the
     set difference accumulated between reconciliations (paper sizes
     commitments by workload the same way). *)
  let per_second = rate_per_min /. 60. in
  let capacity = max 16 (int_of_float (ceil (per_second *. 10.))) in
  let signer = Signer.make scheme ~seed:"sizing" in
  let log =
    Commitment.Log.create ~sketch_capacity:capacity ~signer ()
  in
  Commitment.encoded_size (Commitment.Log.current_digest log)

(* Deliberately sequential: this experiment reports wall-clock decode
   timings, and sharing cores with sibling tasks would skew them. *)
let memcpu ?(scale = default_scale) ?(diffs = [ 100; 250; 500; 1000 ]) () =
  let decode_costs =
    List.map (fun diff -> decode_cost_for diff ~seed:(scale.seed + diff)) diffs
  in
  let scheme = Signer.simulation () in
  let rates = [ 120.; 1200.; 6000.; 24000. ] in
  let commitment_sizes =
    List.map (fun r -> (r, commitment_size_for_rate ~scheme r)) rates
  in
  let size_at_busiest = snd (List.nth commitment_sizes (List.length rates - 1)) in
  let memory_10k_nodes = 10_000 * size_at_busiest in
  (* Measured storage: run a short deployment and look at a node's
     retained peer commitments. *)
  let run =
    Runner.run_lo ~scale ~seed:scale.seed ~n:(min scale.nodes 60) ~duration:10.
      ~drain:10. ()
  in
  let nodes = run.Runner.deployment.Scenario.nodes in
  let storage_per_node =
    Array.fold_left
      (fun acc node -> acc + Node.commitment_storage_bytes node)
      0 nodes
    / Array.length nodes
  in
  let result =
    { decode_costs; commitment_sizes; memory_10k_nodes; storage_per_node }
  in
  Report.table ~title:"Sec. 6.5 — sketch decode cost"
    ~header:[ "set diff"; "monolithic (ms)"; "partitioned (ms)"; "partitions" ]
    (List.map
       (fun c ->
         [
           string_of_int c.diff;
           Printf.sprintf "%.1f" c.monolithic_ms;
           Printf.sprintf "%.1f" c.partitioned_ms;
           string_of_int c.partition_reconciliations;
         ])
       result.decode_costs);
  Report.table ~title:"Sec. 6.5 — commitment size vs workload"
    ~header:[ "workload (tx/min)"; "commitment size" ]
    (List.map
       (fun (r, s) -> [ Printf.sprintf "%.0f" r; Report.bytes s ])
       result.commitment_sizes);
  Report.table ~title:"Sec. 6.5 — memory"
    ~header:[ "metric"; "value" ]
    [
      [ "10k peers' latest commitments"; Report.bytes result.memory_10k_nodes ];
      [ "retained peer digests per node (measured)";
        Report.bytes result.storage_per_node ];
    ];
  result

(* ----------------------------------------------------------------- *)
(* Chaos — scripted fault injection                                    *)
(* ----------------------------------------------------------------- *)

type chaos_cell = {
  churn_rate : float;
  partition_duration : float;
  burst_loss : float;
  crashes : int;
  restarts : int;
  fault_kinds : int;
  mean_tx_latency : float;
  p95_tx_latency : float;
  reconcile_attempts : int;
  reconcile_completes : int;
  reconcile_success : float;
  suspicions : int;
  withdrawn : int;
  resolution_rate : float;
  honest_exposures : int;
  audit_violations : int;
}

(* Tighter escalation than the paper's defaults so mid-length outages
   actually reach the suspicion stage within the horizon — the point of
   the experiment is to stress the suspicion -> withdrawal machinery,
   not to avoid it. *)
let chaos_config c =
  {
    c with
    Node.request_timeout = 0.6;
    max_retries = 2;
    retry_backoff = 2.0;
    retry_jitter = 0.2;
  }

let chaos_plan ~rng ~n ~duration ~churn_rate ~partition_duration ~burst_loss =
  let until = duration in
  Lo_net.Fault_plan.merge
    [
      (if churn_rate > 0. then
         Lo_net.Fault_plan.churn ~rng ~n ~rate:churn_rate ~mean_down:5.0 ~until
       else []);
      (if partition_duration > 0. then
         Lo_net.Fault_plan.partitions ~rng ~n
           ~period:(2. *. partition_duration) ~duration:partition_duration
           ~until
       else []);
      (if burst_loss > 0. then
         Lo_net.Fault_plan.loss_bursts ~rng ~rate:burst_loss ~period:3.0
           ~duration:1.5 ~until
       else []);
      Lo_net.Fault_plan.latency_spikes ~rng ~n
        ~k:(max 1 (n / 8))
        ~extra:0.25 ~period:4.0 ~duration:2.0 ~until;
      Lo_net.Fault_plan.link_degrades ~rng ~n ~loss:0.5 ~extra_delay:0.2
        ~period:3.0 ~duration:2.0 ~until;
    ]

let chaos_cell_run ~scale ~churn_rate ~partition_duration ~burst_loss ~rep
    ~audit =
  let n = scale.nodes in
  let duration = scale.duration in
  let seed =
    scale.seed + (rep * 1000)
    + (int_of_float (churn_rate *. 100.) * 7)
    + (int_of_float (partition_duration *. 10.) * 13)
    + (int_of_float (burst_loss *. 100.) * 29)
  in
  let plan_rng = Rng.create ((seed * 7919) + 11) in
  let plan =
    chaos_plan ~rng:plan_rng ~n ~duration ~churn_rate ~partition_duration
      ~burst_loss
  in
  let latency = ref (Metrics.Stats.create ()) in
  let attempts = ref 0 in
  let completes = ref 0 in
  let raised = ref 0 in
  let cleared = ref 0 in
  let exposures = ref 0 in
  let trace = if audit then Some (Lo_obs.Trace.create ()) else None in
  let run =
    Runner.run_lo ~scale ~seed ~n ~duration ~config:chaos_config ~faults:plan
      ~drain:30. ?trace
      ~wire:(fun r ->
        latency := Runner.content_latency_probe r;
        Array.iter
          (fun node ->
            let h = Node.hooks node in
            h.Node.on_reconcile <- (fun () -> incr attempts);
            h.Node.on_reconcile_complete <- (fun () -> incr completes);
            h.Node.on_suspicion <- (fun ~suspect:_ -> incr raised);
            h.Node.on_suspicion_cleared <- (fun ~suspect:_ -> incr cleared);
            h.Node.on_exposure <- (fun ~accused:_ -> incr exposures))
          r.Runner.deployment.Scenario.nodes)
      ()
  in
  (* Resolution judged at the horizon: every suspicion raised anywhere
     that is no longer standing counts as resolved. *)
  let unresolved =
    Array.fold_left
      (fun acc node ->
        acc
        + List.length (Accountability.suspected_peers (Node.accountability node)))
      0 run.Runner.deployment.Scenario.nodes
  in
  let stats =
    match run.Runner.fault_stats with
    | Some s -> s
    | None -> assert false
  in
  (* Violations are returned, not printed: cells run on the domain pool
     and printing belongs to the ordered aggregation in {!chaos}. *)
  let violations =
    match trace with
    | Some tr ->
        let report =
          Lo_obs.Audit.check_trace ~horizon:run.Runner.horizon tr
        in
        List.map Lo_obs.Audit.violation_to_string
          report.Lo_obs.Audit.violations
    | None -> []
  in
  (stats, !latency, !attempts, !completes, !raised, !cleared, unresolved,
   !exposures, violations)

let chaos ?(scale = default_scale) ?(churn_rates = [ 0.1; 0.3 ])
    ?(partition_durations = [ 1.5; 3.0 ]) ?(burst_losses = [ 0.15; 0.35 ])
    ?(audit = false) () =
  (* Full (cell x rep) grid on the domain pool; aggregation — including
     printing any audit violations — happens afterwards in submission
     order, so stdout and every cell statistic match the sequential
     nesting exactly. *)
  let cell_params =
    List.concat_map
      (fun churn_rate ->
        List.concat_map
          (fun partition_duration ->
            List.map
              (fun burst_loss -> (churn_rate, partition_duration, burst_loss))
              burst_losses)
          partition_durations)
      churn_rates
  in
  let grid =
    List.concat_map
      (fun params -> List.init scale.reps (fun rep -> (params, rep)))
      cell_params
  in
  let results =
    Parallel.map
      (fun ((churn_rate, partition_duration, burst_loss), rep) ->
        chaos_cell_run ~scale ~churn_rate ~partition_duration ~burst_loss ~rep
          ~audit)
      grid
  in
  let cells =
    List.map2
      (fun (churn_rate, partition_duration, burst_loss) reps ->
        let crashes = ref 0 in
        let restarts = ref 0 in
        let kinds = ref 0 in
        let means = ref [] in
        let p95s = ref [] in
        let attempts = ref 0 in
        let completes = ref 0 in
        let raised = ref 0 in
        let cleared = ref 0 in
        let unresolved = ref 0 in
        let exposures = ref 0 in
        let audit_bad = ref 0 in
        List.iter
          (fun (s, lat, att, comp, rai, clr, unres, exp_, violations) ->
            List.iter (Printf.printf "  audit: %s\n") violations;
            audit_bad := !audit_bad + List.length violations;
            crashes := !crashes + s.Lo_net.Fault_plan.crashes;
            restarts := !restarts + s.Lo_net.Fault_plan.restarts;
            kinds := max !kinds (Lo_net.Fault_plan.kinds_injected s);
            means := Metrics.Stats.mean lat :: !means;
            p95s := Metrics.Stats.percentile lat 0.95 :: !p95s;
            attempts := !attempts + att;
            completes := !completes + comp;
            raised := !raised + rai;
            cleared := !cleared + clr;
            unresolved := !unresolved + unres;
            exposures := !exposures + exp_)
          reps;
        {
          churn_rate;
          partition_duration;
          burst_loss;
          crashes = !crashes;
          restarts = !restarts;
          fault_kinds = !kinds;
          mean_tx_latency = avg !means;
          p95_tx_latency = avg !p95s;
          reconcile_attempts = !attempts;
          reconcile_completes = !completes;
          reconcile_success =
            float_of_int !completes /. float_of_int (max 1 !attempts);
          suspicions = !raised;
          withdrawn = !cleared;
          resolution_rate =
            (if !raised = 0 then 1.0
             else
               float_of_int (!raised - !unresolved) /. float_of_int !raised);
          honest_exposures = !exposures;
          audit_violations = !audit_bad;
        })
      cell_params
      (chunks scale.reps results)
  in
  Report.table
    ~title:
      "Chaos — fault injection (all nodes honest; exposures must be zero)"
    ~header:
      [
        "churn/s"; "part (s)"; "burst"; "crash"; "kinds"; "lat mean";
        "lat p95"; "recon ok"; "susp"; "withdrawn"; "resolved"; "exposed";
        "audit";
      ]
    (List.map
       (fun c ->
         [
           Printf.sprintf "%.2f" c.churn_rate;
           Printf.sprintf "%.1f" c.partition_duration;
           Printf.sprintf "%.2f" c.burst_loss;
           Printf.sprintf "%d/%d" c.crashes c.restarts;
           string_of_int c.fault_kinds;
           Printf.sprintf "%.3f" c.mean_tx_latency;
           Printf.sprintf "%.3f" c.p95_tx_latency;
           Printf.sprintf "%.1f%%" (100. *. c.reconcile_success);
           string_of_int c.suspicions;
           string_of_int c.withdrawn;
           Printf.sprintf "%.1f%%" (100. *. c.resolution_rate);
           string_of_int c.honest_exposures;
           (if audit then string_of_int c.audit_violations else "off");
         ])
       cells);
  cells

(* ----------------------------------------------------------------- *)
(* Trace — full-run observability driven through the audit            *)
(* ----------------------------------------------------------------- *)

type trace_kind = [ `Baseline | `Chaos | `Adversary ]

type trace_run_result = {
  trace : Lo_obs.Trace.t;
  horizon : float;
  audit : Lo_obs.Audit.report;
}

let trace_run ?(scale = default_scale) ?capacity ~kind () =
  let trace = Lo_obs.Trace.create ?capacity () in
  let run =
    match kind with
    | `Baseline ->
        (* Healthy network with block production: the audit should come
           back clean — this is the regression baseline. *)
        Runner.run_lo ~scale ~seed:scale.seed ~trace
          ~blocks:(Policy.Lo_fifo, 4.0) ()
    | `Chaos ->
        (* The fault-injection cocktail of {!chaos} (one mid-intensity
           cell): crashes, partitions and loss bursts, all nodes honest.
           The audit must still come back clean — benign faults are
           excused, never blamed. *)
        let n = scale.nodes in
        let plan_rng = Rng.create ((scale.seed * 7919) + 11) in
        let plan =
          chaos_plan ~rng:plan_rng ~n ~duration:scale.duration ~churn_rate:0.1
            ~partition_duration:1.5 ~burst_loss:0.15
        in
        Runner.run_lo ~scale ~seed:scale.seed ~config:chaos_config
          ~faults:plan ~drain:30. ~trace ()
    | `Adversary ->
        (* Node 0 is a silent censor: it never answers protocol
           requests, so suspicions of it can never resolve — the audit
           must fail, naming node 0. The long drain lets the retry
           escalation raise suspicions AND age them past the audit's
           grace window before the horizon. *)
        Runner.run_lo ~scale ~seed:scale.seed ~trace ~drain:40.
          ~behaviors:(fun i ->
            if i = 0 then Node.Silent_censor else Node.Honest)
          ~blocks:(Policy.Lo_fifo, 4.0) ()
  in
  let audit = Lo_obs.Audit.check_trace ~horizon:run.Runner.horizon trace in
  Report.table ~title:"Trace — events by kind"
    ~header:[ "kind"; "count" ]
    (List.map
       (fun (k, c) -> [ k; string_of_int c ])
       (Lo_obs.Trace.kind_counts trace));
  Report.table ~title:"Trace — wire flow by message tag"
    ~header:[ "tag"; "sent"; "delivered"; "dropped"; "blocked"; "sent bytes" ]
    (List.map
       (fun (tag, f) ->
         [
           tag;
           string_of_int f.Lo_obs.Trace.sent_msgs;
           string_of_int f.Lo_obs.Trace.delivered_msgs;
           string_of_int f.Lo_obs.Trace.dropped_msgs;
           string_of_int f.Lo_obs.Trace.blocked_msgs;
           Report.bytes f.Lo_obs.Trace.sent_bytes;
         ])
       (Lo_obs.Trace.tag_flows trace));
  (match Lo_obs.Trace.phases trace with
  | [] -> ()
  | phases ->
      Report.table ~title:"Trace — harness wall-clock by phase"
        ~header:[ "phase"; "seconds" ]
        (List.map (fun (p, s) -> [ p; Printf.sprintf "%.3f" s ]) phases));
  List.iter
    (fun v -> Printf.printf "  audit: %s\n" (Lo_obs.Audit.violation_to_string v))
    audit.Lo_obs.Audit.violations;
  print_endline (Lo_obs.Audit.summary audit);
  { trace; horizon = run.Runner.horizon; audit }
