(** Assembly of simulated deployments.

    Builds the network, identities, topology and protocol instances for
    an experiment, mirroring the paper's setup (Sec. 6.1): 8 outbound /
    125 inbound connections, reconciliation with 3 random neighbours per
    second, 1 s request timeout with 3 retries, 32-city latencies with
    round-robin assignment, and a Poisson transaction workload. *)

type lo_deployment = {
  net : Lo_net.Network.t;
  mux : Lo_net.Mux.t;
  nodes : Lo_core.Node.t array;
  directory : Lo_core.Directory.t;
  scheme : Lo_crypto.Signer.scheme;
  topology : Lo_net.Topology.t;
  client : Lo_crypto.Signer.t;  (** signer used for workload transactions *)
}

val build_lo :
  ?config:(Lo_core.Node.config -> Lo_core.Node.config) ->
  ?behaviors:(int -> Lo_core.Node.behavior) ->
  ?malicious:bool array ->
  ?loss_rate:float ->
  ?trace:Lo_obs.Trace.t ->
  n:int ->
  seed:int ->
  unit ->
  lo_deployment
(** [malicious] (when given) marks nodes whose edges are laid so the
    correct subgraph stays connected and malicious nodes are mutually
    interconnected, as in the Sec. 6.2 experiments. [config] tweaks the
    default node configuration. [trace] attaches an observability sink
    before any protocol instance is created; tracing never perturbs the
    run (see {!Lo_net.Network.set_trace}). *)

val inject_workload :
  lo_deployment -> Lo_workload.Tx_gen.spec list -> Lo_core.Tx.t list
(** Schedule each spec's transaction for submission at its origin node
    at its creation time. Returns the created transactions (ids are the
    latency keys). *)

val schedule_blocks :
  lo_deployment ->
  policy:Lo_core.Policy.t ->
  interval:float ->
  until:float ->
  ?only_honest:bool ->
  unit ->
  unit
(** Every [interval] seconds a uniformly random miner (optionally only
    honest ones) builds and announces a block — the paper's model of
    leader election (Stage IV). *)

val rotate_neighbors : lo_deployment -> period:float -> until:float -> unit
(** The paper's "continuous sampling" (Sec. 3): every [period] seconds
    each node replaces its overlay neighbours with a fresh uniform
    sample (8 peers, excluding itself and peers it has exposed),
    modelling the Byzantine-resilient sampler the paper presumes. *)

val attach_gossip_sampler :
  lo_deployment -> ?period:float -> until:float -> unit -> Lo_net.Peer_sampler.t
(** The non-idealised variant: run the Brahms-style gossip sampler on
    the same simulated nodes (it shares each node via the message mux)
    and refresh every node's LØ neighbour set from its converged sampler
    outputs every [period] (default 5 s). This closes the loop of the
    paper's architecture — bootstrap topology → byzantine-resilient
    sampling → reconciliation overlay. *)

val standard_workload :
  rate:float -> duration:float -> seed:int -> n:int -> Lo_workload.Tx_gen.spec list

val apply_fault_plan :
  lo_deployment -> Lo_net.Fault_plan.t -> Lo_net.Fault_plan.stats
(** Compile a declarative fault schedule onto the deployment's event
    queue (see {!Lo_net.Fault_plan}); the returned stats fill in as
    faults fire during the run. *)

val crash_node : lo_deployment -> int -> unit
(** Script a crash without reaching into [lo_net] internals. *)

val restart_node : lo_deployment -> int -> unit
(** Bring a crashed node back; its recovery path (re-announce,
    re-request peer heads, resume reconciliation) runs automatically. *)
