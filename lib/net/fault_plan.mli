(** Declarative, seeded fault schedules.

    A fault plan is a list of timed fault events — node churn
    (crash/restart), partitions, network-wide loss bursts, latency
    spikes, and asymmetric link degradation — compiled onto the
    network's own {!Event_queue} by {!install}, so a run with the same
    seed and plan replays byte-identically. Generators draw all
    randomness from an explicit {!Rng.t}; the plan itself is plain data
    and can be inspected, merged, or hand-written. *)

type fault =
  | Crash of { node : int; down_for : float option }
      (** Take the node down; with [down_for = Some d] a restart is
          scheduled [d] later (triggering the node's recovery path). *)
  | Restart of int
  | Partition of { groups : int array; heal_after : float }
      (** Split the network into groups (see {!Network.set_partition});
          heals after [heal_after]. A later partition supersedes an
          earlier one — stale heals are ignored. *)
  | Loss_burst of { rate : float; duration : float }
      (** Raise the global loss rate to at least [rate] for the
          window; overlapping bursts combine as the max. *)
  | Latency_spike of { nodes : int list; extra : float; duration : float }
      (** Add [extra] seconds of send-side delay to each node. *)
  | Link_degrade of {
      src : int;
      dst : int;
      loss : float;
      extra_delay : float;
      duration : float;
    }  (** Asymmetric degradation of one directed link. *)

type event = { at : float; fault : fault }
type t = event list

type stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable partitions : int;
  mutable loss_bursts : int;
  mutable latency_spikes : int;
  mutable link_degrades : int;
}

val install : Network.t -> t -> stats
(** Schedule every event onto the network's queue. The returned record
    is updated as faults actually fire (a [Crash] against an
    already-down node counts nothing), so it is meaningful only after
    the run. *)

val kinds_injected : stats -> int
(** Number of distinct fault kinds that actually fired (restarts count
    with crashes as one "churn" kind). *)

val merge : event list list -> t
(** Concatenate schedules and stable-sort by time. *)

(** {1 Generators}

    All take an explicit [rng] and produce events strictly before
    [until]; periodic generators space windows so they never
    self-overlap. *)

val churn :
  rng:Rng.t -> n:int -> rate:float -> mean_down:float -> until:float -> event list
(** Poisson crash arrivals at [rate] crashes/s network-wide; each
    victim stays down for an exponential time with mean [mean_down]
    (at least 0.2 s), then restarts. A node already scheduled down is
    skipped. *)

val partitions :
  rng:Rng.t -> n:int -> period:float -> duration:float -> until:float -> event list
(** Every [period] + [duration], split the nodes into two random
    non-empty halves for [duration] seconds. *)

val loss_bursts :
  rng:Rng.t -> rate:float -> period:float -> duration:float -> until:float -> event list

val latency_spikes :
  rng:Rng.t ->
  n:int ->
  k:int ->
  extra:float ->
  period:float ->
  duration:float ->
  until:float ->
  event list
(** Every window, [k] random nodes gain [extra] seconds of send delay. *)

val link_degrades :
  rng:Rng.t ->
  n:int ->
  loss:float ->
  extra_delay:float ->
  period:float ->
  duration:float ->
  until:float ->
  event list
(** Every window, one random directed link degrades asymmetrically. *)
