type fault =
  | Crash of { node : int; down_for : float option }
  | Restart of int
  | Partition of { groups : int array; heal_after : float }
  | Loss_burst of { rate : float; duration : float }
  | Latency_spike of { nodes : int list; extra : float; duration : float }
  | Link_degrade of {
      src : int;
      dst : int;
      loss : float;
      extra_delay : float;
      duration : float;
    }

type event = { at : float; fault : fault }
type t = event list

type stats = {
  mutable crashes : int;
  mutable restarts : int;
  mutable partitions : int;
  mutable loss_bursts : int;
  mutable latency_spikes : int;
  mutable link_degrades : int;
}

let kinds_injected s =
  (* Crash + restart is one fault kind: churn. *)
  (if s.crashes > 0 || s.restarts > 0 then 1 else 0)
  + (if s.partitions > 0 then 1 else 0)
  + (if s.loss_bursts > 0 then 1 else 0)
  + (if s.latency_spikes > 0 then 1 else 0)
  + if s.link_degrades > 0 then 1 else 0

let merge plans =
  List.stable_sort
    (fun a b -> Float.compare a.at b.at)
    (List.concat plans)

(* Mutable overlay state shared by all installed events of one plan.
   Loss bursts stack (effective rate = max of base and actives);
   partitions and link faults carry generation counters so a window's
   scheduled heal is a no-op once a later fault superseded it. *)
type overlay = {
  base_loss : float;
  mutable active_bursts : float list;
  mutable partition_gen : int;
  link_gens : (int * int, int) Hashtbl.t;
}

let apply_loss net ov =
  let rate =
    List.fold_left Float.max ov.base_loss ov.active_bursts
  in
  Network.set_loss_rate net (Float.min rate 0.95)

let remove_one x l =
  let rec go = function
    | [] -> []
    | y :: rest -> if Float.equal x y then rest else y :: go rest
  in
  go l

let do_restart net stats node =
  if Network.is_down net node then begin
    stats.restarts <- stats.restarts + 1;
    Network.restart net node
  end

let install_event net stats ov { at; fault } =
  let at = Float.max at (Network.now net) in
  match fault with
  | Crash { node; down_for } ->
      Network.schedule_at net ~at (fun net ->
          if not (Network.is_down net node) then begin
            stats.crashes <- stats.crashes + 1;
            Network.crash net node
          end);
      Option.iter
        (fun d ->
          Network.schedule_at net ~at:(at +. d) (fun net ->
              do_restart net stats node))
        down_for
  | Restart node ->
      Network.schedule_at net ~at (fun net -> do_restart net stats node)
  | Partition { groups; heal_after } ->
      Network.schedule_at net ~at (fun net ->
          ov.partition_gen <- ov.partition_gen + 1;
          let gen = ov.partition_gen in
          stats.partitions <- stats.partitions + 1;
          Network.set_partition net (Some groups);
          Network.schedule net ~delay:heal_after (fun net ->
              if gen = ov.partition_gen then Network.set_partition net None))
  | Loss_burst { rate; duration } ->
      Network.schedule_at net ~at (fun net ->
          stats.loss_bursts <- stats.loss_bursts + 1;
          ov.active_bursts <- rate :: ov.active_bursts;
          apply_loss net ov;
          Network.schedule net ~delay:duration (fun net ->
              ov.active_bursts <- remove_one rate ov.active_bursts;
              apply_loss net ov))
  | Latency_spike { nodes; extra; duration } ->
      Network.schedule_at net ~at (fun net ->
          stats.latency_spikes <- stats.latency_spikes + 1;
          List.iter
            (fun n ->
              Network.set_node_delay net n (Network.node_delay net n +. extra))
            nodes;
          Network.schedule net ~delay:duration (fun net ->
              List.iter
                (fun n ->
                  Network.set_node_delay net n
                    (Float.max 0. (Network.node_delay net n -. extra)))
                nodes))
  | Link_degrade { src; dst; loss; extra_delay; duration } ->
      Network.schedule_at net ~at (fun net ->
          stats.link_degrades <- stats.link_degrades + 1;
          let gen =
            1 + Option.value ~default:0 (Hashtbl.find_opt ov.link_gens (src, dst))
          in
          Hashtbl.replace ov.link_gens (src, dst) gen;
          Network.set_link_fault net ~src ~dst ~loss ~extra_delay ();
          Network.schedule net ~delay:duration (fun net ->
              if Hashtbl.find_opt ov.link_gens (src, dst) = Some gen then
                Network.clear_link_fault net ~src ~dst))

let install net plan =
  let stats =
    {
      crashes = 0;
      restarts = 0;
      partitions = 0;
      loss_bursts = 0;
      latency_spikes = 0;
      link_degrades = 0;
    }
  in
  let ov =
    {
      base_loss = Network.loss_rate net;
      active_bursts = [];
      partition_gen = 0;
      link_gens = Hashtbl.create 8;
    }
  in
  List.iter (install_event net stats ov) (merge [ plan ]);
  stats

(* {1 Generators} *)

let churn ~rng ~n ~rate ~mean_down ~until =
  if rate <= 0. || n <= 0 then []
  else begin
    let down_until = Array.make n 0. in
    let events = ref [] in
    let t = ref (Rng.exponential rng ~mean:(1. /. rate)) in
    while !t < until do
      let node = Rng.int rng n in
      if down_until.(node) <= !t then begin
        let d =
          Float.max 0.2
            (Float.min
               (Rng.exponential rng ~mean:mean_down)
               (* Recovery must land within sight of the horizon so
                  suspicions can withdraw before measurement ends. *)
               (until +. mean_down -. !t))
        in
        down_until.(node) <- !t +. d;
        events := { at = !t; fault = Crash { node; down_for = Some d } } :: !events
      end;
      t := !t +. Rng.exponential rng ~mean:(1. /. rate)
    done;
    List.rev !events
  end

let windows ~period ~duration ~until f =
  let events = ref [] in
  let t = ref period in
  while !t +. duration <= until do
    events := f !t :: !events;
    t := !t +. period +. duration
  done;
  List.rev !events

let partitions ~rng ~n ~period ~duration ~until =
  if n < 2 then []
  else
    windows ~period ~duration ~until (fun at ->
        let groups = Array.init n (fun _ -> if Rng.bool rng then 1 else 0) in
        (* Pin one node to each side so neither group is ever empty. *)
        groups.(0) <- 0;
        groups.(1) <- 1;
        { at; fault = Partition { groups; heal_after = duration } })

let loss_bursts ~rng:_ ~rate ~period ~duration ~until =
  windows ~period ~duration ~until (fun at ->
      { at; fault = Loss_burst { rate; duration } })

let latency_spikes ~rng ~n ~k ~extra ~period ~duration ~until =
  if n <= 0 || k <= 0 then []
  else
    windows ~period ~duration ~until (fun at ->
        let nodes =
          Rng.sample_without_replacement rng k (List.init n Fun.id)
        in
        { at; fault = Latency_spike { nodes; extra; duration } })

let link_degrades ~rng ~n ~loss ~extra_delay ~period ~duration ~until =
  if n < 2 then []
  else
    windows ~period ~duration ~until (fun at ->
        let src = Rng.int rng n in
        let dst =
          let d = Rng.int rng (n - 1) in
          if d >= src then d + 1 else d
        in
        { at; fault = Link_degrade { src; dst; loss; extra_delay; duration } })
