let make ~net ~mux ~node : Lo_transport.t =
  {
    Lo_transport.self = node;
    now = (fun () -> Network.now net);
    send =
      (fun ~dst ~tag payload -> Network.send net ~src:node ~dst ~tag payload);
    send_many =
      (fun ~dsts ~tag payload ->
        Network.send_many net ~src:node ~dsts ~tag payload);
    schedule = (fun ~delay fn -> Network.schedule net ~delay (fun _ -> fn ()));
    subscribe =
      (fun ~proto handler ->
        Mux.register mux node ~proto (fun _net ~from ~tag payload ->
            handler ~from ~tag payload));
    set_restart_handler =
      (fun fn -> Network.set_restart_handler net node (fun _ -> fn ()));
    trace = Network.trace net;
  }
