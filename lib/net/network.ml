type node = int

type event =
  | Deliver of { src : node; dst : node; tag : string; payload : string }
  | Timer of (t -> unit)

and t = {
  num_nodes : int;
  latency : Latency.t;
  jitter : float;
  mutable loss_rate : float;
  rng : Rng.t;
  queue : event Event_queue.t;
  mutable clock : float;
  handlers : handler option array;
  down : bool array;
  restart_handlers : (t -> unit) option array;
  mutable filter : (src:node -> dst:node -> tag:string -> bool) option;
  mutable partition : int array option;
  node_delay : float array;
  link_faults : (node * node, link_fault) Hashtbl.t;
  bytes_sent : int array;
  bytes_received : int array;
  mutable messages : int;
  mutable total_bytes : int;
  tag_bytes : (string, int ref) Hashtbl.t;
  mutable obs : Lo_obs.Trace.t option;
}

and handler = t -> from:node -> tag:string -> string -> unit

and link_fault = { link_loss : float; link_delay : float }

(* Perturbed delivery must stay strictly positive for src <> dst: a
   zero (or negative) delay would deliver a message in the same event
   slot it was sent from, breaking causality assumptions downstream. *)
let min_delay = 1e-6

let create ?(latency = Latency.default) ?(jitter = 0.1) ?(loss_rate = 0.)
    ~num_nodes ~seed () =
  if num_nodes <= 0 then invalid_arg "Network.create";
  if loss_rate < 0. || loss_rate >= 1. then invalid_arg "Network.create: loss_rate";
  {
    num_nodes;
    latency;
    jitter;
    loss_rate;
    rng = Rng.create seed;
    queue = Event_queue.create ();
    clock = 0.;
    handlers = Array.make num_nodes None;
    down = Array.make num_nodes false;
    restart_handlers = Array.make num_nodes None;
    filter = None;
    partition = None;
    node_delay = Array.make num_nodes 0.;
    link_faults = Hashtbl.create 16;
    bytes_sent = Array.make num_nodes 0;
    bytes_received = Array.make num_nodes 0;
    messages = 0;
    total_bytes = 0;
    tag_bytes = Hashtbl.create 16;
    obs = None;
  }

let set_trace t trace = t.obs <- trace
let trace t = t.obs

let num_nodes t = t.num_nodes
let now t = t.clock
let rng t = t.rng
let city_of t node = Latency.city_of_node t.latency node
let latency_model t = t.latency

let check_node t n what =
  if n < 0 || n >= t.num_nodes then invalid_arg ("Network: bad node in " ^ what)

let set_handler t node handler =
  check_node t node "set_handler";
  t.handlers.(node) <- Some handler

let account_tag t tag n =
  match Hashtbl.find_opt t.tag_bytes tag with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.tag_bytes tag (ref n)

let partitioned t ~src ~dst =
  src <> dst
  && match t.partition with
     | None -> false
     | Some groups -> groups.(src) <> groups.(dst)

let send t ~src ~dst ~tag payload =
  check_node t src "send src";
  check_node t dst "send dst";
  let allowed =
    match t.filter with None -> true | Some f -> f ~src ~dst ~tag
  in
  if
    not
      (allowed && (not t.down.(dst)) && (not t.down.(src))
      && not (partitioned t ~src ~dst))
  then begin
    (* Refused before any accounting: traced as a blocked drop with no
       matching send, so it stays outside bandwidth conservation. *)
    match t.obs with
    | Some tr ->
        Lo_obs.Trace.emit tr ~at:t.clock
          (Lo_obs.Event.Drop
             {
               src;
               dst;
               tag;
               bytes = String.length payload;
               reason = Lo_obs.Event.Blocked;
             })
    | None -> ()
  end
  else begin
    let size = String.length payload in
    t.bytes_sent.(src) <- t.bytes_sent.(src) + size;
    t.messages <- t.messages + 1;
    t.total_bytes <- t.total_bytes + size;
    account_tag t tag size;
    (match t.obs with
    | Some tr ->
        Lo_obs.Trace.emit tr ~at:t.clock
          (Lo_obs.Event.Send { src; dst; tag; bytes = size })
    | None -> ());
    let fault = Hashtbl.find_opt t.link_faults (src, dst) in
    let base =
      if src = dst then 0.
      else Latency.one_way t.latency (city_of t src) (city_of t dst)
    in
    let jit =
      if t.jitter <= 0. || base <= 0. then 0.
      else base *. t.jitter *. (Rng.float t.rng 2.0 -. 1.0)
    in
    let extra =
      t.node_delay.(src)
      +. (match fault with Some f -> f.link_delay | None -> 0.)
    in
    let delay =
      if src = dst then Float.max 0. (base +. jit +. extra)
      else Float.max min_delay (base +. jit) +. extra
    in
    let link_loss = match fault with Some f -> f.link_loss | None -> 0. in
    (* Independent drops: the global rate and the per-link overlay. *)
    let loss_p = t.loss_rate +. link_loss -. (t.loss_rate *. link_loss) in
    let lost = loss_p > 0. && src <> dst && Rng.float t.rng 1.0 < loss_p in
    if not lost then
      Event_queue.add t.queue ~time:(t.clock +. delay)
        (Deliver { src; dst; tag; payload })
    else begin
      match t.obs with
      | Some tr ->
          Lo_obs.Trace.emit tr ~at:t.clock
            (Lo_obs.Event.Drop
               { src; dst; tag; bytes = size; reason = Lo_obs.Event.Loss })
      | None -> ()
    end
  end

let send_many t ~src ~dsts ~tag payload =
  List.iter (fun dst -> send t ~src ~dst ~tag payload) dsts

let schedule_at t ~at f =
  if at < t.clock then invalid_arg "Network.schedule_at: past";
  Event_queue.add t.queue ~time:at (Timer f)

let schedule t ~delay f = schedule_at t ~at:(t.clock +. delay) f

(* Down-state transitions are traced (crash on up->down, restart on
   down->up) regardless of which entry point flipped them. *)
let mark_down t node v =
  let was = t.down.(node) in
  t.down.(node) <- v;
  match t.obs with
  | Some tr when was <> v ->
      Lo_obs.Trace.emit tr ~at:t.clock
        (if v then Lo_obs.Event.Crash { node }
         else Lo_obs.Event.Restart { node })
  | _ -> ()

let set_down t node v =
  check_node t node "set_down";
  mark_down t node v

let is_down t node =
  check_node t node "is_down";
  t.down.(node)

let crash t node =
  check_node t node "crash";
  mark_down t node true

let set_restart_handler t node f =
  check_node t node "set_restart_handler";
  t.restart_handlers.(node) <- Some f

let restart t node =
  check_node t node "restart";
  if t.down.(node) then begin
    mark_down t node false;
    match t.restart_handlers.(node) with Some f -> f t | None -> ()
  end

let set_delivery_filter t f = t.filter <- f

let set_partition t groups =
  (match groups with
  | Some g when Array.length g <> t.num_nodes ->
      invalid_arg "Network.set_partition: group array size"
  | _ -> ());
  t.partition <- groups

let loss_rate t = t.loss_rate

let set_loss_rate t r =
  if r < 0. || r >= 1. then invalid_arg "Network.set_loss_rate";
  t.loss_rate <- r

let node_delay t node =
  check_node t node "node_delay";
  t.node_delay.(node)

let set_node_delay t node d =
  check_node t node "set_node_delay";
  if d < 0. then invalid_arg "Network.set_node_delay";
  t.node_delay.(node) <- d

let set_link_fault t ~src ~dst ?(loss = 0.) ?(extra_delay = 0.) () =
  check_node t src "set_link_fault src";
  check_node t dst "set_link_fault dst";
  if loss < 0. || loss > 1. || extra_delay < 0. then
    invalid_arg "Network.set_link_fault";
  Hashtbl.replace t.link_faults (src, dst)
    { link_loss = loss; link_delay = extra_delay }

let clear_link_fault t ~src ~dst =
  Hashtbl.remove t.link_faults (src, dst)

let dispatch t event =
  match event with
  | Timer f -> f t
  | Deliver { src; dst; tag; payload } ->
      if not t.down.(dst) then begin
        t.bytes_received.(dst) <- t.bytes_received.(dst) + String.length payload;
        (match t.obs with
        | Some tr ->
            Lo_obs.Trace.emit tr ~at:t.clock
              (Lo_obs.Event.Deliver
                 { src; dst; tag; bytes = String.length payload })
        | None -> ());
        match t.handlers.(dst) with
        | None -> ()
        | Some handler -> handler t ~from:src ~tag payload
      end
      else begin
        match t.obs with
        | Some tr ->
            Lo_obs.Trace.emit tr ~at:t.clock
              (Lo_obs.Event.Drop
                 {
                   src;
                   dst;
                   tag;
                   bytes = String.length payload;
                   reason = Lo_obs.Event.Down;
                 })
        | None -> ()
      end

let run_until t until =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= until -> begin
        match Event_queue.pop t.queue with
        | Some (time, event) ->
            t.clock <- Float.max t.clock time;
            dispatch t event
        | None -> continue := false
      end
    | Some _ | None -> continue := false
  done;
  t.clock <- Float.max t.clock until

let run_until_idle ?(max_time = infinity) t =
  let continue = ref true in
  while !continue do
    match Event_queue.pop t.queue with
    | Some (time, event) when time <= max_time ->
        t.clock <- Float.max t.clock time;
        dispatch t event
    | Some _ | None -> continue := false
  done

let flush_in_flight t =
  match t.obs with
  | None -> ()
  | Some tr ->
      let rec drain () =
        match Event_queue.pop t.queue with
        | None -> ()
        | Some (time, Deliver { src; dst; tag; payload }) ->
            Lo_obs.Trace.emit tr ~at:time
              (Lo_obs.Event.Drop
                 {
                   src;
                   dst;
                   tag;
                   bytes = String.length payload;
                   reason = Lo_obs.Event.In_flight;
                 });
            drain ()
        | Some (_, Timer _) -> drain ()
      in
      drain ()

let bytes_sent_by t node =
  check_node t node "bytes_sent_by";
  t.bytes_sent.(node)

let bytes_received_by t node =
  check_node t node "bytes_received_by";
  t.bytes_received.(node)

let messages_sent t = t.messages
let total_bytes t = t.total_bytes

let bytes_by_tag t =
  Hashtbl.fold (fun tag r acc -> (tag, !r) :: acc) t.tag_bytes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_accounting t =
  Array.fill t.bytes_sent 0 t.num_nodes 0;
  Array.fill t.bytes_received 0 t.num_nodes 0;
  t.messages <- 0;
  t.total_bytes <- 0;
  Hashtbl.reset t.tag_bytes
