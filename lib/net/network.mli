(** Discrete-event network simulation engine.

    Nodes are dense integer ids. Protocol implementations register a
    message handler per node and exchange opaque byte strings; the
    engine delivers them after the city-to-city one-way latency (plus
    optional jitter) and accounts every byte, broken down by a caller
    supplied tag — which is what the bandwidth-overhead figures are
    computed from. All scheduling is deterministic in the seed. *)

type t
type node = int

type handler = t -> from:node -> tag:string -> string -> unit

val create :
  ?latency:Latency.t ->
  ?jitter:float ->
  ?loss_rate:float ->
  num_nodes:int ->
  seed:int ->
  unit ->
  t
(** [jitter] is the fraction of the base latency used as the half-width
    of a uniform perturbation (default 0.1). [loss_rate] drops each
    message independently with the given probability (default 0;
    failure-injection knob — self-sends are never dropped). *)

val num_nodes : t -> int
val now : t -> float
val rng : t -> Rng.t
(** The engine's root generator; protocols should [Rng.split] it. *)

val city_of : t -> node -> int
val latency_model : t -> Latency.t
val set_handler : t -> node -> handler -> unit

val set_trace : t -> Lo_obs.Trace.t option -> unit
(** Attach (or detach) an observability sink. Every charged send, every
    delivery, every drop (with its reason) and every down/up transition
    is emitted to it. Tracing never consumes engine randomness and never
    changes behaviour: a run is event-for-event identical with tracing
    on or off. Attach before protocol instances are created so they can
    snapshot it. *)

val trace : t -> Lo_obs.Trace.t option

val send : t -> src:node -> dst:node -> tag:string -> string -> unit
(** Queue a message for delivery. Self-sends are delivered with zero
    latency; for distinct nodes the perturbed delay is clamped to a
    small positive epsilon so delivery never precedes (or ties) the
    send. Dropped silently if either endpoint is down, the endpoints
    are in different partition groups, or a delivery filter rejects
    it. *)

val send_many : t -> src:node -> dsts:node list -> tag:string -> string -> unit
(** Fan one payload out to several destinations. The single [payload]
    string is shared across every enqueued delivery — callers serialize
    a broadcast message once and hand the same bytes to all recipients
    instead of re-encoding per neighbor. Per-recipient behaviour (delay
    draw, loss draw, partition/filter checks, accounting) is identical
    to calling {!send} once per destination in [dsts] order, so
    deterministic replay is unaffected. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
val schedule_at : t -> at:float -> (t -> unit) -> unit

val set_down : t -> node -> bool -> unit
(** A down node neither sends nor receives (crash model); messages
    already in flight are also lost on arrival. *)

val is_down : t -> node -> bool

val crash : t -> node -> unit
(** [crash t n] = [set_down t n true]. *)

val restart : t -> node -> unit
(** Bring a down node back and invoke its restart handler (the
    protocol-level recovery path). No-op if the node is up. *)

val set_restart_handler : t -> node -> (t -> unit) -> unit
(** Called from [restart] after the node is marked up again. *)

val set_partition : t -> int array option -> unit
(** [set_partition t (Some groups)] drops every message between nodes
    in different groups ([groups.(i)] is node [i]'s group id; length
    must equal [num_nodes]). [None] heals. *)

val loss_rate : t -> float
val set_loss_rate : t -> float -> unit

val node_delay : t -> node -> float

val set_node_delay : t -> node -> float -> unit
(** Extra one-way delay added to every message sent by this node
    (failure injection: an overloaded or throttled peer). 0 clears. *)

val set_link_fault :
  t -> src:node -> dst:node -> ?loss:float -> ?extra_delay:float -> unit -> unit
(** Asymmetric per-link degradation: extra drop probability (combined
    independently with the global loss rate) and additive delay for
    messages from [src] to [dst] only. Replaces any previous fault on
    that directed link. *)

val clear_link_fault : t -> src:node -> dst:node -> unit

val set_delivery_filter : t -> (src:node -> dst:node -> tag:string -> bool) option -> unit
(** Adversarial/partition hook: return [false] to drop a message at
    send time. *)

val run_until : t -> float -> unit
(** Process events with timestamp [<=] the given time; afterwards
    [now t] equals that time. *)

val run_until_idle : ?max_time:float -> t -> unit

val flush_in_flight : t -> unit
(** Destructively drain the event queue, emitting a {!Lo_obs.Event.Drop}
    with reason [In_flight] (at each message's scheduled delivery time)
    for every queued delivery — closing the bandwidth-conservation books
    when the horizon cuts a run. Queued timers are discarded too, so
    only call this once the run is over. No-op without a trace. *)

(** {1 Accounting} *)

val bytes_sent_by : t -> node -> int
val bytes_received_by : t -> node -> int
val messages_sent : t -> int
val total_bytes : t -> int
val bytes_by_tag : t -> (string * int) list
(** Tag -> cumulative payload bytes, sorted by tag. *)

val reset_accounting : t -> unit
