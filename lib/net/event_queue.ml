type 'a entry = { time : float; seq : int; payload : 'a }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Both backends pop in exactly ascending (time, seq) order — a total
   order, since [seq] is unique — so which one is active is invisible to
   callers: same adds, same pops, byte for byte. *)

module Heap = struct
  type 'a t = { mutable heap : 'a entry array; mutable size : int }

  let create () = { heap = [||]; size = 0 }

  let grow t =
    let cap = Array.length t.heap in
    let new_cap = max 16 (2 * cap) in
    let dummy = t.heap.(0) in
    let h = Array.make new_cap dummy in
    Array.blit t.heap 0 h 0 t.size;
    t.heap <- h

  let add t entry =
    if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
    if t.size = Array.length t.heap then grow t;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    (* Sift up. *)
    let i = ref (t.size - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      before t.heap.(!i) t.heap.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = t.heap.(!i) in
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      i := parent
    done

  let peek t = if t.size = 0 then None else Some t.heap.(0)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        (* Sift down. *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.size && before t.heap.(l) t.heap.(!smallest) then
            smallest := l;
          if r < t.size && before t.heap.(r) t.heap.(!smallest) then
            smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = t.heap.(!i) in
            t.heap.(!i) <- t.heap.(!smallest);
            t.heap.(!smallest) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end

  (* Unordered view, for migrating into the calendar. *)
  let iter_unordered t f =
    for i = 0 to t.size - 1 do
      f t.heap.(i)
    done
end

module Calendar = struct
  (* Brown's calendar queue: buckets of width [width] seconds, years of
     [n] buckets. Each bucket is a list sorted ascending by (time, seq),
     so its head is the bucket minimum. An entry's virtual bucket is
     [vb time] — a monotone function of time — and equal times always
     share a virtual bucket, which is what makes the scan below return
     the global (time, seq) minimum: scanning virtual buckets in
     increasing order, the first head that belongs to the current
     virtual bucket precedes every entry of every later virtual bucket
     (monotonicity), and precedes the rest of its own bucket (sorted).
     FIFO ties are thus decided only by the in-bucket sort, i.e. by
     [seq] — identical to the heap. *)
  type 'a t = {
    mutable buckets : 'a entry list array;
    mutable size : int;
    mutable width : float;
    mutable vi : int;  (* current virtual bucket; no live entry is below it *)
  }

  let min_buckets = 16
  let min_width = 1e-9

  let vb t time =
    let q = time /. t.width in
    if q <= 0. then 0 else int_of_float q

  let rec insert_sorted e = function
    | [] -> [ e ]
    | x :: _ as l when before e x -> e :: l
    | x :: rest -> x :: insert_sorted e rest

  let add_entry t e =
    let v = vb t e.time in
    let b = v mod Array.length t.buckets in
    t.buckets.(b) <- insert_sorted e t.buckets.(b);
    t.size <- t.size + 1;
    if t.size = 1 || v < t.vi then t.vi <- v

  (* Rebuild with [n] buckets; width targets ~2 entries per bucket over
     the current time span (performance only — never order). *)
  let rebuild t n =
    let old = t.buckets in
    let lo = ref infinity and hi = ref neg_infinity in
    Array.iter
      (List.iter (fun e ->
           if e.time < !lo then lo := e.time;
           if e.time > !hi then hi := e.time))
      old;
    let span = if t.size = 0 then 0. else !hi -. !lo in
    let width =
      if span <= 0. then Float.max min_width t.width
      else Float.max min_width (span /. float_of_int (max 1 (t.size / 2)))
    in
    t.buckets <- Array.make (max min_buckets n) [];
    t.width <- width;
    t.size <- 0;
    t.vi <- 0;
    Array.iter (List.iter (add_entry t)) old

  let create_of_size size =
    let t =
      { buckets = Array.make min_buckets []; size = 0; width = 1.0; vi = 0 }
    in
    if size > 0 then begin
      let n = ref min_buckets in
      while !n < size do
        n := !n * 2
      done;
      t.buckets <- Array.make !n []
    end;
    t

  let add t e =
    add_entry t e;
    if t.size > 2 * Array.length t.buckets then
      rebuild t (2 * Array.length t.buckets)

  (* Locate the bucket holding the global minimum and point [t.vi] at
     its virtual bucket. After a fruitless year-long scan (a sparse
     queue spread over a huge span), fall back to a direct minimum over
     the bucket heads and re-anchor. *)
  let find_min_bucket t =
    if t.size = 0 then None
    else begin
      let n = Array.length t.buckets in
      let direct () =
        let best = ref None in
        Array.iteri
          (fun b l ->
            match l with
            | [] -> ()
            | e :: _ -> (
                match !best with
                | Some (_, be) when before be e -> ()
                | _ -> best := Some (b, e)))
          t.buckets;
        match !best with
        | None -> None
        | Some (b, e) ->
            t.vi <- vb t e.time;
            Some b
      in
      let rec scan i vi =
        if i = n then direct ()
        else
          let b = vi mod n in
          match t.buckets.(b) with
          | e :: _ when vb t e.time = vi ->
              t.vi <- vi;
              Some b
          | _ -> scan (i + 1) (vi + 1)
      in
      scan 0 t.vi
    end

  let peek t =
    match find_min_bucket t with
    | None -> None
    | Some b -> ( match t.buckets.(b) with e :: _ -> Some e | [] -> None)

  let pop t =
    match find_min_bucket t with
    | None -> None
    | Some b -> (
        match t.buckets.(b) with
        | [] -> None
        | e :: rest ->
            t.buckets.(b) <- rest;
            t.size <- t.size - 1;
            if
              t.size < Array.length t.buckets / 4
              && Array.length t.buckets > min_buckets
            then rebuild t (Array.length t.buckets / 2);
            Some e)
end

type 'a impl = H of 'a Heap.t | C of 'a Calendar.t

type 'a t = {
  mutable impl : 'a impl;
  mutable next_seq : int;
  threshold : int;
}

let default_calendar_threshold = 4096

let fresh_impl threshold =
  if threshold <= 0 then C (Calendar.create_of_size 0) else H (Heap.create ())

let create ?(calendar_threshold = default_calendar_threshold) () =
  { impl = fresh_impl calendar_threshold; next_seq = 0; threshold = calendar_threshold }

let size t = match t.impl with H h -> h.Heap.size | C c -> c.Calendar.size
let is_empty t = size t = 0
let backend t = match t.impl with H _ -> `Heap | C _ -> `Calendar

let promote t h =
  let c = Calendar.create_of_size h.Heap.size in
  (* Seed the width from the heap's own span before the bulk insert. *)
  let lo = ref infinity and hi = ref neg_infinity in
  Heap.iter_unordered h (fun e ->
      if e.time < !lo then lo := e.time;
      if e.time > !hi then hi := e.time);
  let span = !hi -. !lo in
  if h.Heap.size > 0 && span > 0. then
    c.Calendar.width <-
      Float.max Calendar.min_width
        (span /. float_of_int (max 1 (h.Heap.size / 2)));
  Heap.iter_unordered h (Calendar.add_entry c);
  t.impl <- C c;
  c

let add t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  match t.impl with
  | H h when h.Heap.size >= t.threshold ->
      let c = promote t h in
      Calendar.add c entry
  | H h -> Heap.add h entry
  | C c -> Calendar.add c entry

let peek_time t =
  match
    (match t.impl with H h -> Heap.peek h | C c -> Calendar.peek c)
  with
  | None -> None
  | Some e -> Some e.time

let pop t =
  match (match t.impl with H h -> Heap.pop h | C c -> Calendar.pop c) with
  | None -> None
  | Some e -> Some (e.time, e.payload)

let clear t =
  t.impl <- fresh_impl t.threshold;
  t.next_seq <- 0
