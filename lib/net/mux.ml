type t = {
  net : Network.t;
  table : (int * string, Network.handler) Hashtbl.t;
  installed : (int, unit) Hashtbl.t;
  mutable unknown : int;
  unknown_by_tag : (string, int ref) Hashtbl.t;
}

let create net =
  {
    net;
    table = Hashtbl.create 64;
    installed = Hashtbl.create 64;
    unknown = 0;
    unknown_by_tag = Hashtbl.create 8;
  }

let proto_of_tag tag =
  match String.index_opt tag ':' with
  | None -> tag
  | Some i -> String.sub tag 0 i

(* An unsubscribed proto is not an error the receiver can act on (the
   sender may simply speak a newer protocol revision), but it must not
   vanish: count it and surface it on the trace so an audit of a live
   cluster sees the version skew. *)
let note_unknown t node ~from ~tag =
  t.unknown <- t.unknown + 1;
  (match Hashtbl.find_opt t.unknown_by_tag tag with
  | Some r -> incr r
  | None -> Hashtbl.add t.unknown_by_tag tag (ref 1));
  match Network.trace t.net with
  | Some tr ->
      Lo_obs.Trace.emit tr ~at:(Network.now t.net)
        (Lo_obs.Event.Unknown_tag { node; src = from; tag })
  | None -> ()

let dispatch t node net ~from ~tag payload =
  match Hashtbl.find_opt t.table (node, proto_of_tag tag) with
  | Some handler -> handler net ~from ~tag payload
  | None -> note_unknown t node ~from ~tag

let register t node ~proto handler =
  Hashtbl.replace t.table (node, proto) handler;
  if not (Hashtbl.mem t.installed node) then begin
    Hashtbl.add t.installed node ();
    Network.set_handler t.net node (fun net ~from ~tag payload ->
        dispatch t node net ~from ~tag payload)
  end

let unknown_count t = t.unknown

let unknown_tags t =
  Hashtbl.fold (fun tag r acc -> (tag, !r) :: acc) t.unknown_by_tag []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
