(** The discrete-event simulator as a {!Lo_transport} backend.

    A thin adapter: every closure forwards to the corresponding
    {!Network}/{!Mux} entry point with [node] as the source, adding no
    scheduling, no randomness and no state of its own — which is what
    makes the refactor behaviour-preserving: a node driven through this
    transport produces the event stream the pre-inversion node produced
    talking to [Network] directly (same-seed traces are byte-identical;
    see [test/cli/trace_golden.t]).

    The trace sink is snapshotted at creation, so attach it to the
    network ({!Network.set_trace}) before building transports. *)

val make : net:Network.t -> mux:Mux.t -> node:Network.node -> Lo_transport.t
