(** Priority queue of timestamped events.

    Ties break on insertion order, which keeps simulations fully
    deterministic: pops come out in strictly ascending (time, seq)
    where [seq] is the global insertion counter — a total order.

    Two interchangeable backends sit behind this interface: a binary
    heap (the original, best for small queues) and a Brown-style
    calendar queue (bucketed time, O(1) amortized add/pop under the
    dense schedules a 10,000-node simulation produces). A queue starts
    on the heap and promotes itself to the calendar once its size
    crosses [calendar_threshold]; because both backends realise the
    same total order, promotion is unobservable — traces are
    byte-identical whichever backend served a pop. *)

type 'a t

val default_calendar_threshold : int
(** 4096 — comfortably above any queue a ≤160-node run builds, so
    current-scale golden traces never even promote, while thousand-node
    runs promote within the first reconciliation round. *)

val create : ?calendar_threshold:int -> unit -> 'a t
(** [calendar_threshold] of [0] starts directly on the calendar;
    [max_int] pins the heap forever (both used by the equivalence
    tests). Defaults to {!default_calendar_threshold}. *)

val is_empty : 'a t -> bool
val size : 'a t -> int
val add : 'a t -> time:float -> 'a -> unit
val peek_time : 'a t -> float option
val pop : 'a t -> (float * 'a) option
val clear : 'a t -> unit

val backend : 'a t -> [ `Heap | `Calendar ]
(** Which backend is live right now (observable for tests only). *)
