(** Per-node message multiplexing by protocol prefix.

    Tags follow the convention ["proto:detail"]; the mux owns each
    node's {!Network} handler and dispatches on the prefix before the
    colon, letting several protocol layers (e.g. the LØ mempool and the
    peer sampler) share one simulated node. *)

type t

val create : Network.t -> t

val register : t -> Network.node -> proto:string -> Network.handler -> unit
(** Replaces any previous handler for the same (node, proto). *)

val proto_of_tag : string -> string
(** ["lo:commit"] -> ["lo"]; a tag without a colon is its own proto. *)

val unknown_count : t -> int
(** Deliveries whose proto had no registered handler at any node. Such
    messages (a peer speaking a newer protocol version, a stray tag)
    are counted and emitted to the trace as {!Lo_obs.Event.Unknown_tag}
    rather than dropped silently. *)

val unknown_tags : t -> (string * int) list
(** Unhandled deliveries broken down by full tag, sorted by tag. *)
