(* Benchmark harness.

   Two layers, both run by default:

   1. Bechamel micro-benchmarks — one group per paper table/figure,
      timing the computational kernels behind it (sketch encode/decode
      for Fig. 10 and Sec. 6.5, commitment checks for Fig. 6, canonical
      ordering and block building for Fig. 8, message codecs for Fig. 9,
      crypto primitives underlying everything).

   2. The full simulation experiments regenerating every figure of the
      paper's evaluation (Sec. 6) at a laptop scale.

   Environment knobs:
     LO_BENCH_SCALE  — float multiplier on the experiment node count
                       (default 1.0 = 120 nodes; use 0.3 for a quick run)
     LO_BENCH_MICRO_ONLY=1 / LO_BENCH_SIM_ONLY=1 — run only one layer. *)

open Bechamel
open Toolkit
open Lo_core
module Signer = Lo_crypto.Signer

(* ----------------------------------------------------------------- *)
(* Fixtures                                                            *)
(* ----------------------------------------------------------------- *)

let scheme = Signer.simulation ()
let signer = Signer.make scheme ~seed:"bench"
let schnorr_signer = Signer.make Signer.schnorr ~seed:"bench"

let sample_tx =
  Tx.create ~signer ~fee:42 ~created_at:1.0 ~payload:(String.make 250 'x')

let sample_tx_bytes = Tx.to_string sample_tx

let mk_ids n seed =
  let rng = Lo_net.Rng.create seed in
  List.init n (fun _ -> 1 + Lo_net.Rng.int rng (Short_id.max_value - 1))

let loaded_log ids =
  let log = Commitment.Log.create ~signer () in
  List.iter (fun id -> ignore (Commitment.Log.append log ~source:None ~ids:[ id ])) ids;
  log

(* Digest pair for extension checks. *)
let digest_pair =
  let log = Commitment.Log.create ~signer () in
  ignore (Commitment.Log.append log ~source:None ~ids:(mk_ids 50 1));
  let older = Commitment.Log.current_digest log in
  ignore (Commitment.Log.append log ~source:None ~ids:(mk_ids 20 2));
  (older, Commitment.Log.current_digest log)

let sketch_pair diff =
  let shared = mk_ids 500 3 in
  let extra = mk_ids diff 4 in
  let a = Lo_sketch.Sketch.of_list ~capacity:(diff + 16) shared in
  let b = Lo_sketch.Sketch.of_list ~capacity:(diff + 16) (shared @ extra) in
  Lo_sketch.Sketch.merge a b

let staged = Staged.stage

(* ----------------------------------------------------------------- *)
(* Micro benchmark groups (one per table/figure)                       *)
(* ----------------------------------------------------------------- *)

let crypto_group =
  (* Substrate costs paid by every experiment. *)
  [
    Test.make ~name:"sha256-256B" (staged (fun () -> Lo_crypto.Sha256.digest sample_tx_bytes));
    Test.make ~name:"hmac-sha256" (staged (fun () -> Lo_crypto.Hmac.sha256 ~key:"k" sample_tx_bytes));
    Test.make ~name:"sim-sign" (staged (fun () -> Signer.sign signer "message"));
    Test.make ~name:"schnorr-sign" (staged (fun () -> Signer.sign schnorr_signer "message"));
    Test.make ~name:"gf32-mul"
      (staged (fun () -> Lo_sketch.Gf2m.mul Lo_sketch.Gf2m.gf32 0xDEADBEEF 0x12345678));
    (* The log/antilog fast path against the windowed reference it
       replaced — the speedup ratio is recorded in BENCH_results.json. *)
    Test.make ~name:"gf16-mul-table"
      (staged (fun () -> Lo_sketch.Gf2m.mul Lo_sketch.Gf2m.gf16 0xBEEF 0x1234));
    Test.make ~name:"gf16-mul-generic"
      (staged (fun () -> Lo_sketch.Gf2m.mul_generic Lo_sketch.Gf2m.gf16 0xBEEF 0x1234));
    Test.make ~name:"gf32-mul-by"
      (staged
         (let mul_b = Lo_sketch.Gf2m.mul_by Lo_sketch.Gf2m.gf32 0x12345678 in
          fun () -> mul_b 0xDEADBEEF));
    Test.make ~name:"sha256-1KiB"
      (staged
         (let block = String.make 1024 'z' in
          fun () -> Lo_crypto.Sha256.digest block));
    (* Batch Schnorr against the one-at-a-time reference: the
       schnorr-batch-amortized-16 speedup in BENCH_results.json is
       (16 x schnorr-verify) / schnorr-batch-verify-16. *)
    Test.make ~name:"schnorr-verify"
      (staged
         (let msg = "message" in
          let signature = Signer.sign schnorr_signer msg in
          let id = Signer.id schnorr_signer in
          fun () -> Signer.verify Signer.schnorr ~id ~msg ~signature));
    Test.make ~name:"schnorr-batch-verify-16"
      (staged
         (let sigs =
            Array.init 16 (fun i ->
                let msg = Printf.sprintf "batch-msg-%d" i in
                (Signer.id schnorr_signer, msg, Signer.sign schnorr_signer msg))
          in
          fun () -> Signer.verify_many Signer.schnorr sigs));
  ]

let fig6_group =
  (* Detection kernels: digest verification and consistency checks. *)
  let older, newer = digest_pair in
  let light = Commitment.strip_sketch newer in
  [
    Test.make ~name:"digest-verify-full" (staged (fun () -> Commitment.verify scheme newer));
    Test.make ~name:"digest-verify-light" (staged (fun () -> Commitment.verify scheme light));
    Test.make ~name:"check-extension-sketch"
      (staged (fun () -> Commitment.check_extension ~older ~newer ()));
    Test.make ~name:"check-extension-clock"
      (staged (fun () ->
           Commitment.check_extension ~older:(Commitment.strip_sketch older)
             ~newer:light ()));
    Test.make ~name:"evidence-verify"
      (staged
         (let log_a = Commitment.Log.create ~signer () in
          let log_b = Commitment.Log.create ~signer () in
          ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
          ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
          let ev =
            Evidence.Conflicting_digests
              {
                older = Commitment.Log.current_digest log_a;
                newer = Commitment.Log.current_digest log_b;
              }
          in
          fun () -> Evidence.verify scheme ev));
  ]

(* Faithful reimplementation of the pre-optimization append path, built
   from public APIs only: per-call windowed multiplication for the
   syndrome accumulation, a fresh Writer serialization of the whole
   sketch, a string-based SHA-256 of it, a full syndrome copy for the
   snapshot, then the signed digest. The commit-append-500 /
   commit-append-500-baseline ratio in BENCH_results.json is the
   measured win of the incremental digest path. *)
module Baseline_append = struct
  module Bloom_clock = Lo_bloom.Bloom_clock
  module Gf2m = Lo_sketch.Gf2m
  module Writer = Lo_codec.Writer

  type t = {
    clock : Bloom_clock.t;
    syndromes : int array;
    cells : int list array;
    known : (int, unit) Hashtbl.t;
    mutable counter : int;
    mutable seq : int;
  }

  let create () =
    {
      clock = Bloom_clock.create ~cells:Commitment.default_clock_cells ();
      syndromes = Array.make Commitment.default_sketch_capacity 0;
      cells = Array.make Commitment.default_clock_cells [];
      known = Hashtbl.create 256;
      counter = 0;
      seq = 0;
    }

  let append t ids =
    let fresh =
      List.filter
        (fun id ->
          if Hashtbl.mem t.known id then false
          else begin
            Hashtbl.add t.known id ();
            true
          end)
        ids
    in
    match fresh with
    | [] -> ()
    | _ ->
        let field = Gf2m.gf32 in
        let n = Array.length t.syndromes in
        List.iter
          (fun id ->
            Bloom_clock.add_int t.clock id;
            let e2 = Gf2m.mul_generic field id id in
            let p = ref id in
            for i = 0 to n - 1 do
              t.syndromes.(i) <- t.syndromes.(i) lxor !p;
              if i < n - 1 then p := Gf2m.mul_generic field !p e2
            done;
            let cell =
              Bloom_clock.cell_of_int ~cells:(Array.length t.cells) id
            in
            t.cells.(cell) <- id :: t.cells.(cell))
          fresh;
        t.counter <- t.counter + List.length fresh;
        t.seq <- t.seq + 1;
        (* snapshot: serialize the whole sketch through a Writer, hash
           the contents string, copy the syndromes for the digest *)
        let w = Writer.create ~initial_size:64 () in
        Writer.u8 w 32;
        Writer.u16 w n;
        Array.iter
          (fun s ->
            for b = 3 downto 0 do
              Writer.u8 w ((s lsr (8 * b)) land 0xFF)
            done)
          t.syndromes;
        let sketch_hash = Lo_crypto.Sha256.digest (Writer.contents w) in
        ignore (Array.copy t.syndromes);
        let unsigned =
          {
            Commitment.owner = Signer.id signer;
            seq = t.seq;
            counter = t.counter;
            clock = Bloom_clock.copy t.clock;
            sketch_hash;
            sketch = None;
            signature = String.make Signer.signature_size '\000';
          }
        in
        ignore (Signer.sign signer (Commitment.signing_bytes unsigned))
end

(* One reconciliation round commits a bundle of ids, not a single one;
   16 is a typical delta at the default workload. *)
let bundle_size = 16

let fresh_bundle counter =
  incr counter;
  List.init bundle_size (fun k ->
      0x10000000 + (((!counter * bundle_size) + k) land 0xFFFFFF))

let fig7_group =
  (* Mempool-path kernels: prevalidation and commitment append. *)
  [
    Test.make ~name:"tx-decode" (staged (fun () -> Tx.of_string sample_tx_bytes));
    Test.make ~name:"tx-prevalidate" (staged (fun () -> Tx.prevalidate scheme sample_tx));
    Test.make ~name:"commit-append-1"
      (staged
         (let counter = ref 0 in
          let log = Commitment.Log.create ~signer () in
          fun () ->
            incr counter;
            ignore (Commitment.Log.append log ~source:None ~ids:[ 1 + (!counter land 0xFFFFFF) ])));
    Test.make ~name:"commit-append-500"
      (staged
         (let log = loaded_log (mk_ids 500 21) in
          let counter = ref 0 in
          fun () ->
            ignore
              (Commitment.Log.append log ~source:None
                 ~ids:(fresh_bundle counter))));
    Test.make ~name:"commit-append-500-baseline"
      (staged
         (let t = Baseline_append.create () in
          List.iter (fun id -> Baseline_append.append t [ id ]) (mk_ids 500 21);
          let counter = ref 0 in
          fun () -> Baseline_append.append t (fresh_bundle counter)));
  ]

let fig8_group =
  (* Block building and inspection kernels. *)
  let ids = mk_ids 200 5 in
  let log = loaded_log ids in
  let bundles =
    List.map (fun b -> (b.Commitment.Log.seq, b.Commitment.Log.ids)) (Commitment.Log.bundles log)
  in
  let txs_by_short = Hashtbl.create 256 in
  List.iteri
    (fun i id ->
      let tx = Tx.create ~signer ~fee:(1 + (i mod 50)) ~created_at:0.0
          ~payload:(Printf.sprintf "b%d" i)
      in
      Hashtbl.replace txs_by_short id tx)
    ids;
  let input =
    {
      Policy.bundles;
      find_tx = (fun id -> Hashtbl.find_opt txs_by_short id);
      is_settled = (fun _ -> false);
      fee_threshold = 0;
      max_txs = 1000;
      seed = Block.genesis_hash;
    }
  in
  [
    Test.make ~name:"canonical-order-200"
      (staged (fun () -> Order.canonical ~seed:Block.genesis_hash ~bundles));
    Test.make ~name:"build-fifo-200" (staged (fun () -> Policy.build Policy.Lo_fifo input));
    Test.make ~name:"build-highest-fee-200"
      (staged (fun () -> Policy.build Policy.Highest_fee input));
  ]

let fig9_group =
  (* Wire-format kernels: what each byte of Fig. 9 costs to produce. *)
  let light = Commitment.Log.current_digest_light (loaded_log (mk_ids 30 6)) in
  let full = Commitment.Log.current_digest (loaded_log (mk_ids 30 7)) in
  let light_msg = Messages.encode (Messages.Commit_request { digest = light; delta = [ 1; 2; 3 ]; want = []; appended = [] }) in
  [
    Test.make ~name:"encode-commit-request-light"
      (staged (fun () ->
           Messages.encode (Messages.Commit_request { digest = light; delta = [ 1; 2; 3 ]; want = []; appended = [] })));
    Test.make ~name:"encode-digest-share-full"
      (staged (fun () -> Messages.encode (Messages.Digest_share full)));
    Test.make ~name:"decode-commit-request" (staged (fun () -> Messages.decode light_msg));
    Test.make ~name:"encode-tx-batch-10"
      (staged
         (let txs = List.init 10 (fun i ->
              Tx.create ~signer ~fee:i ~created_at:0.0 ~payload:(String.make 250 'y'))
          in
          fun () -> Messages.encode (Messages.Tx_batch txs)));
  ]

let fig10_group =
  (* Sketch reconciliation kernels at several difference sizes. *)
  List.concat_map
    (fun diff ->
      let merged = sketch_pair diff in
      [
        Test.make ~name:(Printf.sprintf "sketch-decode-diff%d" diff)
          (staged (fun () -> Lo_sketch.Sketch.decode merged));
      ])
    [ 4; 16; 64 ]
  @ [
      Test.make ~name:"sketch-add"
        (staged
           (let s = Lo_sketch.Sketch.create ~capacity:Commitment.default_sketch_capacity () in
            let counter = ref 0 in
            fun () ->
              incr counter;
              Lo_sketch.Sketch.add s (1 + (!counter land 0xFFFFF))));
      Test.make ~name:"strata-estimate"
        (staged
           (let a = Lo_sketch.Strata.of_list (mk_ids 300 11) in
            let b = Lo_sketch.Strata.of_list (mk_ids 320 12) in
            fun () -> Lo_sketch.Strata.estimate a b));
      Test.make ~name:"bloom-clock-compare"
        (staged
           (let a = Lo_bloom.Bloom_clock.create () in
            let b = Lo_bloom.Bloom_clock.create () in
            List.iter (Lo_bloom.Bloom_clock.add_int a) (mk_ids 100 8);
            List.iter (Lo_bloom.Bloom_clock.add_int b) (mk_ids 110 8);
            fun () -> Lo_bloom.Bloom_clock.compare_clocks a b));
    ]

let memcpu_group =
  (* Sec. 6.5: monolithic vs partitioned reconciliation cost. *)
  let mk n =
    let local = mk_ids n 9 and remote = mk_ids n 10 in
    (local, remote)
  in
  List.concat_map
    (fun n ->
      let local, remote = mk n in
      [
        Test.make ~name:(Printf.sprintf "reconcile-monolithic-%d" (2 * n))
          (staged (fun () ->
               Lo_sketch.Partitioned.reconcile_monolithic ~capacity:(2 * n)
                 ~local ~remote ()));
        Test.make ~name:(Printf.sprintf "reconcile-partitioned-%d" (2 * n))
          (staged (fun () ->
               Lo_sketch.Partitioned.reconcile ~capacity:64 ~local ~remote ()));
        (* The pre-kernel decode path ([fast:false]: per-partition
           allocations, exhaustive root search), kept measurable so the
           kernel's win is a recorded ratio, not a lost baseline. *)
        Test.make ~name:(Printf.sprintf "reconcile-partitioned-%d-ref" (2 * n))
          (staged (fun () ->
               Lo_sketch.Partitioned.reconcile ~fast:false ~capacity:64 ~local
                 ~remote ()));
      ])
    [ 50; 125 ]

(* ----------------------------------------------------------------- *)
(* Bechamel driver                                                     *)
(* ----------------------------------------------------------------- *)

let smoke = Sys.getenv_opt "LO_BENCH_SMOKE" = Some "1"

let run_group ~name tests =
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.02) ~kde:None
        ~stabilize:false ()
    else
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None
        ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== bench group: %s ==\n" name;
  let rows =
    Hashtbl.fold (fun key v acc -> (key, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (key, result) ->
           match Analyze.OLS.estimates result with
           | Some [ ns ] ->
               Printf.printf "%-42s %12.1f ns/run\n" key ns;
               (key, ns)
           | _ ->
               Printf.printf "%-42s (no estimate)\n" key;
               (key, 0.))
  in
  (name, rows)

(* ----------------------------------------------------------------- *)
(* Sustained ingest (the throughput tier headline)                     *)
(* ----------------------------------------------------------------- *)

(* Not a bechamel group: the number that matters is sustained
   throughput through the whole batched admission pipeline with state
   accumulating — wire decode, batched signature verification, mempool
   insert, one commitment bundle (one signed digest) per batch — not
   the steady-state cost of one warmed call. The floor is a hard gate:
   the full bench fails below 100k tx/s (the smoke run keeps a relaxed
   floor so slow CI containers stay green). *)

let ingest_floor = if smoke then 25_000. else 100_000.
let ingest_batch_size = 64

let run_ingest () =
  Printf.printf "\n== ingest (batched admission pipeline) ==\n%!";
  let total = if smoke then 32_768 else 131_072 in
  (* Minimal 10-byte payloads: the pipeline-overhead regime. Larger
     payloads shift the cost toward raw SHA-256 throughput (~11 ns per
     byte), which substrate/sha256-1KiB already tracks; this row is
     about per-transaction admission overhead. The fee stays below 128
     so the wire image keeps a 1-byte varint. *)
  let wires =
    Array.init total (fun i ->
        Tx.to_string
          (Tx.create ~signer ~fee:(i land 0x7F)
             ~created_at:(float_of_int i *. 1e-3)
             ~payload:(Printf.sprintf "tx-%07d" i)))
  in
  let batches = total / ingest_batch_size in
  let lat = Array.make batches 0. in
  let one_pass () =
    (* Fresh admission state per pass — the ids repeat across passes,
       and a sustained-throughput figure over an all-duplicate stream
       would measure the wrong pipeline. *)
    let m = Mempool.create ~initial_capacity:total () in
    let log = Commitment.Log.create ~signer () in
    (* Start from a settled heap so the measured window prices the
       pipeline's own garbage, not the setup's. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for b = 0 to batches - 1 do
      let start = Unix.gettimeofday () in
      let txs = ref [] in
      let base = b * ingest_batch_size in
      for j = base + ingest_batch_size - 1 downto base do
        txs := Tx.of_string wires.(j) :: !txs
      done;
      let r =
        Mempool.ingest_batch ~scheme
          ~known:(fun s -> Commitment.Log.contains log s)
          ~commit:(fun ids ->
            ignore (Commitment.Log.append log ~source:None ~ids))
          ~received_at:0. ~from_peer:None m !txs
      in
      if r.Mempool.invalid <> [] then failwith "ingest bench: rejected valid tx";
      lat.(b) <- Unix.gettimeofday () -. start
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let tps = float_of_int total /. wall in
    Array.sort compare lat;
    let pct p =
      lat.(min (batches - 1) (int_of_float (p *. float_of_int batches))) *. 1e9
    in
    (tps, pct 0.5, pct 0.99)
  in
  (* Best of a few passes: the same quiet-window discipline bechamel
     applies by sampling — a shared host's noisy neighbours should not
     decide a throughput floor. Every pass is itself a sustained
     full-length run. *)
  let passes = if smoke then 2 else 3 in
  let best = ref (0., 0., 0.) in
  (try
     for p = 1 to passes do
       let ((tps, _, _) as r) = one_pass () in
       let bt, _, _ = !best in
       if tps > bt then best := r;
       Printf.printf "ingest pass %d/%d: %.0f tx/s\n%!" p passes tps;
       if tps >= 1.2 *. ingest_floor then raise Exit
     done
   with Exit -> ());
  let tps, p50, p99 = !best in
  Printf.printf
    "ingest: %d txs -> %.0f tx/s sustained (batch %d: p50 %.0f ns, p99 %.0f \
     ns)\n\
     %!"
    total tps ingest_batch_size p50 p99;
  if tps < ingest_floor then begin
    Printf.eprintf "ingest: %.0f tx/s is below the %.0f tx/s floor\n" tps
      ingest_floor;
    exit 1
  end;
  ( "ingest",
    [
      ("ingest/sustained-tx-per-s", tps);
      ("ingest/batch64-p50-ns", p50);
      ("ingest/batch64-p99-ns", p99);
    ] )

let run_micro () =
  [
    run_group ~name:"substrate" crypto_group;
    run_group ~name:"fig6" fig6_group;
    run_group ~name:"fig7" fig7_group;
    run_group ~name:"fig8" fig8_group;
    run_group ~name:"fig9" fig9_group;
    run_group ~name:"fig10" fig10_group;
    run_group ~name:"sec6.5" memcpu_group;
    run_ingest ();
  ]

(* ----------------------------------------------------------------- *)
(* Full experiments                                                    *)
(* ----------------------------------------------------------------- *)

let run_experiments () =
  let factor =
    match Sys.getenv_opt "LO_BENCH_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let scale =
    Lo_sim.Experiments.scaled ~factor
      { Lo_sim.Experiments.default_scale with reps = 1; duration = 15. }
  in
  Printf.printf "\n=== Paper experiments (nodes=%d, rate=%.0f tx/s, %.0f s) ===\n"
    scale.Lo_sim.Experiments.nodes scale.Lo_sim.Experiments.rate
    scale.Lo_sim.Experiments.duration;
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "[%s took %.1f s wall-clock]\n%!" name dt;
    timings := (name, dt) :: !timings
  in
  timed "fig6" (fun () -> ignore (Lo_sim.Experiments.fig6 ~scale ~fractions:[ 0.1; 0.2; 0.3 ] ()));
  timed "fig7" (fun () -> ignore (Lo_sim.Experiments.fig7 ~scale ()));
  timed "fig8-left" (fun () -> ignore (Lo_sim.Experiments.fig8_left ~scale ()));
  timed "fig8-right" (fun () -> ignore (Lo_sim.Experiments.fig8_right ~scale ()));
  timed "fig9" (fun () -> ignore (Lo_sim.Experiments.fig9 ~scale ()));
  timed "fig10" (fun () -> ignore (Lo_sim.Experiments.fig10 ~scale ()));
  timed "memcpu" (fun () -> ignore (Lo_sim.Experiments.memcpu ~scale ()));
  timed "ablation" (fun () -> ignore (Lo_sim.Experiments.ablation ~scale ()));
  List.rev !timings

(* ----------------------------------------------------------------- *)
(* Paper-scale rows (Scale.sweep)                                      *)
(* ----------------------------------------------------------------- *)

(* The 2,000-node sweep runs in every mode — including bench-smoke — as
   the regression gate for the scale work: hard ceilings on wall clock
   and peak RSS, generous enough (~3x the 1-core reference machine) to
   stay quiet across hardware but tight enough to catch the failure
   modes they defend against (calendar queue degenerating to a scan,
   interner/dedup-set leaks, trace-ring mis-sizing). The 10,000-node
   pair is measurement-only and runs with the full benchmarks.

   These rows run FIRST in the process: peak RSS comes from VmHWM, a
   process-wide high-water mark that cannot be reset (clear_refs is a
   no-op in some containers), so running the sweeps before the
   experiment layer is what keeps the reading — and the ceiling check —
   about the sweeps rather than about whatever allocated most before
   them. *)
let scale_2k_wall_budget_ms = 120_000.
let scale_2k_rss_budget_mb = 2048.

let run_scale () =
  let row ~n =
    let r = Lo_sim.Scale.sweep ~n ~seed:1 () in
    let wall_ms = r.Lo_sim.Scale.wall_s *. 1000. in
    let rss_mb = Option.value r.Lo_sim.Scale.peak_rss_mb ~default:0. in
    Printf.printf
      "scale n=%d: %d events, %d detections, wall %.0f ms, peak rss %.0f MB\n%!"
      n r.Lo_sim.Scale.events r.Lo_sim.Scale.detections wall_ms rss_mb;
    if not (Lo_sim.Scale.ok r) then begin
      List.iter
        (fun f -> Printf.eprintf "scale n=%d FAILURE: %s\n" n f)
        r.Lo_sim.Scale.failures;
      Printf.eprintf "scale n=%d: audit failed (%d honest exposures)\n" n
        r.Lo_sim.Scale.honest_exposures;
      exit 1
    end;
    (wall_ms, rss_mb)
  in
  Printf.printf "\n== scale sweeps ==\n%!";
  let wall_2k, rss_2k = row ~n:2000 in
  if wall_2k > scale_2k_wall_budget_ms then begin
    Printf.eprintf "scale n=2000: wall %.0f ms exceeds budget %.0f ms\n" wall_2k
      scale_2k_wall_budget_ms;
    exit 1
  end;
  if rss_2k > scale_2k_rss_budget_mb then begin
    Printf.eprintf "scale n=2000: peak rss %.0f MB exceeds budget %.0f MB\n"
      rss_2k scale_2k_rss_budget_mb;
    exit 1
  end;
  [ ("fig6-2k-wall-ms", wall_2k); ("fig6-2k-peak-rss-mb", rss_2k) ]
  @
  if smoke then []
  else begin
    let wall_10k, rss_10k = row ~n:10_000 in
    [ ("fig6-10k-wall-ms", wall_10k); ("fig6-10k-peak-rss-mb", rss_10k) ]
  end

(* ----------------------------------------------------------------- *)
(* BENCH_results.json                                                  *)
(* ----------------------------------------------------------------- *)

(* The file future PRs diff perf against. Key order is fixed by
   construction (groups in run order, tests alphabetical within each,
   the three sections always present) so two result files line up under
   a plain textual diff. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v = if Float.is_finite v then Printf.sprintf "%.3f" v else "0.000"

let results_to_json ~micro ~sim ~speedups =
  let buf = Buffer.create 4096 in
  let obj_of kvs render =
    String.concat ",\n"
      (List.map
         (fun (k, v) -> Printf.sprintf "    \"%s\": %s" (json_escape k) (render v))
         kvs)
  in
  Buffer.add_string buf "{\n  \"schema\": \"lo-bench/1\",\n  \"micro\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (group, rows) ->
            Printf.sprintf "    \"%s\": {\n%s\n    }" (json_escape group)
              (String.concat ",\n"
                 (List.map
                    (fun (k, ns) ->
                      Printf.sprintf "      \"%s\": %s" (json_escape k)
                        (json_num ns))
                    rows)))
          micro));
  Buffer.add_string buf "\n  },\n  \"sim\": {\n";
  Buffer.add_string buf (obj_of sim json_num);
  Buffer.add_string buf "\n  },\n  \"speedups\": {\n";
  Buffer.add_string buf (obj_of speedups json_num);
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

(* Hot-path before/after ratios, computed from the micro rows. *)
let compute_speedups micro =
  let find group key =
    match List.assoc_opt group micro with
    | None -> None
    | Some rows -> List.assoc_opt (group ^ "/" ^ key) rows
  in
  let ratio group slow fast =
    match (find group slow, find group fast) with
    | Some s, Some f when f > 0. -> s /. f
    | _ -> 0.
  in
  match micro with
  | [] -> []
  | _ ->
      [
        ("gf16-mul-table-vs-generic",
         ratio "substrate" "gf16-mul-generic" "gf16-mul-table");
        ("commit-append-500-vs-baseline",
         ratio "fig7" "commit-append-500-baseline" "commit-append-500");
        ("reconcile-partitioned-100-kernel-vs-ref",
         ratio "sec6.5" "reconcile-partitioned-100-ref"
           "reconcile-partitioned-100");
        ("reconcile-partitioned-250-kernel-vs-ref",
         ratio "sec6.5" "reconcile-partitioned-250-ref"
           "reconcile-partitioned-250");
        (* Amortization of the batch Schnorr path: 16 individual
           verifications against one 16-element verify_many call. *)
        ("schnorr-batch-amortized-16",
         (match
            ( find "substrate" "schnorr-verify",
              find "substrate" "schnorr-batch-verify-16" )
          with
          | Some s, Some f when f > 0. -> 16.0 *. s /. f
          | _ -> 0.));
      ]

(* ----------------------------------------------------------------- *)
(* Schema validation — a minimal JSON reader, no external deps         *)
(* ----------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      String.iter expect lit;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
            | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some _ -> advance ()
                  | None -> fail "bad \\u escape"
                done;
                Buffer.add_char buf '?';
                go ()
            | Some c -> advance (); Buffer.add_char buf c; go ()
            | None -> fail "bad escape")
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (advance (); Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((k, v) :: acc)
              | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (advance (); Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements (v :: acc)
              | Some ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "empty input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end

let validate_results path =
  let contents =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  let fail msg = Error (Printf.sprintf "%s: %s" path msg) in
  match Json.parse contents with
  | exception Json.Bad msg -> fail ("JSON parse error: " ^ msg)
  | Json.Obj fields -> (
      let all_numbers = function
        | Json.Obj kvs ->
            List.for_all (fun (_, v) -> match v with Json.Num _ -> true | _ -> false) kvs
        | _ -> false
      in
      match
        ( List.assoc_opt "schema" fields,
          List.assoc_opt "micro" fields,
          List.assoc_opt "sim" fields,
          List.assoc_opt "speedups" fields )
      with
      | Some (Json.Str "lo-bench/1"), Some (Json.Obj groups), Some sim, Some speedups ->
          if not (List.for_all (fun (_, g) -> all_numbers g) groups) then
            fail "micro groups must map test names to numbers"
          else if not (all_numbers sim) then fail "sim must map names to numbers"
          else if not (all_numbers speedups) then
            fail "speedups must map names to numbers"
          else Ok ()
      | Some (Json.Str other), _, _, _ -> fail ("unknown schema: " ^ other)
      | _ -> fail "missing schema/micro/sim/speedups")
  | _ -> fail "top level must be an object"

let () =
  let micro_only = Sys.getenv_opt "LO_BENCH_MICRO_ONLY" = Some "1" in
  let sim_only = Sys.getenv_opt "LO_BENCH_SIM_ONLY" = Some "1" in
  let out =
    Option.value (Sys.getenv_opt "LO_BENCH_OUT") ~default:"BENCH_results.json"
  in
  (* Scale rows run in every mode — and first, see run_scale —
     bench-smoke is the gate that fails on a wall/RSS regression at 2k
     nodes. *)
  let scale_rows = run_scale () in
  let micro = if not sim_only then run_micro () else [] in
  let sim = if not micro_only then run_experiments () else [] in
  let sim = sim @ scale_rows in
  let speedups = compute_speedups micro in
  let oc = open_out out in
  output_string oc (results_to_json ~micro ~sim ~speedups);
  close_out oc;
  Printf.printf "\nwrote %s\n" out;
  List.iter
    (fun (name, r) -> Printf.printf "speedup %-34s %8.2fx\n" name r)
    speedups;
  match validate_results out with
  | Ok () -> Printf.printf "%s: schema lo-bench/1 OK\n" out
  | Error msg ->
      prerr_endline msg;
      exit 1
