(* Fault-injection coverage: the reconciler's exponential backoff and
   suspicion-withdrawal machinery driven directly, a full-deployment
   crash/heal cycle (a crashed-but-honest node must be suspected, then
   withdrawn, and never exposed), and the chaos experiment's acceptance
   properties at the seeds the issue pins. *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer
module Rng = Lo_net.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Reconciler harness (as in test_reconciler) -------- *)

type harness = {
  env : Node_env.t;
  reconciler : Reconciler.t;
  broadcasts : Messages.t list ref;
  timers : (float * (unit -> unit)) Queue.t;
  clock : float ref;
  cleared : string list ref;
  peer_id : string;
  peer_signer : Signer.t;
}

let make_harness () =
  let scheme = Signer.simulation () in
  let config = Node_env.default_config scheme in
  let signer = Signer.make scheme ~seed:"fault-test-me" in
  let peer_signer = Signer.make scheme ~seed:"fault-test-peer" in
  let my_id = Signer.id signer in
  let peer_id = Signer.id peer_signer in
  let ids = [| my_id; peer_id |] in
  let log =
    Commitment.Log.create ~sketch_capacity:config.Node_env.sketch_capacity
      ~clock_cells:config.Node_env.clock_cells ~signer ()
  in
  let mempool = Mempool.create () in
  let content = Content_sync.create ~mempool ~adversary:Adversary.Honest () in
  let tracker = Peer_tracker.create () in
  let broadcasts = ref [] in
  let timers = Queue.create () in
  let clock = ref 0. in
  let cleared = ref [] in
  let hooks = Node_env.no_hooks () in
  hooks.Node_env.on_suspicion_cleared <-
    (fun ~suspect -> cleared := suspect :: !cleared);
  let env =
    {
      Node_env.config;
      hooks;
      trace = None;
      my_id;
      my_index = 0;
      signer;
      rng = Rng.create 7;
      acc = Accountability.create ();
      primary_log = log;
      now = (fun () -> !clock);
      send = (fun ~dst:_ _ -> ());
      broadcast = (fun msg -> broadcasts := msg :: !broadcasts);
      schedule = (fun ~delay fn -> Queue.add (!clock +. delay, fn) timers);
      id_of = (fun i -> ids.(i));
      index_of =
        (fun id ->
          let rec find i =
            if i >= Array.length ids then None
            else if String.equal ids.(i) id then Some i
            else find (i + 1)
          in
          find 0);
      population = (fun () -> Array.length ids);
      neighbors = (fun () -> [ 1 ]);
      log_for = (fun ~peer_index:_ -> log);
      wire_digest =
        (fun ~peer_index:_ -> Commitment.Log.current_digest_light log);
      commit =
        (fun ~source ~ids -> ignore (Commitment.Log.append log ~source ~ids));
      expose = (fun ~accused:_ _ -> ());
      retry_inspections = (fun ~owner:_ -> ());
      record_deviation = (fun ~kind:_ ~height:_ -> ());
    }
  in
  {
    env;
    reconciler = Reconciler.create ~content ~tracker;
    broadcasts;
    timers;
    clock;
    cleared;
    peer_id;
    peer_signer;
  }

let fire_next h =
  let at, fn = Queue.pop h.timers in
  h.clock := Float.max !(h.clock) at;
  fn ()

let escalate_to_suspicion h =
  let retries = h.env.Node_env.config.Node_env.max_retries in
  Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
  for _ = 1 to retries + 1 do
    fire_next h
  done

let withdrawals h =
  List.filter
    (function Messages.Suspicion_withdraw _ -> true | _ -> false)
    !(h.broadcasts)

let reconciler_tests =
  [
    Alcotest.test_case "retry delays back off exponentially" `Quick (fun () ->
        let h = make_harness () in
        let retries = h.env.Node_env.config.Node_env.max_retries in
        Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
        (* One armed timer at a time: record each arm-to-fire gap. With
           backoff 2.0 and jitter 0.2 consecutive delay ranges do not
           overlap, so the gaps must be strictly increasing. *)
        let delays = ref [] in
        let last = ref 0. in
        for _ = 0 to retries do
          let at, _ = Queue.peek h.timers in
          delays := (at -. !last) :: !delays;
          last := at;
          fire_next h
        done;
        let delays = List.rev !delays in
        check_int "one timer per attempt" (retries + 1) (List.length delays);
        let rec increasing = function
          | a :: (b :: _ as rest) -> a < b && increasing rest
          | _ -> true
        in
        check_bool "strictly growing gaps" true (increasing delays);
        check_bool "suspected at the end" true
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id));
    Alcotest.test_case "an answer after suspicion broadcasts a withdrawal"
      `Quick (fun () ->
        let h = make_harness () in
        escalate_to_suspicion h;
        check_int "no withdrawal while suspected" 0
          (List.length (withdrawals h));
        let peer_log =
          Commitment.Log.create
            ~sketch_capacity:h.env.Node_env.config.Node_env.sketch_capacity
            ~clock_cells:h.env.Node_env.config.Node_env.clock_cells
            ~signer:h.peer_signer ()
        in
        Reconciler.handle_commit_response h.reconciler h.env ~from:1
          ~digest:(Commitment.Log.current_digest peer_log)
          ~want:[] ~delta:[] ~appended:[];
        check_bool "suspicion cleared" false
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        (match withdrawals h with
        | [ Messages.Suspicion_withdraw { suspect; reporter } ] ->
            Alcotest.(check string) "suspect" h.peer_id suspect;
            Alcotest.(check string) "reporter" h.env.Node_env.my_id reporter
        | _ -> Alcotest.fail "expected exactly one Suspicion_withdraw"));
    Alcotest.test_case "gossiped withdrawal clears and relays once" `Quick
      (fun () ->
        let h = make_harness () in
        Accountability.suspect h.env.Node_env.acc ~peer:h.peer_id ~now:0.
          ~reason:"test";
        Reconciler.handle_withdrawal h.reconciler h.env ~suspect:h.peer_id
          ~reporter:"someone";
        check_bool "cleared" false
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        check_int "cleared hook fired" 1 (List.length !(h.cleared));
        check_int "relayed once" 1 (List.length (withdrawals h));
        (* A duplicate withdrawal is a no-op: state did not change. *)
        Reconciler.handle_withdrawal h.reconciler h.env ~suspect:h.peer_id
          ~reporter:"someone";
        check_int "no re-relay" 1 (List.length (withdrawals h)));
    Alcotest.test_case "unresponsiveness score demotes and resets" `Quick
      (fun () ->
        let h = make_harness () in
        check_int "starts clean" 0
          (Reconciler.unresponsive_score h.reconciler h.peer_id);
        escalate_to_suspicion h;
        check_int "one escalation" 1
          (Reconciler.unresponsive_score h.reconciler h.peer_id);
        Reconciler.resolve_pending h.reconciler h.env ~peer:h.peer_id;
        check_int "answer resets" 0
          (Reconciler.unresponsive_score h.reconciler h.peer_id));
  ]

(* ---------------- Crash / heal on a full deployment ----------------- *)

type deployment = {
  net : Net.t;
  nodes : Node.t array;
  client : Signer.t;
}

(* Tight escalation so a 10 s outage comfortably reaches the suspicion
   stage: 0.5 + 1 + 2 = 3.5 s to blame. *)
let mk_network ~n ~seed () =
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i ->
        Signer.make scheme ~seed:(Printf.sprintf "f%d-%d" seed i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Rng.create (seed + 1) in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:8 ~max_in:125 in
  let config =
    {
      (Node.default_config scheme) with
      Node.request_timeout = 0.5;
      max_retries = 2;
    }
  in
  let nodes =
    Array.init n (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:Node.Honest)
  in
  Array.iter Node.start nodes;
  { net; nodes; client = Signer.make scheme ~seed:"fault-client" }

let submit d ~target ~fee payload =
  let tx =
    Tx.create ~signer:d.client ~fee ~created_at:(Net.now d.net) ~payload
  in
  Node.submit_tx d.nodes.(target) tx

let count_nodes d pred =
  Array.fold_left (fun acc node -> if pred node then acc + 1 else acc) 0 d.nodes

let crash_heal_tests =
  [
    Alcotest.test_case
      "crashed-but-honest peer: suspected, withdrawn, never exposed" `Slow
      (fun () ->
        let d = mk_network ~n:12 ~seed:311 () in
        let cleared_events = ref 0 in
        Array.iter
          (fun node ->
            (Node.hooks node).Node.on_suspicion_cleared <-
              (fun ~suspect:_ -> incr cleared_events))
          d.nodes;
        for k = 0 to 5 do
          submit d ~target:k ~fee:(3 + k) (Printf.sprintf "pre%d" k)
        done;
        (* Crash node 4 mid-reconciliation; keep traffic flowing so its
           peers are actively trying to reconcile with it. *)
        Net.run_until d.net 1.0;
        Net.crash d.net 4;
        for k = 0 to 5 do
          submit d ~target:(k mod 4) ~fee:(9 + k) (Printf.sprintf "mid%d" k)
        done;
        Net.run_until d.net 12.0;
        let id4 = Node.node_id d.nodes.(4) in
        let suspecting =
          count_nodes d (fun node ->
              Accountability.is_suspected (Node.accountability node) id4)
        in
        check_bool "suspicion broadcast while down" true (suspecting > 0);
        (* Heal: the restart handler re-announces, re-requests heads and
           resumes reconciliation; suspicion must be withdrawn
           everywhere. *)
        Net.restart d.net 4;
        Net.run_until d.net 40.0;
        let still_suspecting =
          count_nodes d (fun node ->
              Accountability.is_suspected (Node.accountability node) id4)
        in
        check_int "withdrawn everywhere" 0 still_suspecting;
        check_bool "withdrawals actually flowed" true (!cleared_events > 0);
        let exposed =
          count_nodes d (fun node ->
              Accountability.is_exposed (Node.accountability node) id4)
        in
        check_int "never exposed" 0 exposed;
        (* The recovered node itself is consistent again: it holds no
           standing suspicions of the whole network either way. *)
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures anywhere" 0 e)
          d.nodes);
  ]

(* ---------------- Chaos experiment acceptance ----------------------- *)

let chaos_scale seed =
  { Lo_sim.Experiments.nodes = 16; reps = 1; rate = 4.; duration = 6.; seed }

let run_chaos seed =
  Lo_sim.Experiments.chaos ~scale:(chaos_scale seed) ~churn_rates:[ 0.4 ]
    ~partition_durations:[ 1.5 ] ~burst_losses:[ 0.3 ] ()

let chaos_tests =
  [
    Alcotest.test_case "seeds 1-3: many fault kinds, zero honest exposures"
      `Slow (fun () ->
        List.iter
          (fun seed ->
            match run_chaos seed with
            | [ cell ] ->
                check_bool
                  (Printf.sprintf "seed %d: >= 3 fault kinds" seed)
                  true
                  (cell.Lo_sim.Experiments.fault_kinds >= 3);
                check_int
                  (Printf.sprintf "seed %d: no honest exposures" seed)
                  0 cell.Lo_sim.Experiments.honest_exposures;
                check_bool
                  (Printf.sprintf "seed %d: >= 90%% suspicions resolved" seed)
                  true
                  (cell.Lo_sim.Experiments.resolution_rate >= 0.9)
            | cells ->
                Alcotest.failf "expected one cell, got %d" (List.length cells))
          [ 1; 2; 3 ]);
    Alcotest.test_case "identical seed and plan give identical reports" `Slow
      (fun () ->
        check_bool "byte-identical cells" true (run_chaos 1 = run_chaos 1));
  ]

let () =
  Alcotest.run "lo_faults"
    [
      ("reconciler-hardening", reconciler_tests);
      ("crash-heal", crash_heal_tests);
      ("chaos", chaos_tests);
    ]
