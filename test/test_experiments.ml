(* Shape tests for the experiment harness: tiny-scale versions of each
   paper figure, asserting the qualitative claims (who wins, roughly by
   how much) rather than absolute numbers. *)

open Lo_sim

let check_bool = Alcotest.(check bool)

let tiny =
  { Experiments.nodes = 30; reps = 1; rate = 8.; duration = 8.; seed = 2025 }

let metrics_tests =
  [
    Alcotest.test_case "stats mean/stddev/percentile" `Quick (fun () ->
        let s = Metrics.Stats.create () in
        List.iter (Metrics.Stats.add s) [ 1.; 2.; 3.; 4.; 5. ];
        Alcotest.(check (float 1e-9)) "mean" 3.0 (Metrics.Stats.mean s);
        Alcotest.(check (float 1e-9)) "min" 1.0 (Metrics.Stats.min s);
        Alcotest.(check (float 1e-9)) "max" 5.0 (Metrics.Stats.max s);
        Alcotest.(check (float 1e-9)) "median" 3.0 (Metrics.Stats.percentile s 0.5);
        check_bool "stddev" true (abs_float (Metrics.Stats.stddev s -. sqrt 2.) < 1e-9));
    Alcotest.test_case "stddev survives large offsets" `Quick (fun () ->
        (* Catastrophic-cancellation regression: with the naive
           sum_sq/n - mean^2 formula, an offset of 1e9 leaves zero
           significant bits in the variance. Welford's update keeps the
           exact same spread as the un-shifted data. *)
        let base = Metrics.Stats.create () in
        let shifted = Metrics.Stats.create () in
        List.iter
          (fun v ->
            Metrics.Stats.add base v;
            Metrics.Stats.add shifted (1e9 +. v))
          [ 1.; 2.; 3. ];
        let expected = sqrt (2. /. 3.) in
        Alcotest.(check (float 1e-9)) "base" expected (Metrics.Stats.stddev base);
        Alcotest.(check (float 1e-6)) "shifted" expected
          (Metrics.Stats.stddev shifted);
        Alcotest.(check (float 1e-3)) "shifted mean" (1e9 +. 2.)
          (Metrics.Stats.mean shifted));
    Alcotest.test_case "stats empty" `Quick (fun () ->
        let s = Metrics.Stats.create () in
        Alcotest.(check (float 1e-9)) "mean" 0. (Metrics.Stats.mean s);
        Alcotest.(check (float 1e-9)) "p50" 0. (Metrics.Stats.percentile s 0.5));
    Alcotest.test_case "histogram clamps and normalises" `Quick (fun () ->
        let h = Metrics.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
        List.iter (Metrics.Histogram.add h) [ -1.; 0.5; 5.5; 25. ];
        let d = Metrics.Histogram.density h in
        Alcotest.(check int) "total" 4 (Metrics.Histogram.total h);
        check_bool "sums to 1" true
          (abs_float (Array.fold_left ( +. ) 0. d -. 1.0) < 1e-9);
        let counts = Metrics.Histogram.counts h in
        Alcotest.(check int) "first bin" 2 counts.(0);
        Alcotest.(check int) "last bin" 1 counts.(4));
    Alcotest.test_case "timing records once" `Quick (fun () ->
        let t = Metrics.Timing.create () in
        Metrics.Timing.started t ~key:"k" ~at:1.0;
        check_bool "first" true (Metrics.Timing.finish t ~key:"k" ~at:3.0 = Some 2.0);
        check_bool "repeat" true (Metrics.Timing.finish t ~key:"k" ~at:9.0 = None);
        check_bool "unknown" true (Metrics.Timing.finish t ~key:"zz" ~at:1.0 = None));
    Alcotest.test_case "timing re-start after finish does not re-arm" `Quick
      (fun () ->
        (* The documented contract: each key measures its first completed
           interval only. A started after a finish must not open a second
           measurable interval, but re-starting a pending key replaces
           the start. *)
        let t = Metrics.Timing.create () in
        Metrics.Timing.started t ~key:"k" ~at:1.0;
        Metrics.Timing.started t ~key:"k" ~at:2.0;
        check_bool "pending re-start replaces" true
          (Metrics.Timing.finish t ~key:"k" ~at:5.0 = Some 3.0);
        Metrics.Timing.started t ~key:"k" ~at:10.0;
        check_bool "finished key stays finished" true
          (Metrics.Timing.finish t ~key:"k" ~at:20.0 = None);
        check_bool "start time still readable" true
          (Metrics.Timing.start_time t ~key:"k" = Some 10.0);
        check_bool "other keys unaffected" true
          (Metrics.Timing.started t ~key:"j" ~at:11.0;
           Metrics.Timing.finish t ~key:"j" ~at:12.0 = Some 1.0));
  ]

let scenario_tests =
  [
    Alcotest.test_case "deployment is deterministic" `Slow (fun () ->
        let run () =
          let d = Scenario.build_lo ~n:15 ~seed:9 () in
          let specs = Scenario.standard_workload ~rate:5. ~duration:5. ~seed:9 ~n:15 in
          let txs = Scenario.inject_workload d specs in
          Lo_net.Network.run_until d.net 15.0;
          ( List.map (fun tx -> tx.Lo_core.Tx.id) txs,
            Lo_net.Network.total_bytes d.net )
        in
        let a = run () and b = run () in
        check_bool "identical" true (a = b));
    Alcotest.test_case "workload arrives at the right rate" `Quick (fun () ->
        let specs = Scenario.standard_workload ~rate:50. ~duration:20. ~seed:1 ~n:10 in
        let n = List.length specs in
        check_bool "rate" true (n > 800 && n < 1200));
  ]

let fig_tests =
  [
    Alcotest.test_case "fig7: latency around a second, no tail blowup" `Slow
      (fun () ->
        let r = Experiments.fig7 ~scale:tiny () in
        check_bool "samples" true (r.Experiments.samples > 500);
        check_bool "mean plausible" true
          (r.Experiments.mean_latency > 0.2 && r.Experiments.mean_latency < 4.0);
        check_bool "p95 bounded" true (r.Experiments.p95 < 8.0);
        (* the paper's "interaction with 5 to 6 nodes" shape: a small
           single-digit number of reconciliation partners *)
        check_bool "interactions single digit" true
          (r.Experiments.mean_interactions > 0.5
          && r.Experiments.mean_interactions < 10.0));
    Alcotest.test_case "fig6: full suspicion, exposures spread" `Slow (fun () ->
        match Experiments.fig6 ~scale:tiny ~fractions:[ 0.2 ] () with
        | [ p ] ->
            check_bool "suspicion complete" true (p.Experiments.suspicion_complete > 0.95);
            check_bool "suspicion timely" true
              (p.Experiments.suspicion_time > 1.0 && p.Experiments.suspicion_time < 30.0);
            check_bool "exposures mostly complete" true
              (p.Experiments.exposure_complete > 0.5)
        | _ -> Alcotest.fail "expected one point");
    Alcotest.test_case "fig9: LO beats Flood and PeerReview; Narwhal is fast but costly"
      `Slow (fun () ->
        let rows = Experiments.fig9 ~scale:{ tiny with rate = 15.; duration = 12. } () in
        let find name =
          List.find (fun r -> r.Experiments.protocol = name) rows
        in
        let lo = find "LO" and flood = find "Flood" in
        let pr = find "PeerReview" and nw = find "Narwhal" in
        check_bool "flood costlier" true
          (flood.Experiments.overhead_bytes > 2 * lo.Experiments.overhead_bytes);
        check_bool "peerreview costliest of flood family" true
          (pr.Experiments.overhead_bytes > flood.Experiments.overhead_bytes);
        check_bool "narwhal costlier than LO" true
          (nw.Experiments.overhead_bytes > 2 * lo.Experiments.overhead_bytes);
        check_bool "narwhal faster" true
          (nw.Experiments.content_latency < lo.Experiments.content_latency));
    Alcotest.test_case "fig10: reconciliation work grows with load" `Slow
      (fun () ->
        match Experiments.fig10 ~scale:tiny ~rates:[ 2.; 30. ] () with
        | [ (_, low); (_, high) ] ->
            check_bool "monotone" true (high > low)
        | _ -> Alcotest.fail "expected two points");
    Alcotest.test_case "fig8: highest-fee starves low-fee transactions" `Slow
      (fun () ->
        let rows =
          Experiments.fig8_left
            ~scale:{ tiny with nodes = 25; rate = 10.; duration = 30. } ()
        in
        match rows with
        | [ fifo; hf ] ->
            check_bool "fifo serves low fee like anything else" true
              (fifo.Experiments.low_fee_mean
              < 1.6 *. Float.max 0.001 fifo.Experiments.high_fee_mean);
            check_bool "hf starves low fee" true
              (hf.Experiments.low_fee_mean
              > 1.5 *. Float.max 0.001 hf.Experiments.high_fee_mean)
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "memcpu: partitioning beats monolithic decode" `Slow
      (fun () ->
        let r = Experiments.memcpu ~scale:tiny ~diffs:[ 200 ] () in
        (match r.Experiments.decode_costs with
        | [ c ] ->
            check_bool "faster" true (c.Experiments.partitioned_ms < c.Experiments.monolithic_ms)
        | _ -> Alcotest.fail "expected one cost");
        (* commitment size grows with workload *)
        let sizes = List.map snd r.Experiments.commitment_sizes in
        check_bool "monotone sizes" true (List.sort compare sizes = sizes);
        check_bool "storage measured" true (r.Experiments.storage_per_node > 0));
  ]

let ablation_tests =
  [
    Alcotest.test_case "light digests save several-fold bandwidth" `Slow
      (fun () ->
        let r =
          Experiments.ablation
            ~scale:{ tiny with nodes = 20; reps = 3; rate = 6.; duration = 6. }
            ()
        in
        check_bool "full costs more" true
          (r.Experiments.full_overhead > 2 * r.Experiments.light_overhead);
        check_bool "latency comparable" true
          (abs_float (r.Experiments.full_latency -. r.Experiments.light_latency)
          < 1.0);
        (* the share-period dial is monotone-ish: fastest period beats
           the slowest (of the finite points) *)
        let finite =
          List.filter (fun (_, v) -> Float.is_finite v)
            r.Experiments.share_period_exposure
        in
        match (finite, List.rev finite) with
        | (p_fast, t_fast) :: _, (p_slow, t_slow) :: _ when p_fast < p_slow ->
            check_bool "faster sharing exposes faster" true (t_fast <= t_slow)
        | _ -> () (* too few finite points at this tiny scale: fine *));
  ]

let report_tests =
  [
    Alcotest.test_case "formatters" `Quick (fun () ->
        Alcotest.(check string) "seconds" "1.500 s" (Report.seconds 1.5);
        Alcotest.(check string) "bytes" "512 B" (Report.bytes 512);
        Alcotest.(check string) "kb" "2.00 KB" (Report.bytes 2048);
        Alcotest.(check string) "mb" "3.00 MB" (Report.bytes (3 * 1024 * 1024)));
    Alcotest.test_case "printers do not raise" `Quick (fun () ->
        Report.table ~title:"t" ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
        Report.bar_chart ~title:"b" [ ("x", 1.0); ("y", 2.0) ];
        Report.series ~title:"s" ~x_label:"x" ~y_label:"y" [ (1., 2.); (3., 4.) ];
        Report.histogram ~title:"h" ~edges:[| (0., 1.); (1., 2.) |]
          ~density:[| 0.5; 0.5 |]);
  ]

let replay_tests =
  [
    Alcotest.test_case "trace replay measures dissemination" `Slow (fun () ->
        let rng = Lo_net.Rng.create 7 in
        let trace = Lo_workload.Trace.synthesize rng ~rate:5. ~duration:5. () in
        let r = Experiments.replay ~scale:tiny ~trace () in
        Alcotest.(check int) "txs" (List.length trace) r.Experiments.trace_txs;
        check_bool "deliveries" true
          (r.Experiments.delivered
          >= (List.length trace - 1) * (tiny.Experiments.nodes - 1));
        check_bool "latency sane" true
          (r.Experiments.replay_mean_latency > 0.1
          && r.Experiments.replay_mean_latency < 5.0));
    Alcotest.test_case "bundled sample trace parses" `Quick (fun () ->
        let path =
          List.find Sys.file_exists
            [ "../data/sample_trace.csv"; "data/sample_trace.csv";
              "../../data/sample_trace.csv" ]
        in
        let ic = open_in path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Lo_workload.Trace.parse text with
        | Ok records -> check_bool "non-empty" true (List.length records > 100)
        | Error e -> Alcotest.fail e);
  ]

let () =
  Alcotest.run "lo_experiments"
    [
      ("metrics", metrics_tests);
      ("scenario", scenario_tests);
      ("figures", fig_tests);
      ("report", report_tests);
      ("replay", replay_tests);
      ("ablation", ablation_tests);
    ]
