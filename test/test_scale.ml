(* Equivalence suite pinning the scale machinery of lib/core and
   lib/sim: the interner against naive string keys, the Bigarray dedup
   set against Hashtbl, Welford absorb against sequential adds, and a
   2,000-node audited sweep smoke with a live-heap budget.

   The calendar-vs-heap event queue property lives with the other queue
   tests in test_net.ml. *)

open Lo_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Short strings drawn from a small alphabet so duplicates are common —
   interning is only interesting under collisions. *)
let key_gen =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 1 6))

(* ---------------- Interner vs naive reference ---------------- *)

(* Reference: ids are first-seen order in a assoc list keyed by string
   equality — the semantics Directory had before interning. *)
let naive_ids keys =
  List.fold_left
    (fun acc k -> if List.mem_assoc k acc then acc else (k, List.length acc) :: acc)
    [] keys
  |> List.rev

let interner_tests =
  [
    qtest "intern matches naive first-seen ids" (QCheck2.Gen.list key_gen)
      (fun keys ->
        let t = Interner.create () in
        let ids = List.map (fun k -> Interner.intern t k) keys in
        let reference = naive_ids keys in
        ids = List.map (fun k -> List.assoc k reference) keys
        && Interner.size t = List.length reference);
    qtest "find/to_string round-trip" (QCheck2.Gen.list key_gen) (fun keys ->
        let t = Interner.create () in
        List.iter (fun k -> ignore (Interner.intern t k)) keys;
        List.for_all
          (fun k ->
            match Interner.find t k with
            | None -> false
            | Some id -> String.equal (Interner.to_string t id) k)
          keys);
    qtest "iter is insertion order" (QCheck2.Gen.list key_gen) (fun keys ->
        let t = Interner.create () in
        List.iter (fun k -> ignore (Interner.intern t k)) keys;
        let seen = ref [] in
        Interner.iter t (fun id k -> seen := (id, k) :: !seen);
        List.rev !seen = List.map (fun (k, id) -> (id, k)) (naive_ids keys));
    qtest "canonical is equal and retained" (QCheck2.Gen.list key_gen)
      (fun keys ->
        let t = Interner.create () in
        List.for_all
          (fun k ->
            let c = Interner.canonical t k in
            (* Equal bytes, and the same retained copy every time. *)
            String.equal c k && Interner.canonical t (String.sub k 0 (String.length k)) == c)
          keys);
    Alcotest.test_case "unknown ids raise" `Quick (fun () ->
        let t = Interner.create () in
        ignore (Interner.intern t "a");
        check_bool "raises" true
          (match Interner.to_string t 7 with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* ---------------- Dedup_set vs Hashtbl ---------------- *)

let dedup_tests =
  [
    qtest "add/mem/cardinal match Hashtbl"
      QCheck2.Gen.(list (int_range 1 50))
      (fun keys ->
        let set = Dedup_set.create ~initial_capacity:4 () in
        let tbl = Hashtbl.create 16 in
        List.for_all
          (fun k ->
            let fresh_ref = not (Hashtbl.mem tbl k) in
            if fresh_ref then Hashtbl.add tbl k ();
            let fresh = Dedup_set.add set k in
            fresh = fresh_ref
            && Dedup_set.mem set k
            && Dedup_set.cardinal set = Hashtbl.length tbl)
          keys
        && List.for_all
             (fun k -> Dedup_set.mem set k = Hashtbl.mem tbl k)
             (List.init 60 (fun i -> i + 1)));
    qtest "iter visits each member exactly once"
      QCheck2.Gen.(list (int_range 1 1000))
      (fun keys ->
        let set = Dedup_set.create ~initial_capacity:4 () in
        List.iter (fun k -> ignore (Dedup_set.add set k)) keys;
        let seen = Hashtbl.create 16 in
        Dedup_set.iter set (fun k ->
            Alcotest.(check bool) "no repeats" false (Hashtbl.mem seen k);
            Hashtbl.add seen k ());
        let module S = Set.Make (Int) in
        Hashtbl.length seen = S.cardinal (S.of_list keys));
    Alcotest.test_case "growth keeps membership" `Quick (fun () ->
        let set = Dedup_set.create ~initial_capacity:2 () in
        for k = 1 to 10_000 do
          check_bool "fresh" true (Dedup_set.add set k)
        done;
        for k = 1 to 10_000 do
          check_bool "member" true (Dedup_set.mem set k);
          check_bool "dup" false (Dedup_set.add set k)
        done;
        check_int "cardinal" 10_000 (Dedup_set.cardinal set);
        check_bool "load under 50%" true
          (2 * Dedup_set.cardinal set <= Dedup_set.capacity set));
    Alcotest.test_case "rejects non-positive keys" `Quick (fun () ->
        let set = Dedup_set.create () in
        check_bool "raises" true
          (match Dedup_set.add set 0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* ---------------- Welford absorb order ---------------- *)

let stats_tests =
  [
    (* absorb must replay the source's samples in insertion order, so a
       parallel shard join is bit-identical to the sequential fold the
       golden outputs were produced with. *)
    qtest "absorb equals sequential adds"
      QCheck2.Gen.(
        pair
          (list (float_bound_inclusive 1000.))
          (list (float_bound_inclusive 1000.)))
      (fun (xs, ys) ->
        let seq = Lo_sim.Metrics.Stats.create () in
        List.iter (Lo_sim.Metrics.Stats.add seq) (xs @ ys);
        let a = Lo_sim.Metrics.Stats.create () in
        let b = Lo_sim.Metrics.Stats.create () in
        List.iter (Lo_sim.Metrics.Stats.add a) xs;
        List.iter (Lo_sim.Metrics.Stats.add b) ys;
        Lo_sim.Metrics.Stats.absorb a b;
        (* Bit-exact, not approximate: Int64 views catch sign/NaN tricks
           a float compare would forgive. *)
        let bits f = Int64.bits_of_float f in
        let open Lo_sim.Metrics.Stats in
        bits (mean a) = bits (mean seq)
        && bits (stddev a) = bits (stddev seq)
        && count a = count seq
        && values a = values seq);
  ]

(* ---------------- 2,000-node sweep smoke ---------------- *)

(* Short horizon: a 2 s workload, and the shortest drain at which retry
   escalation matures censor suspicions into detections beyond the
   audit's 12 s grace window (24 s; at 20 s every violation is still
   inside grace and detections read zero). Budgets are ~2x the
   reference machine's measurements. *)
let sweep_smoke () =
  let r = Lo_sim.Scale.sweep ~n:2000 ~duration:2.0 ~drain:24.0 ~seed:7 () in
  List.iter
    (fun f -> Printf.eprintf "scale smoke FAILURE: %s\n" f)
    r.Lo_sim.Scale.failures;
  check_bool "audit clean" true (r.Lo_sim.Scale.failures = []);
  check_int "zero honest exposures" 0 r.Lo_sim.Scale.honest_exposures;
  check_bool "adversaries detected" true (r.Lo_sim.Scale.detections > 0);
  check_bool "workload delivered" true (r.Lo_sim.Scale.delivered > 0);
  let live_words = (Gc.quick_stat ()).Gc.top_heap_words in
  (* ~62M words observed (trace rings dominate); 2x headroom. *)
  let budget = 125_000_000 in
  if live_words > budget then
    Alcotest.failf "top_heap_words %d exceeds budget %d" live_words budget

let scale_tests =
  [ Alcotest.test_case "2000-node audited sweep" `Slow sweep_smoke ]

let () =
  Alcotest.run "lo_scale"
    [
      ("interner", interner_tests);
      ("dedup_set", dedup_tests);
      ("stats", stats_tests);
      ("sweep", scale_tests);
    ]
