(* The reconciliation failure path, driven through the Reconciler
   interface directly: a peer that never answers must cost exactly
   1 + max_retries requests, then a suspicion plus a gossiped
   Suspicion_note — and one real answer must clear everything
   (temporal accuracy, Sec. 3.2). A synthetic Node_env with a manual
   timer queue stands in for the discrete-event network. *)

open Lo_core
module Signer = Lo_crypto.Signer
module Rng = Lo_net.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type harness = {
  env : Node_env.t;
  reconciler : Reconciler.t;
  sent : (int * Messages.t) list ref;  (* newest first *)
  broadcasts : Messages.t list ref;
  timers : (float * (unit -> unit)) Queue.t;
  clock : float ref;
  suspicions : string list ref;
  cleared : string list ref;
  peer_id : string;
  peer_signer : Signer.t;
}

let make_harness () =
  let scheme = Signer.simulation () in
  let config = Node_env.default_config scheme in
  let signer = Signer.make scheme ~seed:"recon-test-me" in
  let peer_signer = Signer.make scheme ~seed:"recon-test-peer" in
  let my_id = Signer.id signer in
  let peer_id = Signer.id peer_signer in
  let ids = [| my_id; peer_id |] in
  let log =
    Commitment.Log.create ~sketch_capacity:config.Node_env.sketch_capacity
      ~clock_cells:config.Node_env.clock_cells ~signer ()
  in
  let mempool = Mempool.create () in
  let content = Content_sync.create ~mempool ~adversary:Adversary.Honest () in
  let tracker = Peer_tracker.create () in
  let sent = ref [] in
  let broadcasts = ref [] in
  let timers = Queue.create () in
  let clock = ref 0. in
  let suspicions = ref [] in
  let cleared = ref [] in
  let hooks = Node_env.no_hooks () in
  hooks.Node_env.on_suspicion <-
    (fun ~suspect -> suspicions := suspect :: !suspicions);
  hooks.Node_env.on_suspicion_cleared <-
    (fun ~suspect -> cleared := suspect :: !cleared);
  let env =
    {
      Node_env.config;
      hooks;
      trace = None;
      my_id;
      my_index = 0;
      signer;
      rng = Rng.create 7;
      acc = Accountability.create ();
      primary_log = log;
      now = (fun () -> !clock);
      send = (fun ~dst msg -> sent := (dst, msg) :: !sent);
      broadcast = (fun msg -> broadcasts := msg :: !broadcasts);
      schedule = (fun ~delay fn -> Queue.add (!clock +. delay, fn) timers);
      id_of = (fun i -> ids.(i));
      index_of =
        (fun id ->
          let rec find i =
            if i >= Array.length ids then None
            else if String.equal ids.(i) id then Some i
            else find (i + 1)
          in
          find 0);
      population = (fun () -> Array.length ids);
      neighbors = (fun () -> [ 1 ]);
      log_for = (fun ~peer_index:_ -> log);
      wire_digest =
        (fun ~peer_index:_ -> Commitment.Log.current_digest_light log);
      commit =
        (fun ~source ~ids -> ignore (Commitment.Log.append log ~source ~ids));
      expose = (fun ~accused:_ _ -> ());
      retry_inspections = (fun ~owner:_ -> ());
      record_deviation = (fun ~kind:_ ~height:_ -> ());
    }
  in
  {
    env;
    reconciler = Reconciler.create ~content ~tracker;
    sent;
    broadcasts;
    timers;
    clock;
    suspicions;
    cleared;
    peer_id;
    peer_signer;
  }

let fire_next h =
  let at, fn = Queue.pop h.timers in
  h.clock := Float.max !(h.clock) at;
  fn ()

let count_requests h =
  List.length
    (List.filter
       (function _, Messages.Commit_request _ -> true | _ -> false)
       !(h.sent))

let tests =
  [
    Alcotest.test_case "timeouts escalate to suspicion broadcast" `Quick
      (fun () ->
        let h = make_harness () in
        let retries = h.env.Node_env.config.Node_env.max_retries in
        Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
        check_int "initial request" 1 (count_requests h);
        (* Each unanswered timeout forces a retry with a fresh request,
           until the budget is spent. *)
        for _ = 1 to retries do
          fire_next h
        done;
        check_int "one request per retry" (1 + retries) (count_requests h);
        check_bool "not yet suspected" false
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        (* The final expiry raises the suspicion instead of retrying. *)
        fire_next h;
        check_int "no extra request" (1 + retries) (count_requests h);
        check_bool "suspected" true
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        check_int "hook fired once" 1 (List.length !(h.suspicions));
        (match !(h.broadcasts) with
        | [ Messages.Suspicion_note note ] ->
            Alcotest.(check string) "suspect" h.peer_id note.Messages.suspect;
            Alcotest.(check string) "reporter" h.env.Node_env.my_id
              note.Messages.reporter;
            Alcotest.(check string) "reason" "request timeout"
              note.Messages.reason;
            check_bool "no stored digest" true (note.Messages.last_digest = None)
        | _ -> Alcotest.fail "expected exactly one Suspicion_note broadcast");
        check_bool "timer queue drained" true (Queue.is_empty h.timers));
    Alcotest.test_case "a response resolves pending and clears suspicion"
      `Quick (fun () ->
        let h = make_harness () in
        let retries = h.env.Node_env.config.Node_env.max_retries in
        Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
        for _ = 1 to retries + 1 do
          fire_next h
        done;
        check_bool "suspected after escalation" true
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        (* The peer comes back: its commitment digest arrives in a
           Commit_response. *)
        let peer_log =
          Commitment.Log.create
            ~sketch_capacity:h.env.Node_env.config.Node_env.sketch_capacity
            ~clock_cells:h.env.Node_env.config.Node_env.clock_cells
            ~signer:h.peer_signer ()
        in
        Reconciler.handle_commit_response h.reconciler h.env ~from:1
          ~digest:(Commitment.Log.current_digest peer_log)
          ~want:[] ~delta:[] ~appended:[];
        check_bool "suspicion cleared" false
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        check_int "cleared hook fired once" 1 (List.length !(h.cleared));
        (* A new exchange starts from a clean slate: full retry budget. *)
        let before = count_requests h in
        Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
        check_int "fresh request sent" (before + 1) (count_requests h));
    Alcotest.test_case "stale timeout generations are ignored" `Quick
      (fun () ->
        let h = make_harness () in
        Reconciler.reconcile_with ~force:true h.reconciler h.env ~peer_index:1;
        check_int "armed one timer" 1 (Queue.length h.timers);
        (* The response lands before the timer fires... *)
        Reconciler.resolve_pending h.reconciler h.env ~peer:h.peer_id;
        let before = count_requests h in
        (* ...so the expiry must neither retry nor suspect. *)
        fire_next h;
        check_int "no retry from stale timer" before (count_requests h);
        check_bool "no suspicion" false
          (Accountability.is_suspected h.env.Node_env.acc h.peer_id);
        check_int "no suspicion hook" 0 (List.length !(h.suspicions)));
  ]

let () = Alcotest.run "lo_reconciler" [ ("failure-path", tests) ]
