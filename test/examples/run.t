The example programs are deterministic end to end; these transcripts
pin their observable behaviour.

  $ ../../examples/quickstart.exe
  Started 5 honest miners (fully connected overlay).
    submitted ab1f6833 (fee 30) to miner 0
    submitted 10210d94 (fee 12) to miner 1
    submitted dff59d5b (fee 55) to miner 2
    submitted e35b74d4 (fee 7) to miner 3
  miner 0: mempool=4, committed bundles=4
  miner 1: mempool=4, committed bundles=3
  miner 2: mempool=4, committed bundles=4
  miner 3: mempool=4, committed bundles=4
  miner 4: mempool=4, committed bundles=3
  miner 0 built block 1: 4 txs over bundles 1..4
  inspection violations: 0 (expected 0)
  suspicions: 0, exposures: 0 (expected 0, 0)
  quickstart done.

  $ ../../examples/censorship_demo.exe
  competing bid submitted to miner 5; sniper's bid to miner 0
  miner 0 mempool: 2 txs, committed: 2 ids
  sniper's block: height 1, 1 txs; own bid included: true; competing bid included: false
    [8.01s] miner 1 sees censorship(bundle 2, id 2534f82f)
    [8.04s] miner 1 sees censorship(bundle 2, id 2534f82f)
    [8.04s] miner 1 sees censorship(bundle 2, id 2534f82f)
  miners holding verifiable proof of censorship: 14/14
  censorship detected and attributed — demo done.

  $ ../../examples/sandwich_demo.exe
  attacker's block: 8 txs over bundles 1..4
  first injection detection: miner 7 at 8.05s
  miners holding verifiable proof of injection: 14/14
  front-running attempt exposed — demo done.
