Determinism lint: simulation runs must be a pure function of the
scenario seed, so the only module allowed to mention OCaml's Random is
the seeded splitmix64 generator that wraps all randomness. A match
below means someone smuggled ambient randomness into the protocol or
the harness.

  $ grep -rnE '\bRandom\.' --include='*.ml' --include='*.mli' ../../lib ../../bin \
  >   | grep -v 'lib/net/rng\.ml' | sort

The same contract for time and the operating system: protocol and
harness code reads the clock through its Transport (the DES under
simulation), never from the host. Everything that genuinely needs the
OS — sockets, forks, wall clock — lives in lib/live, the one
non-simulated transport backend; anywhere else, `Unix.` or a wall-clock
read is a determinism leak.

  $ grep -rnE '\bUnix\.|\bgettimeofday\b|Sys\.time\b' --include='*.ml' --include='*.mli' ../../lib ../../bin \
  >   | grep -v 'lib/live/' | sort

And within lib/live itself the wall clock stays behind one chokepoint:
Clock is the only module that may read the host's time (or sleep on
it). Everything else takes `now` as an argument or calls Clock, so the
reconnect/backoff and chaos logic stays testable with synthetic clocks.

  $ grep -rnE '\bgettimeofday\b|\bUnix\.time\b|\bUnix\.sleepf?\b|Sys\.time\b' --include='*.ml' ../../lib/live \
  >   | grep -v 'lib/live/clock\.ml' | sort

The throughput tier (batched admission in Mempool.ingest_batch, the
paired sketch kernels, the ingest benchmark) must not loosen any of
this. The batch paths live in lib/ and are swept by the lints above;
the benchmark harness is allowed to read the wall clock — elapsed time
is the thing it measures — but its workload must stay a pure function
of loop indices and fixed seeds, so the Random ban extends to bench/
too. A match below means a benchmark's input (and therefore its
recorded baseline) changes from run to run.

  $ grep -rnE '\bRandom\.' --include='*.ml' ../../bench | sort
