Determinism lint: simulation runs must be a pure function of the
scenario seed, so the only module allowed to mention OCaml's Random is
the seeded splitmix64 generator that wraps all randomness. A match
below means someone smuggled ambient randomness into the protocol or
the harness.

  $ grep -rnE '\bRandom\.' --include='*.ml' --include='*.mli' ../../lib ../../bin \
  >   | grep -v 'lib/net/rng\.ml' | sort
