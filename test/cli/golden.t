Golden outputs: seeded runs must be byte-identical across machines and
releases — any diff here is either a behaviour change (update the
fixture deliberately) or a determinism regression (fix the code).

A small traced baseline run with the auditor on. The harness
wall-clock table is the single nondeterministic section of the
report, so it is elided; everything else — event counts, wire flow,
byte totals, the audit verdict — is exact.

  $ ../../bin/lo.exe trace baseline -n 12 --duration 6 --rate 4 --seed 1 --audit | sed '/wall-clock/,/^run /d'
  
  == Trace — events by kind ==
  kind        count
  -----------------
  block       24   
  commit      166  
  deliver     2322 
  send        2322 
  span_begin  259  
  span_end    259  
  
  == Trace — wire flow by message tag ==
  tag              sent  delivered  dropped  blocked  sent bytes
  --------------------------------------------------------------
  lo:block         264   264        0        0        119.37 KB 
  lo:commit-req    333   333        0        0        72.60 KB  
  lo:commit-resp   333   333        0        0        68.99 KB  
  lo:digest        462   462        0        0        312.95 KB 
  lo:digest-reply  368   368        0        0        821.72 KB 
  lo:digest-req    380   380        0        0        12.99 KB  
  lo:txs           182   182        0        0        92.67 KB  
  
  audit: PASS — 0 violation(s) over 5352 events (0 unclosed span(s), 0 standing suspicion(s) excused)

The chaos sweep grid: every cell of the fault matrix, including
latency quantiles, suspicion counts and the exposure column, is a
pure function of the seed.

  $ ../../bin/lo.exe chaos -n 12 --duration 6 --rate 4 --reps 1 --seed 1
  
  == Chaos — fault injection (all nodes honest; exposures must be zero) ==
  churn/s  part (s)  burst  crash  kinds  lat mean  lat p95  recon ok  susp  withdrawn  resolved  exposed  audit
  --------------------------------------------------------------------------------------------------------------
  0.10     1.5       0.15   1/1    5      1.499     5.022    74.1%     67    67         100.0%    0        off  
  0.10     1.5       0.35   0/0    4      0.899     2.003    85.4%     0     0          100.0%    0        off  
  0.10     3.0       0.15   0/0    3      0.804     1.486    93.4%     0     0          100.0%    0        off  
  0.10     3.0       0.35   1/1    4      0.822     1.682    85.8%     11    11         100.0%    0        off  
  0.30     1.5       0.15   2/2    5      1.984     7.745    62.8%     102   102        100.0%    0        off  
  0.30     1.5       0.35   2/2    5      1.835     6.208    65.8%     20    20         100.0%    0        off  
  0.30     3.0       0.15   3/3    4      0.833     1.864    70.2%     131   131        100.0%    0        off  
  0.30     3.0       0.35   4/4    4      0.935     2.070    76.4%     11    11         100.0%    0        off  
