Golden traces across the transport inversion: routing the DES through
the Transport interface must not change a single byte of the event
stream. The fixtures were generated before the refactor; `cmp` (not a
summary diff) is the point — same seed, same JSONL, byte for byte.

The adversary scenario exercises suspicion, exposure and block
inspection on top of the full wire protocol:

  $ ../../bin/lo.exe trace adversary -n 10 --duration 4 --rate 3 --seed 1 --out fig6.jsonl > /dev/null
  $ cmp fig6.jsonl fixtures/trace_fig6_seed1.jsonl && echo identical
  identical

The chaos scenario adds churn, partitions and loss bursts — the widest
event-kind coverage (crashes, restarts, drops, withdrawals):

  $ ../../bin/lo.exe trace chaos -n 8 --duration 3 --rate 3 --seed 1 --out chaos.jsonl > /dev/null
  $ cmp chaos.jsonl fixtures/trace_chaos_seed1.jsonl && echo identical
  identical
