Golden traces across the transport inversion: routing the DES through
the Transport interface must not change a single byte of the event
stream. The fixtures were generated before the refactor; `cmp` (not a
summary diff) is the point — same seed, same JSONL, byte for byte.

The adversary scenario exercises suspicion, exposure and block
inspection on top of the full wire protocol:

  $ ../../bin/lo.exe trace adversary -n 10 --duration 4 --rate 3 --seed 1 --out fig6.jsonl > /dev/null
  $ cmp fig6.jsonl fixtures/trace_fig6_seed1.jsonl && echo identical
  identical

The chaos scenario adds churn, partitions and loss bursts — the widest
event-kind coverage (crashes, restarts, drops, withdrawals):

  $ ../../bin/lo.exe trace chaos -n 8 --duration 3 --rate 3 --seed 1 --out chaos.jsonl > /dev/null
  $ cmp chaos.jsonl fixtures/trace_chaos_seed1.jsonl && echo identical
  identical

Sharded sweeps must be a pure function of (seed, shard count): the
merged JSONL export is byte-identical whatever the domain pool size.
A sequential run and a four-domain run of the same sweep cannot differ
by a byte, and the report totals printed on stdout match too:

  $ LO_JOBS=1 ../../bin/lo.exe scale -n 64 --shards 4 --duration 2 --drain 8 --seed 1 -o scale_j1.jsonl | grep total:
  total: 64 nodes, 4 shards, 19846 events, 152 txs (152 delivered), 0 adversary detections
  $ LO_JOBS=4 ../../bin/lo.exe scale -n 64 --shards 4 --duration 2 --drain 8 --seed 1 -o scale_j4.jsonl | grep total:
  total: 64 nodes, 4 shards, 19846 events, 152 txs (152 delivered), 0 adversary detections
  $ cmp scale_j1.jsonl scale_j4.jsonl && echo identical
  identical

The scale path reuses the trace pipeline end to end, so its event
stream is pinned the same way the scenario traces are — against a
digest rather than a committed fixture (the merge is ~1.5 MB):

  $ sha256sum < scale_j1.jsonl
  27531f372cba5e26e98a1870de83e9e60eac3694558d65383d3693bc793c74a6  -
