(* Tests for lo_net: PRNG, event queue, latency model, the discrete
   event network engine, topologies, the mux, and the peer sampler. *)

open Lo_net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Rng ---------------- *)

let rng_tests =
  [
    Alcotest.test_case "deterministic in seed" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 1 in
        for _ = 1 to 100 do
          check_int "same" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref true in
        for _ = 1 to 20 do
          if Rng.int a 1000000 <> Rng.int b 1000000 then same := false
        done;
        check_bool "diverge" false !same);
    Alcotest.test_case "split independence" `Quick (fun () ->
        let parent = Rng.create 5 in
        let child = Rng.split parent in
        let v1 = Rng.int child 1000000 in
        (* advancing parent must not affect child's already-drawn value;
           recreate and check determinism of the split itself *)
        let parent2 = Rng.create 5 in
        let child2 = Rng.split parent2 in
        check_int "same" v1 (Rng.int child2 1000000));
    Alcotest.test_case "int bounds" `Quick (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 7 in
          check_bool "range" true (v >= 0 && v < 7)
        done);
    Alcotest.test_case "int roughly uniform" `Quick (fun () ->
        let r = Rng.create 4 in
        let counts = Array.make 5 0 in
        for _ = 1 to 5000 do
          let v = Rng.int r 5 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter (fun c -> check_bool "20%" true (c > 800 && c < 1200)) counts);
    Alcotest.test_case "float in range" `Quick (fun () ->
        let r = Rng.create 6 in
        for _ = 1 to 1000 do
          let v = Rng.float r 2.5 in
          check_bool "range" true (v >= 0. && v < 2.5)
        done);
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let r = Rng.create 7 in
        let a = Array.init 100 Fun.id in
        Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check_bool "permutation" true (sorted = Array.init 100 Fun.id));
    Alcotest.test_case "sample without replacement distinct" `Quick (fun () ->
        let r = Rng.create 8 in
        let xs = List.init 20 Fun.id in
        let s = Rng.sample_without_replacement r 10 xs in
        check_int "size" 10 (List.length s);
        check_int "distinct" 10 (List.length (List.sort_uniq compare s)));
    Alcotest.test_case "sample larger than list" `Quick (fun () ->
        let r = Rng.create 9 in
        let s = Rng.sample_without_replacement r 10 [ 1; 2; 3 ] in
        check_int "all" 3 (List.length s));
    Alcotest.test_case "exponential positive, near mean" `Quick (fun () ->
        let r = Rng.create 10 in
        let sum = ref 0. in
        for _ = 1 to 10000 do
          let v = Rng.exponential r ~mean:2.0 in
          check_bool "positive" true (v >= 0.);
          sum := !sum +. v
        done;
        let mean = !sum /. 10000. in
        check_bool "near 2.0" true (mean > 1.8 && mean < 2.2));
    Alcotest.test_case "gaussian near mu" `Quick (fun () ->
        let r = Rng.create 11 in
        let sum = ref 0. in
        for _ = 1 to 10000 do
          sum := !sum +. Rng.gaussian r ~mu:5.0 ~sigma:1.0
        done;
        let mean = !sum /. 10000. in
        check_bool "near 5" true (mean > 4.9 && mean < 5.1));
    qtest "pick stays in array" QCheck2.Gen.(int_range 1 50) (fun n ->
        let r = Rng.create n in
        let a = Array.init n Fun.id in
        let v = Rng.pick r a in
        v >= 0 && v < n);
  ]

(* ---------------- Event queue ---------------- *)

let event_queue_tests =
  [
    Alcotest.test_case "orders by time" `Quick (fun () ->
        let q = Event_queue.create () in
        Event_queue.add q ~time:3.0 "c";
        Event_queue.add q ~time:1.0 "a";
        Event_queue.add q ~time:2.0 "b";
        check_bool "a" true (Event_queue.pop q = Some (1.0, "a"));
        check_bool "b" true (Event_queue.pop q = Some (2.0, "b"));
        check_bool "c" true (Event_queue.pop q = Some (3.0, "c"));
        check_bool "empty" true (Event_queue.pop q = None));
    Alcotest.test_case "FIFO on equal times" `Quick (fun () ->
        let q = Event_queue.create () in
        for i = 0 to 9 do
          Event_queue.add q ~time:1.0 i
        done;
        for i = 0 to 9 do
          check_bool "order" true (Event_queue.pop q = Some (1.0, i))
        done);
    Alcotest.test_case "peek does not pop" `Quick (fun () ->
        let q = Event_queue.create () in
        Event_queue.add q ~time:5.0 ();
        check_bool "peek" true (Event_queue.peek_time q = Some 5.0);
        check_int "size" 1 (Event_queue.size q));
    Alcotest.test_case "clear" `Quick (fun () ->
        let q = Event_queue.create () in
        Event_queue.add q ~time:1.0 ();
        Event_queue.clear q;
        check_bool "empty" true (Event_queue.is_empty q));
    qtest "pops in sorted order" ~count:100
      QCheck2.Gen.(list_size (int_bound 100) (float_bound_inclusive 1000.))
      (fun times ->
        let q = Event_queue.create () in
        List.iter (fun t -> Event_queue.add q ~time:t ()) times;
        let rec drain acc =
          match Event_queue.pop q with
          | Some (t, ()) -> drain (t :: acc)
          | None -> List.rev acc
        in
        let out = drain [] in
        out = List.sort compare times);
    (* Stability: equal timestamps pop in insertion order. The fault
       plan relies on this for deterministic replay — a heal scheduled
       at the same instant as a new fault must observe insertion
       order. Times are drawn from a tiny set to force collisions. *)
    qtest "stable on equal timestamps" ~count:200
      QCheck2.Gen.(list_size (int_bound 200) (int_bound 4))
      (fun time_codes ->
        let q = Event_queue.create () in
        List.iteri
          (fun i code -> Event_queue.add q ~time:(float_of_int code) (i, code))
          time_codes;
        let rec drain acc =
          match Event_queue.pop q with
          | Some (t, payload) -> drain ((t, payload) :: acc)
          | None -> List.rev acc
        in
        let out = drain [] in
        (* Sorted by time, and insertion index increases within runs of
           equal time. *)
        let rec ok = function
          | (t1, (i1, _)) :: ((t2, (i2, _)) :: _ as rest) ->
              (t1 < t2 || (t1 = t2 && i1 < i2)) && ok rest
          | _ -> true
        in
        List.length out = List.length time_codes && ok out);
    (* The calendar backend must realize the exact same total order as
       the binary heap — the scale sweeps lean on that for trace-byte
       identity. Interleave adds and pops over a clumpy time
       distribution (many exact collisions) and compare transcripts. *)
    qtest "calendar backend matches heap" ~count:200
      QCheck2.Gen.(
        list_size (int_bound 300)
          (pair (int_bound 4) (int_bound 9 >|= float_of_int)))
      (fun ops ->
        let heap = Event_queue.create ~calendar_threshold:max_int () in
        let cal = Event_queue.create ~calendar_threshold:0 () in
        let transcript q =
          List.concat_map
            (fun (op, time) ->
              if op = 0 then (
                match Event_queue.pop q with
                | Some (t, i) -> [ (t, i) ]
                | None -> [])
              else begin
                Event_queue.add q ~time (Event_queue.size q);
                []
              end)
            ops
          @
          let rec drain acc =
            match Event_queue.pop q with
            | Some (t, i) -> drain ((t, i) :: acc)
            | None -> List.rev acc
          in
          drain []
        in
        Event_queue.backend heap = `Heap
        && Event_queue.backend cal = `Calendar
        && transcript heap = transcript cal);
    Alcotest.test_case "auto-promotes above threshold" `Quick (fun () ->
        let q = Event_queue.create ~calendar_threshold:8 () in
        for i = 0 to 7 do
          Event_queue.add q ~time:(float_of_int (i mod 3)) i
        done;
        (* An add promotes only once it finds the heap at threshold. *)
        check_bool "still heap" true (Event_queue.backend q = `Heap);
        Event_queue.add q ~time:0.5 8;
        check_bool "promoted" true (Event_queue.backend q = `Calendar);
        (* Promotion preserves the (time, insertion seq) order. *)
        let rec drain acc =
          match Event_queue.pop q with
          | Some (t, i) -> drain ((t, i) :: acc)
          | None -> List.rev acc
        in
        let expect =
          List.sort compare
            (List.init 9 (fun i ->
                 ((if i = 8 then 0.5 else float_of_int (i mod 3)), i)))
        in
        check_bool "order" true (drain [] = expect);
        Event_queue.clear q;
        check_bool "clear resets backend" true (Event_queue.backend q = `Heap));
  ]

(* ---------------- Latency ---------------- *)

let latency_tests =
  [
    Alcotest.test_case "32 cities" `Quick (fun () ->
        check_int "cities" 32 (Latency.num_cities Latency.default));
    Alcotest.test_case "symmetric" `Quick (fun () ->
        let l = Latency.default in
        for a = 0 to 31 do
          for b = 0 to 31 do
            check_float "sym" (Latency.one_way l a b) (Latency.one_way l b a)
          done
        done);
    Alcotest.test_case "positive and bounded" `Quick (fun () ->
        let l = Latency.default in
        for a = 0 to 31 do
          for b = 0 to 31 do
            let v = Latency.one_way l a b in
            check_bool "pos" true (v > 0.);
            check_bool "below 300ms" true (v < 0.3)
          done
        done);
    Alcotest.test_case "same city is fast" `Quick (fun () ->
        let l = Latency.default in
        check_bool "fast" true (Latency.one_way l 0 0 < 0.01));
    Alcotest.test_case "round robin assignment" `Quick (fun () ->
        let l = Latency.default in
        check_int "node 0" 0 (Latency.city_of_node l 0);
        check_int "node 32" 0 (Latency.city_of_node l 32);
        check_int "node 33" 1 (Latency.city_of_node l 33));
    Alcotest.test_case "uniform model" `Quick (fun () ->
        let l = Latency.uniform ~one_way:0.05 in
        check_float "flat" 0.05 (Latency.one_way l 0 0));
  ]

(* ---------------- Network engine ---------------- *)

let network_tests =
  [
    Alcotest.test_case "message delivery with latency" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 ~jitter:0. () in
        let got = ref None in
        Network.set_handler net 1 (fun net ~from ~tag  _payload ->
            ignore tag;
            got := Some (from, Network.now net));
        Network.send net ~src:0 ~dst:1 ~tag:"t" "hello";
        Network.run_until net 1.0;
        match !got with
        | Some (from, at) ->
            check_int "from" 0 from;
            check_bool "delayed" true (at > 0.)
        | None -> Alcotest.fail "not delivered");
    Alcotest.test_case "self-send immediate" `Quick (fun () ->
        let net = Network.create ~num_nodes:1 ~seed:1 () in
        let at = ref (-1.) in
        Network.set_handler net 0 (fun net ~from:_ ~tag:_  _payload ->
            at := Network.now net);
        Network.send net ~src:0 ~dst:0 ~tag:"t" "x";
        Network.run_until net 1.0;
        check_float "zero" 0.0 !at);
    Alcotest.test_case "byte accounting" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        Network.set_handler net 1 (fun _ ~from:_ ~tag:_  _payload -> ());
        Network.send net ~src:0 ~dst:1 ~tag:"a" "12345";
        Network.send net ~src:0 ~dst:1 ~tag:"b" "123";
        Network.run_until net 1.0;
        check_int "sent" 8 (Network.bytes_sent_by net 0);
        check_int "received" 8 (Network.bytes_received_by net 1);
        check_int "messages" 2 (Network.messages_sent net);
        check_bool "tags" true
          (Network.bytes_by_tag net = [ ("a", 5); ("b", 3) ]));
    Alcotest.test_case "send_many = iterated send" `Quick (fun () ->
        (* The broadcast path encodes once and fans out; deliveries,
           timing and byte accounting must be indistinguishable from
           sending to each recipient in turn. *)
        let deliveries net =
          let log = ref [] in
          for dst = 1 to 3 do
            Network.set_handler net dst (fun net ~from ~tag payload ->
                log := (dst, from, tag, payload, Network.now net) :: !log)
          done;
          log
        in
        let a = Network.create ~num_nodes:4 ~seed:42 () in
        let log_a = deliveries a in
        Network.send_many a ~src:0 ~dsts:[ 1; 2; 3 ] ~tag:"t" "payload";
        Network.run_until a 5.0;
        let b = Network.create ~num_nodes:4 ~seed:42 () in
        let log_b = deliveries b in
        List.iter
          (fun dst -> Network.send b ~src:0 ~dst ~tag:"t" "payload")
          [ 1; 2; 3 ];
        Network.run_until b 5.0;
        check_int "delivered" 3 (List.length !log_a);
        check_bool "identical deliveries" true (!log_a = !log_b);
        check_int "bytes" (Network.bytes_sent_by b 0) (Network.bytes_sent_by a 0);
        check_int "messages" (Network.messages_sent b) (Network.messages_sent a));
    Alcotest.test_case "down node loses messages" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        let got = ref 0 in
        Network.set_handler net 1 (fun _ ~from:_ ~tag:_  _payload -> incr got);
        Network.set_down net 1 true;
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.run_until net 1.0;
        check_int "none" 0 !got;
        Network.set_down net 1 false;
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.run_until net 2.0;
        check_int "one" 1 !got);
    Alcotest.test_case "delivery filter drops" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        let got = ref 0 in
        Network.set_handler net 1 (fun _ ~from:_ ~tag:_  _payload -> incr got);
        Network.set_delivery_filter net
          (Some (fun ~src:_ ~dst:_ ~tag -> tag <> "blocked"));
        Network.send net ~src:0 ~dst:1 ~tag:"blocked" "x";
        Network.send net ~src:0 ~dst:1 ~tag:"ok" "x";
        Network.run_until net 1.0;
        check_int "one" 1 !got);
    Alcotest.test_case "timers fire in order" `Quick (fun () ->
        let net = Network.create ~num_nodes:1 ~seed:1 () in
        let log = ref [] in
        Network.schedule net ~delay:2.0 (fun _ -> log := 2 :: !log);
        Network.schedule net ~delay:1.0 (fun _ -> log := 1 :: !log);
        Network.run_until net 3.0;
        check_bool "order" true (List.rev !log = [ 1; 2 ]));
    Alcotest.test_case "run_until stops at horizon" `Quick (fun () ->
        let net = Network.create ~num_nodes:1 ~seed:1 () in
        let fired = ref false in
        Network.schedule net ~delay:5.0 (fun _ -> fired := true);
        Network.run_until net 2.0;
        check_bool "not yet" false !fired;
        check_float "clock" 2.0 (Network.now net);
        Network.run_until net 6.0;
        check_bool "fired" true !fired);
    Alcotest.test_case "deterministic across runs" `Quick (fun () ->
        let run () =
          let net = Network.create ~num_nodes:3 ~seed:77 () in
          let log = ref [] in
          for i = 0 to 2 do
            Network.set_handler net i (fun net ~from ~tag:_  _payload ->
                log := (i, from, Network.now net) :: !log)
          done;
          Network.send net ~src:0 ~dst:1 ~tag:"x" "a";
          Network.send net ~src:1 ~dst:2 ~tag:"x" "b";
          Network.send net ~src:2 ~dst:0 ~tag:"x" "c";
          Network.run_until net 2.0;
          !log
        in
        check_bool "same" true (run () = run ()));
    Alcotest.test_case "reset accounting" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        Network.send net ~src:0 ~dst:1 ~tag:"t" "xyz";
        Network.run_until net 1.0;
        Network.reset_accounting net;
        check_int "zero" 0 (Network.total_bytes net));
  ]

(* ---------------- Fault injection ---------------- *)

let fault_tests =
  [
    Alcotest.test_case "extreme jitter never delivers at or before send"
      `Quick (fun () ->
        (* jitter 5.0 makes the raw perturbation base * [-5, 5): without
           the epsilon clamp most deliveries would be scheduled in the
           past. Nothing may be lost and every arrival must be strictly
           after the send instant. *)
        let net = Network.create ~num_nodes:2 ~seed:9 ~jitter:5.0 () in
        let arrivals = ref [] in
        Network.set_handler net 1 (fun net ~from:_ ~tag:_ _payload ->
            arrivals := Network.now net :: !arrivals);
        Network.run_until net 1.0;
        let sent_at = Network.now net in
        for _ = 1 to 200 do
          Network.send net ~src:0 ~dst:1 ~tag:"t" "x"
        done;
        Network.run_until net 10.0;
        check_int "all delivered" 200 (List.length !arrivals);
        List.iter
          (fun at -> check_bool "strictly after send" true (at > sent_at))
          !arrivals);
    Alcotest.test_case "down source cannot send" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        let got = ref 0 in
        Network.set_handler net 1 (fun _ ~from:_ ~tag:_ _payload -> incr got);
        Network.crash net 0;
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.run_until net 1.0;
        check_int "nothing" 0 !got;
        check_int "not even counted" 0 (Network.messages_sent net));
    Alcotest.test_case "partition splits and heals" `Quick (fun () ->
        let net = Network.create ~num_nodes:4 ~seed:2 () in
        let got = Array.make 4 0 in
        for i = 0 to 3 do
          Network.set_handler net i (fun _ ~from:_ ~tag:_ _payload ->
              got.(i) <- got.(i) + 1)
        done;
        Network.set_partition net (Some [| 0; 0; 1; 1 |]);
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x" (* same side *);
        Network.send net ~src:0 ~dst:2 ~tag:"t" "x" (* across the cut *);
        Network.run_until net 1.0;
        check_int "same side arrives" 1 got.(1);
        check_int "cut drops" 0 got.(2);
        Network.set_partition net None;
        Network.send net ~src:0 ~dst:2 ~tag:"t" "x";
        Network.run_until net 2.0;
        check_int "healed" 1 got.(2));
    Alcotest.test_case "link fault is asymmetric" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:3 () in
        let got = Array.make 2 0 in
        for i = 0 to 1 do
          Network.set_handler net i (fun _ ~from:_ ~tag:_ _payload ->
              got.(i) <- got.(i) + 1)
        done;
        Network.set_link_fault net ~src:0 ~dst:1 ~loss:1.0 ();
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.send net ~src:1 ~dst:0 ~tag:"t" "x";
        Network.run_until net 1.0;
        check_int "degraded direction drops" 0 got.(1);
        check_int "reverse direction clean" 1 got.(0);
        Network.clear_link_fault net ~src:0 ~dst:1;
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.run_until net 2.0;
        check_int "cleared" 1 got.(1));
    Alcotest.test_case "link extra delay is additive" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:4 ~jitter:0. () in
        let at = ref 0. in
        Network.set_handler net 1 (fun net ~from:_ ~tag:_ _payload ->
            at := Network.now net);
        Network.set_link_fault net ~src:0 ~dst:1 ~extra_delay:0.5 ();
        Network.send net ~src:0 ~dst:1 ~tag:"t" "x";
        Network.run_until net 2.0;
        check_bool "delayed past the overlay" true (!at >= 0.5));
    Alcotest.test_case "restart fires the handler exactly when down"
      `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:5 () in
        let recovered = ref 0 in
        Network.set_restart_handler net 0 (fun _ -> incr recovered);
        Network.restart net 0 (* up: no-op *);
        check_int "no spurious recovery" 0 !recovered;
        Network.crash net 0;
        check_bool "down" true (Network.is_down net 0);
        Network.restart net 0;
        check_bool "up" false (Network.is_down net 0);
        check_int "recovery ran once" 1 !recovered);
    Alcotest.test_case "fault plan fires every kind deterministically"
      `Quick (fun () ->
        let run () =
          let net = Network.create ~num_nodes:8 ~seed:21 () in
          let deliveries = ref [] in
          for i = 0 to 7 do
            Network.set_handler net i (fun net ~from ~tag:_ _payload ->
                deliveries := (from, i, Network.now net) :: !deliveries)
          done;
          (* Chatter between all pairs every 100 ms. *)
          let rec chatter at =
            if at < 10. then begin
              Network.schedule_at net ~at (fun net ->
                  for s = 0 to 7 do
                    for d = 0 to 7 do
                      if s <> d then Network.send net ~src:s ~dst:d ~tag:"t" "x"
                    done
                  done);
              chatter (at +. 0.1)
            end
          in
          chatter 0.;
          let rng = Rng.create 99 in
          let plan =
            Fault_plan.merge
              [
                Fault_plan.churn ~rng ~n:8 ~rate:0.5 ~mean_down:1.0 ~until:8.;
                Fault_plan.partitions ~rng ~n:8 ~period:2. ~duration:1.
                  ~until:8.;
                Fault_plan.loss_bursts ~rng ~rate:0.4 ~period:3. ~duration:1.
                  ~until:8.;
                Fault_plan.latency_spikes ~rng ~n:8 ~k:2 ~extra:0.2 ~period:3.
                  ~duration:1. ~until:8.;
                Fault_plan.link_degrades ~rng ~n:8 ~loss:0.8 ~extra_delay:0.1
                  ~period:3. ~duration:1. ~until:8.;
              ]
          in
          let stats = Fault_plan.install net plan in
          Network.run_until net 12.0;
          (stats, !deliveries)
        in
        let stats, deliveries = run () in
        check_bool "churn fired" true (stats.Fault_plan.crashes > 0);
        check_int "every crash recovered" stats.Fault_plan.crashes
          stats.Fault_plan.restarts;
        check_bool "partition fired" true (stats.Fault_plan.partitions > 0);
        check_bool "burst fired" true (stats.Fault_plan.loss_bursts > 0);
        check_bool "spike fired" true (stats.Fault_plan.latency_spikes > 0);
        check_bool "link fault fired" true (stats.Fault_plan.link_degrades > 0);
        check_int "5 kinds" 5 (Fault_plan.kinds_injected stats);
        (* Same seed + same plan => byte-identical trace. *)
        let _, deliveries2 = run () in
        check_bool "deterministic" true (deliveries = deliveries2));
    Alcotest.test_case "loss burst window raises then restores the rate"
      `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:6 ~loss_rate:0.05 () in
        let plan =
          [
            {
              Fault_plan.at = 1.0;
              fault = Fault_plan.Loss_burst { rate = 0.6; duration = 2.0 };
            };
          ]
        in
        ignore (Fault_plan.install net plan);
        Network.run_until net 0.5;
        check_float "base before" 0.05 (Network.loss_rate net);
        Network.run_until net 1.5;
        check_float "elevated during" 0.6 (Network.loss_rate net);
        Network.run_until net 4.0;
        check_float "restored after" 0.05 (Network.loss_rate net));
  ]

(* ---------------- Topology ---------------- *)

let topology_tests =
  [
    Alcotest.test_case "connected" `Quick (fun () ->
        let t = Topology.build (Rng.create 1) ~n:200 ~out_degree:8 ~max_in:125 in
        check_bool "connected" true
          (Topology.is_connected_subgraph t ~keep:(fun _ -> true)));
    Alcotest.test_case "degrees reasonable" `Quick (fun () ->
        let t = Topology.build (Rng.create 2) ~n:100 ~out_degree:8 ~max_in:125 in
        check_bool "avg >= 8" true (Topology.average_degree t >= 8.);
        for i = 0 to 99 do
          check_bool "min 2" true (Topology.degree t i >= 2)
        done);
    Alcotest.test_case "edges are symmetric" `Quick (fun () ->
        let t = Topology.build (Rng.create 3) ~n:50 ~out_degree:4 ~max_in:125 in
        for i = 0 to 49 do
          List.iter
            (fun j -> check_bool "sym" true (List.mem i (Topology.neighbors t j)))
            (Topology.neighbors t i)
        done);
    Alcotest.test_case "no self loops or duplicates" `Quick (fun () ->
        let t = Topology.build (Rng.create 4) ~n:60 ~out_degree:6 ~max_in:125 in
        for i = 0 to 59 do
          let ns = Topology.neighbors t i in
          check_bool "no self" false (List.mem i ns);
          check_int "no dup" (List.length ns) (List.length (List.sort_uniq compare ns))
        done);
    Alcotest.test_case "correct core stays connected" `Quick (fun () ->
        let malicious = Array.init 100 (fun i -> i mod 4 = 0) in
        let t =
          Topology.build_with_correct_core (Rng.create 5) ~malicious
            ~out_degree:8 ~max_in:125
        in
        check_bool "core connected" true
          (Topology.is_connected_subgraph t ~keep:(fun i -> not malicious.(i))));
    Alcotest.test_case "malicious nodes get edges too" `Quick (fun () ->
        let malicious = Array.init 50 (fun i -> i < 10) in
        let t =
          Topology.build_with_correct_core (Rng.create 6) ~malicious
            ~out_degree:8 ~max_in:125
        in
        for i = 0 to 9 do
          check_bool "has neighbors" true (Topology.degree t i > 0)
        done);
    Alcotest.test_case "malicious reach correct nodes" `Quick (fun () ->
        let malicious = Array.init 50 (fun i -> i < 10) in
        let t =
          Topology.build_with_correct_core (Rng.create 7) ~malicious
            ~out_degree:8 ~max_in:125
        in
        let reaches_correct = ref 0 in
        for i = 0 to 9 do
          if List.exists (fun j -> not malicious.(j)) (Topology.neighbors t i)
          then incr reaches_correct
        done;
        check_bool "most reach" true (!reaches_correct >= 8));
    Alcotest.test_case "inbound cap respected" `Quick (fun () ->
        let t = Topology.build (Rng.create 8) ~n:40 ~out_degree:8 ~max_in:10 in
        for i = 0 to 39 do
          (* degree = in + out; out <= 8+2(ring), in <= 10+2 *)
          check_bool "cap-ish" true (Topology.degree t i <= 22)
        done);
  ]

(* ---------------- Mux ---------------- *)

let mux_tests =
  [
    Alcotest.test_case "routes by proto prefix" `Quick (fun () ->
        let net = Network.create ~num_nodes:2 ~seed:1 () in
        let mux = Mux.create net in
        let got_a = ref 0 and got_b = ref 0 in
        Mux.register mux 1 ~proto:"a" (fun _ ~from:_ ~tag:_  _payload -> incr got_a);
        Mux.register mux 1 ~proto:"b" (fun _ ~from:_ ~tag:_  _payload -> incr got_b);
        Network.send net ~src:0 ~dst:1 ~tag:"a:x" "1";
        Network.send net ~src:0 ~dst:1 ~tag:"b:y" "2";
        Network.send net ~src:0 ~dst:1 ~tag:"c:z" "3";
        Network.run_until net 1.0;
        check_int "a" 1 !got_a;
        check_int "b" 1 !got_b);
    Alcotest.test_case "proto_of_tag" `Quick (fun () ->
        Alcotest.(check string) "split" "lo" (Mux.proto_of_tag "lo:commit");
        Alcotest.(check string) "no colon" "plain" (Mux.proto_of_tag "plain"));
  ]

(* ---------------- Peer sampler ---------------- *)

let sampler_tests =
  [
    Alcotest.test_case "uniform_sample distinct and excludes" `Quick (fun () ->
        let rng = Rng.create 1 in
        let s = Peer_sampler.uniform_sample rng ~n:50 ~k:10 ~exclude:(fun i -> i < 25) in
        check_int "size" 10 (List.length s);
        check_int "distinct" 10 (List.length (List.sort_uniq compare s));
        List.iter (fun i -> check_bool "excluded" true (i >= 25)) s);
    Alcotest.test_case "gossip sampler observes most of the network" `Slow (fun () ->
        let n = 60 in
        let net = Network.create ~num_nodes:n ~seed:33 () in
        let mux = Mux.create net in
        let rng = Rng.create 2 in
        let topo = Topology.build rng ~n ~out_degree:4 ~max_in:125 in
        let sampler =
          Peer_sampler.create mux net ~bootstrap:(fun i -> Topology.neighbors topo i)
        in
        Peer_sampler.start sampler;
        Network.run_until net 30.0;
        (* After 30 rounds each node should have observed most peers. *)
        let total = ref 0 in
        for i = 0 to n - 1 do
          total := !total + Peer_sampler.observed sampler i
        done;
        let avg = float_of_int !total /. float_of_int n in
        check_bool "observed most" true (avg > float_of_int n *. 0.6));
    Alcotest.test_case "samples roughly uniform over nodes" `Slow (fun () ->
        let n = 40 in
        let net = Network.create ~num_nodes:n ~seed:34 () in
        let mux = Mux.create net in
        let rng = Rng.create 3 in
        let topo = Topology.build rng ~n ~out_degree:4 ~max_in:125 in
        let sampler =
          Peer_sampler.create mux net ~bootstrap:(fun i -> Topology.neighbors topo i)
        in
        Peer_sampler.start sampler;
        Network.run_until net 40.0;
        (* count how often each node appears in others' samples *)
        let counts = Array.make n 0 in
        for i = 0 to n - 1 do
          List.iter (fun s -> counts.(s) <- counts.(s) + 1) (Peer_sampler.samples sampler i)
        done;
        let nonzero = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts in
        check_bool "most nodes sampled somewhere" true (nonzero > n / 2));
    Alcotest.test_case "push cap bounds flooding influence" `Slow (fun () ->
        (* a flooding attacker pushes its id constantly; with the push
           cap its representation stays bounded *)
        let n = 30 in
        let net = Network.create ~num_nodes:n ~seed:35 () in
        let mux = Mux.create net in
        let rng = Rng.create 4 in
        let topo = Topology.build rng ~n ~out_degree:4 ~max_in:125 in
        let sampler =
          Peer_sampler.create mux net ~bootstrap:(fun i -> Topology.neighbors topo i)
        in
        Peer_sampler.start sampler;
        (* attacker node 0 spams pushes every 50ms to everyone *)
        let rec spam t =
          for dst = 1 to n - 1 do
            Network.send net ~src:0 ~dst ~tag:"sampler:push" ""
          done;
          if t < 30.0 then Network.schedule net ~delay:0.05 (fun _ -> spam (t +. 0.05))
        in
        Network.schedule net ~delay:0.1 (fun _ -> spam 0.1);
        Network.run_until net 30.0;
        (* attacker must not dominate views *)
        let attacker_share = ref 0 and total = ref 0 in
        for i = 1 to n - 1 do
          List.iter
            (fun v ->
              incr total;
              if v = 0 then incr attacker_share)
            (Peer_sampler.current_view sampler i)
        done;
        check_bool "bounded" true
          (float_of_int !attacker_share /. float_of_int (max 1 !total) < 0.5));
  ]

let () =
  Alcotest.run "lo_net"
    [
      ("rng", rng_tests);
      ("event-queue", event_queue_tests);
      ("latency", latency_tests);
      ("network", network_tests);
      ("faults", fault_tests);
      ("topology", topology_tests);
      ("mux", mux_tests);
      ("peer-sampler", sampler_tests);
    ]
