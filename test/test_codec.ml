(* Tests for lo_codec: scalar roundtrips, framing, malformed-input
   rejection, and property tests over random values. *)

module W = Lo_codec.Writer
module R = Lo_codec.Reader

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let encode f =
  let w = W.create () in
  f w;
  W.contents w

let scalar_tests =
  [
    Alcotest.test_case "u8 roundtrip" `Quick (fun () ->
        List.iter
          (fun v ->
            let r = R.of_string (encode (fun w -> W.u8 w v)) in
            check_int "u8" v (R.u8 r))
          [ 0; 1; 127; 128; 255 ]);
    Alcotest.test_case "u8 range checked" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Writer.u8: out of range")
          (fun () -> ignore (encode (fun w -> W.u8 w (-1))));
        Alcotest.check_raises "big" (Invalid_argument "Writer.u8: out of range")
          (fun () -> ignore (encode (fun w -> W.u8 w 256))));
    Alcotest.test_case "u16 big-endian" `Quick (fun () ->
        check_str "bytes" "\x12\x34" (encode (fun w -> W.u16 w 0x1234)));
    Alcotest.test_case "u32 big-endian" `Quick (fun () ->
        check_str "bytes" "\xde\xad\xbe\xef"
          (encode (fun w -> W.u32 w 0xDEADBEEF)));
    Alcotest.test_case "u64 roundtrip" `Quick (fun () ->
        List.iter
          (fun v ->
            let r = R.of_string (encode (fun w -> W.u64 w v)) in
            check_int "u64" v (R.u64 r))
          [ 0; 1; 1 lsl 40; max_int ]);
    Alcotest.test_case "varint sizes" `Quick (fun () ->
        check_int "1 byte" 1 (String.length (encode (fun w -> W.varint w 127)));
        check_int "2 bytes" 2 (String.length (encode (fun w -> W.varint w 128)));
        check_int "2 bytes" 2 (String.length (encode (fun w -> W.varint w 16383)));
        check_int "3 bytes" 3 (String.length (encode (fun w -> W.varint w 16384))));
    qtest "varint roundtrip" QCheck2.Gen.(int_bound max_int) (fun v ->
        let r = R.of_string (encode (fun w -> W.varint w v)) in
        R.varint r = v && R.at_end r);
    qtest "u32 roundtrip" QCheck2.Gen.(int_bound 0xFFFFFFFF) (fun v ->
        let r = R.of_string (encode (fun w -> W.u32 w v)) in
        R.u32 r = v);
    Alcotest.test_case "bool roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.bool w true; W.bool w false)) in
        check_bool "t" true (R.bool r);
        check_bool "f" false (R.bool r));
    Alcotest.test_case "bool rejects 2" `Quick (fun () ->
        let r = R.of_string "\x02" in
        Alcotest.check_raises "malformed" (R.Malformed "bool") (fun () ->
            ignore (R.bool r)));
  ]

let composite_tests =
  [
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.bytes w "hello")) in
        check_str "payload" "hello" (R.bytes r));
    Alcotest.test_case "fixed roundtrip" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.fixed w "abcd")) in
        check_str "payload" "abcd" (R.fixed r 4));
    Alcotest.test_case "list roundtrip" `Quick (fun () ->
        let xs = [ 3; 1; 4; 1; 5 ] in
        let r = R.of_string (encode (fun w -> W.list w (W.varint w) xs)) in
        check_bool "equal" true (R.list r R.varint = xs));
    Alcotest.test_case "empty list" `Quick (fun () ->
        let r = R.of_string (encode (fun w -> W.list w (W.varint w) [])) in
        check_bool "empty" true (R.list r R.varint = []));
    Alcotest.test_case "expect_end catches trailing bytes" `Quick (fun () ->
        let r = R.of_string "\x00\x01" in
        ignore (R.u8 r);
        Alcotest.check_raises "trailing" (R.Malformed "trailing bytes")
          (fun () -> R.expect_end r));
    Alcotest.test_case "truncated input raises" `Quick (fun () ->
        let r = R.of_string "\x01" in
        Alcotest.check_raises "short" (R.Malformed "truncated u32") (fun () ->
            ignore (R.u32 r)));
    Alcotest.test_case "bogus list count rejected" `Quick (fun () ->
        (* claims 100 elements but has almost no payload *)
        let r = R.of_string "\x64\x01" in
        Alcotest.check_raises "count" (R.Malformed "list count exceeds input")
          (fun () -> ignore (R.list r R.varint)));
    Alcotest.test_case "varint too long rejected" `Quick (fun () ->
        let r = R.of_string (String.make 10 '\xff') in
        Alcotest.check_raises "long" (R.Malformed "varint too long") (fun () ->
            ignore (R.varint r)));
    qtest "mixed sequence roundtrip"
      QCheck2.Gen.(
        quad (int_bound 255) (int_bound max_int) (small_string ~gen:char)
          (list_size (int_bound 10) (int_bound 0xFFFF)))
      (fun (a, b, s, xs) ->
        let payload =
          encode (fun w ->
              W.u8 w a;
              W.varint w b;
              W.bytes w s;
              W.list w (W.u16 w) xs)
        in
        let r = R.of_string payload in
        R.u8 r = a && R.varint r = b && R.bytes r = s
        && R.list r R.u16 = xs
        && R.at_end r);
  ]

(* --- Lo_core.Messages: every wire constructor round-trips ---

   decode recomputes derived fields (tx ids, digest hashes) instead of
   trusting the bytes, so the robust equality is on re-encoding:
   encode (decode (encode m)) = encode m. *)

module M = Lo_core.Messages
module Commitment = Lo_core.Commitment

let scheme = Lo_crypto.Signer.simulation ()
let msg_signer = Lo_crypto.Signer.make scheme ~seed:"codec-messages"
let peer_signer = Lo_crypto.Signer.make scheme ~seed:"codec-messages-peer"

let mk_tx ?(fee = 10) payload =
  Lo_core.Tx.create ~signer:msg_signer ~fee ~created_at:1.25 ~payload

let digest_of ~signer bundles =
  let log = Commitment.Log.create ~signer () in
  List.iter (fun ids -> ignore (Commitment.Log.append log ~source:None ~ids)) bundles;
  Commitment.Log.current_digest log

let mk_block ~height ~bundles ~appendix_payloads ~omissions =
  let bundle_txs = List.map (List.map mk_tx) bundles in
  let appendix_txs = List.map mk_tx appendix_payloads in
  let txids =
    List.map
      (fun (tx : Lo_core.Tx.t) -> tx.id)
      (List.concat bundle_txs @ appendix_txs)
  in
  Lo_core.Block.create ~signer:msg_signer ~height
    ~prev_hash:Lo_core.Block.genesis_hash ~start_seq:0
    ~commit_seq:(List.length bundles) ~fee_threshold:0 ~txids
    ~bundle_sizes:(List.map List.length bundles)
    ~appendix:(List.length appendix_txs)
    ~omissions ~timestamp:2.0

let roundtrips m =
  let bytes = M.encode m in
  M.encode (M.decode bytes) = bytes

let gen_short_ids = QCheck2.Gen.(list_size (int_bound 6) (int_range 1 1_000_000))
let gen_payload = QCheck2.Gen.(small_string ~gen:printable)
let gen_bundles = QCheck2.Gen.(list_size (int_bound 3) gen_short_ids)

let message_tests =
  [
    qtest ~count:50 "submit" gen_payload (fun p -> roundtrips (M.Submit (mk_tx p)));
    qtest ~count:50 "submit-ack" gen_payload (fun p ->
        let tx = mk_tx p in
        roundtrips
          (M.Submit_ack
             { txid = tx.Lo_core.Tx.id; ack_signature = String.make 64 's' }));
    qtest ~count:50 "commit-request"
      QCheck2.Gen.(quad gen_bundles gen_short_ids gen_short_ids gen_short_ids)
      (fun (bundles, delta, want, appended) ->
        roundtrips
          (M.Commit_request
             { digest = digest_of ~signer:msg_signer bundles; delta; want;
               appended }));
    qtest ~count:50 "commit-response"
      QCheck2.Gen.(quad gen_bundles gen_short_ids gen_short_ids gen_short_ids)
      (fun (bundles, want, delta, appended) ->
        roundtrips
          (M.Commit_response
             { digest = digest_of ~signer:peer_signer bundles; want; delta;
               appended }));
    qtest ~count:30 "tx-batch"
      QCheck2.Gen.(list_size (int_bound 5) gen_payload)
      (fun payloads -> roundtrips (M.Tx_batch (List.map mk_tx payloads)));
    qtest ~count:50 "digest-share" gen_bundles (fun bundles ->
        roundtrips (M.Digest_share (digest_of ~signer:msg_signer bundles)));
    qtest ~count:50 "digest-request" QCheck2.Gen.(int_bound 10_000) (fun seq ->
        roundtrips
          (M.Digest_request
             { owner = Lo_crypto.Signer.id peer_signer; seq }));
    qtest ~count:30 "digest-reply"
      QCheck2.Gen.(list_size (int_bound 3) gen_bundles)
      (fun bundle_sets ->
        roundtrips
          (M.Digest_reply
             (List.map (fun b -> digest_of ~signer:msg_signer b) bundle_sets)));
    qtest ~count:50 "suspicion-note"
      QCheck2.Gen.(triple gen_payload bool gen_bundles)
      (fun (reason, with_digest, bundles) ->
        roundtrips
          (M.Suspicion_note
             {
               suspect = Lo_crypto.Signer.id peer_signer;
               reporter = Lo_crypto.Signer.id msg_signer;
               last_digest =
                 (if with_digest then
                    Some (digest_of ~signer:peer_signer bundles)
                  else None);
               reason;
             }));
    qtest ~count:50 "suspicion-withdraw" QCheck2.Gen.bool (fun swap ->
        let a = Lo_crypto.Signer.id msg_signer
        and b = Lo_crypto.Signer.id peer_signer in
        roundtrips
          (M.Suspicion_withdraw
             { suspect = (if swap then a else b);
               reporter = (if swap then b else a) }));
    qtest ~count:20 "exposure-note"
      QCheck2.Gen.(triple bool gen_bundles gen_short_ids)
      (fun (with_tx, bundles, extra) ->
        let older = digest_of ~signer:peer_signer bundles in
        let newer = digest_of ~signer:peer_signer (bundles @ [ 1 :: extra ]) in
        let evidence =
          if with_tx then
            Lo_core.Evidence.Block_bundle_violation
              {
                block =
                  mk_block ~height:3
                    ~bundles:[ [ "a"; "b" ]; [ "c" ] ]
                    ~appendix_payloads:[ "d" ] ~omissions:[];
                older;
                newer;
                omitted_tx = Some (mk_tx "omitted");
              }
          else Lo_core.Evidence.Conflicting_digests { older; newer }
        in
        roundtrips (M.Exposure_note evidence));
    qtest ~count:20 "block-announce"
      QCheck2.Gen.(pair (int_range 1 50) (list_size (int_bound 3) gen_payload))
      (fun (height, appendix_payloads) ->
        roundtrips
          (M.Block_announce
             (mk_block ~height
                ~bundles:[ [ "p1"; "p2" ]; [ "p3" ] ]
                ~appendix_payloads
                ~omissions:
                  [
                    (7, Lo_core.Block.Low_fee);
                    (9, Lo_core.Block.Settled);
                    (11, Lo_core.Block.Missing_content);
                  ])));
  ]

(* ---------------- Reader views ---------------- *)

(* The zero-copy decode path: [of_substring]/[sub_view] narrow a reader
   over a shared buffer; every read must behave exactly as it would
   over a copied substring. *)
let view_tests =
  [
    Alcotest.test_case "of_substring reads the window" `Quick (fun () ->
        let s = "ab\x01\x02cd" in
        let r = R.of_substring s ~pos:2 ~len:2 in
        check_int "first" 1 (R.u8 r);
        check_int "second" 2 (R.u8 r);
        check_bool "at end" true (R.at_end r);
        R.expect_end r);
    Alcotest.test_case "of_substring rejects bad windows" `Quick (fun () ->
        List.iter
          (fun (pos, len) ->
            check_bool "raises" true
              (match R.of_substring "abcd" ~pos ~len with
              | exception Invalid_argument _ -> true
              | _ -> false))
          [ (-1, 2); (0, 5); (3, 2); (5, 0) ]);
    Alcotest.test_case "view bound stops reads" `Quick (fun () ->
        let r = R.of_substring "abcdef" ~pos:1 ~len:2 in
        check_bool "truncated" true
          (match R.fixed r 3 with
          | exception R.Malformed _ -> true
          | _ -> false));
    Alcotest.test_case "sub_view consumes and narrows" `Quick (fun () ->
        let r = R.of_string "\x01XYZ\x02" in
        check_int "head" 1 (R.u8 r);
        let v = R.sub_view r 3 in
        check_int "outer tail" 2 (R.u8 r);
        R.expect_end r;
        check_str "inner" "XYZ" (R.fixed v 3);
        R.expect_end v);
    Alcotest.test_case "sub_view needs enough bytes" `Quick (fun () ->
        let r = R.of_string "ab" in
        check_bool "raises" true
          (match R.sub_view r 3 with
          | exception R.Malformed _ -> true
          | _ -> false));
    Alcotest.test_case "slice recovers decoded spans" `Quick (fun () ->
        let s = encode (fun w -> W.u16 w 0xBEEF) in
        let r = R.of_string s in
        let from = R.pos r in
        ignore (R.u16 r);
        check_str "span" s (R.slice r ~from ~until:(R.pos r)));
    qtest "view reads = copied substring reads"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 8) (int_bound 1_000_000))
          (pair (string_size (int_bound 10)) (string_size (int_bound 10))))
      (fun (vals, (prefix, suffix)) ->
        let body =
          encode (fun w ->
              List.iter (fun v -> W.varint w v) vals;
              W.bytes w "tail")
        in
        let r_copy = R.of_string body in
        let r_view =
          R.of_substring (prefix ^ body ^ suffix)
            ~pos:(String.length prefix)
            ~len:(String.length body)
        in
        let read r =
          let xs = List.map (fun _ -> R.varint r) vals in
          let t = R.bytes r in
          R.expect_end r;
          (xs, t)
        in
        read r_copy = read r_view);
    qtest "clone is an independent cursor"
      QCheck2.Gen.(list_size (int_range 1 6) (int_bound 9999))
      (fun vals ->
        let body = encode (fun w -> List.iter (fun v -> W.varint w v) vals) in
        let r = R.of_string body in
        let c = R.clone r in
        let a = List.map (fun _ -> R.varint r) vals in
        let b = List.map (fun _ -> R.varint c) vals in
        a = b && R.at_end r && R.at_end c);
  ]

let () =
  Alcotest.run "lo_codec"
    [
      ("scalars", scalar_tests);
      ("composites", composite_tests);
      ("messages", message_tests);
      ("views", view_tests);
    ]
