(* Unit tests for lo_core data types: transactions, short ids,
   commitments and their consistency checks, canonical ordering, the
   mempool store, blocks, build policies, the inspector, evidence
   verification, accountability bookkeeping, and message codecs. *)

open Lo_core
module Signer = Lo_crypto.Signer

let scheme = Signer.simulation ()
let alice = Signer.make scheme ~seed:"alice"
let bob = Signer.make scheme ~seed:"bob"
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let mk_tx ?(signer = alice) ?(fee = 10) ?(created_at = 1.5) payload =
  Tx.create ~signer ~fee ~created_at ~payload

(* ---------------- Tx ---------------- *)

let tx_tests =
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let tx = mk_tx "hello" in
        let tx' = Tx.of_string (Tx.to_string tx) in
        check_bool "equal" true (Tx.equal tx tx');
        check_str "id" (Lo_crypto.Hex.encode tx.Tx.id) (Lo_crypto.Hex.encode tx'.Tx.id);
        check_int "fee" tx.Tx.fee tx'.Tx.fee);
    Alcotest.test_case "prevalidates" `Quick (fun () ->
        check_bool "valid" true (Tx.prevalidate scheme (mk_tx "x") = Ok ()));
    Alcotest.test_case "tampered payload fails" `Quick (fun () ->
        let tx = mk_tx "hello" in
        let raw = Bytes.of_string (Tx.to_string tx) in
        (* payload bytes sit after origin(33)+fee+time; flip one near the end
           before the 64-byte signature *)
        let pos = Bytes.length raw - 65 in
        Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 1));
        let tx' = Tx.of_string (Bytes.to_string raw) in
        check_bool "invalid" true (Tx.prevalidate scheme tx' <> Ok ()));
    Alcotest.test_case "distinct payloads distinct ids" `Quick (fun () ->
        check_bool "ids differ" false
          (String.equal (mk_tx "a").Tx.id (mk_tx "b").Tx.id));
    Alcotest.test_case "negative fee rejected at creation" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Tx.create: negative fee")
          (fun () -> ignore (mk_tx ~fee:(-1) "x")));
    Alcotest.test_case "oversized payload rejected" `Quick (fun () ->
        Alcotest.check_raises "big"
          (Invalid_argument "Tx.create: payload too large") (fun () ->
            ignore (mk_tx (String.make (Tx.max_payload_size + 1) 'x'))));
    Alcotest.test_case "created_at survives microsecond encoding" `Quick (fun () ->
        let tx = mk_tx ~created_at:123.456789 "x" in
        let tx' = Tx.of_string (Tx.to_string tx) in
        check_bool "close" true (abs_float (tx'.Tx.created_at -. 123.456789) < 1e-5));
    qtest "short ids in range" QCheck2.Gen.(small_string ~gen:char) (fun payload ->
        let tx = mk_tx payload in
        let s = Tx.short_id tx in
        s >= 1 && s <= Short_id.max_value);
  ]

(* ---------------- Commitment ---------------- *)

let mk_log ?(signer = alice) () = Commitment.Log.create ~signer ()

let commitment_tests =
  [
    Alcotest.test_case "fresh log has signed seq-0 digest" `Quick (fun () ->
        let log = mk_log () in
        let d = Commitment.Log.current_digest log in
        check_int "seq" 0 d.Commitment.seq;
        check_int "counter" 0 d.Commitment.counter;
        check_bool "verifies" true (Commitment.verify scheme d));
    Alcotest.test_case "append grows seq and counter" `Quick (fun () ->
        let log = mk_log () in
        (match Commitment.Log.append log ~source:None ~ids:[ 11; 22 ] with
        | Some d ->
            check_int "seq" 1 d.Commitment.seq;
            check_int "counter" 2 d.Commitment.counter
        | None -> Alcotest.fail "append failed");
        check_bool "contains" true (Commitment.Log.contains log 11));
    Alcotest.test_case "duplicate ids dropped" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 5 ]);
        check_bool "no-op" true
          (Commitment.Log.append log ~source:None ~ids:[ 5 ] = None);
        check_int "counter" 1 (Commitment.Log.counter log));
    Alcotest.test_case "invalid ids dropped" `Quick (fun () ->
        let log = mk_log () in
        check_bool "none" true
          (Commitment.Log.append log ~source:None ~ids:[ 0; -3 ] = None));
    Alcotest.test_case "digest wire roundtrip (full and light)" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 7; 9 ]);
        List.iter
          (fun d ->
            let w = Lo_codec.Writer.create () in
            Commitment.encode w d;
            let d' = Commitment.decode (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
            check_bool "content" true (Commitment.equal_content d d');
            check_bool "verifies" true (Commitment.verify scheme d');
            check_bool "form preserved" true
              (Commitment.is_full d = Commitment.is_full d'))
          [ Commitment.Log.current_digest log;
            Commitment.Log.current_digest_light log ]);
    Alcotest.test_case "light digest verifies via sketch hash" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 3 ]);
        let light = Commitment.Log.current_digest_light log in
        check_bool "light" false (Commitment.is_full light);
        check_bool "verifies" true (Commitment.verify scheme light));
    Alcotest.test_case "corrupted sketch fails verification" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 3 ]);
        let d = Commitment.Log.current_digest log in
        let other = Lo_sketch.Sketch.create ~capacity:Commitment.default_sketch_capacity () in
        Lo_sketch.Sketch.add other 99;
        let forged = { d with Commitment.sketch = Some other } in
        check_bool "rejected" false (Commitment.verify scheme forged));
    Alcotest.test_case "extension consistent" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 1; 2 ]);
        let d1 = Commitment.Log.current_digest log in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 3 ]);
        let d2 = Commitment.Log.current_digest log in
        match Commitment.check_extension ~older:d1 ~newer:d2 () with
        | Commitment.Consistent ids -> check_bool "delta" true (ids = [ 3 ])
        | _ -> Alcotest.fail "expected Consistent");
    Alcotest.test_case "same-seq different content inconsistent" `Quick (fun () ->
        let log_a = mk_log () and log_b = mk_log () in
        ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
        let da = Commitment.Log.current_digest log_a in
        let db = Commitment.Log.current_digest log_b in
        check_bool "inconsistent" true
          (Commitment.check_extension ~older:da ~newer:db () = Commitment.Inconsistent));
    Alcotest.test_case "counter shrink inconsistent" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 1; 2; 3 ]);
        let d1 = Commitment.Log.current_digest log in
        let log2 = mk_log () in
        ignore (Commitment.Log.append log2 ~source:None ~ids:[ 9 ]);
        ignore (Commitment.Log.append log2 ~source:None ~ids:[ 10 ]);
        let d2 = Commitment.Log.current_digest log2 in
        (* d1.seq=1 counter=3; d2.seq=2 counter=2 -> counters shrink *)
        check_bool "inconsistent" true
          (Commitment.check_extension ~older:d1 ~newer:d2 () = Commitment.Inconsistent));
    Alcotest.test_case "divergent sets inconsistent via sketch" `Quick (fun () ->
        let log_a = mk_log () and log_b = mk_log () in
        ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
        let da = Commitment.Log.current_digest log_a in
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 3 ]);
        let db = Commitment.Log.current_digest log_b in
        (* da: {1} seq1; db: {2,3} seq2; counter diff 1 but set diff 3 *)
        check_bool "inconsistent" true
          (Commitment.check_extension ~older:da ~newer:db () = Commitment.Inconsistent));
    Alcotest.test_case "light extension only plausible" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 1 ]);
        let d1 = Commitment.Log.current_digest_light log in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 2 ]);
        let d2 = Commitment.Log.current_digest_light log in
        check_bool "plausible" true
          (Commitment.check_extension ~older:d1 ~newer:d2 () = Commitment.Plausible));
    Alcotest.test_case "clock regression caught even when light" `Quick (fun () ->
        let log_a = mk_log () and log_b = mk_log () in
        (* make b diverge enough to violate dominance with high probability *)
        ignore (Commitment.Log.append log_a ~source:None ~ids:(List.init 40 (fun i -> i + 1)));
        let da = Commitment.Log.current_digest_light log_a in
        ignore (Commitment.Log.append log_b ~source:None ~ids:(List.init 41 (fun i -> i + 1000)));
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 5000 ]);
        let db = Commitment.Log.current_digest_light log_b in
        check_bool "inconsistent" true
          (Commitment.check_extension ~older:da ~newer:db () = Commitment.Inconsistent));
    Alcotest.test_case "digest_at retains history" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 1 ]);
        ignore (Commitment.Log.append log ~source:None ~ids:[ 2 ]);
        check_bool "seq0" true (Commitment.Log.digest_at log ~seq:0 <> None);
        check_bool "seq1" true (Commitment.Log.digest_at log ~seq:1 <> None);
        check_bool "seq2" true (Commitment.Log.digest_at log ~seq:2 <> None);
        check_bool "seq3" true (Commitment.Log.digest_at log ~seq:3 = None));
    Alcotest.test_case "bundles in order with sources" `Quick (fun () ->
        let log = mk_log () in
        ignore (Commitment.Log.append log ~source:None ~ids:[ 1 ]);
        ignore (Commitment.Log.append log ~source:(Some "peer") ~ids:[ 2; 3 ]);
        match Commitment.Log.bundles log with
        | [ b1; b2 ] ->
            check_int "seq1" 1 b1.Commitment.Log.seq;
            check_bool "src" true (b2.Commitment.Log.source = Some "peer");
            check_bool "ids" true (Commitment.Log.all_ids log = [ 1; 2; 3 ])
        | _ -> Alcotest.fail "expected two bundles");
    Alcotest.test_case "ids_in_cells covers all ids" `Quick (fun () ->
        let log = mk_log () in
        let ids = List.init 30 (fun i -> (i * 7919) + 1) in
        ignore (Commitment.Log.append log ~source:None ~ids);
        let cells = List.init Commitment.default_clock_cells Fun.id in
        let everything = Commitment.Log.ids_in_cells log cells in
        check_bool "all" true
          (List.sort compare everything = List.sort compare ids));
    qtest "incremental sketch_hash = from-scratch hash" ~count:30
      QCheck2.Gen.(list_size (int_range 1 8) (list_size (int_range 1 12) (int_range 1 1_000_000)))
      (fun bundles ->
        (* The log maintains its digest incrementally (reused serialization
           buffer, streaming hash); recomputing the hash from the attached
           sketch's wire encoding must give the identical value. *)
        let log = mk_log () in
        List.iter
          (fun ids ->
            ignore (Commitment.Log.append log ~source:None ~ids:(List.sort_uniq compare ids)))
          bundles;
        let d = Commitment.Log.current_digest log in
        match d.Commitment.sketch with
        | None -> false
        | Some s ->
            let w = Lo_codec.Writer.create () in
            Lo_sketch.Sketch.encode w s;
            Lo_crypto.Sha256.digest (Lo_codec.Writer.contents w)
            = d.Commitment.sketch_hash);
    Alcotest.test_case "digest_at finds every recorded seq" `Quick (fun () ->
        let log = mk_log () in
        for i = 1 to 5 do
          ignore (Commitment.Log.append log ~source:None ~ids:[ 100 + i ])
        done;
        for seq = 0 to 5 do
          match Commitment.Log.digest_at log ~seq with
          | Some d -> check_int "seq" seq d.Commitment.seq
          | None -> Alcotest.fail (Printf.sprintf "digest_at %d missing" seq)
        done;
        check_bool "past end" true (Commitment.Log.digest_at log ~seq:6 = None);
        check_bool "negative" true (Commitment.Log.digest_at log ~seq:(-1) = None));
  ]

(* ---------------- Order ---------------- *)

let order_tests =
  [
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let ids = [ 5; 9; 1; 7 ] in
        check_bool "same" true
          (Order.sort_bundle ~seed:"s" ~bundle_seq:1 ids
          = Order.sort_bundle ~seed:"s" ~bundle_seq:1 ids));
    Alcotest.test_case "permutation of input" `Quick (fun () ->
        let ids = List.init 20 (fun i -> i + 1) in
        let out = Order.sort_bundle ~seed:"s" ~bundle_seq:3 ids in
        check_bool "perm" true (List.sort compare out = List.sort compare ids));
    Alcotest.test_case "seed changes order" `Quick (fun () ->
        let ids = List.init 20 (fun i -> i + 1) in
        check_bool "differ" false
          (Order.sort_bundle ~seed:"s1" ~bundle_seq:1 ids
          = Order.sort_bundle ~seed:"s2" ~bundle_seq:1 ids));
    Alcotest.test_case "bundle seq changes order" `Quick (fun () ->
        let ids = List.init 20 (fun i -> i + 1) in
        check_bool "differ" false
          (Order.sort_bundle ~seed:"s" ~bundle_seq:1 ids
          = Order.sort_bundle ~seed:"s" ~bundle_seq:2 ids));
    Alcotest.test_case "input order irrelevant" `Quick (fun () ->
        let ids = List.init 20 (fun i -> i + 1) in
        check_bool "same" true
          (Order.sort_bundle ~seed:"s" ~bundle_seq:1 ids
          = Order.sort_bundle ~seed:"s" ~bundle_seq:1 (List.rev ids)));
    qtest "canonical = concatenation of sorted bundles" ~count:50
      QCheck2.Gen.(
        list_size (int_range 1 5)
          (list_size (int_range 1 6) (int_range 1 100000)))
      (fun raw ->
        let bundles = List.mapi (fun i ids -> (i + 1, List.sort_uniq compare ids)) raw in
        let direct = Order.canonical ~seed:"k" ~bundles in
        let manual =
          List.concat_map
            (fun (seq, ids) -> Order.sort_bundle ~seed:"k" ~bundle_seq:seq ids)
            bundles
        in
        direct = manual);
    Alcotest.test_case "canonical respects bundle order" `Quick (fun () ->
        let bundles = [ (2, [ 30; 31 ]); (1, [ 10; 11 ]) ] in
        let out = Order.canonical ~seed:"s" ~bundles in
        let first_two = [ List.nth out 0; List.nth out 1 ] in
        check_bool "bundle 1 first" true
          (List.sort compare first_two = [ 10; 11 ]));
  ]

(* ---------------- Mempool ---------------- *)

let mempool_tests =
  [
    Alcotest.test_case "add and find" `Quick (fun () ->
        let m = Mempool.create () in
        let tx = mk_tx "a" in
        (match Mempool.add m ~tx ~received_at:1.0 ~from_peer:None with
        | `Added e -> check_int "short" (Tx.short_id tx) e.Mempool.short_id
        | `Duplicate -> Alcotest.fail "duplicate?");
        check_bool "mem" true (Mempool.mem_short m (Tx.short_id tx));
        check_bool "find id" true (Mempool.find_id m tx.Tx.id <> None);
        check_int "size" 1 (Mempool.size m));
    Alcotest.test_case "duplicate detected" `Quick (fun () ->
        let m = Mempool.create () in
        let tx = mk_tx "a" in
        ignore (Mempool.add m ~tx ~received_at:1.0 ~from_peer:None);
        check_bool "dup" true
          (Mempool.add m ~tx ~received_at:2.0 ~from_peer:None = `Duplicate));
    Alcotest.test_case "arrival order preserved" `Quick (fun () ->
        let m = Mempool.create () in
        let txs = List.init 5 (fun i -> mk_tx (string_of_int i)) in
        List.iteri
          (fun i tx ->
            ignore (Mempool.add m ~tx ~received_at:(float_of_int i) ~from_peer:None))
          txs;
        let order = List.map (fun e -> e.Mempool.tx.Tx.id) (Mempool.entries_in_arrival_order m) in
        check_bool "order" true (order = List.map (fun tx -> tx.Tx.id) txs));
    Alcotest.test_case "payload bytes accumulate" `Quick (fun () ->
        let m = Mempool.create () in
        ignore (Mempool.add m ~tx:(mk_tx "aaa") ~received_at:0. ~from_peer:None);
        check_bool "bytes" true (Mempool.total_payload_bytes m > 0));
  ]

(* ---------------- Block ---------------- *)

let mk_block ?(signer = alice) ?(height = 1) ?(start_seq = 0) ?(commit_seq = 1)
    ?(fee_threshold = 0) ?txids ?bundle_sizes ?(appendix = 0) ?(omissions = [])
    () =
  let txids = Option.value txids ~default:[ (mk_tx "t1").Tx.id ] in
  let bundle_sizes =
    Option.value bundle_sizes ~default:[ List.length txids - appendix ]
  in
  Block.create ~signer ~height ~prev_hash:Block.genesis_hash ~start_seq
    ~commit_seq ~fee_threshold ~txids ~bundle_sizes ~appendix ~omissions
    ~timestamp:5.0

let block_tests =
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let b = mk_block () in
        let b' = Block.of_string (Block.to_string b) in
        check_str "hash" (Lo_crypto.Hex.encode (Block.hash b))
          (Lo_crypto.Hex.encode (Block.hash b'));
        check_bool "verify" true (Block.verify_signature scheme b'));
    Alcotest.test_case "tampered signature fails" `Quick (fun () ->
        let b = mk_block () in
        let raw = Bytes.of_string (Block.to_string b) in
        Bytes.set raw (Bytes.length raw - 1)
          (Char.chr (Char.code (Bytes.get raw (Bytes.length raw - 1)) lxor 1));
        let b' = Block.of_string (Bytes.to_string raw) in
        check_bool "invalid" false (Block.verify_signature scheme b'));
    Alcotest.test_case "structure checked at creation" `Quick (fun () ->
        Alcotest.check_raises "bad" (Invalid_argument "Block.create: bad structure")
          (fun () -> ignore (mk_block ~bundle_sizes:[ 5 ] ())));
    Alcotest.test_case "bundle partition" `Quick (fun () ->
        let t1 = mk_tx "a" and t2 = mk_tx "b" and t3 = mk_tx "c" in
        let b =
          mk_block ~commit_seq:2
            ~txids:[ t1.Tx.id; t2.Tx.id; t3.Tx.id ]
            ~bundle_sizes:[ 2; 1 ] ()
        in
        (match Block.bundle_txids b with
        | [ (1, b1); (2, b2) ] ->
            check_int "b1" 2 (List.length b1);
            check_int "b2" 1 (List.length b2)
        | _ -> Alcotest.fail "bad partition");
        check_bool "appendix empty" true (Block.appendix_txids b = []));
    Alcotest.test_case "start_seq offsets bundle numbering" `Quick (fun () ->
        let t1 = mk_tx "a" in
        let b =
          mk_block ~start_seq:3 ~commit_seq:4 ~txids:[ t1.Tx.id ]
            ~bundle_sizes:[ 1 ] ()
        in
        match Block.bundle_txids b with
        | [ (4, _) ] -> ()
        | _ -> Alcotest.fail "expected bundle 4");
    Alcotest.test_case "appendix split" `Quick (fun () ->
        let t1 = mk_tx "a" and t2 = mk_tx "b" in
        let b =
          mk_block ~commit_seq:1 ~txids:[ t1.Tx.id; t2.Tx.id ]
            ~bundle_sizes:[ 1 ] ~appendix:1 ()
        in
        check_bool "appendix" true (Block.appendix_txids b = [ t2.Tx.id ]));
    Alcotest.test_case "omissions roundtrip" `Quick (fun () ->
        let b =
          mk_block
            ~omissions:[ (42, Block.Low_fee); (43, Block.Missing_content); (44, Block.Settled) ]
            ()
        in
        let b' = Block.of_string (Block.to_string b) in
        check_bool "omissions" true (b'.Block.omissions = b.Block.omissions));
  ]

(* ---------------- Policy ---------------- *)

let policy_tests =
  let t_low = mk_tx ~fee:1 "low" in
  let t_mid = mk_tx ~fee:10 "mid" in
  let t_high = mk_tx ~fee:100 "high" in
  let table =
    List.map (fun tx -> (Tx.short_id tx, tx)) [ t_low; t_mid; t_high ]
  in
  let find_tx id = List.assoc_opt id table in
  let input ?(is_settled = fun _ -> false) ?(fee_threshold = 0) ?(max_txs = 100)
      bundles =
    { Policy.bundles; find_tx; is_settled; fee_threshold; max_txs; seed = "seed" }
  in
  [
    Alcotest.test_case "fifo keeps bundle order" `Quick (fun () ->
        let out =
          Policy.build Policy.Lo_fifo
            (input [ (1, [ Tx.short_id t_low ]); (2, [ Tx.short_id t_high ]) ])
        in
        check_bool "order" true (out.Policy.txids = [ t_low.Tx.id; t_high.Tx.id ]);
        check_int "covered" 2 out.Policy.covered_seq;
        check_bool "sizes" true (out.Policy.bundle_sizes = [ 1; 1 ]));
    Alcotest.test_case "fifo fee threshold omits" `Quick (fun () ->
        let out =
          Policy.build Policy.Lo_fifo
            (input ~fee_threshold:5
               [ (1, [ Tx.short_id t_low; Tx.short_id t_high ]) ])
        in
        check_bool "only high" true (out.Policy.txids = [ t_high.Tx.id ]);
        check_bool "omission" true
          (out.Policy.omissions = [ (Tx.short_id t_low, Block.Low_fee) ]));
    Alcotest.test_case "fifo missing content omitted" `Quick (fun () ->
        let out = Policy.build Policy.Lo_fifo (input [ (1, [ 424242 ]) ]) in
        check_bool "empty" true (out.Policy.txids = []);
        check_bool "omission" true
          (out.Policy.omissions = [ (424242, Block.Missing_content) ]));
    Alcotest.test_case "fifo settled prefix skipped" `Quick (fun () ->
        let settled id = id = Tx.short_id t_low in
        let out =
          Policy.build Policy.Lo_fifo
            (input ~is_settled:settled
               [ (1, [ Tx.short_id t_low ]); (2, [ Tx.short_id t_mid ]) ])
        in
        check_int "start" 1 out.Policy.start_seq;
        check_bool "only mid" true (out.Policy.txids = [ t_mid.Tx.id ]));
    Alcotest.test_case "fifo blockspace truncates whole bundles" `Quick (fun () ->
        let out =
          Policy.build Policy.Lo_fifo
            (input ~max_txs:1
               [ (1, [ Tx.short_id t_low ]);
                 (2, [ Tx.short_id t_mid; Tx.short_id t_high ]) ])
        in
        check_int "covered" 1 out.Policy.covered_seq;
        check_bool "one tx" true (out.Policy.txids = [ t_low.Tx.id ]));
    Alcotest.test_case "highest fee sorts by fee" `Quick (fun () ->
        let out =
          Policy.build Policy.Highest_fee
            (input
               [ (1, [ Tx.short_id t_low; Tx.short_id t_high; Tx.short_id t_mid ]) ])
        in
        check_bool "order" true
          (out.Policy.txids = [ t_high.Tx.id; t_mid.Tx.id; t_low.Tx.id ]));
    Alcotest.test_case "highest fee respects cap" `Quick (fun () ->
        let out =
          Policy.build Policy.Highest_fee
            (input ~max_txs:1
               [ (1, [ Tx.short_id t_low; Tx.short_id t_high ]) ])
        in
        check_bool "top only" true (out.Policy.txids = [ t_high.Tx.id ]));
    Alcotest.test_case "fifo canonical intra-bundle order" `Quick (fun () ->
        let bundle = [ Tx.short_id t_low; Tx.short_id t_mid; Tx.short_id t_high ] in
        let out = Policy.build Policy.Lo_fifo (input [ (1, bundle) ]) in
        let expected = Order.sort_bundle ~seed:"seed" ~bundle_seq:1 bundle in
        check_bool "canonical" true
          (List.map Short_id.of_txid out.Policy.txids = expected));
  ]

(* ---------------- Inspector & Evidence ---------------- *)

let inspector_tests =
  (* Build a convincing scenario: a creator log with two bundles. *)
  let creator = Signer.make scheme ~seed:"creator" in
  let txs = List.init 6 (fun i -> mk_tx ~fee:(10 + i) (Printf.sprintf "tx%d" i)) in
  let log = Commitment.Log.create ~signer:creator () in
  let bundle1 = List.filteri (fun i _ -> i < 3) txs in
  let bundle2 = List.filteri (fun i _ -> i >= 3) txs in
  ignore (Commitment.Log.append log ~source:None ~ids:(List.map Tx.short_id bundle1));
  ignore (Commitment.Log.append log ~source:None ~ids:(List.map Tx.short_id bundle2));
  let knowledge =
    {
      Inspector.bundle_of_seq =
        (fun seq ->
          match seq with
          | 1 -> Some (List.map Tx.short_id bundle1)
          | 2 -> Some (List.map Tx.short_id bundle2)
          | _ -> None);
      find_tx =
        (fun id -> List.find_opt (fun tx -> Tx.short_id tx = id) txs);
      settled_height = (fun _ -> None);
    }
  in
  let honest_block ?(omissions = []) ?(drop = []) ?(extra = []) ?(shuffle = false) () =
    let bundle_ids seq b =
      let ids =
        List.map Tx.short_id b
        |> List.filter (fun id -> not (List.mem id drop))
      in
      let ordered = Order.sort_bundle ~seed:Block.genesis_hash ~bundle_seq:seq ids in
      let ordered = if shuffle then List.rev ordered else ordered in
      List.map
        (fun id ->
          (List.find (fun tx -> Tx.short_id tx = id) txs).Tx.id)
        ordered
    in
    let b1 = bundle_ids 1 bundle1 and b2 = bundle_ids 2 bundle2 in
    let extra_ids = List.map (fun (tx : Tx.t) -> tx.Tx.id) extra in
    Block.create ~signer:creator ~height:1 ~prev_hash:Block.genesis_hash
      ~start_seq:0 ~commit_seq:2 ~fee_threshold:0
      ~txids:(b1 @ b2 @ extra_ids)
      ~bundle_sizes:[ List.length b1; List.length b2 ]
      ~appendix:(List.length extra_ids) ~omissions ~timestamp:3.0
  in
  [
    Alcotest.test_case "honest block is clean" `Quick (fun () ->
        let report = Inspector.inspect (honest_block ()) knowledge in
        check_bool "clean" true (Inspector.clean report);
        check_bool "verified" true (report.Inspector.unverified_bundles = []));
    Alcotest.test_case "silent omission = censorship" `Quick (fun () ->
        let victim = List.hd txs in
        let block = honest_block ~drop:[ Tx.short_id victim ] () in
        let report = Inspector.inspect block knowledge in
        check_bool "violation" true
          (List.exists
             (function
               | Inspector.Blockspace_censorship { short_id; _ } ->
                   short_id = Tx.short_id victim
               | _ -> false)
             report.Inspector.violations));
    Alcotest.test_case "false low-fee claim detected" `Quick (fun () ->
        let victim = List.hd txs in
        let block =
          honest_block ~drop:[ Tx.short_id victim ]
            ~omissions:[ (Tx.short_id victim, Block.Low_fee) ] ()
        in
        let report = Inspector.inspect block knowledge in
        check_bool "violation" true
          (List.exists
             (function
               | Inspector.False_omission_claim _ -> true
               | _ -> false)
             report.Inspector.violations));
    Alcotest.test_case "missing-content claim unverifiable not violation" `Quick
      (fun () ->
        let victim = List.hd txs in
        let block =
          honest_block ~drop:[ Tx.short_id victim ]
            ~omissions:[ (Tx.short_id victim, Block.Missing_content) ] ()
        in
        let report = Inspector.inspect block knowledge in
        check_bool "clean" true (Inspector.clean report);
        check_bool "tracked" true (report.Inspector.unverifiable_omissions <> []));
    Alcotest.test_case "reordering detected" `Quick (fun () ->
        let report = Inspector.inspect (honest_block ~shuffle:true ()) knowledge in
        check_bool "violation" true
          (List.exists
             (function Inspector.Reordering _ -> true | _ -> false)
             report.Inspector.violations));
    Alcotest.test_case "foreign appendix tx = injection" `Quick (fun () ->
        let foreign = mk_tx ~signer:bob "foreign" in
        let know_with_foreign =
          { knowledge with
            Inspector.find_tx =
              (fun id ->
                if id = Tx.short_id foreign then Some foreign
                else knowledge.Inspector.find_tx id) }
        in
        let report =
          Inspector.inspect (honest_block ~extra:[ foreign ] ()) know_with_foreign
        in
        check_bool "violation" true
          (List.exists
             (function
               | Inspector.Injection { bundle_seq = None; _ } -> true
               | _ -> false)
             report.Inspector.violations));
    Alcotest.test_case "unknown bundles reported unverified" `Quick (fun () ->
        let know_nothing =
          { knowledge with Inspector.bundle_of_seq = (fun _ -> None) }
        in
        let report = Inspector.inspect (honest_block ()) know_nothing in
        check_bool "clean" true (Inspector.clean report);
        check_bool "unverified" true
          (report.Inspector.unverified_bundles = [ 1; 2 ]));
    (* Evidence *)
    Alcotest.test_case "censorship evidence verifies" `Quick (fun () ->
        let victim = List.nth txs 3 (* in bundle 2 *) in
        let block = honest_block ~drop:[ Tx.short_id victim ] () in
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev =
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = Some victim }
        in
        check_bool "valid" true (Evidence.verify scheme ev));
    Alcotest.test_case "censorship evidence for included tx fails" `Quick (fun () ->
        let tx = List.nth txs 3 in
        let block = honest_block () in
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev =
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = Some tx }
        in
        check_bool "invalid" false (Evidence.verify scheme ev));
    Alcotest.test_case "reorder evidence verifies" `Quick (fun () ->
        let block = honest_block ~shuffle:true () in
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev =
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = None }
        in
        check_bool "valid" true (Evidence.verify scheme ev));
    Alcotest.test_case "reorder evidence on honest block fails" `Quick (fun () ->
        let block = honest_block () in
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev =
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = None }
        in
        check_bool "invalid" false (Evidence.verify scheme ev));
    Alcotest.test_case "conflicting digests evidence verifies" `Quick (fun () ->
        let log_a = Commitment.Log.create ~signer:creator () in
        let log_b = Commitment.Log.create ~signer:creator () in
        ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
        let ev =
          Evidence.Conflicting_digests
            {
              older = Commitment.Log.current_digest log_a;
              newer = Commitment.Log.current_digest log_b;
            }
        in
        check_bool "valid" true (Evidence.verify scheme ev);
        check_bool "accused" true
          (String.equal (Evidence.accused ev) (Signer.id creator)));
    Alcotest.test_case "consistent digests are not evidence" `Quick (fun () ->
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev = Evidence.Conflicting_digests { older; newer } in
        check_bool "invalid" false (Evidence.verify scheme ev));
    Alcotest.test_case "evidence wire roundtrip" `Quick (fun () ->
        let victim = List.nth txs 3 in
        let block = honest_block ~drop:[ Tx.short_id victim ] () in
        let older = Option.get (Commitment.Log.digest_at log ~seq:1) in
        let newer = Option.get (Commitment.Log.digest_at log ~seq:2) in
        let ev =
          Evidence.Block_bundle_violation { block; older; newer; omitted_tx = Some victim }
        in
        let w = Lo_codec.Writer.create () in
        Evidence.encode w ev;
        let ev' = Evidence.decode (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
        check_bool "still valid" true (Evidence.verify scheme ev'));
  ]

(* ---------------- Accountability ---------------- *)

let evidence_soundness_tests =
  [
    qtest "honest digest pairs never verify as evidence" ~count:40
      QCheck2.Gen.(
        pair (list_size (int_range 1 6) (list_size (int_range 1 5) (int_range 1 1000000)))
          (int_range 0 5))
      (fun (bundles, pick) ->
        let signer = Signer.make scheme ~seed:"sound" in
        let log = Commitment.Log.create ~signer () in
        List.iter
          (fun ids -> ignore (Commitment.Log.append log ~source:None ~ids))
          bundles;
        let top = Commitment.Log.seq log in
        let s1 = pick mod (top + 1) in
        let s2 = s1 + ((pick / 2) mod (top - s1 + 1)) in
        match
          (Commitment.Log.digest_at log ~seq:s1, Commitment.Log.digest_at log ~seq:s2)
        with
        | Some older, Some newer ->
            not (Evidence.verify scheme (Evidence.Conflicting_digests { older; newer }))
        | _ -> true);
    qtest "forked same-seq digests always verify as evidence" ~count:40
      QCheck2.Gen.(pair (int_range 1 1000000) (int_range 1 1000000))
      (fun (a, b) ->
        QCheck2.assume (a <> b);
        let signer = Signer.make scheme ~seed:"forked" in
        let log_a = Commitment.Log.create ~signer () in
        let log_b = Commitment.Log.create ~signer () in
        ignore (Commitment.Log.append log_a ~source:None ~ids:[ a ]);
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ b ]);
        Evidence.verify scheme
          (Evidence.Conflicting_digests
             {
               older = Commitment.Log.current_digest log_a;
               newer = Commitment.Log.current_digest log_b;
             }));
    Alcotest.test_case "evidence from a different signer is rejected" `Quick
      (fun () ->
        (* digests signed by X cannot expose Y, and unsigned forgeries
           fail verification *)
        let sx = Signer.make scheme ~seed:"signer-x" in
        let log_a = Commitment.Log.create ~signer:sx () in
        let log_b = Commitment.Log.create ~signer:sx () in
        ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
        ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
        let da = Commitment.Log.current_digest log_a in
        let db = Commitment.Log.current_digest log_b in
        (* re-owner the newer digest without re-signing *)
        let forged = { db with Commitment.owner = Signer.id bob } in
        check_bool "owner mismatch rejected" false
          (Evidence.verify scheme
             (Evidence.Conflicting_digests { older = da; newer = forged })));
  ]

let accountability_tests =
  let dummy_evidence () =
    let log_a = Commitment.Log.create ~signer:bob () in
    let log_b = Commitment.Log.create ~signer:bob () in
    ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
    ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
    Evidence.Conflicting_digests
      {
        older = Commitment.Log.current_digest log_a;
        newer = Commitment.Log.current_digest log_b;
      }
  in
  [
    Alcotest.test_case "default trusted" `Quick (fun () ->
        let t = Accountability.create () in
        check_bool "trusted" true (Accountability.status t "x" = Accountability.Trusted));
    Alcotest.test_case "suspect and clear" `Quick (fun () ->
        let t = Accountability.create () in
        Accountability.suspect t ~peer:"p" ~now:1.0 ~reason:"timeout";
        check_bool "suspected" true (Accountability.is_suspected t "p");
        Accountability.clear_suspicion t ~peer:"p";
        check_bool "cleared" false (Accountability.is_suspected t "p"));
    Alcotest.test_case "re-suspect keeps original time" `Quick (fun () ->
        let t = Accountability.create () in
        Accountability.suspect t ~peer:"p" ~now:1.0 ~reason:"a";
        Accountability.suspect t ~peer:"p" ~now:9.0 ~reason:"b";
        match Accountability.status t "p" with
        | Accountability.Suspected s ->
            Alcotest.(check (float 1e-9)) "since" 1.0 s.Accountability.since
        | _ -> Alcotest.fail "not suspected");
    Alcotest.test_case "exposure is sticky" `Quick (fun () ->
        let t = Accountability.create () in
        check_bool "new" true (Accountability.expose t ~peer:"p" (dummy_evidence ()));
        check_bool "repeat" false (Accountability.expose t ~peer:"p" (dummy_evidence ()));
        Accountability.clear_suspicion t ~peer:"p";
        check_bool "still" true (Accountability.is_exposed t "p"));
    Alcotest.test_case "suspicion cannot downgrade exposure" `Quick (fun () ->
        let t = Accountability.create () in
        ignore (Accountability.expose t ~peer:"p" (dummy_evidence ()));
        Accountability.suspect t ~peer:"p" ~now:1.0 ~reason:"r";
        check_bool "exposed" true (Accountability.is_exposed t "p"));
    Alcotest.test_case "counts" `Quick (fun () ->
        let t = Accountability.create () in
        Accountability.suspect t ~peer:"a" ~now:0. ~reason:"r";
        ignore (Accountability.expose t ~peer:"b" (dummy_evidence ()));
        check_bool "counts" true (Accountability.counts t = (1, 1)));
  ]

(* ---------------- Messages ---------------- *)

let messages_tests =
  let log = mk_log () in
  let _ = Commitment.Log.append log ~source:None ~ids:[ 1; 2 ] in
  let digest = Commitment.Log.current_digest log in
  let light = Commitment.Log.current_digest_light log in
  let roundtrip msg =
    let msg' = Messages.decode (Messages.encode msg) in
    Messages.encode msg' = Messages.encode msg
  in
  [
    Alcotest.test_case "all variants roundtrip" `Quick (fun () ->
        let tx = mk_tx "m" in
        let block = mk_block ~txids:[ tx.Tx.id ] () in
        let msgs =
          [
            Messages.Submit tx;
            Messages.Commit_request { digest = light; delta = [ 1; 2 ]; want = [ 3 ]; appended = [ 1 ] };
            Messages.Commit_response { digest = light; want = []; delta = [ 9 ]; appended = [] };
            Messages.Tx_batch [ tx; mk_tx "m2" ];
            Messages.Digest_share digest;
            Messages.Digest_request { owner = Signer.id alice; seq = 4 };
            Messages.Digest_reply [ digest; light ];
            Messages.Suspicion_note
              { suspect = Signer.id bob; reporter = Signer.id alice;
                last_digest = Some light; reason = "timeout" };
            Messages.Suspicion_note
              { suspect = Signer.id bob; reporter = Signer.id alice;
                last_digest = None; reason = "" };
            Messages.Block_announce block;
          ]
        in
        List.iter (fun m -> check_bool (Messages.tag m) true (roundtrip m)) msgs);
    Alcotest.test_case "tags are namespaced" `Quick (fun () ->
        check_str "proto" "lo" (Lo_net.Mux.proto_of_tag (Messages.tag (Messages.Tx_batch []))));
    Alcotest.test_case "junk rejected" `Quick (fun () ->
        check_bool "raises" true
          (match Messages.decode "\xff junk" with
          | exception Lo_codec.Reader.Malformed _ -> true
          | _ -> false));
    Alcotest.test_case "light digests keep messages small" `Quick (fun () ->
        let light_req =
          Messages.Commit_request { digest = light; delta = []; want = []; appended = [] }
        in
        check_bool "small" true (Messages.size light_req < 300);
        let full_req =
          Messages.Commit_request { digest; delta = []; want = []; appended = [] }
        in
        check_bool "bigger" true (Messages.size full_req > Messages.size light_req));
  ]

let directory_tests =
  [
    Alcotest.test_case "bidirectional lookup" `Quick (fun () ->
        let d = Directory.create ~ids:[| "aa"; "bb"; "cc" |] in
        check_int "size" 3 (Directory.size d);
        check_str "id" "bb" (Directory.id_of d 1);
        check_bool "index" true (Directory.index_of d "cc" = Some 2);
        check_bool "unknown" true (Directory.index_of d "zz" = None));
  ]

let settled_inspection_tests =
  (* Settled-prefix and Settled-omission handling in the inspector. *)
  let creator = Signer.make scheme ~seed:"settled-creator" in
  let t1 = mk_tx "s-one" and t2 = mk_tx "s-two" in
  let id1 = Tx.short_id t1 and id2 = Tx.short_id t2 in
  let knowledge settled =
    {
      Inspector.bundle_of_seq =
        (fun seq -> if seq = 1 then Some [ id1 ] else if seq = 2 then Some [ id2 ] else None);
      find_tx = (fun id -> if id = id1 then Some t1 else if id = id2 then Some t2 else None);
      settled_height = settled;
    }
  in
  let block ~start_seq ~txids ~bundle_sizes ~omissions =
    Block.create ~signer:creator ~height:5 ~prev_hash:Block.genesis_hash
      ~start_seq ~commit_seq:2 ~fee_threshold:0 ~txids ~bundle_sizes
      ~appendix:0 ~omissions ~timestamp:9.0
  in
  [
    Alcotest.test_case "valid settled omission accepted" `Quick (fun () ->
        let b =
          block ~start_seq:1
            ~txids:(Order.sort_bundle ~seed:Block.genesis_hash ~bundle_seq:2 [ id2 ]
                    |> List.map (fun _ -> t2.Tx.id))
            ~bundle_sizes:[ 1 ] ~omissions:[]
        in
        let report =
          Inspector.inspect b (knowledge (fun id -> if id = id1 then Some 2 else None))
        in
        check_bool "clean" true (Inspector.clean report);
        check_bool "prefix verified" true (report.Inspector.unverifiable_omissions = []));
    Alcotest.test_case "unsettled prefix flagged unverifiable" `Quick (fun () ->
        let b =
          block ~start_seq:1
            ~txids:[ t2.Tx.id ] ~bundle_sizes:[ 1 ] ~omissions:[]
        in
        let report = Inspector.inspect b (knowledge (fun _ -> None)) in
        (* accuracy first: not a violation, but tracked *)
        check_bool "clean" true (Inspector.clean report);
        check_bool "tracked" true
          (List.mem (1, id1) report.Inspector.unverifiable_omissions));
    Alcotest.test_case "settled claim for future height unverifiable" `Quick
      (fun () ->
        let b =
          block ~start_seq:0 ~txids:[ t2.Tx.id ] ~bundle_sizes:[ 0; 1 ]
            ~omissions:[ (id1, Block.Settled) ]
        in
        let report =
          Inspector.inspect b
            (knowledge (fun id -> if id = id1 then Some 9 (* future *) else None))
        in
        check_bool "clean (accuracy)" true (Inspector.clean report);
        check_bool "tracked" true
          (List.mem (1, id1) report.Inspector.unverifiable_omissions));
  ]

let submit_ack_tests =
  [
    Alcotest.test_case "submit-ack roundtrip" `Quick (fun () ->
        let tx = mk_tx "ack-me" in
        let msg =
          Messages.Submit_ack { txid = tx.Tx.id; ack_signature = String.make 64 's' }
        in
        check_bool "roundtrip" true
          (Messages.encode (Messages.decode (Messages.encode msg)) = Messages.encode msg);
        check_str "tag" "lo:submit-ack" (Messages.tag msg));
    Alcotest.test_case "ack signing bytes bind the txid" `Quick (fun () ->
        let a = Node.ack_signing_bytes ~txid:(String.make 32 'a') in
        let b = Node.ack_signing_bytes ~txid:(String.make 32 'b') in
        check_bool "distinct" false (String.equal a b));
  ]

let short_id_tests =
  [
    Alcotest.test_case "nonzero and bounded" `Quick (fun () ->
        for i = 0 to 200 do
          let id = Short_id.of_txid (Lo_crypto.Sha256.digest (string_of_int i)) in
          check_bool "range" true (id >= 1 && id <= Short_id.max_value)
        done);
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let d = Lo_crypto.Sha256.digest "x" in
        check_int "same" (Short_id.of_txid d) (Short_id.of_txid d));
    Alcotest.test_case "too short rejected" `Quick (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Short_id.of_txid: id too short") (fun () ->
            ignore (Short_id.of_txid "abc")));
  ]

(* ---------------- Tx wire fast path ---------------- *)

let tx_wire_tests =
  [
    Alcotest.test_case "unsigned_bytes is the signed prefix" `Quick (fun () ->
        let tx = mk_tx "prefix" in
        check_str "prefix"
          (Tx.unsigned_bytes tx ^ tx.Tx.signature)
          (Tx.to_string tx));
    Alcotest.test_case "non-minimal fee varint falls back to canonical id"
      `Quick (fun () ->
        (* fee 10 encodes as the single byte 0x0a at offset 33 (after
           the origin); 0x8a 0x00 decodes to the same value through a
           non-minimal continuation. The id must come out canonical —
           digest of the re-encoding, not of the received bytes. *)
        let tx = mk_tx ~fee:10 "nm" in
        let s = Tx.to_string tx in
        let nm =
          String.sub s 0 33 ^ "\x8a\x00"
          ^ String.sub s 34 (String.length s - 34)
        in
        let tx' = Tx.of_string nm in
        check_str "id" tx.Tx.id tx'.Tx.id;
        check_bool "prevalidates" true
          (Tx.prevalidate scheme tx' = Ok ()));
    Alcotest.test_case "non-minimal payload-length varint" `Quick (fun () ->
        let tx = mk_tx ~fee:0 "xyz" in
        let s = Tx.to_string tx in
        (* layout: origin(33) fee-varint(1) us(8) plen-varint(1) ... *)
        let nm =
          String.sub s 0 42 ^ "\x83\x00"
          ^ String.sub s 43 (String.length s - 43)
        in
        let tx' = Tx.of_string nm in
        check_str "id" tx.Tx.id tx'.Tx.id);
    qtest "wire roundtrip preserves id across fee widths"
      QCheck2.Gen.(
        triple (int_bound 10_000_000)
          (string_size (int_bound 200))
          (int_bound 1_000_000))
      (fun (fee, payload, us) ->
        let tx = mk_tx ~fee ~created_at:(float_of_int us /. 1e6) payload in
        let tx' = Tx.of_string (Tx.to_string tx) in
        tx'.Tx.id = tx.Tx.id
        && Tx.unsigned_bytes tx' = Tx.unsigned_bytes tx
        && Tx.prevalidate scheme tx' = Ok ());
  ]

(* ---------------- Batched ingest ---------------- *)

(* [Mempool.ingest_batch] against the per-transaction reference
   pipeline run with the same one-bundle-per-batch commit granularity:
   same mempool contents, same accepted/invalid/duplicate partition,
   same committed ids, byte-identical commitment digests. *)
let ingest_batch_tests =
  let corrupt_sig tx =
    let s = Bytes.of_string (Tx.to_string tx) in
    let off = Bytes.length s - 1 in
    Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 1));
    Tx.of_string (Bytes.to_string s)
  in
  let reference ?(keep = fun _ -> true) ~known txs =
    let m = Mempool.create () in
    let accepted = ref [] and invalid = ref [] and dups = ref 0 in
    let fresh = ref [] in
    let seen = Hashtbl.create 16 in
    List.iteri
      (fun i tx ->
        match Tx.prevalidate scheme tx with
        | Error r -> invalid := (i, r) :: !invalid
        | Ok () ->
            if keep tx then begin
              let short = Tx.short_id tx in
              if (not (known short)) && not (Hashtbl.mem seen short) then begin
                Hashtbl.add seen short ();
                fresh := short :: !fresh
              end;
              match
                Mempool.add m ~tx ~received_at:7. ~from_peer:(Some "p")
              with
              | `Added e -> accepted := e :: !accepted
              | `Duplicate -> incr dups
            end)
      txs;
    (m, List.rev !accepted, List.rev !invalid, !dups, List.rev !fresh)
  in
  let run_batch ?canonical ?keep ~known txs =
    let m = Mempool.create () in
    let committed = ref [] in
    let r =
      Mempool.ingest_batch ?canonical ?keep ~scheme ~known
        ~commit:(fun ids -> committed := ids)
        ~received_at:7. ~from_peer:(Some "p") m txs
    in
    (m, r, !committed)
  in
  let ids_of entries =
    List.map (fun (e : Mempool.entry) -> e.Mempool.tx.Tx.id) entries
  in
  let digest_after ids =
    let log = Commitment.Log.create ~signer:alice () in
    if ids <> [] then ignore (Commitment.Log.append log ~source:None ~ids);
    Commitment.signing_bytes (Commitment.Log.current_digest log)
  in
  let agree ?keep ?(known = fun _ -> false) txs =
    let m1, acc1, inv1, dup1, fresh = reference ?keep ~known txs in
    let m2, r, committed = run_batch ?keep ~known txs in
    ids_of (Mempool.entries_in_arrival_order m1)
    = ids_of (Mempool.entries_in_arrival_order m2)
    && ids_of acc1 = ids_of r.Mempool.accepted
    && List.map fst inv1 = List.map fst r.Mempool.invalid
    && dup1 = r.Mempool.duplicates
    && fresh = committed
    && fresh = r.Mempool.committed
    && digest_after fresh = digest_after committed
  in
  [
    Alcotest.test_case "empty batch" `Quick (fun () ->
        let _, r, committed = run_batch ~known:(fun _ -> false) [] in
        check_bool "no commit" true (committed = []);
        check_bool "all empty" true
          (r.Mempool.accepted = [] && r.Mempool.invalid = []
          && r.Mempool.duplicates = 0 && r.Mempool.committed = []));
    Alcotest.test_case "mixed batch matches reference" `Quick (fun () ->
        let a = mk_tx "ba" and b = mk_tx "bb" and c = mk_tx "bc" in
        let txs = [ a; corrupt_sig b; a; b; c; c ] in
        check_bool "agree" true (agree txs));
    Alcotest.test_case "known ids are not re-committed" `Quick (fun () ->
        let a = mk_tx "ka" and b = mk_tx "kb" in
        let known s = s = Tx.short_id a in
        let _, r, committed = run_batch ~known [ a; b ] in
        check_bool "only b" true (committed = [ Tx.short_id b ]);
        check_int "both stored" 2 (List.length r.Mempool.accepted);
        check_bool "agree" true (agree ~known [ a; b ]));
    Alcotest.test_case "censored txs are skipped in both paths" `Quick
      (fun () ->
        let keep tx = tx.Tx.payload <> "censored" in
        let txs = [ mk_tx "ok1"; mk_tx "censored"; mk_tx "ok2" ] in
        let _, r, committed = run_batch ~keep ~known:(fun _ -> false) txs in
        check_int "kept" 2 (List.length r.Mempool.accepted);
        check_int "committed" 2 (List.length committed);
        check_bool "agree" true (agree ~keep txs));
    Alcotest.test_case "canonical substitution is applied" `Quick (fun () ->
        let a = mk_tx "canon" in
        let a' = Tx.of_string (Tx.to_string a) in
        let canonical tx = if tx.Tx.id = a.Tx.id then a else tx in
        let _, r, _ = run_batch ~canonical ~known:(fun _ -> false) [ a' ] in
        match r.Mempool.accepted with
        | [ e ] -> check_bool "interned instance" true (e.Mempool.tx == a)
        | _ -> Alcotest.fail "expected one accepted entry");
    qtest "ingest_batch = iterated reference" ~count:120
      QCheck2.Gen.(
        list_size (int_bound 16) (pair (int_bound 5) (int_bound 4)))
      (fun spec ->
        let base =
          Array.init 6 (fun i -> mk_tx ~fee:i (Printf.sprintf "qb%d" i))
        in
        let txs =
          List.map
            (fun (k, corrupt) ->
              if corrupt = 0 then corrupt_sig base.(k) else base.(k))
            spec
        in
        agree txs);
    qtest "ingest_batch with known set = reference" ~count:80
      QCheck2.Gen.(
        pair
          (list_size (int_bound 12) (int_bound 5))
          (list_size (int_bound 3) (int_bound 5)))
      (fun (picks, known_picks) ->
        let base =
          Array.init 6 (fun i -> mk_tx ~fee:(i + 7) (Printf.sprintf "qk%d" i))
        in
        let txs = List.map (fun k -> base.(k)) picks in
        let known_set =
          List.map (fun k -> Tx.short_id base.(k)) known_picks
        in
        agree ~known:(fun s -> List.mem s known_set) txs);
  ]

let () =
  Alcotest.run "lo_core_types"
    [
      ("tx", tx_tests);
      ("tx-wire", tx_wire_tests);
      ("ingest-batch", ingest_batch_tests);
      ("short-id", short_id_tests);
      ("commitment", commitment_tests);
      ("order", order_tests);
      ("mempool", mempool_tests);
      ("block", block_tests);
      ("policy", policy_tests);
      ("inspector-evidence", inspector_tests);
      ("settled-inspection", settled_inspection_tests);
      ("directory", directory_tests);
      ("submit-ack", submit_ack_tests);
      ("evidence-soundness", evidence_soundness_tests);
      ("accountability", accountability_tests);
      ("messages", messages_tests);
    ]
