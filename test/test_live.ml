(* The live transport backend: length-prefixed framing over real
   sockets (partial reads, short writes), the timer wheel, and the
   mux's unknown-tag accounting. *)

module Frame = Lo_live.Frame
module Timer_wheel = Lo_live.Timer_wheel
module Signer = Lo_crypto.Signer
open Lo_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let scheme = Signer.simulation ()
let alice = Signer.make scheme ~seed:"live-alice"
let bob = Signer.make scheme ~seed:"live-bob"

let mk_tx payload = Tx.create ~signer:alice ~fee:7 ~created_at:1.5 ~payload

(* One instance of every wire constructor — the whole live protocol
   surface. If a constructor is added, the length check below fails and
   this list must grow with it. *)
let all_messages () =
  let log = Commitment.Log.create ~signer:alice () in
  let d0 = Commitment.Log.current_digest log in
  ignore (Commitment.Log.append log ~source:None ~ids:[ 11; 22 ]);
  let d1 = Commitment.Log.current_digest log in
  let light = Commitment.Log.current_digest_light log in
  let tx = mk_tx "pay carol 5" in
  let tx2 = mk_tx "swap 1 eth" in
  let block =
    Block.create ~signer:alice ~height:1 ~prev_hash:Block.genesis_hash
      ~start_seq:0 ~commit_seq:1 ~fee_threshold:0
      ~txids:[ tx.Tx.id ]
      ~bundle_sizes:[ 1 ] ~appendix:0 ~omissions:[] ~timestamp:5.0
  in
  [
    Messages.Submit tx;
    Messages.Submit_ack
      {
        txid = tx.Tx.id;
        ack_signature = String.make Signer.signature_size 's';
      };
    Messages.Commit_request
      { digest = d1; delta = [ 1; 2 ]; want = [ 3 ]; appended = [ 11; 22 ] };
    Messages.Commit_response
      { digest = d1; want = []; delta = [ 9 ]; appended = [] };
    Messages.Tx_batch [ tx; tx2 ];
    Messages.Digest_share light;
    Messages.Digest_request { owner = Signer.id alice; seq = 1 };
    Messages.Digest_reply [ d0; d1 ];
    Messages.Suspicion_note
      {
        suspect = Signer.id alice;
        reporter = Signer.id bob;
        last_digest = Some light;
        reason = "timeout";
      };
    Messages.Suspicion_withdraw
      { suspect = Signer.id alice; reporter = Signer.id bob };
    Messages.Exposure_note
      (Evidence.Conflicting_digests { older = d0; newer = d1 });
    Messages.Block_announce block;
  ]

(* Deliberately tiny writes: every frame crosses the socket in many
   pieces, exercising the receiver's reassembly. *)
let write_chunked fd s chunk =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    let len = min chunk (n - !off) in
    let w = Unix.write fd b !off len in
    off := !off + w
  done

let drain_frames dec acc =
  let rec go acc =
    match Frame.Decoder.next dec with
    | Some f -> go (f :: acc)
    | None -> acc
  in
  go acc

let read_frames fd ~expected =
  let dec = Frame.Decoder.create () in
  (* A 7-byte read buffer guarantees partial reads of both the length
     prefix and the body. *)
  let buf = Bytes.create 7 in
  let frames = ref [] in
  while List.length !frames < expected do
    let k = Unix.read fd buf 0 (Bytes.length buf) in
    if k = 0 then failwith "peer closed early";
    Frame.Decoder.feed dec (Bytes.sub_string buf 0 k);
    frames := drain_frames dec !frames
  done;
  check_int "no trailing garbage" 0 (Frame.Decoder.buffered dec);
  List.rev !frames

let frame_tests =
  [
    Alcotest.test_case "all 12 wire constructors round-trip over a socket pair"
      `Quick (fun () ->
        let msgs = all_messages () in
        check_int "protocol surface" 12 (List.length msgs);
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (* Write/read per frame: a single-threaded test must not fill
           the socket buffer (tiny writes charge a whole skb each). *)
        let frames =
          List.concat_map
            (fun m ->
              write_chunked a
                (Frame.encode ~src:3 ~tag:(Messages.tag m) (Messages.encode m))
                64;
              read_frames b ~expected:1)
            msgs
        in
        Unix.close a;
        Unix.close b;
        List.iter2
          (fun m (f : Frame.frame) ->
            check_int "version" Frame.version f.version;
            check_int "src" 3 f.src;
            check_string "tag" (Messages.tag m) f.tag;
            let decoded = Messages.decode f.payload in
            check_string "payload round-trip" (Messages.encode m)
              (Messages.encode decoded))
          msgs frames);
    Alcotest.test_case "decoder survives byte-at-a-time feeds" `Quick
      (fun () ->
        let msgs = all_messages () in
        let stream =
          String.concat ""
            (List.map
               (fun m ->
                 Frame.encode ~src:0 ~tag:(Messages.tag m) (Messages.encode m))
               msgs)
        in
        let dec = Frame.Decoder.create () in
        let got = ref 0 in
        String.iter
          (fun c ->
            Frame.Decoder.feed dec (String.make 1 c);
            got := !got + List.length (drain_frames dec []))
          stream;
        check_int "frames" (List.length msgs) !got;
        (* And the other extreme: the whole stream in one feed. *)
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec stream;
        check_int "batched" (List.length msgs)
          (List.length (drain_frames dec [])));
    Alcotest.test_case "incomplete frame stays pending" `Quick (fun () ->
        let full = Frame.encode ~src:1 ~tag:"lo:txs" "payload" in
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (String.sub full 0 (String.length full - 1));
        check_bool "not ready" true (Frame.Decoder.next dec = None);
        Frame.Decoder.feed dec (String.sub full (String.length full - 1) 1);
        match Frame.Decoder.next dec with
        | Some f -> check_string "tag" "lo:txs" f.tag
        | None -> Alcotest.fail "frame should complete");
    Alcotest.test_case "oversized frame is malformed, not allocated" `Quick
      (fun () ->
        let w = Lo_codec.Writer.create ~initial_size:4 () in
        Lo_codec.Writer.u32 w (Frame.max_body + 1);
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (Lo_codec.Writer.contents w);
        check_bool "raises" true
          (match Frame.Decoder.next dec with
          | exception Lo_codec.Reader.Malformed _ -> true
          | _ -> false));
    Alcotest.test_case "frame carries the version byte" `Quick (fun () ->
        let whole = Frame.encode ~src:5 ~tag:"lo:block" "body" in
        let f = Frame.decode_body (String.sub whole 4 (String.length whole - 4)) in
        check_int "version" Frame.version f.version;
        check_int "src" 5 f.src;
        check_string "tag" "lo:block" f.tag;
        check_string "payload" "body" f.payload);
  ]

let timer_tests =
  [
    Alcotest.test_case "due timers run in deadline then insertion order"
      `Quick (fun () ->
        let tw = Timer_wheel.create () in
        let order = ref [] in
        let note k () = order := k :: !order in
        Timer_wheel.schedule tw ~at:2.0 (note "b1");
        Timer_wheel.schedule tw ~at:1.0 (note "a");
        Timer_wheel.schedule tw ~at:2.0 (note "b2");
        Timer_wheel.schedule tw ~at:9.0 (note "late");
        check_int "ran" 3 (Timer_wheel.run_due tw ~now:2.0);
        check_bool "order" true (List.rev !order = [ "a"; "b1"; "b2" ]);
        check_int "left" 1 (Timer_wheel.pending tw);
        check_bool "next" true (Timer_wheel.next_due tw = Some 9.0));
    Alcotest.test_case "callbacks may schedule further due timers" `Quick
      (fun () ->
        let tw = Timer_wheel.create () in
        let hits = ref 0 in
        Timer_wheel.schedule tw ~at:1.0 (fun () ->
            incr hits;
            Timer_wheel.schedule tw ~at:1.5 (fun () -> incr hits));
        check_int "both ran" 2 (Timer_wheel.run_due tw ~now:2.0);
        check_int "hits" 2 !hits);
  ]

let mux_tests =
  [
    Alcotest.test_case "unknown tags are counted and traced, not dropped"
      `Quick (fun () ->
        let net = Lo_net.Network.create ~num_nodes:2 ~seed:7 () in
        let trace = Lo_obs.Trace.create () in
        Lo_net.Network.set_trace net (Some trace);
        let mux = Lo_net.Mux.create net in
        let seen = ref 0 in
        Lo_net.Mux.register mux 1 ~proto:"lo"
          (fun _net ~from:_ ~tag:_ _payload -> incr seen);
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"lo:txs" "known";
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"zz:ping" "stray";
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"zz:ping" "stray2";
        Lo_net.Network.run_until net 5.0;
        check_int "handled" 1 !seen;
        check_int "unknown" 2 (Lo_net.Mux.unknown_count mux);
        check_bool "by tag" true
          (Lo_net.Mux.unknown_tags mux = [ ("zz:ping", 2) ]);
        let dump = Lo_obs.Jsonl.to_string trace in
        let occurrences needle s =
          let n = String.length needle and m = String.length s in
          let count = ref 0 in
          for i = 0 to m - n do
            if String.sub s i n = needle then incr count
          done;
          !count
        in
        check_int "traced" 2 (occurrences "\"ev\":\"unknown_tag\"" dump));
  ]

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

module Reconnect = Lo_live.Reconnect
module Faulty_link = Lo_live.Faulty_link
module Resume = Lo_live.Resume
module Rng = Lo_net.Rng

let reconnect_tests =
  let p = Reconnect.default_policy in
  [
    Alcotest.test_case "delay is bounded and grows to the cap" `Quick
      (fun () ->
        let rng = Rng.create 42 in
        for attempts = 0 to 12 do
          for _rep = 1 to 50 do
            let d = Reconnect.delay p ~rng ~attempts in
            let raw =
              Float.min p.Reconnect.cap
                (p.Reconnect.base
                *. (p.Reconnect.factor ** float_of_int attempts))
            in
            check_bool "positive" true (d > 0.);
            check_bool "within jitter band" true
              (d >= raw *. (1. -. p.Reconnect.jitter) -. 1e-9
              && d <= raw *. (1. +. p.Reconnect.jitter) +. 1e-9)
          done
        done;
        (* Deep in the schedule the un-jittered delay must sit at the
           cap: a long-dead peer costs a bounded probe rate. *)
        let rng = Rng.create 7 in
        let d = Reconnect.delay p ~rng ~attempts:40 in
        check_bool "capped" true (d <= p.Reconnect.cap *. (1. +. p.Reconnect.jitter)));
    Alcotest.test_case "same rng seed, same schedule" `Quick (fun () ->
        let run seed =
          let rng = Rng.create seed in
          List.init 20 (fun attempts -> Reconnect.delay p ~rng ~attempts)
        in
        check_bool "deterministic" true (run 99 = run 99);
        check_bool "seed-sensitive" true (run 99 <> run 100));
    Alcotest.test_case "state machine: free first connect, armed retries"
      `Quick (fun () ->
        let rng = Rng.create 5 in
        let r = Reconnect.create ~rng () in
        check_bool "first connect is free" true (Reconnect.ready r ~now:0.);
        Reconnect.failed r ~now:0.;
        check_int "one failure" 1 (Reconnect.attempts r);
        check_bool "not ready immediately" false (Reconnect.ready r ~now:0.);
        let at1 = Reconnect.next_at r in
        check_bool "armed in the future" true (at1 > 0.);
        check_bool "ready at the deadline" true (Reconnect.ready r ~now:at1);
        Reconnect.failed r ~now:at1;
        Reconnect.failed r ~now:(Reconnect.next_at r);
        check_int "failures accumulate" 3 (Reconnect.attempts r);
        Reconnect.opened r;
        check_int "opened resets" 0 (Reconnect.attempts r);
        check_bool "ready again" true (Reconnect.ready r ~now:at1);
        Reconnect.lost r ~now:10.;
        (* A drop of an established connection re-arms at the base
           delay: probe soon, but never busy-loop. *)
        check_bool "lost arms a pause" false (Reconnect.ready r ~now:10.);
        check_bool "lost pause is short" true
          (Reconnect.next_at r -. 10.
          <= p.Reconnect.base *. (1. +. p.Reconnect.jitter) +. 1e-9));
  ]

let faulty_link_tests =
  [
    Alcotest.test_case "none passes everything" `Quick (fun () ->
        let rng = Rng.create 1 in
        for len = 0 to 100 do
          check_bool "pass" true
            (Faulty_link.decide Faulty_link.none rng ~frame_len:len
            = Faulty_link.Pass)
        done);
    Alcotest.test_case "rates act and parameters stay in range" `Quick
      (fun () ->
        let spec =
          {
            Faulty_link.drop = 0.2;
            dup = 0.2;
            delay = 0.2;
            delay_max = 0.05;
            truncate = 0.2;
            garble = 0.2;
          }
        in
        Faulty_link.validate spec;
        let rng = Rng.create 77 in
        let counts = Hashtbl.create 8 in
        let bump k =
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
        in
        for _ = 1 to 5_000 do
          (match Faulty_link.decide spec rng ~frame_len:64 with
          | Faulty_link.Pass -> bump "pass"
          | Faulty_link.Drop -> bump "drop"
          | Faulty_link.Duplicate -> bump "dup"
          | Faulty_link.Delay d ->
              check_bool "delay in (0, delay_max]" true
                (d > 0. && d <= spec.Faulty_link.delay_max);
              bump "delay"
          | Faulty_link.Truncate k ->
              check_bool "proper prefix" true (k >= 1 && k < 64);
              bump "trunc"
          | Faulty_link.Garble -> bump "garble")
        done;
        List.iter
          (fun k ->
            let c = Option.value ~default:0 (Hashtbl.find_opt counts k) in
            (* Each branch has rate 0.2 over 5000 draws; 600 is > 8
               sigma below the mean — only a broken threshold stack
               fails this. *)
            check_bool (k ^ " frequency sane") true (c > 600))
          [ "drop"; "dup"; "delay"; "trunc"; "garble" ]);
    Alcotest.test_case "tiny frames never truncate" `Quick (fun () ->
        let spec =
          {
            Faulty_link.drop = 0.;
            dup = 0.;
            delay = 0.;
            delay_max = 1.;
            truncate = 1.0;
            garble = 0.;
          }
        in
        let rng = Rng.create 3 in
        check_bool "len 1 passes" true
          (Faulty_link.decide spec rng ~frame_len:1 = Faulty_link.Pass);
        check_bool "len 2 truncates" true
          (match Faulty_link.decide spec rng ~frame_len:2 with
          | Faulty_link.Truncate 1 -> true
          | _ -> false));
    Alcotest.test_case "same seed, same decision stream" `Quick (fun () ->
        let spec =
          { Faulty_link.none with drop = 0.1; dup = 0.1; garble = 0.1 }
        in
        let run seed =
          let rng = Rng.create seed in
          List.init 200 (fun i ->
              Faulty_link.decide spec rng ~frame_len:(8 + i))
        in
        check_bool "deterministic" true (run 11 = run 11);
        check_bool "seed-sensitive" true (run 11 <> run 12));
    Alcotest.test_case "validate rejects nonsense specs" `Quick (fun () ->
        let bad spec =
          match Faulty_link.validate spec with
          | exception Invalid_argument _ -> true
          | () -> false
        in
        check_bool "negative rate" true
          (bad { Faulty_link.none with drop = -0.1 });
        check_bool "sum above one" true
          (bad { Faulty_link.none with drop = 0.6; dup = 0.6 });
        check_bool "delay without bound" true
          (bad { Faulty_link.none with delay = 0.1; delay_max = 0. });
        check_bool "default chaos link is valid" true
          (match
             Faulty_link.validate Lo_live.Cluster.default_chaos.Lo_live.Cluster.link
           with
          | () -> true
          | exception _ -> false));
  ]

(* The decoder faces the open network (and the chaos wrapper's
   truncations), so its contract is: any byte stream either yields
   frames, stays pending, or raises [Reader.Malformed] — never any
   other exception — and [reset] restores it to a working state. *)
let decoder_fuzz_tests =
  let feed_chunked dec s chunk_sizes =
    let n = String.length s in
    let off = ref 0 in
    let sizes = ref chunk_sizes in
    let frames = ref 0 in
    let outcome = ref `Clean in
    while !off < n && !outcome = `Clean do
      let k =
        match !sizes with
        | [] -> n - !off
        | s :: rest ->
            sizes := rest;
            min (max 1 s) (n - !off)
      in
      Frame.Decoder.feed dec (String.sub s !off k);
      off := !off + k;
      match
        let rec drain () =
          match Frame.Decoder.next dec with
          | Some _ ->
              incr frames;
              drain ()
          | None -> ()
        in
        drain ()
      with
      | () -> ()
      | exception Lo_codec.Reader.Malformed _ -> outcome := `Malformed
      | exception e -> outcome := `Other e
    done;
    (!outcome, !frames)
  in
  let gen =
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range '\000' '\255') (int_range 0 400))
        (list_size (int_bound 20) (int_range 1 37)))
  in
  [
    qtest ~count:500 "adversarial bytes never escape Malformed" gen
      (fun (garbage, chunks) ->
        let dec = Frame.Decoder.create () in
        match feed_chunked dec garbage chunks with
        | `Other e, _ ->
            QCheck2.Test.fail_reportf "escaped exception: %s"
              (Printexc.to_string e)
        | (`Clean | `Malformed), _ -> true);
    qtest ~count:300 "truncated valid streams stay pending, then reset resyncs"
      QCheck2.Gen.(pair (int_range 0 11) (int_bound 1000))
      (fun (msg_idx, cut_salt) ->
        let msgs = all_messages () in
        let m = List.nth msgs (msg_idx mod List.length msgs) in
        let whole =
          Frame.encode ~src:1 ~tag:(Messages.tag m) (Messages.encode m)
        in
        let cut = 1 + (cut_salt mod (String.length whole - 1)) in
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (String.sub whole 0 cut);
        let pending =
          match Frame.Decoder.next dec with
          | None -> true
          | Some _ -> false
          | exception Lo_codec.Reader.Malformed _ -> false
          | exception e ->
              QCheck2.Test.fail_reportf "escaped exception: %s"
                (Printexc.to_string e)
        in
        (* A prefix of a valid frame is never an error: the decoder
           must wait for the rest (chaos truncation closes the
           connection; the stream never resumes mid-frame). *)
        if not pending then
          QCheck2.Test.fail_report "prefix rejected instead of pending";
        (* After abandoning the half-frame, reset must yield a decoder
           that handles a fresh stream. *)
        Frame.Decoder.reset dec;
        Frame.Decoder.feed dec whole;
        (match Frame.Decoder.next dec with
        | Some f -> f.Frame.tag = Messages.tag m
        | None -> false));
    Alcotest.test_case "reset recovers after a malformed stream" `Quick
      (fun () ->
        let dec = Frame.Decoder.create () in
        let w = Lo_codec.Writer.create ~initial_size:4 () in
        Lo_codec.Writer.u32 w (Frame.max_body + 1);
        Frame.Decoder.feed dec (Lo_codec.Writer.contents w);
        check_bool "malformed" true
          (match Frame.Decoder.next dec with
          | exception Lo_codec.Reader.Malformed _ -> true
          | _ -> false);
        Frame.Decoder.reset dec;
        check_int "buffer cleared" 0 (Frame.Decoder.buffered dec);
        let whole = Frame.encode ~src:2 ~tag:"lo:txs" "after-reset" in
        Frame.Decoder.feed dec whole;
        match Frame.Decoder.next dec with
        | Some f -> check_string "decodes again" "lo:txs" f.Frame.tag
        | None -> Alcotest.fail "decoder did not recover");
  ]

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let resume_tests =
  let line at ev = Lo_obs.Jsonl.line { Lo_obs.Trace.at; ev } in
  [
    Alcotest.test_case "a kill-torn trailing line is tolerated, corruption is not"
      `Quick (fun () ->
        let dir = Filename.temp_file "lo-resume" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let good = line 1.0 (Lo_obs.Event.Crash { node = 0 }) in
        let p1 = Filename.concat dir "torn.jsonl" in
        Out_channel.with_open_text p1 (fun oc ->
            output_string oc (good ^ "\n");
            (* SIGKILL mid-append: an unterminated prefix of a line. *)
            output_string oc (String.sub good 0 (String.length good / 2)));
        (match Resume.parse_lenient ~path:p1 with
        | Ok (es, cut) ->
            check_int "events kept" 1 (List.length es);
            check_int "one torn line" 1 cut
        | Error m -> Alcotest.fail m);
        let p2 = Filename.concat dir "corrupt.jsonl" in
        write_lines p2 [ good; "{ not json"; good ];
        check_bool "mid-file corruption is an error" true
          (match Resume.parse_lenient ~path:p2 with
          | Error _ -> true
          | Ok _ -> false));
    Alcotest.test_case "scan rebuilds bundles, open spans and suspects"
      `Quick (fun () ->
        let dir = Filename.temp_file "lo-resume" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let p = Filename.concat dir "node-2.0.jsonl" in
        write_lines p
          [
            line 0.1
              (Lo_obs.Event.Commit_append
                 { node = 2; seq = 1; count = 2; ids = [ 4; 9 ] });
            line 0.2 (Lo_obs.Event.Span_begin { node = 2; key = "recon:5" });
            line 0.3 (Lo_obs.Event.Span_begin { node = 2; key = "recon:1" });
            line 0.35
              (Lo_obs.Event.Span_end { node = 2; key = "recon:1"; ok = true });
            line 0.4 (Lo_obs.Event.Suspect { node = 2; peer = 5 });
            line 0.45 (Lo_obs.Event.Suspect { node = 2; peer = 6 });
            line 0.5 (Lo_obs.Event.Clear { node = 2; peer = 6 });
            line 0.6
              (Lo_obs.Event.Commit_append
                 { node = 2; seq = 2; count = 3; ids = [ 13 ] });
            (* Another node's events must not leak into node 2's state. *)
            line 0.7 (Lo_obs.Event.Suspect { node = 3; peer = 2 });
          ];
        (match Resume.scan ~node:2 [ p ] with
        | Ok r ->
            check_bool "bundles" true
              (r.Resume.bundles = [ [ 4; 9 ]; [ 13 ] ]);
            check_int "last seq" 2 r.Resume.last_seq;
            check_bool "open spans" true (r.Resume.open_spans = [ "recon:5" ]);
            check_bool "suspects" true (r.Resume.suspects = [ 5 ])
        | Error m -> Alcotest.fail m);
        (* A gapped WAL must refuse to resume: re-appending over a lost
           bundle would re-sign history, i.e. equivocate. *)
        let pg = Filename.concat dir "gap.jsonl" in
        write_lines pg
          [
            line 0.1
              (Lo_obs.Event.Commit_append
                 { node = 2; seq = 1; count = 1; ids = [ 4 ] });
            line 0.2
              (Lo_obs.Event.Commit_append
                 { node = 2; seq = 3; count = 2; ids = [ 5 ] });
          ];
        check_bool "commit gap refused" true
          (match Resume.scan ~node:2 [ pg ] with
          | Error _ -> true
          | Ok _ -> false));
  ]

(* End-to-end chaos: real forks, real SIGKILLs, real sockets. Small
   clusters and short runs keep the suite fast; the audit over the
   merged per-incarnation stream is the actual assertion. *)
let cluster_tests =
  let tmp_dir tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lo-test-%s-%d" tag (Unix.getpid ()))
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d
  in
  [
    Alcotest.test_case "duplicated frames are absorbed by protocol idempotency"
      `Slow (fun () ->
        let chaos =
          {
            Lo_live.Cluster.default_chaos with
            kills = 0;
            link = { Lo_live.Faulty_link.none with dup = 0.4 };
          }
        in
        let r =
          Lo_live.Cluster.run ~out_dir:(tmp_dir "dup") ~base_port:7801
            ~chaos ~n:3 ~tps:30. ~duration:2.5 ~seed:5 ()
        in
        if not (Lo_live.Cluster.ok r) then
          Alcotest.fail (Lo_live.Cluster.summary r);
        check_int "no kills" 0 (List.length r.Lo_live.Cluster.induced_kills);
        check_int "no restarts" 0 r.Lo_live.Cluster.restarts;
        check_bool "traffic flowed" true (r.Lo_live.Cluster.frames > 0));
    Alcotest.test_case
      "kill and respawn leaves an audit-clean merged trace (two seeds)"
      `Slow (fun () ->
        List.iteri
          (fun i seed ->
            let chaos =
              {
                Lo_live.Cluster.default_chaos with
                kills = 1;
                mean_down = 0.8;
                link = Lo_live.Faulty_link.none;
              }
            in
            let r =
              Lo_live.Cluster.run
                ~out_dir:(tmp_dir (Printf.sprintf "kill-%d" seed))
                ~base_port:(7841 + (40 * i))
                ~chaos ~n:4 ~tps:24. ~duration:3.0 ~seed ()
            in
            if not (Lo_live.Cluster.ok r) then
              Alcotest.fail (Lo_live.Cluster.summary r);
            check_int "one induced kill" 1
              (List.length r.Lo_live.Cluster.induced_kills);
            check_bool "victim restarted" true
              (r.Lo_live.Cluster.restarts >= 1);
            check_bool "peers reconnected" true
              (r.Lo_live.Cluster.reconnects > 0);
            check_int "no honest exposure" 0 r.Lo_live.Cluster.exposures)
          [ 3; 11 ]);
  ]

(* ---------------- Batched wire path ---------------- *)

(* [encode_into]/[next_view] are the pipelined fast paths of the same
   wire format: byte-identical frames out, field-identical frames in,
   under any chunking. *)
let batch_wire_tests =
  let materialize (v : Frame.Decoder.view) =
    let payload =
      Lo_codec.Reader.fixed v.Frame.Decoder.v_payload
        (Lo_codec.Reader.remaining v.Frame.Decoder.v_payload)
    in
    {
      Frame.version = v.Frame.Decoder.v_version;
      src = v.Frame.Decoder.v_src;
      tag = v.Frame.Decoder.v_tag;
      payload;
    }
  in
  let frame_gen =
    QCheck2.Gen.(
      triple (int_bound 100_000)
        (string_size (int_bound 12))
        (string_size ~gen:(char_range '\000' '\255') (int_bound 200)))
  in
  [
    qtest "encode_into = encode, concatenated"
      QCheck2.Gen.(list_size (int_bound 8) frame_gen)
      (fun frames ->
        let w = Lo_codec.Writer.create () in
        List.iter
          (fun (src, tag, payload) -> Frame.encode_into w ~src ~tag payload)
          frames;
        Lo_codec.Writer.contents w
        = String.concat ""
            (List.map
               (fun (src, tag, payload) -> Frame.encode ~src ~tag payload)
               frames));
    qtest "next_view = next under random chunking"
      QCheck2.Gen.(
        pair
          (list_size (int_bound 6) frame_gen)
          (list_size (int_bound 20) (int_range 1 37)))
      (fun (frames, chunks) ->
        let stream =
          String.concat ""
            (List.map
               (fun (src, tag, payload) -> Frame.encode ~src ~tag payload)
               frames)
        in
        let collect next dec =
          let out = ref [] in
          let off = ref 0 and sizes = ref chunks in
          let n = String.length stream in
          while !off < n do
            let k =
              match !sizes with
              | [] -> n - !off
              | s :: rest ->
                  sizes := rest;
                  min s (n - !off)
            in
            Frame.Decoder.feed dec (String.sub stream !off k);
            off := !off + k;
            let rec drain () =
              match next dec with
              | Some f ->
                  out := f :: !out;
                  drain ()
              | None -> ()
            in
            drain ()
          done;
          List.rev !out
        in
        let via_next = collect Frame.Decoder.next (Frame.Decoder.create ()) in
        let via_view =
          collect
            (fun dec -> Option.map materialize (Frame.Decoder.next_view dec))
            (Frame.Decoder.create ())
        in
        via_next = via_view);
    qtest "feed_bytes = feed"
      QCheck2.Gen.(list_size (int_bound 4) frame_gen)
      (fun frames ->
        let stream =
          String.concat ""
            (List.map
               (fun (src, tag, payload) -> Frame.encode ~src ~tag payload)
               frames)
        in
        let d1 = Frame.Decoder.create () and d2 = Frame.Decoder.create () in
        Frame.Decoder.feed d1 stream;
        let b = Bytes.of_string ("??" ^ stream) in
        Frame.Decoder.feed_bytes d2 b 2 (String.length stream);
        let rec drain dec acc =
          match Frame.Decoder.next dec with
          | Some f -> drain dec (f :: acc)
          | None -> List.rev acc
        in
        drain d1 [] = drain d2 []);
    Alcotest.test_case "view survives handling before the next feed" `Quick
      (fun () ->
        (* Two frames in one buffered chunk: the first view must stay
           readable while consumed, and advancing to the second frame
           is what invalidates it — the documented lifetime. *)
        let f1 = Frame.encode ~src:1 ~tag:"lo:a" "first-payload" in
        let f2 = Frame.encode ~src:2 ~tag:"lo:b" "second" in
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (f1 ^ f2);
        (match Frame.Decoder.next_view dec with
        | Some v ->
            check_string "payload" "first-payload"
              (Lo_codec.Reader.fixed v.Frame.Decoder.v_payload 13)
        | None -> Alcotest.fail "first frame should be ready");
        match Frame.Decoder.next_view dec with
        | Some v ->
            check_int "src" 2 v.Frame.Decoder.v_src;
            check_string "tag" "lo:b" v.Frame.Decoder.v_tag
        | None -> Alcotest.fail "second frame should be ready");
    qtest ~count:300 "next_view adversarial bytes never escape Malformed"
      QCheck2.Gen.(
        pair
          (string_size ~gen:(char_range '\000' '\255') (int_range 0 400))
          (list_size (int_bound 20) (int_range 1 37)))
      (fun (garbage, chunks) ->
        let dec = Frame.Decoder.create () in
        let off = ref 0 and sizes = ref chunks in
        let n = String.length garbage in
        let ok = ref true in
        (try
           while !off < n do
             let k =
               match !sizes with
               | [] -> n - !off
               | s :: rest ->
                   sizes := rest;
                   min s (n - !off)
             in
             Frame.Decoder.feed dec (String.sub garbage !off k);
             off := !off + k;
             let rec drain () =
               match Frame.Decoder.next_view dec with
               | Some _ -> drain ()
               | None -> ()
             in
             drain ()
           done
         with
        | Lo_codec.Reader.Malformed _ -> ()
        | _ -> ok := false);
        !ok);
  ]

let () =
  Alcotest.run "lo_live"
    [
      ("frame", frame_tests);
      ("batch-wire", batch_wire_tests);
      ("timer_wheel", timer_tests);
      ("mux", mux_tests);
      ("reconnect", reconnect_tests);
      ("faulty_link", faulty_link_tests);
      ("decoder_fuzz", decoder_fuzz_tests);
      ("resume", resume_tests);
      ("cluster_chaos", cluster_tests);
    ]
