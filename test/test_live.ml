(* The live transport backend: length-prefixed framing over real
   sockets (partial reads, short writes), the timer wheel, and the
   mux's unknown-tag accounting. *)

module Frame = Lo_live.Frame
module Timer_wheel = Lo_live.Timer_wheel
module Signer = Lo_crypto.Signer
open Lo_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let scheme = Signer.simulation ()
let alice = Signer.make scheme ~seed:"live-alice"
let bob = Signer.make scheme ~seed:"live-bob"

let mk_tx payload = Tx.create ~signer:alice ~fee:7 ~created_at:1.5 ~payload

(* One instance of every wire constructor — the whole live protocol
   surface. If a constructor is added, the length check below fails and
   this list must grow with it. *)
let all_messages () =
  let log = Commitment.Log.create ~signer:alice () in
  let d0 = Commitment.Log.current_digest log in
  ignore (Commitment.Log.append log ~source:None ~ids:[ 11; 22 ]);
  let d1 = Commitment.Log.current_digest log in
  let light = Commitment.Log.current_digest_light log in
  let tx = mk_tx "pay carol 5" in
  let tx2 = mk_tx "swap 1 eth" in
  let block =
    Block.create ~signer:alice ~height:1 ~prev_hash:Block.genesis_hash
      ~start_seq:0 ~commit_seq:1 ~fee_threshold:0
      ~txids:[ tx.Tx.id ]
      ~bundle_sizes:[ 1 ] ~appendix:0 ~omissions:[] ~timestamp:5.0
  in
  [
    Messages.Submit tx;
    Messages.Submit_ack
      {
        txid = tx.Tx.id;
        ack_signature = String.make Signer.signature_size 's';
      };
    Messages.Commit_request
      { digest = d1; delta = [ 1; 2 ]; want = [ 3 ]; appended = [ 11; 22 ] };
    Messages.Commit_response
      { digest = d1; want = []; delta = [ 9 ]; appended = [] };
    Messages.Tx_batch [ tx; tx2 ];
    Messages.Digest_share light;
    Messages.Digest_request { owner = Signer.id alice; seq = 1 };
    Messages.Digest_reply [ d0; d1 ];
    Messages.Suspicion_note
      {
        suspect = Signer.id alice;
        reporter = Signer.id bob;
        last_digest = Some light;
        reason = "timeout";
      };
    Messages.Suspicion_withdraw
      { suspect = Signer.id alice; reporter = Signer.id bob };
    Messages.Exposure_note
      (Evidence.Conflicting_digests { older = d0; newer = d1 });
    Messages.Block_announce block;
  ]

(* Deliberately tiny writes: every frame crosses the socket in many
   pieces, exercising the receiver's reassembly. *)
let write_chunked fd s chunk =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    let len = min chunk (n - !off) in
    let w = Unix.write fd b !off len in
    off := !off + w
  done

let drain_frames dec acc =
  let rec go acc =
    match Frame.Decoder.next dec with
    | Some f -> go (f :: acc)
    | None -> acc
  in
  go acc

let read_frames fd ~expected =
  let dec = Frame.Decoder.create () in
  (* A 7-byte read buffer guarantees partial reads of both the length
     prefix and the body. *)
  let buf = Bytes.create 7 in
  let frames = ref [] in
  while List.length !frames < expected do
    let k = Unix.read fd buf 0 (Bytes.length buf) in
    if k = 0 then failwith "peer closed early";
    Frame.Decoder.feed dec (Bytes.sub_string buf 0 k);
    frames := drain_frames dec !frames
  done;
  check_int "no trailing garbage" 0 (Frame.Decoder.buffered dec);
  List.rev !frames

let frame_tests =
  [
    Alcotest.test_case "all 12 wire constructors round-trip over a socket pair"
      `Quick (fun () ->
        let msgs = all_messages () in
        check_int "protocol surface" 12 (List.length msgs);
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (* Write/read per frame: a single-threaded test must not fill
           the socket buffer (tiny writes charge a whole skb each). *)
        let frames =
          List.concat_map
            (fun m ->
              write_chunked a
                (Frame.encode ~src:3 ~tag:(Messages.tag m) (Messages.encode m))
                64;
              read_frames b ~expected:1)
            msgs
        in
        Unix.close a;
        Unix.close b;
        List.iter2
          (fun m (f : Frame.frame) ->
            check_int "version" Frame.version f.version;
            check_int "src" 3 f.src;
            check_string "tag" (Messages.tag m) f.tag;
            let decoded = Messages.decode f.payload in
            check_string "payload round-trip" (Messages.encode m)
              (Messages.encode decoded))
          msgs frames);
    Alcotest.test_case "decoder survives byte-at-a-time feeds" `Quick
      (fun () ->
        let msgs = all_messages () in
        let stream =
          String.concat ""
            (List.map
               (fun m ->
                 Frame.encode ~src:0 ~tag:(Messages.tag m) (Messages.encode m))
               msgs)
        in
        let dec = Frame.Decoder.create () in
        let got = ref 0 in
        String.iter
          (fun c ->
            Frame.Decoder.feed dec (String.make 1 c);
            got := !got + List.length (drain_frames dec []))
          stream;
        check_int "frames" (List.length msgs) !got;
        (* And the other extreme: the whole stream in one feed. *)
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec stream;
        check_int "batched" (List.length msgs)
          (List.length (drain_frames dec [])));
    Alcotest.test_case "incomplete frame stays pending" `Quick (fun () ->
        let full = Frame.encode ~src:1 ~tag:"lo:txs" "payload" in
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (String.sub full 0 (String.length full - 1));
        check_bool "not ready" true (Frame.Decoder.next dec = None);
        Frame.Decoder.feed dec (String.sub full (String.length full - 1) 1);
        match Frame.Decoder.next dec with
        | Some f -> check_string "tag" "lo:txs" f.tag
        | None -> Alcotest.fail "frame should complete");
    Alcotest.test_case "oversized frame is malformed, not allocated" `Quick
      (fun () ->
        let w = Lo_codec.Writer.create ~initial_size:4 () in
        Lo_codec.Writer.u32 w (Frame.max_body + 1);
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (Lo_codec.Writer.contents w);
        check_bool "raises" true
          (match Frame.Decoder.next dec with
          | exception Lo_codec.Reader.Malformed _ -> true
          | _ -> false));
    Alcotest.test_case "frame carries the version byte" `Quick (fun () ->
        let whole = Frame.encode ~src:5 ~tag:"lo:block" "body" in
        let f = Frame.decode_body (String.sub whole 4 (String.length whole - 4)) in
        check_int "version" Frame.version f.version;
        check_int "src" 5 f.src;
        check_string "tag" "lo:block" f.tag;
        check_string "payload" "body" f.payload);
  ]

let timer_tests =
  [
    Alcotest.test_case "due timers run in deadline then insertion order"
      `Quick (fun () ->
        let tw = Timer_wheel.create () in
        let order = ref [] in
        let note k () = order := k :: !order in
        Timer_wheel.schedule tw ~at:2.0 (note "b1");
        Timer_wheel.schedule tw ~at:1.0 (note "a");
        Timer_wheel.schedule tw ~at:2.0 (note "b2");
        Timer_wheel.schedule tw ~at:9.0 (note "late");
        check_int "ran" 3 (Timer_wheel.run_due tw ~now:2.0);
        check_bool "order" true (List.rev !order = [ "a"; "b1"; "b2" ]);
        check_int "left" 1 (Timer_wheel.pending tw);
        check_bool "next" true (Timer_wheel.next_due tw = Some 9.0));
    Alcotest.test_case "callbacks may schedule further due timers" `Quick
      (fun () ->
        let tw = Timer_wheel.create () in
        let hits = ref 0 in
        Timer_wheel.schedule tw ~at:1.0 (fun () ->
            incr hits;
            Timer_wheel.schedule tw ~at:1.5 (fun () -> incr hits));
        check_int "both ran" 2 (Timer_wheel.run_due tw ~now:2.0);
        check_int "hits" 2 !hits);
  ]

let mux_tests =
  [
    Alcotest.test_case "unknown tags are counted and traced, not dropped"
      `Quick (fun () ->
        let net = Lo_net.Network.create ~num_nodes:2 ~seed:7 () in
        let trace = Lo_obs.Trace.create () in
        Lo_net.Network.set_trace net (Some trace);
        let mux = Lo_net.Mux.create net in
        let seen = ref 0 in
        Lo_net.Mux.register mux 1 ~proto:"lo"
          (fun _net ~from:_ ~tag:_ _payload -> incr seen);
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"lo:txs" "known";
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"zz:ping" "stray";
        Lo_net.Network.send net ~src:0 ~dst:1 ~tag:"zz:ping" "stray2";
        Lo_net.Network.run_until net 5.0;
        check_int "handled" 1 !seen;
        check_int "unknown" 2 (Lo_net.Mux.unknown_count mux);
        check_bool "by tag" true
          (Lo_net.Mux.unknown_tags mux = [ ("zz:ping", 2) ]);
        let dump = Lo_obs.Jsonl.to_string trace in
        let occurrences needle s =
          let n = String.length needle and m = String.length s in
          let count = ref 0 in
          for i = 0 to m - n do
            if String.sub s i n = needle then incr count
          done;
          !count
        in
        check_int "traced" 2 (occurrences "\"ev\":\"unknown_tag\"" dump));
  ]

let () =
  Alcotest.run "lo_live"
    [
      ("frame", frame_tests); ("timer_wheel", timer_tests); ("mux", mux_tests);
    ]
