(* Tests for the conformance harness itself: generator determinism,
   repro JSON round-trips, oracle verdicts on known-good and known-bad
   runs, mutation sensitivity, and shrinking to a minimal failing
   scenario whose replay fails identically. *)

open Lo_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small, fast, fault-free baseline everything below perturbs. *)
let base : Scenario.t =
  {
    seed = 420;
    nodes = 6;
    rate = 3.;
    duration = 4.;
    drain = 28.;
    loss = 0.;
    block_interval = 3.;
    rotate_period = 0.;
    timeout = 0.6;
    retries = 2;
    backoff = 2.0;
    jitter = 0.2;
    reconcile_period = 1.0;
    digest_period = 2.0;
    adversaries = [];
    churn = 0.;
    partition = 0.;
    burst = 0.;
    spikes = false;
    degrades = false;
    mutation = "";
  }

let scenario_tests =
  [
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        for index = 0 to 19 do
          check_bool "equal" true
            (Scenario.generate ~seed:7 ~index
            = Scenario.generate ~seed:7 ~index)
        done);
    Alcotest.test_case "distinct indices give distinct scenarios" `Quick
      (fun () ->
        let distinct = Hashtbl.create 32 in
        for index = 0 to 19 do
          Hashtbl.replace distinct
            (Scenario.to_json_string (Scenario.generate ~seed:7 ~index))
            ()
        done;
        check_bool "mostly distinct" true (Hashtbl.length distinct >= 19));
    qtest "json round-trip is exact"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 200))
      (fun (seed, index) ->
        let s = Scenario.generate ~seed ~index in
        Scenario.of_json_string (Scenario.to_json_string s) = Ok s);
    Alcotest.test_case "round-trip covers mutation and adversaries" `Quick
      (fun () ->
        let s =
          {
            base with
            adversaries =
              [
                { Scenario.node = 1; kind = "silent-censor" };
                { Scenario.node = 4; kind = "block-reorderer" };
              ];
            mutation = "inject";
          }
        in
        check_bool "ok" true
          (Scenario.of_json_string (Scenario.to_json_string s) = Ok s));
    Alcotest.test_case "malformed json is an error" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Scenario.of_json_string bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" bad)
          [
            "";
            "{";
            "{}";
            "{\"v\":2}";
            "not json at all";
            "{\"v\":1,\"seed\":\"oops\"}";
          ]);
    Alcotest.test_case "shrink candidates are strictly simpler" `Quick
      (fun () ->
        let s =
          {
            base with
            churn = 0.1;
            partition = 1.5;
            spikes = true;
            adversaries = [ { Scenario.node = 2; kind = "equivocator" } ];
          }
        in
        let weight (c : Scenario.t) =
          c.nodes
          + List.length c.adversaries
          + (if c.churn > 0. then 1 else 0)
          + (if c.partition > 0. then 1 else 0)
          + (if c.burst > 0. then 1 else 0)
          + (if c.spikes then 1 else 0)
          + (if c.degrades then 1 else 0)
          + (if c.loss > 0. then 1 else 0)
          + (if c.rotate_period > 0. then 1 else 0)
          + (if c.block_interval > 0. then 1 else 0)
          + int_of_float (c.duration +. c.rate)
        in
        List.iter
          (fun c -> check_bool "simpler" true (weight c < weight s))
          (Scenario.shrink_candidates s));
    Alcotest.test_case "shrinking never drops the mutation" `Quick (fun () ->
        let s =
          Harness.with_mutation { base with churn = 0.1; spikes = true }
            "shuffle-skip"
        in
        List.iter
          (fun (c : Scenario.t) ->
            check_str "mutation kept" "shuffle-skip" c.mutation;
            check_bool "blocks kept" true (c.block_interval > 0.))
          (Scenario.shrink_candidates s));
  ]

let harness_tests =
  [
    Alcotest.test_case "clean scenario passes every oracle" `Quick (fun () ->
        let o = Harness.execute base in
        check_str "no failures" ""
          (Oracle.failures_to_string o.verdict.Oracle.failures);
        check_bool "events flowed" true (o.events > 100));
    Alcotest.test_case "execution is deterministic" `Quick (fun () ->
        let a = Harness.execute base and b = Harness.execute base in
        check_int "same events" a.events b.events;
        check_bool "same verdict" true
          (a.verdict.Oracle.failures = b.verdict.Oracle.failures
          && a.verdict.Oracle.detections = b.verdict.Oracle.detections));
    Alcotest.test_case "silent censor is detected, not failed" `Quick
      (fun () ->
        let s =
          {
            base with
            adversaries = [ { Scenario.node = 2; kind = "silent-censor" } ];
          }
        in
        let o = Harness.execute s in
        check_str "no failures" ""
          (Oracle.failures_to_string o.verdict.Oracle.failures);
        check_bool "detected" true
          (List.exists
             (fun d -> d.Oracle.adversary = 2)
             o.verdict.Oracle.detections));
    Alcotest.test_case "unknown mutation rejected" `Quick (fun () ->
        match Harness.with_mutation base "no-such-rule" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "accepted bogus mutation");
    Alcotest.test_case "mutant is hidden from ground truth" `Quick (fun () ->
        let s = Harness.with_mutation base "inject" in
        let o = Harness.execute s in
        check_bool "mutant assigned" true (o.mutant <> None);
        check_bool "caught red-handed" true (Harness.failed o);
        check_bool "fired observably" true (o.mutant_observable > 0));
    Alcotest.test_case "silent mutation caught via liveness" `Quick (fun () ->
        let o = Harness.execute (Harness.with_mutation base "silent") in
        check_bool "caught" true (Harness.failed o));
  ]

let shrink_tests =
  [
    Alcotest.test_case "passing scenario shrinks to itself" `Quick (fun () ->
        let minimal, _ = Harness.shrink ~budget:3 base in
        check_bool "unchanged" true (minimal = base));
    Alcotest.test_case "failure shrinks to minimal failing repro" `Slow
      (fun () ->
        (* Start from a deliberately noisy failing scenario: hidden
           mutant plus unrelated faults and an unrelated adversary. *)
        let noisy =
          Harness.with_mutation
            {
              base with
              nodes = 10;
              churn = 0.1;
              partition = 1.5;
              burst = 0.2;
              adversaries = [ { Scenario.node = 1; kind = "tx-censor" } ];
            }
            "inject"
        in
        check_bool "noisy fails" true (Harness.failed (Harness.execute noisy));
        let minimal, runs = Harness.shrink noisy in
        check_bool "spent runs" true (runs > 0);
        (* All the noise must be gone: the shrinker strips faults and
           the unrelated adversary before touching size. *)
        check_bool "faults stripped" true
          (minimal.Scenario.churn = 0.
          && minimal.Scenario.partition = 0.
          && minimal.Scenario.burst = 0.);
        check_int "adversaries stripped" 0
          (List.length minimal.Scenario.adversaries);
        check_str "mutation survives" "inject" minimal.Scenario.mutation;
        (* Replay of the minimal repro fails identically: same failure
           strings from a fresh execution, and the JSON round-trip does
           not disturb that. *)
        let v1 = Harness.execute minimal and v2 = Harness.execute minimal in
        check_bool "still fails" true (Harness.failed v1);
        check_str "identical failures"
          (Oracle.failures_to_string v1.verdict.Oracle.failures)
          (Oracle.failures_to_string v2.verdict.Oracle.failures);
        let reparsed =
          match Scenario.of_json_string (Scenario.to_json_string minimal) with
          | Ok s -> s
          | Error e -> Alcotest.failf "repro does not parse: %s" e
        in
        let v3 = Harness.execute reparsed in
        check_str "replay fails identically"
          (Oracle.failures_to_string v1.verdict.Oracle.failures)
          (Oracle.failures_to_string v3.verdict.Oracle.failures));
    Alcotest.test_case "repro file io round-trips" `Quick (fun () ->
        let path = Filename.temp_file "lo-check" ".json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let s = Harness.with_mutation base "omit" in
            Harness.write_repro ~path s;
            match Harness.read_repro ~path with
            | Ok s' -> check_bool "equal" true (s = s')
            | Error e -> Alcotest.failf "read failed: %s" e));
  ]

let () =
  Alcotest.run "lo_check"
    [
      ("scenario", scenario_tests);
      ("harness", harness_tests);
      ("shrink", shrink_tests);
    ]
