(* Tests for lo_sketch: GF(2^m) field laws, polynomial arithmetic,
   Berlekamp–Massey, PinSketch encode/decode semantics, and the
   partitioned reconciliation of Sec. 6.5. *)

open Lo_sketch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fields = [ ("gf8", Gf2m.gf8); ("gf16", Gf2m.gf16); ("gf32", Gf2m.gf32) ]

let elt_gen f = QCheck2.Gen.int_range 0 (Gf2m.mask f)
let nonzero_gen f = QCheck2.Gen.int_range 1 (Gf2m.mask f)

let field_tests =
  List.concat_map
    (fun (name, f) ->
      [
        qtest (name ^ ": mul commutes") QCheck2.Gen.(pair (elt_gen f) (elt_gen f))
          (fun (a, b) -> Gf2m.mul f a b = Gf2m.mul f b a);
        qtest (name ^ ": mul associates")
          QCheck2.Gen.(triple (elt_gen f) (elt_gen f) (elt_gen f))
          (fun (a, b, c) ->
            Gf2m.mul f (Gf2m.mul f a b) c = Gf2m.mul f a (Gf2m.mul f b c));
        qtest (name ^ ": distributive")
          QCheck2.Gen.(triple (elt_gen f) (elt_gen f) (elt_gen f))
          (fun (a, b, c) ->
            Gf2m.mul f a (b lxor c) = Gf2m.mul f a b lxor Gf2m.mul f a c);
        qtest (name ^ ": one is neutral") (elt_gen f) (fun a -> Gf2m.mul f a 1 = a);
        qtest (name ^ ": zero annihilates") (elt_gen f) (fun a -> Gf2m.mul f a 0 = 0);
        qtest (name ^ ": inverse") (nonzero_gen f) (fun a ->
            Gf2m.mul f a (Gf2m.inv f a) = 1);
        qtest (name ^ ": sq = mul self") (elt_gen f) (fun a ->
            Gf2m.sq f a = Gf2m.mul f a a);
        qtest (name ^ ": frobenius is additive")
          QCheck2.Gen.(pair (elt_gen f) (elt_gen f))
          (fun (a, b) -> Gf2m.sq f (a lxor b) = Gf2m.sq f a lxor Gf2m.sq f b);
        qtest (name ^ ": order divides 2^m - 1") (nonzero_gen f) (fun a ->
            Gf2m.pow f a (Gf2m.order_minus_one f) = 1);
        qtest (name ^ ": trace in {0,1}") (elt_gen f) (fun a ->
            let t = Gf2m.trace f a in
            t = 0 || t = 1);
        qtest (name ^ ": trace is additive")
          QCheck2.Gen.(pair (elt_gen f) (elt_gen f))
          (fun (a, b) -> Gf2m.trace f (a lxor b) = Gf2m.trace f a lxor Gf2m.trace f b);
        (* [mul] takes the log/antilog fast path for m <= 16; it must
           agree with the windowed reference multiplier everywhere. *)
        qtest (name ^ ": mul = mul_generic")
          QCheck2.Gen.(pair (elt_gen f) (elt_gen f))
          (fun (a, b) -> Gf2m.mul f a b = Gf2m.mul_generic f a b);
        qtest (name ^ ": mul_by = mul")
          QCheck2.Gen.(pair (elt_gen f) (elt_gen f))
          (fun (a, b) -> (Gf2m.mul_by f b) a = Gf2m.mul f a b);
        qtest (name ^ ": div = mul by inverse")
          QCheck2.Gen.(pair (elt_gen f) (nonzero_gen f))
          (fun (a, b) -> Gf2m.div f a b = Gf2m.mul f a (Gf2m.inv f b));
      ])
    fields
  @ [
      Alcotest.test_case "reducible modulus rejected" `Quick (fun () ->
          (* x^4 + x^2 + 1 = (x^2+x+1)^2 is reducible *)
          match Gf2m.make ~m:4 ~modulus:0x5 with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "accepted reducible polynomial");
      Alcotest.test_case "even modulus rejected" `Quick (fun () ->
          match Gf2m.make ~m:8 ~modulus:0x1A with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "accepted even modulus");
      Alcotest.test_case "pow matches repeated mul" `Quick (fun () ->
          let f = Gf2m.gf16 in
          let a = 0x1234 in
          let rec naive k = if k = 0 then 1 else Gf2m.mul f a (naive (k - 1)) in
          for k = 0 to 10 do
            check_int "pow" (naive k) (Gf2m.pow f a k)
          done);
    ]

(* ---------------- Polynomials ---------------- *)

let f16 = Gf2m.gf16

let poly_gen f =
  QCheck2.Gen.(map (fun l -> Poly.of_coeffs l) (list_size (int_bound 8) (elt_gen f)))

let nonzero_poly_gen f =
  QCheck2.Gen.(
    map2
      (fun l lead -> Poly.of_coeffs (l @ [ lead ]))
      (list_size (int_bound 7) (elt_gen f))
      (nonzero_gen f))

let poly_tests =
  [
    Alcotest.test_case "normalisation" `Quick (fun () ->
        check_int "degree" 1 (Poly.degree (Poly.of_coeffs [ 1; 2; 0; 0 ]));
        check_bool "zero" true (Poly.is_zero (Poly.of_coeffs [ 0; 0 ])));
    Alcotest.test_case "eval" `Quick (fun () ->
        (* p(x) = x^2 + 3 over gf16 at x=2: 2*2 xor 3 = 4 xor 3 = 7 *)
        let p = Poly.of_coeffs [ 3; 0; 1 ] in
        check_int "eval" 7 (Poly.eval f16 p 2));
    qtest "add is xor of coeffs" QCheck2.Gen.(pair (poly_gen f16) (poly_gen f16))
      (fun (a, b) ->
        let s = Poly.add a b in
        List.for_all
          (fun i -> Poly.coeff s i = Poly.coeff a i lxor Poly.coeff b i)
          (List.init 12 Fun.id));
    qtest "mul degree adds"
      QCheck2.Gen.(pair (nonzero_poly_gen f16) (nonzero_poly_gen f16))
      (fun (a, b) ->
        Poly.degree (Poly.mul f16 a b) = Poly.degree a + Poly.degree b);
    qtest "divmod reconstructs"
      QCheck2.Gen.(pair (poly_gen f16) (nonzero_poly_gen f16))
      (fun (a, b) ->
        let q, r = Poly.divmod f16 a b in
        Poly.equal a (Poly.add (Poly.mul f16 q b) r)
        && (Poly.is_zero r || Poly.degree r < Poly.degree b));
    qtest "gcd divides both"
      QCheck2.Gen.(pair (nonzero_poly_gen f16) (nonzero_poly_gen f16))
      (fun (a, b) ->
        let g = Poly.gcd f16 a b in
        let _, ra = Poly.divmod f16 a g in
        let _, rb = Poly.divmod f16 b g in
        Poly.is_zero ra && Poly.is_zero rb);
    Alcotest.test_case "monic leading coeff" `Quick (fun () ->
        let p = Poly.of_coeffs [ 3; 5; 9 ] in
        let m = Poly.monic f16 p in
        check_int "lead" 1 (Poly.coeff m (Poly.degree m)));
    qtest "square_mod = mul_mod self" ~count:100
      QCheck2.Gen.(pair (poly_gen f16) (nonzero_poly_gen f16))
      (fun (a, m) ->
        QCheck2.assume (Poly.degree m >= 1);
        Poly.equal (Poly.square_mod f16 a ~modulus:m)
          (Poly.mul_mod f16 a a ~modulus:m));
    Alcotest.test_case "roots of known product" `Quick (fun () ->
        (* (x-3)(x-5)(x-9) over gf16; subtraction = xor *)
        let lin r = Poly.of_coeffs [ r; 1 ] in
        let p = Poly.mul f16 (Poly.mul f16 (lin 3) (lin 5)) (lin 9) in
        match Poly.roots f16 p with
        | Some rs ->
            check_bool "roots" true (List.sort compare rs = [ 3; 5; 9 ])
        | None -> Alcotest.fail "no roots found");
    Alcotest.test_case "repeated roots rejected" `Quick (fun () ->
        let lin r = Poly.of_coeffs [ r; 1 ] in
        let p = Poly.mul f16 (lin 3) (lin 3) in
        check_bool "rejected" true (Poly.roots f16 p = None));
    Alcotest.test_case "irreducible quadratic rejected" `Quick (fun () ->
        (* x^2 + x + alpha is irreducible for some alpha; find one whose
           roots call returns None. frobenius_fixed must be false for an
           irreducible quadratic over the field itself... use trace: an
           element with trace 1 makes x^2+x+a irreducible. *)
        let a =
          let rec find c = if Gf2m.trace f16 c = 1 then c else find (c + 1) in
          find 1
        in
        let p = Poly.of_coeffs [ a; 1; 1 ] in
        check_bool "no roots" true (Poly.roots f16 p = None));
    qtest "random split polynomials fully factor" ~count:60
      QCheck2.Gen.(list_size (int_range 1 12) (nonzero_gen f16))
      (fun roots ->
        let roots = List.sort_uniq compare roots in
        let p =
          List.fold_left
            (fun acc r -> Poly.mul f16 acc (Poly.of_coeffs [ r; 1 ]))
            Poly.one roots
        in
        match Poly.roots f16 p with
        | Some rs -> List.sort compare rs = roots
        | None -> false);
  ]

(* ---------------- Berlekamp–Massey ---------------- *)

let bm_tests =
  [
    Alcotest.test_case "all-zero sequence" `Quick (fun () ->
        let c, l = Berlekamp_massey.run f16 (Array.make 8 0) in
        check_int "length" 0 l;
        check_bool "trivial" true (Poly.equal c Poly.one));
    Alcotest.test_case "known LFSR recovered" `Quick (fun () ->
        (* s_i = 3*s_{i-1} xor 2*s_{i-2}; connection poly 1 + 3x + 2x^2 *)
        let n = 12 in
        let s = Array.make n 0 in
        s.(0) <- 1;
        s.(1) <- 5;
        for i = 2 to n - 1 do
          s.(i) <- Gf2m.mul f16 3 s.(i - 1) lxor Gf2m.mul f16 2 s.(i - 2)
        done;
        let c, l = Berlekamp_massey.run f16 s in
        check_int "length" 2 l;
        check_bool "poly" true (Poly.equal c (Poly.of_coeffs [ 1; 3; 2 ])));
    qtest "recovered LFSR regenerates sequence" ~count:50
      QCheck2.Gen.(list_size (int_range 4 10) (elt_gen f16))
      (fun prefix ->
        let s = Array.of_list (prefix @ prefix) in
        let c, l = Berlekamp_massey.run f16 s in
        (* check the recurrence for i >= l *)
        let ok = ref true in
        for i = l to Array.length s - 1 do
          let acc = ref s.(i) in
          for j = 1 to l do
            acc := !acc lxor Gf2m.mul f16 (Poly.coeff c j) s.(i - j)
          done;
          if !acc <> 0 then ok := false
        done;
        !ok);
  ]

(* ---------------- Sketch ---------------- *)

let rand_distinct rng n f =
  let tbl = Hashtbl.create n in
  let rec go acc k =
    if k = 0 then acc
    else begin
      let v = 1 + Lo_net.Rng.int rng (Gf2m.mask f - 1) in
      if Hashtbl.mem tbl v then go acc k
      else begin
        Hashtbl.add tbl v ();
        go (v :: acc) (k - 1)
      end
    end
  in
  go [] n

let sketch_tests =
  [
    Alcotest.test_case "empty decodes to empty" `Quick (fun () ->
        let s = Sketch.create ~capacity:8 () in
        check_bool "empty" true (Sketch.is_empty s);
        check_bool "decode" true (Sketch.decode s = Ok []));
    Alcotest.test_case "single element" `Quick (fun () ->
        let s = Sketch.create ~capacity:8 () in
        Sketch.add s 42;
        check_bool "decode" true (Sketch.decode s = Ok [ 42 ]));
    Alcotest.test_case "add twice removes" `Quick (fun () ->
        let s = Sketch.create ~capacity:8 () in
        Sketch.add s 42;
        Sketch.add s 42;
        check_bool "empty" true (Sketch.is_empty s));
    Alcotest.test_case "zero rejected" `Quick (fun () ->
        let s = Sketch.create ~capacity:4 () in
        Alcotest.check_raises "zero" (Invalid_argument "Sketch.add: element")
          (fun () -> Sketch.add s 0));
    Alcotest.test_case "out-of-field rejected" `Quick (fun () ->
        let s = Sketch.create ~field:Gf2m.gf8 ~capacity:4 () in
        Alcotest.check_raises "range" (Invalid_argument "Sketch.add: element")
          (fun () -> Sketch.add s 256));
    Alcotest.test_case "merge incompatible rejected" `Quick (fun () ->
        let a = Sketch.create ~capacity:4 () and b = Sketch.create ~capacity:8 () in
        Alcotest.check_raises "capacity"
          (Invalid_argument "Sketch.merge: incompatible sketches") (fun () ->
            ignore (Sketch.merge a b)));
    Alcotest.test_case "decode at exact capacity" `Quick (fun () ->
        let rng = Lo_net.Rng.create 7 in
        let elems = rand_distinct rng 16 Gf2m.gf32 in
        let s = Sketch.of_list ~capacity:16 elems in
        match Sketch.decode s with
        | Ok d -> check_bool "exact" true (List.sort compare d = List.sort compare elems)
        | Error _ -> Alcotest.fail "decode failed at capacity");
    Alcotest.test_case "over capacity fails" `Quick (fun () ->
        let rng = Lo_net.Rng.create 8 in
        let elems = rand_distinct rng 20 Gf2m.gf32 in
        let s = Sketch.of_list ~capacity:16 elems in
        check_bool "fails" true (Sketch.decode s = Error `Decode_failure));
    Alcotest.test_case "wire roundtrip" `Quick (fun () ->
        let rng = Lo_net.Rng.create 9 in
        let s = Sketch.of_list ~capacity:8 (rand_distinct rng 5 Gf2m.gf32) in
        let w = Lo_codec.Writer.create () in
        Sketch.encode w s;
        check_int "size" (Sketch.serialized_size s) (Lo_codec.Writer.length w);
        let s' = Sketch.decode_wire (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
        check_bool "same decode" true (Sketch.decode s' = Sketch.decode s));
    qtest "encode_into matches encode byte-for-byte" ~count:50
      QCheck2.Gen.(pair (int_range 1 40) (int_range 0 30))
      (fun (capacity, n) ->
        let rng = Lo_net.Rng.create ((capacity * 1009) + n) in
        let s = Sketch.of_list ~capacity (rand_distinct rng (min n capacity) Gf2m.gf32) in
        let w = Lo_codec.Writer.create () in
        Sketch.encode w s;
        let buf = Bytes.create (Sketch.serialized_size s) in
        Sketch.encode_into s buf ~pos:0;
        Bytes.to_string buf = Lo_codec.Writer.contents w);
    qtest "merge decodes symmetric difference" ~count:40
      QCheck2.Gen.(triple (int_bound 50) (int_bound 10) (int_bound 10))
      (fun (shared_n, only_a_n, only_b_n) ->
        let rng = Lo_net.Rng.create (shared_n + (17 * only_a_n) + (31 * only_b_n)) in
        let all = rand_distinct rng (shared_n + only_a_n + only_b_n) Gf2m.gf32 in
        let rec split3 a b c na nb xs =
          match xs with
          | [] -> (a, b, c)
          | x :: rest ->
              if na > 0 then split3 (x :: a) b c (na - 1) nb rest
              else if nb > 0 then split3 a (x :: b) c 0 (nb - 1) rest
              else split3 a b (x :: c) 0 0 rest
        in
        let only_a, only_b, shared = split3 [] [] [] only_a_n only_b_n all in
        let sa = Sketch.of_list ~capacity:32 (shared @ only_a) in
        let sb = Sketch.of_list ~capacity:32 (shared @ only_b) in
        match Sketch.decode (Sketch.merge sa sb) with
        | Ok d ->
            List.sort compare d = List.sort compare (only_a @ only_b)
        | Error `Decode_failure -> false);
    Alcotest.test_case "truncate is a syndrome prefix" `Quick (fun () ->
        let rng = Lo_net.Rng.create 11 in
        let elems = rand_distinct rng 5 Gf2m.gf32 in
        let big = Sketch.of_list ~capacity:32 elems in
        let small = Sketch.truncate big ~capacity:8 in
        check_int "capacity" 8 (Sketch.capacity small);
        let direct = Sketch.of_list ~capacity:8 elems in
        check_bool "same decode" true (Sketch.decode small = Sketch.decode direct));
    Alcotest.test_case "truncate clamps above capacity" `Quick (fun () ->
        let s = Sketch.create ~capacity:8 () in
        check_int "clamped" 8 (Sketch.capacity (Sketch.truncate s ~capacity:100)));
    qtest "truncated decode succeeds when diff fits" ~count:40
      QCheck2.Gen.(int_range 1 12)
      (fun diff ->
        let rng = Lo_net.Rng.create (diff * 31) in
        let elems = rand_distinct rng diff Gf2m.gf32 in
        let big = Sketch.of_list ~capacity:64 elems in
        Sketch.decode (Sketch.truncate big ~capacity:(diff + 4))
        = Ok (List.sort compare elems)
        || Sketch.decode (Sketch.truncate big ~capacity:(diff + 4))
           = Ok elems
        ||
        match Sketch.decode (Sketch.truncate big ~capacity:(diff + 4)) with
        | Ok d -> List.sort compare d = List.sort compare elems
        | Error _ -> false);
    qtest "order of insertion is irrelevant" ~count:50
      QCheck2.Gen.(list_size (int_range 1 12) (int_range 1 1000))
      (fun xs ->
        let xs = List.sort_uniq compare xs in
        let s1 = Sketch.of_list ~capacity:16 xs in
        let s2 = Sketch.of_list ~capacity:16 (List.rev xs) in
        Sketch.decode (Sketch.merge s1 s2) = Ok []);
  ]

(* ---------------- BCH decode bound ----------------

   The property the reconciler's escalation logic leans on: a capacity-c
   sketch decodes any difference of size d <= c exactly, and for
   c < d <= 2c the BCH minimum distance guarantees no size-<=c set shares
   the syndromes, so decode fails cleanly instead of fabricating one. *)

let bch_bound_tests =
  [
    qtest "diff within capacity decodes exactly" ~count:60
      QCheck2.Gen.(pair (int_range 1 24) (int_range 0 10_000))
      (fun (d, salt) ->
        let capacity = 24 in
        let rng = Lo_net.Rng.create ((d * 7919) + salt) in
        let elems = rand_distinct rng d Gf2m.gf32 in
        match Sketch.decode (Sketch.of_list ~capacity elems) with
        | Ok got -> List.sort compare got = List.sort compare elems
        | Error `Decode_failure -> false);
    qtest "diff above capacity fails cleanly" ~count:60
      QCheck2.Gen.(pair (int_range 1 16) (int_range 0 10_000))
      (fun (excess, salt) ->
        let capacity = 16 in
        let d = capacity + excess in
        let rng = Lo_net.Rng.create ((d * 104729) + salt) in
        let elems = rand_distinct rng d Gf2m.gf32 in
        Sketch.decode (Sketch.of_list ~capacity elems) = Error `Decode_failure);
  ]

(* ---------------- Partitioned reconciliation ---------------- *)

let partitioned_tests =
  [
    Alcotest.test_case "identical sets need one round" `Quick (fun () ->
        let rng = Lo_net.Rng.create 5 in
        let xs = rand_distinct rng 50 Gf2m.gf32 in
        let stats, diff = Partitioned.reconcile ~capacity:16 ~local:xs ~remote:xs () in
        check_int "rounds" 1 stats.Partitioned.reconciliations;
        check_bool "no diff" true (diff = []));
    Alcotest.test_case "small diff, no splits" `Quick (fun () ->
        let rng = Lo_net.Rng.create 6 in
        let shared = rand_distinct rng 100 Gf2m.gf32 in
        let extra = rand_distinct rng 5 Gf2m.gf32 in
        let stats, diff =
          Partitioned.reconcile ~capacity:16 ~local:(shared @ extra) ~remote:shared ()
        in
        check_int "rounds" 1 stats.Partitioned.reconciliations;
        check_bool "diff" true (List.sort compare diff = List.sort compare extra));
    Alcotest.test_case "large diff forces splits but recovers" `Quick (fun () ->
        let rng = Lo_net.Rng.create 7 in
        let local = rand_distinct rng 200 Gf2m.gf32 in
        let remote = rand_distinct rng 180 Gf2m.gf32 in
        let stats, diff = Partitioned.reconcile ~capacity:16 ~local ~remote () in
        check_bool "split happened" true (stats.Partitioned.decode_failures > 0);
        let expected =
          List.filter (fun x -> not (List.mem x remote)) local
          @ List.filter (fun x -> not (List.mem x local)) remote
        in
        check_bool "recovered" true
          (List.sort compare diff = List.sort compare expected));
    Alcotest.test_case "monolithic fails when undersized" `Quick (fun () ->
        let rng = Lo_net.Rng.create 8 in
        let local = rand_distinct rng 100 Gf2m.gf32 in
        let stats, result =
          Partitioned.reconcile_monolithic ~capacity:16 ~local ~remote:[] ()
        in
        check_int "failures" 1 stats.Partitioned.decode_failures;
        check_bool "none" true (result = None));
    Alcotest.test_case "monolithic succeeds when sized" `Quick (fun () ->
        let rng = Lo_net.Rng.create 9 in
        let local = rand_distinct rng 30 Gf2m.gf32 in
        let _, result =
          Partitioned.reconcile_monolithic ~capacity:30 ~local ~remote:[] ()
        in
        match result with
        | Some d -> check_bool "all" true (List.sort compare d = List.sort compare local)
        | None -> Alcotest.fail "decode failed");
    Alcotest.test_case "bytes accounted" `Quick (fun () ->
        let stats, _ =
          Partitioned.reconcile ~capacity:8 ~local:[ 1; 2; 3 ] ~remote:[ 2; 3; 4 ] ()
        in
        check_bool "bytes" true (stats.Partitioned.bytes_exchanged > 0));
  ]



(* ---------------- Strata estimator ---------------- *)

let strata_tests =
  [
    Alcotest.test_case "identical sets estimate zero" `Quick (fun () ->
        let rng = Lo_net.Rng.create 21 in
        let xs = rand_distinct rng 500 Gf2m.gf32 in
        let a = Strata.of_list xs and b = Strata.of_list xs in
        check_int "zero" 0 (Strata.estimate a b));
    Alcotest.test_case "small diffs are exact" `Quick (fun () ->
        let rng = Lo_net.Rng.create 22 in
        let shared = rand_distinct rng 300 Gf2m.gf32 in
        let extra = rand_distinct rng 7 Gf2m.gf32 in
        let a = Strata.of_list shared in
        let b = Strata.of_list (shared @ extra) in
        check_int "exact" 7 (Strata.estimate a b));
    Alcotest.test_case "large diffs within a small factor" `Quick (fun () ->
        List.iter
          (fun d ->
            let rng = Lo_net.Rng.create (23 + d) in
            let shared = rand_distinct rng 200 Gf2m.gf32 in
            let extra = rand_distinct rng d Gf2m.gf32 in
            let a = Strata.of_list shared in
            let b = Strata.of_list (shared @ extra) in
            let est = Strata.estimate a b in
            check_bool
              (Printf.sprintf "diff %d est %d" d est)
              true
              (est >= d / 3 && est <= 3 * d))
          [ 100; 400; 1500 ]);
    Alcotest.test_case "wire roundtrip" `Quick (fun () ->
        let rng = Lo_net.Rng.create 24 in
        let xs = rand_distinct rng 50 Gf2m.gf32 in
        let a = Strata.of_list xs in
        let w = Lo_codec.Writer.create () in
        Strata.encode w a;
        check_int "size" (Strata.serialized_size a) (Lo_codec.Writer.length w);
        let a' = Strata.decode_wire (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w)) in
        check_int "same estimate" 0 (Strata.estimate a a'));
    Alcotest.test_case "mismatched params rejected" `Quick (fun () ->
        let a = Strata.create ~strata:8 () and b = Strata.create ~strata:16 () in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Strata.estimate: mismatched estimators") (fun () ->
            ignore (Strata.estimate a b)));
    Alcotest.test_case "estimator can size a working sketch" `Quick (fun () ->
        (* The intended workflow: estimate, then reconcile with 2x the
           estimate as capacity. *)
        let rng = Lo_net.Rng.create 25 in
        let shared = rand_distinct rng 300 Gf2m.gf32 in
        let extra = rand_distinct rng 60 Gf2m.gf32 in
        let local = shared @ extra and remote = shared in
        let est =
          Strata.estimate (Strata.of_list local) (Strata.of_list remote)
        in
        check_bool "estimate in range" true (est >= 20 && est <= 180);
        (* start from 2x the estimate, escalate on failure — at most one
           escalation should ever be needed from a sane estimate *)
        let rec reconcile capacity escalations =
          let sl = Sketch.of_list ~capacity local in
          let sr = Sketch.of_list ~capacity remote in
          match Sketch.decode (Sketch.merge sl sr) with
          | Ok d ->
              check_int "full diff" 60 (List.length d);
              check_bool "at most one escalation" true (escalations <= 1)
          | Error `Decode_failure ->
              if escalations > 2 then Alcotest.fail "estimate useless"
              else reconcile (2 * capacity) (escalations + 1)
        in
        reconcile (max 8 (2 * est)) 0);
  ]

(* ---------------- Randomised properties ----------------

   The conformance-harness PR hardens these two modules with qcheck
   properties: the partitioned reconciler must recover exactly the
   symmetric difference for any input shape, the monolithic baseline
   must decode-or-fail honestly at its capacity bound, and the strata
   estimator must survive the wire byte-for-byte. *)

(* Three disjoint random sets (shared, only-local, only-remote) of
   bounded size, drawn from the nonzero GF(2^32) elements. *)
let split_sets_gen =
  QCheck2.Gen.(
    map
      (fun (seed, n_shared, n_local, n_remote) ->
        let rng = Lo_net.Rng.create seed in
        let seen = Hashtbl.create 64 in
        let draw () =
          let rec go () =
            let v = 1 + Lo_net.Rng.int rng (Gf2m.mask Gf2m.gf32 - 1) in
            if Hashtbl.mem seen v then go ()
            else begin
              Hashtbl.add seen v ();
              v
            end
          in
          go ()
        in
        let take n = List.init n (fun _ -> draw ()) in
        (take n_shared, take n_local, take n_remote))
      (quad (int_range 0 1_000_000) (int_bound 60) (int_bound 25)
         (int_bound 25)))

let sorted = List.sort compare

let prop_tests =
  [
    qtest ~count:100 "partitioned: recovers any symmetric difference"
      split_sets_gen
      (fun (shared, only_local, only_remote) ->
        let _, diff =
          Partitioned.reconcile ~capacity:8 ~local:(shared @ only_local)
            ~remote:(shared @ only_remote) ()
        in
        sorted diff = sorted (only_local @ only_remote));
    qtest ~count:100 "partitioned: direction symmetric" split_sets_gen
      (fun (shared, only_local, only_remote) ->
        let _, d1 =
          Partitioned.reconcile ~capacity:8 ~local:(shared @ only_local)
            ~remote:(shared @ only_remote) ()
        in
        let _, d2 =
          Partitioned.reconcile ~capacity:8 ~local:(shared @ only_remote)
            ~remote:(shared @ only_local) ()
        in
        sorted d1 = sorted d2);
    qtest ~count:100 "monolithic: decodes exactly within capacity"
      split_sets_gen
      (fun (shared, only_local, only_remote) ->
        let diff_size = List.length only_local + List.length only_remote in
        let capacity = max 1 diff_size in
        match
          Partitioned.reconcile_monolithic ~capacity
            ~local:(shared @ only_local) ~remote:(shared @ only_remote) ()
        with
        | _, Some diff -> sorted diff = sorted (only_local @ only_remote)
        | _, None -> false)
      (* a difference within capacity must never fail to decode *);
    qtest ~count:100 "monolithic: never crashes over capacity"
      split_sets_gen
      (fun (shared, only_local, only_remote) ->
        (* Over-capacity decodes may fail (None) — they must not raise
           and must count the failure. *)
        let diff_size = List.length only_local + List.length only_remote in
        if diff_size < 2 then true
        else
          let capacity = diff_size / 2 in
          match
            Partitioned.reconcile_monolithic ~capacity
              ~local:(shared @ only_local) ~remote:(shared @ only_remote) ()
          with
          | stats, None -> stats.Partitioned.decode_failures >= 1
          | _, Some s ->
              (* A capacity-c sketch holds at most c roots, so a correct
                 decode is impossible here. A spurious result S is only
                 permitted past the BCH distance bound: S and the true
                 difference D share syndromes iff S xor D is a nonzero
                 codeword, i.e. |S delta D| >= 2c + 1. (At diff = 2,
                 capacity = 1, this happens for every input: the sketch
                 of {a, b} equals the sketch of {a xor b}.) *)
              let tbl = Hashtbl.create 64 in
              let toggle e =
                if Hashtbl.mem tbl e then Hashtbl.remove tbl e
                else Hashtbl.add tbl e ()
              in
              List.iter toggle s;
              List.iter toggle (only_local @ only_remote);
              Hashtbl.length tbl >= (2 * capacity) + 1);
    qtest ~count:50 "strata: wire round-trip preserves estimates"
      split_sets_gen
      (fun (shared, only_local, only_remote) ->
        let a = Strata.of_list (shared @ only_local) in
        let b = Strata.of_list (shared @ only_remote) in
        let rt s =
          let w = Lo_codec.Writer.create () in
          Strata.encode w s;
          Strata.decode_wire (Lo_codec.Reader.of_string (Lo_codec.Writer.contents w))
        in
        Strata.estimate (rt a) (rt b) = Strata.estimate a b
        && Strata.estimate (rt a) (rt a) = 0);
    qtest ~count:50 "strata: estimate is symmetric" split_sets_gen
      (fun (shared, only_local, only_remote) ->
        let a = Strata.of_list (shared @ only_local) in
        let b = Strata.of_list (shared @ only_remote) in
        Strata.estimate a b = Strata.estimate b a);
  ]

(* ---------------- Decode kernels ----------------

   The scratch/candidate kernels are fast paths pinned to the reference
   implementations they replace: same outcome on every input. *)

let kernel_tests =
  [
    qtest "run_scratch = run" ~count:150
      QCheck2.Gen.(
        pair (list_size (int_bound 24) (int_range 0 0xffff)) (int_bound 4))
      (fun (l, off) ->
        let scratch = Berlekamp_massey.create_scratch () in
        let s = Array.of_list l in
        let arr = Array.append (Array.make off 0) s in
        Berlekamp_massey.run_scratch scratch f16 arr ~off
          ~len:(Array.length s)
        = Berlekamp_massey.run f16 s);
    qtest "scratch reuse across calls stays exact" ~count:40
      QCheck2.Gen.(
        list_size (int_range 1 6) (list_size (int_bound 16) (int_range 0 0xffff)))
      (fun batches ->
        let scratch = Berlekamp_massey.create_scratch () in
        List.for_all
          (fun l ->
            let s = Array.of_list l in
            Berlekamp_massey.run_scratch scratch f16 s ~off:0
              ~len:(Array.length s)
            = Berlekamp_massey.run f16 s)
          batches);
    qtest "decode_with kernel = decode" ~count:150
      QCheck2.Gen.(
        pair (list_size (int_bound 24) (int_range 1 0xffffff)) bool)
      (fun (l, use_candidates) ->
        let elems = List.sort_uniq compare l in
        let s = Sketch.of_list ~capacity:16 elems in
        let scratch = Sketch.Scratch.create () in
        let candidates =
          if use_candidates then Some (Array.of_list elems) else None
        in
        let norm = function
          | Ok ids -> Ok (List.sort compare ids)
          | Error _ as e -> e
        in
        norm (Sketch.decode_with ~scratch ?candidates s)
        = norm (Sketch.decode s));
    qtest "decode_with misleading candidates = decode" ~count:80
      QCheck2.Gen.(
        pair
          (list_size (int_bound 12) (int_range 1 0xffffff))
          (list_size (int_bound 12) (int_range 1 0xffffff)))
      (fun (l, noise) ->
        (* Candidates that share nothing with the actual difference must
           not change the outcome — the kernel falls back to the full
           root search for roots the seeds missed. *)
        let elems = List.sort_uniq compare l in
        let s = Sketch.of_list ~capacity:16 elems in
        let norm = function
          | Ok ids -> Ok (List.sort compare ids)
          | Error _ as e -> e
        in
        norm (Sketch.decode_with ~candidates:(Array.of_list noise) s)
        = norm (Sketch.decode s));
    qtest "reconcile fast = reference" ~count:60
      QCheck2.Gen.(
        pair
          (list_size (int_bound 40) (int_range 1 0xffffff))
          (list_size (int_bound 40) (int_range 1 0xffffff)))
      (fun (a, b) ->
        let local = List.sort_uniq compare a in
        let remote = List.sort_uniq compare b in
        let _, fast =
          Partitioned.reconcile ~capacity:8 ~local ~remote ()
        in
        let _, slow =
          Partitioned.reconcile ~fast:false ~capacity:8 ~local ~remote ()
        in
        List.sort compare fast = List.sort compare slow);
    qtest "reconcile_monolithic fast = reference" ~count:60
      QCheck2.Gen.(
        pair
          (list_size (int_bound 20) (int_range 1 0xffffff))
          (list_size (int_bound 20) (int_range 1 0xffffff)))
      (fun (a, b) ->
        let local = List.sort_uniq compare a in
        let remote = List.sort_uniq compare b in
        let norm = Option.map (List.sort compare) in
        let _, fast =
          Partitioned.reconcile_monolithic ~capacity:32 ~local ~remote ()
        in
        let _, slow =
          Partitioned.reconcile_monolithic ~fast:false ~capacity:32 ~local
            ~remote ()
        in
        norm fast = norm slow);
    Alcotest.test_case "gf32 kernel spot check" `Quick (fun () ->
        let rng = Lo_net.Rng.create 4242 in
        let local = rand_distinct rng 120 Gf2m.gf32 in
        let remote = rand_distinct rng 120 Gf2m.gf32 in
        let _, fast = Partitioned.reconcile ~capacity:8 ~local ~remote () in
        let _, slow =
          Partitioned.reconcile ~fast:false ~capacity:8 ~local ~remote ()
        in
        check_bool "same diff" true
          (List.sort compare fast = List.sort compare slow));
    (* The accumulation kernels against the definitional loop. *)
    qtest "accum_powers = naive power loop" ~count:120
      QCheck2.Gen.(
        quad (int_range 0 2) (int_bound 40) (int_bound 0xffffff)
          (int_bound 0xffffff))
      (fun (which, n, base, step) ->
        let f =
          match which with 0 -> Gf2m.gf8 | 1 -> Gf2m.gf16 | _ -> Gf2m.gf32
        in
        let base = base land Gf2m.mask f and step = step land Gf2m.mask f in
        let s1 = Array.init (n + 2) (fun i -> (i * 7) land Gf2m.mask f) in
        let s2 = Array.copy s1 in
        Gf2m.accum_powers f ~base ~step s1 ~n;
        let p = ref base in
        for i = 0 to n - 1 do
          s2.(i) <- s2.(i) lxor !p;
          if i < n - 1 then p := Gf2m.mul f !p step
        done;
        s1 = s2);
    qtest "accum_powers2 = two accum_powers" ~count:120
      QCheck2.Gen.(
        pair (int_bound 40)
          (array_size (return 4) (int_bound 0xffffffff)))
      (fun (n, args) ->
        let b1 = args.(0) land Gf2m.mask Gf2m.gf32
        and s1v = args.(1) land Gf2m.mask Gf2m.gf32
        and b2 = args.(2) land Gf2m.mask Gf2m.gf32
        and s2v = args.(3) land Gf2m.mask Gf2m.gf32 in
        let a1 = Array.init (n + 2) (fun i -> i * 31) in
        let a2 = Array.copy a1 in
        Gf2m.accum_powers2 Gf2m.gf32 ~base1:b1 ~step1:s1v ~base2:b2
          ~step2:s2v a1 ~n;
        Gf2m.accum_powers Gf2m.gf32 ~base:b1 ~step:s1v a2 ~n;
        Gf2m.accum_powers Gf2m.gf32 ~base:b2 ~step:s2v a2 ~n;
        a1 = a2);
    qtest "add_all pairing = iterated add" ~count:100
      QCheck2.Gen.(
        pair (int_range 1 40)
          (list_size (int_bound 9) (int_range 1 0xffffff)))
      (fun (capacity, elems) ->
        let wire s =
          let w = Lo_codec.Writer.create () in
          Sketch.encode w s;
          Lo_codec.Writer.contents w
        in
        let s1 = Sketch.create ~capacity () in
        Sketch.add_all s1 elems;
        let s2 = Sketch.create ~capacity () in
        List.iter (Sketch.add s2) elems;
        wire s1 = wire s2);
  ]

let () =
  Alcotest.run "lo_sketch"
    [
      ("gf2m", field_tests);
      ("poly", poly_tests);
      ("berlekamp-massey", bm_tests);
      ("sketch", sketch_tests);
      ("bch-bound", bch_bound_tests);
      ("partitioned", partitioned_tests);
      ("kernels", kernel_tests);
      ("strata", strata_tests);
      ("properties", prop_tests);
    ]
