(* Tests for lo_crypto: SHA-256 against FIPS vectors, HMAC against
   RFC 4231, the DRBG, the 256-bit bignum, the secp256k1 group law,
   Schnorr signatures, the signer abstraction and Merkle proofs. *)

open Lo_crypto

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Hex ---------------- *)

let hex_tests =
  [
    Alcotest.test_case "encode empty" `Quick (fun () ->
        check "empty" "" (Hex.encode ""));
    Alcotest.test_case "encode bytes" `Quick (fun () ->
        check "deadbeef" "deadbeef" (Hex.encode "\xde\xad\xbe\xef"));
    Alcotest.test_case "decode upper and lower" `Quick (fun () ->
        check "upper" "\xde\xad" (Hex.decode "DEAD");
        check "lower" "\xde\xad" (Hex.decode "dead"));
    Alcotest.test_case "decode rejects odd length" `Quick (fun () ->
        Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
          (fun () -> ignore (Hex.decode "abc")));
    Alcotest.test_case "decode rejects bad chars" `Quick (fun () ->
        check_bool "none" true (Hex.decode_opt "zz" = None));
    qtest "roundtrip" QCheck2.Gen.string (fun s ->
        Hex.decode (Hex.encode s) = s);
  ]

(* ---------------- SHA-256 ---------------- *)

let sha256_vector input expected () =
  check "digest" expected (Hex.encode (Sha256.digest input))

let sha256_tests =
  [
    Alcotest.test_case "empty" `Quick
      (sha256_vector ""
         "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    Alcotest.test_case "abc" `Quick
      (sha256_vector "abc"
         "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    Alcotest.test_case "two blocks" `Quick
      (sha256_vector "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    Alcotest.test_case "million a" `Slow
      (sha256_vector
         (String.make 1_000_000 'a')
         "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
    Alcotest.test_case "exactly 64 bytes" `Quick (fun () ->
        let s = String.make 64 'x' in
        check_int "len" 32 (String.length (Sha256.digest s)));
    Alcotest.test_case "incremental = one-shot" `Quick (fun () ->
        let parts = [ "the quick "; ""; "brown fox"; " jumps" ] in
        check "equal"
          (Hex.encode (Sha256.digest (String.concat "" parts)))
          (Hex.encode (Sha256.digest_list parts)));
    qtest "chunking never matters"
      QCheck2.Gen.(pair (string_size (int_bound 300)) (int_bound 299))
      (fun (s, split) ->
        let split = min split (String.length s) in
        let a = String.sub s 0 split
        and b = String.sub s split (String.length s - split) in
        Sha256.digest_list [ a; b ] = Sha256.digest s);
    Alcotest.test_case "hash_to_int non-negative and stable" `Quick (fun () ->
        let v = Sha256.hash_to_int "stable" in
        check_bool "non-negative" true (v >= 0);
        check_int "stable" v (Sha256.hash_to_int "stable"));
  ]

(* ---------------- HMAC (RFC 4231) ---------------- *)

let hmac_tests =
  [
    Alcotest.test_case "rfc4231 case 1" `Quick (fun () ->
        check "tag"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Hex.encode
             (Hmac.sha256 ~key:(String.make 20 '\x0b') "Hi There")));
    Alcotest.test_case "rfc4231 case 2" `Quick (fun () ->
        check "tag"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Hex.encode (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?")));
    Alcotest.test_case "rfc4231 case 3" `Quick (fun () ->
        check "tag"
          "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
          (Hex.encode
             (Hmac.sha256 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))));
    Alcotest.test_case "long key is hashed" `Quick (fun () ->
        check "tag"
          "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (Hex.encode
             (Hmac.sha256 ~key:(String.make 131 '\xaa')
                "Test Using Larger Than Block-Size Key - Hash Key First")));
    qtest "list = concat"
      QCheck2.Gen.(pair (small_string ~gen:char) (list_size (int_bound 5) (small_string ~gen:char)))
      (fun (key, parts) ->
        Hmac.sha256_list ~key parts = Hmac.sha256 ~key (String.concat "" parts));
  ]

(* ---------------- HMAC-DRBG ---------------- *)

let drbg_tests =
  [
    Alcotest.test_case "deterministic in seed" `Quick (fun () ->
        let a = Hmac_drbg.create ~seed:"s" and b = Hmac_drbg.create ~seed:"s" in
        check "equal streams"
          (Hex.encode (Hmac_drbg.generate a 48))
          (Hex.encode (Hmac_drbg.generate b 48)));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Hmac_drbg.create ~seed:"s1" and b = Hmac_drbg.create ~seed:"s2" in
        check_bool "differ" false
          (Hmac_drbg.generate a 32 = Hmac_drbg.generate b 32));
    Alcotest.test_case "stream advances" `Quick (fun () ->
        let a = Hmac_drbg.create ~seed:"s" in
        check_bool "differ" false
          (Hmac_drbg.generate a 32 = Hmac_drbg.generate a 32));
    Alcotest.test_case "uniform_int in range" `Quick (fun () ->
        let d = Hmac_drbg.create ~seed:"r" in
        for _ = 1 to 1000 do
          let v = Hmac_drbg.uniform_int d 7 in
          check_bool "range" true (v >= 0 && v < 7)
        done);
    Alcotest.test_case "uniform_int bound 1" `Quick (fun () ->
        let d = Hmac_drbg.create ~seed:"r" in
        check_int "zero" 0 (Hmac_drbg.uniform_int d 1));
    Alcotest.test_case "uniform_int roughly uniform" `Quick (fun () ->
        let d = Hmac_drbg.create ~seed:"u" in
        let counts = Array.make 4 0 in
        for _ = 1 to 4000 do
          let v = Hmac_drbg.uniform_int d 4 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter
          (fun c -> check_bool "within 20%" true (c > 800 && c < 1200))
          counts);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let d = Hmac_drbg.create ~seed:"p" in
        let a = Array.init 50 Fun.id in
        Hmac_drbg.shuffle d a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check_bool "permutation" true (sorted = Array.init 50 Fun.id));
    Alcotest.test_case "shuffle deterministic" `Quick (fun () ->
        let mk () =
          let d = Hmac_drbg.create ~seed:"det" in
          let a = Array.init 20 Fun.id in
          Hmac_drbg.shuffle d a;
          a
        in
        check_bool "same" true (mk () = mk ()));
  ]

(* ---------------- Uint256 ---------------- *)

let u256 = Alcotest.testable Uint256.pp Uint256.equal

let uint256_tests =
  let p17 = Uint256.of_int 17 in
  [
    Alcotest.test_case "of_int/to_hex" `Quick (fun () ->
        check "hex"
          "00000000000000000000000000000000000000000000000000000000000000ff"
          (Uint256.to_hex (Uint256.of_int 255)));
    Alcotest.test_case "hex roundtrip" `Quick (fun () ->
        let h = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff" in
        check "roundtrip" h (Uint256.to_hex (Uint256.of_hex h)));
    Alcotest.test_case "bytes roundtrip" `Quick (fun () ->
        let b = Lo_crypto.Sha256.digest "x" in
        check "roundtrip" (Hex.encode b)
          (Hex.encode (Uint256.to_bytes_be (Uint256.of_bytes_be b))));
    Alcotest.test_case "compare" `Quick (fun () ->
        check_bool "lt" true (Uint256.compare (Uint256.of_int 3) (Uint256.of_int 9) < 0);
        check_bool "eq" true (Uint256.compare p17 p17 = 0));
    Alcotest.test_case "add wraps mod 2^256" `Quick (fun () ->
        let max =
          Uint256.of_hex
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
        in
        Alcotest.check u256 "wrap" Uint256.zero (Uint256.add max Uint256.one));
    Alcotest.test_case "mod_add/mod_sub inverse" `Quick (fun () ->
        let a = Uint256.of_int 12 and b = Uint256.of_int 9 in
        let s = Uint256.mod_add ~modulus:p17 a b in
        Alcotest.check u256 "sub back" a (Uint256.mod_sub ~modulus:p17 s b));
    Alcotest.test_case "mod_mul small" `Quick (fun () ->
        Alcotest.check u256 "12*9 mod 17 = 6" (Uint256.of_int 6)
          (Uint256.mod_mul ~modulus:p17 (Uint256.of_int 12) (Uint256.of_int 9)));
    Alcotest.test_case "mod_pow fermat small prime" `Quick (fun () ->
        (* a^16 = 1 mod 17 for a != 0 *)
        for a = 1 to 16 do
          Alcotest.check u256 "fermat" Uint256.one
            (Uint256.mod_pow ~modulus:p17 (Uint256.of_int a) (Uint256.of_int 16))
        done);
    Alcotest.test_case "mod_inv_prime" `Quick (fun () ->
        for a = 1 to 16 do
          let inv = Uint256.mod_inv_prime ~modulus:p17 (Uint256.of_int a) in
          Alcotest.check u256 "a * a^-1 = 1" Uint256.one
            (Uint256.mod_mul ~modulus:p17 (Uint256.of_int a) inv)
        done);
    Alcotest.test_case "num_bits" `Quick (fun () ->
        check_int "zero" 0 (Uint256.num_bits Uint256.zero);
        check_int "one" 1 (Uint256.num_bits Uint256.one);
        check_int "255" 8 (Uint256.num_bits (Uint256.of_int 255));
        check_int "256" 9 (Uint256.num_bits (Uint256.of_int 256)));
    qtest "mod ops match OCaml ints" ~count:300
      QCheck2.Gen.(triple (int_bound 1000000) (int_bound 1000000) (int_range 2 1000000))
      (fun (a, b, m) ->
        let ua = Uint256.of_int a and ub = Uint256.of_int b in
        let um = Uint256.of_int m in
        let ua = Uint256.mod_reduce ~modulus:um ua in
        let ub = Uint256.mod_reduce ~modulus:um ub in
        Uint256.equal
          (Uint256.mod_mul ~modulus:um ua ub)
          (Uint256.of_int (a mod m * (b mod m) mod m))
        && Uint256.equal
             (Uint256.mod_add ~modulus:um ua ub)
             (Uint256.of_int (((a mod m) + (b mod m)) mod m)));
  ]

(* ---------------- secp256k1 ---------------- *)

let secp_tests =
  let open Secp256k1 in
  [
    Alcotest.test_case "generator on curve" `Quick (fun () ->
        match to_affine g with
        | Some (x, y) -> check_bool "on curve" true (is_on_curve ~x ~y)
        | None -> Alcotest.fail "generator is infinity");
    Alcotest.test_case "n * G = infinity" `Quick (fun () ->
        check_bool "order" true (is_infinity (mul n g)));
    Alcotest.test_case "2G = G + G" `Quick (fun () ->
        check_bool "double" true (equal (double g) (add g g)));
    Alcotest.test_case "(n-1)G = -G" `Quick (fun () ->
        let n1 = Uint256.mod_sub ~modulus:n Uint256.zero Uint256.one in
        check_bool "neg" true (equal (mul n1 g) (neg g)));
    Alcotest.test_case "addition commutes" `Quick (fun () ->
        let p2 = mul (Uint256.of_int 5) g and q = mul (Uint256.of_int 11) g in
        check_bool "comm" true (equal (add p2 q) (add q p2)));
    Alcotest.test_case "addition associates" `Quick (fun () ->
        let a = mul (Uint256.of_int 3) g
        and b = mul (Uint256.of_int 7) g
        and c = mul (Uint256.of_int 13) g in
        check_bool "assoc" true (equal (add (add a b) c) (add a (add b c))));
    Alcotest.test_case "scalar distributes" `Quick (fun () ->
        (* (5+11)G = 5G + 11G *)
        check_bool "distrib" true
          (equal
             (mul (Uint256.of_int 16) g)
             (add (mul (Uint256.of_int 5) g) (mul (Uint256.of_int 11) g))));
    Alcotest.test_case "P + (-P) = infinity" `Quick (fun () ->
        let p2 = mul (Uint256.of_int 42) g in
        check_bool "inverse" true (is_infinity (add p2 (neg p2))));
    Alcotest.test_case "infinity is neutral" `Quick (fun () ->
        let p2 = mul (Uint256.of_int 9) g in
        check_bool "left" true (equal (add infinity p2) p2);
        check_bool "right" true (equal (add p2 infinity) p2));
    Alcotest.test_case "compressed roundtrip" `Quick (fun () ->
        for k = 1 to 20 do
          let p2 = mul (Uint256.of_int k) g in
          match decode_compressed (encode_compressed p2) with
          | Some q -> check_bool "roundtrip" true (equal p2 q)
          | None -> Alcotest.fail "decode failed"
        done);
    Alcotest.test_case "decode rejects off-curve x" `Quick (fun () ->
        (* x = 5 has no square root for y^2 = x^3+7? If it decodes, the
           point must be on the curve. *)
        let bytes = "\x02" ^ Uint256.to_bytes_be (Uint256.of_int 5) in
        match decode_compressed bytes with
        | None -> ()
        | Some p2 -> (
            match to_affine p2 with
            | Some (x, y) -> check_bool "on curve" true (is_on_curve ~x ~y)
            | None -> ()));
    Alcotest.test_case "decode rejects junk" `Quick (fun () ->
        check_bool "short" true (decode_compressed "xx" = None);
        check_bool "bad prefix" true
          (decode_compressed ("\x05" ^ String.make 32 'a') = None));
    Alcotest.test_case "field sqrt roundtrip" `Quick (fun () ->
        let a = Uint256.of_int 1234567 in
        let sq = field_mul a a in
        match field_sqrt sq with
        | Some r -> check_bool "root" true (Uint256.equal (field_mul r r) sq)
        | None -> Alcotest.fail "sqrt of a square failed");
  ]

(* ---------------- Schnorr ---------------- *)

let secp_property_tests =
  let open Secp256k1 in
  let small_scalar = QCheck2.Gen.int_range 1 100000 in
  [
    qtest "scalar homomorphism: (a+b)G = aG + bG" ~count:25
      QCheck2.Gen.(pair small_scalar small_scalar)
      (fun (a, b) ->
        equal
          (mul (Uint256.of_int (a + b)) g)
          (add (mul (Uint256.of_int a) g) (mul (Uint256.of_int b) g)));
    qtest "scalar composition: a(bG) = (ab)G" ~count:15
      QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 1000))
      (fun (a, b) ->
        equal
          (mul (Uint256.of_int a) (mul (Uint256.of_int b) g))
          (mul (Uint256.of_int (a * b)) g));
    qtest "points stay on the curve" ~count:25 small_scalar (fun k ->
        match to_affine (mul (Uint256.of_int k) g) with
        | Some (x, y) -> is_on_curve ~x ~y
        | None -> false);
    Alcotest.test_case "zero scalar gives infinity" `Quick (fun () ->
        check_bool "zero" true (is_infinity (mul Uint256.zero g)));
    Alcotest.test_case "scalar reduction mod n" `Quick (fun () ->
        (* (n+5)G = 5G *)
        let unreduced = Uint256.add n (Uint256.of_int 5) in
        check_bool "reduces" true
          (equal (mul unreduced g) (mul (Uint256.of_int 5) g)));
  ]

let uint256_edge_tests =
  [
    Alcotest.test_case "of_bytes_be wrong length rejected" `Quick (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Uint256.of_bytes_be: need 32 bytes") (fun () ->
            ignore (Uint256.of_bytes_be "abc")));
    Alcotest.test_case "of_hex too long rejected" `Quick (fun () ->
        Alcotest.check_raises "long" (Invalid_argument "Uint256.of_hex: too long")
          (fun () -> ignore (Uint256.of_hex (String.make 66 'f'))));
    Alcotest.test_case "mod_inv of zero rejected" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Uint256.mod_inv_prime: zero") (fun () ->
            ignore (Uint256.mod_inv_prime ~modulus:(Uint256.of_int 17) Uint256.zero)));
    Alcotest.test_case "mod_pow exponent zero is one" `Quick (fun () ->
        let m = Uint256.of_int 97 in
        Alcotest.check u256 "one" Uint256.one
          (Uint256.mod_pow ~modulus:m (Uint256.of_int 42) Uint256.zero));
    Alcotest.test_case "mul near 2^256 boundary" `Quick (fun () ->
        (* (2^128-1)^2 mod (2^255-19-ish prime stand-in): use secp's p *)
        let a =
          Uint256.of_hex "ffffffffffffffffffffffffffffffff"
        in
        let p = Secp256k1.p in
        let sq = Uint256.mod_mul ~modulus:p a a in
        (* (2^128-1)^2 = 2^256 - 2^129 + 1; mod p = (2^256 mod p) - 2^129 + 1
           with 2^256 mod p = 2^32 + 977 *)
        let expected =
          Uint256.mod_sub ~modulus:p
            (Uint256.mod_add ~modulus:p
               (Uint256.of_hex "1000003d1")
               Uint256.one)
            (Uint256.of_hex "200000000000000000000000000000000")
        in
        Alcotest.check u256 "boundary" expected sq);
    Alcotest.test_case "bit indexing" `Quick (fun () ->
        let v = Uint256.of_int 0b1010 in
        check_bool "bit1" true (Uint256.bit v 1);
        check_bool "bit0" false (Uint256.bit v 0);
        check_bool "bit3" true (Uint256.bit v 3);
        check_bool "bit200" false (Uint256.bit v 200));
  ]

let schnorr_tests =
  [
    Alcotest.test_case "sign/verify roundtrip" `Quick (fun () ->
        let sk, pk = Schnorr.keypair_of_seed "seed" in
        let s = Schnorr.sign sk "message" in
        check_int "size" 64 (String.length s);
        check_bool "valid" true (Schnorr.verify pk ~msg:"message" ~signature:s));
    Alcotest.test_case "wrong message rejected" `Quick (fun () ->
        let sk, pk = Schnorr.keypair_of_seed "seed" in
        let s = Schnorr.sign sk "message" in
        check_bool "invalid" false (Schnorr.verify pk ~msg:"other" ~signature:s));
    Alcotest.test_case "wrong key rejected" `Quick (fun () ->
        let sk, _ = Schnorr.keypair_of_seed "seed-a" in
        let _, pk_b = Schnorr.keypair_of_seed "seed-b" in
        let s = Schnorr.sign sk "message" in
        check_bool "invalid" false (Schnorr.verify pk_b ~msg:"message" ~signature:s));
    Alcotest.test_case "tampered signature rejected" `Quick (fun () ->
        let sk, pk = Schnorr.keypair_of_seed "seed" in
        let s = Bytes.of_string (Schnorr.sign sk "message") in
        Bytes.set s 40 (Char.chr (Char.code (Bytes.get s 40) lxor 1));
        check_bool "invalid" false
          (Schnorr.verify pk ~msg:"message" ~signature:(Bytes.to_string s)));
    Alcotest.test_case "truncated signature rejected" `Quick (fun () ->
        let _, pk = Schnorr.keypair_of_seed "seed" in
        check_bool "invalid" false (Schnorr.verify pk ~msg:"m" ~signature:"short"));
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let sk, _ = Schnorr.keypair_of_seed "seed" in
        check "same" (Hex.encode (Schnorr.sign sk "m")) (Hex.encode (Schnorr.sign sk "m")));
    Alcotest.test_case "pubkey bytes roundtrip" `Quick (fun () ->
        let _, pk = Schnorr.keypair_of_seed "seed" in
        let b = Schnorr.public_key_bytes pk in
        check_int "33 bytes" 33 (String.length b);
        match Schnorr.public_key_of_bytes b with
        | Some pk' ->
            check "same" (Hex.encode b) (Hex.encode (Schnorr.public_key_bytes pk'))
        | None -> Alcotest.fail "decode failed");
  ]

(* ---------------- Signer ---------------- *)

let signer_scheme_tests name scheme =
  [
    Alcotest.test_case (name ^ ": sign/verify") `Quick (fun () ->
        let s = Signer.make scheme ~seed:"node-1" in
        let tag = Signer.sign s "payload" in
        check_int "sig size" Signer.signature_size (String.length tag);
        check_int "id size" Signer.id_size (String.length (Signer.id s));
        check_bool "valid" true
          (Signer.verify scheme ~id:(Signer.id s) ~msg:"payload" ~signature:tag));
    Alcotest.test_case (name ^ ": cross-identity rejected") `Quick (fun () ->
        let a = Signer.make scheme ~seed:"a" and b = Signer.make scheme ~seed:"b" in
        let tag = Signer.sign a "payload" in
        check_bool "invalid" false
          (Signer.verify scheme ~id:(Signer.id b) ~msg:"payload" ~signature:tag));
    Alcotest.test_case (name ^ ": deterministic identity") `Quick (fun () ->
        let a = Signer.make scheme ~seed:"same" and b = Signer.make scheme ~seed:"same" in
        check "ids equal" (Hex.encode (Signer.id a)) (Hex.encode (Signer.id b)));
  ]

let signer_tests =
  signer_scheme_tests "schnorr" Signer.schnorr
  @ signer_scheme_tests "simulation" (Signer.simulation ())
  @ [
      Alcotest.test_case "simulation: unknown id fails" `Quick (fun () ->
          let scheme = Signer.simulation () in
          check_bool "invalid" false
            (Signer.verify scheme ~id:(String.make 33 'x') ~msg:"m"
               ~signature:(String.make 64 'y')));
    ]

(* ---------------- Merkle ---------------- *)

let merkle_tests =
  [
    Alcotest.test_case "empty root is stable" `Quick (fun () ->
        check "same" (Hex.encode (Merkle.root [])) (Hex.encode (Merkle.root [])));
    Alcotest.test_case "single leaf" `Quick (fun () ->
        let root = Merkle.root [ "a" ] in
        let proof = Merkle.proof [ "a" ] 0 in
        check_bool "verifies" true (Merkle.verify ~root ~leaf:"a" proof));
    Alcotest.test_case "proofs verify for all leaves" `Quick (fun () ->
        let leaves = List.init 7 (fun i -> Printf.sprintf "leaf-%d" i) in
        let root = Merkle.root leaves in
        List.iteri
          (fun i leaf ->
            let proof = Merkle.proof leaves i in
            check_bool "verifies" true (Merkle.verify ~root ~leaf proof))
          leaves);
    Alcotest.test_case "wrong leaf fails" `Quick (fun () ->
        let leaves = [ "a"; "b"; "c"; "d" ] in
        let root = Merkle.root leaves in
        let proof = Merkle.proof leaves 1 in
        check_bool "fails" false (Merkle.verify ~root ~leaf:"x" proof));
    Alcotest.test_case "wrong index fails" `Quick (fun () ->
        let leaves = [ "a"; "b"; "c"; "d" ] in
        let root = Merkle.root leaves in
        let proof = Merkle.proof leaves 1 in
        check_bool "fails" false (Merkle.verify ~root ~leaf:"a" proof));
    Alcotest.test_case "out of range raises" `Quick (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Merkle.proof: index out of range") (fun () ->
            ignore (Merkle.proof [ "a" ] 3)));
    Alcotest.test_case "order matters" `Quick (fun () ->
        check_bool "different" false
          (Merkle.root [ "a"; "b" ] = Merkle.root [ "b"; "a" ]));
    qtest "random trees verify" ~count:50
      QCheck2.Gen.(list_size (int_range 1 20) (small_string ~gen:char))
      (fun leaves ->
        let root = Merkle.root leaves in
        List.for_all
          (fun i ->
            Merkle.verify ~root ~leaf:(List.nth leaves i) (Merkle.proof leaves i))
          (List.init (List.length leaves) Fun.id));
  ]

(* ---------------- Batch verification ----------------

   The batched kernels are fast paths, not new semantics: every test
   here pins them to the one-at-a-time reference they replace. *)

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let batch_tests =
  let keys =
    Array.init 6 (fun i -> Schnorr.keypair_of_seed (Printf.sprintf "bk%d" i))
  in
  let triple i msg =
    let sk, pk = keys.(i mod Array.length keys) in
    (pk, msg, Schnorr.sign sk msg)
  in
  let reference sigs =
    let bad = ref [] in
    Array.iteri
      (fun i (pk, msg, signature) ->
        if not (Schnorr.verify pk ~msg ~signature) then bad := i :: !bad)
      sigs;
    match List.rev !bad with [] -> `All_valid | l -> `Invalid l
  in
  [
    Alcotest.test_case "empty batch is all valid" `Quick (fun () ->
        check_bool "empty" true (Schnorr.batch_verify [||] = `All_valid));
    Alcotest.test_case "all valid across chunk boundaries" `Slow (fun () ->
        let sigs = Array.init 37 (fun i -> triple i (Printf.sprintf "m%d" i)) in
        check_bool "valid" true (Schnorr.batch_verify sigs = `All_valid));
    Alcotest.test_case "one invalid at every position names the culprit"
      `Slow (fun () ->
        let n = 9 in
        for bad = 0 to n - 1 do
          let sigs =
            Array.init n (fun i -> triple i (Printf.sprintf "m%d" i))
          in
          let pk, msg, s = sigs.(bad) in
          sigs.(bad) <- (pk, msg, flip_byte s 3);
          match Schnorr.batch_verify sigs with
          | `Invalid [ i ] -> check_int "culprit" bad i
          | `Invalid _ -> Alcotest.fail "blamed more than the culprit"
          | `All_valid -> Alcotest.fail "missed the invalid signature"
        done);
    qtest "batch_verify = iterated verify" ~count:12
      QCheck2.Gen.(list_size (int_bound 12) (pair (int_bound 5) (int_bound 3)))
      (fun spec ->
        let sigs =
          Array.of_list
            (List.mapi
               (fun i (k, corrupt) ->
                 let pk, msg, s = triple k (Printf.sprintf "msg-%d" i) in
                 if corrupt = 0 then (pk, msg, flip_byte s (i mod 64))
                 else (pk, msg, s))
               spec)
        in
        Schnorr.batch_verify sigs = reference sigs);
    qtest "batch_verify with custom run_chunks = default" ~count:8
      QCheck2.Gen.(list_size (int_bound 10) (pair (int_bound 5) (int_bound 3)))
      (fun spec ->
        let sigs =
          Array.of_list
            (List.mapi
               (fun i (k, corrupt) ->
                 let pk, msg, s = triple k (Printf.sprintf "msg-%d" i) in
                 if corrupt = 0 then (pk, msg, flip_byte s (i mod 64))
                 else (pk, msg, s))
               spec)
        in
        Schnorr.batch_verify
          ~run_chunks:(fun fs -> List.map (fun f -> f ()) fs)
          sigs
        = Schnorr.batch_verify sigs);
  ]

let verify_many_tests =
  let scheme_cases =
    [ ("simulation", Signer.simulation ()); ("schnorr", Signer.schnorr) ]
  in
  List.concat_map
    (fun (name, scheme) ->
      let signers =
        Array.init 4 (fun i ->
            Signer.make scheme ~seed:(Printf.sprintf "vm-%s-%d" name i))
      in
      let reference sigs =
        let bad = ref [] in
        Array.iteri
          (fun i (id, msg, signature) ->
            if not (Signer.verify scheme ~id ~msg ~signature) then
              bad := i :: !bad)
          sigs;
        List.rev !bad
      in
      [
        Alcotest.test_case (name ^ ": empty") `Quick (fun () ->
            check_bool "empty" true (Signer.verify_many scheme [||] = []));
        qtest
          (name ^ ": verify_many = iterated verify")
          ~count:(if name = "schnorr" then 8 else 60)
          QCheck2.Gen.(
            list_size (int_bound 10) (pair (int_bound 3) (int_bound 3)))
          (fun spec ->
            let sigs =
              Array.of_list
                (List.mapi
                   (fun i (k, corrupt) ->
                     let signer = signers.(k) in
                     let msg = Printf.sprintf "vm-msg-%d" i in
                     let s = Signer.sign signer msg in
                     let s = if corrupt = 0 then flip_byte s (i mod 32) else s in
                     (Signer.id signer, msg, s))
                   spec)
            in
            Signer.verify_many scheme sigs = reference sigs);
      ])
    scheme_cases

let keyed_hmac_tests =
  [
    qtest "Keyed.sha256 = Hmac.sha256"
      QCheck2.Gen.(
        pair (string_size (int_bound 100)) (string_size (int_bound 300)))
      (fun (key, msg) ->
        Hmac.Keyed.sha256 (Hmac.Keyed.create ~key) msg = Hmac.sha256 ~key msg);
    qtest "Keyed.sha256_list = Hmac.sha256_list"
      QCheck2.Gen.(
        pair
          (string_size (int_bound 100))
          (list_size (int_bound 5) (string_size (int_bound 80))))
      (fun (key, parts) ->
        Hmac.Keyed.sha256_list (Hmac.Keyed.create ~key) parts
        = Hmac.sha256_list ~key parts);
    Alcotest.test_case "one keyed context serves many messages" `Quick
      (fun () ->
        let k = Hmac.Keyed.create ~key:"k" in
        List.iter
          (fun m -> check "same" (Hex.encode (Hmac.sha256 ~key:"k" m))
               (Hex.encode (Hmac.Keyed.sha256 k m)))
          [ ""; "a"; String.make 200 'x' ]);
  ]

let () =
  Alcotest.run "lo_crypto"
    [
      ("hex", hex_tests);
      ("sha256", sha256_tests);
      ("hmac", hmac_tests);
      ("hmac-drbg", drbg_tests);
      ("uint256", uint256_tests);
      ("uint256-edge", uint256_edge_tests);
      ("secp256k1", secp_tests);
      ("secp256k1-properties", secp_property_tests);
      ("schnorr", schnorr_tests);
      ("schnorr-batch", batch_tests);
      ("signer", signer_tests);
      ("verify-many", verify_many_tests);
      ("hmac-keyed", keyed_hmac_tests);
      ("merkle", merkle_tests);
    ]
