(* Tests for lo_obs: trace ring/counter semantics, JSONL round-trips,
   the audit's invariant state machines on synthetic streams, and
   end-to-end properties on real simulator runs (byte-identical traces
   across same-seed runs; a misbehaving node makes the audit fail and
   names it). *)

open Lo_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let e at ev = { Trace.at; ev }

(* ---------------- Trace ---------------- *)

let send ?(src = 0) ?(dst = 1) ?(tag = "a") ?(bytes = 10) () =
  Event.Send { src; dst; tag; bytes }

let deliver ?(src = 0) ?(dst = 1) ?(tag = "a") ?(bytes = 10) () =
  Event.Deliver { src; dst; tag; bytes }

let drop ?(src = 0) ?(dst = 1) ?(tag = "a") ?(bytes = 10) reason =
  Event.Drop { src; dst; tag; bytes; reason }

let trace_tests =
  [
    Alcotest.test_case "kind counters" `Quick (fun () ->
        let t = Trace.create () in
        Trace.emit t ~at:0.5 (send ());
        Trace.emit t ~at:0.6 (deliver ());
        Trace.emit t ~at:0.7 (send ~tag:"b" ());
        check_int "send" 2 (Trace.count t "send");
        check_int "deliver" 1 (Trace.count t "deliver");
        check_int "none" 0 (Trace.count t "crash");
        check_bool "kind_counts" true
          (Trace.kind_counts t = [ ("deliver", 1); ("send", 2) ]);
        check_bool "last_at" true (Trace.last_at t = 0.7));
    Alcotest.test_case "ring evicts oldest, aggregates survive" `Quick
      (fun () ->
        let t = Trace.create ~capacity:4 () in
        for i = 0 to 9 do
          Trace.emit t ~at:(float_of_int i) (send ~bytes:i ())
        done;
        check_int "length" 4 (Trace.length t);
        check_int "evicted" 6 (Trace.evicted t);
        check_int "total" 10 (Trace.total t);
        check_int "counter covers evicted" 10 (Trace.count t "send");
        (* survivors are the newest four, oldest first *)
        check_bool "survivors" true
          (List.map (fun en -> en.Trace.at) (Trace.events t)
          = [ 6.; 7.; 8.; 9. ]));
    Alcotest.test_case "invalid capacity rejected" `Quick (fun () ->
        match Trace.create ~capacity:0 () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "accepted capacity 0");
    Alcotest.test_case "tag flows split by outcome" `Quick (fun () ->
        let t = Trace.create () in
        Trace.emit t ~at:0.1 (send ~bytes:10 ());
        Trace.emit t ~at:0.2 (deliver ~bytes:10 ());
        Trace.emit t ~at:0.3 (send ~bytes:5 ());
        Trace.emit t ~at:0.4 (drop ~bytes:5 Event.Loss);
        Trace.emit t ~at:0.5 (drop ~bytes:7 Event.Blocked);
        (match Trace.tag_flows t with
        | [ ("a", f) ] ->
            check_int "sent msgs" 2 f.Trace.sent_msgs;
            check_int "sent bytes" 15 f.Trace.sent_bytes;
            check_int "delivered" 1 f.Trace.delivered_msgs;
            check_int "dropped bytes" 5 f.Trace.dropped_bytes;
            check_int "blocked msgs" 1 f.Trace.blocked_msgs;
            check_int "blocked bytes" 7 f.Trace.blocked_bytes
        | _ -> Alcotest.fail "expected one tag");
        match Trace.node_flows t with
        | [ (0, io0); (1, io1) ] ->
            check_int "out msgs" 2 io0.Trace.out_msgs;
            check_int "out bytes" 15 io0.Trace.out_bytes;
            check_int "in msgs" 1 io1.Trace.in_msgs;
            check_int "in bytes" 10 io1.Trace.in_bytes
        | _ -> Alcotest.fail "expected two nodes");
    Alcotest.test_case "span nesting tracked" `Quick (fun () ->
        let t = Trace.create () in
        Trace.emit t ~at:1.0 (Event.Span_begin { node = 0; key = "recon:1" });
        Trace.emit t ~at:1.0 (Event.Span_begin { node = 0; key = "recon:2" });
        check_int "open" 2 (Trace.open_spans t);
        Trace.emit t ~at:2.0
          (Event.Span_end { node = 0; key = "recon:1"; ok = true });
        check_int "one left" 1 (Trace.open_spans t);
        check_int "no errors" 0 (Trace.span_errors t);
        Trace.emit t ~at:3.0
          (Event.Span_end { node = 9; key = "recon:9"; ok = false });
        check_int "stray end counted" 1 (Trace.span_errors t);
        check_int "still one open" 1 (Trace.open_spans t));
    Alcotest.test_case "phases accumulate outside the stream" `Quick
      (fun () ->
        let t = Trace.create () in
        Trace.note_phase t "build" 0.25;
        Trace.note_phase t "run" 1.0;
        Trace.note_phase t "build" 0.25;
        check_bool "order + accumulation" true
          (Trace.phases t = [ ("build", 0.5); ("run", 1.0) ]);
        check_int "not events" 0 (Trace.length t));
  ]

(* ---------------- JSONL ---------------- *)

(* One entry per constructor; times picked to survive %.6f exactly. *)
let all_constructors =
  [
    e 0.5 (send ~tag:"lo:txs" ());
    e 1.25 (deliver ~tag:"lo:digest" ~bytes:123 ());
    e 1.5 (drop Event.Blocked);
    e 1.75 (drop Event.Loss);
    e 2.0 (drop Event.Down);
    e 2.25 (drop Event.In_flight);
    e 2.5 (Event.Span_begin { node = 3; key = "recon:7" });
    e 2.75 (Event.Span_end { node = 3; key = "recon:7"; ok = false });
    e 3.0 (Event.Commit_append { node = 2; seq = 4; count = 9; ids = [ 1; 2 ] });
    e 3.0 (Event.Commit_append { node = 2; seq = 5; count = 9; ids = [] });
    e 3.25 (Event.Suspect { node = 1; peer = 0 });
    e 3.5 (Event.Clear { node = 1; peer = 0 });
    e 3.75 (Event.Expose { node = 1; peer = 0 });
    e 4.0 (Event.Violation { node = 1; peer = 0; kind = "injection" });
    e 4.25
      (Event.Block_accept
         {
           node = 5;
           creator = 0;
           height = 2;
           bundles = [ (1, [ 10; 20 ]); (2, []) ];
           omitted = [ 30 ];
           appendix = 3;
         });
    e 4.5 (Event.Crash { node = 6 });
    e 4.75 (Event.Restart { node = 6 });
    e 4.8 (Event.Conn_down { node = 2; peer = 6; reason = "reset" });
    e 4.9 (Event.Conn_up { node = 2; peer = 6; attempts = 3 });
  ]

let jsonl_tests =
  [
    Alcotest.test_case "every constructor round-trips" `Quick (fun () ->
        List.iter
          (fun entry ->
            match Jsonl.parse_line (Jsonl.line entry) with
            | Ok back ->
                check_bool (Jsonl.line entry) true (back = entry)
            | Error msg -> Alcotest.fail msg)
          all_constructors);
    Alcotest.test_case "document round-trips through a trace" `Quick
      (fun () ->
        let t = Trace.create () in
        List.iter (fun en -> Trace.emit t ~at:en.Trace.at en.Trace.ev)
          all_constructors;
        match Jsonl.parse (Jsonl.to_string t) with
        | Ok back -> check_bool "equal" true (back = all_constructors)
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "garbage rejected with line number" `Quick (fun () ->
        (match Jsonl.parse_line "not json at all" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted garbage");
        let doc = Jsonl.line (List.hd all_constructors) ^ "\nnonsense\n" in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        match Jsonl.parse doc with
        | Error msg -> check_bool "names line 2" true (contains msg "2")
        | Ok _ -> Alcotest.fail "accepted garbage document");
    Alcotest.test_case "unknown event kind rejected" `Quick (fun () ->
        match Jsonl.parse_line {|{"t":1.000000,"ev":"warp","node":1}|} with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted unknown kind");
    Alcotest.test_case "blank lines skipped" `Quick (fun () ->
        let doc = "\n" ^ Jsonl.line (List.hd all_constructors) ^ "\n\n" in
        match Jsonl.parse doc with
        | Ok [ one ] -> check_bool "entry" true (one = List.hd all_constructors)
        | Ok _ -> Alcotest.fail "wrong count"
        | Error msg -> Alcotest.fail msg);
  ]

(* ---------------- Audit on synthetic streams ---------------- *)

let violations_of ?grace ?horizon entries =
  (Audit.check ?grace ?horizon entries).Audit.violations

let invariants vs = List.map (fun v -> v.Audit.invariant) vs

let audit_tests =
  [
    Alcotest.test_case "clean commit stream passes" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 2; ids = [ 10; 20 ] });
            e 2.0 (Event.Commit_append { node = 0; seq = 2; count = 3; ids = [ 30 ] });
          ]
        in
        check_bool "ok" true (Audit.ok (Audit.check entries)));
    Alcotest.test_case "commit seq skip flagged" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 1; ids = [ 10 ] });
            e 2.0 (Event.Commit_append { node = 0; seq = 3; count = 2; ids = [ 20 ] });
          ]
        in
        check_bool "flagged" true
          (List.mem "commit-monotonic" (invariants (violations_of entries))));
    Alcotest.test_case "commit counter mismatch flagged" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 2; ids = [ 10; 20 ] });
            e 2.0 (Event.Commit_append { node = 0; seq = 2; count = 9; ids = [ 30 ] });
          ]
        in
        check_bool "flagged" true
          (List.mem "commit-monotonic" (invariants (violations_of entries))));
    Alcotest.test_case "duplicate committed id flagged" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 2; ids = [ 10; 20 ] });
            e 2.0 (Event.Commit_append { node = 0; seq = 2; count = 3; ids = [ 10 ] });
          ]
        in
        check_bool "flagged" true
          (List.mem "commit-monotonic" (invariants (violations_of entries))));
    Alcotest.test_case "mid-trace adoption is not a violation" `Quick
      (fun () ->
        (* A bounded ring can lose a node's early appends; the first
           sighting at seq > 1 becomes the baseline. *)
        let entries =
          [
            e 5.0 (Event.Commit_append { node = 0; seq = 7; count = 30; ids = [ 10 ] });
            e 6.0 (Event.Commit_append { node = 0; seq = 8; count = 31; ids = [ 20 ] });
          ]
        in
        check_bool "ok" true (Audit.ok (Audit.check entries)));
    Alcotest.test_case "block injection flagged, names creator" `Quick
      (fun () ->
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 2; ids = [ 10; 20 ] });
            e 2.0
              (Event.Block_accept
                 { node = 1; creator = 0; height = 1;
                   bundles = [ (1, [ 10; 20; 99 ]) ]; omitted = [];
                   appendix = 0 });
          ]
        in
        match violations_of entries with
        | [ v ] ->
            check_bool "invariant" true (v.Audit.invariant = "canonical-order");
            check_int "guilty creator" 0 v.Audit.node
        | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs)));
    Alcotest.test_case "silent censorship flagged, omission claim ok" `Quick
      (fun () ->
        let commit =
          e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 2; ids = [ 10; 20 ] })
        in
        let block ~omitted =
          e 2.0
            (Event.Block_accept
               { node = 1; creator = 0; height = 1;
                 bundles = [ (1, [ 10 ]) ]; omitted; appendix = 0 })
        in
        check_bool "silent omission flagged" true
          (List.mem "canonical-order"
             (invariants (violations_of [ commit; block ~omitted:[] ])));
        check_bool "declared omission clean" true
          (Audit.ok (Audit.check [ commit; block ~omitted:[ 20 ] ])));
    Alcotest.test_case "exposed creator suppresses canonical-order" `Quick
      (fun () ->
        (* The protocol caught the creator — that is the success mode,
           even when the exposure lands after the block in the trace. *)
        let entries =
          [
            e 1.0 (Event.Commit_append { node = 0; seq = 1; count = 1; ids = [ 10 ] });
            e 2.0
              (Event.Block_accept
                 { node = 1; creator = 0; height = 1;
                   bundles = [ (1, [ 10; 99 ]) ]; omitted = []; appendix = 0 });
            e 3.0 (Event.Expose { node = 1; peer = 0 });
          ]
        in
        check_bool "suppressed" true (Audit.ok (Audit.check entries)));
    Alcotest.test_case "standing suspicion of an up node flagged" `Quick
      (fun () ->
        let entries = [ e 1.0 (Event.Suspect { node = 1; peer = 0 }) ] in
        match violations_of ~horizon:30.0 entries with
        | [ v ] ->
            check_bool "invariant" true
              (v.Audit.invariant = "suspicion-liveness");
            check_int "guilty suspect" 0 v.Audit.node
        | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs)));
    Alcotest.test_case "cleared suspicion passes" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Suspect { node = 1; peer = 0 });
            e 4.0 (Event.Clear { node = 1; peer = 0 });
          ]
        in
        check_bool "ok" true
          (Audit.ok (Audit.check ~horizon:30.0 entries)));
    Alcotest.test_case "restart resets the suspicion grace clock" `Quick
      (fun () ->
        let entries =
          [
            e 1.0 (Event.Suspect { node = 1; peer = 0 });
            e 25.0 (Event.Crash { node = 0 });
            e 26.0 (Event.Restart { node = 0 });
          ]
        in
        let report = Audit.check ~horizon:30.0 entries in
        check_bool "excused" true (Audit.ok report);
        check_int "counted as standing" 1 report.Audit.standing_suspicions);
    Alcotest.test_case "suspicion of a down node excused" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Suspect { node = 1; peer = 0 });
            e 2.0 (Event.Crash { node = 0 });
          ]
        in
        check_bool "excused" true
          (Audit.ok (Audit.check ~horizon:40.0 entries)));
    Alcotest.test_case "unmatched send breaks conservation" `Quick (fun () ->
        let entries = [ e 1.0 (send ()) ] in
        check_bool "flagged" true
          (List.mem "bandwidth-conservation"
             (invariants (violations_of entries))));
    Alcotest.test_case "send + in-flight drop conserves" `Quick (fun () ->
        let entries =
          [ e 1.0 (send ()); e 20.0 (drop Event.In_flight) ]
        in
        check_bool "ok" true (Audit.ok (Audit.check entries)));
    Alcotest.test_case "blocked drops are excluded" `Quick (fun () ->
        let entries = [ e 1.0 (drop Event.Blocked) ] in
        check_bool "ok" true (Audit.ok (Audit.check entries)));
    Alcotest.test_case "byte mismatch caught even with matching counts"
      `Quick (fun () ->
        let entries =
          [ e 1.0 (send ~bytes:10 ()); e 1.2 (deliver ~bytes:9 ()) ]
        in
        check_bool "flagged" true
          (List.mem "bandwidth-conservation"
             (invariants (violations_of entries))));
    Alcotest.test_case "double span begin flagged" `Quick (fun () ->
        let entries =
          [
            e 1.0 (Event.Span_begin { node = 0; key = "recon:1" });
            e 2.0 (Event.Span_begin { node = 0; key = "recon:1" });
          ]
        in
        check_bool "flagged" true
          (List.mem "span-balance" (invariants (violations_of entries))));
    Alcotest.test_case "span end without begin flagged" `Quick (fun () ->
        let entries =
          [ e 1.0 (Event.Span_end { node = 0; key = "recon:1"; ok = true }) ]
        in
        check_bool "flagged" true
          (List.mem "span-balance" (invariants (violations_of entries))));
    Alcotest.test_case "unclosed span tolerated and counted" `Quick (fun () ->
        let entries =
          [ e 1.0 (Event.Span_begin { node = 0; key = "recon:1" }) ]
        in
        let report = Audit.check entries in
        check_bool "ok" true (Audit.ok report);
        check_int "unclosed" 1 report.Audit.unclosed_spans);
    Alcotest.test_case "evicted trace is unsound to audit" `Quick (fun () ->
        let t = Trace.create ~capacity:2 () in
        for i = 0 to 4 do
          Trace.emit t ~at:(float_of_int i) (send ~bytes:i ())
        done;
        check_bool "flagged" true
          (List.exists
             (fun v -> v.Audit.invariant = "truncated-trace")
             (Audit.check_trace t).Audit.violations));
  ]

(* ---------------- End to end ---------------- *)

open Lo_sim

let small_scale seed =
  { Runner.nodes = 16; reps = 1; rate = 5.; duration = 6.; seed }

let traced_run ?behaviors ?(drain = 20.) ~seed () =
  let trace = Trace.create () in
  let scale = small_scale seed in
  let run =
    Runner.run_lo ?behaviors ~scale ~seed ~drain ~trace
      ~blocks:(Lo_core.Policy.Lo_fifo, 4.0) ()
  in
  (trace, run)

let e2e_tests =
  [
    Alcotest.test_case "same seed, byte-identical trace; audit clean" `Slow
      (fun () ->
        let t1, r1 = traced_run ~seed:4242 () in
        let t2, _ = traced_run ~seed:4242 () in
        let doc1 = Jsonl.to_string t1 and doc2 = Jsonl.to_string t2 in
        check_bool "non-trivial" true (Trace.total t1 > 1000);
        check_bool "byte-identical" true (String.equal doc1 doc2);
        let report = Audit.check_trace ~horizon:r1.Runner.horizon t1 in
        check_bool (Audit.summary report) true (Audit.ok report);
        (* the exported document replays through the parser to the same
           verdict *)
        match Jsonl.parse doc1 with
        | Ok entries ->
            check_int "parses completely" (Trace.length t1)
              (List.length entries);
            check_bool "parsed audit clean" true
              (Audit.ok (Audit.check ~horizon:r1.Runner.horizon entries))
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "tracing does not perturb the simulation" `Slow
      (fun () ->
        let _, traced = traced_run ~seed:777 () in
        let scale = small_scale 777 in
        let untraced =
          Runner.run_lo ~scale ~seed:777 ~drain:20.
            ~blocks:(Lo_core.Policy.Lo_fifo, 4.0) ()
        in
        let bytes r =
          Lo_net.Network.total_bytes r.Runner.deployment.Scenario.net
        in
        check_int "same wire bytes" (bytes untraced) (bytes traced);
        check_int "same messages"
          (Lo_net.Network.messages_sent untraced.Runner.deployment.Scenario.net)
          (Lo_net.Network.messages_sent traced.Runner.deployment.Scenario.net));
    Alcotest.test_case "silent censor fails the audit and is named" `Slow
      (fun () ->
        (* Node 0 never answers: suspicions of it can never resolve, so
           the suspicion-liveness rule must convict node 0 — and only
           node 0. Drain long enough for escalation + grace. *)
        let t, r =
          traced_run ~drain:40.
            ~behaviors:(fun i ->
              if i = 0 then Lo_core.Node.Silent_censor else Lo_core.Node.Honest)
            ~seed:4242 ()
        in
        let report = Audit.check_trace ~horizon:r.Runner.horizon t in
        check_bool "audit fails" true (not (Audit.ok report));
        check_bool "has violations" true (report.Audit.violations <> []);
        List.iter
          (fun v ->
            check_bool "all suspicion-liveness" true
              (v.Audit.invariant = "suspicion-liveness");
            check_int "guilty node" 0 v.Audit.node)
          report.Audit.violations);
  ]

let () =
  Alcotest.run "lo_obs"
    [
      ("trace", trace_tests);
      ("jsonl", jsonl_tests);
      ("audit", audit_tests);
      ("e2e", e2e_tests);
    ]
