(* Integration tests for the full LØ node: dissemination, the
   accountability properties of Sec. 3.2 (accuracy and completeness),
   detection of every manipulation primitive of Sec. 2.2, and
   bookkeeping like settled-transaction handling across blocks. *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type deployment = {
  net : Net.t;
  nodes : Node.t array;
  scheme : Signer.scheme;
  client : Signer.t;
}

let mk_network ?(behaviors = fun _ -> Node.Honest) ?(n = 25) ~seed () =
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "n%d-%d" seed i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Lo_net.Rng.create (seed + 1) in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:8 ~max_in:125 in
  let config = Node.default_config scheme in
  let nodes =
    Array.init n (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:(behaviors i))
  in
  Array.iter Node.start nodes;
  { net; nodes; scheme; client = Signer.make scheme ~seed:"client" }

let submit d ~target ~fee payload =
  let tx = Tx.create ~signer:d.client ~fee ~created_at:(Net.now d.net) ~payload in
  Node.submit_tx d.nodes.(target) tx;
  tx

let count_nodes d pred =
  Array.fold_left (fun acc node -> if pred node then acc + 1 else acc) 0 d.nodes

let dissemination_tests =
  [
    Alcotest.test_case "all nodes learn all transactions" `Slow (fun () ->
        let d = mk_network ~seed:101 () in
        let events = ref 0 in
        Array.iter
          (fun node ->
            (Node.hooks node).Node.on_tx_content <- (fun _ -> incr events))
          d.nodes;
        for k = 0 to 9 do
          ignore (submit d ~target:(k mod 25) ~fee:(10 + k) (Printf.sprintf "p%d" k))
        done;
        Net.run_until d.net 30.0;
        check_int "content everywhere" (10 * 25) !events;
        Array.iter
          (fun node -> check_int "mempool" 10 (Mempool.size (Node.mempool node)))
          d.nodes);
    Alcotest.test_case "all nodes commit in some order" `Slow (fun () ->
        let d = mk_network ~seed:102 () in
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:5 (Printf.sprintf "c%d" k))
        done;
        Net.run_until d.net 30.0;
        Array.iter
          (fun node ->
            check_int "committed" 5 (Commitment.Log.counter (Node.commitment_log node));
            check_int "no missing content" 0 (Node.missing_content_count node))
          d.nodes);
    Alcotest.test_case "invalid transactions are dropped" `Slow (fun () ->
        let d = mk_network ~n:10 ~seed:103 () in
        let tx = submit d ~target:0 ~fee:3 "valid" in
        (* Corrupt a fresh transaction and push it over the wire. *)
        let raw = Bytes.of_string (Tx.to_string tx) in
        Bytes.set raw 40 (Char.chr (Char.code (Bytes.get raw 40) lxor 1));
        let bad = Tx.of_string (Bytes.to_string raw) in
        Node.submit_tx d.nodes.(1) bad;
        Net.run_until d.net 20.0;
        Array.iter
          (fun node -> check_int "only valid" 1 (Mempool.size (Node.mempool node)))
          d.nodes);
  ]

let accuracy_tests =
  [
    Alcotest.test_case "no suspicion or exposure among honest nodes" `Slow
      (fun () ->
        let d = mk_network ~seed:104 () in
        for k = 0 to 9 do
          ignore (submit d ~target:(2 * k mod 25) ~fee:(1 + k) (Printf.sprintf "h%d" k))
        done;
        Net.run_until d.net 40.0;
        Array.iter
          (fun node ->
            let s, e = Accountability.counts (Node.accountability node) in
            check_int "no suspects" 0 s;
            check_int "no exposures" 0 e)
          d.nodes);
    Alcotest.test_case "honest blocks pass inspection everywhere" `Slow (fun () ->
        let d = mk_network ~seed:105 () in
        for k = 0 to 9 do
          ignore (submit d ~target:k ~fee:(5 + k) (Printf.sprintf "b%d" k))
        done;
        Net.run_until d.net 20.0;
        let violations = ref 0 in
        Array.iter
          (fun node ->
            (Node.hooks node).Node.on_violation <-
              (fun _ ~block:_ -> incr violations))
          d.nodes;
        check_bool "block" true (Node.build_block d.nodes.(3) ~policy:Policy.Lo_fifo <> None);
        Net.run_until d.net 35.0;
        check_int "clean" 0 !violations);
    Alcotest.test_case "temporarily slow node recovers from suspicion" `Slow
      (fun () ->
        let d = mk_network ~n:15 ~seed:106 () in
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:2 (Printf.sprintf "s%d" k))
        done;
        (* Node 7 crashes for a while: all messages to it are lost. *)
        Net.set_down d.net 7 true;
        ignore (submit d ~target:0 ~fee:9 "while-down");
        Net.run_until d.net 20.0;
        let id7 = Node.node_id d.nodes.(7) in
        let suspecting_before =
          count_nodes d (fun node ->
              Accountability.is_suspected (Node.accountability node) id7)
        in
        check_bool "suspected while down" true (suspecting_before > 0);
        (* It comes back; suspicion must clear (temporal accuracy). *)
        Net.set_down d.net 7 false;
        Net.run_until d.net 60.0;
        let suspecting_after =
          count_nodes d (fun node ->
              Accountability.is_suspected (Node.accountability node) id7)
        in
        check_int "cleared" 0 suspecting_after;
        let exposed =
          count_nodes d (fun node ->
              Accountability.is_exposed (Node.accountability node) id7)
        in
        check_int "never exposed" 0 exposed);
  ]

let completeness_tests =
  [
    Alcotest.test_case "silent censor suspected by every correct node" `Slow
      (fun () ->
        let d =
          mk_network ~seed:107
            ~behaviors:(fun i -> if i = 5 then Node.Silent_censor else Node.Honest)
            ()
        in
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:(50 + k) (Printf.sprintf "w%d" k))
        done;
        Net.run_until d.net 60.0;
        let bad = Node.node_id d.nodes.(5) in
        let suspecting =
          count_nodes d (fun node ->
              Node.index node <> 5
              && Accountability.is_suspected (Node.accountability node) bad)
        in
        check_int "all suspect" 24 suspecting);
    Alcotest.test_case "equivocator exposed by every correct node" `Slow
      (fun () ->
        let d =
          mk_network ~seed:108
            ~behaviors:(fun i -> if i = 3 then Node.Equivocator else Node.Honest)
            ()
        in
        for k = 0 to 9 do
          ignore (submit d ~target:(k mod 25) ~fee:(10 + k) (Printf.sprintf "q%d" k))
        done;
        (* make the forks diverge *)
        ignore (submit d ~target:3 ~fee:99 "fork-me");
        Net.run_until d.net 90.0;
        let bad = Node.node_id d.nodes.(3) in
        let exposing =
          count_nodes d (fun node ->
              Node.index node <> 3
              && Accountability.is_exposed (Node.accountability node) bad)
        in
        check_int "all expose" 24 exposing);
  ]

let block_misbehavior_case name behavior =
  Alcotest.test_case name `Slow (fun () ->
      let d =
        mk_network ~n:20
          ~seed:(Hashtbl.hash name)
          ~behaviors:(fun i -> if i = 0 then behavior else Node.Honest)
          ()
      in
      for k = 0 to 19 do
        ignore
          (submit d ~target:(1 + (k mod 19)) ~fee:(10 + k) (Printf.sprintf "%s%d" name k))
      done;
      Net.run_until d.net 20.0;
      check_bool "block" true (Node.build_block d.nodes.(0) ~policy:Policy.Lo_fifo <> None);
      Net.run_until d.net 45.0;
      let bad = Node.node_id d.nodes.(0) in
      let exposing =
        count_nodes d (fun node ->
            Node.index node <> 0
            && Accountability.is_exposed (Node.accountability node) bad)
      in
      check_int "all expose" 19 exposing)

let detection_tests =
  [
    block_misbehavior_case "injector exposed" Node.Block_injector;
    block_misbehavior_case "reorderer exposed" Node.Block_reorderer;
    block_misbehavior_case "blockspace censor exposed"
      (Node.Blockspace_censor (fun tx -> tx.Tx.fee >= 20));
    Alcotest.test_case "tx censor starves only direct submissions" `Slow
      (fun () ->
        (* A Stage-I censor drops what is submitted directly to it; txs
           that reach the network elsewhere still spread everywhere,
           including past the censor's commitments. *)
        let pred (tx : Tx.t) = String.length tx.Tx.payload > 0 && tx.Tx.payload.[0] = 'v' in
        let d =
          mk_network ~n:15 ~seed:109
            ~behaviors:(fun i -> if i = 2 then Node.Tx_censor pred else Node.Honest)
            ()
        in
        ignore (submit d ~target:2 ~fee:50 "victim-direct");
        ignore (submit d ~target:5 ~fee:50 "victim-indirect");
        Net.run_until d.net 30.0;
        (* the direct one is gone network-wide *)
        Array.iteri
          (fun i node ->
            if i <> 2 then
              check_int "only indirect" 1 (Mempool.size (Node.mempool node)))
          d.nodes);
  ]

let chain_tests =
  [
    Alcotest.test_case "settled txs leave future blocks" `Slow (fun () ->
        let d = mk_network ~n:15 ~seed:110 () in
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:5 (Printf.sprintf "first-%d" k))
        done;
        Net.run_until d.net 15.0;
        let b1 = Option.get (Node.build_block d.nodes.(0) ~policy:Policy.Lo_fifo) in
        check_int "first block" 5 (List.length b1.Block.txids);
        Net.run_until d.net 25.0;
        for k = 5 to 7 do
          ignore (submit d ~target:k ~fee:5 (Printf.sprintf "second-%d" k))
        done;
        Net.run_until d.net 40.0;
        (* A different leader; its block must contain only the new txs. *)
        let b2 = Option.get (Node.build_block d.nodes.(4) ~policy:Policy.Lo_fifo) in
        check_int "height" 2 b2.Block.height;
        check_int "only new" 3 (List.length b2.Block.txids);
        Net.run_until d.net 55.0;
        (* And the second block passes inspection too. *)
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures" 0 e)
          d.nodes);
    Alcotest.test_case "chain height propagates" `Slow (fun () ->
        let d = mk_network ~n:12 ~seed:111 () in
        ignore (submit d ~target:0 ~fee:5 "one");
        Net.run_until d.net 10.0;
        ignore (Node.build_block d.nodes.(0) ~policy:Policy.Lo_fifo);
        Net.run_until d.net 20.0;
        Array.iter
          (fun node ->
            check_int "height" 1 (Node.chain_height node);
            check_bool "block stored" true (Node.find_block node ~height:1 <> None))
          d.nodes);
    Alcotest.test_case "empty mempool yields no block" `Quick (fun () ->
        let d = mk_network ~n:5 ~seed:112 () in
        check_bool "none" true (Node.build_block d.nodes.(0) ~policy:Policy.Lo_fifo = None));
  ]

let storage_tests =
  [
    Alcotest.test_case "commitment storage grows with traffic" `Slow (fun () ->
        let d = mk_network ~n:10 ~seed:113 () in
        let before = Node.commitment_storage_bytes d.nodes.(0) in
        for k = 0 to 9 do
          ignore (submit d ~target:k ~fee:2 (Printf.sprintf "st%d" k))
        done;
        Net.run_until d.net 20.0;
        check_bool "grows" true (Node.commitment_storage_bytes d.nodes.(0) > before));
    Alcotest.test_case "known digests tracked per peer" `Slow (fun () ->
        let d = mk_network ~n:10 ~seed:114 () in
        ignore (submit d ~target:1 ~fee:2 "x");
        Net.run_until d.net 15.0;
        let peer = Node.node_id d.nodes.(1) in
        match Node.known_digest d.nodes.(0) ~peer with
        | Some digest -> check_bool "progress" true (digest.Commitment.counter >= 1)
        | None -> Alcotest.fail "no digest tracked");
  ]


(* Appended after the main suites: overlay churn and wire-format fuzzing. *)

let rotation_tests =
  [
    Alcotest.test_case "dissemination survives neighbor rotation" `Slow
      (fun () ->
        let d = Lo_sim.Scenario.build_lo ~n:25 ~seed:777 () in
        Lo_sim.Scenario.rotate_neighbors d ~period:3.0 ~until:40.0;
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:10. ~seed:777
            ~n:25
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 40.0;
        let expected = List.length specs in
        Array.iter
          (fun node ->
            check_int "mempool converged" expected (Mempool.size (Node.mempool node)))
          d.nodes;
        (* rotation must not create false accusations *)
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures" 0 e)
          d.nodes);
    Alcotest.test_case "censor suspected even under rotation" `Slow (fun () ->
        let d =
          Lo_sim.Scenario.build_lo ~n:20 ~seed:778
            ~behaviors:(fun i -> if i = 4 then Node.Silent_censor else Node.Honest)
            ()
        in
        Lo_sim.Scenario.rotate_neighbors d ~period:3.0 ~until:60.0;
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:10. ~seed:778
            ~n:20
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 60.0;
        let bad = Node.node_id d.nodes.(4) in
        let suspecting =
          Array.to_list d.nodes
          |> List.filter (fun node ->
                 Node.index node <> 4
                 && Accountability.is_suspected (Node.accountability node) bad)
          |> List.length
        in
        check_bool "most nodes suspect" true (suspecting >= 17));
  ]

let fuzz_tests =
  let rng = Lo_net.Rng.create 31337 in
  let random_bytes n =
    String.init n (fun _ -> Char.chr (Lo_net.Rng.int rng 256))
  in
  [
    Alcotest.test_case "random bytes never crash message decoding" `Quick
      (fun () ->
        for len = 0 to 400 do
          let payload = random_bytes len in
          match Messages.decode payload with
          | _ -> ()
          | exception Lo_codec.Reader.Malformed _ -> ()
        done);
    Alcotest.test_case "mutated valid messages never crash decoding" `Quick
      (fun () ->
        let d = mk_network ~n:3 ~seed:779 () in
        let tx = submit d ~target:0 ~fee:7 "fuzz-me" in
        let log = Node.commitment_log d.nodes.(0) in
        let base =
          [
            Messages.encode (Messages.Tx_batch [ tx ]);
            Messages.encode
              (Messages.Digest_share (Commitment.Log.current_digest log));
            Messages.encode
              (Messages.Commit_request
                 {
                   digest = Commitment.Log.current_digest_light log;
                   delta = [ 1; 2; 3 ];
                   want = [ 4 ];
                   appended = [ 1 ];
                 });
          ]
        in
        List.iter
          (fun msg ->
            for _ = 1 to 200 do
              let b = Bytes.of_string msg in
              let pos = Lo_net.Rng.int rng (Bytes.length b) in
              Bytes.set b pos (Char.chr (Lo_net.Rng.int rng 256));
              match Messages.decode (Bytes.to_string b) with
              | _ -> ()
              | exception Lo_codec.Reader.Malformed _ -> ()
            done)
          base);
    Alcotest.test_case "nodes survive a byte-flipping adversary" `Slow
      (fun () ->
        (* node 0's outbound messages are randomly corrupted in flight;
           the network must neither crash nor falsely expose anyone *)
        let d = mk_network ~n:10 ~seed:780 () in
        let flip = Lo_net.Rng.create 4242 in
        Net.set_delivery_filter d.net
          (Some
             (fun ~src ~dst:_ ~tag:_ ->
               (* drop ~30% of node 0's messages instead of corrupting:
                  the engine carries opaque payloads, so loss models the
                  worst malformed-message outcome (decode failure) *)
               not (src = 0 && Lo_net.Rng.int flip 10 < 3)));
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:3 (Printf.sprintf "fz%d" k))
        done;
        Net.run_until d.net 30.0;
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures" 0 e)
          d.nodes);
  ]

let loss_tests =
  [
    Alcotest.test_case "converges over 10% lossy links" `Slow (fun () ->
        let d = Lo_sim.Scenario.build_lo ~loss_rate:0.10 ~n:20 ~seed:950 () in
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:10. ~seed:950
            ~n:20
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 60.0;
        let expected = List.length specs in
        Array.iter
          (fun node ->
            check_int "mempool converged" expected (Mempool.size (Node.mempool node)))
          d.nodes);
    Alcotest.test_case "loss never causes exposures" `Slow (fun () ->
        let d = Lo_sim.Scenario.build_lo ~loss_rate:0.15 ~n:15 ~seed:951 () in
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:8. ~seed:951
            ~n:15
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 60.0;
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures" 0 e)
          d.nodes);
    Alcotest.test_case "suspicions under loss eventually clear" `Slow (fun () ->
        let d = Lo_sim.Scenario.build_lo ~loss_rate:0.20 ~n:12 ~seed:952 () in
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:4. ~duration:6. ~seed:952
            ~n:12
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 20.0;
        (* heal the network and give probes time to clear everything *)
        Net.set_loss_rate d.net 0.0;
        Net.run_until d.net 80.0;
        Array.iter
          (fun node ->
            let s, _ = Accountability.counts (Node.accountability node) in
            check_int "no lingering suspicion" 0 s)
          d.nodes);
  ]

let wire_invariant_tests =
  [
    Alcotest.test_case "delta/want lists never exceed the configured cap"
      `Slow (fun () ->
        (* Node 14 is replaced by a wire spy: it decodes every LØ
           message addressed to it and asserts the protocol caps. Its
           silence costs nothing — senders' caps are what we check. *)
        let d = mk_network ~n:15 ~seed:970 () in
        let max_delta = (Node.default_config d.scheme).Node.max_delta in
        let violations = ref 0 and observed = ref 0 in
        Net.set_handler d.net 14 (fun _ ~from:_ ~tag:_ payload ->
            match Messages.decode payload with
            | Messages.Commit_request { delta; want; appended; _ } ->
                incr observed;
                if
                  List.length delta > max_delta
                  || List.length want > max_delta
                  || List.length appended > max_delta
                then incr violations
            | Messages.Commit_response { delta; want; appended; _ } ->
                incr observed;
                if
                  List.length delta > max_delta
                  || List.length want > max_delta
                  || List.length appended > max_delta
                then incr violations
            | _ -> ()
            | exception Lo_codec.Reader.Malformed _ -> incr violations);
        for k = 0 to 199 do
          ignore (submit d ~target:(k mod 14) ~fee:(1 + k) (Printf.sprintf "cap%d" k))
        done;
        Net.run_until d.net 25.0;
        check_bool "saw requests" true (!observed > 20);
        check_int "no cap violations" 0 !violations);
  ]

let slow_node_tests =
  [
    Alcotest.test_case "slow node: transient suspicion only, never exposure"
      `Slow (fun () ->
        (* A 20 s-delayed node misses the suspicion deadline (~15 s of
           silence with the default 1 s timeout, 3 retries and 2x
           backoff), so it gets suspected — but its (late) answers keep
           clearing the suspicion: exactly the paper's temporal-accuracy
           behaviour for slow-but-correct nodes. A mere 6 s delay no
           longer trips suspicion at all: that is what the backoff is
           for. *)
        let d = mk_network ~n:12 ~seed:960 () in
        let id6 = Node.node_id d.nodes.(6) in
        let transient = ref 0 and cleared = ref 0 in
        Array.iteri
          (fun i node ->
            if i <> 6 then begin
              (Node.hooks node).Node.on_suspicion <-
                (fun ~suspect ->
                  if String.equal suspect id6 then incr transient);
              (Node.hooks node).Node.on_suspicion_cleared <-
                (fun ~suspect ->
                  if String.equal suspect id6 then incr cleared)
            end)
          d.nodes;
        for k = 0 to 4 do
          ignore (submit d ~target:k ~fee:3 (Printf.sprintf "slow%d" k))
        done;
        Net.run_until d.net 8.0;
        Net.set_node_delay d.net 6 20.0;
        ignore (submit d ~target:0 ~fee:9 "during-slowness");
        Net.run_until d.net 32.0;
        check_bool "transient suspicion happened" true (!transient > 0);
        (* full recovery: everything clears and stays clear *)
        Net.set_node_delay d.net 6 0.0;
        Net.run_until d.net 80.0;
        check_bool "suspicions cleared" true (!cleared >= !transient - 1);
        check_int "steady state clean" 0
          (count_nodes d (fun node ->
               Accountability.is_suspected (Node.accountability node) id6));
        check_int "never exposed" 0
          (count_nodes d (fun node ->
               Accountability.is_exposed (Node.accountability node) id6)));
  ]

let gossip_overlay_tests =
  [
    Alcotest.test_case "LO over a gossip-sampled overlay converges" `Slow
      (fun () ->
        let d = Lo_sim.Scenario.build_lo ~n:25 ~seed:985 () in
        let sampler =
          Lo_sim.Scenario.attach_gossip_sampler d ~period:4.0 ~until:40.0 ()
        in
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:10. ~seed:985
            ~n:25
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 40.0;
        let expected = List.length specs in
        Array.iter
          (fun node ->
            check_int "mempool converged" expected (Mempool.size (Node.mempool node)))
          d.nodes;
        (* the sampler really ran and observed the network *)
        check_bool "sampler converged" true
          (Lo_net.Peer_sampler.observed sampler 0 > 10);
        (* overlays were actually refreshed from sampler output at least
           once for most nodes: neighbour sets should have changed from
           the bootstrap topology for some node *)
        let changed =
          Array.to_list d.nodes
          |> List.filter (fun node ->
                 List.sort compare (Node.neighbors node)
                 <> List.sort compare
                      (Lo_net.Topology.neighbors d.topology (Node.index node)))
          |> List.length
        in
        check_bool "overlay rotated" true (changed > 10);
        (* and accountability accuracy still holds *)
        Array.iter
          (fun node ->
            let _, e = Accountability.counts (Node.accountability node) in
            check_int "no exposures" 0 e)
          d.nodes);
    Alcotest.test_case "censor detection works over gossip overlay" `Slow
      (fun () ->
        let d =
          Lo_sim.Scenario.build_lo ~n:20 ~seed:986
            ~behaviors:(fun i -> if i = 7 then Node.Silent_censor else Node.Honest)
            ()
        in
        ignore (Lo_sim.Scenario.attach_gossip_sampler d ~period:4.0 ~until:60.0 ());
        let specs =
          Lo_sim.Scenario.standard_workload ~rate:5. ~duration:10. ~seed:986
            ~n:20
        in
        ignore (Lo_sim.Scenario.inject_workload d specs);
        Net.run_until d.net 60.0;
        let bad = Node.node_id d.nodes.(7) in
        let suspecting =
          Array.to_list d.nodes
          |> List.filter (fun node ->
                 Node.index node <> 7
                 && Accountability.is_suspected (Node.accountability node) bad)
          |> List.length
        in
        check_bool "suspected by most" true (suspecting >= 16));
  ]

let collusion_tests =
  [
    Alcotest.test_case
      "off-channel transaction in a block is flagged (paper Fig. 5)" `Slow
      (fun () ->
        (* Colluder C learns the victim's transaction off-channel (here:
           we hand it the bytes directly) and stuffs it into its block's
           appendix without ever committing to it. The appendix only
           admits the creator's own fresh transactions, so every
           inspector that knows the content flags an injection. *)
        let d = mk_network ~n:12 ~seed:980 () in
        let victim_tx = submit d ~target:3 ~fee:30 "victim-swap" in
        Net.run_until d.net 15.0;
        (* C = node 0 crafts the manipulated block out-of-band. *)
        let c = d.nodes.(0) in
        let scheme_signer =
          (* reuse C's signing identity through a fresh signer handle *)
          Signer.make d.scheme ~seed:(Printf.sprintf "n%d-%d" 980 0)
        in
        let block =
          Block.create ~signer:scheme_signer ~height:1
            ~prev_hash:Block.genesis_hash ~start_seq:0 ~commit_seq:0
            ~fee_threshold:0 ~txids:[ victim_tx.Tx.id ] ~bundle_sizes:[]
            ~appendix:1 ~omissions:[] ~timestamp:(Net.now d.net)
        in
        check_bool "same identity" true
          (String.equal block.Block.creator (Node.node_id c));
        let injection_flags = ref 0 in
        Array.iter
          (fun node ->
            (Node.hooks node).Node.on_violation <-
              (fun v ~block:_ ->
                match v with
                | Inspector.Injection { bundle_seq = None; _ } ->
                    incr injection_flags
                | _ -> ()))
          d.nodes;
        (* C announces it to its neighbours. *)
        List.iter
          (fun dst ->
            Net.send d.net ~src:0 ~dst ~tag:"lo:block"
              (Messages.encode (Messages.Block_announce block)))
          (Node.neighbors c);
        Net.run_until d.net 30.0;
        check_bool "flagged by most inspectors" true (!injection_flags >= 8));
  ]

let chaos_tests =
  (* Randomised adversarial mixes: whatever the byzantine assignment,
     accuracy must hold — no honest node is ever exposed, and at the end
     of a calm period no honest node stays suspected. *)
  let prop seed =
    let n = 14 in
    let rng = Lo_net.Rng.create seed in
    let behaviors =
      Array.init n (fun i ->
          if i < 3 then
            match Lo_net.Rng.int rng 5 with
            | 0 -> Node.Silent_censor
            | 1 -> Node.Equivocator
            | 2 -> Node.Block_reorderer
            | 3 -> Node.Tx_censor (fun tx -> tx.Tx.fee > 20)
            | _ -> Node.Honest
          else Node.Honest)
    in
    let d = mk_network ~n ~seed ~behaviors:(fun i -> behaviors.(i)) () in
    for k = 0 to 7 do
      ignore (submit d ~target:(3 + (k mod (n - 3))) ~fee:(5 + (3 * k))
                (Printf.sprintf "chaos-%d-%d" seed k))
    done;
    Net.run_until d.net 20.0;
    (* a block from a random (possibly malicious) builder *)
    ignore (Node.build_block d.nodes.(Lo_net.Rng.int rng 3) ~policy:Policy.Lo_fifo);
    Net.run_until d.net 60.0;
    let honest i = match behaviors.(i) with Node.Honest -> true | _ -> false in
    Array.for_all
      (fun node ->
        let acc = Node.accountability node in
        Array.for_all
          (fun other ->
            let i = Node.index other in
            let id = Node.node_id other in
            (not (honest i))
            || ((not (Accountability.is_exposed acc id))
               && not
                    (honest (Node.index node)
                    && Accountability.is_suspected acc id)))
          d.nodes)
      d.nodes
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:8 ~name:"random adversaries never frame honest nodes"
         QCheck2.Gen.(int_range 1 10_000)
         prop);
  ]

let () =
  Alcotest.run "lo_node"
    [
      ("dissemination", dissemination_tests);
      ("accuracy", accuracy_tests);
      ("completeness", completeness_tests);
      ("detection", detection_tests);
      ("chain", chain_tests);
      ("storage", storage_tests);
      ("rotation", rotation_tests);
      ("fuzz", fuzz_tests);
      ("loss", loss_tests);
      ("wire-invariants", wire_invariant_tests);
      ("slow-node", slow_node_tests);
      ("gossip-overlay", gossip_overlay_tests);
      ("collusion", collusion_tests);
      ("chaos", chaos_tests);
    ]