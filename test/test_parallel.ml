(* Tests for Lo_sim.Parallel: the domain pool itself (ordering, the
   sequential fast path, exception propagation) and the determinism
   contract of the experiment runner — LO_JOBS must never change any
   result, table, or trace by a single byte. *)

open Lo_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_jobs n f =
  Unix.putenv "LO_JOBS" (string_of_int n);
  Fun.protect ~finally:(fun () -> Unix.putenv "LO_JOBS" "1") f

(* ---------------- pool mechanics ---------------- *)

let pool_tests =
  [
    Alcotest.test_case "map = List.map (parallel)" `Quick (fun () ->
        let items = List.init 100 Fun.id in
        let f x = (x * x) + 1 in
        check_bool "same" true
          (Parallel.map ~jobs:4 f items = List.map f items));
    Alcotest.test_case "map = List.map (sequential path)" `Quick (fun () ->
        let items = List.init 10 Fun.id in
        let f x = x * 3 in
        check_bool "same" true (Parallel.map ~jobs:1 f items = List.map f items));
    Alcotest.test_case "empty and singleton" `Quick (fun () ->
        check_bool "empty" true (Parallel.map ~jobs:4 Fun.id [] = []);
        check_bool "single" true (Parallel.map ~jobs:4 succ [ 41 ] = [ 42 ]));
    Alcotest.test_case "submission order under uneven work" `Quick (fun () ->
        (* Later items finish first; results must still come back in
           submission order. *)
        let items = List.init 32 Fun.id in
        let f x =
          let spin = (32 - x) * 2000 in
          let acc = ref 0 in
          for i = 1 to spin do
            acc := !acc + i
          done;
          (x, !acc)
        in
        check_bool "ordered" true (Parallel.map ~jobs:4 f items = List.map f items));
    Alcotest.test_case "lowest-index exception wins" `Quick (fun () ->
        let f x = if x mod 4 = 2 then failwith (Printf.sprintf "boom%d" x) else x in
        (match Parallel.map ~jobs:4 f (List.init 20 Fun.id) with
        | exception Failure msg -> Alcotest.(check string) "first failure" "boom2" msg
        | _ -> Alcotest.fail "expected failure");
        (* remaining tasks still ran: a pure count via side effect *)
        let ran = Atomic.make 0 in
        (try
           ignore
             (Parallel.map ~jobs:4
                (fun x ->
                  Atomic.incr ran;
                  if x = 0 then failwith "first")
                (List.init 8 Fun.id))
         with Failure _ -> ());
        check_int "all tasks ran" 8 (Atomic.get ran));
    Alcotest.test_case "invalid LO_JOBS rejected" `Quick (fun () ->
        Unix.putenv "LO_JOBS" "zero";
        Fun.protect
          ~finally:(fun () -> Unix.putenv "LO_JOBS" "1")
          (fun () ->
            match Parallel.jobs () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "accepted LO_JOBS=zero"));
  ]

(* ---------------- experiment determinism ---------------- *)

let small_scale =
  {
    Experiments.nodes = 10;
    reps = 2;
    rate = 4.;
    duration = 4.;
    seed = 2;
  }

let determinism_tests =
  [
    Alcotest.test_case "fig6 identical under LO_JOBS=1 and 4" `Slow (fun () ->
        let run () =
          with_jobs 1 (fun () ->
              Experiments.fig6 ~scale:small_scale ~fractions:[ 0.2 ] ())
        in
        let seq = run () in
        let par =
          with_jobs 4 (fun () ->
              Experiments.fig6 ~scale:small_scale ~fractions:[ 0.2 ] ())
        in
        check_bool "same points" true (compare seq par = 0);
        (* and the sequential run itself is reproducible *)
        check_bool "stable" true (compare seq (run ()) = 0));
    Alcotest.test_case "chaos identical under LO_JOBS=1 and 4" `Slow (fun () ->
        let sweep () =
          Experiments.chaos ~scale:small_scale ~churn_rates:[ 0.2 ]
            ~partition_durations:[ 0. ] ~burst_losses:[ 0.3 ] ()
        in
        let seq = with_jobs 1 sweep in
        let par = with_jobs 4 sweep in
        check_bool "same cells" true (compare seq par = 0));
    Alcotest.test_case "trace JSONL byte-identical under LO_JOBS=1 and 4" `Slow
      (fun () ->
        let jsonl () =
          let r = Experiments.trace_run ~scale:small_scale ~kind:`Chaos () in
          Lo_obs.Jsonl.to_string r.Experiments.trace
        in
        let seq = with_jobs 1 jsonl in
        let par = with_jobs 4 jsonl in
        check_bool "non-empty" true (String.length seq > 0);
        check_bool "byte-identical" true (String.equal seq par));
  ]

let () =
  Alcotest.run "lo_parallel"
    [ ("pool", pool_tests); ("determinism", determinism_tests) ]
