(* Known-answer tests: byte-exact external anchors for the from-scratch
   crypto substrate, complementing the structural/property tests of
   test_crypto.ml.

   - SHA-256 against the remaining FIPS 180-4 / NIST CAVP short vectors
   - HMAC-SHA256 against the full RFC 4231 set (cases 4-7, including
     the truncated case and the >block-size key and data cases)
   - HMAC_DRBG against the NIST CAVP no-reseed SHA-256 vector
     (drbgvectors_no_reseed, COUNT=0): two generate calls, the first
     discarded, exactly the CAVP test discipline
   - secp256k1 scalar multiplication against the published SEC1
     coordinates of G, 2G and 3G
   - Schnorr sign/verify regression vectors: deterministic nonces make
     signatures stable, so frozen (pk, sig) pairs pin down the whole
     pipeline (hash onto the scalar field, nonce derivation, challenge,
     encoding) *)

open Lo_crypto

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let hmac_vector ~key data expected () =
  check "tag" expected (Hex.encode (Hmac.sha256 ~key data))

let hmac_tests =
  [
    Alcotest.test_case "rfc4231 case 4 (25-byte key)" `Quick
      (hmac_vector
         ~key:
           (Hex.decode "0102030405060708090a0b0c0d0e0f10111213141516171819")
         (String.make 50 '\xcd')
         "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
    Alcotest.test_case "rfc4231 case 5 (truncated to 128 bits)" `Quick
      (fun () ->
        let tag =
          Hmac.sha256 ~key:(String.make 20 '\x0c')
            "Test With Truncation"
        in
        check "prefix" "a3b6167473100ee06e0c796c2955552b"
          (Hex.encode (String.sub tag 0 16)));
    Alcotest.test_case "rfc4231 case 6 (131-byte key)" `Quick
      (hmac_vector
         ~key:(String.make 131 '\xaa')
         "Test Using Larger Than Block-Size Key - Hash Key First"
         "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    Alcotest.test_case "rfc4231 case 7 (large key and data)" `Quick
      (hmac_vector
         ~key:(String.make 131 '\xaa')
         "This is a test using a larger than block-size key and a larger \
          than block-size data. The key needs to be hashed before being \
          used by the HMAC algorithm."
         "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
  ]

let drbg_tests =
  [
    Alcotest.test_case "nist cavp sha-256 no-reseed count 0" `Quick
      (fun () ->
        let entropy =
          Hex.decode
            "ca851911349384bffe89de1cbdc46e6831e44d34a4fb935ee285dd14b71a7488"
        in
        let nonce = Hex.decode "659ba96c601dc69fc902940805ec0ca8" in
        let d = Hmac_drbg.create ~seed:(entropy ^ nonce) in
        (* CAVP discipline: generate twice, compare the second block. *)
        ignore (Hmac_drbg.generate d 128);
        check "returned bits"
          "e528e9abf2dece54d47c7e75e5fe302149f817ea9fb4bee6f4199697d04d5b89\
           d54fbb978a15b5c443c9ec21036d2460b6f73ebad0dc2aba6e624abf07745bc1\
           07694bb7547bb0995f70de25d6b29e2d3011bb19d27676c07162c8b5ccde0668\
           961df86803482cb37ed6d5c0bb8d50cf1f50d476aa0458bdaba806f48be9dcb8"
          (Hex.encode (Hmac_drbg.generate d 128)));
    Alcotest.test_case "update-per-generate discipline" `Quick (fun () ->
        (* Per SP 800-90A the internal state updates after every
           generate call, so 2x64 bytes != 1x128 bytes. A lazy
           implementation that only iterates V would get this wrong. *)
        let a = Hmac_drbg.create ~seed:"discipline" in
        let b = Hmac_drbg.create ~seed:"discipline" in
        let first = Hmac_drbg.generate a 64 in
        let two = first ^ Hmac_drbg.generate a 64 in
        let one = Hmac_drbg.generate b 128 in
        check_bool "differ" false (String.equal two one);
        check "first block shared"
          (Hex.encode (String.sub one 0 64))
          (Hex.encode (String.sub two 0 64)));
  ]

let affine_hex p =
  match Secp256k1.to_affine p with
  | None -> ("infinity", "infinity")
  | Some (x, y) -> (Uint256.to_hex x, Uint256.to_hex y)

let point_vector name scalar ex ey =
  Alcotest.test_case name `Quick (fun () ->
      let x, y =
        affine_hex (Secp256k1.mul (Uint256.of_int scalar) Secp256k1.g)
      in
      check "x" ex x;
      check "y" ey y)

let secp_tests =
  [
    point_vector "1*G = generator (SEC1)" 1
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
      "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";
    point_vector "2*G (published coordinates)" 2
      "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
      "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a";
    point_vector "3*G (bip340 vector-0 public key)" 3
      "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
      "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672";
    Alcotest.test_case "compressed encoding of G" `Quick (fun () ->
        check "sec1"
          "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
          (Hex.encode (Secp256k1.encode_compressed Secp256k1.g)));
  ]

(* Frozen regression vectors: generated once from this implementation
   (nonces are deterministic, so they are stable across platforms) and
   pinned so any drift in hashing, nonce derivation or encoding shows
   up as a byte diff, not a silent incompatibility. *)
let schnorr_vector ~seed ~msg ~pk ~signature =
  Alcotest.test_case (Printf.sprintf "regression seed=%S" seed) `Quick
    (fun () ->
      let sk, public = Schnorr.keypair_of_seed seed in
      check "public key" pk (Hex.encode (Schnorr.public_key_bytes public));
      let s = Schnorr.sign sk msg in
      check "signature" signature (Hex.encode s);
      check_bool "verifies" true (Schnorr.verify public ~msg ~signature:s);
      let tampered = Bytes.of_string s in
      Bytes.set tampered 5 (Char.chr (Char.code (Bytes.get tampered 5) lxor 1));
      check_bool "tamper rejected" false
        (Schnorr.verify public ~msg ~signature:(Bytes.to_string tampered)))

let schnorr_tests =
  [
    schnorr_vector ~seed:"kat-1" ~msg:"lo-kat-message-1"
      ~pk:"02d185f24fbcc5db046122755cae19ad50db96be5d27af8ba003a9f03fb25d7026"
      ~signature:
        "319fb0507b3dcf5775e68f20c34f87e4da79e041e8a83666ff4fe670ae724b67\
         e319a753352302e59cd3644b1a7f8ae24a01055d5a844785370ad23ed4f84c5c";
    schnorr_vector ~seed:"kat-2" ~msg:""
      ~pk:"03fc660cdb5257314f86a12cea3d6f9cc6fc6b37cddf209d87e59022a9d3b16f8e"
      ~signature:
        "9d164d935d5a1df216e7946ae1eb7990c9c0514014f3d582f17cc6670df645ab\
         a1b44e758494f279df91f59a98e6d422ce66d1a402f37108931d94955ab11ca9";
    Alcotest.test_case "cross-key verification fails" `Quick (fun () ->
        let sk1, _ = Schnorr.keypair_of_seed "kat-1" in
        let _, pk2 = Schnorr.keypair_of_seed "kat-2" in
        let s = Schnorr.sign sk1 "msg" in
        check_bool "rejected" false (Schnorr.verify pk2 ~msg:"msg" ~signature:s));
  ]

let () =
  Alcotest.run "lo_kat"
    [
      ("hmac_rfc4231", hmac_tests);
      ("hmac_drbg_cavp", drbg_tests);
      ("secp256k1_points", secp_tests);
      ("schnorr_vectors", schnorr_tests);
    ]
