(* Tests for the enforcement layer (paper Sec. 5.4) and the client-side
   Stage-I submission path with acknowledgements. *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scheme = Signer.simulation ()

let dummy_evidence seed =
  let signer = Signer.make scheme ~seed in
  let log_a = Commitment.Log.create ~signer () in
  let log_b = Commitment.Log.create ~signer () in
  ignore (Commitment.Log.append log_a ~source:None ~ids:[ 1 ]);
  ignore (Commitment.Log.append log_b ~source:None ~ids:[ 2 ]);
  ( Signer.id signer,
    Evidence.Conflicting_digests
      {
        older = Commitment.Log.current_digest log_a;
        newer = Commitment.Log.current_digest log_b;
      } )

let enforcement_tests =
  [
    Alcotest.test_case "registration and stake" `Quick (fun () ->
        let t = Enforcement.create () in
        Enforcement.register t ~id:"m1" ~stake:100;
        check_int "stake" 100 (Enforcement.stake t ~id:"m1");
        check_bool "eligible" true (Enforcement.is_eligible t ~id:"m1");
        check_bool "unknown" false (Enforcement.is_eligible t ~id:"ghost"));
    Alcotest.test_case "slashing burns half and disconnects" `Quick (fun () ->
        let t = Enforcement.create () in
        let id, ev = dummy_evidence "slash-1" in
        Enforcement.register t ~id ~stake:100;
        Enforcement.punish t ~id ev ~now:10.0;
        check_int "half gone" 50 (Enforcement.stake t ~id);
        check_int "burned" 50 (Enforcement.slashed_total t);
        check_bool "disconnected" true (Enforcement.disconnected_until t ~id <> None);
        check_bool "not eligible" false (Enforcement.is_eligible t ~id));
    Alcotest.test_case "same evidence never slashes twice" `Quick (fun () ->
        let t = Enforcement.create () in
        let id, ev = dummy_evidence "slash-2" in
        Enforcement.register t ~id ~stake:100;
        Enforcement.punish t ~id ev ~now:1.0;
        Enforcement.punish t ~id ev ~now:2.0;
        check_int "only once" 50 (Enforcement.stake t ~id));
    Alcotest.test_case "distinct evidence compounds" `Quick (fun () ->
        let t = Enforcement.create () in
        let id, ev1 = dummy_evidence "slash-3" in
        let _, ev2 = dummy_evidence "slash-3b" in
        Enforcement.register t ~id ~stake:100;
        Enforcement.punish t ~id ev1 ~now:1.0;
        Enforcement.punish t ~id ev2 ~now:2.0;
        check_int "compounded" 25 (Enforcement.stake t ~id));
    Alcotest.test_case "disconnection expires via tick" `Quick (fun () ->
        let t = Enforcement.create () in
        let id, ev = dummy_evidence "slash-4" in
        Enforcement.register t ~id ~stake:100;
        Enforcement.punish t ~id ev ~now:0.0;
        Enforcement.tick t ~now:10.0;
        check_bool "still out" false (Enforcement.is_eligible t ~id);
        Enforcement.tick t ~now:31.0;
        check_bool "readmitted" true (Enforcement.is_eligible t ~id));
    Alcotest.test_case "min stake gates eligibility" `Quick (fun () ->
        let t =
          Enforcement.create
            ~policy:{ slash_fraction = 0.9; min_stake = 20; disconnect_for = 0. }
            ()
        in
        let id, ev = dummy_evidence "slash-5" in
        Enforcement.register t ~id ~stake:100;
        Enforcement.punish t ~id ev ~now:0.0;
        check_int "10 left" 10 (Enforcement.stake t ~id);
        check_bool "below floor" false (Enforcement.is_eligible t ~id);
        check_bool "not listed" true
          (not (List.mem id (Enforcement.eligible_ids t))));
    Alcotest.test_case "bad policy rejected" `Quick (fun () ->
        Alcotest.check_raises "fraction"
          (Invalid_argument "Enforcement.create: slash_fraction") (fun () ->
            ignore
              (Enforcement.create
                 ~policy:{ slash_fraction = 1.5; min_stake = 0; disconnect_for = 0. }
                 ())));
  ]

(* --- client + miner-network fixtures --- *)

type world = {
  net : Net.t;
  nodes : Node.t array;
  client : Client.t;
}

let mk_world ?(behaviors = fun _ -> Node.Honest) ?(miners = 10) ~seed () =
  (* miner indices 0..miners-1; the client sits at index [miners] *)
  let scheme = Signer.simulation () in
  let total = miners + 1 in
  let net = Net.create ~num_nodes:total ~seed () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init miners (fun i -> Signer.make scheme ~seed:(Printf.sprintf "em%d" i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Lo_net.Rng.create (seed + 1) in
  let topo = Lo_net.Topology.build rng ~n:miners ~out_degree:4 ~max_in:125 in
  let config = Node.default_config scheme in
  let nodes =
    Array.init miners (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:(behaviors i))
  in
  Array.iter Node.start nodes;
  let client_signer = Signer.make scheme ~seed:"stage1-client" in
  let client =
    Client.create
      (Client.default_config scheme)
      ~net ~index:miners ~signer:client_signer
      ~miners:(List.init miners (fun i -> (i, Signer.id signers.(i))))
  in
  Client.start client;
  { net; nodes; client }

let client_tests =
  [
    Alcotest.test_case "submission is acknowledged and spreads" `Slow (fun () ->
        let w = mk_world ~seed:900 () in
        let acked = ref None in
        Client.on_acknowledged w.client (fun tx ~now -> acked := Some (tx, now));
        let tx = Client.submit w.client ~fee:10 ~payload:"stage-one" in
        Net.run_until w.net 20.0;
        check_bool "acked" true (Client.acknowledged w.client ~txid:tx.Tx.id);
        check_bool "multiple receipts" true (Client.ack_count w.client ~txid:tx.Tx.id >= 2);
        check_bool "hook fired" true (!acked <> None);
        check_int "one wave" 1 (Client.attempts w.client ~txid:tx.Tx.id);
        Array.iter
          (fun node -> check_int "everywhere" 1 (Mempool.size (Node.mempool node)))
          w.nodes);
    Alcotest.test_case "client resubmits through dead miners" `Slow (fun () ->
        let w = mk_world ~seed:901 () in
        (* first wave will hit some of these; kill a majority *)
        for i = 0 to 6 do
          Net.set_down w.net i true
        done;
        let tx = Client.submit w.client ~fee:10 ~payload:"persist" in
        Net.run_until w.net 20.0;
        check_bool "eventually acked" true
          (Client.acknowledged w.client ~txid:tx.Tx.id
          || Client.attempts w.client ~txid:tx.Tx.id > 1));
    Alcotest.test_case "fake ack from censor does not stop propagation" `Slow
      (fun () ->
        (* miner 0 censors 'victim' payloads but still acks (the paper's
           fake-acknowledgement attacker); the client's fanout > 1 lands
           the tx on honest miners anyway. *)
        let pred (tx : Tx.t) =
          String.length tx.Tx.payload >= 6
          && String.equal (String.sub tx.Tx.payload 0 6) "victim"
        in
        let w =
          mk_world ~seed:902
            ~behaviors:(fun i -> if i = 0 then Node.Tx_censor pred else Node.Honest)
            ()
        in
        let tx = Client.submit w.client ~fee:10 ~payload:"victim-payment" in
        Net.run_until w.net 25.0;
        (* the censor acked (fake) or not, but honest miners carry it *)
        let carrying =
          Array.to_list w.nodes
          |> List.filter (fun node -> Mempool.find_id (Node.mempool node) tx.Tx.id <> None)
          |> List.length
        in
        check_bool "propagated despite censor" true (carrying >= 9));
    Alcotest.test_case "forged acks are ignored" `Slow (fun () ->
        let w = mk_world ~seed:903 () in
        let tx = Client.submit w.client ~fee:10 ~payload:"no-forgery" in
        (* a bogus ack from a non-miner index with garbage signature *)
        Net.send w.net ~src:3 ~dst:10 ~tag:"lo:submit-ack"
          (Messages.encode
             (Messages.Submit_ack
                { txid = tx.Tx.id; ack_signature = String.make 64 'z' }));
        Net.run_until w.net 0.01;
        check_int "not counted" 0 (Client.ack_count w.client ~txid:tx.Tx.id));
  ]

let integration_tests =
  [
    Alcotest.test_case "exposed creator's blocks are rejected when enabled" `Slow
      (fun () ->
        let scheme = Signer.simulation () in
        let n = 12 in
        let net = Net.create ~num_nodes:n ~seed:904 () in
        let mux = Lo_net.Mux.create net in
        let signers =
          Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "re%d" i))
        in
        let directory = Directory.create ~ids:(Array.map Signer.id signers) in
        let rng = Lo_net.Rng.create 905 in
        let topo = Lo_net.Topology.build rng ~n ~out_degree:6 ~max_in:125 in
        let config =
          { (Node.default_config scheme) with Node.reject_exposed_blocks = true }
        in
        let nodes =
          Array.init n (fun i ->
              Node.create config
                ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
                ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
                ~directory ~signer:signers.(i)
                ~neighbors:(Lo_net.Topology.neighbors topo i)
                ~behavior:(if i = 0 then Node.Block_reorderer else Node.Honest))
        in
        Array.iter Node.start nodes;
        let client = Signer.make scheme ~seed:"re-client" in
        for k = 0 to 9 do
          let tx =
            Tx.create ~signer:client ~fee:(5 + k) ~created_at:0.0
              ~payload:(Printf.sprintf "re%d" k)
          in
          Node.submit_tx nodes.(1 + (k mod (n - 1))) tx
        done;
        Net.run_until net 15.0;
        (* First bad block exposes the reorderer everywhere. *)
        ignore (Node.build_block nodes.(0) ~policy:Policy.Lo_fifo);
        Net.run_until net 40.0;
        let bad = Node.node_id nodes.(0) in
        let exposing =
          Array.to_list nodes
          |> List.filter (fun node ->
                 Node.index node <> 0
                 && Accountability.is_exposed (Node.accountability node) bad)
          |> List.length
        in
        check_int "exposed everywhere" (n - 1) exposing;
        (* A second block from the exposed creator is now refused. *)
        let tx =
          Tx.create ~signer:client ~fee:50 ~created_at:(Net.now net)
            ~payload:"post-exposure"
        in
        Node.submit_tx nodes.(2) tx;
        Net.run_until net 55.0;
        ignore (Node.build_block nodes.(0) ~policy:Policy.Lo_fifo);
        Net.run_until net 70.0;
        Array.iteri
          (fun i node ->
            if i <> 0 then
              check_int "height stuck at 1" 1 (Node.chain_height node))
          nodes);
    Alcotest.test_case "accountability drives slashing end to end" `Slow
      (fun () ->
        let scheme = Signer.simulation () in
        let n = 10 in
        let net = Net.create ~num_nodes:n ~seed:906 () in
        let mux = Lo_net.Mux.create net in
        let signers =
          Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "sl%d" i))
        in
        let directory = Directory.create ~ids:(Array.map Signer.id signers) in
        let rng = Lo_net.Rng.create 907 in
        let topo = Lo_net.Topology.build rng ~n ~out_degree:5 ~max_in:125 in
        let config = Node.default_config scheme in
        let nodes =
          Array.init n (fun i ->
              Node.create config
                ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
                ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
                ~directory ~signer:signers.(i)
                ~neighbors:(Lo_net.Topology.neighbors topo i)
                ~behavior:(if i = 0 then Node.Equivocator else Node.Honest))
        in
        Array.iter Node.start nodes;
        (* Observer node 1 feeds its verified exposures into a ledger. *)
        let ledger = Enforcement.create () in
        Array.iter
          (fun s -> Enforcement.register ledger ~id:(Signer.id s) ~stake:1000)
          signers;
        (Node.hooks nodes.(1)).Node.on_exposure <-
          (fun ~accused ->
            let now = Net.now net in
            match Accountability.status (Node.accountability nodes.(1)) accused with
            | Accountability.Exposed ev -> Enforcement.punish ledger ~id:accused ev ~now
            | _ -> ());
        let client = Signer.make scheme ~seed:"sl-client" in
        let tx = Tx.create ~signer:client ~fee:9 ~created_at:0.0 ~payload:"fork" in
        Node.submit_tx nodes.(0) tx;
        Net.run_until net 60.0;
        let bad = Signer.id signers.(0) in
        check_bool "slashed" true (Enforcement.stake ledger ~id:bad < 1000);
        check_bool "honest untouched" true
          (Enforcement.stake ledger ~id:(Signer.id signers.(3)) = 1000));
  ]

let () =
  Alcotest.run "lo_enforcement"
    [
      ("enforcement", enforcement_tests);
      ("client", client_tests);
      ("integration", integration_tests);
    ]
