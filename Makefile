.PHONY: all build test check chaos-smoke audit-smoke fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: everything compiles, the full test suite passes,
# and a tiny seeded chaos scenario exercises the fault-injection paths.
check:
	dune build && dune runtest && $(MAKE) chaos-smoke && $(MAKE) audit-smoke

# Small deterministic fault-injection run (churn + partitions + loss
# bursts + latency spikes + link degradation); exits non-zero if any
# honest node ends up exposed.
chaos-smoke:
	dune exec bin/lo.exe -- chaos -n 16 --duration 8 --rate 5 --reps 1 --seed 1

# Trace a seeded chaos run and replay it through the invariant auditor
# (commit monotonicity, canonical order, suspicion liveness, bandwidth
# conservation, span balance); exits non-zero on any violation.
audit-smoke:
	dune exec bin/lo.exe -- trace chaos -n 16 --duration 8 --rate 5 --seed 1 --audit

# Formatting is checked only when ocamlformat is available; the
# toolchain image does not ship it and installing is out of scope.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

clean:
	dune clean
