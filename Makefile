.PHONY: all build test check chaos-smoke audit-smoke bench-smoke fuzz-smoke live-smoke live-chaos-smoke ingest-smoke scale-smoke fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: everything compiles, the full test suite passes,
# and a tiny seeded chaos scenario exercises the fault-injection paths.
check:
	dune build && dune runtest && $(MAKE) chaos-smoke && $(MAKE) audit-smoke && $(MAKE) scale-smoke && $(MAKE) bench-smoke && $(MAKE) fuzz-smoke && $(MAKE) live-smoke && $(MAKE) live-chaos-smoke && $(MAKE) ingest-smoke

# Small deterministic fault-injection run (churn + partitions + loss
# bursts + latency spikes + link degradation); exits non-zero if any
# honest node ends up exposed.
chaos-smoke:
	dune exec bin/lo.exe -- chaos -n 16 --duration 8 --rate 5 --reps 1 --seed 1

# Trace a seeded chaos run and replay it through the invariant auditor
# (commit monotonicity, canonical order, suspicion liveness, bandwidth
# conservation, span balance); exits non-zero on any violation.
audit-smoke:
	dune exec bin/lo.exe -- trace chaos -n 16 --duration 8 --rate 5 --seed 1 --audit

# Conformance fuzzing at a seconds-scale budget: a seeded batch of
# generated scenarios judged against the full oracle stack, plus one
# mutation run that plants a hidden protocol violation and requires
# the oracles to catch it — so the smoke fails both when the protocol
# regresses and when the harness goes blind.
fuzz-smoke:
	dune exec bin/lo.exe -- fuzz -n 24 --seed 1
	dune exec bin/lo.exe -- fuzz -n 8 --seed 1 --mutate inject

# Real processes, real sockets: an 8-node localhost cluster over the
# live TCP transport for 5 seconds. The forked nodes' traces are merged
# into one stream and replayed through the invariant auditor; the exit
# code is non-zero on any audit violation, honest exposure, or node
# crash.
live-smoke:
	dune exec bin/lo.exe -- cluster -n 8 --tps 40 --duration 5 --seed 1 --base-port 7611

# The same live cluster under supervised chaos: two nodes are
# SIGKILLed mid-run and respawned (rebuilding their commitment logs
# from their own write-ahead traces), and every host injects seeded
# socket-level frame faults (drop/duplicate/delay/truncate/garble).
# The merged per-incarnation stream must still pass all five audit
# invariants with zero honest exposures.
live-chaos-smoke:
	dune exec bin/lo.exe -- cluster -n 8 --tps 40 --duration 6 --seed 1 --base-port 7731 --chaos kills=2,down=1.2

# A short live ingest burst through the batched admission path: a
# small cluster driven at an elevated offered load, so content-sync
# Tx_batch frames carry real multi-transaction bundles through
# Mempool.ingest_batch (one batched signature verification and one
# signed commitment digest per bundle). Same audit discipline as
# live-smoke — the merged trace must pass every replay invariant and
# no node may crash or end up exposed.
ingest-smoke:
	dune exec bin/lo.exe -- cluster -n 4 --tps 250 --duration 4 --seed 2 --base-port 7851

# A 2,000-node fig6-style sharded sweep (4 worlds of 500 nodes, 10%
# silent censors, neighbour rotation, block production), audited shard
# by shard with the five replay invariants; exits non-zero on any
# honest-blaming violation, honest exposure, or trace-ring eviction.
# This is the paper-scale path at a sub-minute budget — the full
# 10,000-node sweep is `dune exec bin/lo.exe -- scale -n 10000`.
scale-smoke:
	dune exec bin/lo.exe -- scale -n 2000 --seed 1

# Formatting is checked only when ocamlformat is available; the
# toolchain image does not ship it and installing is out of scope.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

# Micro-benchmarks only, at a tiny measurement budget: seconds, not
# minutes. Writes BENCH_smoke.json and schema-validates it (the bench
# binary exits non-zero on a malformed file), so `make check` catches a
# broken benchmark or emitter without paying for a full run. The
# committed BENCH_results.json baseline comes from a full `make bench`.
bench-smoke:
	LO_BENCH_MICRO_ONLY=1 LO_BENCH_SMOKE=1 LO_BENCH_OUT=BENCH_smoke.json dune exec bench/main.exe

clean:
	dune clean
