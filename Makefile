.PHONY: all build test check fmt bench clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

# Formatting is checked only when ocamlformat is available; the
# toolchain image does not ship it and installing is out of scope.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe

clean:
	dune clean
