(* Command-line entry point: regenerate any of the paper's experiments.

   `lo all` reproduces the full evaluation section; individual
   subcommands run one figure at a configurable scale. *)

open Cmdliner

let scale_term =
  let nodes =
    let doc = "Number of simulated miners." in
    Arg.(value & opt int Lo_sim.Experiments.default_scale.nodes
         & info [ "n"; "nodes" ] ~doc)
  in
  let reps =
    let doc = "Independent repetitions to average." in
    Arg.(value & opt int Lo_sim.Experiments.default_scale.reps
         & info [ "reps" ] ~doc)
  in
  let rate =
    let doc = "Workload in transactions per second (paper default: 20)." in
    Arg.(value & opt float Lo_sim.Experiments.default_scale.rate
         & info [ "rate" ] ~doc)
  in
  let duration =
    let doc = "Workload duration in simulated seconds." in
    Arg.(value & opt float Lo_sim.Experiments.default_scale.duration
         & info [ "duration" ] ~doc)
  in
  let seed =
    let doc = "Root random seed (runs are fully deterministic)." in
    Arg.(value & opt int Lo_sim.Experiments.default_scale.seed
         & info [ "seed" ] ~doc)
  in
  let make nodes reps rate duration seed =
    { Lo_sim.Experiments.nodes; reps; rate; duration; seed }
  in
  Term.(const make $ nodes $ reps $ rate $ duration $ seed)

let run_fig6 scale = ignore (Lo_sim.Experiments.fig6 ~scale ())
let run_fig7 scale = ignore (Lo_sim.Experiments.fig7 ~scale ())

let run_fig8 scale =
  ignore (Lo_sim.Experiments.fig8_left ~scale ());
  ignore (Lo_sim.Experiments.fig8_right ~scale ())

let run_fig9 scale = ignore (Lo_sim.Experiments.fig9 ~scale ())
let run_fig10 scale = ignore (Lo_sim.Experiments.fig10 ~scale ())
let run_memcpu scale = ignore (Lo_sim.Experiments.memcpu ~scale ())
let run_ablation scale = ignore (Lo_sim.Experiments.ablation ~scale ())

let run_chaos scale audit =
  let cells = Lo_sim.Experiments.chaos ~scale ~audit () in
  (* The acceptance property of the fault framework: a fault schedule
     must never get an honest node exposed. Fail the process so
     `make chaos-smoke` gates CI on it. *)
  let exposed =
    List.fold_left
      (fun acc c -> acc + c.Lo_sim.Experiments.honest_exposures)
      0 cells
  in
  if exposed > 0 then begin
    prerr_endline
      (Printf.sprintf "chaos: %d exposure(s) of honest nodes — FAILED" exposed);
    exit 1
  end;
  let audit_bad =
    List.fold_left
      (fun acc c -> acc + c.Lo_sim.Experiments.audit_violations)
      0 cells
  in
  if audit_bad > 0 then begin
    prerr_endline
      (Printf.sprintf "chaos: %d audit violation(s) — FAILED" audit_bad);
    exit 1
  end

let run_replay scale audit trace_file =
  let text =
    let ic = open_in trace_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Lo_workload.Trace.parse text with
  | Error msg ->
      prerr_endline ("trace parse error: " ^ msg);
      exit 1
  | Ok trace ->
      let result = Lo_sim.Experiments.replay ~scale ~audit ~trace () in
      if result.Lo_sim.Experiments.audit_violations > 0 then begin
        prerr_endline
          (Printf.sprintf "replay: %d audit violation(s) — FAILED"
             result.Lo_sim.Experiments.audit_violations);
        exit 1
      end

let run_trace scale kind out audit capacity =
  let kind =
    match kind with
    | "baseline" -> `Baseline
    | "chaos" -> `Chaos
    | "adversary" -> `Adversary
    | other ->
        prerr_endline
          (Printf.sprintf
             "unknown trace scenario %S (expected baseline|chaos|adversary)"
             other);
        exit 2
  in
  let result = Lo_sim.Experiments.trace_run ~scale ?capacity ~kind () in
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Lo_obs.Jsonl.output oc result.Lo_sim.Experiments.trace;
      close_out oc;
      Printf.printf "wrote %d events to %s\n"
        (Lo_obs.Trace.length result.Lo_sim.Experiments.trace)
        path);
  if audit && not (Lo_obs.Audit.ok result.Lo_sim.Experiments.audit) then begin
    prerr_endline "trace: audit violations — FAILED";
    exit 1
  end

let run_selfcheck _scale =
  (* Offline sanity of the from-scratch substrates: standard vectors and
     structural invariants. Fails loudly on any mismatch. *)
  let check name cond =
    Printf.printf "%-44s %s
" name (if cond then "ok" else "FAILED");
    if not cond then exit 1
  in
  check "sha256 empty-string vector"
    (Lo_crypto.Hex.encode (Lo_crypto.Sha256.digest "")
    = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  check "sha256 'abc' vector"
    (Lo_crypto.Hex.encode (Lo_crypto.Sha256.digest "abc")
    = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  check "hmac rfc4231 vector"
    (Lo_crypto.Hex.encode
       (Lo_crypto.Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?")
    = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  check "secp256k1 generator order"
    (Lo_crypto.Secp256k1.is_infinity
       (Lo_crypto.Secp256k1.mul Lo_crypto.Secp256k1.n Lo_crypto.Secp256k1.g));
  let sk, pk = Lo_crypto.Schnorr.keypair_of_seed "selfcheck" in
  let signature = Lo_crypto.Schnorr.sign sk "selfcheck-message" in
  check "schnorr sign/verify"
    (Lo_crypto.Schnorr.verify pk ~msg:"selfcheck-message" ~signature);
  check "schnorr rejects wrong message"
    (not (Lo_crypto.Schnorr.verify pk ~msg:"other" ~signature));
  let sketch_ok =
    let a = Lo_sketch.Sketch.of_list ~capacity:16 [ 11; 22; 33 ] in
    let b = Lo_sketch.Sketch.of_list ~capacity:16 [ 22; 33; 44 ] in
    Lo_sketch.Sketch.decode (Lo_sketch.Sketch.merge a b) = Ok [ 44; 11 ]
    || Lo_sketch.Sketch.decode (Lo_sketch.Sketch.merge a b) = Ok [ 11; 44 ]
  in
  check "pinsketch symmetric difference" sketch_ok;
  check "gf(2^32) field inverse"
    (Lo_sketch.Gf2m.mul Lo_sketch.Gf2m.gf32 0xDEADBEEF
       (Lo_sketch.Gf2m.inv Lo_sketch.Gf2m.gf32 0xDEADBEEF)
    = 1);
  let scheme = Lo_crypto.Signer.simulation () in
  let signer = Lo_crypto.Signer.make scheme ~seed:"selfcheck" in
  let log = Lo_core.Commitment.Log.create ~signer () in
  ignore (Lo_core.Commitment.Log.append log ~source:None ~ids:[ 7 ]);
  check "commitment digest verifies"
    (Lo_core.Commitment.verify scheme (Lo_core.Commitment.Log.current_digest log));
  print_endline "all self-checks passed."

let run_fuzz cases seed mutate replay repro_dir shrink_budget jobs =
  let print_verdict (o : Lo_check.Harness.outcome) =
    let v = o.Lo_check.Harness.verdict in
    Printf.printf "  scenario: %s\n" (Lo_check.Scenario.describe o.scenario);
    Printf.printf "  events: %d  detections: %d  required: %d\n" o.events
      (List.length v.Lo_check.Oracle.detections)
      v.Lo_check.Oracle.required_detections;
    if v.Lo_check.Oracle.failures <> [] then
      print_endline
        (Lo_check.Oracle.failures_to_string v.Lo_check.Oracle.failures)
  in
  match replay with
  | Some path -> (
      match Lo_check.Harness.read_repro ~path with
      | Error msg ->
          prerr_endline ("fuzz: cannot load repro: " ^ msg);
          exit 2
      | Ok scenario ->
          let o = Lo_check.Harness.execute scenario in
          Printf.printf "replaying %s\n" path;
          print_verdict o;
          if Lo_check.Harness.failed o then begin
            print_endline "replay: FAILED (as recorded)";
            exit 1
          end
          else print_endline "replay: passed")
  | None -> (
      let results = Lo_check.Harness.fuzz ~n:cases ~seed ?mutation:mutate ?jobs () in
      let failures =
        List.filter
          (fun c -> Lo_check.Harness.failed c.Lo_check.Harness.outcome)
          results
      in
      let total_events, total_detections, total_required, with_adv =
        List.fold_left
          (fun (e, d, r, a) c ->
            let o = c.Lo_check.Harness.outcome in
            let v = o.Lo_check.Harness.verdict in
            ( e + o.Lo_check.Harness.events,
              d + List.length v.Lo_check.Oracle.detections,
              r + v.Lo_check.Oracle.required_detections,
              a
              + min 1
                  (List.length
                     o.Lo_check.Harness.scenario.Lo_check.Scenario.adversaries)
            ))
          (0, 0, 0, 0) results
      in
      Printf.printf
        "fuzz: %d cases (seed %d)%s\n\
        \  adversarial cases: %d   events audited: %d\n\
        \  detections: %d (required %d)   failing cases: %d\n"
        cases seed
        (match mutate with Some m -> " mutation=" ^ m | None -> "")
        with_adv total_events total_detections total_required
        (List.length failures);
      match mutate with
      | Some m ->
          (* Sensitivity check: the harness must catch the hidden
             deviation whenever it observably fired. *)
          let vacuous, missed, caught =
            List.fold_left
              (fun (v, miss, c) case ->
                let o = case.Lo_check.Harness.outcome in
                if Lo_check.Harness.failed o then (v, miss, c + 1)
                else if o.Lo_check.Harness.mutant_observable = 0 then
                  (v + 1, miss, c)
                else (v, case.Lo_check.Harness.index :: miss, c))
              (0, [], 0) results
          in
          Printf.printf "mutate %s: caught %d, vacuous %d, missed %d\n" m
            caught vacuous (List.length missed);
          if missed <> [] then begin
            List.iter
              (fun i -> Printf.printf "  case %d: mutant escaped the oracles\n" i)
              (List.rev missed);
            print_endline "mutate: FAILED (mutant survived)";
            exit 1
          end;
          if caught = 0 then begin
            print_endline
              "mutate: FAILED (mutation never fired; no case caught)";
            exit 1
          end;
          print_endline "mutate: all observable mutants caught"
      | None ->
          if failures = [] then print_endline "fuzz: all oracles passed"
          else begin
            List.iter
              (fun c ->
                let o = c.Lo_check.Harness.outcome in
                Printf.printf "case %d FAILED\n" c.Lo_check.Harness.index;
                print_verdict o;
                let minimal, runs =
                  Lo_check.Harness.shrink ?budget:shrink_budget
                    o.Lo_check.Harness.scenario
                in
                let path =
                  Filename.concat repro_dir
                    (Printf.sprintf "fuzz-repro-%d.json" c.Lo_check.Harness.index)
                in
                Lo_check.Harness.write_repro ~path minimal;
                Printf.printf
                  "  shrunk in %d runs to: %s\n  repro written to %s\n" runs
                  (Lo_check.Scenario.describe minimal)
                  path)
              failures;
            print_endline "fuzz: FAILED";
            exit 1
          end)

let run_all scale =
  run_fig6 scale;
  run_fig7 scale;
  run_fig8 scale;
  run_fig9 scale;
  run_fig10 scale;
  run_memcpu scale

(* --- live localhost cluster (lib/live) --- *)

let run_serve id n base_port seed tps duration epoch out =
  let epoch =
    (* Standalone use: agree on "the next whole second + 1" so that
       independently launched processes pick the same zero without a
       coordinator, or take the exact epoch `lo cluster` passed down. *)
    match epoch with
    | Some e -> e
    | None -> Float.of_int (int_of_float (Lo_live.Clock.now_s ()) + 2)
  in
  let cfg =
    Lo_live.Host.config ~id ~n ~base_port ~seed ~tps ~duration ~epoch ()
  in
  let stats = Lo_live.Host.run ?trace_path:out cfg in
  Printf.printf
    "node %d: %d txs submitted, %d frames out, %d frames in, %d unknown-tag, \
     %d trace events\n"
    id stats.Lo_live.Host.submitted stats.Lo_live.Host.frames_out
    stats.Lo_live.Host.frames_in stats.Lo_live.Host.unknown
    stats.Lo_live.Host.trace_events

let run_cluster n tps duration seed base_port out_dir chaos =
  let chaos =
    match chaos with
    | None -> None
    | Some spec -> (
        match Lo_live.Cluster.chaos_of_string spec with
        | Ok c -> Some c
        | Error msg ->
            prerr_endline ("lo cluster: " ^ msg);
            exit 2)
  in
  let report =
    Lo_live.Cluster.run ?out_dir ?chaos ~base_port ~n ~tps ~duration ~seed ()
  in
  print_endline (Lo_live.Cluster.summary report);
  if not (Lo_live.Cluster.ok report) then exit 1

(* --- paper-scale sharded sweep (Lo_sim.Scale) --- *)

let run_scale scale shards fraction drain digest_history out jobs =
  let oc = Option.map open_out out in
  let report =
    Lo_sim.Scale.sweep ?shards ~malicious_fraction:fraction
      ~rate:scale.Lo_sim.Experiments.rate ~duration:scale.Lo_sim.Experiments.duration
      ~drain ~digest_history ?out:oc ?jobs ~n:scale.Lo_sim.Experiments.nodes
      ~seed:scale.Lo_sim.Experiments.seed ()
  in
  (match (oc, out) with
  | Some oc, Some path ->
      close_out oc;
      Printf.printf "wrote %d events to %s\n" report.Lo_sim.Scale.events path
  | _ -> ());
  Printf.printf "shard  nodes  adv  events    txs  delivered  detections\n";
  List.iter
    (fun (s : Lo_sim.Scale.shard_report) ->
      Printf.printf "%5d  %5d  %3d  %7d  %5d  %9d  %10d\n" s.shard s.nodes
        s.adversaries s.events s.txs s.delivered s.detections)
    report.Lo_sim.Scale.shards;
  Printf.printf
    "total: %d nodes, %d shards, %d events, %d txs (%d delivered), %d \
     adversary detections\n"
    report.Lo_sim.Scale.n
    (List.length report.Lo_sim.Scale.shards)
    report.Lo_sim.Scale.events report.Lo_sim.Scale.txs
    report.Lo_sim.Scale.delivered report.Lo_sim.Scale.detections;
  Printf.printf "wall: %.1f s%s\n" report.Lo_sim.Scale.wall_s
    (match report.Lo_sim.Scale.peak_rss_mb with
    | Some mb -> Printf.sprintf ", peak rss: %.0f MB" mb
    | None -> "");
  List.iter
    (fun f -> Printf.printf "  FAILURE: %s\n" f)
    report.Lo_sim.Scale.failures;
  if report.Lo_sim.Scale.honest_exposures > 0 then
    Printf.printf "  FAILURE: %d honest exposure(s)\n"
      report.Lo_sim.Scale.honest_exposures;
  if Lo_sim.Scale.ok report then print_endline "scale: audit PASS"
  else begin
    print_endline "scale: FAILED";
    exit 1
  end

let scale_cmd =
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Independent shard worlds (default: sized to ~1250 nodes \
             each). The merged result is byte-identical for any LO_JOBS.")
  in
  let fraction_arg =
    Arg.(
      value & opt float 0.1
      & info [ "fraction" ] ~docv:"F"
          ~doc:"Fraction of silent-censor adversaries per shard.")
  in
  let drain_arg =
    Arg.(
      value & opt float 30.
      & info [ "drain" ] ~docv:"SECONDS"
          ~doc:"Post-workload drain (suspicions must age past the audit \
                grace window).")
  in
  let history_arg =
    Arg.(
      value & opt int 16
      & info [ "digest-history" ] ~docv:"K"
          ~doc:"Own-digest full-sketch retention window (memory lean).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the merged shard traces as JSONL to $(docv) (shard \
             order; expect hundreds of MB at 10k nodes).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Domain pool size (overrides LO_JOBS).")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Paper-scale fig6-style sweep: shard n nodes into independent \
          worlds across domains, audit every shard, fail on any honest \
          blame")
    Term.(
      const run_scale $ scale_term $ shards_arg $ fraction_arg $ drain_arg
      $ history_arg $ out_arg $ jobs_arg)

let cmd name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ scale_term)

let default =
  Term.(ret (const (fun _ -> `Help (`Pager, None)) $ scale_term))

let () =
  let info =
    Cmd.info "lo" ~version:"1.0.0"
      ~doc:"Reproduce the evaluation of 'LO: An Accountable Mempool for MEV Resistance'"
  in
  let cmds =
    [
      cmd "fig6" "Resilience to malicious miners (suspicion/exposure times)" run_fig6;
      cmd "fig7" "Mempool inclusion latency distribution" run_fig7;
      cmd "fig8" "Block inclusion latency: FIFO vs Highest-Fee, and vs system size" run_fig8;
      cmd "fig9" "Bandwidth overhead: LO vs Flood vs PeerReview vs Narwhal" run_fig9;
      cmd "fig10" "Sketch reconciliations per minute vs workload" run_fig10;
      cmd "memcpu" "Sec. 6.5 memory and CPU overhead" run_memcpu;
      scale_cmd;
      cmd "ablate" "Ablations: light vs full digests; digest-share period" run_ablation;
      (let audit_flag =
         Arg.(value & flag
              & info [ "audit" ]
                  ~doc:"Trace every run and replay it through the invariant \
                        checker; violations fail the process.")
       in
       Cmd.v
         (Cmd.info "chaos"
            ~doc:
              "Fault injection: churn x partitions x loss bursts; honest \
               nodes must never be exposed")
         Term.(const run_chaos $ scale_term $ audit_flag));
      (let trace_arg =
         Cmdliner.Arg.(
           required
           & opt (some file) None
           & info [ "trace" ] ~doc:"CSV transaction trace to replay.")
       in
       let audit_flag =
         Arg.(value & flag
              & info [ "audit" ]
                  ~doc:"Trace the run and replay it through the invariant \
                        checker; violations fail the process.")
       in
       Cmd.v
         (Cmd.info "replay" ~doc:"Replay a transaction trace (CSV: time,fee,size)")
         Term.(const run_replay $ scale_term $ audit_flag $ trace_arg));
      (let scenario_arg =
         Arg.(
           value
           & pos 0 string "baseline"
           & info [] ~docv:"SCENARIO"
               ~doc:"Scenario to trace: baseline, chaos or adversary.")
       in
       let out_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "out"; "o" ] ~docv:"FILE"
               ~doc:"Write the event trace as JSONL to $(docv).")
       in
       let audit_flag =
         Arg.(value & flag
              & info [ "audit" ]
                  ~doc:"Exit non-zero if the invariant audit finds violations.")
       in
       let capacity_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "capacity" ] ~docv:"EVENTS"
               ~doc:"Event ring capacity (default 1048576; aggregates \
                     survive eviction but the audit needs the full ring).")
       in
       Cmd.v
         (Cmd.info "trace"
            ~doc:
              "Run one fully traced scenario, print event/flow summaries, \
               audit the trace, and optionally export it as JSONL")
         Term.(
           const run_trace $ scale_term $ scenario_arg $ out_arg $ audit_flag
           $ capacity_arg));
      (let cases_arg =
         Arg.(
           value & opt int 50
           & info [ "n"; "cases" ] ~docv:"N"
               ~doc:"Number of generated scenarios.")
       in
       let seed_arg =
         Arg.(
           value & opt int 1
           & info [ "seed" ] ~docv:"SEED"
               ~doc:"Campaign seed; every case derives from (seed, index).")
       in
       let mutate_arg =
         let names =
           String.concat ", " (List.map fst Lo_check.Harness.mutations)
         in
         Arg.(
           value
           & opt (some (enum
                          (List.map
                             (fun (name, _) -> (name, name))
                             Lo_check.Harness.mutations)))
               None
           & info [ "mutate" ] ~docv:"RULE"
               ~doc:
                 (Printf.sprintf
                    "Sensitivity mode: hide a known deviation (%s) on one \
                     node and demand the oracles catch it."
                    names))
       in
       let replay_arg =
         Arg.(
           value
           & opt (some file) None
           & info [ "replay" ] ~docv:"FILE"
               ~doc:
                 "Re-run one repro file byte-identically instead of \
                  generating a campaign.")
       in
       let repro_dir_arg =
         Arg.(
           value & opt dir "."
           & info [ "repro-dir" ] ~docv:"DIR"
               ~doc:"Where shrunk repro files are written.")
       in
       let shrink_budget_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "shrink-budget" ] ~docv:"RUNS"
               ~doc:"Max re-runs the shrinker may spend per failure \
                     (default 40).")
       in
       let jobs_arg =
         Arg.(
           value
           & opt (some int) None
           & info [ "jobs"; "j" ] ~docv:"J"
               ~doc:"Domains to fan cases across (default: LO_JOBS or \
                     core count).")
       in
       Cmd.v
         (Cmd.info "fuzz"
            ~doc:
              "Conformance fuzzing: random swarm scenarios judged against \
               the oracle stack, with automatic shrinking to minimal \
               repros")
         Term.(
           const run_fuzz $ cases_arg $ seed_arg $ mutate_arg $ replay_arg
           $ repro_dir_arg $ shrink_budget_arg $ jobs_arg));
      (let id_arg =
         Arg.(
           required
           & opt (some int) None
           & info [ "id" ] ~docv:"ID" ~doc:"This node's index in [0, n).")
       in
       let n_arg =
         Arg.(
           value & opt int 4
           & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
       in
       let port_arg =
         Arg.(
           value & opt int Lo_live.Host.default_base_port
           & info [ "base-port" ] ~docv:"PORT"
               ~doc:"Node $(i) listens on 127.0.0.1:(PORT + i).")
       in
       let seed_arg =
         Arg.(
           value & opt int 1
           & info [ "seed" ] ~docv:"SEED"
               ~doc:
                 "Deployment seed: identities, overlay and workload are \
                  all derived from it, so every process agrees without \
                  coordination.")
       in
       let tps_arg =
         Arg.(
           value & opt float 20.
           & info [ "tps" ] ~docv:"RATE"
               ~doc:"Cluster-wide submission rate (txs per second).")
       in
       let duration_arg =
         Arg.(
           value & opt float 10.
           & info [ "duration" ] ~docv:"SECONDS"
               ~doc:"Workload seconds after the shared epoch.")
       in
       let epoch_arg =
         Arg.(
           value
           & opt (some float) None
           & info [ "epoch" ] ~docv:"UNIX_TIME"
               ~doc:
                 "Absolute wall-clock protocol time zero (default: the \
                  next whole second + 1, which independently launched \
                  peers agree on).")
       in
       let out_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "out"; "o" ] ~docv:"FILE"
               ~doc:"Write this node's event trace as JSONL to $(docv).")
       in
       Cmd.v
         (Cmd.info "serve"
            ~doc:
              "Run one live LO node over localhost TCP (the non-simulated \
               transport backend)")
         Term.(
           const run_serve $ id_arg $ n_arg $ port_arg $ seed_arg $ tps_arg
           $ duration_arg $ epoch_arg $ out_arg));
      (let n_arg =
         Arg.(
           value & opt int 16
           & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
       in
       let tps_arg =
         Arg.(
           value & opt float 200.
           & info [ "tps" ] ~docv:"RATE"
               ~doc:"Cluster-wide submission rate (txs per second).")
       in
       let duration_arg =
         Arg.(
           value & opt float 10.
           & info [ "duration" ] ~docv:"SECONDS"
               ~doc:"Workload seconds after the shared epoch.")
       in
       let seed_arg =
         Arg.(
           value & opt int 1
           & info [ "seed" ] ~docv:"SEED" ~doc:"Deployment seed.")
       in
       let port_arg =
         Arg.(
           value & opt int Lo_live.Host.default_base_port
           & info [ "base-port" ] ~docv:"PORT"
               ~doc:"Node $(i) listens on 127.0.0.1:(PORT + i).")
       in
       let out_dir_arg =
         Arg.(
           value
           & opt (some string) None
           & info [ "out-dir" ] ~docv:"DIR"
               ~doc:
                 "Where per-node and merged JSONL traces land (default: a \
                  fresh directory under the system temp dir).")
       in
       let chaos_arg =
         Arg.(
           value
           & opt (some ~none:"off" string) None
           & info [ "chaos" ] ~docv:"SPEC"
               ~doc:
                 "Seeded chaos: SIGKILL and respawn nodes mid-run and \
                  inject socket-level frame faults. $(docv) is \
                  \"key=value,...\" over the defaults \
                  (kills=3,down=1.5 plus mild link faults); keys: \
                  kills, rate (Poisson kills/s instead of exact \
                  kills), down, drop, dup, delay, dmax, trunc, \
                  garble. The empty string takes every default.")
       in
       Cmd.v
         (Cmd.info "cluster"
            ~doc:
              "Fork a full localhost cluster of live nodes — optionally \
               under seeded chaos (kill/respawn plus socket faults) — \
               merge the per-incarnation traces, audit the merged \
               stream, and fail on any violation or honest exposure")
         Term.(
           const run_cluster $ n_arg $ tps_arg $ duration_arg $ seed_arg
           $ port_arg $ out_dir_arg $ chaos_arg));
      cmd "selfcheck" "Verify the crypto and sketch substrates against known vectors" run_selfcheck;
      cmd "all" "Run the entire evaluation" run_all;
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
