(* Injection / front-running detection: a sandwich-attack attempt
   (paper Sec. 2.2).

   A victim's DEX swap is pending. A malicious miner, on winning block
   creation, injects its own freshly minted transaction *ahead* of the
   committed bundle containing the victim's swap — classic
   front-running. Under LØ the canonical order is deterministic and the
   bundle contents are committed, so the smuggled transaction is a
   provable injection.

   Run with: dune exec examples/sandwich_demo.exe *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let () =
  let n = 15 in
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed:31 () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "w%d" i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Lo_net.Rng.create 4 in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:6 ~max_in:125 in
  let config = Node.default_config scheme in
  let behavior i = if i = 2 then Node.Block_injector else Node.Honest in
  let nodes =
    Array.init n (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:(behavior i))
  in
  Array.iter Node.start nodes;

  (* The victim's swap plus some background traffic. *)
  let victim = Signer.make scheme ~seed:"victim" in
  let swap =
    Tx.create ~signer:victim ~fee:25 ~created_at:0.0
      ~payload:"dex-swap: 100 eth -> usdc, slippage 0.5%"
  in
  Node.submit_tx nodes.(8) swap;
  let background = Signer.make scheme ~seed:"background" in
  for k = 1 to 6 do
    let tx =
      Tx.create ~signer:background ~fee:(5 + k) ~created_at:0.0
        ~payload:(Printf.sprintf "background-%d" k)
    in
    Node.submit_tx nodes.(k) tx
  done;
  Net.run_until net 8.0;

  (* The attacker builds a block, smuggling in a fresh uncommitted tx at
     the front of a committed bundle. *)
  (match Node.build_block nodes.(2) ~policy:Policy.Lo_fifo with
  | Some block ->
      Printf.printf "attacker's block: %d txs over bundles %d..%d\n"
        (List.length block.Block.txids)
        (block.Block.start_seq + 1) block.Block.commit_seq
  | None -> print_endline "no block?!");

  let first_detection = ref None in
  Array.iter
    (fun node ->
      (Node.hooks node).Node.on_violation <-
        (fun v ~block:_ ->
          match v with
          | Inspector.Injection _ when !first_detection = None ->
              first_detection := Some (Node.index node, Net.now net)
          | _ -> ()))
    nodes;
  Net.run_until net 20.0;
  (match !first_detection with
  | Some (who, at) ->
      Printf.printf "first injection detection: miner %d at %.2fs\n" who at
  | None -> print_endline "no detection?!");
  let attacker_id = Node.node_id nodes.(2) in
  let exposing =
    Array.to_list nodes
    |> List.filter (fun node ->
           Node.index node <> 2
           && Accountability.is_exposed (Node.accountability node) attacker_id)
    |> List.length
  in
  Printf.printf "miners holding verifiable proof of injection: %d/%d\n"
    exposing (n - 1);
  if exposing = n - 1 then print_endline "front-running attempt exposed — demo done."
  else print_endline "unexpected: exposure incomplete"
