(* Quickstart: a five-miner LØ network in a simulated WAN.

   Shows the full pipeline of the paper: clients submit transactions
   (Stage I), miners reconcile mempools with signed commitments
   (Stage II), a leader builds a block in the verifiable canonical order
   (Stage III), and every other miner inspects it (Sec. 4.3).

   Run with: dune exec examples/quickstart.exe *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let () =
  (* 1. A deterministic simulated network of five miners. *)
  let n = 5 in
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed:2024 () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "miner-%d" i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let everyone i = List.filter (fun j -> j <> i) (List.init n Fun.id) in
  let config = Node.default_config scheme in
  let nodes =
    Array.init n (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(everyone i) ~behavior:Node.Honest)
  in
  Array.iter Node.start nodes;
  Printf.printf "Started %d honest miners (fully connected overlay).\n" n;

  (* 2. Clients submit transactions to different miners (Stage I). *)
  let alice = Signer.make scheme ~seed:"alice" in
  let bob = Signer.make scheme ~seed:"bob" in
  let submissions =
    [ (alice, 30, "pay carol 5", 0); (bob, 12, "swap 1 eth", 1);
      (alice, 55, "mint nft", 2); (bob, 7, "vote yes", 3) ]
  in
  List.iter
    (fun (client, fee, memo, target) ->
      let tx = Tx.create ~signer:client ~fee ~created_at:0.0 ~payload:memo in
      Node.submit_tx nodes.(target) tx;
      Printf.printf "  submitted %s (fee %d) to miner %d\n"
        (Lo_crypto.Hex.encode (String.sub tx.Tx.id 0 4))
        fee target)
    submissions;

  (* 3. Let mempool reconciliation run for a few simulated seconds. *)
  Net.run_until net 10.0;
  Array.iteri
    (fun i node ->
      Printf.printf "miner %d: mempool=%d, committed bundles=%d\n" i
        (Mempool.size (Node.mempool node))
        (Commitment.Log.seq (Node.commitment_log node)))
    nodes;

  (* 4. Miner 0 becomes leader and builds a block. *)
  (match Node.build_block nodes.(0) ~policy:Policy.Lo_fifo with
  | None -> print_endline "no block produced"
  | Some block ->
      Printf.printf "miner 0 built block %d: %d txs over bundles %d..%d\n"
        block.Block.height (List.length block.Block.txids)
        (block.Block.start_seq + 1) block.Block.commit_seq);

  (* 5. Everyone inspects it; an honest block yields no violations. *)
  let violations = ref 0 in
  Array.iter
    (fun node ->
      (Node.hooks node).Node.on_violation <-
        (fun v ~block:_ ->
          incr violations;
          Format.printf "violation: %a@." Inspector.pp_violation v))
    nodes;
  Net.run_until net 15.0;
  Printf.printf "inspection violations: %d (expected 0)\n" !violations;
  let suspected, exposed =
    Array.fold_left
      (fun (s, e) node ->
        let s', e' = Accountability.counts (Node.accountability node) in
        (s + s', e + e'))
      (0, 0) nodes
  in
  Printf.printf "suspicions: %d, exposures: %d (expected 0, 0)\n" suspected
    exposed;
  print_endline "quickstart done."
