(* Enforcement: from detection to consequences (paper Sec. 5.4).

   A client submits through the Stage-I path with signed
   acknowledgements; a reordering miner builds a manipulated block; the
   network exposes it; a proof-of-stake ledger slashes its deposit and
   the overlay refuses its future blocks.

   Run with: dune exec examples/enforcement_demo.exe *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let () =
  let scheme = Signer.simulation () in
  let miners = 12 in
  let net = Net.create ~num_nodes:(miners + 1) ~seed:99 () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init miners (fun i -> Signer.make scheme ~seed:(Printf.sprintf "v%d" i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Lo_net.Rng.create 5 in
  let topo = Lo_net.Topology.build rng ~n:miners ~out_degree:6 ~max_in:125 in
  let config =
    { (Node.default_config scheme) with Node.reject_exposed_blocks = true }
  in
  let nodes =
    Array.init miners (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:(if i = 0 then Node.Block_reorderer else Node.Honest))
  in
  Array.iter Node.start nodes;

  (* A proof-of-stake ledger; every validator bonded 1,000 units. *)
  let ledger = Enforcement.create () in
  Array.iter
    (fun s -> Enforcement.register ledger ~id:(Signer.id s) ~stake:1000)
    signers;
  (* Observer: node 1's verified exposures drive the slashing. *)
  (Node.hooks nodes.(1)).Node.on_exposure <-
    (fun ~accused ->
      let now = Net.now net in
      match Accountability.status (Node.accountability nodes.(1)) accused with
      | Accountability.Exposed evidence ->
          Printf.printf "[%.2fs] exposure verified (%s); slashing...\n" now
            (Evidence.describe evidence);
          Enforcement.punish ledger ~id:accused evidence ~now
      | _ -> ());

  (* Stage I: a client with acknowledgements. *)
  let client_signer = Signer.make scheme ~seed:"enforcement-client" in
  let client =
    Client.create
      (Client.default_config scheme)
      ~net ~index:miners ~signer:client_signer
      ~miners:(List.init miners (fun i -> (i, Signer.id signers.(i))))
  in
  Client.start client;
  Client.on_acknowledged client (fun tx ~now ->
      Printf.printf "[%.2fs] client holds signed receipt for %s\n" now
        (Lo_crypto.Hex.encode (String.sub tx.Tx.id 0 4)));
  let submitted =
    List.init 8 (fun k ->
        Client.submit client ~fee:(10 + k) ~payload:(Printf.sprintf "payment-%d" k))
  in
  Net.run_until net 12.0;
  Printf.printf "receipts per tx: %s\n"
    (String.concat ", "
       (List.map
          (fun tx -> string_of_int (Client.ack_count client ~txid:tx.Tx.id))
          submitted));

  (* The reordering miner wins block creation. *)
  (match Node.build_block nodes.(0) ~policy:Policy.Lo_fifo with
  | Some block ->
      Printf.printf "manipulated block %d announced (%d txs)\n"
        block.Block.height (List.length block.Block.txids)
  | None -> print_endline "no block?!");
  Net.run_until net 30.0;

  let bad = Signer.id signers.(0) in
  Printf.printf "attacker stake after slashing: %d (of 1000), burned total: %d\n"
    (Enforcement.stake ledger ~id:bad)
    (Enforcement.slashed_total ledger);
  Printf.printf "attacker eligible for leader election: %b\n"
    (Enforcement.is_eligible ledger ~id:bad);

  (* Its next block is refused chain-wide. *)
  let tx2 = Client.submit client ~fee:99 ~payload:"after-exposure" in
  ignore tx2;
  Net.run_until net 45.0;
  ignore (Node.build_block nodes.(0) ~policy:Policy.Lo_fifo);
  Net.run_until net 60.0;
  let heights =
    Array.to_list nodes |> List.tl
    |> List.map (fun node -> Node.chain_height node)
    |> List.sort_uniq compare
  in
  Printf.printf "honest chain heights after refused block: %s\n"
    (String.concat "," (List.map string_of_int heights));
  print_endline "detection -> exposure -> slashing -> rejection: demo done."
