(* Censorship detection: an NFT-auction "sniping" scenario (paper
   Sec. 2.2).

   A malicious miner wants its own bid to win an auction, so it censors
   the competing bid from its blocks. Under LØ the competing bid was
   committed during reconciliation, so the omission is a verifiable
   policy violation: every correct miner that inspects the block exposes
   the censor and gossips the proof.

   Run with: dune exec examples/censorship_demo.exe *)

open Lo_core
module Net = Lo_net.Network
module Signer = Lo_crypto.Signer

let () =
  let n = 15 in
  let victim_bid_memo = "auction-bid:competitor:100eth" in
  let scheme = Signer.simulation () in
  let net = Net.create ~num_nodes:n ~seed:7 () in
  let mux = Lo_net.Mux.create net in
  let signers =
    Array.init n (fun i -> Signer.make scheme ~seed:(Printf.sprintf "m%d" i))
  in
  let directory = Directory.create ~ids:(Array.map Signer.id signers) in
  let rng = Lo_net.Rng.create 99 in
  let topo = Lo_net.Topology.build rng ~n ~out_degree:6 ~max_in:125 in
  let config = Node.default_config scheme in
  (* Miner 0 is the sniper: it silently omits the competing bid from the
     blocks it creates. *)
  let behavior i =
    if i = 0 then
      Node.Blockspace_censor
        (fun tx -> String.equal tx.Tx.payload victim_bid_memo)
    else Node.Honest
  in
  let nodes =
    Array.init n (fun i ->
        Node.create config
          ~transport:(Lo_net.Sim_transport.make ~net ~mux ~node:i)
          ~rng:(Lo_net.Rng.split (Lo_net.Network.rng net))
          ~directory ~signer:signers.(i)
          ~neighbors:(Lo_net.Topology.neighbors topo i)
          ~behavior:(behavior i))
  in
  Array.iter Node.start nodes;

  (* The competitor submits its bid to a miner it trusts; the sniper
     submits its own bid. *)
  let competitor = Signer.make scheme ~seed:"competitor" in
  let sniper_client = Signer.make scheme ~seed:"sniper" in
  let bid =
    Tx.create ~signer:competitor ~fee:40 ~created_at:0.0
      ~payload:victim_bid_memo
  in
  let own_bid =
    Tx.create ~signer:sniper_client ~fee:41 ~created_at:0.0
      ~payload:"auction-bid:sniper:101eth"
  in
  Node.submit_tx nodes.(5) bid;
  Node.submit_tx nodes.(0) own_bid;
  Printf.printf "competing bid submitted to miner 5; sniper's bid to miner 0\n";

  (* Reconciliation spreads both bids — and both ids enter miner 0's
     signed commitment. *)
  Net.run_until net 8.0;
  Printf.printf "miner 0 mempool: %d txs, committed: %d ids\n"
    (Mempool.size (Node.mempool nodes.(0)))
    (Commitment.Log.counter (Node.commitment_log nodes.(0)));

  (* The sniper wins leader election and builds a block without the
     competing bid. *)
  (match Node.build_block nodes.(0) ~policy:Policy.Lo_fifo with
  | Some block ->
      let contains tx =
        List.exists (String.equal tx.Tx.id) block.Block.txids
      in
      Printf.printf
        "sniper's block: height %d, %d txs; own bid included: %b; competing \
         bid included: %b\n"
        block.Block.height
        (List.length block.Block.txids)
        (contains own_bid) (contains bid)
  | None -> print_endline "no block?!");

  (* Watch the detections. *)
  Array.iter
    (fun node ->
      (Node.hooks node).Node.on_violation <-
        (fun v ~block:_ ->
          if Node.index node = 1 then
            Format.printf "  [%.2fs] miner 1 sees %a@." (Net.now net)
              Inspector.pp_violation v))
    nodes;
  Net.run_until net 20.0;
  let sniper_id = Node.node_id nodes.(0) in
  let exposing =
    Array.to_list nodes
    |> List.filter (fun node ->
           Node.index node <> 0
           && Accountability.is_exposed (Node.accountability node) sniper_id)
    |> List.length
  in
  Printf.printf "miners holding verifiable proof of censorship: %d/%d\n"
    exposing (n - 1);
  if exposing = n - 1 then
    print_endline "censorship detected and attributed — demo done."
  else print_endline "unexpected: exposure incomplete"
