(* Fair ordering: FIFO (LØ) vs Highest-Fee block building — a miniature
   of the paper's Fig. 8 (left).

   With constrained blockspace, Highest-Fee keeps deferring cheap
   transactions while LØ's canonical order serves them in arrival
   order. This demo runs the same workload under both policies and
   prints per-fee-band inclusion latency.

   Run with: dune exec examples/fair_ordering_demo.exe *)

open Lo_core
module Net = Lo_net.Network

let run policy =
  let n = 30 and rate = 10. and duration = 40. in
  let d =
    Lo_sim.Scenario.build_lo
      ~config:(fun c -> { c with Node.max_block_txs = 100 })
      ~n ~seed:5150 ()
  in
  let created = Hashtbl.create 256 in
  let fee_of = Hashtbl.create 256 in
  let latencies = ref [] in
  let recorded = Hashtbl.create 256 in
  Array.iter
    (fun node ->
      (Node.hooks node).Node.on_block_accepted <-
        (fun block ->
          let now = Net.now d.net in
          if String.equal (Node.node_id node) block.Block.creator then
            List.iter
              (fun txid ->
                if not (Hashtbl.mem recorded txid) then begin
                  Hashtbl.add recorded txid ();
                  match Hashtbl.find_opt created txid with
                  | Some t0 ->
                      latencies :=
                        (Option.value (Hashtbl.find_opt fee_of txid) ~default:0,
                         now -. t0)
                        :: !latencies
                  | None -> ()
                end)
              block.Block.txids))
    d.nodes;
  let specs = Lo_sim.Scenario.standard_workload ~rate ~duration ~seed:5150 ~n in
  let txs = Lo_sim.Scenario.inject_workload d specs in
  List.iter
    (fun tx ->
      Hashtbl.replace created tx.Tx.id tx.Tx.created_at;
      Hashtbl.replace fee_of tx.Tx.id tx.Tx.fee)
    txs;
  Lo_sim.Scenario.schedule_blocks d ~policy ~interval:12.0
    ~until:(duration +. 48.) ();
  Net.run_until d.net (duration +. 48.);
  (!latencies, List.length txs)

let band fee = if fee < 10 then "low   (<10)" else if fee < 40 then "mid (10-39)" else "high  (40+)"

let () =
  List.iter
    (fun policy ->
      let latencies, total = run policy in
      Printf.printf "\n%s policy — %d/%d transactions included\n"
        (String.uppercase_ascii (Policy.to_string policy))
        (List.length latencies) total;
      let bands = [ "low   (<10)"; "mid (10-39)"; "high  (40+)" ] in
      List.iter
        (fun b ->
          let xs =
            List.filter_map
              (fun (fee, l) -> if String.equal (band fee) b then Some l else None)
              latencies
          in
          let mean =
            match xs with
            | [] -> nan
            | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
          in
          Printf.printf "  fee band %s: %4d txs, mean latency %6.2f s\n" b
            (List.length xs) mean)
        bands)
    [ Policy.Lo_fifo; Policy.Highest_fee ];
  print_endline
    "\nLØ's FIFO ordering serves every fee band alike; Highest-Fee starves \
     the cheap transactions."
